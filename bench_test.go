package repro

// One testing.B benchmark family per table/figure of the paper's
// evaluation. Each family runs the materialized (M) and factorized (F)
// strategies as sub-benchmarks on the same generated data, so
// `go test -bench=. -benchmem` regenerates every experiment's comparison at
// reduced, fixed dimensions; `cmd/morpheus-bench` runs the full sweeps and
// prints paper-style tables (see EXPERIMENTS.md for the mapping).

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/ml"
	"repro/internal/orion"
	"repro/internal/realdata"
	"repro/internal/serve"
)

// benchPKFK generates the scaled Table 4 dataset for a TR×FR cell.
func benchPKFK(b *testing.B, tr int, fr float64) (*core.NormalizedMatrix, *la.Dense) {
	b.Helper()
	nR := 1000
	spec := datagen.PKFKSpec{NS: tr * nR, DS: 20, NR: nR, DR: int(fr * 20), Seed: 1}
	nm, err := datagen.PKFK(spec)
	if err != nil {
		b.Fatal(err)
	}
	return nm, nm.Dense()
}

// benchMN generates the scaled Table 5 dataset for a uniqueness degree.
func benchMN(b *testing.B, nS int, deg float64) (*core.NormalizedMatrix, *la.Dense) {
	b.Helper()
	nU := int(deg * float64(nS))
	if nU < 1 {
		nU = 1
	}
	nm, err := datagen.MN(datagen.MNSpec{NS: nS, NR: nS, DS: 50, DR: 50, NU: nU, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return nm, nm.Dense()
}

// mfBench runs op on the materialized and factorized operand.
func mfBench(b *testing.B, nm *core.NormalizedMatrix, td *la.Dense, op func(la.Matrix)) {
	b.Helper()
	b.Run("M", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op(td)
		}
	})
	b.Run("F", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op(nm)
		}
	})
}

// --- Figure 3: PK-FK operator speed-ups ---

func BenchmarkFig3ScalarMul(b *testing.B) {
	for _, cell := range []struct {
		tr int
		fr float64
	}{{5, 1}, {20, 4}} {
		nm, td := benchPKFK(b, cell.tr, cell.fr)
		b.Run(fmt.Sprintf("TR%d_FR%g", cell.tr, cell.fr), func(b *testing.B) {
			mfBench(b, nm, td, func(m la.Matrix) { m.Scale(3) })
		})
	}
}

func BenchmarkFig3LMM(b *testing.B) {
	for _, cell := range []struct {
		tr int
		fr float64
	}{{5, 1}, {20, 4}} {
		nm, td := benchPKFK(b, cell.tr, cell.fr)
		x := la.Ones(td.Cols(), 2)
		b.Run(fmt.Sprintf("TR%d_FR%g", cell.tr, cell.fr), func(b *testing.B) {
			mfBench(b, nm, td, func(m la.Matrix) { m.Mul(x) })
		})
	}
}

func BenchmarkFig3CrossProd(b *testing.B) {
	for _, cell := range []struct {
		tr int
		fr float64
	}{{5, 1}, {20, 4}} {
		nm, td := benchPKFK(b, cell.tr, cell.fr)
		b.Run(fmt.Sprintf("TR%d_FR%g", cell.tr, cell.fr), func(b *testing.B) {
			mfBench(b, nm, td, func(m la.Matrix) { m.CrossProd() })
		})
	}
}

func BenchmarkFig3Ginv(b *testing.B) {
	nm, td := benchPKFK(b, 20, 2)
	mfBench(b, nm, td, func(m la.Matrix) { m.Ginv() })
}

// --- Figure 6/7 (appendix): remaining Table 1 operators ---

func BenchmarkFig6ScalarAdd(b *testing.B) {
	nm, td := benchPKFK(b, 20, 4)
	mfBench(b, nm, td, func(m la.Matrix) { m.AddScalar(1) })
}

func BenchmarkFig6RMM(b *testing.B) {
	nm, td := benchPKFK(b, 20, 4)
	x := la.Ones(2, td.Rows())
	mfBench(b, nm, td, func(m la.Matrix) { m.LeftMul(x) })
}

func BenchmarkFig6RowSums(b *testing.B) {
	nm, td := benchPKFK(b, 20, 4)
	mfBench(b, nm, td, func(m la.Matrix) { m.RowSums() })
}

func BenchmarkFig6ColSums(b *testing.B) {
	nm, td := benchPKFK(b, 20, 4)
	mfBench(b, nm, td, func(m la.Matrix) { m.ColSums() })
}

func BenchmarkFig6Sum(b *testing.B) {
	nm, td := benchPKFK(b, 20, 4)
	mfBench(b, nm, td, func(m la.Matrix) { m.Sum() })
}

// --- Figure 4 / 11 / 12: M:N join operators ---

func BenchmarkFig4MNLMM(b *testing.B) {
	for _, deg := range []float64{0.01, 0.1} {
		nm, td := benchMN(b, 1000, deg)
		x := la.Ones(td.Cols(), 2)
		b.Run(fmt.Sprintf("deg%g", deg), func(b *testing.B) {
			mfBench(b, nm, td, func(m la.Matrix) { m.Mul(x) })
		})
	}
}

func BenchmarkFig4MNCrossProd(b *testing.B) {
	for _, deg := range []float64{0.01, 0.1} {
		nm, td := benchMN(b, 1000, deg)
		b.Run(fmt.Sprintf("deg%g", deg), func(b *testing.B) {
			mfBench(b, nm, td, func(m la.Matrix) { m.CrossProd() })
		})
	}
}

func BenchmarkFig11MNAggregates(b *testing.B) {
	nm, td := benchMN(b, 1000, 0.05)
	b.Run("rowSums", func(b *testing.B) {
		mfBench(b, nm, td, func(m la.Matrix) { m.RowSums() })
	})
	b.Run("colSums", func(b *testing.B) {
		mfBench(b, nm, td, func(m la.Matrix) { m.ColSums() })
	})
	b.Run("sum", func(b *testing.B) {
		mfBench(b, nm, td, func(m la.Matrix) { m.Sum() })
	})
}

func BenchmarkFig12MNRMM(b *testing.B) {
	nm, td := benchMN(b, 1000, 0.05)
	x := la.Ones(2, td.Rows())
	mfBench(b, nm, td, func(m la.Matrix) { m.LeftMul(x) })
}

// --- Figure 5 / 8 / 9 / 10: the four ML algorithms ---

func BenchmarkFig5LogReg(b *testing.B) {
	for _, fr := range []float64{2, 4} {
		nm, td := benchPKFK(b, 20, fr)
		y := datagen.Labels(nm, 0, true, 1)
		opt := ml.Options{Iters: 20, StepSize: 1e-6}
		b.Run(fmt.Sprintf("FR%g", fr), func(b *testing.B) {
			mfBench(b, nm, td, func(m la.Matrix) {
				if _, err := ml.LogisticRegressionGD(m, y, nil, opt); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

func BenchmarkFig5LinRegNE(b *testing.B) {
	for _, fr := range []float64{2, 4} {
		nm, td := benchPKFK(b, 20, fr)
		y := datagen.Labels(nm, 0, false, 1)
		b.Run(fmt.Sprintf("FR%g", fr), func(b *testing.B) {
			mfBench(b, nm, td, func(m la.Matrix) {
				if _, err := ml.LinearRegressionNE(m, y); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

func BenchmarkFig5KMeans(b *testing.B) {
	nm, td := benchPKFK(b, 20, 2)
	opt := ml.Options{Iters: 20, Seed: 7}
	mfBench(b, nm, td, func(m la.Matrix) {
		if _, err := ml.KMeans(m, 10, opt); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkFig5GNMF(b *testing.B) {
	nm, _ := benchPKFK(b, 20, 2)
	pos := nm.Apply(math.Abs).(*core.NormalizedMatrix)
	td := pos.Dense()
	opt := ml.Options{Iters: 20, Seed: 7}
	mfBench(b, pos, td, func(m la.Matrix) {
		if _, err := ml.GNMF(m, 5, opt); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkFig8LinRegGD(b *testing.B) {
	nm, td := benchPKFK(b, 20, 2)
	y := datagen.Labels(nm, 0, false, 1)
	opt := ml.Options{Iters: 20, StepSize: 1e-8}
	mfBench(b, nm, td, func(m la.Matrix) {
		if _, err := ml.LinearRegressionGD(m, y, nil, opt); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkFig9LogRegIters(b *testing.B) {
	nm, td := benchPKFK(b, 20, 2)
	y := datagen.Labels(nm, 0, true, 1)
	for _, iters := range []int{5, 20} {
		opt := ml.Options{Iters: iters, StepSize: 1e-6}
		b.Run(fmt.Sprintf("iters%d", iters), func(b *testing.B) {
			mfBench(b, nm, td, func(m la.Matrix) {
				if _, err := ml.LogisticRegressionGD(m, y, nil, opt); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

func BenchmarkFig10KMeansCentroids(b *testing.B) {
	nm, td := benchPKFK(b, 10, 2)
	for _, k := range []int{5, 20} {
		opt := ml.Options{Iters: 10, Seed: 7}
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			mfBench(b, nm, td, func(m la.Matrix) {
				if _, err := ml.KMeans(m, k, opt); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

func BenchmarkFig10GNMFTopics(b *testing.B) {
	nm, _ := benchPKFK(b, 10, 2)
	pos := nm.Apply(math.Abs).(*core.NormalizedMatrix)
	td := pos.Dense()
	for _, topics := range []int{2, 10} {
		opt := ml.Options{Iters: 10, Seed: 7}
		b.Run(fmt.Sprintf("topics%d", topics), func(b *testing.B) {
			mfBench(b, pos, td, func(m la.Matrix) {
				if _, err := ml.GNMF(m, topics, opt); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

// --- Table 7: real-data clones ---

func BenchmarkTable7LogReg(b *testing.B) {
	for _, name := range []string{"Expedia", "Movies", "Yelp", "Walmart", "LastFM", "Books", "Flights"} {
		spec, err := realdata.SpecByName(name)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := realdata.Generate(spec.Scaled(400), 1)
		if err != nil {
			b.Fatal(err)
		}
		sp := ds.Norm.Sparse()
		y := ds.BinaryY()
		opt := ml.Options{Iters: 20, StepSize: 1e-6}
		b.Run(name, func(b *testing.B) {
			b.Run("M", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ml.LogisticRegressionGD(sp, y, nil, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("F", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ml.LogisticRegressionGD(ds.Norm, y, nil, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkTable7LinReg(b *testing.B) {
	spec, _ := realdata.SpecByName("Movies")
	ds, err := realdata.Generate(spec.Scaled(400), 1)
	if err != nil {
		b.Fatal(err)
	}
	sp := ds.Norm.Sparse()
	b.Run("M", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ml.LinearRegressionNE(sp, ds.Y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("F", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ml.LinearRegressionNE(ds.Norm, ds.Y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table 8: Orion baseline comparison ---

func BenchmarkTable8OrionVsMorpheus(b *testing.B) {
	nm, td := benchPKFK(b, 20, 2)
	y := datagen.Labels(nm, 0, true, 1)
	glm, err := orion.NewGLM(nm.S().Dense(), nm.Rs()[0].Dense(), nm.Ks()[0].Assignments())
	if err != nil {
		b.Fatal(err)
	}
	const iters, alpha = 10, 1e-6
	opt := ml.Options{Iters: iters, StepSize: alpha}
	b.Run("Materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ml.LogisticRegressionGD(td, y, nil, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Orion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := glm.LogisticGD(y, iters, alpha); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Morpheus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ml.LogisticRegressionGD(nm, y, nil, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Tables 9/10: out-of-core (ORE substitute) ---

func BenchmarkTable9OutOfCore(b *testing.B) {
	nm, td := benchPKFK(b, 20, 2)
	y := datagen.Labels(nm, 0, true, 1)
	store, err := chunk.NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	tM, err := chunk.FromDense(store, td, 2048)
	if err != nil {
		b.Fatal(err)
	}
	sM, err := chunk.FromDense(store, nm.S().Dense(), 2048)
	if err != nil {
		b.Fatal(err)
	}
	fkv, err := chunk.BuildIntVector(store, nm.Ks()[0].Assignments(), 2048)
	if err != nil {
		b.Fatal(err)
	}
	nt, err := chunk.NewNormalizedTable(sM, fkv, nm.Rs()[0].Dense())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("M", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chunk.LogRegMaterializedExec(chunk.Parallel(), tM, y, 2, 1e-6); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("F", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chunk.LogRegFactorizedExec(chunk.Parallel(), nt, y, 2, 1e-6); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable10OutOfCoreMN(b *testing.B) {
	nm, _ := benchMN(b, 1000, 0.05)
	y := datagen.Labels(nm, 0, true, 1)
	store, err := chunk.NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	sM, err := chunk.FromDense(store, nm.S().Dense(), 2048)
	if err != nil {
		b.Fatal(err)
	}
	rM, err := chunk.FromDense(store, nm.Rs()[0].Dense(), 2048)
	if err != nil {
		b.Fatal(err)
	}
	isV, err := chunk.BuildIntVector(store, nm.IS().Assignments(), 2048)
	if err != nil {
		b.Fatal(err)
	}
	irV, err := chunk.BuildIntVector(store, nm.Ks()[0].Assignments(), 2048)
	if err != nil {
		b.Fatal(err)
	}
	mn, err := chunk.NewMNTable(sM, rM, isV, irV)
	if err != nil {
		b.Fatal(err)
	}
	tM, err := chunk.MaterializeMN(store, mn)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("M", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chunk.LogRegMaterializedExec(chunk.Parallel(), tM, y, 2, 1e-7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("F", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chunk.LogRegFactorizedMNExec(chunk.Parallel(), mn, y, 2, 1e-7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkChunkedGLMSerialVsParallel records the tentpole comparison:
// the same chunked GLM iterations under the strictly serial engine
// (read-compute-read, the pre-parallel behavior) and under the
// prefetching parallel pipeline. Results are bit-identical (ordered
// commit); on a multi-core runner the parallel path should be ≥2× faster.
func BenchmarkChunkedGLMSerialVsParallel(b *testing.B) {
	nm, td := benchPKFK(b, 20, 2)
	y := datagen.Labels(nm, 0, true, 1)
	store, err := chunk.NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	tM, err := chunk.FromDense(store, td, 1024)
	if err != nil {
		b.Fatal(err)
	}
	sM, err := chunk.FromDense(store, nm.S().Dense(), 1024)
	if err != nil {
		b.Fatal(err)
	}
	fkv, err := chunk.BuildIntVector(store, nm.Ks()[0].Assignments(), 1024)
	if err != nil {
		b.Fatal(err)
	}
	nt, err := chunk.NewNormalizedTable(sM, fkv, nm.Rs()[0].Dense())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		ex   chunk.Exec
	}{{"Serial", chunk.Serial}, {"Parallel", chunk.Parallel()}} {
		b.Run("M/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chunk.LogRegMaterializedExec(mode.ex, tM, y, 2, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("F/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chunk.LogRegFactorizedExec(mode.ex, nt, y, 2, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: naive vs efficient cross-product (Algorithms 1 vs 2) ---

func BenchmarkCrossprodAblation(b *testing.B) {
	nm, td := benchPKFK(b, 20, 4)
	b.Run("Materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			td.CrossProd()
		}
	})
	b.Run("NaiveAlgo1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nm.CrossProdNaive()
		}
	})
	b.Run("EfficientAlgo2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nm.CrossProd()
		}
	})
}

// --- Serving: cached-partial scoring vs naive factorized prediction ---

// serveSetup trains a quick logistic model on a Table 4-shaped dataset and
// builds the cached-partial scorer for it.
func serveSetup(b *testing.B, tr int, fr float64) (*core.NormalizedMatrix, *la.Dense, *serve.Scorer) {
	b.Helper()
	nm, _ := benchPKFK(b, tr, fr)
	y := datagen.Labels(nm, 0, true, 1)
	w, err := ml.LogisticRegressionGD(nm, y, nil, ml.Options{Iters: 5, StepSize: 1e-6})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := serve.NewScorer(nm, w, serve.Logistic)
	if err != nil {
		b.Fatal(err)
	}
	return nm, w, sc
}

// BenchmarkServeScoreAll scores the entire feature store: the naive path
// reruns the factorized multiply (ml.PredictLogistic on the normalized
// matrix), the cached path gathers precomputed partials. Cells sweep the
// tuple/feature ratios of Fig. 3; the dR ≫ dS cells are where serving-time
// factorization matters most.
func BenchmarkServeScoreAll(b *testing.B) {
	for _, cell := range []struct {
		tr int
		fr float64
	}{{5, 1}, {20, 2}, {20, 4}} {
		nm, w, sc := serveSetup(b, cell.tr, cell.fr)
		b.Run(fmt.Sprintf("TR%d_FR%g", cell.tr, cell.fr), func(b *testing.B) {
			b.Run("NaivePredict", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ml.PredictLogistic(nm, w)
				}
			})
			b.Run("CachedPartials", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sc.ScoreAll()
				}
			})
		})
	}
}

// BenchmarkServeScoreBatch serves a fixed 1024-request batch of row ids.
// The naive baseline must rerun the full factorized predictor and pick the
// requested rows (ml's predictors have no per-row path — that is exactly
// the serving gap internal/serve closes).
func BenchmarkServeScoreBatch(b *testing.B) {
	for _, cell := range []struct {
		tr int
		fr float64
	}{{5, 1}, {20, 4}} {
		nm, w, sc := serveSetup(b, cell.tr, cell.fr)
		ids := make([]int, 1024)
		for i := range ids {
			ids[i] = (i * 7919) % nm.Rows()
		}
		b.Run(fmt.Sprintf("TR%d_FR%g", cell.tr, cell.fr), func(b *testing.B) {
			b.Run("NaivePredict", func(b *testing.B) {
				out := make([]float64, len(ids))
				for i := 0; i < b.N; i++ {
					p := ml.PredictLogistic(nm, w)
					for j, id := range ids {
						out[j] = p.At(id, 0)
					}
				}
			})
			b.Run("CachedPartials", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sc.ScoreBatch(ids); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkServeScoreRow is the single-request latency comparison.
func BenchmarkServeScoreRow(b *testing.B) {
	nm, w, sc := serveSetup(b, 20, 4)
	b.Run("NaivePredict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ml.PredictLogistic(nm, w).At(i%nm.Rows(), 0)
		}
	})
	b.Run("CachedPartials", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sc.ScoreRow(i % nm.Rows()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeUpdateWeights measures the cost of a model hot-swap (the
// explicit cache invalidation point).
func BenchmarkServeUpdateWeights(b *testing.B) {
	_, w, sc := serveSetup(b, 20, 4)
	for i := 0; i < b.N; i++ {
		if err := sc.UpdateWeights(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeBatcher pushes concurrent single-row traffic through the
// micro-batching frontend (8 client goroutines per core so coalescing has
// traffic to work with).
func BenchmarkServeBatcher(b *testing.B) {
	nm, _, sc := serveSetup(b, 20, 2)
	bt := serve.NewBatcher(sc, serve.BatchOptions{})
	defer bt.Close()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := bt.Score(i % nm.Rows()); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkRouterScore measures the routed steady-state batch path for
// both fleet placements and asserts it performs zero heap allocations
// per call — the allocation audit CI's bench smoke gates on. The batch is
// small enough that the gather kernel stays on its serial in-line path,
// matching the per-request regime the Batcher feeds the Router.
func BenchmarkRouterScore(b *testing.B) {
	nm, w, _ := serveSetup(b, 20, 2)
	ids := make([]int, 64)
	for i := range ids {
		ids[i] = (i * 9973) % nm.Rows() // deterministic scatter across shards
	}
	out := make([]float64, len(ids))
	for _, pl := range []serve.Placement{serve.Replicated, serve.HashSharded} {
		rt, err := serve.NewScorerFleet(nm, w, serve.Logistic, 4, pl)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(pl.String(), func(b *testing.B) {
			for i := 0; i < 4; i++ { // warm the router's scratch pools
				if err := rt.ScoreBatchInto(ids, out); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.ScoreBatchInto(ids, out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if a := testing.AllocsPerRun(50, func() {
				if err := rt.ScoreBatchInto(ids, out); err != nil {
					b.Error(err)
				}
			}); a != 0 {
				b.Fatalf("steady-state routed ScoreBatchInto: %v allocs/op, want 0", a)
			}
		})
	}
}

// --- Table 12 (appendix): data preparation ---

func BenchmarkTable12DataPrep(b *testing.B) {
	spec, _ := realdata.SpecByName("Expedia")
	ds, err := realdata.Generate(spec.Scaled(400), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MaterializeJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds.Norm.Sparse()
		}
	})
	b.Run("BuildIndicators", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range ds.Norm.Ks() {
				assign := k.Assignments()
				raw := make([]int, len(assign))
				for j, a := range assign {
					raw[j] = int(a)
				}
				la.NewIndicator(raw, k.Cols())
			}
		}
	})
}
