package repro_test

import (
	"fmt"

	repro "repro"
)

// ExampleNewPKFK shows the basic construction of a normalized matrix and
// that its operators agree with the materialized join output.
func ExampleNewPKFK() {
	s := repro.DenseFromRows([][]float64{{1, 2}, {4, 3}, {5, 6}})
	r := repro.DenseFromRows([][]float64{{1.5, 2.5}, {3.5, 4.5}})
	k := repro.NewIndicator([]int{0, 1, 1}, 2)
	t, err := repro.NewPKFK(s, k, r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("T is %dx%d\n", t.Rows(), t.Cols())
	fmt.Printf("sum factorized  : %.1f\n", t.Sum())
	fmt.Printf("sum materialized: %.1f\n", t.Dense().Sum())
	// Output:
	// T is 3x4
	// sum factorized  : 41.0
	// sum materialized: 41.0
}

// ExampleAdvisor shows the §3.7 heuristic decision rule.
func ExampleAdvisor() {
	adv := repro.DefaultAdvisor()
	high := repro.Stats{TupleRatio: 20, FeatureRatio: 4}
	low := repro.Stats{TupleRatio: 2, FeatureRatio: 0.5}
	fmt.Println(adv.ShouldFactorize(high), adv.ShouldFactorize(low))
	// Output: true false
}

// ExampleLogisticRegressionGD trains the same script materialized and
// factorized; the weights agree exactly.
func ExampleLogisticRegressionGD() {
	s := repro.DenseFromRows([][]float64{{1}, {2}, {-1}, {-2}})
	r := repro.DenseFromRows([][]float64{{0.5}, {-0.5}})
	k := repro.NewIndicator([]int{0, 0, 1, 1}, 2)
	t, _ := repro.NewPKFK(s, k, r)
	y := repro.ColVector([]float64{1, 1, -1, -1})
	opt := repro.Options{Iters: 50, StepSize: 0.1}
	wF, _ := repro.LogisticRegressionGD(t, y, nil, opt)
	wM, _ := repro.LogisticRegressionGD(t.Dense(), y, nil, opt)
	fmt.Printf("same weights: %v\n", wF.At(0, 0) == wM.At(0, 0) && wF.At(1, 0) == wM.At(1, 0))
	// Output: same weights: true
}
