package repro

import (
	"math/rand"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart describes it.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nS, dS, nR, dR := 120, 3, 8, 5
	s := NewDense(nS, dS)
	for i := range s.Data() {
		s.Data()[i] = rng.NormFloat64()
	}
	r := NewDense(nR, dR)
	for i := range r.Data() {
		r.Data()[i] = rng.NormFloat64()
	}
	fk := make([]int, nS)
	for i := range fk {
		fk[i] = rng.Intn(nR)
	}
	k := NewIndicator(fk, nR)
	tn, err := NewPKFK(s, k, r)
	if err != nil {
		t.Fatal(err)
	}
	td := tn.Dense()

	// Labels.
	y := NewDense(nS, 1)
	for i := range y.Data() {
		if rng.Intn(2) == 0 {
			y.Data()[i] = 1
		} else {
			y.Data()[i] = -1
		}
	}

	// The same script, materialized vs factorized.
	opt := Options{Iters: 10, StepSize: 1e-3}
	wM, err := LogisticRegressionGD(td, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	wF, err := LogisticRegressionGD(tn, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wM.Data() {
		if d := wM.Data()[i] - wF.Data()[i]; d > 1e-9 || d < -1e-9 {
			t.Fatal("facade: materialized vs factorized weights differ")
		}
	}

	// Decision rule over the facade types.
	var st Stats = tn.ComputeStats()
	adv := DefaultAdvisor()
	if got := adv.ShouldFactorize(st); got != (st.TupleRatio >= 5 && st.FeatureRatio >= 1) {
		t.Fatal("advisor inconsistent")
	}

	// Matrix interface polymorphism.
	var ops []Matrix = []Matrix{td, tn, CSRFromDense(td)}
	want := td.Sum()
	for _, m := range ops {
		if d := m.Sum() - want; d > 1e-6 || d < -1e-6 {
			t.Fatal("Sum differs across implementations")
		}
	}
}
