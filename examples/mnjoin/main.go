// Mnjoin demonstrates the M:N extension (§3.6): a general equi-join whose
// output can be far larger than either input. As the join-attribute domain
// shrinks, each base tuple is repeated more often and the factorized
// operators win by roughly the repetition factor (paper Figure 4).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/datagen"
	"repro/internal/la"
)

func main() {
	nS := 4000
	fmt.Println("M:N join: S(4000 x 60) ⋈ R(4000 x 60), shrinking join-attribute domain nU")
	fmt.Printf("%8s  %10s  %12s  %12s  %8s\n", "nU", "|T'| rows", "LMM M(s)", "LMM F(s)", "speedup")
	for _, nU := range []int{2000, 400, 200, 80, 40} {
		nm, err := datagen.MN(datagen.MNSpec{NS: nS, NR: nS, DS: 60, DR: 60, NU: nU, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		td := nm.Dense()
		x := la.Ones(td.Cols(), 4)

		start := time.Now()
		want := la.MatMul(td, x)
		mT := time.Since(start)

		start = time.Now()
		got := nm.Mul(x)
		fT := time.Since(start)

		if la.MaxAbsDiff(got, want) > 1e-9 {
			log.Fatalf("nU=%d: factorized LMM diverged", nU)
		}
		fmt.Printf("%8d  %10d  %12.4f  %12.4f  %7.1fx\n",
			nU, nm.Rows(), mT.Seconds(), fT.Seconds(), mT.Seconds()/fT.Seconds())
	}

	fmt.Println("\ncross-product at nU=40 (each tuple repeated ~100x):")
	nm, err := datagen.MN(datagen.MNSpec{NS: nS, NR: nS, DS: 60, DR: 60, NU: 40, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	td := nm.Dense()
	start := time.Now()
	want := td.CrossProd()
	mT := time.Since(start)
	start = time.Now()
	got := nm.CrossProd()
	fT := time.Since(start)
	fmt.Printf("  M=%.3fs  F=%.3fs  speed-up %.1fx  (max diff %.2g)\n",
		mT.Seconds(), fT.Seconds(), mT.Seconds()/fT.Seconds(), la.MaxAbsDiff(got, want))
}
