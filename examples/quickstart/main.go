// Quickstart: build a normalized matrix from two tiny base tables, run the
// Table 1 operators on it, and verify every result matches the materialized
// join output — the closure property in action.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// Entity table S (5 customers × 2 features) with a foreign key into
	// the attribute table R (3 employers × 2 features).
	s := repro.DenseFromRows([][]float64{
		{1.0, 2.0},
		{4.0, 3.0},
		{5.0, 6.0},
		{8.0, 7.0},
		{9.0, 1.0},
	})
	r := repro.DenseFromRows([][]float64{
		{1.1, 2.2},
		{3.3, 4.4},
		{5.5, 6.6},
	})
	fk := []int{0, 1, 1, 0, 2}
	k := repro.NewIndicator(fk, 3)

	t, err := repro.NewPKFK(s, k, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normalized matrix: %dx%d (never materialized)\n", t.Rows(), t.Cols())

	// The materialized join output, for comparison only.
	td := t.Dense()
	fmt.Println("\nmaterialized T = [S, KR]:")
	fmt.Println(td)

	// Element-wise, aggregation, multiplication, inversion — all rewritten
	// to operate on (S, K, R).
	fmt.Printf("\nsum(T):        factorized=%.2f  materialized=%.2f\n", t.Sum(), td.Sum())
	fmt.Printf("rowSums(T)[0]: factorized=%.2f  materialized=%.2f\n",
		t.RowSums().At(0, 0), td.RowSums().At(0, 0))

	x := repro.ColVector([]float64{1, 1, 1, 1})
	fmt.Printf("LMM (T·1)[2]:  factorized=%.2f  materialized=%.2f\n",
		t.Mul(x).At(2, 0), repro.MatMul(td, x).At(2, 0))

	cpF := t.CrossProd()
	cpM := td.CrossProd()
	fmt.Printf("crossprod max diff: %.2g\n", maxDiff(cpF, cpM))

	// Scalar ops keep the result normalized, so rewrites keep compounding.
	t2 := t.Scale(2).(*repro.NormalizedMatrix)
	fmt.Printf("scale-then-sum stays factorized: %.2f (want %.2f)\n", t2.Sum(), 2*td.Sum())

	// The decision rule, for when factorization may not pay off.
	st := t.ComputeStats()
	fmt.Printf("\ntuple ratio %.1f, feature ratio %.1f -> factorize? %v (tiny demo data: correctly says no)\n",
		st.TupleRatio, st.FeatureRatio, repro.DefaultAdvisor().Decide(t))
}

func maxDiff(a, b *repro.Dense) float64 {
	m := 0.0
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			d := a.At(i, j) - b.At(i, j)
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
	}
	return m
}
