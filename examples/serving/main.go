// Serving walkthrough: train a model over normalized data, then stand up
// the factorized scoring service and watch the partial-product cache pay
// off.
//
// The same algebra that factorizes training (T·w = S·wS + K·(R·wR), §3.3.3
// of the paper) makes serving cheap: R·wR depends only on the model, so the
// Scorer computes it once and every prediction becomes a tiny per-row
// gather. The walkthrough covers:
//
//  1. building a PK-FK normalized matrix with a high feature ratio
//     (dR ≫ dS, the regime of the paper's Fig. 3 where factorization
//     matters most),
//  2. training logistic regression factorized,
//  3. single-row and batch scoring from cached partials, checked against
//     the full predictor,
//  4. a model hot-swap via UpdateWeights,
//  5. micro-batched serving with concurrent callers,
//  6. a quick throughput comparison: cached partials vs rerunning the
//     factorized predictor per request wave.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	repro "repro"
	"repro/internal/datagen"
)

func main() {
	// 1. A PK-FK dataset shaped like the paper's serving-relevant cells:
	// 20k fact rows with 5 features, 1k dimension rows with 80 features.
	nm, err := datagen.PKFK(datagen.PKFKSpec{NS: 20000, DS: 5, NR: 1000, DR: 80, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feature store: %d rows x %d features (dS=5, dR=80, never joined)\n",
		nm.Rows(), nm.Cols())

	// 2. Train factorized.
	y := datagen.Labels(nm, 0.1, true, 43)
	w, err := repro.LogisticRegressionGD(nm, y, nil, repro.Options{Iters: 20, StepSize: 1e-6})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The scoring service: partials R·wR are computed here, once.
	sc, err := repro.NewScorer(nm, w, repro.LogisticHead)
	if err != nil {
		log.Fatal(err)
	}
	p0, err := sc.ScoreRow(0)
	if err != nil {
		log.Fatal(err)
	}
	full := repro.PredictLogistic(nm, w)
	fmt.Printf("\nrow 0: cached score %.6f, full predictor %.6f (diff %.2g)\n",
		p0, full.At(0, 0), math.Abs(p0-full.At(0, 0)))

	batch := []int{5, 17, 4096, 19999}
	scores, err := sc.ScoreBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch %v -> %.4f\n", batch, scores)

	// 4. Hot-swap the model; the partial cache rebuilds atomically.
	w2 := w.ScaleDense(0.5)
	if err := sc.UpdateWeights(w2); err != nil {
		log.Fatal(err)
	}
	p0v2, _ := sc.ScoreRow(0)
	fmt.Printf("after UpdateWeights(0.5*w): row 0 score %.6f (was %.6f)\n", p0v2, p0)

	// 5. Micro-batched serving: concurrent callers share gather passes.
	b := repro.NewBatcher(sc, repro.BatchOptions{MaxBatch: 512, MaxDelay: 200 * time.Microsecond})
	defer b.Close()
	var wg sync.WaitGroup
	const clients, perClient = 32, 50
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := b.Score((c*perClient + i) % nm.Rows()); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("\n%d concurrent clients x %d requests served in %v\n",
		clients, perClient, time.Since(start).Round(time.Microsecond))

	// 6. Throughput: score every row 10 times, cached vs naive.
	const waves = 10
	t0 := time.Now()
	for i := 0; i < waves; i++ {
		repro.PredictLogistic(nm, w2)
	}
	naive := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < waves; i++ {
		sc.ScoreAll()
	}
	cached := time.Since(t0)
	fmt.Printf("scoring all %d rows x%d: naive %v, cached partials %v (%.1fx)\n",
		nm.Rows(), waves, naive.Round(time.Microsecond), cached.Round(time.Microsecond),
		float64(naive)/float64(cached))
}
