// Recsys runs the multi-table star-schema workload of the paper's §3.5
// motivation: a ratings table with two foreign keys into Users and Movies
// (the MovieLens1M shape from Table 6). Linear regression predicts ratings,
// K-Means clusters the joined feature vectors, and GNMF extracts topics —
// all three factorized automatically across both joins.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/la"
	"repro/internal/ml"
	"repro/internal/realdata"
)

func main() {
	spec, err := realdata.SpecByName("Movies")
	if err != nil {
		log.Fatal(err)
	}
	// 1/50th of MovieLens1M keeps this example under a few seconds.
	ds, err := realdata.Generate(spec.Scaled(50), 7)
	if err != nil {
		log.Fatal(err)
	}
	nm := ds.Norm
	fmt.Printf("Ratings ⋈ Users ⋈ Movies: %d ratings, %d one-hot features over %d attribute tables\n",
		nm.Rows(), nm.Cols(), nm.NumTables())
	st := nm.ComputeStats()
	fmt.Printf("join redundancy: %.1fx storage blow-up if materialized\n\n", st.Redundancy)

	// Materialized baseline uses the sparse join output, as the paper does
	// for the real datasets.
	sp := nm.Sparse()

	// 1. Rating prediction with least squares (normal equations).
	run("linear regression (normal equations)", func() {
		if _, err := ml.LinearRegressionNE(sp, ds.Y); err != nil {
			log.Fatal(err)
		}
	}, func() {
		if _, err := ml.LinearRegressionNE(nm, ds.Y); err != nil {
			log.Fatal(err)
		}
	})

	// 2. Audience segmentation with K-Means (10 clusters, 20 iterations).
	var asgM, asgF *ml.KMeansResult
	run("K-Means (k=10)", func() {
		var err error
		asgM, err = ml.KMeans(sp, 10, ml.Options{Iters: 20, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
	}, func() {
		var err error
		asgF, err = ml.KMeans(nm, 10, ml.Options{Iters: 20, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
	})
	same := 0
	for i := range asgM.Assign {
		if asgM.Assign[i] == asgF.Assign[i] {
			same++
		}
	}
	fmt.Printf("  cluster assignments agree on %d/%d points\n", same, len(asgM.Assign))

	// 3. Topic extraction with GNMF (5 topics). One-hot data is already
	// non-negative, so no shifting is needed.
	var gM, gF *ml.GNMFResult
	run("GNMF (5 topics)", func() {
		var err error
		gM, err = ml.GNMF(sp, 5, ml.Options{Iters: 20, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
	}, func() {
		var err error
		gF, err = ml.GNMF(nm, 5, ml.Options{Iters: 20, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("  factor agreement: max |W_M - W_F| = %.2g\n", la.MaxAbsDiff(gM.W, gF.W))
}

func run(name string, materialized, factorized func()) {
	start := time.Now()
	materialized()
	mT := time.Since(start)
	start = time.Now()
	factorized()
	fT := time.Since(start)
	fmt.Printf("%-38s M=%6.2fs  F=%6.2fs  speed-up %.1fx\n", name, mT.Seconds(), fT.Seconds(), mT.Seconds()/fT.Seconds())
}
