// Command outofcore walks through the parallel out-of-core engine: it
// streams a table that never exists in memory into a chunk store, trains
// the factorized GLM over the chunked base tables under both the serial
// and parallel engines, demonstrates the streamed factorized operators,
// and shows the spill-file lifecycle (Free / Close) leaving the store
// directory empty.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/la"
)

func main() {
	dir, err := os.MkdirTemp("", "morpheus-outofcore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := chunk.NewStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// An ORE-scale shape, shrunk to example size: 200k×20 entity table
	// joined PK-FK with a 10k×40 attribute table.
	const (
		nS, dS    = 200_000, 20
		nR, dR    = 10_000, 40
		chunkRows = 8192
	)
	rng := rand.New(rand.NewSource(1))

	// Build streams chunks straight to disk — the full S never exists in
	// memory.
	start := time.Now()
	sM, err := chunk.Build(store, nS, dS, chunkRows, func(lo, hi int, dst *la.Dense) {
		for i := range dst.Data() {
			dst.Data()[i] = rng.NormFloat64()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fk := make([]int32, nS)
	for i := range fk {
		fk[i] = int32(rng.Intn(nR))
	}
	fkv, err := chunk.BuildIntVector(store, fk, chunkRows)
	if err != nil {
		log.Fatal(err)
	}
	r := la.NewDense(nR, dR)
	for i := range r.Data() {
		r.Data()[i] = rng.NormFloat64()
	}
	nt, err := chunk.NewNormalizedTable(sM, fkv, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spilled S (%d×%d, %.1f MB) + keys in %v; logical T is %d×%d\n",
		nS, dS, float64(sM.BytesOnDisk())/(1<<20), time.Since(start).Round(time.Millisecond),
		nt.Rows(), nt.Cols())

	y := la.NewDense(nS, 1)
	for i := range y.Data() {
		y.Data()[i] = float64(1 - 2*rng.Intn(2))
	}

	// Factorized GLM over the chunked base tables: serial vs parallel.
	const iters = 3
	t0 := time.Now()
	serial, err := chunk.LogRegFactorizedExec(chunk.Serial, nt, y, iters, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	serialT := time.Since(t0)
	t0 = time.Now()
	parallel, err := chunk.LogRegFactorizedExec(chunk.Parallel(), nt, y, iters, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	parallelT := time.Since(t0)
	fmt.Printf("factorized GLM ×%d: serial %v, parallel %v (%d workers) — speedup %.2f×, weights identical: %v\n",
		iters, serialT.Round(time.Millisecond), parallelT.Round(time.Millisecond),
		runtime.GOMAXPROCS(0), float64(serialT)/float64(parallelT),
		la.MaxAbsDiff(serial.W, parallel.W) == 0)

	// Streamed factorized operators (internal/core): TᵀT without ever
	// materializing T.
	t0 = time.Now()
	ctc, err := core.StreamedCrossProd(chunk.Parallel(), nt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed crossprod(T): %d×%d in %v, trace %.1f\n",
		ctc.Rows(), ctc.Cols(), time.Since(t0).Round(time.Millisecond), trace(ctc))

	// Spill-file lifecycle: intermediates are refcounted; Free releases
	// them as soon as the pipeline is done with them.
	prod, err := core.StreamedMul(chunk.Parallel(), nt, la.Ones(nt.Cols(), 2))
	if err != nil {
		log.Fatal(err)
	}
	during := store.LiveChunks()
	sums, err := prod.ColSums()
	if err != nil {
		log.Fatal(err)
	}
	if err := prod.Free(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed T·x: colsum[0] %.1f; live chunks %d → free(intermediate) → %d\n",
		sums.At(0, 0), during, store.LiveChunks())

	if err := nt.Free(); err != nil {
		log.Fatal(err)
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Free + Close: %d files left in the store directory\n", len(left))
}

func trace(m *la.Dense) float64 {
	t := 0.0
	for i := 0; i < int(math.Min(float64(m.Rows()), float64(m.Cols()))); i++ {
		t += m.At(i, i)
	}
	return t
}
