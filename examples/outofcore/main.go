// Command outofcore walks through the parallel out-of-core engine: it
// streams a table that never exists in memory into a sharded chunk store
// (spill files spread across two directories with size-aware placement
// and per-shard write-behind queues — point them at different disks for
// real machines), trains the factorized GLM over the chunked base tables
// under both the serial and parallel engines, extends the same pipeline
// to a two-attribute-table star schema and a one-hot sparse table through
// the unified chunk.Mat interface, clusters the chunked table with
// streamed k-means, factorizes it with streamed GNMF (chunked W factor),
// and shows the spill-file lifecycle (Free / Close) leaving every shard
// directory empty. Chunk heights come from a memory budget via
// chunk.AutoRows, not hard-coded constants. The final section shards a
// store between a local directory and a remote chunk server (an in-process
// morpheus-chunkd): the same drivers run unchanged with half their spill
// chunks living across HTTP.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/la"
)

func main() {
	dir, err := os.MkdirTemp("", "morpheus-outofcore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	shardDirs := []string{filepath.Join(dir, "shard0"), filepath.Join(dir, "shard1")}
	store, err := chunk.NewShardedStore(shardDirs, chunk.LeastBytes)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// An ORE-scale shape, shrunk to example size: a 120k×20 entity table
	// joined PK-FK with two attribute tables (one dense, one one-hot CSR).
	const (
		nS, dS     = 120_000, 20
		nR1, dR1   = 10_000, 40
		nR2, dR2   = 5_000, 64
		memBudget  = 32 << 20 // decoded-chunk memory budget: 32 MB
		totalWidth = dS + dR1 + dR2
	)
	ex := chunk.Parallel()
	chunkRows := chunk.AutoRows(memBudget, totalWidth, ex.Workers, ex.Prefetch)
	rng := rand.New(rand.NewSource(1))

	// Build streams chunks straight to disk — the full S never exists in
	// memory.
	start := time.Now()
	sM, err := chunk.Build(store, nS, dS, chunkRows, func(lo, hi int, dst *la.Dense) {
		for i := range dst.Data() {
			dst.Data()[i] = rng.NormFloat64()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	buildFK := func(nR int) *chunk.IntVector {
		fk := make([]int32, nS)
		for i := range fk {
			fk[i] = int32(rng.Intn(nR))
		}
		v, err := chunk.BuildIntVector(store, fk, chunkRows)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	r1 := la.NewDense(nR1, dR1)
	for i := range r1.Data() {
		r1.Data()[i] = rng.NormFloat64()
	}
	b := la.NewCSRBuilder(nR2, dR2)
	for i := 0; i < nR2; i++ {
		b.Add(i, rng.Intn(dR2), 1) // one-hot attribute rows
	}
	r2 := b.Build()
	nt, err := chunk.NewStarTable(sM, []chunk.AttrTable{
		{FK: buildFK(nR1), R: r1},
		{FK: buildFK(nR2), R: r2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spilled S (%d×%d, %.1f MB) + 2 key columns in %v; logical star T is %d×%d; AutoRows(%d MB) chose %d-row chunks\n",
		nS, dS, float64(sM.BytesOnDisk())/(1<<20), time.Since(start).Round(time.Millisecond),
		nt.Rows(), nt.Cols(), memBudget>>20, chunkRows)
	for i, sh := range store.ShardStats() {
		fmt.Printf("  shard %d (%s): %d chunks, %.1f MB\n", i, filepath.Base(sh.Dir), sh.Chunks, float64(sh.Bytes)/(1<<20))
	}

	y := la.NewDense(nS, 1)
	for i := range y.Data() {
		y.Data()[i] = float64(1 - 2*rng.Intn(2))
	}

	// Factorized GLM over the chunked star: serial vs parallel.
	const iters = 2
	t0 := time.Now()
	serial, err := chunk.LogRegFactorizedExec(chunk.Serial, nt, y, iters, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	serialT := time.Since(t0)
	t0 = time.Now()
	parallel, err := chunk.LogRegFactorizedExec(ex, nt, y, iters, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	parallelT := time.Since(t0)
	fmt.Printf("factorized star GLM ×%d: serial %v, parallel %v (%d workers) — speedup %.2f×, weights identical: %v\n",
		iters, serialT.Round(time.Millisecond), parallelT.Round(time.Millisecond),
		runtime.GOMAXPROCS(0), float64(serialT)/float64(parallelT),
		la.MaxAbsDiff(serial.W, parallel.W) == 0)

	// A one-hot sparse table trains through the same chunk.Mat interface:
	// CSR chunks pay I/O per non-zero, not per cell.
	sparseT, err := buildOneHot(store, rng, nS, 512, chunk.AutoRows(memBudget, 512, ex.Workers, ex.Prefetch))
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	resSparse, err := chunk.LogRegMaterializedExec(ex, sparseT, y, iters, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparse one-hot GLM ×%d over CSR chunks: %v, %.1f MB read (dense equivalent would read %.1f MB)\n",
		iters, time.Since(t0).Round(time.Millisecond),
		float64(resSparse.BytesRead)/(1<<20),
		float64(iters)*float64(nS)*512*8/(1<<20))
	if err := sparseT.Free(); err != nil {
		log.Fatal(err)
	}

	// Streamed factorized operators (internal/core): TᵀT of the star
	// without ever materializing T.
	t0 = time.Now()
	ctc, err := core.StreamedCrossProd(ex, nt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed crossprod(T): %d×%d in %v, trace %.1f\n",
		ctc.Rows(), ctc.Cols(), time.Since(t0).Round(time.Millisecond), trace(ctc))

	// Streamed k-means: per-iteration distance + argmin passes over the
	// chunks, centroid reduction through the ordered-commit pipeline, and
	// a chunked assignment column that never sits in memory.
	t0 = time.Now()
	km, err := chunk.KMeansExec(ex, sM, 8, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed k-means (k=8, 3 iters): %v, objective %.1f, assignments stored as %d chunked rows\n",
		time.Since(t0).Round(time.Millisecond), km.Objective, km.Assign.Rows())
	if err := km.Assign.Free(); err != nil {
		log.Fatal(err)
	}

	// Streamed GNMF (the last §4 algorithm): the tall W factor is itself
	// chunked and aligned with the input; intermediate W generations are
	// freed as the multiplicative updates advance.
	posT, err := sM.StreamToMatrix(ex, dS, func(ci, lo int, c la.Mat) (*la.Dense, error) {
		return c.ApplyM(math.Abs).(*la.Dense), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	gn, err := chunk.GNMFExec(ex, posT, 5, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	recon, err := gn.ReconstructionError(ex, posT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed GNMF (rank=5, 3 iters): %v, ‖T−WHᵀ‖² %.1f, W spilled as %d chunks, %.1f MB streamed\n",
		time.Since(t0).Round(time.Millisecond), recon, gn.W.NumChunks(), float64(gn.BytesRead)/(1<<20))
	if err := gn.W.Free(); err != nil {
		log.Fatal(err)
	}
	if err := posT.Free(); err != nil {
		log.Fatal(err)
	}

	// Spill-file lifecycle: intermediates are refcounted; Free releases
	// them as soon as the pipeline is done with them.
	prod, err := core.StreamedMul(ex, nt, la.Ones(nt.Cols(), 2))
	if err != nil {
		log.Fatal(err)
	}
	during := store.LiveChunks()
	sums, err := prod.ColSums()
	if err != nil {
		log.Fatal(err)
	}
	if err := prod.Free(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed T·x: colsum[0] %.1f; live chunks %d → free(intermediate) → %d\n",
		sums.At(0, 0), during, store.LiveChunks())

	if err := nt.Free(); err != nil {
		log.Fatal(err)
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	left := 0
	for _, sd := range shardDirs {
		entries, err := os.ReadDir(sd)
		if err != nil {
			log.Fatal(err)
		}
		left += len(entries)
	}
	fmt.Printf("after Free + Close: %d files left across both shard directories\n", left)

	remoteShardDemo(rng)
}

// remoteShardDemo shards one store between a local directory and a remote
// chunk server — the morpheus-chunkd protocol served in-process — and
// trains over it: placement policies, write-behind queues, and accounting
// treat the remote node exactly like another disk.
func remoteShardDemo(rng *rand.Rand) {
	dir, err := os.MkdirTemp("", "morpheus-remote-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	handler, err := chunk.NewChunkServer(filepath.Join(dir, "served"), 0)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	local, err := chunk.NewDirBackend(filepath.Join(dir, "local"))
	if err != nil {
		log.Fatal(err)
	}
	remote, err := chunk.NewRemoteBackend(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	store, err := chunk.NewShardedStoreBackends([]chunk.Backend{local, remote}, chunk.LeastBytes)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	const n, d = 20_000, 24
	ex := chunk.Parallel()
	t := la.NewDense(n, d)
	for i := range t.Data() {
		t.Data()[i] = rng.NormFloat64()
	}
	y := la.NewDense(n, 1)
	for i := range y.Data() {
		y.Data()[i] = float64(1 - 2*rng.Intn(2))
	}
	tM, err := chunk.FromDense(store, t, chunk.AutoRows(8<<20, d, ex.Workers, ex.Prefetch))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := chunk.LogRegMaterializedExec(ex, tM, y, 2, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed local+remote store: GLM over %d chunks in %v, ‖w‖ %.4f\n",
		tM.NumChunks(), time.Since(t0).Round(time.Millisecond), math.Sqrt(res.W.CrossProd().At(0, 0)))
	for _, sh := range store.ShardStats() {
		kind := "local dir"
		if strings.HasPrefix(sh.Dir, "http") {
			kind = "remote chunkd"
		}
		fmt.Printf("  %-13s %-26s %2d chunks, %.1f MB\n", kind, sh.Dir, sh.Chunks, float64(sh.Bytes)/(1<<20))
	}

	// Pushdown: the same pass with Exec.Pushdown maps chunks held by the
	// chunkd worker in place (POST /exec) — only the partials travel back —
	// and the ordered reduction keeps the result bit-identical.
	xpLocal, err := tM.CrossProdExec(ex)
	if err != nil {
		log.Fatal(err)
	}
	exPush := ex
	exPush.Pushdown = true
	t0 = time.Now()
	xpPush, err := tM.CrossProdExec(exPush)
	if err != nil {
		log.Fatal(err)
	}
	if la.MaxAbsDiff(xpLocal, xpPush) != 0 {
		log.Fatal("pushdown crossprod diverged from the all-local pass")
	}
	kmLocal, err := chunk.KMeansExec(ex, tM, 4, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	kmPush, err := chunk.KMeansExec(exPush, tM, 4, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	if la.MaxAbsDiff(kmLocal.Centroids, kmPush.Centroids) != 0 {
		log.Fatal("pushdown k-means diverged from the all-local pass")
	}
	if err := kmLocal.Assign.Free(); err != nil {
		log.Fatal(err)
	}
	if err := kmPush.Assign.Free(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pushdown: crossprod + k-means mapped on the chunkd worker in %v, bit-identical to local\n",
		time.Since(t0).Round(time.Millisecond))

	if err := tM.Free(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Free: store tracks %d chunks, %d bytes — remote shard drained like a disk\n",
		store.LiveChunks(), store.BytesOnDisk())
}

// buildOneHot spills an n×cols CSR table with one 1 per row, never holding
// the whole matrix in memory more than once.
func buildOneHot(store *chunk.Store, rng *rand.Rand, n, cols, chunkRows int) (*chunk.SparseMatrix, error) {
	b := la.NewCSRBuilder(n, cols)
	for i := 0; i < n; i++ {
		b.Add(i, rng.Intn(cols), 1)
	}
	return chunk.FromCSR(store, b.Build(), chunkRows)
}

func trace(m *la.Dense) float64 {
	t := 0.0
	for i := 0; i < int(math.Min(float64(m.Rows()), float64(m.Cols()))); i++ {
		t += m.At(i, i)
	}
	return t
}
