// Csvpipeline is the end-to-end adoption path: raw CSV base tables on disk
// → typed tables → key resolution and one-hot encoding → normalized matrix
// → factorized training — without ever executing the join. This is the
// §3.2 construction ("S = read.csv(...); K = sparseMatrix(...)") as a
// library workflow.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/ml"
	"repro/internal/table"
)

const ordersCSV = `OrderID,Late,Qty,Weight,WarehouseID
o1,1,3,12.5,w1
o2,-1,1,2.0,w2
o3,1,7,33.1,w1
o4,-1,2,4.4,w3
o5,1,5,21.9,w1
o6,-1,1,1.2,w2
o7,-1,4,15.0,w3
o8,1,6,28.4,w1
`

// Capacity is in thousands of units, keeping features on comparable
// scales for plain gradient descent.
const warehousesCSV = `WarehouseID,Capacity,Region
w1,1.2,EU
w2,3.0,US
w3,4.5,US
`

func main() {
	dir, err := os.MkdirTemp("", "morpheus-csv-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		return p
	}
	ordersPath := write("orders.csv", ordersCSV)
	warehousesPath := write("warehouses.csv", warehousesCSV)
	fmt.Println("base tables:", ordersPath, warehousesPath)

	// 1. Load the CSVs with a declared schema.
	of, err := os.Open(ordersPath)
	if err != nil {
		log.Fatal(err)
	}
	defer of.Close()
	orders, err := table.ReadCSV("Orders", of, map[string]table.ColumnKind{
		"OrderID": table.Key, "WarehouseID": table.Key,
	})
	if err != nil {
		log.Fatal(err)
	}
	wf, err := os.Open(warehousesPath)
	if err != nil {
		log.Fatal(err)
	}
	defer wf.Close()
	warehouses, err := table.ReadCSV("Warehouses", wf, map[string]table.ColumnKind{
		"WarehouseID": table.Key, "Region": table.Categorical,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Declare the join; Build resolves keys and encodes features —
	// no join output is ever materialized.
	nm, y, features, err := table.Build(table.JoinSpec{
		Entity:         orders,
		EntityFeatures: []string{"Qty", "Weight"},
		Target:         "Late",
		Attributes: []table.AttributeRef{{
			Table:      warehouses,
			PrimaryKey: "WarehouseID",
			ForeignKey: "WarehouseID",
			Features:   []string{"Capacity", "Region"},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normalized matrix: %d orders × %d features: %v\n", nm.Rows(), nm.Cols(), features)

	// 3. Train factorized logistic regression on late-delivery labels.
	w, err := ml.LogisticRegressionGD(nm, y, nil, ml.Options{Iters: 200, StepSize: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlearned weights:")
	for i, f := range features {
		fmt.Printf("  %-22s %+.5f\n", f, w.At(i, 0))
	}

	// 4. Score — also factorized.
	pred := ml.ClassifyLogistic(nm, w)
	acc, err := ml.Accuracy(pred, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraining accuracy: %.0f%%\n", 100*acc)
}
