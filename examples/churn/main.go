// Churn reproduces the paper's running example (§2): an insurance analyst
// predicts customer churn with logistic regression over
// Customers(CustomerID, Churn, Age, Income, EmployerID) joined with
// Employers(EmployerID, Revenue, Country...). The same training script runs
// materialized and factorized; the weights agree and the factorized run is
// faster whenever the decision rule says it will be.
package main

import (
	"fmt"
	"log"
	"time"

	repro "repro"
	"repro/internal/datagen"
	"repro/internal/ml"
)

func main() {
	// Customers: 200k rows, 2 features (Age, Income); Employers: 10k rows,
	// 40 features (Revenue + one-hot Country) -> tuple ratio 20, feature
	// ratio 20.
	spec := datagen.PKFKSpec{NS: 200_000, DS: 2, NR: 10_000, DR: 40, Seed: 42}
	customers, err := datagen.PKFK(spec)
	if err != nil {
		log.Fatal(err)
	}
	churn := datagen.Labels(customers, 0.5, true, 42)
	fmt.Printf("Customers ⋈ Employers: %d rows, %d features (TR=%.0f, FR=%.0f)\n",
		customers.Rows(), customers.Cols(), spec.TupleRatio(), spec.FeatureRatio())

	adv := repro.DefaultAdvisor()
	st := customers.ComputeStats()
	fmt.Printf("decision rule (tau=5, rho=1): factorize? %v (redundancy %.1fx)\n\n",
		adv.ShouldFactorize(st), st.Redundancy)

	opt := ml.Options{Iters: 20, StepSize: 1e-7}

	start := time.Now()
	td := customers.Dense() // the join the analyst would have run
	joinTime := time.Since(start)
	start = time.Now()
	wM, err := ml.LogisticRegressionGD(td, churn, nil, opt)
	if err != nil {
		log.Fatal(err)
	}
	mTime := time.Since(start)

	start = time.Now()
	wF, err := ml.LogisticRegressionGD(customers, churn, nil, opt)
	if err != nil {
		log.Fatal(err)
	}
	fTime := time.Since(start)

	maxDiff := 0.0
	for i := 0; i < wM.Rows(); i++ {
		d := wM.At(i, 0) - wF.At(i, 0)
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("materialized: join %.2fs + train %.2fs\n", joinTime.Seconds(), mTime.Seconds())
	fmt.Printf("factorized:   train %.2fs  (%.1fx training speed-up, %.1fx end-to-end)\n",
		fTime.Seconds(), mTime.Seconds()/fTime.Seconds(),
		(joinTime.Seconds()+mTime.Seconds())/fTime.Seconds())
	fmt.Printf("weight agreement: max |wM - wF| = %.2g\n", maxDiff)

	lossM := ml.LogisticLoss(customers, churn, wM)
	lossF := ml.LogisticLoss(customers, churn, wF)
	fmt.Printf("final loss: M=%.4f F=%.4f\n", lossM, lossF)
}
