package repro

import (
	"repro/internal/expr"
	"repro/internal/table"
)

// Relational ingestion layer (internal/table): CSV base tables → typed
// columns → key resolution → one-hot encoding → normalized matrix.

// Table is a typed columnar base table.
type Table = table.Table

// Column is one typed column of a Table.
type Column = table.Column

// ColumnKind classifies a column (Numeric, Categorical, Key).
type ColumnKind = table.ColumnKind

// Column kinds.
const (
	Numeric     = table.Numeric
	Categorical = table.Categorical
	Key         = table.Key
)

// JoinSpec declares a star-schema dataset over base tables.
type JoinSpec = table.JoinSpec

// AttributeRef wires one attribute table into a JoinSpec.
type AttributeRef = table.AttributeRef

// Table-layer entry points.
var (
	ReadCSVTable      = table.ReadCSV
	BuildJoin         = table.Build
	BuildKeyIndex     = table.BuildKeyIndex
	ResolveForeignKey = table.ResolveForeignKey
)

// LA script layer (internal/expr): lazy expression DAG with the
// script-level rewrites of §6 (transpose elimination, crossprod
// recognition, matrix-chain ordering).

// Expr is a lazy LA expression node.
type Expr = expr.Expr

// Script-layer constructors and the optimizer.
var (
	Leaf         = expr.NewLeaf
	TransposeOf  = expr.Transpose
	ScaleOf      = expr.Scale
	ApplyOf      = expr.Apply
	MulOf        = expr.Mul
	CrossProdOf  = expr.CrossProd
	RowSumsOf    = expr.RowSums
	ColSumsOf    = expr.ColSums
	OptimizeExpr = expr.Optimize
)
