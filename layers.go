package repro

import (
	"repro/internal/expr"
	"repro/internal/serve"
	"repro/internal/table"
)

// Relational ingestion layer (internal/table): CSV base tables → typed
// columns → key resolution → one-hot encoding → normalized matrix.

// Table is a typed columnar base table.
type Table = table.Table

// Column is one typed column of a Table.
type Column = table.Column

// ColumnKind classifies a column (Numeric, Categorical, Key).
type ColumnKind = table.ColumnKind

// Column kinds.
const (
	Numeric     = table.Numeric
	Categorical = table.Categorical
	Key         = table.Key
)

// JoinSpec declares a star-schema dataset over base tables.
type JoinSpec = table.JoinSpec

// AttributeRef wires one attribute table into a JoinSpec.
type AttributeRef = table.AttributeRef

// Table-layer entry points.
var (
	ReadCSVTable      = table.ReadCSV
	BuildJoin         = table.Build
	BuildKeyIndex     = table.BuildKeyIndex
	ResolveForeignKey = table.ResolveForeignKey
)

// LA script layer (internal/expr): lazy expression DAG with the
// script-level rewrites of §6 (transpose elimination, crossprod
// recognition, matrix-chain ordering).

// Expr is a lazy LA expression node.
type Expr = expr.Expr

// Script-layer constructors and the optimizer.
var (
	Leaf         = expr.NewLeaf
	TransposeOf  = expr.Transpose
	ScaleOf      = expr.Scale
	ApplyOf      = expr.Apply
	MulOf        = expr.Mul
	CrossProdOf  = expr.CrossProd
	RowSumsOf    = expr.RowSums
	ColSumsOf    = expr.ColSums
	OptimizeExpr = expr.Optimize
)

// Serving layer (internal/serve): concurrent batched scoring over a
// normalized feature store with cached attribute-table partial products
// (T·w = S·wS + Σ K_i·(R_i·w_{R_i}), precomputed per model).

// Scorer answers single-row and batch prediction requests from cached
// partials; weights swap atomically via UpdateWeights.
type Scorer = serve.Scorer

// Batcher coalesces concurrent single-row scoring calls into shared batch
// gather passes on a bounded worker pool.
type Batcher = serve.Batcher

// BatchOptions tunes the Batcher's micro-batching dispatcher.
type BatchOptions = serve.BatchOptions

// BatchScorer is the backend contract a Batcher coalesces over.
type BatchScorer = serve.BatchScorer

// ScoreHead selects the scorer's link function.
type ScoreHead = serve.Head

// Scorer link functions.
const (
	LinearHead   = serve.Linear
	LogisticHead = serve.Logistic
)

// Serving-layer entry points.
var (
	NewScorer  = serve.NewScorer
	NewBatcher = serve.NewBatcher
)
