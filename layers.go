package repro

import (
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/serve"
	"repro/internal/table"
)

// Relational ingestion layer (internal/table): CSV base tables → typed
// columns → key resolution → one-hot encoding → normalized matrix.

// Table is a typed columnar base table.
type Table = table.Table

// Column is one typed column of a Table.
type Column = table.Column

// ColumnKind classifies a column (Numeric, Categorical, Key).
type ColumnKind = table.ColumnKind

// Column kinds.
const (
	Numeric     = table.Numeric
	Categorical = table.Categorical
	Key         = table.Key
)

// JoinSpec declares a star-schema dataset over base tables.
type JoinSpec = table.JoinSpec

// AttributeRef wires one attribute table into a JoinSpec.
type AttributeRef = table.AttributeRef

// Table-layer entry points.
var (
	ReadCSVTable      = table.ReadCSV
	BuildJoin         = table.Build
	BuildKeyIndex     = table.BuildKeyIndex
	ResolveForeignKey = table.ResolveForeignKey
)

// LA script layer (internal/expr): lazy expression DAG with the
// script-level rewrites of §6 (transpose elimination, crossprod
// recognition, matrix-chain ordering).

// Expr is a lazy LA expression node.
type Expr = expr.Expr

// Script-layer constructors and the optimizer.
var (
	Leaf         = expr.NewLeaf
	TransposeOf  = expr.Transpose
	ScaleOf      = expr.Scale
	ApplyOf      = expr.Apply
	MulOf        = expr.Mul
	CrossProdOf  = expr.CrossProd
	RowSumsOf    = expr.RowSums
	ColSumsOf    = expr.ColSums
	OptimizeExpr = expr.Optimize
)

// Out-of-core layer (internal/chunk + the streamed operators in
// internal/core): a directory-backed chunk store, dense and CSR chunked
// matrices behind one operator interface, star-schema normalized tables,
// and the streamed GLM / k-means drivers.

// ChunkStore manages refcounted chunk files across one or more shard
// backends (local directories, remote chunk servers, or a mix).
type ChunkStore = chunk.Store

// ChunkBackend stores one shard's chunk blobs (local directory or remote
// chunk server); implement it to put spill chunks anywhere else.
type ChunkBackend = chunk.Backend

// ChunkServer serves one shard directory over HTTP (the morpheus-chunkd
// handler).
type ChunkServer = chunk.ChunkServer

// RemoteChunkBackend is the client side of the morpheus-chunkd protocol.
type RemoteChunkBackend = chunk.RemoteBackend

// ChunkPlacement selects how a sharded store spreads chunk files across
// its directories.
type ChunkPlacement = chunk.Placement

// Shard placement policies.
const (
	ChunkRoundRobin = chunk.RoundRobin
	ChunkLeastBytes = chunk.LeastBytes
)

// ChunkShardStat is one shard directory's accounted footprint.
type ChunkShardStat = chunk.ShardStat

// ChunkExec configures a streaming pass (workers + prefetch depth +
// pushdown).
type ChunkExec = chunk.Exec

// ChunkOp names a registered per-chunk map whose partials reduce on the
// driver; with pushdown it runs on the shard holding each chunk.
type ChunkOp = chunk.Op

// ChunkExecBackend is the worker capability a pushdown pass probes shard
// backends for (implemented by RemoteChunkBackend against morpheus-chunkd).
type ChunkExecBackend = chunk.ExecBackend

// ChunkMat is the chunked-operand interface implemented by both the dense
// and the CSR chunked matrix.
type ChunkMat = chunk.Mat

// ChunkMatrix is a dense matrix in fixed-height on-disk row chunks.
type ChunkMatrix = chunk.Matrix

// ChunkSparseMatrix is a CSR matrix in on-disk row chunks.
type ChunkSparseMatrix = chunk.SparseMatrix

// ChunkIntVector is an on-disk chunked key column (foreign keys, row
// selectors).
type ChunkIntVector = chunk.IntVector

// ChunkAttrTable is one arm of an out-of-core star schema.
type ChunkAttrTable = chunk.AttrTable

// ChunkNormalizedTable is the out-of-core star-schema normalized matrix.
type ChunkNormalizedTable = chunk.NormalizedTable

// ChunkKMeansResult holds streamed k-means centroids, the chunked
// assignment column, and I/O counters.
type ChunkKMeansResult = chunk.KMeansResult

// ChunkGNMFResult holds the streamed GNMF factors: chunked W, in-memory H.
type ChunkGNMFResult = chunk.GNMFResult

// ChunkCodec frames chunk blobs for compressed storage and transport;
// NewCompressingChunkBackend applies one behind the backend seam.
type ChunkCodec = chunk.Codec

// ChunkZoneMap is the per-chunk metadata (min/max/nnz/all-zero/column
// blocks) the zone-map wrapper records at spill time so streaming
// reductions can skip proven non-contributing chunks.
type ChunkZoneMap = chunk.ZoneMap

// ChunkIOStats aggregates a store's read/skip/wire accounting.
type ChunkIOStats = chunk.IOStats

// ChunkCodecShuffleFlate is the built-in chunk codec: byte-shuffled
// DEFLATE with a stored fallback for incompressible blobs.
const ChunkCodecShuffleFlate = chunk.CodecShuffleFlate

// Out-of-core entry points.
var (
	NewChunkStore                = chunk.NewStore
	NewShardedChunkStore         = chunk.NewShardedStore
	NewShardedChunkStoreBackends = chunk.NewShardedStoreBackends
	NewChunkDirBackend           = chunk.NewDirBackend
	NewRemoteChunkBackend        = chunk.NewRemoteBackend
	NewChunkServer               = chunk.NewChunkServer
	NewCompressingChunkBackend   = chunk.NewCompressingBackend
	NewZoneMapChunkBackend       = chunk.NewZoneMapBackend
	ChunkCodecByName             = chunk.CodecByName
	ChunkCodecs                  = chunk.Codecs
	ChunkBuild                   = chunk.Build
	ChunkFromDense               = chunk.FromDense
	ChunkFromCSR                 = chunk.FromCSR
	BuildChunkIntVector          = chunk.BuildIntVector
	NewChunkStarTable            = chunk.NewStarTable
	AutoChunkRows                = chunk.AutoRows
	AutoChunkRowsChecked         = chunk.AutoRowsChecked
	ChunkSerial                  = chunk.Serial
	ChunkParallel                = chunk.Parallel
	ChunkOpCrossProd             = chunk.OpCrossProd
	ChunkOpColSums               = chunk.OpColSums
	ChunkOpSum                   = chunk.OpSum
	ChunkOpKMeansAssign          = chunk.OpKMeansAssign
	ChunkedLogRegExec            = chunk.LogRegMaterializedExec
	ChunkedLogRegFactorizedExec  = chunk.LogRegFactorizedExec
	ChunkedLogRegMNExec          = chunk.LogRegFactorizedMNExec
	ChunkedKMeansExec            = chunk.KMeansExec
	ChunkedGNMFExec              = chunk.GNMFExec
	StreamedCrossProd            = core.StreamedCrossProd
	StreamedMul                  = core.StreamedMul
	StreamedTMul                 = core.StreamedTMul
)

// Planning layer (internal/plan): the statistics-free Plan(op, operands,
// env) seam every driver runs through — factorized vs materialized,
// in-memory vs chunked, serial vs parallel, pushdown, read interleave —
// from structural facts alone, with explainable Decisions.

// PlanOp names a planned operation (PlanOpGLM, PlanOpKMeans, ...).
type PlanOp = plan.Op

// Planned operations.
const (
	PlanOpGLM       = plan.OpGLM
	PlanOpKMeans    = plan.OpKMeans
	PlanOpGNMF      = plan.OpGNMF
	PlanOpCrossProd = plan.OpCrossProd
	PlanOpColSums   = plan.OpColSums
	PlanOpSum       = plan.OpSum
)

// PlanOperands is the planner's structural view of the data.
type PlanOperands = plan.Operands

// PlanEnv is the planner's view of the machine and chunk store.
type PlanEnv = plan.Env

// PlanStrategy is one chosen value per execution axis.
type PlanStrategy = plan.Strategy

// PlanDecision is an explainable plan: strategy + facts + fired rules.
type PlanDecision = plan.Decision

// Planning-layer entry points: the planner itself, fact gatherers, and
// the planner-driven training drivers (the explicit ChunkedExec forms
// above remain as overrides).
var (
	PlanFor              = plan.Plan
	PlanEnvFor           = plan.EnvFor
	PlanChoose           = plan.Choose
	MaterializedOperands = plan.MaterializedOperands
	StarOperands         = plan.StarOperands
	MNOperands           = plan.MNOperands
	InMemoryOperands     = plan.InMemoryOperands
	PlannedLogReg        = plan.LogReg
	PlannedLogRegMN      = plan.LogRegMN
	PlannedKMeans        = plan.KMeans
	PlannedGNMF          = plan.GNMF
)

// Serving layer (internal/serve): a three-layer scoring fleet over a
// normalized feature store with cached attribute-table partial products
// (T·w = S·wS + Σ K_i·(R_i·w_{R_i}), precomputed per model): Replicas
// (Scorer / ShardedScorer / EpochScorer) gather cached partials, the
// Router places batches across a fleet of them (hash-sharded or
// replicated) under a fleet-wide weight barrier, and the Batcher
// coalesces callers behind a bounded admission queue that fails fast
// with ErrOverloaded instead of queueing without bound.

// Scorer answers single-row and batch prediction requests from cached
// partials; weights swap atomically via UpdateWeights.
type Scorer = serve.Scorer

// ShardedScorer is one hash-slice of a fleet: it owns rows id ≡ shard
// (mod of) and holds the entity-side partial cache only for its slice.
type ShardedScorer = serve.ShardedScorer

// ScoreReplica is one fleet member behind the Router: the batch scoring
// surface plus fleet-wide weight management. Routers nest — a Router is
// itself a ScoreReplica.
type ScoreReplica = serve.Replica

// IntoScorer is the allocation-free capability the Batcher probes its
// backend for (ScoreBatchInto into caller-owned buffers).
type IntoScorer = serve.IntoScorer

// ScoreRouter fans scoring batches across a replica fleet and merges
// results in request order, with UpdateWeights applied fleet-wide.
type ScoreRouter = serve.Router

// ScoreRouterStats counts a router's batches, sub-batches, rows, and
// weight barriers.
type ScoreRouterStats = serve.RouterStats

// FleetPlacement selects how a fleet spreads the partial-product cache.
type FleetPlacement = serve.Placement

// Fleet cache placements.
const (
	ReplicatedFleet  = serve.Replicated
	HashShardedFleet = serve.HashSharded
)

// Batcher coalesces concurrent single-row scoring calls into shared batch
// gather passes on a bounded worker pool behind a bounded admission queue.
type Batcher = serve.Batcher

// BatchOptions tunes the Batcher's micro-batching dispatcher and
// admission queue.
type BatchOptions = serve.BatchOptions

// BatcherStats counts a Batcher's admissions, rejections, batches, and
// peak queue depth.
type BatcherStats = serve.BatcherStats

// BatchScorer is the backend contract a Batcher coalesces over.
type BatchScorer = serve.BatchScorer

// ScoreHead selects the scorer's link function.
type ScoreHead = serve.Head

// Scorer link functions.
const (
	LinearHead   = serve.Linear
	LogisticHead = serve.Logistic
)

// Serving-layer sentinel errors.
var (
	// ErrScoreOverloaded reports a request rejected by a full admission
	// queue.
	ErrScoreOverloaded = serve.ErrOverloaded
	// ErrScoreBatcherClosed reports a Score call after Close.
	ErrScoreBatcherClosed = serve.ErrBatcherClosed
)

// Serving-layer entry points.
var (
	NewScorer        = serve.NewScorer
	NewShardedScorer = serve.NewShardedScorer
	NewScoreRouter   = serve.NewRouter
	NewScorerFleet   = serve.NewScorerFleet
	NewEpochFleet    = serve.NewEpochFleet
	NewBatcher       = serve.NewBatcher
)

// Versioning layer (internal/epoch + the epoch-aware scorer in
// internal/serve): copy-on-write epochs over the base tables of a
// normalized feature store — staged row upserts published atomically by
// Commit, scoring served at a stable epoch with incrementally patched
// partial products, and training reading pinned consistent snapshots
// while writes continue.

// EpochStore is a versioned normalized feature store: frozen join
// structure, epoch-versioned table contents.
type EpochStore = epoch.Store

// EpochVersion numbers published epochs, starting at 1.
type EpochVersion = epoch.Version

// EpochCommit describes one published epoch's per-table row deltas.
type EpochCommit = epoch.Commit

// EpochTableDelta lists one table's changed rows with old and new values.
type EpochTableDelta = epoch.TableDelta

// EpochSnapshot is a pinned, immutable view of one epoch, streamable
// into chunked storage or assembled into a NormalizedMatrix.
type EpochSnapshot = epoch.Snapshot

// EpochScorer scores over an EpochStore, patching its cached partial
// products incrementally per commit.
type EpochScorer = serve.EpochScorer

// EpochPatchStats counts an EpochScorer's incremental maintenance work.
type EpochPatchStats = serve.PatchStats

// ChunkRowSource is the row-streaming seam through which epoch snapshots
// (and any other lazily-patched view) spill into a chunk store.
type ChunkRowSource = chunk.RowSource

// Versioning-layer entry points.
var (
	NewEpochStore      = epoch.NewStore
	NewEpochScorer     = serve.NewEpochScorer
	ChunkFromRowSource = chunk.FromRowSource
	NewNormalized      = core.New
)
