// Package repro is Morpheus-Go: a Go reproduction of "Towards Linear
// Algebra over Normalized Data" (Chen, Kumar, Naughton, Patel; VLDB 2017).
//
// Morpheus introduces the normalized matrix, a logical data type for
// multi-table (joined) data, plus algebraic rewrite rules that execute
// linear-algebra operators over the base tables instead of the materialized
// join output. ML algorithms written against the Matrix interface are
// thereby factorized automatically:
//
//	S := repro.NewDense(nS, dS)            // entity features
//	R := repro.NewDense(nR, dR)            // attribute features
//	K := repro.NewIndicator(fk, nR)        // foreign-key indicator
//	T, err := repro.NewPKFK(S, K, R)       // normalized matrix — never joins
//	w, err := repro.LogisticRegressionGD(T, y, nil, repro.Options{Iters: 20, StepSize: 1e-3})
//
// Passing the materialized matrix instead of T runs the identical algorithm
// unfactorized; the outputs agree to floating-point accuracy.
//
// The facade re-exports the user-facing API from the internal packages:
// internal/la (matrix substrate), internal/core (normalized matrix and
// rewrite rules), internal/ml (the four ML algorithms of the paper's §4).
package repro

import (
	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/ml"
)

// Matrix is the operand interface every LA script is written against; both
// regular matrices and normalized matrices implement it (paper Table 1).
type Matrix = la.Matrix

// Dense is a row-major dense matrix.
type Dense = la.Dense

// CSR is a compressed-sparse-row matrix.
type CSR = la.CSR

// Indicator is a PK-FK / M:N row-selector indicator matrix.
type Indicator = la.Indicator

// NormalizedMatrix is the paper's logical multi-table data type.
type NormalizedMatrix = core.NormalizedMatrix

// Stats carries the tuple/feature-ratio statistics of a normalized matrix.
type Stats = core.Stats

// Advisor is the §3.7 heuristic decision rule.
type Advisor = core.Advisor

// Options configures the iterative ML algorithms.
type Options = ml.Options

// KMeansResult holds fitted centroids and assignments.
type KMeansResult = ml.KMeansResult

// GNMFResult holds the fitted non-negative factors.
type GNMFResult = ml.GNMFResult

// Matrix constructors.
var (
	NewDense      = la.NewDense
	NewDenseData  = la.NewDenseData
	DenseFromRows = la.DenseFromRows
	Eye           = la.Eye
	Ones          = la.Ones
	ColVector     = la.ColVector
	RowVector     = la.RowVector
	NewCSRBuilder = la.NewCSRBuilder
	CSRFromDense  = la.CSRFromDense
	NewIndicator  = la.NewIndicator
)

// Normalized-matrix constructors (§3.1, §3.5, §3.6).
var (
	NewPKFK    = core.NewPKFK
	NewStar    = core.NewStar
	NewMN      = core.NewMN
	NewMultiMN = core.NewMultiMN
)

// DefaultAdvisor returns the τ=5, ρ=1 decision rule of §5.1.
var DefaultAdvisor = core.DefaultAdvisor

// The automatically factorized ML algorithms of §4, plus ridge regression
// and PCA as generality demonstrations, and scoring helpers.
var (
	LogisticRegressionGD     = ml.LogisticRegressionGD
	LogisticLoss             = ml.LogisticLoss
	LinearRegressionNE       = ml.LinearRegressionNE
	LinearRegressionGD       = ml.LinearRegressionGD
	LinearRegressionCofactor = ml.LinearRegressionCofactor
	KMeans                   = ml.KMeans
	GNMF                     = ml.GNMF
	RidgeRegression          = ml.RidgeRegression
	PCA                      = ml.PCA
	PredictLinear            = ml.PredictLinear
	PredictLogistic          = ml.PredictLogistic
	ClassifyLogistic         = ml.ClassifyLogistic
	Accuracy                 = ml.Accuracy
	RMSE                     = ml.RMSE
)

// PCAResult holds fitted principal components.
type PCAResult = ml.PCAResult

// Dense linear-algebra helpers re-exported for building scripts.
var (
	MatMul  = la.MatMul
	TMatMul = la.TMatMul
	MatMulT = la.MatMulT
	Ginv    = la.Ginv
	SymGinv = la.SymGinv
)
