package repro

import (
	"strings"
	"testing"
)

// TestLayersFacade drives the table and expression layers through the
// public facade: CSV text → normalized matrix → optimized LA script.
func TestLayersFacade(t *testing.T) {
	entity, err := ReadCSVTable("S", strings.NewReader("id,x,fk\na,1.5,r1\nb,2.5,r2\nc,0.5,r1\n"),
		map[string]ColumnKind{"id": Key, "fk": Key})
	if err != nil {
		t.Fatal(err)
	}
	attr, err := ReadCSVTable("R", strings.NewReader("rid,v,cat\nr1,10,hi\nr2,20,lo\n"),
		map[string]ColumnKind{"rid": Key, "cat": Categorical})
	if err != nil {
		t.Fatal(err)
	}
	nm, _, features, err := BuildJoin(JoinSpec{
		Entity:         entity,
		EntityFeatures: []string{"x"},
		Attributes: []AttributeRef{{
			Table: attr, PrimaryKey: "rid", ForeignKey: "fk",
			Features: []string{"v", "cat"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nm.Rows() != 3 || nm.Cols() != 4 || len(features) != 4 {
		t.Fatalf("join %dx%d features %v", nm.Rows(), nm.Cols(), features)
	}

	// Script layer over the normalized operand: optimize recognizes AᵀA.
	tl := Leaf("T", nm)
	e := OptimizeExpr(MulOf(TransposeOf(tl), tl))
	got := e.Eval().Dense()
	want := nm.Dense().CrossProd()
	for i := 0; i < want.Rows(); i++ {
		for j := 0; j < want.Cols(); j++ {
			d := got.At(i, j) - want.At(i, j)
			if d > 1e-9 || d < -1e-9 {
				t.Fatal("script-layer crossprod mismatch")
			}
		}
	}
	if !strings.Contains(e.String(), "crossprod") {
		t.Fatalf("optimizer missed crossprod: %s", e.String())
	}
}
