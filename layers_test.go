package repro

import (
	"strings"
	"testing"
)

// TestLayersFacade drives the table and expression layers through the
// public facade: CSV text → normalized matrix → optimized LA script.
func TestLayersFacade(t *testing.T) {
	entity, err := ReadCSVTable("S", strings.NewReader("id,x,fk\na,1.5,r1\nb,2.5,r2\nc,0.5,r1\n"),
		map[string]ColumnKind{"id": Key, "fk": Key})
	if err != nil {
		t.Fatal(err)
	}
	attr, err := ReadCSVTable("R", strings.NewReader("rid,v,cat\nr1,10,hi\nr2,20,lo\n"),
		map[string]ColumnKind{"rid": Key, "cat": Categorical})
	if err != nil {
		t.Fatal(err)
	}
	nm, _, features, err := BuildJoin(JoinSpec{
		Entity:         entity,
		EntityFeatures: []string{"x"},
		Attributes: []AttributeRef{{
			Table: attr, PrimaryKey: "rid", ForeignKey: "fk",
			Features: []string{"v", "cat"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nm.Rows() != 3 || nm.Cols() != 4 || len(features) != 4 {
		t.Fatalf("join %dx%d features %v", nm.Rows(), nm.Cols(), features)
	}

	// Script layer over the normalized operand: optimize recognizes AᵀA.
	tl := Leaf("T", nm)
	e := OptimizeExpr(MulOf(TransposeOf(tl), tl))
	got := e.Eval().Dense()
	want := nm.Dense().CrossProd()
	for i := 0; i < want.Rows(); i++ {
		for j := 0; j < want.Cols(); j++ {
			d := got.At(i, j) - want.At(i, j)
			if d > 1e-9 || d < -1e-9 {
				t.Fatal("script-layer crossprod mismatch")
			}
		}
	}
	if !strings.Contains(e.String(), "crossprod") {
		t.Fatalf("optimizer missed crossprod: %s", e.String())
	}
}

// TestOutOfCoreFacade drives the sharded out-of-core layer through the
// public facade: a two-shard store, a streamed build, chunked k-means and
// GNMF, and shard accounting.
func TestOutOfCoreFacade(t *testing.T) {
	root := t.TempDir()
	st, err := NewShardedChunkStore([]string{root + "/a", root + "/b"}, ChunkLeastBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n, d = 48, 5
	m, err := ChunkBuild(st, n, d, 8, func(lo, hi int, dst *Dense) {
		for i := range dst.Data() {
			dst.Data()[i] = float64((lo+i)%7) + 0.25
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != 2 {
		t.Fatalf("NumShards = %d", st.NumShards())
	}
	var tracked int
	for _, sh := range st.ShardStats() {
		tracked += sh.Chunks
	}
	if tracked != m.NumChunks() {
		t.Fatalf("shard stats track %d chunks, matrix has %d", tracked, m.NumChunks())
	}
	env := PlanEnvFor(st, 0, 0)
	km, kmDec, err := PlannedKMeans(env, m, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if km.Centroids.Rows() != d || km.Centroids.Cols() != 3 {
		t.Fatalf("centroids %dx%d", km.Centroids.Rows(), km.Centroids.Cols())
	}
	if !kmDec.Strategy.Chunked || kmDec.Rule == "" {
		t.Fatalf("k-means decision not explainable: %+v", kmDec)
	}
	g, _, err := PlannedGNMF(env, m, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.W.Rows() != n || g.H.Rows() != d {
		t.Fatalf("GNMF factors W %d rows, H %d rows", g.W.Rows(), g.H.Rows())
	}
	if _, err := AutoChunkRowsChecked(1, 1<<20, 4, 4); err == nil {
		t.Fatal("infeasible chunk budget not reported")
	}
}

// TestServingFacade drives the serving layer through the public facade:
// train factorized, build a cached-partial scorer plus a micro-batching
// frontend, and check both agree with the training-time predictor.
func TestServingFacade(t *testing.T) {
	nm, err := NewPKFK(
		DenseFromRows([][]float64{{1, 0.5}, {2, -1}, {0.5, 3}, {-1, 2}}),
		NewIndicator([]int{0, 1, 1, 0}, 2),
		DenseFromRows([][]float64{{4, 1, -2}, {-3, 2, 5}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	y := ColVector([]float64{1, -1, 1, -1})
	w, err := LogisticRegressionGD(nm, y, nil, Options{Iters: 30, StepSize: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScorer(nm, w, LogisticHead)
	if err != nil {
		t.Fatal(err)
	}
	want := PredictLogistic(nm, w)
	got, err := sc.ScoreBatch([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		d := g - want.At(i, 0)
		if d > 1e-12 || d < -1e-12 {
			t.Fatalf("facade scorer row %d: %g vs %g", i, g, want.At(i, 0))
		}
	}
	b := NewBatcher(sc, BatchOptions{})
	defer b.Close()
	for i := 0; i < nm.Rows(); i++ {
		v, err := b.Score(i)
		if err != nil || v != got[i] {
			t.Fatalf("batched facade score row %d: %g, %v", i, v, err)
		}
	}
}
