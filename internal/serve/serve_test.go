package serve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/ml"
)

// diffTol is the differential-test budget: the scorer accumulates partial
// sums in a different order than the materialized dot product, so exact
// equality is not guaranteed, but on the small random inputs here the two
// must agree far tighter than 1e-12.
const diffTol = 1e-12

// randMat returns a random base-table matrix, dense or sparse per the flag.
func randMat(rng *rand.Rand, rows, cols int, sparse bool) la.Mat {
	d := la.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			d.Set(i, j, rng.NormFloat64())
		}
	}
	if sparse {
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.6 {
					d.Set(i, j, 0)
				}
			}
		}
		return la.CSRFromDense(d)
	}
	return d
}

func randIndicator(rng *rand.Rand, rows, cols int) *la.Indicator {
	assign := make([]int, rows)
	for i := range assign {
		assign[i] = rng.Intn(cols)
	}
	return la.NewIndicator(assign, cols)
}

func randWeights(rng *rand.Rand, d int) *la.Dense {
	w := la.NewDense(d, 1)
	for i := 0; i < d; i++ {
		w.Set(i, 0, rng.NormFloat64())
	}
	return w
}

// randPKFK builds a random single-join normalized matrix with dense or
// sparse base tables.
func randPKFK(rng *rand.Rand, sparse bool) *core.NormalizedMatrix {
	nS := 10 + rng.Intn(40)
	nR := 2 + rng.Intn(8)
	var s la.Mat
	if rng.Intn(4) > 0 { // occasionally dS = 0
		s = randMat(rng, nS, 1+rng.Intn(6), sparse)
	}
	m, err := core.NewPKFK(s, randIndicator(rng, nS, nR), randMat(rng, nR, 1+rng.Intn(6), sparse))
	if err != nil {
		panic(err)
	}
	return m
}

// randStar builds a random star-schema normalized matrix with 2-3 tables.
func randStar(rng *rand.Rand, sparse bool) *core.NormalizedMatrix {
	nS := 10 + rng.Intn(40)
	q := 2 + rng.Intn(2)
	var s la.Mat
	if rng.Intn(4) > 0 {
		s = randMat(rng, nS, 1+rng.Intn(5), sparse)
	}
	ks := make([]*la.Indicator, q)
	rs := make([]la.Mat, q)
	for i := 0; i < q; i++ {
		nR := 2 + rng.Intn(7)
		ks[i] = randIndicator(rng, nS, nR)
		rs[i] = randMat(rng, nR, 1+rng.Intn(5), sparse)
	}
	m, err := core.NewStar(s, ks, rs)
	if err != nil {
		panic(err)
	}
	return m
}

// randMN builds a random two-table M:N normalized matrix.
func randMN(rng *rand.Rand, sparse bool) *core.NormalizedMatrix {
	nS := 5 + rng.Intn(15)
	nR := 5 + rng.Intn(15)
	nU := 2 + rng.Intn(5)
	jS := make([]int, nS)
	jR := make([]int, nR)
	for i := range jS {
		jS[i] = rng.Intn(nU)
	}
	for i := range jR {
		jR[i] = rng.Intn(nU)
	}
	var isAssign, irAssign []int
	for i, a := range jS {
		for j, b := range jR {
			if a == b {
				isAssign = append(isAssign, i)
				irAssign = append(irAssign, j)
			}
		}
	}
	if len(isAssign) == 0 {
		jR[0] = jS[0]
		isAssign = append(isAssign, 0)
		irAssign = append(irAssign, 0)
	}
	m, err := core.NewMN(randMat(rng, nS, 1+rng.Intn(5), sparse),
		la.NewIndicator(isAssign, nS), la.NewIndicator(irAssign, nR),
		randMat(rng, nR, 1+rng.Intn(5), sparse))
	if err != nil {
		panic(err)
	}
	return m
}

// schemaGens enumerates every schema kind × storage class combination the
// scorer must match the ML predictors on.
func schemaGens() map[string]func(*rand.Rand) *core.NormalizedMatrix {
	return map[string]func(*rand.Rand) *core.NormalizedMatrix{
		"pkfk/dense": func(r *rand.Rand) *core.NormalizedMatrix { return randPKFK(r, false) },
		"pkfk/csr":   func(r *rand.Rand) *core.NormalizedMatrix { return randPKFK(r, true) },
		"star/dense": func(r *rand.Rand) *core.NormalizedMatrix { return randStar(r, false) },
		"star/csr":   func(r *rand.Rand) *core.NormalizedMatrix { return randStar(r, true) },
		"mn/dense":   func(r *rand.Rand) *core.NormalizedMatrix { return randMN(r, false) },
		"mn/csr":     func(r *rand.Rand) *core.NormalizedMatrix { return randMN(r, true) },
	}
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// TestDifferentialAgainstPredict is the central serving property test: for
// every schema kind and storage class, ScoreBatch over all rows must equal
// ml.PredictLinear / ml.PredictLogistic on the materialized matrix, and
// ScoreRow must equal ScoreBatch, including with transposed (1×d) weights.
func TestDifferentialAgainstPredict(t *testing.T) {
	for name, gen := range schemaGens() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name))))
			for trial := 0; trial < 20; trial++ {
				nm := gen(rng)
				md := nm.Dense()
				w := randWeights(rng, nm.Cols())
				for _, head := range []Head{Linear, Logistic} {
					// Exercise the transposed-weight constructor path on
					// alternating trials.
					wIn := w
					if trial%2 == 1 {
						wIn = w.TDense()
					}
					sc, err := NewScorer(nm, wIn, head)
					if err != nil {
						t.Fatalf("%v head: %v", head, err)
					}
					var want *la.Dense
					if head == Linear {
						want = ml.PredictLinear(md, w)
					} else {
						want = ml.PredictLogistic(md, w)
					}
					got, err := sc.ScoreBatch(allIDs(nm.Rows()))
					if err != nil {
						t.Fatal(err)
					}
					for i, g := range got {
						if math.Abs(g-want.At(i, 0)) > diffTol {
							t.Fatalf("%v head row %d: scorer %.17g, predict %.17g", head, i, g, want.At(i, 0))
						}
					}
					// Single-row path and ScoreAll agree with the batch path.
					all := sc.ScoreAll()
					for _, i := range []int{0, nm.Rows() / 2, nm.Rows() - 1} {
						one, err := sc.ScoreRow(i)
						if err != nil {
							t.Fatal(err)
						}
						if one != got[i] || all[i] != got[i] {
							t.Fatalf("row %d: ScoreRow %.17g, ScoreAll %.17g, ScoreBatch %.17g", i, one, all[i], got[i])
						}
					}
				}
			}
		})
	}
}

// TestQuickScorerMatchesFactorizedPredict mirrors core/quick_test.go: for
// arbitrary seeds, the cached-partial scorer must match the factorized
// predictor run directly on the normalized matrix.
func TestQuickScorerMatchesFactorizedPredict(t *testing.T) {
	gens := []func(*rand.Rand) *core.NormalizedMatrix{
		func(r *rand.Rand) *core.NormalizedMatrix { return randPKFK(r, r.Intn(2) == 0) },
		func(r *rand.Rand) *core.NormalizedMatrix { return randStar(r, r.Intn(2) == 0) },
		func(r *rand.Rand) *core.NormalizedMatrix { return randMN(r, r.Intn(2) == 0) },
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nm := gens[rng.Intn(len(gens))](rng)
		w := randWeights(rng, nm.Cols())
		head := Head(rng.Intn(2))
		sc, err := NewScorer(nm, w, head)
		if err != nil {
			return false
		}
		var want *la.Dense
		if head == Linear {
			want = ml.PredictLinear(nm, w)
		} else {
			want = ml.PredictLogistic(nm, w)
		}
		got, err := sc.ScoreBatch(allIDs(nm.Rows()))
		if err != nil {
			return false
		}
		for i, g := range got {
			if math.Abs(g-want.At(i, 0)) > diffTol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateWeightsMatchesFreshScorer checks that weight swaps fully
// invalidate the partial cache.
func TestUpdateWeightsMatchesFreshScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nm := randStar(rng, true)
	w1 := randWeights(rng, nm.Cols())
	w2 := randWeights(rng, nm.Cols())
	sc, err := NewScorer(nm, w1, Logistic)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.UpdateWeights(w2.TDense()); err != nil { // transposed update
		t.Fatal(err)
	}
	fresh, err := NewScorer(nm, w2, Logistic)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.ScoreBatch(allIDs(nm.Rows()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ScoreBatch(allIDs(nm.Rows()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: updated %.17g, fresh %.17g", i, got[i], want[i])
		}
	}
	if la.MaxAbsDiff(sc.Weights(), w2) != 0 {
		t.Fatal("Weights() does not reflect the update")
	}
}

// TestScorerTrainedModelEndToEnd trains logistic regression factorized and
// checks the scorer reproduces the training-time predictions.
func TestScorerTrainedModelEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nm := randPKFK(rng, false)
	y := la.NewDense(nm.Rows(), 1)
	for i := 0; i < y.Rows(); i++ {
		if rng.Intn(2) == 0 {
			y.Set(i, 0, 1)
		} else {
			y.Set(i, 0, -1)
		}
	}
	w, err := ml.LogisticRegressionGD(nm, y, nil, ml.Options{Iters: 15, StepSize: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScorer(nm, w, Logistic)
	if err != nil {
		t.Fatal(err)
	}
	want := ml.PredictLogistic(nm, w)
	got, err := sc.ScoreBatch(allIDs(nm.Rows()))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if math.Abs(g-want.At(i, 0)) > diffTol {
			t.Fatalf("row %d: %.17g vs %.17g", i, g, want.At(i, 0))
		}
	}
}

func TestScorerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nm := randPKFK(rng, false)
	w := randWeights(rng, nm.Cols())
	if _, err := NewScorer(nil, w, Linear); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := NewScorer(nm, nil, Linear); err == nil {
		t.Fatal("nil weights accepted")
	}
	if _, err := NewScorer(nm, randWeights(rng, nm.Cols()+1), Linear); err == nil {
		t.Fatal("wrong-length weights accepted")
	}
	if _, err := NewScorer(nm, la.NewDense(nm.Cols(), 2), Linear); err == nil {
		t.Fatal("two-column weights accepted")
	}
	if _, err := NewScorer(nm.Transpose(), w, Linear); err == nil {
		t.Fatal("transposed matrix accepted")
	}
	if _, err := NewScorer(nm, w, Head(99)); err == nil {
		t.Fatal("unknown head accepted")
	}
	sc, err := NewScorer(nm, w, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ScoreRow(-1); err == nil {
		t.Fatal("negative row accepted")
	}
	if _, err := sc.ScoreRow(nm.Rows()); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := sc.ScoreBatch([]int{0, nm.Rows()}); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if err := sc.UpdateWeights(randWeights(rng, nm.Cols()-1)); err == nil {
		t.Fatal("wrong-length weight update accepted")
	}
	// 1×1 weight for a 1-feature matrix is both d×1 and 1×d; must work.
	one, err := core.NewPKFK(nil, la.NewIndicator([]int{0, 0}, 1), la.NewDenseData(1, 1, []float64{2}))
	if err != nil {
		t.Fatal(err)
	}
	oneSc, err := NewScorer(one, la.NewDenseData(1, 1, []float64{3}), Linear)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := oneSc.ScoreRow(0); err != nil || v != 6 {
		t.Fatalf("1x1 score = %g, %v; want 6", v, err)
	}
}
