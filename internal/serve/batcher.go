package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// BatchOptions tunes the micro-batching dispatcher.
type BatchOptions struct {
	// MaxBatch is the largest number of requests coalesced into one gather
	// pass (default 256).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company (default 100µs).
	MaxDelay time.Duration
	// Workers bounds how many batches execute concurrently
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a batch
	// slot (default Workers × MaxBatch). When the queue is full, Score
	// fails fast with ErrOverloaded instead of blocking — the admission
	// edge of the serving stack.
	QueueDepth int
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 100 * time.Microsecond
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = o.Workers * o.MaxBatch
	}
	return o
}

// BatchScorer is the backend contract the Batcher coalesces over; *Scorer
// implements it, and wrappers (instrumentation, sharding) can too.
type BatchScorer interface {
	Rows() int
	ScoreBatch(ids []int) ([]float64, error)
}

// BatcherStats counts the admission and execution work a Batcher has
// performed. Snapshot via Batcher.Stats.
type BatcherStats struct {
	// Accepted is the number of requests admitted into the queue.
	Accepted uint64
	// Rejected is the number of requests refused with ErrOverloaded
	// because the queue was full.
	Rejected uint64
	// Batches is the number of coalesced gather passes executed.
	Batches uint64
	// Scored is the number of admitted requests answered (equals Accepted
	// once the batcher is idle or closed).
	Scored uint64
	// PeakQueue is the deepest the admission queue has been.
	PeakQueue int
}

// Batcher coalesces concurrent single-row scoring calls into shared batch
// gather passes behind a bounded admission queue. Callers block in Score
// until their batch executes; a dispatcher goroutine groups arrivals (up
// to MaxBatch, waiting at most MaxDelay) and feeds a fixed pool of Workers
// batch executors, so heavy concurrent traffic amortizes into a few wide
// gather passes instead of many single-row lock acquisitions.
//
// Overload semantics: at most QueueDepth requests wait for execution; a
// request arriving at a full queue fails fast with ErrOverloaded instead
// of queuing unboundedly, so latency under saturation stays bounded and
// the caller — not the queue — decides whether to retry. After Close,
// Score fails fast with ErrBatcherClosed; requests admitted before Close
// are always answered. When the backend also implements IntoScorer, the
// steady-state request path is allocation-free: response channels, batch
// buffers, and score buffers are pooled.
type Batcher struct {
	sc   BatchScorer
	into IntoScorer // non-nil when sc supports allocation-free scoring
	opt  BatchOptions

	reqs chan batchReq // buffered by QueueDepth: the admission queue
	jobs chan *batchJob
	quit chan struct{}

	// admit orders Score's closed-check + enqueue against Close: Score
	// holds it shared around the try-send, Close sets closed exclusively
	// first, so once Close holds the lock every admitted request is
	// already in the queue and the final drain answers all of them.
	admit  sync.RWMutex
	closed bool

	resps sync.Pool // chan batchResp (cap 1), reused across Score calls
	batch sync.Pool // *batchJob, reused across gather passes

	wg   sync.WaitGroup
	once sync.Once

	accepted, rejected, batches, scored atomic.Uint64
	peakQueue                           atomic.Int64
}

type batchReq struct {
	id  int
	out chan batchResp
}

type batchResp struct {
	score float64
	err   error
}

// batchJob is one coalesced gather pass in flight between the dispatcher
// and a worker; pooling it (with its id and score buffers) keeps the
// steady-state path off the allocator.
type batchJob struct {
	reqs []batchReq
	ids  []int
	out  []float64
}

// NewBatcher starts a micro-batching frontend over sc.
func NewBatcher(sc BatchScorer, opt BatchOptions) *Batcher {
	opt = opt.withDefaults()
	b := &Batcher{
		sc:   sc,
		opt:  opt,
		reqs: make(chan batchReq, opt.QueueDepth),
		jobs: make(chan *batchJob),
		quit: make(chan struct{}),
	}
	b.into, _ = sc.(IntoScorer)
	b.resps.New = func() any { return make(chan batchResp, 1) }
	b.batch.New = func() any {
		return &batchJob{
			reqs: make([]batchReq, 0, opt.MaxBatch),
			ids:  make([]int, 0, opt.MaxBatch),
			out:  make([]float64, 0, opt.MaxBatch),
		}
	}
	b.wg.Add(1 + opt.Workers)
	go b.dispatch()
	for i := 0; i < opt.Workers; i++ {
		go b.worker()
	}
	return b
}

// Score serves one prediction, transparently sharing a gather pass with
// concurrent callers. It blocks until the result is ready — bounded by
// the queue depth: when the admission queue is full it fails immediately
// with ErrOverloaded, and after Close it fails immediately with
// ErrBatcherClosed.
func (b *Batcher) Score(id int) (float64, error) {
	if id < 0 || id >= b.sc.Rows() {
		return 0, ErrRowRange
	}
	out := b.resps.Get().(chan batchResp)

	b.admit.RLock()
	if b.closed {
		b.admit.RUnlock()
		b.resps.Put(out)
		return 0, ErrBatcherClosed
	}
	select {
	case b.reqs <- batchReq{id: id, out: out}:
	default:
		b.admit.RUnlock()
		b.rejected.Add(1)
		b.resps.Put(out)
		return 0, ErrOverloaded
	}
	b.accepted.Add(1)
	if d := int64(len(b.reqs)); d > b.peakQueue.Load() {
		for {
			cur := b.peakQueue.Load()
			if d <= cur || b.peakQueue.CompareAndSwap(cur, d) {
				break
			}
		}
	}
	b.admit.RUnlock()

	r := <-out
	b.resps.Put(out)
	return r.score, r.err
}

// Close stops admitting, answers every already-admitted request, waits
// for in-flight batches to finish, and releases the worker pool. Later
// Score calls return ErrBatcherClosed. Close is idempotent.
func (b *Batcher) Close() {
	b.once.Do(func() {
		b.admit.Lock()
		b.closed = true
		b.admit.Unlock()
		close(b.quit)
	})
	b.wg.Wait()
}

// Stats returns a snapshot of the admission and execution counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Accepted:  b.accepted.Load(),
		Rejected:  b.rejected.Load(),
		Batches:   b.batches.Load(),
		Scored:    b.scored.Load(),
		PeakQueue: int(b.peakQueue.Load()),
	}
}

// QueueDepth reports the configured admission-queue bound.
func (b *Batcher) QueueDepth() int { return b.opt.QueueDepth }

// dispatch is the single goroutine that turns the admission queue into
// coalesced jobs. On shutdown it drains every request admitted before
// Close (the admission lock guarantees they are all in the queue by
// then), so no accepted caller is left waiting.
func (b *Batcher) dispatch() {
	defer b.wg.Done()
	defer close(b.jobs)
	for {
		select {
		case <-b.quit:
			b.finalDrain()
			return
		case first := <-b.reqs:
			b.jobs <- b.collect(first)
		}
	}
}

// finalDrain answers the requests still queued at Close time.
func (b *Batcher) finalDrain() {
	for {
		select {
		case first := <-b.reqs:
			b.jobs <- b.collect(first)
		default:
			return
		}
	}
}

// collect grows a job from the first request. Requests already waiting in
// the admission queue are drained greedily — under load, coalescing
// emerges from queue pressure with no added latency. Only a lone request
// waits (up to MaxDelay) for company before going out solo.
func (b *Batcher) collect(first batchReq) *batchJob {
	job := b.batch.Get().(*batchJob)
	job.reqs = append(job.reqs[:0], first)
	b.drain(job)
	if len(job.reqs) > 1 || len(job.reqs) == b.opt.MaxBatch {
		return job
	}
	timer := time.NewTimer(b.opt.MaxDelay)
	defer timer.Stop()
	select {
	case r := <-b.reqs:
		job.reqs = append(job.reqs, r)
		b.drain(job)
	case <-timer.C:
	case <-b.quit:
	}
	return job
}

// drain performs non-blocking receives until the queue is momentarily
// empty or the job is full.
func (b *Batcher) drain(job *batchJob) {
	for len(job.reqs) < b.opt.MaxBatch {
		select {
		case r := <-b.reqs:
			job.reqs = append(job.reqs, r)
		default:
			return
		}
	}
}

// worker executes coalesced jobs until the dispatcher closes the job
// stream at shutdown.
func (b *Batcher) worker() {
	defer b.wg.Done()
	for job := range b.jobs {
		b.runJob(job)
	}
}

// runJob executes one gather pass and answers every caller in the job.
// Each admitted request gets exactly one response — on success, backend
// error, or backend panic — which is what lets Score reuse pooled
// response channels safely.
func (b *Batcher) runJob(job *batchJob) {
	n := len(job.reqs)
	job.ids = job.ids[:0]
	for _, r := range job.reqs {
		job.ids = append(job.ids, r.id)
	}
	scores, err := b.scoreBatch(job)
	if err == nil && len(scores) != n {
		err = fmt.Errorf("serve: ScoreBatch returned %d scores for %d ids", len(scores), n)
	}
	for i, r := range job.reqs {
		if err != nil {
			r.out <- batchResp{err: err}
		} else {
			r.out <- batchResp{score: scores[i]}
		}
	}
	b.batches.Add(1)
	b.scored.Add(uint64(n))
	job.reqs = job.reqs[:0]
	b.batch.Put(job)
}

// scoreBatch calls the backend — through the allocation-free IntoScorer
// path into the job's pooled score buffer when available — converting a
// panic into an error: without the recover, a panicking backend would
// escape the worker goroutine, skipping the response sends so every
// coalesced caller in the batch blocks forever while the panic takes down
// the process. With it, all callers get the error and the batcher keeps
// serving.
func (b *Batcher) scoreBatch(job *batchJob) (scores []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			scores, err = nil, fmt.Errorf("serve: ScoreBatch panicked: %v", r)
		}
	}()
	if b.into != nil {
		if cap(job.out) < len(job.ids) {
			job.out = make([]float64, len(job.ids))
		}
		job.out = job.out[:len(job.ids)]
		if err := b.into.ScoreBatchInto(job.ids, job.out); err != nil {
			return nil, err
		}
		return job.out, nil
	}
	return b.sc.ScoreBatch(job.ids)
}
