package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// BatchOptions tunes the micro-batching dispatcher.
type BatchOptions struct {
	// MaxBatch is the largest number of requests coalesced into one gather
	// pass (default 256).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company (default 100µs).
	MaxDelay time.Duration
	// Workers bounds how many batches execute concurrently
	// (default GOMAXPROCS).
	Workers int
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 100 * time.Microsecond
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// BatchScorer is the backend contract the Batcher coalesces over; *Scorer
// implements it, and wrappers (instrumentation, sharding) can too.
type BatchScorer interface {
	Rows() int
	ScoreBatch(ids []int) ([]float64, error)
}

// Batcher coalesces concurrent single-row scoring calls into shared batch
// gather passes. Callers block in Score until their batch executes; a
// dispatcher goroutine groups arrivals (up to MaxBatch, waiting at most
// MaxDelay) and hands each group to a bounded worker pool, so heavy
// concurrent traffic amortizes into a few wide ScoreBatch calls instead of
// many single-row lock acquisitions.
type Batcher struct {
	sc   BatchScorer
	opt  BatchOptions
	reqs chan batchReq // unbuffered: a send succeeds only while the dispatcher lives
	quit chan struct{}
	sem  chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

type batchReq struct {
	id  int
	out chan batchResp
}

type batchResp struct {
	score float64
	err   error
}

// NewBatcher starts a micro-batching frontend over sc.
func NewBatcher(sc BatchScorer, opt BatchOptions) *Batcher {
	opt = opt.withDefaults()
	b := &Batcher{
		sc:   sc,
		opt:  opt,
		reqs: make(chan batchReq),
		quit: make(chan struct{}),
		sem:  make(chan struct{}, opt.Workers),
	}
	b.wg.Add(1)
	go b.dispatch()
	return b
}

// Score serves one prediction, transparently sharing a gather pass with
// concurrent callers. It blocks until the result is ready or the batcher is
// closed.
func (b *Batcher) Score(id int) (float64, error) {
	if id < 0 || id >= b.sc.Rows() {
		return 0, ErrRowRange
	}
	out := make(chan batchResp, 1)
	select {
	case b.reqs <- batchReq{id: id, out: out}:
	case <-b.quit:
		return 0, ErrClosed
	}
	r := <-out
	return r.score, r.err
}

// Close stops the dispatcher and waits for in-flight batches to finish.
// Requests accepted before Close are still answered; later Score calls
// return ErrClosed.
func (b *Batcher) Close() {
	b.once.Do(func() { close(b.quit) })
	b.wg.Wait()
}

func (b *Batcher) dispatch() {
	defer b.wg.Done()
	for {
		select {
		case <-b.quit:
			return
		case first := <-b.reqs:
			batch := b.collect(first)
			b.run(batch)
		}
	}
}

// collect grows a batch from the first request. Senders blocked on the
// unbuffered request channel are drained greedily — under load, coalescing
// emerges from backpressure with no added latency. Only a lone request
// waits (up to MaxDelay) for company before going out solo.
func (b *Batcher) collect(first batchReq) []batchReq {
	batch := make([]batchReq, 1, b.opt.MaxBatch)
	batch[0] = first
	batch = b.drain(batch)
	if len(batch) > 1 || len(batch) == b.opt.MaxBatch {
		return batch
	}
	timer := time.NewTimer(b.opt.MaxDelay)
	defer timer.Stop()
	select {
	case r := <-b.reqs:
		batch = append(batch, r)
		return b.drain(batch)
	case <-timer.C:
		return batch
	case <-b.quit:
		return batch
	}
}

// drain performs non-blocking receives until the channel is momentarily
// empty or the batch is full.
func (b *Batcher) drain(batch []batchReq) []batchReq {
	for len(batch) < b.opt.MaxBatch {
		select {
		case r := <-b.reqs:
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// scoreBatch calls the backend, converting a panic into an error: without
// the recover, a panicking BatchScorer would escape the worker goroutine —
// skipping the response sends, so every coalesced caller in the batch
// blocks forever while the panic takes down the process. With it, all
// callers get the error, the semaphore slot is released, and the batcher
// keeps serving.
func (b *Batcher) scoreBatch(ids []int) (scores []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			scores, err = nil, fmt.Errorf("serve: ScoreBatch panicked: %v", r)
		}
	}()
	return b.sc.ScoreBatch(ids)
}

// run executes one batch on the worker pool, blocking for a slot so at most
// Workers batches are in flight.
func (b *Batcher) run(batch []batchReq) {
	b.sem <- struct{}{}
	b.wg.Add(1)
	go func() {
		defer func() {
			<-b.sem
			b.wg.Done()
		}()
		ids := make([]int, len(batch))
		for i, r := range batch {
			ids[i] = r.id
		}
		scores, err := b.scoreBatch(ids)
		if err == nil && len(scores) != len(ids) {
			err = fmt.Errorf("serve: ScoreBatch returned %d scores for %d ids", len(scores), len(ids))
		}
		for i, r := range batch {
			if err != nil {
				r.out <- batchResp{err: err}
			} else {
				r.out <- batchResp{score: scores[i]}
			}
		}
	}()
}
