package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// panicScorer panics on the first panics calls to ScoreBatch, then
// behaves normally.
type panicScorer struct {
	rows   int
	mu     sync.Mutex
	panics int
	calls  int
}

func (p *panicScorer) Rows() int { return p.rows }

func (p *panicScorer) ScoreBatch(ids []int) ([]float64, error) {
	p.mu.Lock()
	p.calls++
	boom := p.panics > 0
	if boom {
		p.panics--
	}
	p.mu.Unlock()
	if boom {
		panic("scorer exploded")
	}
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = float64(id)
	}
	return out, nil
}

// shortScorer returns fewer scores than ids without an error.
type shortScorer struct{ rows int }

func (s *shortScorer) Rows() int { return s.rows }

func (s *shortScorer) ScoreBatch(ids []int) ([]float64, error) {
	return make([]float64, len(ids)/2), nil
}

// TestBatcherRecoversFromScorerPanic: every caller coalesced into the
// panicking batch receives an error (instead of blocking forever or the
// process dying), and the batcher keeps serving afterwards with its full
// worker pool.
func TestBatcherRecoversFromScorerPanic(t *testing.T) {
	const workers = 2
	sc := &panicScorer{rows: 64, panics: workers + 1}
	b := NewBatcher(sc, BatchOptions{Workers: workers, MaxDelay: time.Millisecond})
	defer b.Close()

	// Drive enough concurrent traffic that every worker slot sees at
	// least one panicking batch.
	const callers = 16
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, err := b.Score(id % sc.rows)
			errs <- err
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Score callers blocked after scorer panic — batch never answered")
	}
	close(errs)
	sawPanicErr := false
	for err := range errs {
		if err != nil {
			if !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("unexpected error: %v", err)
			}
			sawPanicErr = true
		}
	}
	if !sawPanicErr {
		t.Fatal("no caller observed the panic error")
	}

	// Burn off any scheduled panics the coalesced batches didn't consume.
	for i := 0; i < workers+1; i++ {
		b.Score(0)
	}

	// The pool must not have leaked slots: more concurrent batches than
	// Workers still complete.
	for round := 0; round < 3; round++ {
		var wg2 sync.WaitGroup
		for i := 0; i < workers*4; i++ {
			wg2.Add(1)
			go func(id int) {
				defer wg2.Done()
				got, err := b.Score(id)
				if err != nil {
					t.Errorf("post-panic Score: %v", err)
				} else if got != float64(id) {
					t.Errorf("post-panic Score(%d) = %v", id, got)
				}
			}(i % sc.rows)
		}
		done2 := make(chan struct{})
		go func() { wg2.Wait(); close(done2) }()
		select {
		case <-done2:
		case <-time.After(10 * time.Second):
			t.Fatal("batcher wedged after panic recovery — leaked worker slot?")
		}
	}
}

// TestBatcherRejectsShortScoreSlice: a backend that silently returns too
// few scores yields an error for the whole batch, not an index panic.
func TestBatcherRejectsShortScoreSlice(t *testing.T) {
	b := NewBatcher(&shortScorer{rows: 8}, BatchOptions{MaxDelay: time.Microsecond})
	defer b.Close()
	if _, err := b.Score(3); err == nil {
		t.Fatal("Score accepted a short score slice")
	} else if errors.Is(err, ErrRowRange) {
		t.Fatalf("wrong error: %v", err)
	}
}
