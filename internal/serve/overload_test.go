package serve

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateScorer blocks every batch until the gate is released, making
// saturation deterministic: while one batch is stuck in the backend, the
// admission queue fills and later arrivals must be rejected.
type gateScorer struct {
	rows  int
	gate  chan struct{}
	calls atomic.Int32
}

func (g *gateScorer) Rows() int { return g.rows }

func (g *gateScorer) ScoreBatch(ids []int) ([]float64, error) {
	g.calls.Add(1)
	<-g.gate
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = float64(id)
	}
	return out, nil
}

// TestBatcherOverloadRejectsFast is the admission-control gate: with the
// backend saturated, excess requests must fail with ErrOverloaded
// promptly — without waiting on the stuck backend — and every accepted
// request must still be answered correctly once the backend recovers.
func TestBatcherOverloadRejectsFast(t *testing.T) {
	sc := &gateScorer{rows: 64, gate: make(chan struct{})}
	b := NewBatcher(sc, BatchOptions{MaxBatch: 1, MaxDelay: time.Microsecond, Workers: 1, QueueDepth: 4})
	defer b.Close()

	const callers = 64
	type result struct {
		id    int
		score float64
		err   error
		dur   time.Duration
	}
	results := make(chan result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			start := time.Now()
			v, err := b.Score(id)
			results <- result{id: id, score: v, err: err, dur: time.Since(start)}
		}(i % sc.rows)
	}

	// Hold the gate long enough that any rejection that waited on the
	// backend would show up in its latency.
	const hold = 300 * time.Millisecond
	deadline := time.Now().Add(hold)
	for b.Stats().Rejected == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Stats().Rejected == 0 {
		t.Fatal("saturated batcher never rejected: admission queue is unbounded")
	}
	time.Sleep(time.Until(deadline))
	close(sc.gate)
	wg.Wait()
	close(results)

	var accepted, rejected int
	for r := range results {
		switch {
		case r.err == nil:
			accepted++
			if r.score != float64(r.id) {
				t.Fatalf("Score(%d) = %g under overload", r.id, r.score)
			}
		case errors.Is(r.err, ErrOverloaded):
			rejected++
			if r.dur > hold/2 {
				t.Fatalf("rejection took %v — it queued behind the stuck backend instead of failing fast", r.dur)
			}
		default:
			t.Fatalf("unexpected error under overload: %v", r.err)
		}
	}
	if rejected == 0 {
		t.Fatal("no caller observed ErrOverloaded")
	}
	st := b.Stats()
	if st.Accepted != uint64(accepted) || st.Rejected != uint64(rejected) {
		t.Fatalf("stats %+v disagree with observed accepted=%d rejected=%d", st, accepted, rejected)
	}
	if st.Accepted+st.Rejected != callers {
		t.Fatalf("accepted %d + rejected %d != %d attempts", st.Accepted, st.Rejected, callers)
	}
	if st.Scored != st.Accepted {
		t.Fatalf("scored %d != accepted %d: an admitted request was dropped", st.Scored, st.Accepted)
	}
	if st.PeakQueue == 0 || st.PeakQueue > b.QueueDepth() {
		t.Fatalf("peak queue %d outside (0, %d]", st.PeakQueue, b.QueueDepth())
	}
}

// TestBatcherSlowBackendSaturation drives a slow (but moving) backend
// past its throughput with a tiny queue: the batcher must keep serving,
// reject the excess, and answer every accepted request — the queue bounds
// latency instead of growing without limit.
func TestBatcherSlowBackendSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nm := randPKFK(rng, false)
	sc, err := NewScorer(nm, randWeights(rng, nm.Cols()), Linear)
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingScorer{Scorer: sc, perBatch: 2 * time.Millisecond}
	b := NewBatcher(cs, BatchOptions{MaxBatch: 4, MaxDelay: 10 * time.Microsecond, Workers: 1, QueueDepth: 2})
	defer b.Close()

	want := make([]float64, nm.Rows())
	for i := range want {
		want[i], _ = sc.ScoreRow(i)
	}
	const callers = 8
	const perCaller = 30
	var wg sync.WaitGroup
	var bad atomic.Int32
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perCaller; i++ {
				id := r.Intn(nm.Rows())
				v, err := b.Score(id)
				if errors.Is(err, ErrOverloaded) {
					continue
				}
				if err != nil || v != want[id] {
					bad.Add(1)
				}
			}
		}(int64(g + 11))
	}
	wg.Wait()
	if n := bad.Load(); n > 0 {
		t.Fatalf("%d accepted requests answered wrongly under saturation", n)
	}
	st := b.Stats()
	if st.Accepted+st.Rejected != callers*perCaller {
		t.Fatalf("stats lost requests: %+v", st)
	}
	if st.Scored != st.Accepted {
		t.Fatalf("scored %d != accepted %d", st.Scored, st.Accepted)
	}
}

// TestScoreAfterCloseNeverHangs is the regression test for the
// unbuffered-send hang: Score on a closed batcher must return
// ErrBatcherClosed immediately, never block.
func TestScoreAfterCloseNeverHangs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nm := randPKFK(rng, false)
	sc, err := NewScorer(nm, randWeights(rng, nm.Cols()), Linear)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(sc, BatchOptions{})
	b.Close()

	done := make(chan error, 1)
	go func() {
		_, err := b.Score(0)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrBatcherClosed) {
			t.Fatalf("Score after Close = %v, want ErrBatcherClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Score after Close hung")
	}
	// The historical name must stay interchangeable with the documented
	// sentinel: existing callers compare with == ErrClosed.
	if ErrClosed != ErrBatcherClosed {
		t.Fatal("ErrClosed is no longer an alias of ErrBatcherClosed")
	}
}

// TestBatcherCloseScoreStorm races Close against a storm of Score calls:
// every call must resolve (score, ErrOverloaded, or ErrBatcherClosed) —
// no caller may hang — and every admitted request must be answered even
// when Close lands mid-queue.
func TestBatcherCloseScoreStorm(t *testing.T) {
	for round := 0; round < 20; round++ {
		rng := rand.New(rand.NewSource(int64(43 + round)))
		nm := randPKFK(rng, false)
		sc, err := NewScorer(nm, randWeights(rng, nm.Cols()), Linear)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBatcher(sc, BatchOptions{MaxBatch: 4, MaxDelay: 20 * time.Microsecond, Workers: 2, QueueDepth: 8})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < 25; i++ {
					_, err := b.Score(r.Intn(nm.Rows()))
					if err != nil && !errors.Is(err, ErrBatcherClosed) && !errors.Is(err, ErrOverloaded) {
						t.Errorf("storm error: %v", err)
						return
					}
				}
			}(int64(round*100 + g))
		}
		b.Close() // races the storm by design
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("a Score call hung across Close")
		}
		if st := b.Stats(); st.Scored != st.Accepted {
			t.Fatalf("round %d: %d admitted but only %d answered", round, st.Accepted, st.Scored)
		}
	}
}
