// Package serve turns the paper's training-time rewrite rules into a
// serving-time optimization: a concurrent, batched scoring service over a
// normalized feature store.
//
// For a PK-FK normalized matrix T = [S, K·R] and a trained weight vector
// w = [wS; wR], the prediction margin factorizes as
//
//	T·w = S·wS + K·(R·wR)
//
// (§3.3.3 of the paper, specialised to a vector operand). The attribute-table
// partial products R_i·w_{R_i} depend only on the model, not on the request,
// so a Scorer precomputes them once per weight vector. Each subsequent
// prediction is then a dS-wide entity dot product (itself precomputed per
// entity tuple) plus one cached-partial gather per attribute table — O(q)
// work per row instead of O(dS + Σ dR_i), which on the paper's
// high-feature-ratio shapes (dR ≫ dS, Fig. 3) is an order of magnitude
// cheaper than rerunning the factorized multiply.
//
// The Scorer supports linear and logistic heads, dense and CSR base tables,
// and PK-FK, star, and M:N schemas; weights are swapped atomically with
// UpdateWeights. The companion Batcher coalesces concurrent single-row
// callers into shared gather passes executed on a bounded worker pool.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/la"
)

// Head selects the link function applied to the raw margin T·w.
type Head int

const (
	// Linear serves the raw margin (regression).
	Linear Head = iota
	// Logistic serves σ(margin), matching ml.PredictLogistic.
	Logistic
)

// String names the link function for logs and error messages.
func (h Head) String() string {
	switch h {
	case Linear:
		return "linear"
	case Logistic:
		return "logistic"
	default:
		return fmt.Sprintf("Head(%d)", int(h))
	}
}

// Errors reported by the scoring service.
var (
	// ErrRowRange is returned when a requested row id is out of bounds.
	ErrRowRange = errors.New("serve: row id out of range")
	// ErrClosed is returned by Batcher.Score after Close.
	ErrClosed = errors.New("serve: batcher closed")
)

// Scorer answers prediction requests over a normalized feature store using
// cached partial products. It is safe for concurrent use.
//
// Weight-version semantics: every request — a single row, an explicit
// batch, or a coalesced Batcher batch — snapshots the partial cache
// exactly once, before its first row is scored. A batch in flight when
// UpdateWeights lands therefore observes exactly one weight version for
// all of its rows — either entirely the old model or entirely the new
// one, never a mix. The same holds per request under a storm of updates:
// each request sees some single version that was current at its start.
type Scorer struct {
	nm   *core.NormalizedMatrix
	head Head

	mu    sync.RWMutex
	w     *la.Dense   // d×1 snapshot of the current weights
	sw    []float64   // per entity-tuple partial S·wS; nil when dS = 0
	parts [][]float64 // per attribute-table partial R_i·w_{R_i}
}

// NewScorer builds a scorer for the normalized matrix nm (the feature
// store), weight vector w, and link head. w may be d×1 or its transpose
// 1×d, where d = nm.Cols(); it is copied, so later mutation by the caller
// does not affect the scorer. nm must be untransposed: predictions are per
// logical row of T.
func NewScorer(nm *core.NormalizedMatrix, w *la.Dense, head Head) (*Scorer, error) {
	if nm == nil {
		return nil, errors.New("serve: nil normalized matrix")
	}
	if nm.IsTransposed() {
		return nil, errors.New("serve: scorer requires an untransposed normalized matrix (rows are prediction units)")
	}
	if head != Linear && head != Logistic {
		return nil, fmt.Errorf("serve: unknown head %d", int(head))
	}
	s := &Scorer{nm: nm, head: head}
	wCol, err := asWeightColumn(w, nm.Cols())
	if err != nil {
		return nil, err
	}
	s.w, s.sw, s.parts = s.precompute(wCol)
	return s, nil
}

// asWeightColumn validates w against the feature width d and returns a d×1
// copy, accepting the transposed 1×d layout too.
func asWeightColumn(w *la.Dense, d int) (*la.Dense, error) {
	if w == nil {
		return nil, errors.New("serve: nil weight vector")
	}
	switch {
	case w.Cols() == 1 && w.Rows() == d:
		return w.Clone(), nil
	case w.Rows() == 1 && w.Cols() == d:
		return w.TDense(), nil
	default:
		return nil, fmt.Errorf("serve: weight shape %dx%d incompatible with %d features", w.Rows(), w.Cols(), d)
	}
}

// precompute evaluates the per-table partial products for a d×1 weight
// column: sw[i] = (S·wS)[i] over entity source tuples and
// parts[t][j] = (R_t·w_{R_t})[j] over attribute source tuples.
func (s *Scorer) precompute(wCol *la.Dense) (*la.Dense, []float64, [][]float64) {
	var sw []float64
	off := 0
	if sm := s.nm.S(); sm != nil {
		dS := sm.Cols()
		sw = columnData(sm.Mul(wCol.SliceRowsDense(0, dS)))
		off = dS
	}
	parts := make([][]float64, len(s.nm.Rs()))
	for t, r := range s.nm.Rs() {
		dR := r.Cols()
		parts[t] = columnData(r.Mul(wCol.SliceRowsDense(off, off+dR)))
		off += dR
	}
	return wCol, sw, parts
}

func columnData(m *la.Dense) []float64 {
	out := make([]float64, m.Rows())
	copy(out, m.Data())
	return out
}

// UpdateWeights atomically replaces the model, recomputing the cached
// partials. The new partials are computed outside the lock (the feature
// store is immutable), so concurrent scoring is stalled only for the swap.
// Requests in flight during the swap finish on whichever weight version
// they snapshotted at start — see the Scorer type docs; no request ever
// mixes versions.
func (s *Scorer) UpdateWeights(w *la.Dense) error {
	wCol, err := asWeightColumn(w, s.nm.Cols())
	if err != nil {
		return err
	}
	wCol, sw, parts := s.precompute(wCol)
	s.mu.Lock()
	s.w, s.sw, s.parts = wCol, sw, parts
	s.mu.Unlock()
	return nil
}

// Weights returns a copy of the current d×1 weight vector.
func (s *Scorer) Weights() *la.Dense {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.w.Clone()
}

// Rows reports the number of servable rows (logical rows of T).
func (s *Scorer) Rows() int { return s.nm.Rows() }

// Matrix returns the normalized feature store the scorer serves from.
func (s *Scorer) Matrix() *core.NormalizedMatrix { return s.nm }

// Head reports the configured link function.
func (s *Scorer) Head() Head { return s.head }

// ScoreRow serves a single prediction for logical row id.
func (s *Scorer) ScoreRow(id int) (float64, error) {
	if id < 0 || id >= s.nm.Rows() {
		return 0, fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, id, s.nm.Rows())
	}
	s.mu.RLock()
	sw, parts := s.sw, s.parts
	s.mu.RUnlock()
	return s.head.apply(s.margin(id, sw, parts)), nil
}

// ScoreBatch serves predictions for a batch of logical row ids, sharing one
// partial-cache snapshot — taken once, before the first row — and fanning
// the gather across cores for large batches. All rows of the batch are
// scored under that one snapshot, so a concurrent UpdateWeights never
// splits a batch across weight versions.
func (s *Scorer) ScoreBatch(ids []int) ([]float64, error) {
	n := s.nm.Rows()
	for _, id := range ids {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, id, n)
		}
	}
	s.mu.RLock()
	sw, parts := s.sw, s.parts
	s.mu.RUnlock()
	out := make([]float64, len(ids))
	s.gather(ids, out, sw, parts)
	return out, nil
}

// ScoreAll serves every row of the feature store in order; it is the cached
// equivalent of ml.PredictLinear / ml.PredictLogistic over the whole store.
func (s *Scorer) ScoreAll() []float64 {
	s.mu.RLock()
	sw, parts := s.sw, s.parts
	s.mu.RUnlock()
	out := make([]float64, s.nm.Rows())
	s.gather(nil, out, sw, parts)
	return out
}

// gather is the batch hot path: one partial-cache read per row, with the
// indicator assignment slices hoisted out of the loop so the inner body is
// pure array indexing. ids == nil means the identity batch (all rows).
func (s *Scorer) gather(ids []int, out []float64, sw []float64, parts [][]float64) {
	var isAssign []int32
	if is := s.nm.IS(); is != nil {
		isAssign = is.Assignments()
	}
	kAssign := make([][]int32, len(parts))
	for t, k := range s.nm.Ks() {
		kAssign[t] = k.Assignments()
	}
	gatherInto(ids, out, isAssign, kAssign, sw, parts, s.head == Logistic)
}

// gatherInto runs the shared gather kernel over one partial-cache
// snapshot: per row, the entity partial (routed through isAssign when
// non-nil) plus one attribute partial per table, fanned across cores for
// large batches. Both Scorer and EpochScorer score through it, so the
// two paths stay bit-identical by construction.
func gatherInto(ids []int, out []float64, isAssign []int32, kAssign [][]int32, sw []float64, parts [][]float64, logistic bool) {
	// Rough per-row cost: one add per table plus the head evaluation.
	work := len(out) * (len(parts) + 8)
	la.ParallelRows(len(out), work, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			id := i
			if ids != nil {
				id = ids[i]
			}
			m := 0.0
			if sw != nil {
				si := id
				if isAssign != nil {
					si = int(isAssign[id])
				}
				m = sw[si]
			}
			for t, a := range kAssign {
				m += parts[t][a[id]]
			}
			if logistic {
				m = 1 / (1 + math.Exp(-m))
			}
			out[i] = m
		}
	})
}

// margin gathers the cached partials for one logical row: the entity
// partial (routed through I_S for M:N schemas) plus one attribute partial
// per table, selected by the FK indicators.
func (s *Scorer) margin(id int, sw []float64, parts [][]float64) float64 {
	m := 0.0
	if sw != nil {
		si := id
		if is := s.nm.IS(); is != nil {
			si = is.ColOf(id)
		}
		m = sw[si]
	}
	for t, k := range s.nm.Ks() {
		m += parts[t][k.ColOf(id)]
	}
	return m
}

func (h Head) apply(margin float64) float64 {
	if h == Logistic {
		return 1 / (1 + math.Exp(-margin))
	}
	return margin
}
