// Package serve turns the paper's training-time rewrite rules into a
// serving-time optimization: a concurrent, batched scoring service over a
// normalized feature store.
//
// For a PK-FK normalized matrix T = [S, K·R] and a trained weight vector
// w = [wS; wR], the prediction margin factorizes as
//
//	T·w = S·wS + K·(R·wR)
//
// (§3.3.3 of the paper, specialised to a vector operand). The attribute-table
// partial products R_i·w_{R_i} depend only on the model, not on the request,
// so a Scorer precomputes them once per weight vector. Each subsequent
// prediction is then a dS-wide entity dot product (itself precomputed per
// entity tuple) plus one cached-partial gather per attribute table — O(q)
// work per row instead of O(dS + Σ dR_i), which on the paper's
// high-feature-ratio shapes (dR ≫ dS, Fig. 3) is an order of magnitude
// cheaper than rerunning the factorized multiply.
//
// The Scorer supports linear and logistic heads, dense and CSR base tables,
// and PK-FK, star, and M:N schemas; weights are swapped atomically with
// UpdateWeights. The companion Batcher coalesces concurrent single-row
// callers into shared gather passes executed on a bounded worker pool.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/la"
)

// Head selects the link function applied to the raw margin T·w.
type Head int

const (
	// Linear serves the raw margin (regression).
	Linear Head = iota
	// Logistic serves σ(margin), matching ml.PredictLogistic.
	Logistic
)

// String names the link function for logs and error messages.
func (h Head) String() string {
	switch h {
	case Linear:
		return "linear"
	case Logistic:
		return "logistic"
	default:
		return fmt.Sprintf("Head(%d)", int(h))
	}
}

// Errors reported by the scoring service.
var (
	// ErrRowRange is returned when a requested row id is out of bounds.
	ErrRowRange = errors.New("serve: row id out of range")
	// ErrBatcherClosed is returned by Batcher.Score once Close has begun:
	// the request was not admitted and never will be. It is the documented
	// fast-fail sentinel — Score never blocks on a closed batcher.
	ErrBatcherClosed = errors.New("serve: batcher closed")
	// ErrClosed is the historical alias of ErrBatcherClosed (same value,
	// so errors.Is and == both keep working).
	ErrClosed = ErrBatcherClosed
	// ErrOverloaded is returned by Batcher.Score when the admission queue
	// is full: the request was rejected immediately instead of queueing
	// without bound. Callers should shed load or retry with backoff.
	ErrOverloaded = errors.New("serve: batcher overloaded")
	// ErrNotOwned is returned by a ShardedScorer asked for a row outside
	// its hash slice; the Router never routes such a request.
	ErrNotOwned = errors.New("serve: row not owned by this shard replica")
	// ErrOutputLen is returned by ScoreBatchInto when len(out) != len(ids).
	ErrOutputLen = errors.New("serve: output slice length does not match ids")
)

// Scorer answers prediction requests over a normalized feature store using
// cached partial products. It is safe for concurrent use.
//
// Weight-version semantics: every request — a single row, an explicit
// batch, or a coalesced Batcher batch — snapshots the partial cache
// exactly once, before its first row is scored. A batch in flight when
// UpdateWeights lands therefore observes exactly one weight version for
// all of its rows — either entirely the old model or entirely the new
// one, never a mix. The same holds per request under a storm of updates:
// each request sees some single version that was current at its start.
type Scorer struct {
	nm   *core.NormalizedMatrix
	head Head

	// Static join structure, hoisted once at construction (the feature
	// store is immutable), so the gather path allocates nothing per call.
	isAssign []int32
	kAssign  [][]int32

	mu    sync.RWMutex
	w     *la.Dense   // d×1 snapshot of the current weights
	sw    []float64   // per entity-tuple partial S·wS; nil when dS = 0
	parts [][]float64 // per attribute-table partial R_i·w_{R_i}
}

// NewScorer builds a scorer for the normalized matrix nm (the feature
// store), weight vector w, and link head. w may be d×1 or its transpose
// 1×d, where d = nm.Cols(); it is copied, so later mutation by the caller
// does not affect the scorer. nm must be untransposed: predictions are per
// logical row of T.
func NewScorer(nm *core.NormalizedMatrix, w *la.Dense, head Head) (*Scorer, error) {
	if nm == nil {
		return nil, errors.New("serve: nil normalized matrix")
	}
	if nm.IsTransposed() {
		return nil, errors.New("serve: scorer requires an untransposed normalized matrix (rows are prediction units)")
	}
	if head != Linear && head != Logistic {
		return nil, fmt.Errorf("serve: unknown head %d", int(head))
	}
	s := &Scorer{nm: nm, head: head}
	if is := nm.IS(); is != nil {
		s.isAssign = is.Assignments()
	}
	s.kAssign = make([][]int32, nm.NumTables())
	for t, k := range nm.Ks() {
		s.kAssign[t] = k.Assignments()
	}
	wCol, err := asWeightColumn(w, nm.Cols())
	if err != nil {
		return nil, err
	}
	s.w = wCol
	s.sw, s.parts = computeCaches(nm, wCol)
	return s, nil
}

// asWeightColumn validates w against the feature width d and returns a d×1
// copy, accepting the transposed 1×d layout too.
func asWeightColumn(w *la.Dense, d int) (*la.Dense, error) {
	if w == nil {
		return nil, errors.New("serve: nil weight vector")
	}
	switch {
	case w.Cols() == 1 && w.Rows() == d:
		return w.Clone(), nil
	case w.Rows() == 1 && w.Cols() == d:
		return w.TDense(), nil
	default:
		return nil, fmt.Errorf("serve: weight shape %dx%d incompatible with %d features", w.Rows(), w.Cols(), d)
	}
}

// computeCaches evaluates the per-table partial products for a d×1
// weight column: sw[i] = (S·wS)[i] over entity source tuples and
// parts[t][j] = (R_t·w_{R_t})[j] over attribute source tuples. Shared by
// Scorer and ShardedScorer so every fleet member computes its cache
// through the identical arithmetic (bit-identical partials).
func computeCaches(nm *core.NormalizedMatrix, wCol *la.Dense) (sw []float64, parts [][]float64) {
	off := 0
	if sm := nm.S(); sm != nil {
		dS := sm.Cols()
		sw = columnData(sm.Mul(wCol.SliceRowsDense(0, dS)))
		off = dS
	}
	parts = make([][]float64, len(nm.Rs()))
	for t, r := range nm.Rs() {
		dR := r.Cols()
		parts[t] = columnData(r.Mul(wCol.SliceRowsDense(off, off+dR)))
		off += dR
	}
	return sw, parts
}

func columnData(m *la.Dense) []float64 {
	out := make([]float64, m.Rows())
	copy(out, m.Data())
	return out
}

// UpdateWeights atomically replaces the model, recomputing the cached
// partials. The new partials are computed outside the lock (the feature
// store is immutable), so concurrent scoring is stalled only for the swap.
// Requests in flight during the swap finish on whichever weight version
// they snapshotted at start — see the Scorer type docs; no request ever
// mixes versions.
func (s *Scorer) UpdateWeights(w *la.Dense) error {
	wCol, err := asWeightColumn(w, s.nm.Cols())
	if err != nil {
		return err
	}
	sw, parts := computeCaches(s.nm, wCol)
	s.mu.Lock()
	s.w, s.sw, s.parts = wCol, sw, parts
	s.mu.Unlock()
	return nil
}

// Weights returns a copy of the current d×1 weight vector.
func (s *Scorer) Weights() *la.Dense {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.w.Clone()
}

// Rows reports the number of servable rows (logical rows of T).
func (s *Scorer) Rows() int { return s.nm.Rows() }

// Matrix returns the normalized feature store the scorer serves from.
func (s *Scorer) Matrix() *core.NormalizedMatrix { return s.nm }

// Head reports the configured link function.
func (s *Scorer) Head() Head { return s.head }

// ScoreRow serves a single prediction for logical row id.
func (s *Scorer) ScoreRow(id int) (float64, error) {
	if id < 0 || id >= s.nm.Rows() {
		return 0, fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, id, s.nm.Rows())
	}
	s.mu.RLock()
	sw, parts := s.sw, s.parts
	s.mu.RUnlock()
	return s.head.apply(s.margin(id, sw, parts)), nil
}

// ScoreBatch serves predictions for a batch of logical row ids, sharing one
// partial-cache snapshot — taken once, before the first row — and fanning
// the gather across cores for large batches. All rows of the batch are
// scored under that one snapshot, so a concurrent UpdateWeights never
// splits a batch across weight versions.
func (s *Scorer) ScoreBatch(ids []int) ([]float64, error) {
	out := make([]float64, len(ids))
	if err := s.ScoreBatchInto(ids, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ScoreBatchInto is the allocation-free form of ScoreBatch: scores are
// written into the caller-owned out slice (len(out) must equal
// len(ids)). Snapshot semantics are identical to ScoreBatch. The
// steady-state path performs zero heap allocations — pinned by
// BenchmarkRouterScore and the allocation-audit tests.
func (s *Scorer) ScoreBatchInto(ids []int, out []float64) error {
	if len(out) != len(ids) {
		return fmt.Errorf("%w: %d for %d ids", ErrOutputLen, len(out), len(ids))
	}
	n := s.nm.Rows()
	for _, id := range ids {
		if id < 0 || id >= n {
			return fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, id, n)
		}
	}
	s.mu.RLock()
	sw, parts := s.sw, s.parts
	s.mu.RUnlock()
	s.gather(ids, out, sw, parts)
	return nil
}

// ScoreAll serves every row of the feature store in order; it is the cached
// equivalent of ml.PredictLinear / ml.PredictLogistic over the whole store.
func (s *Scorer) ScoreAll() []float64 {
	s.mu.RLock()
	sw, parts := s.sw, s.parts
	s.mu.RUnlock()
	out := make([]float64, s.nm.Rows())
	s.gather(nil, out, sw, parts)
	return out
}

// gather is the batch hot path: one partial-cache read per row, with the
// indicator assignment slices hoisted to construction so the inner body
// is pure array indexing and the call allocates nothing. ids == nil
// means the identity batch (all rows).
func (s *Scorer) gather(ids []int, out []float64, sw []float64, parts [][]float64) {
	gatherInto(ids, out, s.isAssign, s.kAssign, sw, parts, s.head == Logistic, 1)
}

// gatherInto runs the shared gather kernel over one partial-cache
// snapshot: per row, the entity partial (routed through isAssign when
// non-nil, or through the swDiv shard stride when > 1) plus one
// attribute partial per table, fanned across cores for large batches.
// Scorer, ShardedScorer, and EpochScorer all score through it, so every
// fleet path stays bit-identical by construction. swDiv > 1 is the
// hash-sharded layout: the sw cache holds only rows id ≡ shard (mod
// swDiv), stored at local index id/swDiv.
func gatherInto(ids []int, out []float64, isAssign []int32, kAssign [][]int32, sw []float64, parts [][]float64, logistic bool, swDiv int) {
	// Rough per-row cost: one add per table plus the head evaluation.
	work := len(out) * (len(parts) + 8)
	if la.ParallelChunks(len(out), work) <= 1 {
		// Serial fast path, called directly: passing a closure to
		// ParallelRows would heap-allocate it even when the loop runs
		// inline, and the steady-state request path must stay zero-alloc.
		gatherRange(0, len(out), ids, out, isAssign, kAssign, sw, parts, logistic, swDiv)
		return
	}
	la.ParallelRows(len(out), work, func(lo, hi int) {
		gatherRange(lo, hi, ids, out, isAssign, kAssign, sw, parts, logistic, swDiv)
	})
}

// gatherRange scores rows [lo, hi) of the batch — the shared inner body of
// both the serial and the fanned-out gather.
func gatherRange(lo, hi int, ids []int, out []float64, isAssign []int32, kAssign [][]int32, sw []float64, parts [][]float64, logistic bool, swDiv int) {
	for i := lo; i < hi; i++ {
		id := i
		if ids != nil {
			id = ids[i]
		}
		m := 0.0
		if sw != nil {
			si := id
			if isAssign != nil {
				si = int(isAssign[id])
			} else if swDiv > 1 {
				si = id / swDiv
			}
			m = sw[si]
		}
		for t, a := range kAssign {
			m += parts[t][a[id]]
		}
		if logistic {
			m = 1 / (1 + math.Exp(-m))
		}
		out[i] = m
	}
}

// margin gathers the cached partials for one logical row: the entity
// partial (routed through I_S for M:N schemas) plus one attribute partial
// per table, selected by the FK indicators.
func (s *Scorer) margin(id int, sw []float64, parts [][]float64) float64 {
	m := 0.0
	if sw != nil {
		si := id
		if is := s.nm.IS(); is != nil {
			si = is.ColOf(id)
		}
		m = sw[si]
	}
	for t, k := range s.nm.Ks() {
		m += parts[t][k.ColOf(id)]
	}
	return m
}

func (h Head) apply(margin float64) float64 {
	if h == Logistic {
		return 1 / (1 + math.Exp(-margin))
	}
	return margin
}
