package serve

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/la"
	"repro/internal/ml"
)

// TestConcurrentWriterScorerTrainerStress runs the full HTAP triangle at
// once under the race detector: a writer storms upserts and commits, a
// pool of clients scores through the coalescing Batcher, and a trainer
// streams a pinned snapshot into chunked storage and fits a model — all
// on one store. Asserts: the trainer's result is bitwise identical to
// training on a frozen copy of its pinned epoch (both in memory and out
// of core), the final patched scorer agrees with a from-scratch rebuild
// within 1e-12, and every ledger — live epochs, chunk accounting —
// returns to baseline.
func TestConcurrentWriterScorerTrainerStress(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nS, nR, dS, dR := 80, 10, 3, 4
	nm, err := core.NewPKFK(randMat(rng, nS, dS, false), randIndicator(rng, nS, nR), randMat(rng, nR, dR, false))
	if err != nil {
		t.Fatal(err)
	}
	st, err := epoch.NewStore(nm)
	if err != nil {
		t.Fatal(err)
	}
	w := randWeights(rng, nm.Cols())
	es, err := NewEpochScorer(st, w, Logistic)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(es, BatchOptions{MaxBatch: 32, Workers: 4})
	defer b.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: continuous upserts, committing every few rows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(14))
		row := func(n int) []float64 {
			v := make([]float64, n)
			for j := range v {
				v[j] = wrng.NormFloat64()
			}
			return v
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st.UpsertEntity(wrng.Intn(nS), row(dS))
			st.UpsertAttr(0, wrng.Intn(nR), row(dR))
			if i%3 == 0 {
				st.Commit()
			}
		}
	}()

	// Scoring clients through the Batcher.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := b.Score((g*17 + i) % nS); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	// Trainer: pin an epoch mid-storm, freeze a copy, train over both
	// views in memory and out of core, and demand bitwise equality.
	snap := st.Pin()
	var frozenS la.Mat = snap.S().CloneMat()
	frozenR := snap.R(0).CloneMat()
	y := la.NewDense(nS, 1)
	for i := range y.Data() {
		y.Data()[i] = float64(1 - 2*(i%2))
	}

	snapNM, err := snap.NormalizedMatrix()
	if err != nil {
		t.Fatal(err)
	}
	frozenNM, err := core.New(frozenS, st.IS(), st.Ks(), []la.Mat{frozenR})
	if err != nil {
		t.Fatal(err)
	}
	opt := ml.Options{Iters: 5, StepSize: 1e-3}
	wSnap, err := ml.LogisticRegressionGD(snapNM, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	wFrozen, err := ml.LogisticRegressionGD(frozenNM, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wSnap, wFrozen) != 0 {
		t.Fatal("pinned in-memory training drifted from frozen copy under storm")
	}

	cs, err := chunk.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	nt, err := snap.BuildChunked(cs, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chunk.LogRegFactorizedExec(chunk.Parallel(), nt, y, 3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := chunk.FromDense(cs, frozenS.Dense(), 16)
	if err != nil {
		t.Fatal(err)
	}
	fk, err := chunk.BuildIntVector(cs, st.Ks()[0].Assignments(), 16)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chunk.NewStarTable(sm, []chunk.AttrTable{{FK: fk, R: frozenR}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := chunk.LogRegFactorizedExec(chunk.Parallel(), ref, y, 3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(got.W, want.W) != 0 {
		t.Fatal("pinned chunked training drifted from frozen copy under storm")
	}
	snap.Release()

	// Hand the trained model to the live scorer mid-storm.
	if err := es.UpdateWeights(wSnap); err != nil {
		t.Fatal(err)
	}

	close(stop)
	wg.Wait()
	// Quiesce: one final commit of anything still staged, then compare
	// the patched scorer against a from-scratch rebuild at that epoch.
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	final := st.Pin()
	curNM, err := final.NormalizedMatrix()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewScorer(curNM, es.Weights(), Logistic)
	if err != nil {
		t.Fatal(err)
	}
	gotAll, wantAll := es.ScoreAll(), fresh.ScoreAll()
	for i := range wantAll {
		if math.Abs(gotAll[i]-wantAll[i]) > diffTol {
			t.Fatalf("row %d after storm: patched %g rebuilt %g", i, gotAll[i], wantAll[i])
		}
	}
	final.Release()

	if st.LiveEpochs() != 1 {
		t.Fatalf("live epochs %d, want 1", st.LiveEpochs())
	}
	if err := nt.Free(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Free(); err != nil {
		t.Fatal(err)
	}
	if cs.LiveChunks() != 0 || cs.BytesOnDisk() != 0 {
		t.Fatalf("chunk accounting not at baseline: %d chunks, %d bytes", cs.LiveChunks(), cs.BytesOnDisk())
	}
}
