package serve

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
)

func placements() []Placement { return []Placement{Replicated, HashSharded} }

// TestRouterDifferential is the fleet gate: for every schema kind,
// storage class, head, placement, and fleet width, routed scoring —
// ScoreAll, random batches with duplicates, single rows, and the full
// Batcher path — must match a single Scorer within 1e-12, before and
// after a fleet-wide weight update.
func TestRouterDifferential(t *testing.T) {
	for name, gen := range schemaGens() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + len(name))))
			for trial := 0; trial < 3; trial++ {
				nm := gen(rng)
				for _, head := range []Head{Linear, Logistic} {
					w1 := randWeights(rng, nm.Cols())
					w2 := randWeights(rng, nm.Cols())
					s1, err := NewScorer(nm, w1, head)
					if err != nil {
						t.Fatal(err)
					}
					s2, err := NewScorer(nm, w2, head)
					if err != nil {
						t.Fatal(err)
					}
					want1, want2 := s1.ScoreAll(), s2.ScoreAll()
					for _, pl := range placements() {
						for _, n := range []int{1, 2, 3} {
							rt, err := NewScorerFleet(nm, w1, head, n, pl)
							if err != nil {
								t.Fatal(err)
							}
							checkFleet(t, rng, rt, want1)
							if err := rt.UpdateWeights(w2); err != nil {
								t.Fatal(err)
							}
							checkFleet(t, rng, rt, want2)
							// A bad update must fail without touching the fleet.
							if err := rt.UpdateWeights(randWeights(rng, nm.Cols()+1)); err == nil {
								t.Fatal("fleet accepted mis-shaped weights")
							}
							checkFleet(t, rng, rt, want2)
						}
					}
				}
			}
		})
	}
}

// checkFleet drives one router through every scoring surface and compares
// against the expected full score vector.
func checkFleet(t *testing.T, rng *rand.Rand, rt *Router, want []float64) {
	t.Helper()
	got := rt.ScoreAll()
	for i := range want {
		if math.Abs(got[i]-want[i]) > diffTol {
			t.Fatalf("%s/%d ScoreAll row %d: %g want %g", rt.Placement(), rt.NumReplicas(), i, got[i], want[i])
		}
	}
	ids := make([]int, 1+rng.Intn(24))
	for j := range ids {
		ids[j] = rng.Intn(rt.Rows()) // duplicates allowed
	}
	vs, err := rt.ScoreBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for j, id := range ids {
		if math.Abs(vs[j]-want[id]) > diffTol {
			t.Fatalf("%s/%d batch row %d: %g want %g", rt.Placement(), rt.NumReplicas(), id, vs[j], want[id])
		}
	}
	id := rng.Intn(rt.Rows())
	v, err := rt.ScoreRow(id)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-want[id]) > diffTol {
		t.Fatalf("%s/%d ScoreRow(%d): %g want %g", rt.Placement(), rt.NumReplicas(), id, v, want[id])
	}

	b := NewBatcher(rt, BatchOptions{MaxBatch: 8, MaxDelay: 100 * time.Microsecond, Workers: 2})
	defer b.Close()
	var wg sync.WaitGroup
	var failures atomic.Int32
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				id := r.Intn(rt.Rows())
				v, err := b.Score(id)
				if err != nil || math.Abs(v-want[id]) > diffTol {
					failures.Add(1)
				}
			}
		}(int64(g + 7))
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%s/%d: %d batched scores wrong", rt.Placement(), rt.NumReplicas(), n)
	}
}

// TestShardedScorerOwnership pins the slice contract: foreign rows fail
// with ErrNotOwned, out-of-range ids with ErrRowRange, mismatched buffers
// with ErrOutputLen — and the sliced entity cache exists exactly once
// across the fleet.
func TestShardedScorerOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const nS, nR, of = 31, 7, 3
	nm, err := core.NewPKFK(randMat(rng, nS, 4, false), randIndicator(rng, nS, nR), randMat(rng, nR, 5, false))
	if err != nil {
		t.Fatal(err)
	}
	w := randWeights(rng, nm.Cols())
	cacheRows := 0
	for shard := 0; shard < of; shard++ {
		s, err := NewShardedScorer(nm, w, Linear, shard, of)
		if err != nil {
			t.Fatal(err)
		}
		if s.Rows() != nS {
			t.Fatalf("shard %d Rows() = %d, want %d", shard, s.Rows(), nS)
		}
		if cr, max := s.CacheRows(), (nS+of-1)/of; cr > max {
			t.Fatalf("shard %d holds %d cache rows, want ≤ %d (not sliced?)", shard, cr, max)
		}
		cacheRows += s.CacheRows()
		for id := 0; id < nS; id++ {
			if got, want := s.Owns(id), id%of == shard; got != want {
				t.Fatalf("shard %d Owns(%d) = %v", shard, id, got)
			}
		}
		foreign := (shard + 1) % of
		if _, err := s.ScoreRow(foreign); !errors.Is(err, ErrNotOwned) {
			t.Fatalf("shard %d scored foreign row: %v", shard, err)
		}
		if _, err := s.ScoreRow(nS); !errors.Is(err, ErrRowRange) {
			t.Fatalf("out-of-range: %v", err)
		}
		if err := s.ScoreBatchInto([]int{shard}, make([]float64, 2)); !errors.Is(err, ErrOutputLen) {
			t.Fatalf("mismatched out accepted: %v", err)
		}
	}
	// The row-indexed cache is partitioned, not replicated: the shards
	// together hold exactly one copy.
	if cacheRows != nS {
		t.Fatalf("fleet holds %d entity cache rows, want %d exactly once", cacheRows, nS)
	}
}

// TestRouterValidation covers fleet construction errors: empty fleets,
// mismatched shard coordinates, and unknown placements.
func TestRouterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	nm := randPKFK(rng, false)
	w := randWeights(rng, nm.Cols())
	if _, err := NewRouter(nil, Replicated); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewScorerFleet(nm, w, Linear, 0, Replicated); err == nil {
		t.Fatal("zero-width fleet accepted")
	}
	if _, err := NewScorerFleet(nm, w, Linear, 2, Placement(99)); err == nil {
		t.Fatal("unknown placement accepted")
	}
	// Shard coordinates must line up with the fleet positions.
	a, err := NewShardedScorer(nm, w, Linear, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardedScorer(nm, w, Linear, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter([]Replica{a, b}, HashSharded); err == nil {
		t.Fatal("swapped shard coordinates accepted")
	}
	if rt, err := NewRouter([]Replica{b, a}, HashSharded); err != nil || rt.NumReplicas() != 2 {
		t.Fatalf("correct fleet rejected: %v", err)
	}
}

// TestRouterWeightBarrier hammers a hash-sharded fleet with concurrent
// fleet-wide weight updates while scoring batches that span shards. Every
// batch must observe exactly one weight version across all replicas it
// touched — a (w1 row, w2 row) mix inside one batch is the bug the
// router's barrier exists to prevent. Run under -race.
func TestRouterWeightBarrier(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	nm := randStar(rng, false)
	w1 := randWeights(rng, nm.Cols())
	w2 := randWeights(rng, nm.Cols())
	s1, _ := NewScorer(nm, w1, Logistic)
	s2, _ := NewScorer(nm, w2, Logistic)
	want1, want2 := s1.ScoreAll(), s2.ScoreAll()
	rt, err := NewScorerFleet(nm, w1, Logistic, 2, HashSharded)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() { // update storm
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w := w1
			if i%2 == 0 {
				w = w2
			}
			if err := rt.UpdateWeights(w); err != nil {
				t.Errorf("UpdateWeights: %v", err)
				return
			}
		}
	}()
	var torn atomic.Int32
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			r := rand.New(rand.NewSource(seed))
			ids := make([]int, 8)
			out := make([]float64, 8)
			for i := 0; i < 400; i++ {
				for j := range ids {
					// Even and odd ids force the batch across both shards.
					ids[j] = (2*r.Intn(rt.Rows()/2) + j) % rt.Rows()
				}
				if err := rt.ScoreBatchInto(ids, out); err != nil {
					t.Errorf("ScoreBatchInto: %v", err)
					return
				}
				is1, is2 := true, true
				for j, id := range ids {
					if math.Abs(out[j]-want1[id]) > diffTol {
						is1 = false
					}
					if math.Abs(out[j]-want2[id]) > diffTol {
						is2 = false
					}
				}
				if !is1 && !is2 {
					torn.Add(1)
				}
			}
		}(int64(g + 50))
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d batches observed a torn weight version across shards", n)
	}
	if st := rt.Stats(); st.WeightUpdates == 0 || st.Batches == 0 {
		t.Fatalf("storm did not exercise the barrier: %+v", st)
	}
}

// TestEpochFleetCommitStorm drives a replicated EpochScorer fleet through
// a commit storm while scoring through both the Router and a Batcher on
// top of it. Per-batch consistency (duplicate ids must score identically
// inside one batch), fleet-wide epoch propagation (every replica lands on
// the store's final version), and the final differential against a fresh
// scorer are all checked. Run under -race.
func TestEpochFleetCommitStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	nm := randPKFK(rng, false)
	st, err := epoch.NewStore(nm)
	if err != nil {
		t.Fatal(err)
	}
	w := randWeights(rng, nm.Cols())
	rt, err := NewEpochFleet(st, w, Linear, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Placement() != Replicated {
		t.Fatalf("epoch fleet placement %v, want replicated", rt.Placement())
	}
	b := NewBatcher(rt, BatchOptions{MaxBatch: 16, MaxDelay: 50 * time.Microsecond, Workers: 2})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: commit storm
		defer wg.Done()
		defer close(stop)
		r := rand.New(rand.NewSource(99))
		for round := 0; round < 40; round++ {
			if st.EntityCols() > 0 {
				row := r.Intn(st.EntityRows())
				v := make([]float64, st.EntityCols())
				for j := range v {
					v[j] = r.NormFloat64()
				}
				if err := st.UpsertEntity(row, v); err != nil {
					t.Error(err)
					return
				}
			}
			tb := r.Intn(st.NumTables())
			row := r.Intn(st.AttrRows(tb))
			v := make([]float64, st.AttrCols(tb))
			for j := range v {
				v[j] = r.NormFloat64()
			}
			if err := st.UpsertAttr(tb, row, v); err != nil {
				t.Error(err)
				return
			}
			if _, err := st.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			ids := make([]int, 6)
			out := make([]float64, 6)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Duplicate ids inside one batch: a batch that mixes
				// epochs would score them differently mid-storm.
				id := r.Intn(rt.Rows())
				for j := range ids {
					ids[j] = id
				}
				if err := rt.ScoreBatchInto(ids, out); err != nil {
					t.Errorf("routed batch: %v", err)
					return
				}
				for j := 1; j < len(out); j++ {
					if out[j] != out[0] {
						t.Errorf("batch mixed epochs: row %d scored %g and %g", id, out[0], out[j])
						return
					}
				}
				if _, err := b.Score(r.Intn(rt.Rows())); err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("batched score: %v", err)
					return
				}
			}
		}(int64(g + 77))
	}
	wg.Wait()
	b.Close()

	// Every replica observed every commit, synchronously.
	for i := 0; i < rt.NumReplicas(); i++ {
		es := rt.Replica(i).(*EpochScorer)
		if es.Version() != st.Version() {
			t.Fatalf("replica %d at epoch %d, store at %d", i, es.Version(), st.Version())
		}
	}
	// Final differential: the routed fleet at the final epoch must match a
	// scorer rebuilt from scratch.
	snap := st.Pin()
	defer snap.Release()
	cur, err := snap.NormalizedMatrix()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewScorer(cur, w, Linear)
	if err != nil {
		t.Fatal(err)
	}
	got, want := rt.ScoreAll(), fresh.ScoreAll()
	for i := range want {
		if math.Abs(got[i]-want[i]) > diffTol {
			t.Fatalf("post-storm row %d: routed %g fresh %g", i, got[i], want[i])
		}
	}
}

// TestRouterComposes pins that a Router is itself a Replica, so fleets
// nest behind the same seam (e.g. a replicated router over sharded
// routers).
func TestRouterComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	nm := randStar(rng, true)
	w := randWeights(rng, nm.Cols())
	single, err := NewScorer(nm, w, Linear)
	if err != nil {
		t.Fatal(err)
	}
	inner1, err := NewScorerFleet(nm, w, Linear, 2, HashSharded)
	if err != nil {
		t.Fatal(err)
	}
	inner2, err := NewScorerFleet(nm, w, Linear, 3, HashSharded)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := NewRouter([]Replica{inner1, inner2}, Replicated)
	if err != nil {
		t.Fatal(err)
	}
	want := single.ScoreAll()
	got := outer.ScoreAll()
	for i := range want {
		if math.Abs(got[i]-want[i]) > diffTol {
			t.Fatalf("nested fleet row %d: %g want %g", i, got[i], want[i])
		}
	}
}
