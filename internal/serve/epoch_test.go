package serve

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/la"
)

// mutateStore applies one random round of upserts and commits it.
func mutateStore(t *testing.T, rng *rand.Rand, st *epoch.Store) {
	t.Helper()
	if st.EntityCols() > 0 {
		for i := 0; i < 1+rng.Intn(3); i++ {
			row := rng.Intn(st.EntityRows())
			v := make([]float64, st.EntityCols())
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			if err := st.UpsertEntity(row, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for tb := 0; tb < st.NumTables(); tb++ {
		row := rng.Intn(st.AttrRows(tb))
		v := make([]float64, st.AttrCols(tb))
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if err := st.UpsertAttr(tb, row, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochScorerPatchMatchesRebuild is the tentpole differential: after
// every commit, the incrementally patched partial products must score
// within 1e-12 of a scorer rebuilt from scratch at the same epoch —
// across schema shapes, storage classes, and heads.
func TestEpochScorerPatchMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct {
		name string
		mk   func(*rand.Rand, bool) *core.NormalizedMatrix
	}{
		{"pkfk", randPKFK},
		{"star", randStar},
		{"mn", randMN},
	}
	for _, sh := range shapes {
		for _, sparse := range []bool{false, true} {
			for _, head := range []Head{Linear, Logistic} {
				nm := sh.mk(rng, sparse)
				st, err := epoch.NewStore(nm)
				if err != nil {
					t.Fatal(err)
				}
				w := randWeights(rng, nm.Cols())
				es, err := NewEpochScorer(st, w, head)
				if err != nil {
					t.Fatal(err)
				}
				for round := 0; round < 5; round++ {
					mutateStore(t, rng, st)
					got := es.ScoreAll()

					snap := st.Pin()
					cur, err := snap.NormalizedMatrix()
					if err != nil {
						t.Fatal(err)
					}
					fresh, err := NewScorer(cur, w, head)
					if err != nil {
						t.Fatal(err)
					}
					want := fresh.ScoreAll()
					snap.Release()
					for i := range want {
						if math.Abs(got[i]-want[i]) > diffTol {
							t.Fatalf("%s sparse=%v head=%v round %d row %d: patched %g rebuilt %g",
								sh.name, sparse, head, round, i, got[i], want[i])
						}
					}
				}
				if ps := es.PatchStats(); ps.Commits != 5 {
					t.Fatalf("%s: patched %d commits, want 5", sh.name, ps.Commits)
				}
				if st.LiveEpochs() != 1 {
					t.Fatalf("%s: live epochs %d, want 1", sh.name, st.LiveEpochs())
				}
			}
		}
	}
}

// TestEpochScorerUpdateWeights checks the full-recompute path agrees
// with a fresh scorer at the new weights, and that patching continues
// correctly across the weight swap.
func TestEpochScorerUpdateWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	nm := randStar(rng, false)
	st, err := epoch.NewStore(nm)
	if err != nil {
		t.Fatal(err)
	}
	es, err := NewEpochScorer(st, randWeights(rng, nm.Cols()), Linear)
	if err != nil {
		t.Fatal(err)
	}
	mutateStore(t, rng, st)
	w2 := randWeights(rng, nm.Cols())
	if err := es.UpdateWeights(w2); err != nil {
		t.Fatal(err)
	}
	mutateStore(t, rng, st) // patch on top of the recomputed partials

	snap := st.Pin()
	defer snap.Release()
	cur, err := snap.NormalizedMatrix()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewScorer(cur, w2, Linear)
	if err != nil {
		t.Fatal(err)
	}
	got, want := es.ScoreAll(), fresh.ScoreAll()
	for i := range want {
		if math.Abs(got[i]-want[i]) > diffTol {
			t.Fatalf("row %d: %g vs %g", i, got[i], want[i])
		}
	}
	if la.MaxAbsDiff(es.Weights(), w2) != 0 {
		t.Fatal("Weights() does not reflect the update")
	}
}

// markerStore builds a store whose every score equals one scalar marker:
// no entity features, one 1-wide attribute table with all rows equal.
// Upserting every attribute row to a new marker and committing moves all
// scores at once, so any batch that mixes epochs or weight versions is
// detectable from its values alone.
func markerStore(t *testing.T, marker float64) (*epoch.Store, *EpochScorer) {
	t.Helper()
	nS, nR := 64, 8
	assign := make([]int, nS)
	for i := range assign {
		assign[i] = i % nR
	}
	r := la.NewDense(nR, 1)
	for i := 0; i < nR; i++ {
		r.Set(i, 0, marker)
	}
	nm, err := core.NewPKFK(nil, la.NewIndicator(assign, nR), r)
	if err != nil {
		t.Fatal(err)
	}
	st, err := epoch.NewStore(nm)
	if err != nil {
		t.Fatal(err)
	}
	w := la.NewDense(1, 1)
	w.Set(0, 0, 1)
	es, err := NewEpochScorer(st, w, Linear)
	if err != nil {
		t.Fatal(err)
	}
	return st, es
}

// TestEpochScorerBatchObservesOneGeneration is the consistency
// contract under fire: batches scored during a commit storm and
// concurrent weight swaps must be internally uniform — every row of a
// batch sees exactly one (weights, epoch) pair, never a mix.
func TestEpochScorerBatchObservesOneGeneration(t *testing.T) {
	st, es := markerStore(t, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: marker 1, 2, 3, ... one commit per step.
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := 2.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < st.AttrRows(0); i++ {
				st.UpsertAttr(0, i, []float64{m})
			}
			st.Commit()
			m++
		}
	}()
	// Weight swapper: alternates the scale between 1 and 1000, so a
	// mixed-weight batch is as visible as a mixed-epoch one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		scales := []float64{1, 1000}
		w := la.NewDense(1, 1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w.Set(0, 0, scales[i%2])
			es.UpdateWeights(w)
		}
	}()

	ids := make([]int, es.Rows())
	for i := range ids {
		ids[i] = i
	}
	for round := 0; round < 300; round++ {
		out, err := es.ScoreBatch(ids)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(out); i++ {
			if out[i] != out[0] {
				close(stop)
				t.Fatalf("round %d: mixed generation in one batch: out[0]=%g out[%d]=%g", round, out[0], i, out[i])
			}
		}
	}
	close(stop)
	wg.Wait()
	if st.LiveEpochs() != 1 {
		t.Fatalf("live epochs %d, want 1", st.LiveEpochs())
	}
}

// TestEpochScorerWithBatcher drives the coalescing Batcher over an
// EpochScorer during a commit storm: every result must equal some
// published marker (no torn reads), and the batcher keeps serving
// across epochs without reconstruction.
func TestEpochScorerWithBatcher(t *testing.T) {
	st, es := markerStore(t, 1)
	b := NewBatcher(es, BatchOptions{MaxBatch: 16, Workers: 4})
	defer b.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := 2.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < st.AttrRows(0); i++ {
				st.UpsertAttr(0, i, []float64{m})
			}
			st.Commit()
			m++
		}
	}()

	var cwg sync.WaitGroup
	for g := 0; g < 8; g++ {
		cwg.Add(1)
		go func(g int) {
			defer cwg.Done()
			for i := 0; i < 200; i++ {
				v, err := b.Score((g*31 + i) % es.Rows())
				if err != nil {
					t.Error(err)
					return
				}
				// Every score is a whole marker ≥ 1 — a torn read would
				// surface as a non-integer or out-of-range value.
				if v < 1 || v != math.Trunc(v) {
					t.Errorf("torn score %g", v)
					return
				}
			}
		}(g)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
}
