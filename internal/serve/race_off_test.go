//go:build !race

package serve

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
