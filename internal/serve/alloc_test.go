package serve

import (
	"math/rand"
	"testing"
)

// TestSteadyStateZeroAlloc is the allocation audit: once warm, the
// ScoreBatchInto request path — single scorer, sharded replica, and both
// router placements — must not touch the heap. Pool-backed scratch is
// warmed by a few calls first so AllocsPerRun measures the steady state,
// not pool growth.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; the allocation audit runs in the non-race pass")
	}
	rng := rand.New(rand.NewSource(51))
	nm := randStar(rng, false)
	w := randWeights(rng, nm.Cols())
	ids := make([]int, 32)
	for i := range ids {
		ids[i] = rng.Intn(nm.Rows())
	}
	out := make([]float64, len(ids))

	check := func(name string, score func() error) {
		t.Helper()
		for i := 0; i < 4; i++ { // warm pools and caches
			if err := score(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if a := testing.AllocsPerRun(100, func() {
			if err := score(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}); a != 0 {
			t.Errorf("%s: %v allocs per ScoreBatchInto, want 0", name, a)
		}
	}

	single, err := NewScorer(nm, w, Logistic)
	if err != nil {
		t.Fatal(err)
	}
	check("Scorer", func() error { return single.ScoreBatchInto(ids, out) })

	for _, pl := range placements() {
		rt, err := NewScorerFleet(nm, w, Logistic, 3, pl)
		if err != nil {
			t.Fatal(err)
		}
		check("Router/"+pl.String(), func() error { return rt.ScoreBatchInto(ids, out) })
	}

	sh, err := NewShardedScorer(nm, w, Logistic, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]int, 0, len(ids))
	for _, id := range ids {
		if sh.Owns(id) {
			owned = append(owned, id)
		}
	}
	ownedOut := make([]float64, len(owned))
	check("ShardedScorer", func() error { return sh.ScoreBatchInto(owned, ownedOut) })
}
