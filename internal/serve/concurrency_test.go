package serve

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ml"
)

// TestConcurrentScorer hammers one Scorer from many goroutines mixing
// ScoreRow, ScoreBatch, ScoreAll, and UpdateWeights. Run under -race this
// checks the snapshot discipline; the value assertion checks that every
// observed score corresponds to exactly one of the two weight versions
// (never a torn mix of old and new partials).
func TestConcurrentScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nm := randStar(rng, false)
	w1 := randWeights(rng, nm.Cols())
	w2 := randWeights(rng, nm.Cols())
	sc, err := NewScorer(nm, w1, Logistic)
	if err != nil {
		t.Fatal(err)
	}
	md := nm.Dense()
	want1 := ml.PredictLogistic(md, w1)
	want2 := ml.PredictLogistic(md, w2)
	matches := func(id int, v float64) bool {
		return math.Abs(v-want1.At(id, 0)) <= diffTol || math.Abs(v-want2.At(id, 0)) <= diffTol
	}

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	var failures atomic.Int32
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				switch r.Intn(4) {
				case 0:
					id := r.Intn(nm.Rows())
					v, err := sc.ScoreRow(id)
					if err != nil || !matches(id, v) {
						failures.Add(1)
					}
				case 1:
					ids := make([]int, 1+r.Intn(16))
					for j := range ids {
						ids[j] = r.Intn(nm.Rows())
					}
					vs, err := sc.ScoreBatch(ids)
					if err != nil {
						failures.Add(1)
						continue
					}
					for j, id := range ids {
						if !matches(id, vs[j]) {
							failures.Add(1)
						}
					}
				case 2:
					vs := sc.ScoreAll()
					for id, v := range vs {
						if !matches(id, v) {
							failures.Add(1)
						}
					}
				default:
					w := w1
					if r.Intn(2) == 0 {
						w = w2
					}
					if err := sc.UpdateWeights(w); err != nil {
						failures.Add(1)
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d scores did not match either weight version", n)
	}
}

// TestBatcherCorrectness checks that coalesced scoring returns exactly the
// direct ScoreRow results under heavy concurrency.
func TestBatcherCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	nm := randPKFK(rng, true)
	sc, err := NewScorer(nm, randWeights(rng, nm.Cols()), Logistic)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(sc, BatchOptions{MaxBatch: 8, MaxDelay: 200 * time.Microsecond, Workers: 4})
	defer b.Close()

	want := make([]float64, nm.Rows())
	for i := range want {
		v, err := sc.ScoreRow(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	const workers = 16
	const perWorker = 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				id := r.Intn(nm.Rows())
				v, err := b.Score(id)
				if err != nil {
					errs <- err
					return
				}
				if v != want[id] {
					errs <- &mismatchError{id: id, got: v, want: want[id]}
					return
				}
			}
		}(int64(g + 100))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct {
	id        int
	got, want float64
}

func (e *mismatchError) Error() string {
	return "batched score mismatch"
}

// TestBatcherClose checks shutdown semantics: in-flight requests are
// answered, later requests fail fast with ErrClosed, and Close is
// idempotent and race-free against concurrent Score calls.
func TestBatcherClose(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	nm := randPKFK(rng, false)
	sc, err := NewScorer(nm, randWeights(rng, nm.Cols()), Linear)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(sc, BatchOptions{MaxBatch: 4, MaxDelay: 50 * time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				if _, err := b.Score(r.Intn(nm.Rows())); err != nil {
					if err == ErrOverloaded {
						continue // admission control shedding load, not shutdown
					}
					if err != ErrClosed {
						t.Errorf("unexpected error: %v", err)
					}
					return
				}
			}
		}(int64(g))
	}
	time.Sleep(time.Millisecond)
	b.Close()
	b.Close() // idempotent
	wg.Wait()
	if _, err := b.Score(0); err != ErrClosed {
		t.Fatalf("Score after Close = %v, want ErrClosed", err)
	}
	if _, err := b.Score(-1); err != ErrRowRange {
		t.Fatalf("out-of-range after Close = %v, want ErrRowRange", err)
	}
}

// TestBatcherCoalesces verifies that concurrent callers share gather
// passes once the backend becomes the bottleneck. The counting backend
// sleeps per batch, so while one batch executes the remaining callers
// queue up and must be drained into a few wide batches — independent of
// scheduler interleaving.
func TestBatcherCoalesces(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	nm := randPKFK(rng, false)
	sc, err := NewScorer(nm, randWeights(rng, nm.Cols()), Linear)
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingScorer{Scorer: sc, perBatch: 2 * time.Millisecond}
	b := NewBatcher(cs, BatchOptions{MaxBatch: 64, MaxDelay: 100 * time.Microsecond, Workers: 1})
	defer b.Close()
	const n = 64
	var start, wg sync.WaitGroup
	start.Add(1)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			start.Wait()
			if _, err := b.Score(id % nm.Rows()); err != nil {
				t.Errorf("score: %v", err)
			}
		}(g)
	}
	start.Done()
	wg.Wait()
	// With a 2ms backend and Workers=1, arrivals during the first batch
	// all fold into the next few batches; 64 individual calls would take
	// 128ms and fail long before this threshold.
	if calls := cs.calls.Load(); calls > n/4 {
		t.Fatalf("micro-batching ineffective: %d ScoreBatch calls for %d concurrent requests", calls, n)
	}
}

// countingScorer wraps a Scorer to count batch executions, simulating a
// slow backend so queueing pressure is deterministic.
type countingScorer struct {
	*Scorer
	perBatch time.Duration
	calls    atomic.Int32
}

func (c *countingScorer) ScoreBatch(ids []int) ([]float64, error) {
	c.calls.Add(1)
	time.Sleep(c.perBatch)
	return c.Scorer.ScoreBatch(ids)
}

// ScoreBatchInto must be overridden too: the embedded *Scorer promotes it,
// so the Batcher's IntoScorer probe would otherwise route around the
// counting/sleep instrumentation.
func (c *countingScorer) ScoreBatchInto(ids []int, out []float64) error {
	c.calls.Add(1)
	time.Sleep(c.perBatch)
	return c.Scorer.ScoreBatchInto(ids, out)
}
