//go:build race

package serve

// raceEnabled reports whether the race detector is active; under -race,
// sync.Pool intentionally drops items to widen interleavings, so
// pool-backed zero-allocation assertions are skipped.
const raceEnabled = true
