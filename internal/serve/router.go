// Router: the fleet seam. One process was fast (cached partials, 22
// ns/row); the Router makes N of them one scorer again — hash-sharded
// or replicated — behind the same BatchScorer contract the Batcher
// coalesces over, so the whole request path stacks: callers → Batcher
// (admission + coalescing) → Router (placement + fan-out/merge) →
// Replicas (cached-partial gather).

package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/la"
)

// Placement selects how a Router spreads the partial-product cache
// across its replicas.
type Placement int

const (
	// Replicated gives every replica the full cache; each batch is
	// forwarded whole to one replica round-robin. Right for small models
	// (cache ≪ memory) where the win is lock spreading and core scaling.
	Replicated Placement = iota
	// HashSharded hash-partitions row ids across the fleet (owner of id =
	// id mod N); replica k holds the entity-side cache only for its
	// slice, and batches are split by owner and merged back in request
	// order. Right for big row-indexed caches that should exist once
	// across the fleet, not once per replica.
	HashSharded
)

// String names the placement for logs and Result notes.
func (p Placement) String() string {
	switch p {
	case Replicated:
		return "replicated"
	case HashSharded:
		return "hash-sharded"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// RouterStats counts the routing work a Router has performed. Snapshot
// via Router.Stats.
type RouterStats struct {
	// Batches is the number of routed batch calls.
	Batches uint64
	// SubBatches is the number of per-replica dispatches those batches
	// split into (equals Batches under Replicated placement).
	SubBatches uint64
	// Rows is the total number of row scores served.
	Rows uint64
	// WeightUpdates counts fleet-wide UpdateWeights barriers.
	WeightUpdates uint64
}

// Router fans scoring batches out across a fleet of replicas and merges
// the results back in request order. It implements BatchScorer (and
// Replica — routers compose), so it drops into the Batcher seam exactly
// where a single Scorer used to sit.
//
// Consistency contract: a routed batch observes exactly one weight
// version across every replica it touches. UpdateWeights is a fleet-wide
// barrier — it excludes in-flight batches, updates every replica, then
// readmits — so even a hash-sharded batch split across N replicas never
// mixes weight versions. Epoch fleets (replicas backed by EpochScorer
// over one epoch.Store) forward each batch whole to a single replica,
// whose own generation snapshot guarantees one (weights, epoch) pair per
// batch; commits reach every replica synchronously inside Store.Commit.
type Router struct {
	replicas  []Replica
	placement Placement
	rows      int

	// mu is the fleet generation barrier: scoring holds it shared,
	// UpdateWeights exclusively.
	mu sync.RWMutex
	rr atomic.Uint64 // round-robin cursor for Replicated reads

	scratch sync.Pool // *routeScratch, reused across ScoreBatchInto calls

	batches, subBatches, rowsScored, updates atomic.Uint64
}

var _ Replica = (*Router)(nil)

// routeScratch holds the per-call partition state for hash-sharded
// fan-out; pooling it keeps the steady-state path allocation-free.
type routeScratch struct {
	ids [][]int // per-replica sub-batch ids
	pos [][]int // per-replica positions into the caller's out slice
	sub []float64
}

// NewRouter builds a router over an explicit replica fleet. All replicas
// must agree on Rows. Under HashSharded placement, replica k must accept
// exactly the rows with id ≡ k (mod len(replicas)) — NewShardedScorer
// with matching (shard, of) coordinates, or any wrapper around one.
func NewRouter(replicas []Replica, placement Placement) (*Router, error) {
	if len(replicas) == 0 {
		return nil, errors.New("serve: router needs at least one replica")
	}
	if placement != Replicated && placement != HashSharded {
		return nil, fmt.Errorf("serve: unknown placement %d", int(placement))
	}
	rows := replicas[0].Rows()
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("serve: nil replica %d", i)
		}
		if r.Rows() != rows {
			return nil, fmt.Errorf("serve: replica %d serves %d rows, replica 0 serves %d", i, r.Rows(), rows)
		}
		if sh, ok := r.(*ShardedScorer); ok && placement == HashSharded {
			if sh.Shard() != i || sh.Of() != len(replicas) {
				return nil, fmt.Errorf("serve: replica %d is shard %d of %d, want shard %d of %d",
					i, sh.Shard(), sh.Of(), i, len(replicas))
			}
		}
	}
	rt := &Router{replicas: replicas, placement: placement, rows: rows}
	n := len(replicas)
	rt.scratch.New = func() any {
		return &routeScratch{ids: make([][]int, n), pos: make([][]int, n)}
	}
	return rt, nil
}

// NewScorerFleet builds an n-replica fleet over an immutable feature
// store: n ShardedScorers under HashSharded placement (the entity-side
// cache exists once across the fleet), or n independent full Scorers
// under Replicated placement. n = 1 degenerates to a single-scorer
// router either way.
func NewScorerFleet(nm *core.NormalizedMatrix, w *la.Dense, head Head, n int, placement Placement) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: fleet needs at least one replica, got %d", n)
	}
	replicas := make([]Replica, n)
	for i := 0; i < n; i++ {
		var err error
		if placement == HashSharded {
			replicas[i], err = NewShardedScorer(nm, w, head, i, n)
		} else {
			replicas[i], err = NewScorer(nm, w, head)
		}
		if err != nil {
			return nil, err
		}
	}
	return NewRouter(replicas, placement)
}

// NewEpochFleet builds an n-replica fleet of EpochScorers over one
// versioned store, under Replicated placement: each replica subscribes
// to the store and patches its own cached partials inside Store.Commit,
// so when Commit returns every replica already serves the new epoch.
// Batches forward whole to one replica, whose generation snapshot
// guarantees exactly one (weights, epoch) pair per batch.
func NewEpochFleet(store *epoch.Store, w *la.Dense, head Head, n int) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: fleet needs at least one replica, got %d", n)
	}
	replicas := make([]Replica, n)
	for i := 0; i < n; i++ {
		es, err := NewEpochScorer(store, w, head)
		if err != nil {
			return nil, err
		}
		replicas[i] = es
	}
	return NewRouter(replicas, Replicated)
}

// Rows reports the fleet-wide row count.
func (rt *Router) Rows() int { return rt.rows }

// NumReplicas reports the fleet width.
func (rt *Router) NumReplicas() int { return len(rt.replicas) }

// Placement reports the configured cache placement.
func (rt *Router) Placement() Placement { return rt.placement }

// Replica returns fleet member i (instrumentation and tests; the request
// path never needs it).
func (rt *Router) Replica(i int) Replica { return rt.replicas[i] }

// Stats returns a snapshot of the routing counters.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Batches:       rt.batches.Load(),
		SubBatches:    rt.subBatches.Load(),
		Rows:          rt.rowsScored.Load(),
		WeightUpdates: rt.updates.Load(),
	}
}

// ScoreBatch routes one batch across the fleet and returns the scores in
// request order.
func (rt *Router) ScoreBatch(ids []int) ([]float64, error) {
	out := make([]float64, len(ids))
	if err := rt.ScoreBatchInto(ids, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ScoreBatchInto routes one batch into the caller-owned out slice
// (len(out) == len(ids)) without allocating: partition state is pooled,
// sub-batches run sequentially on the calling goroutine (the gather
// kernel fans wide batches across cores itself, and the Batcher's worker
// pool supplies request-level parallelism), and results are merged back
// in request order. The whole call holds the fleet barrier shared, so
// the batch observes exactly one weight version.
func (rt *Router) ScoreBatchInto(ids []int, out []float64) error {
	if len(out) != len(ids) {
		return fmt.Errorf("%w: %d for %d ids", ErrOutputLen, len(out), len(ids))
	}
	for _, id := range ids {
		if id < 0 || id >= rt.rows {
			return fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, id, rt.rows)
		}
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	rt.batches.Add(1)
	rt.rowsScored.Add(uint64(len(ids)))

	if rt.placement == Replicated {
		rt.subBatches.Add(1)
		r := rt.replicas[rt.rr.Add(1)%uint64(len(rt.replicas))]
		return r.ScoreBatchInto(ids, out)
	}

	n := len(rt.replicas)
	sc := rt.scratch.Get().(*routeScratch)
	defer rt.scratch.Put(sc)
	for i := 0; i < n; i++ {
		sc.ids[i] = sc.ids[i][:0]
		sc.pos[i] = sc.pos[i][:0]
	}
	for i, id := range ids {
		o := id % n
		sc.ids[o] = append(sc.ids[o], id)
		sc.pos[o] = append(sc.pos[o], i)
	}
	for r := 0; r < n; r++ {
		sub := sc.ids[r]
		if len(sub) == 0 {
			continue
		}
		if cap(sc.sub) < len(sub) {
			sc.sub = make([]float64, len(sub))
		}
		subOut := sc.sub[:len(sub)]
		if err := rt.replicas[r].ScoreBatchInto(sub, subOut); err != nil {
			return err
		}
		for j, p := range sc.pos[r] {
			out[p] = subOut[j]
		}
		rt.subBatches.Add(1)
	}
	return nil
}

// ScoreRow serves a single prediction: routed to the owning replica
// under HashSharded placement, round-robin under Replicated.
func (rt *Router) ScoreRow(id int) (float64, error) {
	if id < 0 || id >= rt.rows {
		return 0, fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, id, rt.rows)
	}
	var ids [1]int
	var out [1]float64
	ids[0] = id
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	rt.batches.Add(1)
	rt.subBatches.Add(1)
	rt.rowsScored.Add(1)
	var r Replica
	if rt.placement == HashSharded {
		r = rt.replicas[id%len(rt.replicas)]
	} else {
		r = rt.replicas[rt.rr.Add(1)%uint64(len(rt.replicas))]
	}
	if err := r.ScoreBatchInto(ids[:], out[:]); err != nil {
		return 0, err
	}
	return out[0], nil
}

// ScoreAll serves every row in order through the fleet, under one weight
// version.
func (rt *Router) ScoreAll() []float64 {
	ids := make([]int, rt.rows)
	for i := range ids {
		ids[i] = i
	}
	out := make([]float64, rt.rows)
	// The error cannot fire: ids are in range by construction and
	// replica errors require out-of-range or foreign rows.
	if err := rt.ScoreBatchInto(ids, out); err != nil {
		panic(fmt.Sprintf("serve: ScoreAll routing failed: %v", err))
	}
	return out
}

// UpdateWeights replaces the model fleet-wide behind an exclusive
// barrier: in-flight batches finish on the old version, every replica
// swaps, then scoring readmits — no batch, even one split across
// replicas, observes a mix. Weight-shape validation happens on the first
// replica before any replica mutates, so an invalid update leaves the
// fleet untouched.
func (rt *Router) UpdateWeights(w *la.Dense) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, r := range rt.replicas {
		if err := r.UpdateWeights(w); err != nil {
			if i > 0 {
				return fmt.Errorf("serve: fleet weight update failed at replica %d (fleet mixed — retry): %w", i, err)
			}
			return err
		}
	}
	rt.updates.Add(1)
	return nil
}
