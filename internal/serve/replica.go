package serve

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/la"
)

// Replica is one member of a serving fleet: the scoring surface the
// Router fans batches out to, plus the management surface fleet-wide
// operations (weight updates) apply through. Scorer, ShardedScorer,
// EpochScorer, and Router itself all satisfy it, so fleets compose —
// instrumentation wrappers only need to embed a Replica and override
// the calls they care about.
type Replica interface {
	BatchScorer
	// ScoreBatchInto scores ids into the caller-owned out slice
	// (len(out) == len(ids)) without allocating — the steady-state
	// request path.
	ScoreBatchInto(ids []int, out []float64) error
	// UpdateWeights atomically replaces this replica's model.
	UpdateWeights(w *la.Dense) error
}

// IntoScorer is the optional allocation-free capability the Batcher
// probes its backend for: when present, coalesced batches are scored
// into pooled buffers instead of allocating a fresh score slice per
// batch.
type IntoScorer interface {
	ScoreBatchInto(ids []int, out []float64) error
}

// Every scorer flavor is a fleet-capable replica.
var (
	_ Replica = (*Scorer)(nil)
	_ Replica = (*ShardedScorer)(nil)
	_ Replica = (*EpochScorer)(nil)
)

// ShardedScorer is the hash-sharded fleet member: slice shard of `of`
// replicas, owning the rows with id ≡ shard (mod of). Its entity-side
// partial cache S·wS holds only the owned rows — stored compacted at
// local index id/of — so a fleet of `of` sharded replicas holds the
// row-indexed cache exactly once across the fleet instead of once per
// replica. The per-attribute-table partials R_t·w_{R_t} are kept whole
// on every replica: they are indexed by attribute tuple, not by row, and
// in the paper's high-tuple-ratio regime (nS ≫ nR_t) they are the small
// side of the cache.
//
// For M:N schemas (IS indicator present) the entity cache is indexed by
// entity tuple, which many rows share, so it cannot be row-sliced; the
// replica then keeps the whole sw vector and only the routing is
// sharded. CacheRows reports what this replica actually holds.
//
// Scoring a row outside the owned slice fails with ErrNotOwned; the
// Router never routes one. Concurrency semantics match Scorer: every
// batch snapshots one weight version.
type ShardedScorer struct {
	nm        *core.NormalizedMatrix
	head      Head
	shard, of int
	sliced    bool // sw compacted to owned rows (si = id/of)

	isAssign []int32
	kAssign  [][]int32

	mu    sync.RWMutex
	w     *la.Dense
	sw    []float64
	parts [][]float64
}

// NewShardedScorer builds slice shard of an `of`-way hash-sharded fleet
// over nm. Arguments match NewScorer, plus the shard coordinates:
// 0 <= shard < of. The full partial products are computed once and the
// entity-side cache is then compacted to the owned rows, so the values a
// sharded fleet serves are bit-identical to a single Scorer's.
func NewShardedScorer(nm *core.NormalizedMatrix, w *la.Dense, head Head, shard, of int) (*ShardedScorer, error) {
	if nm == nil {
		return nil, errors.New("serve: nil normalized matrix")
	}
	if nm.IsTransposed() {
		return nil, errors.New("serve: scorer requires an untransposed normalized matrix (rows are prediction units)")
	}
	if head != Linear && head != Logistic {
		return nil, fmt.Errorf("serve: unknown head %d", int(head))
	}
	if of < 1 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("serve: shard %d of %d out of range", shard, of)
	}
	s := &ShardedScorer{nm: nm, head: head, shard: shard, of: of}
	if is := nm.IS(); is != nil {
		s.isAssign = is.Assignments()
	}
	s.kAssign = make([][]int32, nm.NumTables())
	for t, k := range nm.Ks() {
		s.kAssign[t] = k.Assignments()
	}
	s.sliced = s.isAssign == nil && of > 1
	wCol, err := asWeightColumn(w, nm.Cols())
	if err != nil {
		return nil, err
	}
	s.w = wCol
	s.sw, s.parts = s.computeShardCaches(wCol)
	return s, nil
}

// computeShardCaches evaluates the full partial products through the
// same arithmetic as Scorer (bit-identical values) and compacts the
// entity-side cache to the owned slice. The full S·wS product exists
// only transiently here; the steady-state footprint is the slice.
func (s *ShardedScorer) computeShardCaches(wCol *la.Dense) ([]float64, [][]float64) {
	sw, parts := computeCaches(s.nm, wCol)
	if !s.sliced || sw == nil {
		return sw, parts
	}
	owned := make([]float64, 0, (len(sw)-s.shard+s.of-1)/s.of)
	for j := s.shard; j < len(sw); j += s.of {
		owned = append(owned, sw[j])
	}
	return owned, parts
}

// Rows reports the fleet-wide row count (ownership is a routing concern,
// not a shape change).
func (s *ShardedScorer) Rows() int { return s.nm.Rows() }

// Shard reports this replica's slice index.
func (s *ShardedScorer) Shard() int { return s.shard }

// Of reports the fleet width the slice was cut for.
func (s *ShardedScorer) Of() int { return s.of }

// Head reports the configured link function.
func (s *ShardedScorer) Head() Head { return s.head }

// CacheRows reports how many entity-side partial entries this replica
// holds — the sliced footprint a fleet memory audit sums.
func (s *ShardedScorer) CacheRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sw)
}

// Owns reports whether row id belongs to this replica's slice.
func (s *ShardedScorer) Owns(id int) bool {
	return id >= 0 && id < s.nm.Rows() && id%s.of == s.shard
}

// UpdateWeights atomically replaces the model, recomputing and
// re-slicing the cached partials outside the lock.
func (s *ShardedScorer) UpdateWeights(w *la.Dense) error {
	wCol, err := asWeightColumn(w, s.nm.Cols())
	if err != nil {
		return err
	}
	sw, parts := s.computeShardCaches(wCol)
	s.mu.Lock()
	s.w, s.sw, s.parts = wCol, sw, parts
	s.mu.Unlock()
	return nil
}

// Weights returns a copy of the current d×1 weight vector.
func (s *ShardedScorer) Weights() *la.Dense {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.w.Clone()
}

// ScoreBatch serves predictions for owned row ids under one weight
// snapshot, like Scorer.ScoreBatch restricted to the slice.
func (s *ShardedScorer) ScoreBatch(ids []int) ([]float64, error) {
	out := make([]float64, len(ids))
	if err := s.ScoreBatchInto(ids, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ScoreBatchInto scores owned ids into the caller-owned out slice
// without allocating. Ids outside [0, Rows()) fail with ErrRowRange;
// rows of another slice fail with ErrNotOwned.
func (s *ShardedScorer) ScoreBatchInto(ids []int, out []float64) error {
	if len(out) != len(ids) {
		return fmt.Errorf("%w: %d for %d ids", ErrOutputLen, len(out), len(ids))
	}
	n := s.nm.Rows()
	for _, id := range ids {
		if id < 0 || id >= n {
			return fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, id, n)
		}
		if id%s.of != s.shard {
			return fmt.Errorf("%w: row %d belongs to shard %d, this is shard %d of %d", ErrNotOwned, id, id%s.of, s.shard, s.of)
		}
	}
	s.mu.RLock()
	sw, parts := s.sw, s.parts
	s.mu.RUnlock()
	div := 1
	if s.sliced {
		div = s.of
	}
	gatherInto(ids, out, s.isAssign, s.kAssign, sw, parts, s.head == Logistic, div)
	return nil
}

// ScoreRow serves a single owned row.
func (s *ShardedScorer) ScoreRow(id int) (float64, error) {
	var ids [1]int
	var out [1]float64
	ids[0] = id
	if err := s.ScoreBatchInto(ids[:], out[:]); err != nil {
		return 0, err
	}
	return out[0], nil
}
