package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/epoch"
	"repro/internal/la"
)

// PatchStats counts the incremental partial-product maintenance an
// EpochScorer has performed. Snapshot via EpochScorer.PatchStats.
type PatchStats struct {
	// Commits is the number of epochs applied by incremental patching.
	Commits uint64
	// Rows is the total number of changed rows patched across commits.
	Rows uint64
	// LastPatch and TotalPatch time the patch work (clone changed
	// vectors + per-row dot products), excluding lock waits.
	LastPatch  time.Duration
	TotalPatch time.Duration
}

// epochPartials is one immutable (weights, epoch) cache generation. A
// scoring request snapshots the pointer once, so every row it serves
// sees one weight version and one epoch — never a mix of either.
type epochPartials struct {
	w       *la.Dense   // d×1 weight snapshot
	wS      []float64   // entity weight block (len dS); nil when dS = 0
	wR      [][]float64 // per-attribute-table weight blocks
	sw      []float64   // per entity-tuple partial S·wS at this epoch
	parts   [][]float64 // per attribute-table partial R_t·w_{R_t}
	version epoch.Version
}

// EpochScorer scores over a versioned feature store (epoch.Store),
// keeping its cached partial products current across commits by
// incremental patching: for each changed row r of table t it subtracts
// the old row's contribution dot(old, w_{R_t}) and adds the new one —
// O(changed rows × row width) per commit instead of a full O(nnz)
// rebuild, and within 1e-12 of one (pinned by differential tests).
//
// Concurrency contract: ScoreRow/ScoreBatch/ScoreAll may be called
// concurrently with each other, with Store.Commit, and with
// UpdateWeights; each request observes exactly one weight version AND
// one epoch for all of its rows. Commits are applied synchronously
// inside Store.Commit (the scorer subscribes at construction), so when
// Commit returns the scorer already serves the new epoch — readers
// stall only for the pointer swap plus the per-changed-row patch.
// UpdateWeights recomputes all partials at the then-current epoch and
// blocks scoring for the recompute; it is meant for the rare retrain
// hand-off, not the per-request path.
type EpochScorer struct {
	store *epoch.Store
	head  Head

	// Static join structure, hoisted once (epochs never change it).
	isAssign []int32
	kAssign  [][]int32

	mu    sync.RWMutex
	st    *epochPartials
	early []*epoch.Commit // commits that landed before initial partials
	stats PatchStats
}

var _ BatchScorer = (*EpochScorer)(nil)

// NewEpochScorer builds a scorer over the versioned store with weight
// vector w (d×1 or 1×d, copied) and link head, subscribed to the
// store's commits: the returned scorer tracks every subsequent epoch
// automatically. Commits that land during construction are applied
// before the first score, in order — no epoch is skipped or doubled.
func NewEpochScorer(store *epoch.Store, w *la.Dense, head Head) (*EpochScorer, error) {
	if store == nil {
		return nil, errors.New("serve: nil epoch store")
	}
	if head != Linear && head != Logistic {
		return nil, fmt.Errorf("serve: unknown head %d", int(head))
	}
	wCol, err := asWeightColumn(w, store.Cols())
	if err != nil {
		return nil, err
	}
	s := &EpochScorer{store: store, head: head}
	if is := store.IS(); is != nil {
		s.isAssign = is.Assignments()
	}
	s.kAssign = make([][]int32, store.NumTables())
	for t, k := range store.Ks() {
		s.kAssign[t] = k.Assignments()
	}
	// Subscribe first: the listener buffers commits until the initial
	// partials exist (s.st == nil), so nothing slips between the pinned
	// snapshot below and the first applyCommit.
	snap := store.Subscribe(s.applyCommit)
	defer snap.Release()
	st := s.computePartials(wCol, snap)
	s.mu.Lock()
	s.st = st
	for _, c := range s.early {
		s.patchLocked(c)
	}
	s.early = nil
	s.mu.Unlock()
	return s, nil
}

// computePartials evaluates the full partial caches for wCol against the
// tables of snap — the from-scratch path used at construction and by
// UpdateWeights; commits between epochs use patchLocked instead.
func (s *EpochScorer) computePartials(wCol *la.Dense, snap *epoch.Snapshot) *epochPartials {
	st := &epochPartials{w: wCol, version: snap.Version()}
	off := 0
	if sm := snap.S(); sm != nil {
		dS := sm.Cols()
		wS := wCol.SliceRowsDense(0, dS)
		st.wS = columnData(wS)
		st.sw = columnData(sm.Mul(wS))
		off = dS
	}
	st.wR = make([][]float64, snap.NumTables())
	st.parts = make([][]float64, snap.NumTables())
	for t := 0; t < snap.NumTables(); t++ {
		r := snap.R(t)
		dR := r.Cols()
		wR := wCol.SliceRowsDense(off, off+dR)
		st.wR[t] = columnData(wR)
		st.parts[t] = columnData(r.Mul(wR))
		off += dR
	}
	return st
}

// applyCommit is the store listener: it patches the cached partials for
// one commit. It runs on the committing goroutine under the store's
// write lock, serialized and in version order.
func (s *EpochScorer) applyCommit(c *epoch.Commit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st == nil {
		s.early = append(s.early, c)
		return
	}
	s.patchLocked(c)
}

// patchLocked applies one commit's deltas to a copy-on-write clone of
// the affected partial vectors; unchanged tables share their slice with
// the previous generation, so in-flight requests keep reading their
// snapshot untouched. Callers hold s.mu exclusively. Commits at or
// below the cached version are skipped (idempotence: UpdateWeights may
// already have recomputed at that epoch).
func (s *EpochScorer) patchLocked(c *epoch.Commit) {
	if c.Version <= s.st.version || c.RowsChanged() == 0 {
		if c.Version > s.st.version {
			// Empty commit: just advance the version.
			ns := *s.st
			ns.version = c.Version
			s.st = &ns
		}
		return
	}
	start := time.Now()
	ns := *s.st
	ns.version = c.Version
	if c.Entity != nil {
		sw := make([]float64, len(ns.sw))
		copy(sw, ns.sw)
		for i, r := range c.Entity.Rows {
			sw[r] += dot(c.Entity.New[i], ns.wS) - dot(c.Entity.Old[i], ns.wS)
		}
		ns.sw = sw
	}
	rows := 0
	for t, d := range c.Attrs {
		if d == nil {
			continue
		}
		parts := make([]float64, len(ns.parts[t]))
		copy(parts, ns.parts[t])
		for i, r := range d.Rows {
			parts[r] += dot(d.New[i], ns.wR[t]) - dot(d.Old[i], ns.wR[t])
		}
		np := make([][]float64, len(ns.parts))
		copy(np, ns.parts)
		np[t] = parts
		ns.parts = np
		rows += len(d.Rows)
	}
	if c.Entity != nil {
		rows += len(c.Entity.Rows)
	}
	s.st = &ns
	el := time.Since(start)
	s.stats.Commits++
	s.stats.Rows += uint64(rows)
	s.stats.LastPatch = el
	s.stats.TotalPatch += el
}

func dot(a, b []float64) float64 {
	m := 0.0
	for i, x := range a {
		m += x * b[i]
	}
	return m
}

// UpdateWeights replaces the model, recomputing every partial cache at
// the current epoch under the write lock. Scoring stalls for the
// recompute (O(nnz) of the base tables); in-flight requests finish on
// the (weights, epoch) snapshot they started with. Safe to call
// concurrently with commits: a commit that publishes while the
// recompute runs is either already included (the recompute pins the
// newest epoch) or applied by the subscribed listener right after.
func (s *EpochScorer) UpdateWeights(w *la.Dense) error {
	wCol, err := asWeightColumn(w, s.store.Cols())
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.store.Pin()
	defer snap.Release()
	s.st = s.computePartials(wCol, snap)
	return nil
}

// Weights returns a copy of the current d×1 weight vector.
func (s *EpochScorer) Weights() *la.Dense {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.w.Clone()
}

// Version reports the epoch the scorer currently serves. It advances
// synchronously with Store.Commit.
func (s *EpochScorer) Version() epoch.Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.version
}

// PatchStats returns a snapshot of the incremental-maintenance counters.
func (s *EpochScorer) PatchStats() PatchStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Store returns the versioned feature store the scorer serves from.
func (s *EpochScorer) Store() *epoch.Store { return s.store }

// Head reports the configured link function.
func (s *EpochScorer) Head() Head { return s.head }

// Rows reports the number of servable rows (logical rows of T).
func (s *EpochScorer) Rows() int { return s.store.Rows() }

// ScoreRow serves a single prediction for logical row id at the current
// (weights, epoch) generation.
func (s *EpochScorer) ScoreRow(id int) (float64, error) {
	if id < 0 || id >= s.store.Rows() {
		return 0, fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, id, s.store.Rows())
	}
	out := make([]float64, 1)
	s.gather([]int{id}, out)
	return out[0], nil
}

// ScoreBatch serves predictions for a batch of logical row ids. The
// partial-cache generation is snapshotted once, before the first row:
// all rows of the batch observe one weight version and one epoch, even
// under concurrent UpdateWeights and Store.Commit.
func (s *EpochScorer) ScoreBatch(ids []int) ([]float64, error) {
	out := make([]float64, len(ids))
	if err := s.ScoreBatchInto(ids, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ScoreBatchInto is the allocation-free form of ScoreBatch: scores are
// written into the caller-owned out slice (len(out) must equal
// len(ids)). Snapshot semantics are identical to ScoreBatch: one
// (weights, epoch) generation for the whole batch.
func (s *EpochScorer) ScoreBatchInto(ids []int, out []float64) error {
	if len(out) != len(ids) {
		return fmt.Errorf("%w: %d for %d ids", ErrOutputLen, len(out), len(ids))
	}
	n := s.store.Rows()
	for _, id := range ids {
		if id < 0 || id >= n {
			return fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, id, n)
		}
	}
	s.gather(ids, out)
	return nil
}

// ScoreAll serves every row in order at one (weights, epoch) generation.
func (s *EpochScorer) ScoreAll() []float64 {
	out := make([]float64, s.store.Rows())
	s.gather(nil, out)
	return out
}

// gather snapshots the current generation once and runs the shared
// kernel — the same code path Scorer uses, so epoch-aware scoring stays
// bit-identical to a fresh Scorer over the same epoch.
func (s *EpochScorer) gather(ids []int, out []float64) {
	s.mu.RLock()
	st := s.st
	s.mu.RUnlock()
	gatherInto(ids, out, s.isAssign, s.kAssign, st.sw, st.parts, s.head == Logistic, 1)
}
