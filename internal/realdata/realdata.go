// Package realdata regenerates the seven real-world normalized datasets of
// the paper's Table 6 as statistical clones. The original Kaggle/Expedia/
// Yelp/etc. dumps are not redistributable, so each dataset is synthesized
// as sparse one-hot feature matrices with the published dimensions and
// non-zero counts (nS, dS, nnzS, q, nRi, dRi, nnzRi). The factorized-vs-
// materialized runtime behaviour depends only on these statistics, which is
// what the substitution preserves (see DESIGN.md §3).
package realdata

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/la"
)

// TableStats describes one attribute table's published statistics.
type TableStats struct {
	NR, DR, NNZ int
}

// DatasetSpec mirrors one row of the paper's Table 6.
type DatasetSpec struct {
	Name   string
	NS     int
	DS     int
	NNZS   int
	Tables []TableStats
	// Scale divides all row counts (keeping columns and per-row nnz) so
	// benchmarks finish at laptop scale; 1 reproduces Table 6 exactly.
	Scale int
}

// Specs returns the seven datasets with the exact Table 6 statistics.
func Specs() []DatasetSpec {
	return []DatasetSpec{
		{Name: "Expedia", NS: 942142, DS: 27, NNZS: 5652852, Tables: []TableStats{
			{11939, 12013, 107451}, {37021, 40242, 555315}}},
		{Name: "Movies", NS: 1000209, DS: 0, NNZS: 0, Tables: []TableStats{
			{6040, 9509, 30200}, {3706, 3839, 81532}}},
		{Name: "Yelp", NS: 215879, DS: 0, NNZS: 0, Tables: []TableStats{
			{11535, 11706, 380655}, {43873, 43900, 307111}}},
		{Name: "Walmart", NS: 421570, DS: 1, NNZS: 421570, Tables: []TableStats{
			{2340, 2387, 23400}, {45, 53, 135}}},
		{Name: "LastFM", NS: 343747, DS: 0, NNZS: 0, Tables: []TableStats{
			{4099, 5019, 39992}, {50000, 50233, 250000}}},
		{Name: "Books", NS: 253120, DS: 0, NNZS: 0, Tables: []TableStats{
			{27876, 28022, 83628}, {49972, 53641, 249860}}},
		{Name: "Flights", NS: 66548, DS: 20, NNZS: 55301, Tables: []TableStats{
			{540, 718, 3240}, {3167, 6464, 22169}, {3170, 6467, 22190}}},
	}
}

// SpecByName looks up a Table 6 dataset by (case-sensitive) name.
func SpecByName(name string) (DatasetSpec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("realdata: unknown dataset %q", name)
}

// Scaled returns a copy with row counts divided by f (minimum 1 row) and
// non-zero counts shrunk proportionally.
func (s DatasetSpec) Scaled(f int) DatasetSpec {
	if f <= 1 {
		return s
	}
	out := s
	out.Scale = f
	out.NS = maxInt(s.NS/f, 1)
	out.NNZS = s.NNZS / f
	out.Tables = make([]TableStats, len(s.Tables))
	for i, t := range s.Tables {
		out.Tables[i] = TableStats{NR: maxInt(t.NR/f, 1), DR: maxInt(t.DR/f, 2), NNZ: maxInt(t.NNZ/f, t.NR/f)}
	}
	return out
}

// Dataset is a generated statistical clone: the normalized matrix plus a
// numeric target (binarized for classification workloads by the caller).
type Dataset struct {
	Spec DatasetSpec
	Norm *core.NormalizedMatrix
	Y    *la.Dense
}

// Generate builds the dataset clone. Entity features are dense-ish numeric
// columns stored sparse exactly when the published nnz says so; attribute
// features are one-hot-dominated sparse rows with nnz/nR non-zeros per row
// (at least one — the folded-in foreign key column of [28]).
func Generate(spec DatasetSpec, seed int64) (*Dataset, error) {
	if spec.NS <= 0 || len(spec.Tables) == 0 {
		return nil, fmt.Errorf("realdata: invalid spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(seed))
	var s la.Mat
	if spec.DS > 0 {
		s = sparseNumeric(rng, spec.NS, spec.DS, spec.NNZS)
	}
	ks := make([]*la.Indicator, len(spec.Tables))
	rs := make([]la.Mat, len(spec.Tables))
	for i, t := range spec.Tables {
		assign := make([]int, spec.NS)
		// Zipf-ish skew: popular attribute tuples are referenced more,
		// matching real FK distributions.
		for j := range assign {
			if j < t.NR {
				assign[j] = j
			} else {
				assign[j] = skewedIndex(rng, t.NR)
			}
		}
		rng.Shuffle(len(assign), func(a, b int) { assign[a], assign[b] = assign[b], assign[a] })
		ks[i] = la.NewIndicator(assign, t.NR)
		rs[i] = sparseOneHot(rng, t.NR, t.DR, t.NNZ)
	}
	nm, err := core.NewStar(s, ks, rs)
	if err != nil {
		return nil, err
	}
	y := la.NewDense(spec.NS, 1)
	for i := 0; i < spec.NS; i++ {
		y.Set(i, 0, float64(rng.Intn(5)+1)) // rating-like numeric target
	}
	return &Dataset{Spec: spec, Norm: nm, Y: y}, nil
}

// BinaryY returns ±1 labels derived from the numeric target (above/below
// its midpoint), as the paper binarizes targets for logistic regression.
func (d *Dataset) BinaryY() *la.Dense {
	out := d.Y.Clone()
	for i, v := range out.Data() {
		if v >= 3 {
			out.Data()[i] = 1
		} else {
			out.Data()[i] = -1
		}
	}
	return out
}

// sparseNumeric builds an nS×dS matrix with exactly min(nnz, nS*dS)
// non-zero numeric entries spread row-first (entity tables in Table 6 are
// dense numeric blocks: nnz ≈ nS·dS).
func sparseNumeric(rng *rand.Rand, rows, cols, nnz int) la.Mat {
	if nnz >= rows*cols {
		d := la.NewDense(rows, cols)
		data := d.Data()
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		return d
	}
	perRow := nnz / rows
	b := la.NewCSRBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for c := 0; c < perRow && c < cols; c++ {
			b.Add(i, c, rng.NormFloat64())
		}
	}
	return b.Build()
}

// sparseOneHot builds an nR×dR matrix whose rows hold nnz/nR one-hot
// indicator entries at random columns (plus a value in column 0 so no row
// is empty), cloning the one-hot-encoded categorical attribute tables.
func sparseOneHot(rng *rand.Rand, rows, cols, nnz int) la.Mat {
	perRow := nnz / rows
	if perRow < 1 {
		perRow = 1
	}
	if perRow > cols {
		perRow = cols
	}
	b := la.NewCSRBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		b.Add(i, 0, 1)
		for c := 1; c < perRow; c++ {
			b.Add(i, 1+rng.Intn(cols-1), 1)
		}
	}
	return b.Build()
}

// skewedIndex draws from [0,n) with a mild popularity skew.
func skewedIndex(rng *rand.Rand, n int) int {
	u := rng.Float64()
	return int(u * u * float64(n))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
