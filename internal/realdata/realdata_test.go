package realdata

import (
	"testing"

	"repro/internal/la"
)

func TestSpecsMatchTable6(t *testing.T) {
	specs := Specs()
	if len(specs) != 7 {
		t.Fatalf("%d datasets, want 7", len(specs))
	}
	// Spot-check the published Table 6 statistics.
	e := specs[0]
	if e.Name != "Expedia" || e.NS != 942142 || e.DS != 27 || len(e.Tables) != 2 {
		t.Fatalf("Expedia spec %+v", e)
	}
	if e.Tables[1].DR != 40242 {
		t.Fatal("Expedia R2 width")
	}
	f := specs[6]
	if f.Name != "Flights" || len(f.Tables) != 3 {
		t.Fatal("Flights should have q=3 attribute tables")
	}
	m := specs[1]
	if m.Name != "Movies" || m.DS != 0 {
		t.Fatal("Movies should have dS=0")
	}
}

func TestSpecByName(t *testing.T) {
	if _, err := SpecByName("Yelp"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestScaled(t *testing.T) {
	s, _ := SpecByName("Walmart")
	sc := s.Scaled(10)
	if sc.NS != s.NS/10 {
		t.Fatal("NS not scaled")
	}
	if sc.Tables[0].NR != s.Tables[0].NR/10 {
		t.Fatal("NR not scaled")
	}
	if s.Scaled(1).NS != s.NS {
		t.Fatal("scale 1 should be identity")
	}
}

func TestGenerateCloneInvariants(t *testing.T) {
	spec, _ := SpecByName("Flights")
	spec = spec.Scaled(20)
	d, err := Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	nm := d.Norm
	if nm.Rows() != spec.NS {
		t.Fatalf("rows %d != %d", nm.Rows(), spec.NS)
	}
	wantCols := spec.DS
	for _, tb := range spec.Tables {
		wantCols += tb.DR
	}
	if nm.Cols() != wantCols {
		t.Fatalf("cols %d != %d", nm.Cols(), wantCols)
	}
	if nm.NumTables() != 3 {
		t.Fatal("q mismatch")
	}
	// Attribute tables must be sparse.
	for i, r := range nm.Rs() {
		if _, ok := r.(*la.CSR); !ok {
			t.Fatalf("R%d is not sparse", i+1)
		}
		if r.NNZ() == 0 {
			t.Fatalf("R%d empty", i+1)
		}
	}
	if d.Y.Rows() != spec.NS {
		t.Fatal("target rows")
	}
	// Materialized sparse view agrees with the factorized logical view on
	// a few entries.
	sp := nm.Sparse()
	for i := 0; i < 10; i++ {
		for j := 0; j < 5; j++ {
			if sp.At(i, j) != nm.At(i, j) {
				t.Fatal("sparse materialization mismatch")
			}
		}
	}
}

func TestGenerateDSZero(t *testing.T) {
	spec, _ := SpecByName("Movies")
	spec = spec.Scaled(100)
	d, err := Generate(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Norm.S() != nil {
		t.Fatal("Movies clone should have no entity features")
	}
}

func TestBinaryY(t *testing.T) {
	spec, _ := SpecByName("Books")
	d, err := Generate(spec.Scaled(200), 3)
	if err != nil {
		t.Fatal(err)
	}
	y := d.BinaryY()
	pos, neg := 0, 0
	for _, v := range y.Data() {
		switch v {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("non-binary label %v", v)
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatal("degenerate binarized labels")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := SpecByName("Yelp")
	spec = spec.Scaled(200)
	a, _ := Generate(spec, 5)
	b, _ := Generate(spec, 5)
	if a.Norm.NNZ() != b.Norm.NNZ() {
		t.Fatal("same seed produced different clones")
	}
	if la.MaxAbsDiff(a.Y, b.Y) != 0 {
		t.Fatal("targets not deterministic")
	}
}
