package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

// randMultiMN builds a multi-table M:N normalized matrix (appendix E): no
// entity table, q attribute tables each with its own row selector over a
// shared output cardinality.
func randMultiMN(rng *rand.Rand, q int) *NormalizedMatrix {
	n := 20 + rng.Intn(40) // |T'|
	irs := make([]*la.Indicator, q)
	rs := make([]la.Mat, q)
	for t := 0; t < q; t++ {
		nR := 3 + rng.Intn(6)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(nR)
		}
		irs[t] = la.NewIndicator(assign, nR)
		rs[t] = randMat(rng, nR, 1+rng.Intn(4))
	}
	m, err := NewMultiMN(irs, rs)
	if err != nil {
		panic(err)
	}
	return m
}

// TestMultiMNOperators runs the appendix E rewrite rules for multi-table
// M:N joins against materialized execution, both orientations.
func TestMultiMNOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 8; trial++ {
		for _, q := range []int{2, 3} {
			base := randMultiMN(rng, q)
			for _, m := range []*NormalizedMatrix{base, base.Transpose()} {
				md := m.Dense()
				if m.S() != nil {
					t.Fatal("multi-table M:N should have no entity table")
				}
				if la.MaxAbsDiff(m.Scale(2).Dense(), md.ScaleDense(2)) > tol {
					t.Fatal("multi M:N scale mismatch")
				}
				if la.MaxAbsDiff(m.RowSums(), md.RowSums()) > tol {
					t.Fatal("multi M:N rowSums mismatch")
				}
				if la.MaxAbsDiff(m.ColSums(), md.ColSums()) > tol {
					t.Fatal("multi M:N colSums mismatch")
				}
				if math.Abs(m.Sum()-md.Sum()) > 1e-8 {
					t.Fatal("multi M:N sum mismatch")
				}
				x := randDense(rng, m.Cols(), 2)
				if la.MaxAbsDiff(m.Mul(x), la.MatMul(md, x)) > tol {
					t.Fatal("multi M:N LMM mismatch")
				}
				xl := randDense(rng, 2, m.Rows())
				if la.MaxAbsDiff(m.LeftMul(xl), la.MatMul(xl, md)) > tol {
					t.Fatal("multi M:N RMM mismatch")
				}
				if la.MaxAbsDiff(m.CrossProd(), md.CrossProd()) > 1e-8 {
					t.Fatal("multi M:N crossprod mismatch")
				}
				if la.MaxAbsDiff(m.CrossProdNaive(), md.CrossProd()) > 1e-8 {
					t.Fatal("multi M:N naive crossprod mismatch")
				}
			}
		}
	}
}

// TestPKFKDegeneratesToIdentityMN: a PK-FK normalized matrix and the
// equivalent M:N matrix with IS = identity produce identical results for
// every operator (the appendix D remark).
func TestPKFKDegeneratesToIdentityMN(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	nS, nR := 30, 5
	s := randMat(rng, nS, 3)
	k := randIndicator(rng, nS, nR)
	r := randMat(rng, nR, 4)
	pkfk, err := NewPKFK(s, k, r)
	if err != nil {
		t.Fatal(err)
	}
	idAssign := make([]int, nS)
	for i := range idAssign {
		idAssign[i] = i
	}
	mn, err := NewMN(s.CloneMat(), la.NewIndicator(idAssign, nS), k, r.CloneMat())
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(pkfk.Dense(), mn.Dense()) > 0 {
		t.Fatal("materialization differs")
	}
	x := randDense(rng, pkfk.Cols(), 2)
	if la.MaxAbsDiff(pkfk.Mul(x), mn.Mul(x)) > tol {
		t.Fatal("LMM differs")
	}
	if la.MaxAbsDiff(pkfk.CrossProd(), mn.CrossProd()) > 1e-9 {
		t.Fatal("crossprod differs")
	}
	if la.MaxAbsDiff(pkfk.RowSums(), mn.RowSums()) > tol {
		t.Fatal("rowSums differs")
	}
	if math.Abs(pkfk.Sum()-mn.Sum()) > 1e-9 {
		t.Fatal("sum differs")
	}
}

// TestGramTransposedCrossProd exercises the appendix A Gram-matrix rewrite
// crossprod(Tᵀ) = Σ Ii·cp(Riᵀ)·Iiᵀ directly at a size where the two-sided
// gather path matters.
func TestGramTransposedCrossProd(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	m := randMultiMN(rng, 2)
	got := m.Transpose().CrossProd()
	want := m.Dense().Gram()
	if la.MaxAbsDiff(got, want) > 1e-8 {
		t.Fatal("transposed crossprod (Gram) mismatch")
	}
}
