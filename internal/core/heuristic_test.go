package core

import (
	"testing"

	"repro/internal/la"
)

// dimsMat is a dimension-only la.Mat stub: ComputeStats touches nothing
// but Rows/Cols, which lets the test use ORE-scale shapes that could never
// be allocated.
type dimsMat struct {
	la.Mat
	r, c int
}

func (d dimsMat) Rows() int { return d.r }
func (d dimsMat) Cols() int { return d.c }

// TestComputeStatsOREScaleNoOverflow is the regression test for the
// integer-overflow bug: at ORE scale the logical cell count nS·dCols (and
// the base-table totals) exceed what fixed-width integer arithmetic holds,
// which used to wrap Redundancy negative and silently flip the §3.7
// Advisor's notion of the storage blow-up. The products are now taken in
// float64.
func TestComputeStatsOREScaleNoOverflow(t *testing.T) {
	// nS·dCols = 2^57 · 128 = 2^64 — wraps to 0 in int64 arithmetic.
	nS := 1 << 57
	dS, dR := 8, 120
	nR := 1 << 50
	m := &NormalizedMatrix{
		s:     dimsMat{r: nS, c: dS},
		rs:    []la.Mat{dimsMat{r: nR, c: dR}},
		nRows: nS,
		dCols: dS + dR,
	}
	st := m.ComputeStats()
	if st.Redundancy <= 0 {
		t.Fatalf("Redundancy = %g, overflowed", st.Redundancy)
	}
	wantBase := float64(nS)*float64(dS) + float64(nR)*float64(dR)
	want := float64(nS) * float64(dS+dR) / wantBase
	if rel := (st.Redundancy - want) / want; rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("Redundancy = %g, want %g", st.Redundancy, want)
	}
	// The huge tuple ratio must keep the Advisor on the factorized side.
	if !DefaultAdvisor().ShouldFactorize(st) {
		t.Fatal("Advisor flipped to materialized on ORE-scale redundancy")
	}
}
