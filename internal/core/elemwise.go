package core

import (
	"fmt"

	"repro/internal/la"
)

// Element-wise matrix-matrix operators are "non-factorizable" (§3.3.7):
// when the other operand X is a regular matrix with no schema-induced
// structure, the computation T ∘ X has no redundancy to avoid, so Morpheus
// materializes T and computes directly. They are provided for API
// completeness — the paper notes no popular ML algorithm bottlenecks on
// them — and return regular matrices.
//
// The one special case that does factorize is X being a normalized matrix
// with the *same* indicator structure (e.g. T + T, or f(T) ∘ g(T) for
// element-wise f, g): then the operation distributes over the shared parts
// and the result stays normalized. AddNorm exploits that.

// AddElem computes T + X for a regular X.
func (m *NormalizedMatrix) AddElem(x *la.Dense) *la.Dense { return m.Dense().Add(x) }

// SubElem computes T − X for a regular X.
func (m *NormalizedMatrix) SubElem(x *la.Dense) *la.Dense { return m.Dense().Sub(x) }

// MulElem computes T ∗ X (Hadamard) for a regular X.
func (m *NormalizedMatrix) MulElem(x *la.Dense) *la.Dense { return m.Dense().MulElem(x) }

// DivElem computes T / X element-wise for a regular X.
func (m *NormalizedMatrix) DivElem(x *la.Dense) *la.Dense { return m.Dense().DivElem(x) }

// SameStructure reports whether b shares the receiver's indicator
// structure (same selectors, same part shapes, same orientation), which is
// the condition under which element-wise matrix ops stay factorizable.
func (m *NormalizedMatrix) SameStructure(b *NormalizedMatrix) bool {
	if m.trans != b.trans || m.nRows != b.nRows || m.dCols != b.dCols {
		return false
	}
	if (m.s == nil) != (b.s == nil) || len(m.ks) != len(b.ks) {
		return false
	}
	if m.s != nil && (m.s.Rows() != b.s.Rows() || m.s.Cols() != b.s.Cols()) {
		return false
	}
	if (m.is == nil) != (b.is == nil) {
		return false
	}
	if m.is != nil && !sameAssign(m.is, b.is) {
		return false
	}
	for i := range m.ks {
		if m.rs[i].Rows() != b.rs[i].Rows() || m.rs[i].Cols() != b.rs[i].Cols() {
			return false
		}
		if !sameAssign(m.ks[i], b.ks[i]) {
			return false
		}
	}
	return true
}

func sameAssign(a, b *la.Indicator) bool {
	if a.Cols() != b.Cols() || a.Rows() != b.Rows() {
		return false
	}
	aa, ba := a.Assignments(), b.Assignments()
	for i := range aa {
		if aa[i] != ba[i] {
			return false
		}
	}
	return true
}

// AddNorm computes T + B for two normalized matrices with identical
// indicator structure, staying factorized: the parts add independently.
// It returns an error when the structures differ (use AddElem instead).
func (m *NormalizedMatrix) AddNorm(b *NormalizedMatrix) (*NormalizedMatrix, error) {
	if !m.SameStructure(b) {
		return nil, fmt.Errorf("core: AddNorm requires identical normalized structure")
	}
	var s la.Mat
	if m.s != nil {
		s = addMat(m.s, b.s)
	}
	rs := make([]la.Mat, len(m.rs))
	for i := range m.rs {
		rs[i] = addMat(m.rs[i], b.rs[i])
	}
	return m.withParts(s, rs), nil
}

func addMat(a, b la.Mat) la.Mat {
	ad, aok := a.(*la.Dense)
	bd, bok := b.(*la.Dense)
	if aok && bok {
		return ad.Add(bd)
	}
	return a.Dense().Add(b.Dense())
}
