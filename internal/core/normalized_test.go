package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

// randMat returns a random base-table matrix, dense or sparse at random.
func randMat(rng *rand.Rand, rows, cols int) la.Mat {
	d := la.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			d.Set(i, j, rng.NormFloat64())
		}
	}
	if rng.Intn(2) == 0 {
		// Sparsify ~60% of entries to exercise the CSR paths.
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.6 {
					d.Set(i, j, 0)
				}
			}
		}
		return la.CSRFromDense(d)
	}
	return d
}

func randIndicator(rng *rand.Rand, rows, cols int) *la.Indicator {
	assign := make([]int, rows)
	for i := range assign {
		assign[i] = rng.Intn(cols)
	}
	return la.NewIndicator(assign, cols)
}

func randDense(rng *rand.Rand, rows, cols int) *la.Dense {
	d := la.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			d.Set(i, j, rng.NormFloat64())
		}
	}
	return d
}

// randPKFK builds a random single-join normalized matrix.
func randPKFK(rng *rand.Rand) *NormalizedMatrix {
	nS := 10 + rng.Intn(40)
	nR := 2 + rng.Intn(8)
	dS := 1 + rng.Intn(6)
	dR := 1 + rng.Intn(6)
	m, err := NewPKFK(randMat(rng, nS, dS), randIndicator(rng, nS, nR), randMat(rng, nR, dR))
	if err != nil {
		panic(err)
	}
	return m
}

// randStar builds a random star-schema normalized matrix with 2-3 tables,
// occasionally with no entity features (dS = 0).
func randStar(rng *rand.Rand) *NormalizedMatrix {
	nS := 10 + rng.Intn(40)
	q := 2 + rng.Intn(2)
	var s la.Mat
	if rng.Intn(4) > 0 {
		s = randMat(rng, nS, 1+rng.Intn(5))
	}
	ks := make([]*la.Indicator, q)
	rs := make([]la.Mat, q)
	for i := 0; i < q; i++ {
		nR := 2 + rng.Intn(7)
		ks[i] = randIndicator(rng, nS, nR)
		rs[i] = randMat(rng, nR, 1+rng.Intn(5))
	}
	m, err := NewStar(s, ks, rs)
	if err != nil {
		panic(err)
	}
	return m
}

// randMN builds a random two-table M:N normalized matrix by simulating an
// equi-join on a shared attribute.
func randMN(rng *rand.Rand) *NormalizedMatrix {
	nS := 5 + rng.Intn(15)
	nR := 5 + rng.Intn(15)
	nU := 2 + rng.Intn(5)
	jS := make([]int, nS)
	jR := make([]int, nR)
	for i := range jS {
		jS[i] = rng.Intn(nU)
	}
	for i := range jR {
		jR[i] = rng.Intn(nU)
	}
	var isAssign, irAssign []int
	for i, a := range jS {
		for j, b := range jR {
			if a == b {
				isAssign = append(isAssign, i)
				irAssign = append(irAssign, j)
			}
		}
	}
	if len(isAssign) == 0 {
		// Force at least one matching pair.
		jR[0] = jS[0]
		isAssign = append(isAssign, 0)
		irAssign = append(irAssign, 0)
	}
	s := randMat(rng, nS, 1+rng.Intn(5))
	r := randMat(rng, nR, 1+rng.Intn(5))
	m, err := NewMN(s, la.NewIndicator(isAssign, nS), la.NewIndicator(irAssign, nR), r)
	if err != nil {
		panic(err)
	}
	return m
}

// allKinds yields one generator per schema kind, plus transposed variants.
func allKinds() []func(*rand.Rand) *NormalizedMatrix {
	base := []func(*rand.Rand) *NormalizedMatrix{randPKFK, randStar, randMN}
	out := base
	for _, g := range base {
		g := g
		out = append(out, func(rng *rand.Rand) *NormalizedMatrix { return g(rng).Transpose() })
	}
	return out
}

const tol = 1e-9

func TestConstructorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randMat(rng, 10, 3)
	k := randIndicator(rng, 10, 4)
	r := randMat(rng, 4, 2)
	if _, err := NewPKFK(s, k, r); err != nil {
		t.Fatalf("valid PK-FK rejected: %v", err)
	}
	// K columns must match R rows.
	if _, err := NewPKFK(s, k, randMat(rng, 5, 2)); err == nil {
		t.Fatal("mismatched K/R accepted")
	}
	// S rows must match K rows.
	if _, err := NewPKFK(randMat(rng, 9, 3), k, r); err == nil {
		t.Fatal("mismatched S/K accepted")
	}
	// Entirely empty matrix rejected.
	if _, err := NewStar(nil, nil, nil); err == nil {
		t.Fatal("empty normalized matrix accepted")
	}
	// Nil S with valid attribute table is fine (dS = 0 datasets).
	if _, err := NewPKFK(nil, k, r); err != nil {
		t.Fatalf("dS=0 matrix rejected: %v", err)
	}
}

func TestDims(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randPKFK(rng)
	md := m.Dense()
	if m.Rows() != md.Rows() || m.Cols() != md.Cols() {
		t.Fatalf("dims %dx%d vs dense %dx%d", m.Rows(), m.Cols(), md.Rows(), md.Cols())
	}
	tm := m.Transpose()
	if tm.Rows() != m.Cols() || tm.Cols() != m.Rows() {
		t.Fatal("transpose dims")
	}
	if !tm.IsTransposed() || m.IsTransposed() {
		t.Fatal("transpose flag")
	}
	if tm.Transpose().IsTransposed() {
		t.Fatal("double transpose flag")
	}
}

func TestDenseMaterializeMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, gen := range allKinds() {
		m := gen(rng)
		md := m.Dense()
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if math.Abs(m.At(i, j)-md.At(i, j)) > 0 {
					t.Fatalf("At(%d,%d) mismatch", i, j)
				}
			}
		}
	}
}

func TestSparseMaterializeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, gen := range allKinds() {
		m := gen(rng)
		if !la.EqualApprox(m.Sparse().Dense(), m.Dense(), 0) {
			t.Fatal("Sparse() != Dense()")
		}
	}
}

func TestNNZMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := randStar(rng)
		if got, want := m.NNZ(), m.Dense().NNZ(); got != want {
			t.Fatalf("NNZ %d != %d", got, want)
		}
	}
}

// TestScalarOps checks §3.3.1: T∘x rewrites for all schema kinds, both
// orientations, dense and sparse parts.
func TestScalarOps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, gen := range allKinds() {
		for trial := 0; trial < 5; trial++ {
			m := gen(rng)
			md := m.Dense()
			if la.MaxAbsDiff(m.Scale(3.5).Dense(), md.ScaleDense(3.5)) > tol {
				t.Fatal("Scale rewrite mismatch")
			}
			if la.MaxAbsDiff(m.AddScalar(-1.25).Dense(), md.AddScalarDense(-1.25)) > tol {
				t.Fatal("AddScalar rewrite mismatch")
			}
			if la.MaxAbsDiff(m.Pow(2).Dense(), md.PowDense(2)) > tol {
				t.Fatal("Pow rewrite mismatch")
			}
			if la.MaxAbsDiff(m.Apply(math.Exp).Dense(), md.ApplyDense(math.Exp)) > tol {
				t.Fatal("Apply rewrite mismatch")
			}
		}
	}
}

// TestScalarOpsStayNormalized checks the closure property: element-wise ops
// return normalized matrices so redundancy avoidance propagates.
func TestScalarOpsStayNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randPKFK(rng)
	if _, ok := m.Scale(2).(*NormalizedMatrix); !ok {
		t.Fatal("Scale lost normalized form")
	}
	if _, ok := m.Apply(math.Exp).(*NormalizedMatrix); !ok {
		t.Fatal("Apply lost normalized form")
	}
	// And chaining still matches the materialized result.
	got := m.Scale(2).Apply(math.Tanh).(*NormalizedMatrix).Dense()
	want := m.Dense().ScaleDense(2).ApplyDense(math.Tanh)
	if la.MaxAbsDiff(got, want) > tol {
		t.Fatal("chained scalar ops mismatch")
	}
}

// TestAggregations checks §3.3.2 for all schema kinds and orientations.
func TestAggregations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, gen := range allKinds() {
		for trial := 0; trial < 5; trial++ {
			m := gen(rng)
			md := m.Dense()
			if la.MaxAbsDiff(m.RowSums(), md.RowSums()) > tol {
				t.Fatal("rowSums rewrite mismatch")
			}
			if la.MaxAbsDiff(m.ColSums(), md.ColSums()) > tol {
				t.Fatal("colSums rewrite mismatch")
			}
			if math.Abs(m.Sum()-md.Sum()) > tol*float64(1+m.Rows()*m.Cols()) {
				t.Fatal("sum rewrite mismatch")
			}
		}
	}
}

// TestLMM checks §3.3.3 (including multi-table §3.5, M:N appendix D, and
// the transposed variant of appendix A) with weight matrices, not just
// vectors.
func TestLMM(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, gen := range allKinds() {
		for trial := 0; trial < 5; trial++ {
			m := gen(rng)
			x := randDense(rng, m.Cols(), 1+rng.Intn(4))
			got := m.Mul(x)
			want := la.MatMul(m.Dense(), x)
			if la.MaxAbsDiff(got, want) > tol {
				t.Fatal("LMM rewrite mismatch")
			}
		}
	}
}

// TestRMM checks §3.3.4 and its transposed variant.
func TestRMM(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, gen := range allKinds() {
		for trial := 0; trial < 5; trial++ {
			m := gen(rng)
			x := randDense(rng, 1+rng.Intn(4), m.Rows())
			got := m.LeftMul(x)
			want := la.MatMul(x, m.Dense())
			if la.MaxAbsDiff(got, want) > tol {
				t.Fatal("RMM rewrite mismatch")
			}
		}
	}
}

// TestCrossProd checks §3.3.5: both the efficient (Algorithm 2/10) and
// naive (Algorithm 1/9) methods, all schema kinds, plus the transposed
// (Gram matrix) rewrite from appendix A.
func TestCrossProd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, gen := range allKinds() {
		for trial := 0; trial < 5; trial++ {
			m := gen(rng)
			md := m.Dense()
			want := md.CrossProd()
			if la.MaxAbsDiff(m.CrossProd(), want) > 1e-8 {
				t.Fatal("efficient cross-product mismatch")
			}
			if la.MaxAbsDiff(m.CrossProdNaive(), want) > 1e-8 {
				t.Fatal("naive cross-product mismatch")
			}
		}
	}
}

// TestGinv checks §3.3.6 against the dense pseudo-inverse on both
// orientations.
func TestGinv(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, gen := range allKinds() {
		m := gen(rng)
		got := m.Ginv()
		want := la.Ginv(m.Dense())
		if got.Rows() != m.Cols() || got.Cols() != m.Rows() {
			t.Fatalf("ginv dims %dx%d for %dx%d input", got.Rows(), got.Cols(), m.Rows(), m.Cols())
		}
		if la.MaxAbsDiff(got, want) > 1e-6 {
			t.Fatalf("ginv rewrite mismatch: %g", la.MaxAbsDiff(got, want))
		}
	}
}

// TestTransposeInvolution checks Tᵀᵀ ≡ T through the flag.
func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randStar(rng)
	tt := m.Transpose().Transpose()
	if la.MaxAbsDiff(tt.Dense(), m.Dense()) > 0 {
		t.Fatal("double transpose mismatch")
	}
	if la.MaxAbsDiff(m.Transpose().Dense(), m.Dense().TDense()) > 0 {
		t.Fatal("transpose materialization mismatch")
	}
}

func TestCompactDropsUnreferenced(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Build a PK-FK join where R rows 3 and 4 are never referenced.
	nS, nR := 20, 6
	assign := make([]int, nS)
	for i := range assign {
		assign[i] = rng.Intn(3) // only rows 0..2 referenced
	}
	assign[0] = 5 // and row 5
	s := randMat(rng, nS, 2)
	r := randMat(rng, nR, 3)
	m, err := NewPKFK(s, la.NewIndicator(assign, nR), r)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Compact()
	if c.Rs()[0].Rows() != 4 {
		t.Fatalf("compacted R has %d rows, want 4", c.Rs()[0].Rows())
	}
	if la.MaxAbsDiff(c.Dense(), m.Dense()) > 0 {
		t.Fatal("Compact changed the logical matrix")
	}
	// Idempotent.
	c2 := c.Compact()
	if c2.Rs()[0].Rows() != 4 {
		t.Fatal("Compact not idempotent")
	}
}

func TestCompactMNEntitySide(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	// M:N join where S row 7 never matches.
	is := la.NewIndicator([]int{0, 1, 2, 0, 1}, 8)
	ir := la.NewIndicator([]int{0, 0, 1, 1, 2}, 3)
	s := randMat(rng, 8, 2)
	r := randMat(rng, 3, 2)
	m, err := NewMN(s, is, ir, r)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Compact()
	if c.S().Rows() != 3 {
		t.Fatalf("compacted S has %d rows, want 3", c.S().Rows())
	}
	if la.MaxAbsDiff(c.Dense(), m.Dense()) > 0 {
		t.Fatal("Compact changed the logical M:N matrix")
	}
}
