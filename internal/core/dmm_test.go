package core

import (
	"math/rand"
	"testing"

	"repro/internal/la"
)

// randPKFKDims builds a PK-FK normalized matrix with exact dimensions.
func randPKFKDims(rng *rand.Rand, nS, dS, nR, dR int) *NormalizedMatrix {
	m, err := NewPKFK(randMat(rng, nS, dS), randIndicator(rng, nS, nR), randMat(rng, nR, dR))
	if err != nil {
		panic(err)
	}
	return m
}

// TestDMM checks appendix C: A·B over normalized matrices where dA = nB.
func TestDMM(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 10; trial++ {
		dSA, dRA := 1+rng.Intn(4), 1+rng.Intn(4)
		nA := 8 + rng.Intn(20)
		nB := dSA + dRA // dA == nB
		dSB, dRB := 1+rng.Intn(4), 1+rng.Intn(4)
		// SB must have at least dSA rows to split; nB = dSA+dRA ≥ dSA+1 ✓.
		a := randPKFKDims(rng, nA, dSA, 2+rng.Intn(4), dRA)
		b := randPKFKDims(rng, nB, dSB, 2+rng.Intn(4), dRB)
		got, err := a.MulNorm(b)
		if err != nil {
			t.Fatal(err)
		}
		want := la.MatMul(a.Dense(), b.Dense())
		if la.MaxAbsDiff(got, want) > tol {
			t.Fatalf("DMM mismatch: %g", la.MaxAbsDiff(got, want))
		}
	}
}

// TestDMMTT checks AᵀBᵀ → (BA)ᵀ.
func TestDMMTT(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dSB, dRB := 2, 3
	nB := 15
	nA := dSB + dRB // BA needs dB == nA
	a := randPKFKDims(rng, nA, 2, 3, 4)
	b := randPKFKDims(rng, nB, dSB, 4, dRB)
	got, err := a.MulNormTT(b)
	if err != nil {
		t.Fatal(err)
	}
	want := la.MatMul(a.Dense().TDense(), b.Dense().TDense())
	if la.MaxAbsDiff(got, want) > tol {
		t.Fatal("transposed DMM mismatch")
	}
}

// TestDMMNT checks A·Bᵀ for all three dSA vs dSB cases.
func TestDMMNT(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cases := []struct{ dSA, dRA, dSB, dRB int }{
		{3, 2, 3, 2}, // dSA == dSB
		{2, 4, 3, 3}, // dSA < dSB
		{4, 2, 2, 4}, // dSA > dSB
	}
	for _, c := range cases {
		a := randPKFKDims(rng, 12, c.dSA, 3, c.dRA)
		b := randPKFKDims(rng, 9, c.dSB, 4, c.dRB)
		got, err := a.MulNormNT(b)
		if err != nil {
			t.Fatal(err)
		}
		want := la.MatMulT(a.Dense(), b.Dense())
		if la.MaxAbsDiff(got, want) > tol {
			t.Fatalf("DMM NT mismatch for dims %+v: %g", c, la.MaxAbsDiff(got, want))
		}
	}
}

// TestDMMTN checks AᵀB (the four-tile rewrite) and that the sparse count
// matrix bound nnz(KAᵀKB) ≤ nS holds implicitly via correctness.
func TestDMMTN(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(20)
		a := randPKFKDims(rng, n, 1+rng.Intn(3), 2+rng.Intn(4), 1+rng.Intn(3))
		b := randPKFKDims(rng, n, 1+rng.Intn(3), 2+rng.Intn(4), 1+rng.Intn(3))
		got, err := a.MulNormTN(b)
		if err != nil {
			t.Fatal(err)
		}
		want := la.TMatMul(a.Dense(), b.Dense())
		if la.MaxAbsDiff(got, want) > tol {
			t.Fatal("DMM TN mismatch")
		}
	}
}

// TestDMMGramDegenerate: AᵀA via the TN rewrite must match CrossProd.
func TestDMMGramDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randPKFKDims(rng, 25, 3, 4, 2)
	got, err := a.MulNormTN(a)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(got, a.CrossProd()) > 1e-8 {
		t.Fatal("AᵀA != crossprod(A)")
	}
}

func TestDMMShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := randPKFKDims(rng, 10, 2, 3, 3)
	b := randPKFKDims(rng, 9, 2, 3, 2) // dA=5 != nB=9
	if _, err := a.MulNorm(b); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Multi-table input rejected.
	star := randStar(rng)
	if _, err := star.MulNorm(a); err != ErrDMMShape {
		t.Fatalf("want ErrDMMShape, got %v", err)
	}
	// Transposed input rejected (callers use MulNormTT et al.).
	if _, err := a.Transpose().MulNorm(b); err != ErrDMMShape {
		t.Fatalf("want ErrDMMShape, got %v", err)
	}
}

func TestHeuristicRule(t *testing.T) {
	adv := DefaultAdvisor()
	// High TR, high FR: factorize.
	if !adv.ShouldFactorize(Stats{TupleRatio: 20, FeatureRatio: 4}) {
		t.Fatal("should factorize at TR=20, FR=4")
	}
	// Low TR: don't, regardless of FR.
	if adv.ShouldFactorize(Stats{TupleRatio: 2, FeatureRatio: 4}) {
		t.Fatal("should not factorize at TR=2")
	}
	// Low FR: don't.
	if adv.ShouldFactorize(Stats{TupleRatio: 20, FeatureRatio: 0.5}) {
		t.Fatal("should not factorize at FR=0.5")
	}
	// Boundary: thresholds are inclusive.
	if !adv.ShouldFactorize(Stats{TupleRatio: 5, FeatureRatio: 1}) {
		t.Fatal("boundary should factorize")
	}
}

func TestComputeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	m := randPKFKDims(rng, 100, 4, 10, 8)
	st := m.ComputeStats()
	if st.NS != 100 || st.NR != 10 || st.DS != 4 || st.DR != 8 {
		t.Fatalf("stats %+v", st)
	}
	if st.TupleRatio != 10 || st.FeatureRatio != 2 {
		t.Fatalf("ratios %+v", st)
	}
	// Redundancy = nS·d / (nS·dS + nR·dR) = 1200/480.
	if st.Redundancy != 1200.0/480.0 {
		t.Fatalf("redundancy %v", st.Redundancy)
	}
	if !DefaultAdvisor().Decide(m) {
		t.Fatal("advisor should factorize TR=10 FR=2")
	}
	// dS = 0 datasets report FeatureRatio = DR.
	m2, err := NewPKFK(nil, randIndicator(rng, 50, 5), randMat(rng, 5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.ComputeStats().FeatureRatio; got != 7 {
		t.Fatalf("dS=0 feature ratio %v", got)
	}
}
