package core

// Stats summarizes the data-dimension statistics the heuristic decision
// rule of §3.7/§5.1 thresholds on.
type Stats struct {
	// NS is the number of rows of T; DS the entity feature width.
	NS, DS int
	// NR and DR aggregate the attribute tables: NR is the largest
	// attribute-table row count (the binding constraint for redundancy),
	// DR the total attribute feature width.
	NR, DR int
	// TupleRatio is nS/nR and FeatureRatio dR/dS (paper §3.4). A missing
	// denominator (dS == 0) yields +Inf-like large ratios, reported as
	// the numerator to keep the rule conservative.
	TupleRatio   float64
	FeatureRatio float64
	// Redundancy is size(T) / (size(S)+ΣRi), the storage blow-up the
	// join introduces; > 1 means the factorized form is smaller.
	Redundancy float64
}

// ComputeStats derives Stats from the normalized matrix dimensions. All
// cell-count products are taken in float64: at ORE scale (nS in the
// billions, dCols in the tens) nS·dCols and the base-table cell totals
// overflow fixed-width integer arithmetic, which would silently corrupt
// Redundancy and flip the Advisor.
func (m *NormalizedMatrix) ComputeStats() Stats {
	st := Stats{NS: m.nRows, DS: m.dS()}
	baseCells := 0.0
	if m.s != nil {
		baseCells += float64(m.s.Rows()) * float64(m.s.Cols())
	}
	for _, r := range m.rs {
		if r.Rows() > st.NR {
			st.NR = r.Rows()
		}
		st.DR += r.Cols()
		baseCells += float64(r.Rows()) * float64(r.Cols())
	}
	if st.NR > 0 {
		st.TupleRatio = float64(st.NS) / float64(st.NR)
	}
	if st.DS > 0 {
		st.FeatureRatio = float64(st.DR) / float64(st.DS)
	} else {
		st.FeatureRatio = float64(st.DR)
	}
	if baseCells > 0 {
		st.Redundancy = float64(st.NS) * float64(m.dCols) / baseCells
	}
	return st
}

// Advisor is the heuristic decision rule of §3.7: a disjunctive predicate
// with two conservatively tuned thresholds. If the tuple ratio is below Tau
// or the feature ratio below Rho, the factorized rewrites are predicted to
// not pay off and the materialized path should be used.
type Advisor struct {
	Tau float64 // tuple-ratio threshold (paper: 5)
	Rho float64 // feature-ratio threshold (paper: 1)
}

// DefaultAdvisor returns the thresholds tuned in §5.1 (τ=5, ρ=1).
func DefaultAdvisor() Advisor { return Advisor{Tau: 5, Rho: 1} }

// ShouldFactorize predicts whether factorized execution will be faster for
// data with the given statistics.
func (a Advisor) ShouldFactorize(st Stats) bool {
	return st.TupleRatio >= a.Tau && st.FeatureRatio >= a.Rho
}

// Decide applies the rule directly to a normalized matrix.
func (a Advisor) Decide(m *NormalizedMatrix) bool {
	return a.ShouldFactorize(m.ComputeStats())
}
