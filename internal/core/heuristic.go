package core

// Stats summarizes the data-dimension statistics the heuristic decision
// rule of §3.7/§5.1 thresholds on.
type Stats struct {
	// NS is the number of rows of T; DS the entity feature width.
	NS, DS int
	// NR and DR aggregate the attribute tables: NR is the largest
	// attribute-table row count (the binding constraint for redundancy),
	// DR the total attribute feature width.
	NR, DR int
	// TupleRatio is nS/nR and FeatureRatio dR/dS (paper §3.4). A missing
	// denominator (dS == 0) yields +Inf-like large ratios, reported as
	// the numerator to keep the rule conservative.
	TupleRatio   float64
	FeatureRatio float64
	// Redundancy is size(T) / (size(S)+ΣRi), the storage blow-up the
	// join introduces; > 1 means the factorized form is smaller.
	Redundancy float64
}

// TableDim is one base table's shape, the only fact StatsFromDims reads.
type TableDim struct {
	Rows, Cols int
}

// StatsFromDims derives Stats purely from dimensions: the output shape
// (nRows×dCols), the entity table s, and the attribute tables rs. It is
// the statistics-free planner's fact source — no data is touched, only
// shapes — and the pure form of ComputeStats, shared so chunked operands
// (which never hold a NormalizedMatrix) get identical numbers.
//
// All cell-count products are taken in float64: at ORE scale (nS in the
// billions, dCols in the tens) nS·dCols and the base-table cell totals
// overflow fixed-width integer arithmetic, which would silently corrupt
// Redundancy and flip the Advisor.
//
// Degenerate inputs stay finite and conservative — no ratio is ever NaN
// or ±Inf:
//   - nR == 0 (no attribute rows): TupleRatio stays 0, so ShouldFactorize
//     is false — the materialized fallback.
//   - dS == 0 (no entity features): the dR/dS feature ratio would be +Inf;
//     it is reported as the numerator dR instead, keeping the value finite
//     while still clearing any sane Rho threshold (with no entity features
//     every output column comes from the attribute tables, where the
//     factorized form avoids all redundancy).
//   - zero base cells: Redundancy stays 0.
//   - negative dimensions (impossible for real tables, reachable through
//     fuzzing or corrupt metadata) are clamped to 0.
func StatsFromDims(nRows, dCols int, s TableDim, rs []TableDim) Stats {
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		return v
	}
	nRows, dCols = clamp(nRows), clamp(dCols)
	st := Stats{NS: nRows, DS: clamp(s.Cols)}
	baseCells := float64(clamp(s.Rows)) * float64(clamp(s.Cols))
	for _, r := range rs {
		rr, rc := clamp(r.Rows), clamp(r.Cols)
		if rr > st.NR {
			st.NR = rr
		}
		st.DR += rc
		baseCells += float64(rr) * float64(rc)
	}
	if st.NR > 0 {
		st.TupleRatio = float64(st.NS) / float64(st.NR)
	}
	if st.DS > 0 {
		st.FeatureRatio = float64(st.DR) / float64(st.DS)
	} else {
		st.FeatureRatio = float64(st.DR)
	}
	if baseCells > 0 {
		st.Redundancy = float64(st.NS) * float64(dCols) / baseCells
	}
	return st
}

// ComputeStats derives Stats from the normalized matrix dimensions (see
// StatsFromDims for the arithmetic and its edge cases).
func (m *NormalizedMatrix) ComputeStats() Stats {
	var s TableDim
	if m.s != nil {
		s = TableDim{Rows: m.s.Rows(), Cols: m.s.Cols()}
	}
	rs := make([]TableDim, len(m.rs))
	for i, r := range m.rs {
		rs[i] = TableDim{Rows: r.Rows(), Cols: r.Cols()}
	}
	return StatsFromDims(m.nRows, m.dCols, s, rs)
}

// Advisor is the heuristic decision rule of §3.7: a disjunctive predicate
// with two conservatively tuned thresholds. If the tuple ratio is below Tau
// or the feature ratio below Rho, the factorized rewrites are predicted to
// not pay off and the materialized path should be used.
type Advisor struct {
	Tau float64 // tuple-ratio threshold (paper: 5)
	Rho float64 // feature-ratio threshold (paper: 1)
}

// DefaultAdvisor returns the thresholds tuned in §5.1 (τ=5, ρ=1).
func DefaultAdvisor() Advisor { return Advisor{Tau: 5, Rho: 1} }

// ShouldFactorize predicts whether factorized execution will be faster for
// data with the given statistics.
func (a Advisor) ShouldFactorize(st Stats) bool {
	return st.TupleRatio >= a.Tau && st.FeatureRatio >= a.Rho
}

// Decide applies the rule directly to a normalized matrix.
func (a Advisor) Decide(m *NormalizedMatrix) bool {
	return a.ShouldFactorize(m.ComputeStats())
}
