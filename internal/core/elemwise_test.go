package core

import (
	"math/rand"
	"testing"

	"repro/internal/la"
)

func TestElemwiseNonFactorizable(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	m := randPKFK(rng)
	x := randDense(rng, m.Rows(), m.Cols())
	md := m.Dense()
	if la.MaxAbsDiff(m.AddElem(x), md.Add(x)) > 0 {
		t.Fatal("AddElem mismatch")
	}
	if la.MaxAbsDiff(m.SubElem(x), md.Sub(x)) > 0 {
		t.Fatal("SubElem mismatch")
	}
	if la.MaxAbsDiff(m.MulElem(x), md.MulElem(x)) > 0 {
		t.Fatal("MulElem mismatch")
	}
	if la.MaxAbsDiff(m.DivElem(x), md.DivElem(x)) > 0 {
		t.Fatal("DivElem mismatch")
	}
}

func TestAddNormStaysFactorized(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := randStar(rng)
	// f(T) and g(T) share T's structure; their sum stays normalized.
	a := m.Scale(2).(*NormalizedMatrix)
	b := m.Scale(3).(*NormalizedMatrix)
	sum, err := a.AddNorm(b)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Dense().ScaleDense(5)
	if la.MaxAbsDiff(sum.Dense(), want) > tol {
		t.Fatal("AddNorm values mismatch")
	}
	// And the result is still a normalized matrix usable by rewrites.
	if la.MaxAbsDiff(sum.RowSums(), want.RowSums()) > 1e-8 {
		t.Fatal("AddNorm result lost factorized semantics")
	}
}

func TestAddNormRejectsDifferentStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := randPKFK(rng)
	b := randPKFK(rng)
	if a.SameStructure(b) {
		t.Skip("random matrices coincidentally structural twins")
	}
	if _, err := a.AddNorm(b); err == nil {
		t.Fatal("AddNorm accepted mismatched structure")
	}
}

func TestSameStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	m := randPKFK(rng)
	if !m.SameStructure(m.ScaleNorm(2)) {
		t.Fatal("scaled copy should share structure")
	}
	if m.SameStructure(m.Transpose()) {
		t.Fatal("transpose must not share structure")
	}
}
