package core

import (
	"math/rand"
	"testing"

	"repro/internal/chunk"
	"repro/internal/la"
)

// buildStreamed creates matching in-memory and out-of-core views of the
// same PK-FK normalized matrix.
func buildStreamed(t *testing.T, rng *rand.Rand, nS, dS, nR, dR, chunkRows int) (*NormalizedMatrix, *chunk.NormalizedTable, *chunk.Store) {
	t.Helper()
	s := la.NewDense(nS, dS)
	r := la.NewDense(nR, dR)
	for i := range s.Data() {
		s.Data()[i] = rng.NormFloat64()
	}
	for i := range r.Data() {
		r.Data()[i] = rng.NormFloat64()
	}
	fk := make([]int, nS)
	fk32 := make([]int32, nS)
	for i := range fk {
		fk[i] = rng.Intn(nR)
		fk32[i] = int32(fk[i])
	}
	k := la.NewIndicator(fk, nR)
	nm, err := NewPKFK(s, k, r)
	if err != nil {
		t.Fatal(err)
	}
	store, err := chunk.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sm, err := chunk.FromDense(store, s, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	fkv, err := chunk.BuildIntVector(store, fk32, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := chunk.NewNormalizedTable(sm, fkv, r)
	if err != nil {
		t.Fatal(err)
	}
	return nm, nt, store
}

var streamExecs = []chunk.Exec{chunk.Serial, {Workers: 4, Prefetch: 3}}

// TestStreamedCrossProdMatchesInMemory pins the streamed Algorithm 2 to
// the in-memory factorized CrossProd and the materialized TᵀT.
func TestStreamedCrossProdMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nm, nt, _ := buildStreamed(t, rng, 150, 4, 9, 5, 16)
	want := nm.CrossProd()
	mat := nm.Dense().CrossProd()
	for _, ex := range streamExecs {
		got, err := StreamedCrossProd(ex, nt)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got, want) > 1e-10 {
			t.Fatalf("workers=%d: streamed crossprod deviates from factorized by %g", ex.Workers, la.MaxAbsDiff(got, want))
		}
		if la.MaxAbsDiff(got, mat) > 1e-10 {
			t.Fatalf("workers=%d: streamed crossprod deviates from materialized by %g", ex.Workers, la.MaxAbsDiff(got, mat))
		}
	}
}

// TestStreamedMulMatchesInMemory pins the streamed LMM to the in-memory
// factorized Mul.
func TestStreamedMulMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nm, nt, _ := buildStreamed(t, rng, 130, 3, 8, 6, 16)
	x := la.NewDense(nm.Cols(), 2)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	want := nm.Mul(x)
	for _, ex := range streamExecs {
		got, err := StreamedMul(ex, nt, x)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := got.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(gotD, want) > 1e-12 {
			t.Fatalf("workers=%d: streamed Mul deviates by %g", ex.Workers, la.MaxAbsDiff(gotD, want))
		}
		if err := got.Free(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := StreamedMul(chunk.Serial, nt, la.NewDense(nm.Cols()+1, 2)); err == nil {
		t.Fatal("accepted shape mismatch")
	}
}

// TestStreamedTMulMatchesInMemory pins the streamed Tᵀ·x to the in-memory
// factorized path.
func TestStreamedTMulMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nm, nt, _ := buildStreamed(t, rng, 120, 4, 7, 3, 16)
	x := la.NewDense(nm.Rows(), 2)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	want := nm.Transpose().Mul(x)
	for _, ex := range streamExecs {
		got, err := StreamedTMul(ex, nt, x)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got, want) > 1e-10 {
			t.Fatalf("workers=%d: streamed TMul deviates by %g", ex.Workers, la.MaxAbsDiff(got, want))
		}
	}
	if _, err := StreamedTMul(chunk.Serial, nt, la.NewDense(nm.Rows()+1, 2)); err == nil {
		t.Fatal("accepted shape mismatch")
	}
}

// TestStreamedMulNormMatchesDMM pins the streamed DMM against the
// materialized product of both operands.
func TestStreamedMulNormMatchesDMM(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	nm, nt, store := buildStreamed(t, rng, 110, 3, 6, 4, 16)
	defer store.Close()
	// B: an in-memory normalized matrix with nm.Cols() rows.
	nB := nm.Cols()
	sB := la.NewDense(nB, 3)
	rB := la.NewDense(4, 2)
	for i := range sB.Data() {
		sB.Data()[i] = rng.NormFloat64()
	}
	for i := range rB.Data() {
		rB.Data()[i] = rng.NormFloat64()
	}
	fkB := make([]int, nB)
	for i := range fkB {
		fkB[i] = rng.Intn(4)
	}
	b, err := NewPKFK(sB, la.NewIndicator(fkB, 4), rB)
	if err != nil {
		t.Fatal(err)
	}
	want := la.MatMul(nm.Dense(), b.Dense())
	for _, ex := range streamExecs {
		got, err := StreamedMulNorm(ex, nt, b)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := got.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(gotD, want) > 1e-10 {
			t.Fatalf("workers=%d: streamed DMM deviates by %g", ex.Workers, la.MaxAbsDiff(gotD, want))
		}
		if err := got.Free(); err != nil {
			t.Fatal(err)
		}
	}
}
