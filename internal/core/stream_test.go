package core

import (
	"math/rand"
	"testing"

	"repro/internal/chunk"
	"repro/internal/la"
	"repro/internal/ml"
)

// buildStreamed creates matching in-memory and out-of-core views of the
// same PK-FK normalized matrix.
func buildStreamed(t *testing.T, rng *rand.Rand, nS, dS, nR, dR, chunkRows int) (*NormalizedMatrix, *chunk.NormalizedTable, *chunk.Store) {
	t.Helper()
	s := la.NewDense(nS, dS)
	r := la.NewDense(nR, dR)
	for i := range s.Data() {
		s.Data()[i] = rng.NormFloat64()
	}
	for i := range r.Data() {
		r.Data()[i] = rng.NormFloat64()
	}
	fk := make([]int, nS)
	fk32 := make([]int32, nS)
	for i := range fk {
		fk[i] = rng.Intn(nR)
		fk32[i] = int32(fk[i])
	}
	k := la.NewIndicator(fk, nR)
	nm, err := NewPKFK(s, k, r)
	if err != nil {
		t.Fatal(err)
	}
	store, err := chunk.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sm, err := chunk.FromDense(store, s, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	fkv, err := chunk.BuildIntVector(store, fk32, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := chunk.NewNormalizedTable(sm, fkv, r)
	if err != nil {
		t.Fatal(err)
	}
	return nm, nt, store
}

var streamExecs = []chunk.Exec{chunk.Serial, {Workers: 4, Prefetch: 3}}

// buildStreamedStar creates matching in-memory and out-of-core views of a
// two-attribute-table star schema, with a dense R1 and a sparse CSR R2.
func buildStreamedStar(t *testing.T, rng *rand.Rand, nS, dS, chunkRows int) (*NormalizedMatrix, *chunk.NormalizedTable, *chunk.Store) {
	t.Helper()
	nR1, dR1 := 8, 5
	nR2, dR2 := 6, 7
	s := la.NewDense(nS, dS)
	r1 := la.NewDense(nR1, dR1)
	for i := range s.Data() {
		s.Data()[i] = rng.NormFloat64()
	}
	for i := range r1.Data() {
		r1.Data()[i] = rng.NormFloat64()
	}
	b := la.NewCSRBuilder(nR2, dR2)
	for i := 0; i < nR2; i++ {
		b.Add(i, rng.Intn(dR2), 1)
		b.Add(i, rng.Intn(dR2), rng.NormFloat64())
	}
	r2 := b.Build()
	fk1 := make([]int, nS)
	fk2 := make([]int, nS)
	fk1_32 := make([]int32, nS)
	fk2_32 := make([]int32, nS)
	for i := range fk1 {
		fk1[i] = rng.Intn(nR1)
		fk2[i] = rng.Intn(nR2)
		fk1_32[i] = int32(fk1[i])
		fk2_32[i] = int32(fk2[i])
	}
	nm, err := NewStar(s, []*la.Indicator{la.NewIndicator(fk1, nR1), la.NewIndicator(fk2, nR2)}, []la.Mat{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := chunk.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sm, err := chunk.FromDense(store, s, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	fkv1, err := chunk.BuildIntVector(store, fk1_32, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	fkv2, err := chunk.BuildIntVector(store, fk2_32, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := chunk.NewStarTable(sm, []chunk.AttrTable{{FK: fkv1, R: r1}, {FK: fkv2, R: r2}})
	if err != nil {
		t.Fatal(err)
	}
	return nm, nt, store
}

// TestStreamedStarCrossProdMatchesInMemory pins the star-generalized
// streamed Algorithm 2 — including the cross-attribute-table blocks — to
// the in-memory factorized CrossProd and the materialized TᵀT.
func TestStreamedStarCrossProdMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	nm, nt, _ := buildStreamedStar(t, rng, 140, 4, 16)
	want := nm.CrossProd()
	mat := nm.Dense().CrossProd()
	for _, ex := range streamExecs {
		got, err := StreamedCrossProd(ex, nt)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got, want) > 1e-10 {
			t.Fatalf("workers=%d: streamed star crossprod deviates from factorized by %g", ex.Workers, la.MaxAbsDiff(got, want))
		}
		if la.MaxAbsDiff(got, mat) > 1e-10 {
			t.Fatalf("workers=%d: streamed star crossprod deviates from materialized by %g", ex.Workers, la.MaxAbsDiff(got, mat))
		}
	}
}

// TestStreamedStarMulTMulMatchesInMemory pins the star streamed LMM and
// transposed LMM to the in-memory factorized operators.
func TestStreamedStarMulTMulMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	nm, nt, _ := buildStreamedStar(t, rng, 120, 3, 16)
	x := la.NewDense(nm.Cols(), 2)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	wantMul := nm.Mul(x)
	xt := la.NewDense(nm.Rows(), 2)
	for i := range xt.Data() {
		xt.Data()[i] = rng.NormFloat64()
	}
	wantTMul := nm.Transpose().Mul(xt)
	for _, ex := range streamExecs {
		got, err := StreamedMul(ex, nt, x)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := got.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(gotD, wantMul) > 1e-12 {
			t.Fatalf("workers=%d: streamed star Mul deviates by %g", ex.Workers, la.MaxAbsDiff(gotD, wantMul))
		}
		if err := got.Free(); err != nil {
			t.Fatal(err)
		}
		gotT, err := StreamedTMul(ex, nt, xt)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(gotT, wantTMul) > 1e-10 {
			t.Fatalf("workers=%d: streamed star TMul deviates by %g", ex.Workers, la.MaxAbsDiff(gotT, wantTMul))
		}
	}
}

// TestStarChunkedGLMMatchesNormalizedMatrix is the star differential the
// roadmap asks for: the chunked factorized GLM over a 2-attribute-table
// star must match the in-memory factorized GLM over core.NormalizedMatrix
// to 1e-12.
func TestStarChunkedGLMMatchesNormalizedMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	nm, nt, store := buildStreamedStar(t, rng, 200, 4, 32)
	defer store.Close()
	y := la.NewDense(nm.Rows(), 1)
	for i := range y.Data() {
		y.Data()[i] = float64(1 - 2*rng.Intn(2))
	}
	const iters, alpha = 6, 1e-3
	wRef, err := ml.LogisticRegressionGD(nm, y, nil, ml.Options{Iters: iters, StepSize: alpha})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range streamExecs {
		res, err := chunk.LogRegFactorizedExec(ex, nt, y, iters, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if diff := la.MaxAbsDiff(res.W, wRef); diff > 1e-12 {
			t.Fatalf("workers=%d: star chunked GLM deviates from in-memory factorized by %g", ex.Workers, diff)
		}
	}
}

// TestStreamedCrossProdMatchesInMemory pins the streamed Algorithm 2 to
// the in-memory factorized CrossProd and the materialized TᵀT.
func TestStreamedCrossProdMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nm, nt, _ := buildStreamed(t, rng, 150, 4, 9, 5, 16)
	want := nm.CrossProd()
	mat := nm.Dense().CrossProd()
	for _, ex := range streamExecs {
		got, err := StreamedCrossProd(ex, nt)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got, want) > 1e-10 {
			t.Fatalf("workers=%d: streamed crossprod deviates from factorized by %g", ex.Workers, la.MaxAbsDiff(got, want))
		}
		if la.MaxAbsDiff(got, mat) > 1e-10 {
			t.Fatalf("workers=%d: streamed crossprod deviates from materialized by %g", ex.Workers, la.MaxAbsDiff(got, mat))
		}
	}
}

// TestStreamedMulMatchesInMemory pins the streamed LMM to the in-memory
// factorized Mul.
func TestStreamedMulMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nm, nt, _ := buildStreamed(t, rng, 130, 3, 8, 6, 16)
	x := la.NewDense(nm.Cols(), 2)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	want := nm.Mul(x)
	for _, ex := range streamExecs {
		got, err := StreamedMul(ex, nt, x)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := got.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(gotD, want) > 1e-12 {
			t.Fatalf("workers=%d: streamed Mul deviates by %g", ex.Workers, la.MaxAbsDiff(gotD, want))
		}
		if err := got.Free(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := StreamedMul(chunk.Serial, nt, la.NewDense(nm.Cols()+1, 2)); err == nil {
		t.Fatal("accepted shape mismatch")
	}
}

// TestStreamedTMulMatchesInMemory pins the streamed Tᵀ·x to the in-memory
// factorized path.
func TestStreamedTMulMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nm, nt, _ := buildStreamed(t, rng, 120, 4, 7, 3, 16)
	x := la.NewDense(nm.Rows(), 2)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	want := nm.Transpose().Mul(x)
	for _, ex := range streamExecs {
		got, err := StreamedTMul(ex, nt, x)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got, want) > 1e-10 {
			t.Fatalf("workers=%d: streamed TMul deviates by %g", ex.Workers, la.MaxAbsDiff(got, want))
		}
	}
	if _, err := StreamedTMul(chunk.Serial, nt, la.NewDense(nm.Rows()+1, 2)); err == nil {
		t.Fatal("accepted shape mismatch")
	}
}

// TestStreamedMulNormMatchesDMM pins the streamed DMM against the
// materialized product of both operands.
func TestStreamedMulNormMatchesDMM(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	nm, nt, store := buildStreamed(t, rng, 110, 3, 6, 4, 16)
	defer store.Close()
	// B: an in-memory normalized matrix with nm.Cols() rows.
	nB := nm.Cols()
	sB := la.NewDense(nB, 3)
	rB := la.NewDense(4, 2)
	for i := range sB.Data() {
		sB.Data()[i] = rng.NormFloat64()
	}
	for i := range rB.Data() {
		rB.Data()[i] = rng.NormFloat64()
	}
	fkB := make([]int, nB)
	for i := range fkB {
		fkB[i] = rng.Intn(4)
	}
	b, err := NewPKFK(sB, la.NewIndicator(fkB, 4), rB)
	if err != nil {
		t.Fatal(err)
	}
	want := la.MatMul(nm.Dense(), b.Dense())
	for _, ex := range streamExecs {
		got, err := StreamedMulNorm(ex, nt, b)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := got.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(gotD, want) > 1e-10 {
			t.Fatalf("workers=%d: streamed DMM deviates by %g", ex.Workers, la.MaxAbsDiff(gotD, want))
		}
		if err := got.Free(); err != nil {
			t.Fatal(err)
		}
	}
}
