package core

import (
	"math"

	"repro/internal/la"
)

// CrossProd computes Tᵀ·T with the paper's efficient method (Algorithm 2,
// generalized to star schemas in §3.5 and to M:N joins in Algorithm 10).
// On a transposed matrix it computes the Gram matrix T·Tᵀ via the appendix
// A rewrite. The result is a regular dense matrix.
func (m *NormalizedMatrix) CrossProd() *la.Dense {
	if m.trans {
		return m.gramRaw()
	}
	return m.crossProdBlocks(true)
}

// CrossProdNaive computes Tᵀ·T with the naive method (Algorithm 1 / 9):
// no symmetry exploitation in the diagonal blocks and the KᵀK product
// computed explicitly as a sparse matrix. Kept for the ablation benchmark.
func (m *NormalizedMatrix) CrossProdNaive() *la.Dense {
	if m.trans {
		return m.gramRaw()
	}
	return m.crossProdBlocks(false)
}

// part is one column block of T: sel·feat with sel possibly identity.
type part struct {
	sel  *la.Indicator // nil means identity
	feat la.Mat
	off  int // starting column in T
}

func (m *NormalizedMatrix) parts() []part {
	offs := m.colOffsets()
	ps := make([]part, 0, len(m.ks)+1)
	if m.s != nil {
		ps = append(ps, part{sel: m.is, feat: m.s, off: 0})
	}
	for i, k := range m.ks {
		ps = append(ps, part{sel: k, feat: m.rs[i], off: offs[i]})
	}
	return ps
}

// crossProdBlocks assembles the symmetric d×d output block by block.
// Diagonal blocks:
//
//	efficient: crossprod(diag(colSums(sel))^½ · feat)   (Algorithm 2)
//	naive:     featᵀ·((selᵀ·sel)·feat)                  (Algorithm 1)
//
// Off-diagonal block (i,j): featiᵀ·(seliᵀ·selj)·featj with the sparse
// count matrix seliᵀ·selj in the middle (§3.5).
func (m *NormalizedMatrix) crossProdBlocks(efficient bool) *la.Dense {
	ps := m.parts()
	out := la.NewDense(m.dCols, m.dCols)
	for i, pi := range ps {
		var diag *la.Dense
		switch {
		case pi.sel == nil && efficient:
			diag = pi.feat.CrossProd()
		case pi.sel == nil:
			diag = matTMulMat(pi.feat, pi.feat)
		case efficient:
			counts := pi.sel.ColCounts()
			sq := make([]float64, len(counts))
			for c, v := range counts {
				sq[c] = math.Sqrt(v)
			}
			diag = pi.feat.ScaleRows(sq).CrossProd()
		default:
			// Naive: featᵀ·((selᵀ·sel)·feat).
			kk := pi.sel.TMulIndicator(pi.sel)
			diag = pi.feat.TMul(kk.MulMat(pi.feat))
		}
		placeBlock(out, diag, pi.off, pi.off)
		for j := i + 1; j < len(ps); j++ {
			blk := crossBlock(ps[i], ps[j])
			placeBlock(out, blk, pi.off, ps[j].off)
			placeBlock(out, blk.TDense(), ps[j].off, pi.off)
		}
	}
	return out
}

// crossBlock computes (seli·feati)ᵀ·(selj·featj) without materializing
// either gathered part: featiᵀ·(seliᵀ·selj)·featj. When seli is the
// identity this degenerates to featiᵀ·(selj-gathered rows), i.e. the
// paper's (SᵀKj)·Rj order.
func crossBlock(a, b part) *la.Dense {
	switch {
	case a.sel == nil && b.sel == nil:
		return matTMulMat(a.feat, b.feat)
	case a.sel == nil:
		// featAᵀ·(selB·featB) in the cheap order (§3.3.5): first the
		// scatter-add selBᵀ·featA (nRb×dA), then its transpose times
		// featB — never gathering featB up to n rows.
		kta := indicatorTMulMat(b.sel, a.feat)
		return matTMulMat2(kta, b.feat)
	case b.sel == nil:
		kta := indicatorTMulMat(a.sel, b.feat)
		return matTMulMat3(a.feat, kta)
	default:
		p := a.sel.TMulIndicator(b.sel) // sparse count matrix nRa×nRb
		return a.feat.TMul(p.MulMat(b.feat))
	}
}

// indicatorTMulMat computes Kᵀ·M for a base-table matrix M (dense or
// sparse) with a scatter-add, preserving M's sparsity pattern handling.
func indicatorTMulMat(k *la.Indicator, m la.Mat) *la.Dense {
	switch t := m.(type) {
	case *la.Dense:
		return k.TMul(t)
	case *la.CSR:
		out := la.NewDense(k.Cols(), m.Cols())
		for i, c := range k.Assignments() {
			idx, vals := t.RowNNZ(i)
			row := out.Row(int(c))
			for p, j := range idx {
				row[j] += vals[p]
			}
		}
		return out
	default:
		return k.TMul(m.Dense())
	}
}

// matTMulMat computes Aᵀ·B for two base-table matrices.
func matTMulMat(a, b la.Mat) *la.Dense {
	switch t := b.(type) {
	case *la.Dense:
		return a.TMul(t)
	default:
		return a.TMul(b.Dense())
	}
}

// matTMulMat2 computes Aᵀ·B where A is already dense.
func matTMulMat2(a *la.Dense, b la.Mat) *la.Dense {
	switch t := b.(type) {
	case *la.Dense:
		return la.TMatMul(a, t)
	case *la.CSR:
		// Aᵀ·B = (Bᵀ·A)ᵀ using the CSR transposed kernel.
		return t.TMul(a).TDense()
	default:
		return la.TMatMul(a, b.Dense())
	}
}

// matTMulMat3 computes Aᵀ·B where B is already dense.
func matTMulMat3(a la.Mat, b *la.Dense) *la.Dense { return a.TMul(b) }

func placeBlock(out, blk *la.Dense, r0, c0 int) {
	for i := 0; i < blk.Rows(); i++ {
		copy(out.Row(r0 + i)[c0:c0+blk.Cols()], blk.Row(i))
	}
}

// gramRaw computes crossprod(Tᵀ) = T·Tᵀ via the appendix A/D rewrite:
//
//	crossprod(Tᵀ) → IS·crossprod(Sᵀ)·ISᵀ + Σ Ki·crossprod(Riᵀ)·Kiᵀ
//
// Each term is a two-sided gather of a small nRi×nRi Gram matrix.
func (m *NormalizedMatrix) gramRaw() *la.Dense {
	out := la.NewDense(m.nRows, m.nRows)
	for _, p := range m.parts() {
		g := p.feat.Gram()
		if p.sel == nil {
			out.AddInPlace(g)
			continue
		}
		assign := p.sel.Assignments()
		for a := 0; a < m.nRows; a++ {
			ga := g.Row(int(assign[a]))
			row := out.Row(a)
			for b, cb := range assign {
				row[b] += ga[cb]
			}
		}
	}
	return out
}

// Ginv computes the Moore-Penrose pseudo-inverse with the §3.3.6 rewrite:
//
//	ginv(T) → ginv(crossprod(T))·Tᵀ   if d < n
//	ginv(T) → Tᵀ·ginv(crossprod(Tᵀ))  otherwise
//
// Both branches are expressed with already-factorized operators, so the
// rewrite needs no new machinery; the transpose flag falls out of Mul.
func (m *NormalizedMatrix) Ginv() *la.Dense {
	if m.Rows() >= m.Cols() {
		g := la.SymGinv(m.CrossProd())
		// ginv = G·Tᵀ = (T·G)ᵀ since G is symmetric.
		return m.Mul(g).TDense()
	}
	tm := m.Transpose()
	g := la.SymGinv(tm.CrossProd())
	return tm.Mul(g)
}
