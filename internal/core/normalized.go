// Package core implements the paper's primary contribution: the normalized
// matrix — a logical multi-matrix data type for join outputs — together with
// the full framework of algebraic rewrite rules (paper §3) that execute
// every Table 1 linear-algebra operator over the base-table matrices instead
// of the materialized join output.
//
// One representation covers all three schemas in the paper:
//
//		T = [ I_S·S , K_1·R_1 , ... , K_q·R_q ]
//
//	  - single PK-FK join (§3.1):   I_S = identity (stored as nil), q = 1;
//	  - star schema (§3.5):         I_S = nil, q ≥ 1;
//	  - M:N join (§3.6, app. D/E):  I_S, K_i are general row selectors, and
//	    the entity side S may be absent entirely (multi-table M:N).
//
// All operators honor a transpose flag instead of a second class (appendix
// A), and the heuristic decision rule of §3.7 predicts when factorized
// execution pays off.
package core

import (
	"errors"
	"fmt"

	"repro/internal/la"
)

// NormalizedMatrix is the logical data type T ≡ (S, K1..Kq, R1..Rq) with an
// optional entity-side row selector I_S for M:N joins. It implements
// la.Matrix, so any LA script (and hence any ML algorithm written against
// la.Matrix) is automatically factorized when given a NormalizedMatrix.
type NormalizedMatrix struct {
	s     la.Mat          // entity feature matrix; nil when dS == 0
	is    *la.Indicator   // row selector for S; nil means identity (PK-FK)
	ks    []*la.Indicator // per attribute table row selectors
	rs    []la.Mat        // attribute feature matrices
	nRows int             // logical rows of T (before transpose)
	dCols int             // logical cols of T: dS + Σ dRi
	trans bool            // transpose flag (appendix A)
}

var (
	// ErrShape is returned when base-table shapes are inconsistent.
	ErrShape = errors.New("core: inconsistent normalized matrix shapes")
	// ErrEmpty is returned when a normalized matrix would have no columns.
	ErrEmpty = errors.New("core: normalized matrix needs an entity table or at least one attribute table")
)

// NewPKFK builds the normalized matrix for a single PK-FK join
// T = [S, K·R] (§3.1). s may be nil when the entity table contributes no
// features beyond the key (dS = 0, as in the Movies and Yelp datasets).
func NewPKFK(s la.Mat, k *la.Indicator, r la.Mat) (*NormalizedMatrix, error) {
	return NewStar(s, []*la.Indicator{k}, []la.Mat{r})
}

// NewStar builds the normalized matrix for a star-schema multi-table PK-FK
// join T = [S, K1·R1, ..., Kq·Rq] (§3.5).
func NewStar(s la.Mat, ks []*la.Indicator, rs []la.Mat) (*NormalizedMatrix, error) {
	return newNormalized(s, nil, ks, rs)
}

// NewMN builds the normalized matrix for a two-table M:N equi-join
// T = [IS·S, IR·R] (§3.6).
func NewMN(s la.Mat, is, ir *la.Indicator, r la.Mat) (*NormalizedMatrix, error) {
	return newNormalized(s, is, []*la.Indicator{ir}, []la.Mat{r})
}

// NewMultiMN builds the normalized matrix for a multi-table M:N join
// T = [IR1·R1, ..., IRq·Rq] with no distinguished entity table (appendix E).
func NewMultiMN(irs []*la.Indicator, rs []la.Mat) (*NormalizedMatrix, error) {
	return newNormalized(nil, nil, irs, rs)
}

// New builds a normalized matrix from its general form
// T = [IS·S, K1·R1, ..., Kq·Rq]: is nil means the entity side needs no
// row expansion (PK-FK/star, T = [S, K·R...]). It generalizes the shape
// variants above for callers — like epoch snapshots — that rebuild a
// matrix over an arbitrary pre-validated join structure with fresh base
// tables.
func New(s la.Mat, is *la.Indicator, ks []*la.Indicator, rs []la.Mat) (*NormalizedMatrix, error) {
	return newNormalized(s, is, ks, rs)
}

func newNormalized(s la.Mat, is *la.Indicator, ks []*la.Indicator, rs []la.Mat) (*NormalizedMatrix, error) {
	if len(ks) != len(rs) {
		return nil, fmt.Errorf("%w: %d indicators for %d attribute tables", ErrShape, len(ks), len(rs))
	}
	if s == nil && len(ks) == 0 {
		return nil, ErrEmpty
	}
	if s == nil && is != nil {
		return nil, fmt.Errorf("%w: entity-side indicator without an entity table", ErrShape)
	}
	nRows := -1
	setRows := func(n int, what string) error {
		if nRows == -1 {
			nRows = n
			return nil
		}
		if nRows != n {
			return fmt.Errorf("%w: %s has %d rows, want %d", ErrShape, what, n, nRows)
		}
		return nil
	}
	dCols := 0
	if s != nil {
		if is != nil {
			if is.Cols() != s.Rows() {
				return nil, fmt.Errorf("%w: IS cols %d != S rows %d", ErrShape, is.Cols(), s.Rows())
			}
			if err := setRows(is.Rows(), "IS"); err != nil {
				return nil, err
			}
		} else if err := setRows(s.Rows(), "S"); err != nil {
			return nil, err
		}
		dCols += s.Cols()
	}
	for i, k := range ks {
		if k.Cols() != rs[i].Rows() {
			return nil, fmt.Errorf("%w: K%d cols %d != R%d rows %d", ErrShape, i+1, k.Cols(), i+1, rs[i].Rows())
		}
		if err := setRows(k.Rows(), fmt.Sprintf("K%d", i+1)); err != nil {
			return nil, err
		}
		dCols += rs[i].Cols()
	}
	if dCols == 0 {
		return nil, ErrEmpty
	}
	return &NormalizedMatrix{s: s, is: is, ks: ks, rs: rs, nRows: nRows, dCols: dCols}, nil
}

// S returns the entity feature matrix (may be nil).
func (m *NormalizedMatrix) S() la.Mat { return m.s }

// IS returns the entity-side row selector (nil means identity / PK-FK).
func (m *NormalizedMatrix) IS() *la.Indicator { return m.is }

// Ks returns the attribute-table indicator matrices.
func (m *NormalizedMatrix) Ks() []*la.Indicator { return m.ks }

// Rs returns the attribute feature matrices.
func (m *NormalizedMatrix) Rs() []la.Mat { return m.rs }

// NumTables reports the number of attribute tables q.
func (m *NormalizedMatrix) NumTables() int { return len(m.ks) }

// IsTransposed reports whether the transpose flag is set.
func (m *NormalizedMatrix) IsTransposed() bool { return m.trans }

// Rows reports the logical row count (after any transpose).
func (m *NormalizedMatrix) Rows() int {
	if m.trans {
		return m.dCols
	}
	return m.nRows
}

// Cols reports the logical column count (after any transpose).
func (m *NormalizedMatrix) Cols() int {
	if m.trans {
		return m.nRows
	}
	return m.dCols
}

// dS returns the entity feature width.
func (m *NormalizedMatrix) dS() int {
	if m.s == nil {
		return 0
	}
	return m.s.Cols()
}

// colOffsets returns the starting column of each part in T: the entity part
// at offset 0, then each attribute part (the paper's d'_i boundaries).
func (m *NormalizedMatrix) colOffsets() []int {
	offs := make([]int, len(m.ks)+1)
	offs[0] = m.dS()
	for i, r := range m.rs {
		offs[i+1] = offs[i] + r.Cols()
	}
	return offs
}

// T returns the transpose by flipping the flag; no data moves (appendix A).
func (m *NormalizedMatrix) T() la.Matrix { return m.Transpose() }

// Transpose returns the transposed normalized matrix as a concrete type.
func (m *NormalizedMatrix) Transpose() *NormalizedMatrix {
	c := *m
	c.trans = !m.trans
	return &c
}

// withParts returns a copy with new feature matrices and identical
// indicators/flags; used by the element-wise rewrites.
func (m *NormalizedMatrix) withParts(s la.Mat, rs []la.Mat) *NormalizedMatrix {
	c := *m
	c.s = s
	c.rs = rs
	return &c
}

// Dense materializes T (or Tᵀ when the flag is set) as a dense matrix.
func (m *NormalizedMatrix) Dense() *la.Dense {
	parts := make([]*la.Dense, 0, len(m.ks)+1)
	if m.s != nil {
		sd := m.s.Dense()
		if m.is != nil {
			sd = m.is.Mul(sd)
		}
		parts = append(parts, sd)
	}
	for i, k := range m.ks {
		parts = append(parts, k.Mul(m.rs[i].Dense()))
	}
	out := la.HCat(parts...)
	if m.trans {
		return out.TDense()
	}
	return out
}

// Sparse materializes T in CSR form, preserving the sparsity of sparse base
// tables (used to give the materialized baseline a fair sparse format on
// the real-data workloads). The transpose flag is honored.
func (m *NormalizedMatrix) Sparse() *la.CSR {
	parts := make([]*la.CSR, 0, len(m.ks)+1)
	toCSR := func(x la.Mat) *la.CSR {
		if c, ok := x.(*la.CSR); ok {
			return c
		}
		return la.CSRFromDense(x.Dense())
	}
	if m.s != nil {
		sc := toCSR(m.s)
		if m.is != nil {
			sc = sc.GatherRows(m.is.Assignments())
		}
		parts = append(parts, sc)
	}
	for i, k := range m.ks {
		parts = append(parts, toCSR(m.rs[i]).GatherRows(k.Assignments()))
	}
	out := la.HCatCSR(parts...)
	if m.trans {
		return out.TCSR()
	}
	return out
}

// NNZ reports the non-zeros of the logical (materialized) matrix without
// materializing it.
func (m *NormalizedMatrix) NNZ() int {
	n := 0
	if m.s != nil {
		if m.is == nil {
			n += m.s.NNZ()
		} else {
			// Count per source row, weighted by how often it is selected.
			rowNNZ := perRowNNZ(m.s)
			for _, src := range m.is.Assignments() {
				n += rowNNZ[src]
			}
		}
	}
	for i, k := range m.ks {
		rowNNZ := perRowNNZ(m.rs[i])
		for _, src := range k.Assignments() {
			n += rowNNZ[src]
		}
	}
	return n
}

func perRowNNZ(x la.Mat) []int {
	out := make([]int, x.Rows())
	switch t := x.(type) {
	case *la.CSR:
		for i := range out {
			idx, _ := t.RowNNZ(i)
			out[i] = len(idx)
		}
	default:
		for i := range out {
			c := 0
			for j := 0; j < x.Cols(); j++ {
				if x.At(i, j) != 0 {
					c++
				}
			}
			out[i] = c
		}
	}
	return out
}

// At returns the logical element (i,j); intended for tests and small data,
// not hot loops.
func (m *NormalizedMatrix) At(i, j int) float64 {
	if m.trans {
		i, j = j, i
	}
	if i < 0 || i >= m.nRows || j < 0 || j >= m.dCols {
		panic(fmt.Sprintf("core: index (%d,%d) out of bounds %dx%d", i, j, m.nRows, m.dCols))
	}
	if j < m.dS() {
		si := i
		if m.is != nil {
			si = m.is.ColOf(i)
		}
		return m.s.At(si, j)
	}
	off := m.dS()
	for t, r := range m.rs {
		if j < off+r.Cols() {
			return r.At(m.ks[t].ColOf(i), j-off)
		}
		off += r.Cols()
	}
	panic("core: unreachable")
}

// Compact removes base-table tuples that never contribute to T (§3.1 and
// §3.7 preprocessing): attribute-table rows with no referencing foreign key
// and, for M:N joins, entity rows that match nothing. It returns a new
// normalized matrix; the receiver is unchanged.
func (m *NormalizedMatrix) Compact() *NormalizedMatrix {
	c := *m
	if m.is != nil && m.s != nil {
		if s, is, changed := compactTable(m.s, m.is); changed {
			c.s, c.is = s, is
		}
	}
	ks := make([]*la.Indicator, len(m.ks))
	rs := make([]la.Mat, len(m.rs))
	copy(ks, m.ks)
	copy(rs, m.rs)
	for i, k := range m.ks {
		if r, nk, changed := compactTable(m.rs[i], k); changed {
			rs[i], ks[i] = r, nk
		}
	}
	c.ks, c.rs = ks, rs
	return &c
}

// compactTable drops the rows of r that indicator k never references and
// remaps k's column space accordingly.
func compactTable(r la.Mat, k *la.Indicator) (la.Mat, *la.Indicator, bool) {
	counts := k.ColCounts()
	kept := make([]int32, 0, len(counts))
	perm := make([]int32, len(counts))
	for j, c := range counts {
		if c > 0 {
			perm[j] = int32(len(kept))
			kept = append(kept, int32(j))
		} else {
			perm[j] = -1
		}
	}
	if len(kept) == len(counts) {
		return r, k, false
	}
	sel := la.NewIndicatorInt32(kept, r.Rows())
	return sel.GatherMat(r), k.Permute(perm, len(kept)), true
}
