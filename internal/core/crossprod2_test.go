package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

func TestCrossProd2MatchesTransposedLMM(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	m := randStar(rng)
	x := randDense(rng, m.Rows(), 3)
	got := m.CrossProd2(x)
	want := la.TMatMul(m.Dense(), x)
	if la.MaxAbsDiff(got, want) > tol {
		t.Fatal("binary crossprod mismatch")
	}
	// Transposed operand: crossprod(Tᵀ, X) = T·X.
	tm := m.Transpose()
	x2 := randDense(rng, tm.Rows(), 2)
	got2 := tm.CrossProd2(x2)
	want2 := la.TMatMul(m.Dense().TDense(), x2)
	if la.MaxAbsDiff(got2, want2) > tol {
		t.Fatal("binary crossprod (transposed) mismatch")
	}
}

// TestInvertibilityBound verifies the appendix B theorem on constructed
// square normalized matrices: violating TR ≤ 1/FR + 1 forces singularity.
func TestInvertibilityBound(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	// nS = dS + dR makes T square. Choose dims violating the bound:
	// dS=2, dR=4 (FR=2), nR=1 -> TR = 6/1 = 6 > 1/2+1.
	nS := 6
	m, err := NewPKFK(randMat(rng, nS, 2), randIndicator(rng, nS, 1), randMat(rng, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != m.Cols() {
		t.Fatal("test setup: T not square")
	}
	if m.InvertibilityBound() {
		t.Fatal("bound should forbid invertibility")
	}
	// And indeed T is singular: rank(KR) ≤ nR = 1 < dR.
	td := m.Dense()
	vals, _ := la.SymEigen(td.CrossProd())
	zero := 0
	for _, v := range vals {
		if math.Abs(v) < 1e-9 {
			zero++
		}
	}
	if zero < 3 { // dR - nR = 3 null directions at least
		t.Fatalf("expected ≥3 zero singular values, found %d (vals=%v)", zero, vals)
	}

	// A square T satisfying the bound is allowed (not guaranteed) to be
	// invertible: dS=2, dR=2 (FR=1), nR=4, nS=4 -> TR=1 ≤ 2.
	m2, err := NewPKFK(randMat(rng, 4, 2), randIndicator(rng, 4, 4), randMat(rng, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !m2.InvertibilityBound() {
		t.Fatal("bound should allow invertibility at TR=1, FR=1")
	}
	// Non-square reports false outright.
	m3 := randPKFK(rng)
	if m3.Rows() != m3.Cols() && m3.InvertibilityBound() {
		t.Fatal("non-square cannot be invertible")
	}
}

func TestSpectralNormEst(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	m := randPKFK(rng)
	est := m.SpectralNormEst(30)
	// Reference: largest eigenvalue of TᵀT.
	vals, _ := la.SymEigen(m.Dense().CrossProd())
	want := 0.0
	for _, v := range vals {
		if v > want {
			want = v
		}
	}
	want = math.Sqrt(want)
	if math.Abs(est-want) > 0.05*want {
		t.Fatalf("spectral norm estimate %g, want ≈%g", est, want)
	}
}
