package core

import (
	"fmt"

	"repro/internal/la"
)

// The double-matrix-multiplication (DMM) rewrites of appendix C multiply two
// normalized matrices without materializing either. They are defined for
// two-table PK-FK normalized matrices (S, K, R) — the shape the appendix
// analyzes; multi-table inputs report an error so callers can fall back to
// materialized execution.

// ErrDMMShape is returned when a DMM rewrite does not apply to the inputs.
var ErrDMMShape = fmt.Errorf("core: DMM rewrites require untransposed two-table PK-FK normalized matrices")

func (m *NormalizedMatrix) dmmParts() (s la.Mat, k *la.Indicator, r la.Mat, ok bool) {
	if m.trans || m.is != nil || len(m.ks) != 1 || m.s == nil {
		return nil, nil, nil, false
	}
	return m.s, m.ks[0], m.rs[0], true
}

// MulNorm computes A·B for two normalized matrices (appendix C):
//
//	AB → [ SA·SB1 + KA·(RA·SB2) , (SA·KB1)·RB + KA·((RA·KB2)·RB) ]
//
// where SB1/SB2 (and KB1/KB2) split B's entity matrix and indicator at
// row dSA. The output is a regular matrix.
func (a *NormalizedMatrix) MulNorm(b *NormalizedMatrix) (*la.Dense, error) {
	sa, ka, ra, ok := a.dmmParts()
	if !ok {
		return nil, ErrDMMShape
	}
	sb, kb, rb, ok := b.dmmParts()
	if !ok {
		return nil, ErrDMMShape
	}
	if a.dCols != b.nRows {
		return nil, fmt.Errorf("core: DMM %dx%d · %dx%d", a.nRows, a.dCols, b.nRows, b.dCols)
	}
	dSA := sa.Cols()
	sb1 := sb.SliceRows(0, dSA).Dense()
	sb2 := sb.SliceRows(dSA, sb.Rows()).Dense()
	kb1 := kb.SliceRows(0, dSA)
	kb2 := kb.SliceRows(dSA, kb.Rows())

	// Left block: SA·SB1 + KA·(RA·SB2).
	left := sa.Mul(sb1)
	left.AddInPlace(ka.Mul(ra.Mul(sb2)))

	// Right block: (SA·KB1)·RB + KA·((RA·KB2)·RB).
	saDense := sa.Dense()
	raDense := ra.Dense()
	r1 := rb.LeftMul(kb1.LeftMul(saDense))
	r2 := ka.Mul(rb.LeftMul(kb2.LeftMul(raDense)))
	r1.AddInPlace(r2)
	return la.HCat(left, r1), nil
}

// MulNormTT computes Aᵀ·Bᵀ → (B·A)ᵀ (appendix C, transposed DMM).
func (a *NormalizedMatrix) MulNormTT(b *NormalizedMatrix) (*la.Dense, error) {
	ba, err := b.MulNorm(a)
	if err != nil {
		return nil, err
	}
	return ba.TDense(), nil
}

// MulNormNT computes A·Bᵀ (appendix C). Three cases on dSA vs dSB:
//
//	dSA == dSB: SA·SBᵀ + KA·(RA·RBᵀ)·KBᵀ
//	dSA <  dSB: SA·SB1ᵀ + KA·(RA1·SB2ᵀ) + KA·(RA2·RBᵀ)·KBᵀ
//	dSA >  dSB: (B·Aᵀ)ᵀ (recast as the previous case)
func (a *NormalizedMatrix) MulNormNT(b *NormalizedMatrix) (*la.Dense, error) {
	sa, ka, ra, ok := a.dmmParts()
	if !ok {
		return nil, ErrDMMShape
	}
	sb, kb, rb, ok := b.dmmParts()
	if !ok {
		return nil, ErrDMMShape
	}
	if a.dCols != b.dCols {
		return nil, fmt.Errorf("core: DMM NT %dx%d · (%dx%d)ᵀ", a.nRows, a.dCols, b.nRows, b.dCols)
	}
	dSA, dSB := sa.Cols(), sb.Cols()
	switch {
	case dSA == dSB:
		out := matMulT(sa, sb)
		inner := gatherBoth(ka, kb, matMulT(ra, rb))
		out.AddInPlace(inner)
		return out, nil
	case dSA < dSB:
		sb1 := sb.SliceCols(0, dSA)
		sb2 := sb.SliceCols(dSA, dSB)
		ra1 := ra.SliceCols(0, dSB-dSA)
		ra2 := ra.SliceCols(dSB-dSA, ra.Cols())
		out := matMulT(sa, sb1)
		out.AddInPlace(ka.Mul(matMulT(ra1, sb2)))
		out.AddInPlace(gatherBoth(ka, kb, matMulT(ra2, rb)))
		return out, nil
	default:
		ba, err := b.MulNormNT(a)
		if err != nil {
			return nil, err
		}
		return ba.TDense(), nil
	}
}

// MulNormTN computes Aᵀ·B (appendix C):
//
//	AᵀB → [ SAᵀSB        (SAᵀKB)·RB
//	        RAᵀ(KAᵀSB)   RAᵀ·(KAᵀKB)·RB ]
//
// The fourth tile computes the sparse count matrix P = KAᵀKB first; the
// appendix proves max(nRA,nRB) ≤ nnz(P) ≤ nSA, so P is never denser than
// the join itself.
func (a *NormalizedMatrix) MulNormTN(b *NormalizedMatrix) (*la.Dense, error) {
	sa, ka, ra, ok := a.dmmParts()
	if !ok {
		return nil, ErrDMMShape
	}
	sb, kb, rb, ok := b.dmmParts()
	if !ok {
		return nil, ErrDMMShape
	}
	if a.nRows != b.nRows {
		return nil, fmt.Errorf("core: DMM TN (%dx%d)ᵀ · %dx%d", a.nRows, a.dCols, b.nRows, b.dCols)
	}
	tile11 := matTMulMat(sa, sb)
	tile12 := matTMulMat2(indicatorTMulMat(kb, sa), rb)
	tile21 := ra.TMul(indicatorTMulMat(ka, sb))
	p := ka.TMulIndicator(kb)
	tile22 := ra.TMul(p.MulMat(rb))
	top := la.HCat(tile11, tile12)
	bottom := la.HCat(tile21, tile22)
	return la.VCat(top, bottom), nil
}

// matMulT computes A·Bᵀ for base-table matrices via dense fallback on the
// smaller operand pair.
func matMulT(a, b la.Mat) *la.Dense {
	return la.MatMulT(a.Dense(), b.Dense())
}

// gatherBoth computes KA·M·KBᵀ by indexing M with both assignment vectors:
// out[i,j] = M[KA[i], KB[j]].
func gatherBoth(ka, kb *la.Indicator, m *la.Dense) *la.Dense {
	aa, ab := ka.Assignments(), kb.Assignments()
	out := la.NewDense(len(aa), len(ab))
	for i, ca := range aa {
		src := m.Row(int(ca))
		dst := out.Row(i)
		for j, cb := range ab {
			dst[j] = src[cb]
		}
	}
	return out
}
