package core

import (
	"fmt"

	"repro/internal/la"
)

// --- Element-wise scalar operators (§3.3.1, §3.5, appendix A/D/E) ---
//
// T ∘ x → (S ∘ x, K1..Kq, R1 ∘ x, ..., Rq ∘ x); the indicators are shared
// and the transpose flag is preserved, so the result stays normalized and
// later operators keep exploiting the factorized form.

func (m *NormalizedMatrix) mapParts(f func(la.Mat) la.Mat) *NormalizedMatrix {
	var s la.Mat
	if m.s != nil {
		s = f(m.s)
	}
	rs := make([]la.Mat, len(m.rs))
	for i, r := range m.rs {
		rs[i] = f(r)
	}
	return m.withParts(s, rs)
}

// Scale implements T * x.
func (m *NormalizedMatrix) Scale(x float64) la.Matrix { return m.ScaleNorm(x) }

// ScaleNorm is Scale with a concrete return type.
func (m *NormalizedMatrix) ScaleNorm(x float64) *NormalizedMatrix {
	return m.mapParts(func(p la.Mat) la.Mat { return p.ScaleM(x) })
}

// AddScalar implements T + x.
func (m *NormalizedMatrix) AddScalar(x float64) la.Matrix {
	return m.mapParts(func(p la.Mat) la.Mat { return p.AddScalarM(x) })
}

// Pow implements T ^ p element-wise.
func (m *NormalizedMatrix) Pow(p float64) la.Matrix { return m.PowNorm(p) }

// PowNorm is Pow with a concrete return type.
func (m *NormalizedMatrix) PowNorm(p float64) *NormalizedMatrix {
	return m.mapParts(func(q la.Mat) la.Mat { return q.PowM(p) })
}

// Apply implements f(T) for a scalar function f.
func (m *NormalizedMatrix) Apply(f func(float64) float64) la.Matrix {
	return m.mapParts(func(p la.Mat) la.Mat { return p.ApplyM(f) })
}

// --- Aggregation operators (§3.3.2, §3.5, appendix A/D/E) ---

// rowSumsRaw computes rowSums over the untransposed T:
//
//	rowSums(T) → IS·rowSums(S) + Σ Ki·rowSums(Ri)
func (m *NormalizedMatrix) rowSumsRaw() *la.Dense {
	out := make([]float64, m.nRows)
	if m.s != nil {
		sv := m.s.RowSums().Data()
		if m.is == nil {
			copy(out, sv)
		} else {
			for i, c := range m.is.Assignments() {
				out[i] = sv[c]
			}
		}
	}
	for i, k := range m.ks {
		rv := m.rs[i].RowSums().Data()
		for r, c := range k.Assignments() {
			out[r] += rv[c]
		}
	}
	return la.ColVector(out)
}

// colSumsRaw computes colSums over the untransposed T:
//
//	colSums(T) → [colSums(IS)·S, colSums(K1)·R1, ..., colSums(Kq)·Rq]
func (m *NormalizedMatrix) colSumsRaw() *la.Dense {
	parts := make([]*la.Dense, 0, len(m.ks)+1)
	if m.s != nil {
		if m.is == nil {
			parts = append(parts, m.s.ColSums())
		} else {
			parts = append(parts, m.s.LeftMul(la.RowVector(m.is.ColCounts())))
		}
	}
	for i, k := range m.ks {
		parts = append(parts, m.rs[i].LeftMul(la.RowVector(k.ColCounts())))
	}
	return la.HCat(parts...)
}

// RowSums returns the n×1 row-sum vector; on a transposed matrix it is
// rewritten as colSums(T)ᵀ (appendix A).
func (m *NormalizedMatrix) RowSums() *la.Dense {
	if m.trans {
		return m.colSumsRaw().TDense()
	}
	return m.rowSumsRaw()
}

// ColSums returns the 1×d column-sum vector; on a transposed matrix it is
// rewritten as rowSums(T)ᵀ (appendix A).
func (m *NormalizedMatrix) ColSums() *la.Dense {
	if m.trans {
		return m.rowSumsRaw().TDense()
	}
	return m.colSumsRaw()
}

// Sum computes the grand total:
//
//	sum(T) → colSums(IS)·rowSums(S) + Σ colSums(Ki)·rowSums(Ri)
//
// sum(Tᵀ) = sum(T), so the transpose flag is irrelevant.
func (m *NormalizedMatrix) Sum() float64 {
	total := 0.0
	if m.s != nil {
		if m.is == nil {
			total += m.s.Sum()
		} else {
			total += weightedSum(m.is.ColCounts(), m.s.RowSums().Data())
		}
	}
	for i, k := range m.ks {
		total += weightedSum(k.ColCounts(), m.rs[i].RowSums().Data())
	}
	return total
}

func weightedSum(w, v []float64) float64 {
	s := 0.0
	for i, x := range w {
		s += x * v[i]
	}
	return s
}

// --- Multiplication operators (§3.3.3, §3.3.4, §3.5, appendix A/D/E) ---

// mulRaw computes the factorized LMM over the untransposed T:
//
//	TX → IS·(S·X[1:dS,]) + Σ Ki·(Ri·X[d'i-1+1 : d'i,])
//
// The multiplication order Ki·(Ri·Xi) — never (Ki·Ri)·Xi — is what avoids
// re-materializing the join (§3.3.3).
func (m *NormalizedMatrix) mulRaw(x *la.Dense) *la.Dense {
	if x.Rows() != m.dCols {
		panicShape("LMM", m.nRows, m.dCols, x)
	}
	offs := m.colOffsets()
	var out *la.Dense
	if m.s != nil {
		sx := m.s.Mul(x.SliceRowsDense(0, offs[0]))
		if m.is != nil {
			sx = m.is.Mul(sx)
		}
		out = sx
	} else {
		out = la.NewDense(m.nRows, x.Cols())
	}
	for i, k := range m.ks {
		ri := m.rs[i].Mul(x.SliceRowsDense(offs[i], offs[i+1]))
		addGather(out, k, ri)
	}
	return out
}

// addGather accumulates out += K·Z without materializing K·Z. Each output
// row is written exactly once per call, so rows parallelize safely.
func addGather(out *la.Dense, k *la.Indicator, z *la.Dense) {
	assign := k.Assignments()
	la.ParallelRows(len(assign), len(assign)*z.Cols(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst := out.Row(i)
			src := z.Row(int(assign[i]))
			for j, v := range src {
				dst[j] += v
			}
		}
	})
}

// tMulRaw computes the transposed LMM TᵀX over the untransposed parts:
//
//	TᵀX → [ Sᵀ·(ISᵀ·X) ; R1ᵀ·(K1ᵀ·X) ; ... ]  (stacked),
//
// which is the [PS, (PK)R]ᵀ pattern the factorized ML algorithms in §4 use.
func (m *NormalizedMatrix) tMulRaw(x *la.Dense) *la.Dense {
	if x.Rows() != m.nRows {
		panicShape("transposed LMM", m.dCols, m.nRows, x)
	}
	parts := make([]*la.Dense, 0, len(m.ks)+1)
	if m.s != nil {
		xs := x
		if m.is != nil {
			xs = m.is.TMul(x)
		}
		parts = append(parts, m.s.TMul(xs))
	}
	for i, k := range m.ks {
		parts = append(parts, m.rs[i].TMul(k.TMul(x)))
	}
	return la.VCat(parts...)
}

// leftMulRaw computes the factorized RMM over the untransposed T:
//
//	XT → [ (X·IS)·S , (X·K1)·R1 , ... , (X·Kq)·Rq ]
func (m *NormalizedMatrix) leftMulRaw(x *la.Dense) *la.Dense {
	if x.Cols() != m.nRows {
		panicShape("RMM", m.nRows, m.dCols, x)
	}
	parts := make([]*la.Dense, 0, len(m.ks)+1)
	if m.s != nil {
		xs := x
		if m.is != nil {
			xs = m.is.LeftMul(x)
		}
		parts = append(parts, m.s.LeftMul(xs))
	}
	for i, k := range m.ks {
		parts = append(parts, m.rs[i].LeftMul(k.LeftMul(x)))
	}
	return la.HCat(parts...)
}

// Mul computes T·X (LMM); on a transposed matrix it computes Tᵀ·X via the
// stacked transposed-LMM rewrite.
func (m *NormalizedMatrix) Mul(x *la.Dense) *la.Dense {
	if m.trans {
		return m.tMulRaw(x)
	}
	return m.mulRaw(x)
}

// LeftMul computes X·T (RMM); on a transposed matrix, X·Tᵀ → (T·Xᵀ)ᵀ
// (appendix A).
func (m *NormalizedMatrix) LeftMul(x *la.Dense) *la.Dense {
	if m.trans {
		return m.mulRaw(x.TDense()).TDense()
	}
	return m.leftMulRaw(x)
}

func panicShape(op string, rows, cols int, x *la.Dense) {
	panic(fmt.Sprintf("core: %s shape mismatch: %dx%d with %dx%d", op, rows, cols, x.Rows(), x.Cols()))
}
