package core

import (
	"fmt"
	"math"

	"repro/internal/chunk"
	"repro/internal/la"
)

// Streamed factorized operators over out-of-core base tables. They apply
// the same rewrite rules as NormalizedMatrix — crossprod via Algorithm 2
// (with the §3.5 star-schema generalization), LMM/RMM via §3.3.3, DMM via
// appendix C — but the entity table S (dense or CSR chunks, anything
// implementing chunk.Mat) and the foreign-key columns live in a chunk
// store, so per-iteration I/O is proportional to the base tables, never to
// the joined nS×(dS+ΣdRi) output. Every pass runs on the chunk package's
// parallel pipeline; reductions commit in chunk order, so results are
// deterministic for any Exec.

// StreamedCrossProd computes TᵀT for T = [S, K_1·R_1, ..., K_q·R_q] with
// the paper's efficient rewrite (Algorithm 2, star form) in a single pass
// over the chunked S and key columns. Per attribute table the pass
// scatter-adds K_tᵀS and the key counts; for every pair of attribute
// tables it scatter-adds the cross gather K_aᵀ(K_b·R_b), so the
// off-diagonal R_aᵀK_aᵀK_bR_b blocks never materialize an indicator
// product. The R-side blocks are assembled in memory afterwards.
func StreamedCrossProd(ex chunk.Exec, nt *chunk.NormalizedTable) (*la.Dense, error) {
	dS := nt.S.Cols()
	q := nt.NumTables()
	offs := nt.ColOffsets()
	d := nt.Cols()

	sts := la.NewDense(dS, dS)
	kts := make([]*la.Dense, q)    // K_tᵀS scatter-adds, nRt×dS
	counts := make([][]float64, q) // per-table key multiplicities
	for t, a := range nt.Attrs {
		kts[t] = la.NewDense(a.R.Rows(), dS)
		counts[t] = make([]float64, a.R.Rows())
	}
	// gab[a][b] (a<b) accumulates K_aᵀ(K_b·R_b): row ka_i gains R_b's row
	// kb_i for every joined tuple i.
	gab := make([][]*la.Dense, q)
	for a := 0; a < q; a++ {
		gab[a] = make([]*la.Dense, q)
		for b := a + 1; b < q; b++ {
			gab[a][b] = la.NewDense(nt.Attrs[a].R.Rows(), nt.Attrs[b].R.Cols())
		}
	}

	type part struct {
		cp   *la.Dense
		c    la.Mat
		keys [][]int32
	}
	err := nt.S.Stream(ex, func(ci, lo int, c la.Mat) (any, error) {
		keys, err := nt.ChunkKeys(ci)
		if err != nil {
			return nil, err
		}
		return part{cp: c.CrossProd(), c: c, keys: keys}, nil
	}, func(ci int, v any) error {
		p := v.(part)
		sts.AddInPlace(p.cp)
		for i := 0; i < p.c.Rows(); i++ {
			for t := range p.keys {
				rid := int(p.keys[t][i])
				counts[t][rid]++
				scatterRowInto(kts[t].Row(rid), p.c, i)
			}
			for a := 0; a < q; a++ {
				for b := a + 1; b < q; b++ {
					scatterRowInto(gab[a][b].Row(int(p.keys[a][i])), nt.Attrs[b].R, int(p.keys[b][i]))
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := la.NewDense(d, d)
	placeBlock(out, sts, 0, 0)
	for t, a := range nt.Attrs {
		// Off-diagonal S block SᵀK_t·R_t = (R_tᵀ·(K_tᵀS))ᵀ.
		skr := a.R.TMul(kts[t]).TDense()
		placeBlock(out, skr, 0, offs[t])
		placeBlock(out, skr.TDense(), offs[t], 0)
		// Diagonal block crossprod(diag(counts)^½ · R_t).
		sq := make([]float64, len(counts[t]))
		for i, v := range counts[t] {
			sq[i] = math.Sqrt(v)
		}
		placeBlock(out, a.R.ScaleRows(sq).CrossProd(), offs[t], offs[t])
		// Cross-attribute blocks R_aᵀ·(K_aᵀK_b·R_b).
		for b := t + 1; b < q; b++ {
			blk := a.R.TMul(gab[t][b])
			placeBlock(out, blk, offs[t], offs[b])
			placeBlock(out, blk.TDense(), offs[b], offs[t])
		}
	}
	return out, nil
}

// StreamedMul computes T·x (LMM, §3.3.3) for an in-memory x, producing a
// chunked result: per chunk it is S_chunk·xS plus gathers of the
// precomputed R_t·xRt partials, so only the base table and key columns are
// read.
func StreamedMul(ex chunk.Exec, nt *chunk.NormalizedTable, x *la.Dense) (*chunk.Matrix, error) {
	dS := nt.S.Cols()
	if x.Rows() != nt.Cols() {
		return nil, fmt.Errorf("core: streamed Mul %dx%d · %dx%d", nt.Rows(), nt.Cols(), x.Rows(), x.Cols())
	}
	offs := nt.ColOffsets()
	xS := x.SliceRowsDense(0, dS)
	rx := make([]*la.Dense, nt.NumTables()) // nRt×k partials
	for t, a := range nt.Attrs {
		rx[t] = a.R.Mul(x.SliceRowsDense(offs[t], offs[t+1]))
	}
	return nt.S.StreamToMatrix(ex, x.Cols(), func(ci, lo int, c la.Mat) (*la.Dense, error) {
		keys, err := nt.ChunkKeys(ci)
		if err != nil {
			return nil, err
		}
		out := c.Mul(xS)
		for t := range keys {
			for i, rid := range keys[t] {
				dst := out.Row(i)
				for j, v := range rx[t].Row(int(rid)) {
					dst[j] += v
				}
			}
		}
		return out, nil
	})
}

// StreamedTMul computes Tᵀ·x (RMM on the transpose) for an in-memory x:
// the S block streams Sᵀ·x chunk by chunk, each R block scatter-adds x
// rows per join key and multiplies by R_tᵀ once at the end.
func StreamedTMul(ex chunk.Exec, nt *chunk.NormalizedTable, x *la.Dense) (*la.Dense, error) {
	if x.Rows() != nt.Rows() {
		return nil, fmt.Errorf("core: streamed TMul %dx%dᵀ · %dx%d", nt.Rows(), nt.Cols(), x.Rows(), x.Cols())
	}
	dS, k := nt.S.Cols(), x.Cols()
	offs := nt.ColOffsets()
	top := la.NewDense(dS, k)
	ktx := make([]*la.Dense, nt.NumTables()) // K_tᵀx scatter-adds
	for t, a := range nt.Attrs {
		ktx[t] = la.NewDense(a.R.Rows(), k)
	}

	type part struct {
		stx  *la.Dense
		keys [][]int32
		lo   int
	}
	err := nt.S.Stream(ex, func(ci, lo int, c la.Mat) (any, error) {
		keys, err := nt.ChunkKeys(ci)
		if err != nil {
			return nil, err
		}
		return part{stx: c.TMul(x.SliceRowsDense(lo, lo+c.Rows())), keys: keys, lo: lo}, nil
	}, func(ci int, v any) error {
		p := v.(part)
		top.AddInPlace(p.stx)
		for t := range p.keys {
			for i, rid := range p.keys[t] {
				dst := ktx[t].Row(int(rid))
				for j, xv := range x.Row(p.lo + i) {
					dst[j] += xv
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := la.NewDense(nt.Cols(), k)
	placeBlock(out, top, 0, 0)
	for t, a := range nt.Attrs {
		placeBlock(out, a.R.TMul(ktx[t]), offs[t], 0) // R_tᵀ·(K_tᵀx)
	}
	return out, nil
}

// StreamedMulNorm computes the DMM T·B for an out-of-core T and an
// in-memory normalized B (appendix C applied at ORE scale): B's
// materialization is only (dS+ΣdRi)×dB — the small side of the product —
// so it is formed once in memory while T streams factorized, and the
// chunked result costs I/O proportional to S plus the key columns, never
// to the joined output of either operand.
func StreamedMulNorm(ex chunk.Exec, nt *chunk.NormalizedTable, b *NormalizedMatrix) (*chunk.Matrix, error) {
	if nt.Cols() != b.Rows() {
		return nil, fmt.Errorf("core: streamed DMM %dx%d · %dx%d", nt.Rows(), nt.Cols(), b.Rows(), b.Cols())
	}
	return StreamedMul(ex, nt, b.Dense())
}

// scatterRowInto adds row i of src into dst, honoring sparsity.
func scatterRowInto(dst []float64, src la.Mat, i int) {
	switch t := src.(type) {
	case *la.Dense:
		for j, v := range t.Row(i) {
			dst[j] += v
		}
	case *la.CSR:
		idx, vals := t.RowNNZ(i)
		for k, j := range idx {
			dst[j] += vals[k]
		}
	default:
		for j := 0; j < src.Cols(); j++ {
			dst[j] += src.At(i, j)
		}
	}
}
