package core

import (
	"fmt"
	"math"

	"repro/internal/chunk"
	"repro/internal/la"
)

// Streamed factorized operators over out-of-core base tables. They apply
// the same rewrite rules as NormalizedMatrix — crossprod via Algorithm 2,
// LMM/RMM via §3.3.3, DMM via appendix C — but the entity table S and its
// foreign-key column live in a chunk store, so per-iteration I/O is
// proportional to the base tables, never to the joined nS×(dS+dR) output.
// Every pass runs on the chunk package's parallel pipeline; reductions
// commit in chunk order, so results are deterministic for any Exec.

// StreamedCrossProd computes TᵀT for T = [S, K·R] with the paper's
// efficient rewrite (Algorithm 2) in a single pass over the chunked S and
// FK column:
//
//	[ SᵀS      SᵀK·R                ]
//	[ (SᵀK·R)ᵀ Rᵀ·diag(counts)·R   ]
//
// SᵀS and the scatter-add KᵀS accumulate chunk by chunk; the R-side blocks
// are assembled in memory afterwards.
func StreamedCrossProd(ex chunk.Exec, nt *chunk.NormalizedTable) (*la.Dense, error) {
	dS, dR := nt.S.Cols(), nt.R.Cols()
	nR := nt.R.Rows()
	sts := la.NewDense(dS, dS)
	kts := la.NewDense(nR, dS) // KᵀS scatter-add
	counts := make([]float64, nR)

	type part struct {
		cp   *la.Dense
		c    *la.Dense
		keys []int32
	}
	err := nt.S.MapChunks(ex, func(ci, lo int, c *la.Dense) (any, error) {
		_, keys, err := nt.FK.Keys(ci)
		if err != nil {
			return nil, err
		}
		return part{cp: c.CrossProd(), c: c, keys: keys}, nil
	}, func(ci int, v any) error {
		p := v.(part)
		sts.AddInPlace(p.cp)
		for i, rid := range p.keys {
			counts[rid]++
			dst := kts.Row(int(rid))
			for j, s := range p.c.Row(i) {
				dst[j] += s
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Off-diagonal block SᵀK·R = (KᵀS)ᵀ·R and the R diagonal block
	// crossprod(diag(counts)^½ · R) — both in memory.
	skr := la.TMatMul(kts, nt.R)
	sq := make([]float64, nR)
	for i, v := range counts {
		sq[i] = math.Sqrt(v)
	}
	rtr := nt.R.ScaleRowsDense(sq).CrossProd()

	out := la.NewDense(dS+dR, dS+dR)
	placeBlock(out, sts, 0, 0)
	placeBlock(out, skr, 0, dS)
	placeBlock(out, skr.TDense(), dS, 0)
	placeBlock(out, rtr, dS, dS)
	return out, nil
}

// StreamedMul computes T·x (LMM, §3.3.3) for an in-memory x, producing a
// chunked result: per chunk it is S_chunk·xS plus a gather of the
// precomputed R·xR partials, so only the base table and key column are
// read.
func StreamedMul(ex chunk.Exec, nt *chunk.NormalizedTable, x *la.Dense) (*chunk.Matrix, error) {
	dS := nt.S.Cols()
	if x.Rows() != nt.Cols() {
		return nil, fmt.Errorf("core: streamed Mul %dx%d · %dx%d", nt.Rows(), nt.Cols(), x.Rows(), x.Cols())
	}
	xS := x.SliceRowsDense(0, dS)
	rx := la.MatMul(nt.R, x.SliceRowsDense(dS, x.Rows())) // nR×k partials
	return nt.S.MapChunksToMatrix(ex, x.Cols(), func(ci, lo int, c *la.Dense) (*la.Dense, error) {
		_, keys, err := nt.FK.Keys(ci)
		if err != nil {
			return nil, err
		}
		out := la.MatMul(c, xS)
		for i, rid := range keys {
			dst := out.Row(i)
			for j, v := range rx.Row(int(rid)) {
				dst[j] += v
			}
		}
		return out, nil
	})
}

// StreamedTMul computes Tᵀ·x (RMM on the transpose) for an in-memory x:
// the S block streams Sᵀ·x chunk by chunk, the R block scatter-adds x rows
// per join key and multiplies by Rᵀ once at the end.
func StreamedTMul(ex chunk.Exec, nt *chunk.NormalizedTable, x *la.Dense) (*la.Dense, error) {
	if x.Rows() != nt.Rows() {
		return nil, fmt.Errorf("core: streamed TMul %dx%dᵀ · %dx%d", nt.Rows(), nt.Cols(), x.Rows(), x.Cols())
	}
	dS, dR := nt.S.Cols(), nt.R.Cols()
	nR, k := nt.R.Rows(), x.Cols()
	top := la.NewDense(dS, k)
	ktx := la.NewDense(nR, k) // Kᵀx scatter-add

	type part struct {
		stx  *la.Dense
		keys []int32
		lo   int
	}
	err := nt.S.MapChunks(ex, func(ci, lo int, c *la.Dense) (any, error) {
		_, keys, err := nt.FK.Keys(ci)
		if err != nil {
			return nil, err
		}
		return part{stx: la.TMatMul(c, x.SliceRowsDense(lo, lo+c.Rows())), keys: keys, lo: lo}, nil
	}, func(ci int, v any) error {
		p := v.(part)
		top.AddInPlace(p.stx)
		for i, rid := range p.keys {
			dst := ktx.Row(int(rid))
			for j, xv := range x.Row(p.lo + i) {
				dst[j] += xv
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bottom := la.TMatMul(nt.R, ktx) // Rᵀ·(Kᵀx), dR×k
	out := la.NewDense(dS+dR, k)
	placeBlock(out, top, 0, 0)
	placeBlock(out, bottom, dS, 0)
	return out, nil
}

// StreamedMulNorm computes the DMM T·B for an out-of-core T and an
// in-memory normalized B (appendix C applied at ORE scale): B's
// materialization is only (dS+dR)×dB — the small side of the product — so
// it is formed once in memory while T streams factorized, and the chunked
// result costs I/O proportional to S plus the key column, never to the
// joined output of either operand.
func StreamedMulNorm(ex chunk.Exec, nt *chunk.NormalizedTable, b *NormalizedMatrix) (*chunk.Matrix, error) {
	if nt.Cols() != b.Rows() {
		return nil, fmt.Errorf("core: streamed DMM %dx%d · %dx%d", nt.Rows(), nt.Cols(), b.Rows(), b.Cols())
	}
	return StreamedMul(ex, nt, b.Dense())
}
