package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/la"
)

// TestQuickAllOperatorsAllSchemas is the repository's central property
// test: for arbitrary seeds, build a random normalized matrix of a random
// schema kind and orientation, pick a random operator of Table 1, and
// assert the factorized result equals the materialized one.
func TestQuickAllOperatorsAllSchemas(t *testing.T) {
	kinds := allKinds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := kinds[rng.Intn(len(kinds))](rng)
		md := m.Dense()
		switch rng.Intn(10) {
		case 0:
			x := 0.5 + rng.Float64()
			return la.MaxAbsDiff(m.Scale(x).Dense(), md.ScaleDense(x)) <= tol
		case 1:
			x := rng.NormFloat64()
			return la.MaxAbsDiff(m.AddScalar(x).Dense(), md.AddScalarDense(x)) <= tol
		case 2:
			return la.MaxAbsDiff(m.Apply(math.Tanh).Dense(), md.ApplyDense(math.Tanh)) <= tol
		case 3:
			return la.MaxAbsDiff(m.RowSums(), md.RowSums()) <= 1e-8
		case 4:
			return la.MaxAbsDiff(m.ColSums(), md.ColSums()) <= 1e-8
		case 5:
			return math.Abs(m.Sum()-md.Sum()) <= 1e-7
		case 6:
			x := randDense(rng, m.Cols(), 1+rng.Intn(3))
			return la.MaxAbsDiff(m.Mul(x), la.MatMul(md, x)) <= 1e-8
		case 7:
			x := randDense(rng, 1+rng.Intn(3), m.Rows())
			return la.MaxAbsDiff(m.LeftMul(x), la.MatMul(x, md)) <= 1e-8
		case 8:
			return la.MaxAbsDiff(m.CrossProd(), md.CrossProd()) <= 1e-7
		default:
			return la.MaxAbsDiff(m.CrossProdNaive(), md.CrossProd()) <= 1e-7
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOperatorComposition checks that chains of normalized-preserving
// operators accumulate no divergence from the materialized chain.
func TestQuickOperatorComposition(t *testing.T) {
	kinds := allKinds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := kinds[rng.Intn(len(kinds))](rng)
		md := la.Matrix(m.Dense())
		cur := la.Matrix(m)
		for step := 0; step < 4; step++ {
			switch rng.Intn(4) {
			case 0:
				x := 0.5 + rng.Float64()
				cur, md = cur.Scale(x), md.Scale(x)
			case 1:
				cur, md = cur.Apply(math.Tanh), md.Apply(math.Tanh)
			case 2:
				cur, md = cur.Pow(2), md.Pow(2)
			default:
				cur, md = cur.T(), md.T()
			}
		}
		if cur.Rows() != md.Rows() || cur.Cols() != md.Cols() {
			return false
		}
		return la.MaxAbsDiff(cur.Dense(), md.Dense()) <= 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGinvMoorePenrose checks the Moore-Penrose conditions for the
// factorized pseudo-inverse on random normalized matrices.
func TestQuickGinvMoorePenrose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randPKFK(rng)
		a := m.Dense()
		g := m.Ginv()
		aga := la.MatMul(la.MatMul(a, g), a)
		gag := la.MatMul(la.MatMul(g, a), g)
		scale := 1 + symMax(a)
		return la.MaxAbsDiff(aga, a) < 1e-5*scale && la.MaxAbsDiff(gag, g) < 1e-5*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func symMax(a *la.Dense) float64 {
	m := 0.0
	for _, v := range a.Data() {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}
