package core

import (
	"math"
	"testing"
)

// TestStatsDegenerateDS pins the dS == 0 edge: with no entity features the
// dR/dS feature ratio would be +Inf; StatsFromDims reports the numerator
// dR instead, so the value stays finite and the Advisor's comparison is
// well defined (NaN/Inf never reach the threshold test).
func TestStatsDegenerateDS(t *testing.T) {
	st := StatsFromDims(1000, 30, TableDim{Rows: 1000, Cols: 0}, []TableDim{{Rows: 50, Cols: 30}})
	if st.DS != 0 {
		t.Fatalf("DS = %d, want 0", st.DS)
	}
	if st.FeatureRatio != 30 {
		t.Fatalf("FeatureRatio = %g, want the numerator dR = 30", st.FeatureRatio)
	}
	if math.IsInf(st.FeatureRatio, 0) || math.IsNaN(st.FeatureRatio) {
		t.Fatalf("FeatureRatio leaked a non-finite value: %g", st.FeatureRatio)
	}
	// TR = 1000/50 = 20 ≥ τ and FR = 30 ≥ ρ: all output columns come from
	// the attribute table, so factorization avoids every redundant cell.
	if !DefaultAdvisor().ShouldFactorize(st) {
		t.Fatal("dS == 0 with high tuple ratio should still factorize")
	}
}

// TestStatsDegenerateNR pins the nR == 0 edge: with no attribute rows the
// nS/nR tuple ratio would be +Inf; it stays 0 instead, which keeps the
// Advisor on the conservative materialized side.
func TestStatsDegenerateNR(t *testing.T) {
	st := StatsFromDims(1000, 80, TableDim{Rows: 1000, Cols: 20}, []TableDim{{Rows: 0, Cols: 60}})
	if st.TupleRatio != 0 {
		t.Fatalf("TupleRatio = %g, want 0 (conservative fallback)", st.TupleRatio)
	}
	if DefaultAdvisor().ShouldFactorize(st) {
		t.Fatal("nR == 0 must fall back to materialized execution")
	}
	// No attribute tables at all behaves the same way.
	st = StatsFromDims(1000, 20, TableDim{Rows: 1000, Cols: 20}, nil)
	if st.TupleRatio != 0 || DefaultAdvisor().ShouldFactorize(st) {
		t.Fatalf("q == 0 must fall back to materialized execution (TR = %g)", st.TupleRatio)
	}
}

// TestAdvisorNaNConservative pins that a NaN ratio — should one ever be
// injected from outside StatsFromDims — fails the threshold comparison,
// i.e. the Advisor materializes rather than factorizing on garbage.
func TestAdvisorNaNConservative(t *testing.T) {
	nan := math.NaN()
	for _, st := range []Stats{
		{TupleRatio: nan, FeatureRatio: 4},
		{TupleRatio: 20, FeatureRatio: nan},
		{TupleRatio: nan, FeatureRatio: nan},
	} {
		if DefaultAdvisor().ShouldFactorize(st) {
			t.Fatalf("Advisor factorized on NaN stats %+v", st)
		}
	}
}

// FuzzStatsFromDims fuzzes the dimension-only stats derivation: whatever
// the (possibly negative or enormous) input shapes, no ratio may come out
// NaN or ±Inf and none may go negative — the invariants the planner's
// rules rely on to stay total.
func FuzzStatsFromDims(f *testing.F) {
	f.Add(20000, 120, 20000, 60, 1000, 60, 500, 30)
	f.Add(0, 0, 0, 0, 0, 0, 0, 0)
	f.Add(1<<57, 128, 1<<57, 8, 1<<50, 120, 0, 0)
	f.Add(-5, -7, -1, -2, -3, -4, 5, 6)
	f.Add(1, 0, 1, 0, 7, 0, 0, 9)
	f.Fuzz(func(t *testing.T, nRows, dCols, sr, sc, r1r, r1c, r2r, r2c int) {
		st := StatsFromDims(nRows, dCols, TableDim{Rows: sr, Cols: sc},
			[]TableDim{{Rows: r1r, Cols: r1c}, {Rows: r2r, Cols: r2c}})
		for name, v := range map[string]float64{
			"TupleRatio":   st.TupleRatio,
			"FeatureRatio": st.FeatureRatio,
			"Redundancy":   st.Redundancy,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s is non-finite (%g) for inputs nRows=%d dCols=%d s=%dx%d r1=%dx%d r2=%dx%d",
					name, v, nRows, dCols, sr, sc, r1r, r1c, r2r, r2c)
			}
			if v < 0 {
				t.Fatalf("%s went negative (%g)", name, v)
			}
		}
		// A non-finite or negative ratio must never flip the Advisor; on any
		// fuzzed input the predicate must simply return a bool without
		// tripping the checks above.
		_ = DefaultAdvisor().ShouldFactorize(st)
	})
}
