package core

import (
	"math"

	"repro/internal/la"
)

// CrossProd2 computes the binary cross-product crossprod(T, X) = Tᵀ·X for
// a regular matrix X (the paper's footnote 5: if only one operand is
// normalized the binary crossprod reduces to a transposed LMM / RMM; if
// both are normalized it is the transposed DMM, MulNormTN).
func (m *NormalizedMatrix) CrossProd2(x *la.Dense) *la.Dense {
	if m.trans {
		// crossprod(Tᵀ, X) = T·X: plain LMM.
		return m.Transpose().Mul(x)
	}
	return m.tMulRaw(x)
}

// InvertibilityBound checks the appendix B theorem: if the materialized
// matrix T of a two-table PK-FK join is invertible (square and
// non-singular), then TR ≤ 1/FR + 1. Equivalently, a normalized matrix
// whose dimensions violate the bound is guaranteed singular, so callers
// can skip `solve` and go straight to the pseudo-inverse. It reports
// whether the bound ALLOWS invertibility (false ⇒ certainly singular).
func (m *NormalizedMatrix) InvertibilityBound() bool {
	if m.Rows() != m.Cols() {
		return false // not square ⇒ not invertible at all
	}
	st := m.ComputeStats()
	if st.FeatureRatio == 0 {
		return true
	}
	return st.TupleRatio <= 1/st.FeatureRatio+1+1e-12
}

// SpectralNormEst estimates ‖T‖₂ with a few factorized power iterations —
// useful for choosing gradient-descent step sizes (α < ‖T‖₂⁻² keeps the
// least-squares iteration stable) without materializing T.
func (m *NormalizedMatrix) SpectralNormEst(iters int) float64 {
	if iters <= 0 {
		iters = 8
	}
	v := la.Ones(m.Cols(), 1)
	tm := m.Transpose()
	norm := 0.0
	for i := 0; i < iters; i++ {
		w := tm.Mul(m.Mul(v)) // TᵀT·v, both factorized
		norm = math.Sqrt(frob(w))
		if norm == 0 {
			return 0
		}
		v = w.ScaleDense(1 / norm)
	}
	return math.Sqrt(norm)
}

func frob(x *la.Dense) float64 {
	s := 0.0
	for _, v := range x.Data() {
		s += v * v
	}
	return s
}
