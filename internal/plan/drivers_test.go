package plan

import (
	"math/rand"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/la"
)

func testStore(t *testing.T) *chunk.Store {
	t.Helper()
	st, err := chunk.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func randDense(rng *rand.Rand, rows, cols int) *la.Dense {
	d := la.NewDense(rows, cols)
	for i := range d.Data() {
		d.Data()[i] = rng.NormFloat64()
	}
	return d
}

func pmLabels(rng *rand.Rand, n int) *la.Dense {
	y := la.NewDense(n, 1)
	for i := range y.Data() {
		y.Data()[i] = float64(1 - 2*rng.Intn(2))
	}
	return y
}

// buildStar assembles a chunked PK-FK star (nS×dS entity table joining an
// nR×dR attribute table) plus its materialized join output, both in the
// same store.
func buildStar(t *testing.T, rng *rand.Rand, st *chunk.Store, nS, nR, dS, dR, chunkRows int) (*chunk.NormalizedTable, *chunk.Matrix) {
	t.Helper()
	s := randDense(rng, nS, dS)
	r := randDense(rng, nR, dR)
	fk := make([]int32, nS)
	for i := range fk {
		fk[i] = int32(rng.Intn(nR))
	}
	td := la.NewDense(nS, dS+dR)
	for i := 0; i < nS; i++ {
		copy(td.Row(i)[:dS], s.Row(i))
		copy(td.Row(i)[dS:], r.Row(int(fk[i])))
	}
	sm, err := chunk.FromDense(st, s, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	fkv, err := chunk.BuildIntVector(st, fk, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := chunk.NewStarTable(sm, []chunk.AttrTable{{FK: fkv, R: r}})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := chunk.FromDense(st, td, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	return nt, tm
}

// TestPlannedLogRegStar pins the planner-driven GLM bit-identical to the
// explicit twin it selects, on both sides of the Table 9 crossover.
func TestPlannedLogRegStar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st := testStore(t)
	const iters, alpha = 4, 1e-3

	// TR = 120/8 = 15 ≥ τ, FR = 6/4 = 1.5 ≥ ρ: the planner must factorize.
	nt, tm := buildStar(t, rng, st, 120, 8, 4, 6, 16)
	y := pmLabels(rng, 120)
	env := EnvFor(st, 0, 0)
	res, d, err := LogReg(env, tm, nt, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Strategy.Factorized {
		t.Fatalf("high-TR star not factorized (%s)", d.Rule)
	}
	twin, err := chunk.LogRegFactorizedExec(chunk.Parallel(), nt, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(res.W, twin.W) != 0 {
		t.Fatal("planned factorized GLM not bit-identical to explicit twin")
	}

	// TR = 120/100 = 1.2 < τ: the planner must materialize.
	ntM, tmM := buildStar(t, rng, st, 120, 100, 4, 6, 16)
	resM, dM, err := LogReg(env, tmM, ntM, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if dM.Strategy.Factorized {
		t.Fatalf("low-TR star factorized (%s)", dM.Rule)
	}
	twinM, err := chunk.LogRegMaterializedExec(chunk.Parallel(), tmM, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(resM.W, twinM.W) != 0 {
		t.Fatal("planned materialized GLM not bit-identical to explicit twin")
	}
}

// buildMN assembles a chunked M:N table with nOut output tuples over base
// tables nS×dS and nR×dR, plus the materialized join output.
func buildMN(t *testing.T, rng *rand.Rand, st *chunk.Store, nOut, nS, nR, dS, dR, chunkRows int) (*chunk.MNTable, *chunk.Matrix) {
	t.Helper()
	sm, err := chunk.FromDense(st, randDense(rng, nS, dS), chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := chunk.FromDense(st, randDense(rng, nR, dR), chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	is := make([]int32, nOut)
	ir := make([]int32, nOut)
	for i := range is {
		is[i] = int32(rng.Intn(nS))
		ir[i] = int32(rng.Intn(nR))
	}
	isV, err := chunk.BuildIntVector(st, is, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	irV, err := chunk.BuildIntVector(st, ir, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := chunk.NewMNTable(sm, rm, isV, irV)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := chunk.MaterializeMN(st, mn)
	if err != nil {
		t.Fatal(err)
	}
	return mn, tm
}

// TestPlannedLogRegMN pins the planner-driven M:N GLM bit-identical to
// the explicit twin on both sides of the redundancy crossover.
func TestPlannedLogRegMN(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	st := testStore(t)
	const iters, alpha = 3, 1e-4
	env := EnvFor(st, 0, 0)

	// Redundancy = 240·8/(40·4+40·4) = 6 > 1: factorize.
	mn, tm := buildMN(t, rng, st, 240, 40, 40, 4, 4, 32)
	y := pmLabels(rng, 240)
	res, d, err := LogRegMN(env, tm, mn, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Strategy.Factorized {
		t.Fatalf("redundancy 6 not factorized (%s)", d.Rule)
	}
	twin, err := chunk.LogRegFactorizedMNExec(chunk.Parallel(), mn, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(res.W, twin.W) != 0 {
		t.Fatal("planned MN factorized GLM not bit-identical to explicit twin")
	}

	// Redundancy = 30·8/(40·4+40·4) = 0.75 ≤ 1: materialize.
	mnM, tmM := buildMN(t, rng, st, 30, 40, 40, 4, 4, 32)
	yM := pmLabels(rng, 30)
	resM, dM, err := LogRegMN(env, tmM, mnM, yM, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if dM.Strategy.Factorized {
		t.Fatalf("redundancy 0.75 factorized (%s)", dM.Rule)
	}
	twinM, err := chunk.LogRegMaterializedExec(chunk.Parallel(), tmM, yM, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(resM.W, twinM.W) != 0 {
		t.Fatal("planned MN materialized GLM not bit-identical to explicit twin")
	}
}

// TestPlannedKMeansGNMF pins the planner-driven k-means and GNMF
// bit-identical to the explicit drivers they dispatch to.
func TestPlannedKMeansGNMF(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	st := testStore(t)
	m, err := chunk.FromDense(st, randDense(rng, 96, 5), 16)
	if err != nil {
		t.Fatal(err)
	}
	env := EnvFor(st, 0, 0)

	km, d, err := KMeans(env, m, 3, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy.Factorized {
		t.Fatalf("k-means planned factorized (%s)", d.Rule)
	}
	kmTwin, err := chunk.KMeansExec(chunk.Parallel(), m, 3, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(km.Centroids, kmTwin.Centroids) != 0 || km.Objective != kmTwin.Objective {
		t.Fatal("planned k-means not bit-identical to explicit twin")
	}

	g, _, err := GNMF(env, m, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	gTwin, err := chunk.GNMFExec(chunk.Parallel(), m, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(g.H, gTwin.H) != 0 {
		t.Fatal("planned GNMF not bit-identical to explicit twin")
	}
}

// TestChooseInMemory: the in-memory seam returns the normalized matrix
// when the plan is factorized and a materialized la.Matrix otherwise.
func TestChooseInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := randDense(rng, 40, 2)
	asg := make([]int, 40)
	for i := range asg {
		asg[i] = rng.Intn(4)
	}
	nm, err := core.NewPKFK(s, la.NewIndicator(asg, 4), randDense(rng, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	// TR = 40/4 = 10 ≥ τ, FR = 3/2 = 1.5 ≥ ρ: Choose hands back nm itself.
	got, d := Choose(OpGLM, Env{}, nm)
	if !d.Strategy.Factorized {
		t.Fatalf("high-TR normalized matrix not factorized (%s)", d.Rule)
	}
	if got != la.Matrix(nm) {
		t.Fatal("factorized Choose did not return the normalized matrix")
	}

	// TR = 40/40 = 1: Choose materializes; the dense output matches nm.
	nmLow, err := core.NewPKFK(s, la.NewIndicator(seqInts(40), 40), randDense(rng, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	gotLow, dLow := Choose(OpGLM, Env{}, nmLow)
	if dLow.Strategy.Factorized {
		t.Fatalf("low-TR normalized matrix factorized (%s)", dLow.Rule)
	}
	if _, isNM := gotLow.(*core.NormalizedMatrix); isNM {
		t.Fatal("materialized Choose returned the normalized matrix")
	}
	if diff := la.MaxAbsDiff(laDense(t, gotLow), nmLow.Dense()); diff != 0 {
		t.Fatalf("materialized operand deviates from nm by %g", diff)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// laDense flattens any chosen operand to *la.Dense for comparison.
func laDense(t *testing.T, m la.Matrix) *la.Dense {
	t.Helper()
	switch v := m.(type) {
	case *la.Dense:
		return v
	case *la.CSR:
		return v.Dense()
	default:
		t.Fatalf("unexpected operand type %T", m)
		return nil
	}
}
