package plan

import (
	"fmt"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/la"
)

// MaterializedOperands describes a chunked materialized table with no
// join structure on hand: the planner can only pick the residency,
// execution, and placement axes.
func MaterializedOperands(t chunk.Mat) Operands {
	o := Operands{
		Rows:              t.Rows(),
		Cols:              t.Cols(),
		Chunked:           true,
		NumChunks:         t.NumChunks(),
		ChunkRows:         t.ChunkRows(),
		HasMaterialized:   true,
		BytesMaterialized: t.BytesOnDisk(),
	}
	if sp, ok := t.(*chunk.SparseMatrix); ok {
		o.Sparse = true
		o.NNZ = sp.NNZ()
	}
	return o
}

// StarOperands describes a PK-FK/star join: the factorized normalized
// table (required) and, when the caller also holds it, the materialized
// join output. The §3.7 stats come from the table dimensions alone.
func StarOperands(tM chunk.Mat, nt *chunk.NormalizedTable) Operands {
	var attrBytes int64
	rs := make([]core.TableDim, len(nt.Attrs))
	for i, a := range nt.Attrs {
		rs[i] = core.TableDim{Rows: a.R.Rows(), Cols: a.R.Cols()}
		attrBytes += int64(a.R.Rows()) * int64(a.R.Cols()) * 8
	}
	s := core.TableDim{Rows: nt.S.Rows(), Cols: nt.S.Cols()}
	o := Operands{
		Rows:       nt.Rows(),
		Cols:       nt.Cols(),
		AttrTables: nt.NumTables(),
		Stats:      core.StatsFromDims(nt.Rows(), nt.Cols(), s, rs),
		Chunked:    true,
		NumChunks:  nt.S.NumChunks(),
		ChunkRows:  nt.S.ChunkRows(),
		// S chunks + in-memory attribute tables + the chunked key columns
		// (one stored float64 per base row per table).
		HasFactorized:   true,
		BytesFactorized: nt.S.BytesOnDisk() + attrBytes + int64(nt.NumTables())*int64(nt.S.Rows())*8,
	}
	if tM != nil {
		o.HasMaterialized = true
		o.BytesMaterialized = tM.BytesOnDisk()
	}
	return o
}

// MNOperands describes an M:N join (Table 10): the factorized MNTable
// (required) and, when the caller also holds it, the materialized join
// output. Redundancy from StatsFromDims(|T'|, dS+dR, dims(S), [dims(R)])
// is exactly the paper's storage ratio, so the representation axis
// reduces to Redundancy > 1.
func MNOperands(tM chunk.Mat, mn *chunk.MNTable) Operands {
	nOut := mn.OutputRows()
	dS, dR := mn.S.Cols(), mn.R.Cols()
	s := core.TableDim{Rows: mn.S.Rows(), Cols: dS}
	r := core.TableDim{Rows: mn.R.Rows(), Cols: dR}
	chunkRows := mn.S.ChunkRows()
	o := Operands{
		Rows:       nOut,
		Cols:       dS + dR,
		AttrTables: 1,
		MNJoin:     true,
		Stats:      core.StatsFromDims(nOut, dS+dR, s, []core.TableDim{r}),
		Chunked:    true,
		NumChunks:  (nOut + chunkRows - 1) / chunkRows,
		ChunkRows:  chunkRows,
		// Base tables plus the two chunked selector columns.
		HasFactorized:   true,
		BytesFactorized: mn.S.BytesOnDisk() + mn.R.BytesOnDisk() + 2*int64(nOut)*8,
	}
	if tM != nil {
		o.HasMaterialized = true
		o.BytesMaterialized = tM.BytesOnDisk()
	}
	return o
}

// InMemoryOperands describes an in-memory normalized matrix: both
// representations are reachable (the materialized one via nm.Dense or
// nm.Sparse), and the stats come from ComputeStats.
func InMemoryOperands(nm *core.NormalizedMatrix) Operands {
	st := nm.ComputeStats()
	var attrBytes int64
	for _, r := range nm.Rs() {
		attrBytes += int64(r.Rows()) * int64(r.Cols()) * 8
	}
	var sBytes int64
	if s := nm.S(); s != nil {
		sBytes = int64(s.Rows()) * int64(s.Cols()) * 8
	}
	return Operands{
		Rows:              nm.Rows(),
		Cols:              nm.Cols(),
		AttrTables:        nm.NumTables(),
		NNZ:               int64(nm.NNZ()),
		Stats:             st,
		HasMaterialized:   true,
		HasFactorized:     true,
		BytesMaterialized: int64(nm.Rows()) * int64(nm.Cols()) * 8,
		BytesFactorized:   sBytes + attrBytes + int64(nm.NumTables())*int64(nm.Rows())*8,
	}
}

// LogReg is the planner-driven GLM entry point for PK-FK/star tables: it
// plans OpGLM over the representations the caller holds and dispatches to
// LogRegMaterializedExec or LogRegFactorizedExec accordingly. Either of
// tM/nt may be nil; the planner never selects an absent representation.
func LogReg(env Env, tM chunk.Mat, nt *chunk.NormalizedTable, y *la.Dense, iters int, alpha float64) (*chunk.LogRegResult, Decision, error) {
	var o Operands
	if nt != nil {
		o = StarOperands(tM, nt)
	} else if tM != nil {
		o = MaterializedOperands(tM)
	}
	d := Plan(OpGLM, o, env)
	var (
		res *chunk.LogRegResult
		err error
	)
	switch {
	case d.Strategy.Factorized:
		res, err = chunk.LogRegFactorizedExec(d.Strategy.Exec(), nt, y, iters, alpha)
	case tM != nil:
		res, err = chunk.LogRegMaterializedExec(d.Strategy.Exec(), tM, y, iters, alpha)
	default:
		err = fmt.Errorf("plan: no operands for %s (tM and nt both nil)", OpGLM)
	}
	return res, d, err
}

// LogRegMN is the planner-driven GLM entry point for M:N joins: it plans
// OpGLM over the MNTable (and the materialized join output, when held)
// and dispatches to LogRegFactorizedMNExec or LogRegMaterializedExec.
func LogRegMN(env Env, tM chunk.Mat, mn *chunk.MNTable, y *la.Dense, iters int, alpha float64) (*chunk.LogRegResult, Decision, error) {
	var o Operands
	if mn != nil {
		o = MNOperands(tM, mn)
	} else if tM != nil {
		o = MaterializedOperands(tM)
	}
	d := Plan(OpGLM, o, env)
	var (
		res *chunk.LogRegResult
		err error
	)
	switch {
	case d.Strategy.Factorized:
		res, err = chunk.LogRegFactorizedMNExec(d.Strategy.Exec(), mn, y, iters, alpha)
	case tM != nil:
		res, err = chunk.LogRegMaterializedExec(d.Strategy.Exec(), tM, y, iters, alpha)
	default:
		err = fmt.Errorf("plan: no operands for %s (tM and mn both nil)", OpGLM)
	}
	return res, d, err
}

// KMeans is the planner-driven k-means entry point. The chunked driver
// has no factorized form (the assignment pass needs materialized rows),
// so the plan decides execution and placement — including pushdown, since
// the assignment pass is a registered op.
func KMeans(env Env, t chunk.Mat, k, iters int, seed int64) (*chunk.KMeansResult, Decision, error) {
	d := Plan(OpKMeans, MaterializedOperands(t), env)
	res, err := chunk.KMeansExec(d.Strategy.Exec(), t, k, iters, seed)
	return res, d, err
}

// GNMF is the planner-driven GNMF entry point. Like k-means it runs over
// the materialized chunked table; the plan decides execution and
// placement (never pushdown: the passes are closures, not registered
// ops).
func GNMF(env Env, t chunk.Mat, rank, iters int, seed int64) (*chunk.GNMFResult, Decision, error) {
	d := Plan(OpGNMF, MaterializedOperands(t), env)
	res, err := chunk.GNMFExec(d.Strategy.Exec(), t, rank, iters, seed)
	return res, d, err
}

// Choose is the planner seam for the in-memory layer: it plans op over a
// NormalizedMatrix and returns the operand the training loop should run
// on — the normalized matrix itself when the plan is factorized, else its
// materialized form (CSR when density < 25%, dense otherwise). The
// caller's ml.* loop is unchanged either way, since all three satisfy
// la.Matrix.
func Choose(op Op, env Env, nm *core.NormalizedMatrix) (la.Matrix, Decision) {
	d := Plan(op, InMemoryOperands(nm), env)
	if d.Strategy.Factorized {
		return nm, d
	}
	cells := float64(nm.Rows()) * float64(nm.Cols())
	if cells > 0 && float64(nm.NNZ())/cells < 0.25 {
		return nm.Sparse(), d
	}
	return nm.Dense(), d
}
