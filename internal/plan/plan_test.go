package plan

import (
	"strings"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
)

// starOps builds the operands of a PK-FK star with both representations
// on hand: nS base rows joining nR attribute rows, dS+dR columns.
func starOps(nS, nR, dS, dR int) Operands {
	st := core.StatsFromDims(nS, dS+dR,
		core.TableDim{Rows: nS, Cols: dS},
		[]core.TableDim{{Rows: nR, Cols: dR}})
	return Operands{
		Rows: nS, Cols: dS + dR, AttrTables: 1, Stats: st,
		HasMaterialized: true, HasFactorized: true,
	}
}

// mnOps builds the operands of an M:N join with both representations on
// hand: |T'| output tuples over base tables nS×dS and nR×dR.
func mnOps(nOut, nS, nR, dS, dR int) Operands {
	st := core.StatsFromDims(nOut, dS+dR,
		core.TableDim{Rows: nS, Cols: dS},
		[]core.TableDim{{Rows: nR, Cols: dR}})
	return Operands{
		Rows: nOut, Cols: dS + dR, AttrTables: 1, MNJoin: true, Stats: st,
		HasMaterialized: true, HasFactorized: true,
	}
}

// TestTable9Crossover pins the representation axis against the paper's
// Table 9 PK-FK sweep: at tuple ratio 20, materialize at feature ratio
// 0.5 and factorize at 1, 2, and 4; at tuple ratio 1 always materialize.
func TestTable9Crossover(t *testing.T) {
	const nS, nR, dS = 20000, 1000, 60
	cases := []struct {
		name       string
		dR         int
		factorized bool
	}{
		{"FR=0.5", 30, false},
		{"FR=1", 60, true},
		{"FR=2", 120, true},
		{"FR=4", 240, true},
	}
	for _, tc := range cases {
		d := Plan(OpGLM, starOps(nS, nR, dS, tc.dR), Env{})
		if d.Strategy.Factorized != tc.factorized {
			t.Errorf("%s: factorized = %v, want %v (%s)", tc.name, d.Strategy.Factorized, tc.factorized, d.Rule)
		}
	}
	// Tuple ratio 1 (nR == nS): below τ, materialize at any feature ratio.
	if d := Plan(OpGLM, starOps(nS, nS, dS, 240), Env{}); d.Strategy.Factorized {
		t.Errorf("TR=1: factorized despite tuple ratio below τ (%s)", d.Rule)
	}
}

// TestTable10MNCrossover pins the M:N axis: factorize exactly when the
// join redundancy exceeds 1, regardless of the tuple-ratio thresholds.
func TestTable10MNCrossover(t *testing.T) {
	// |T'|·(dS+dR) = 200·80 vs base 100·40+100·40: redundancy 2.
	o := mnOps(200, 100, 100, 40, 40)
	if got := o.Stats.Redundancy; got != 2 {
		t.Fatalf("redundancy = %g, want 2", got)
	}
	if d := Plan(OpGLM, o, Env{}); !d.Strategy.Factorized {
		t.Errorf("redundancy 2: not factorized (%s)", d.Rule)
	}
	// |T'| = 100: redundancy 1, factorization saves nothing.
	if d := Plan(OpGLM, mnOps(100, 100, 100, 40, 40), Env{}); d.Strategy.Factorized {
		t.Errorf("redundancy 1: factorized (%s)", d.Rule)
	}
}

// TestAvailabilityForcing: the planner never selects a representation the
// caller does not hold, whatever the stats say.
func TestAvailabilityForcing(t *testing.T) {
	o := starOps(20000, 1000, 60, 240) // stats say factorize
	o.HasFactorized = false
	if d := Plan(OpGLM, o, Env{}); d.Strategy.Factorized {
		t.Errorf("factorized without a factorized operand (%s)", d.Rule)
	}
	o = starOps(20000, 20000, 60, 30) // stats say materialize
	o.HasMaterialized = false
	if d := Plan(OpGLM, o, Env{}); !d.Strategy.Factorized {
		t.Errorf("materialized without a materialized operand (%s)", d.Rule)
	}
}

// TestDegenerateStatsConservative: empty attribute tables and absent join
// structure fall back to materialized.
func TestDegenerateStatsConservative(t *testing.T) {
	o := starOps(1000, 0, 10, 10) // nR = 0: TupleRatio 0, NR 0
	if d := Plan(OpGLM, o, Env{}); d.Strategy.Factorized {
		t.Errorf("nR=0: factorized (%s)", d.Rule)
	}
	noJoin := Operands{Rows: 1000, Cols: 20, HasMaterialized: true, HasFactorized: true}
	if d := Plan(OpGLM, noJoin, Env{}); d.Strategy.Factorized {
		t.Errorf("q=0: factorized (%s)", d.Rule)
	}
}

// TestResidencyAxis: in-memory operands spill exactly when the working
// set exceeds the budget, with the chunk height AutoRowsChecked derives
// from the same facts; already-chunked operands keep their chunking.
func TestResidencyAxis(t *testing.T) {
	env := Env{MemBudgetBytes: 1 << 20, Workers: 2}
	o := Operands{Rows: 100000, Cols: 64, HasMaterialized: true} // 51.2 MB
	d := Plan(OpGLM, o, env)
	if !d.Strategy.Chunked {
		t.Fatalf("51 MB working set under 1 MiB budget not chunked (%v)", d.Rules)
	}
	want, err := chunk.AutoRowsChecked(1<<20, 64, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy.ChunkRows != want {
		t.Errorf("chunk height %d, want AutoRows %d", d.Strategy.ChunkRows, want)
	}

	small := Operands{Rows: 100, Cols: 4, HasMaterialized: true}
	if d := Plan(OpGLM, small, env); d.Strategy.Chunked {
		t.Errorf("3 KB working set chunked under 1 MiB budget (%v)", d.Rules)
	}

	spilled := Operands{Rows: 100, Cols: 4, HasMaterialized: true, Chunked: true, NumChunks: 10, ChunkRows: 10}
	if d := Plan(OpGLM, spilled, env); !d.Strategy.Chunked || d.Strategy.ChunkRows != 10 {
		t.Errorf("already-spilled operand re-planned to %+v", d.Strategy)
	}
}

// TestExecutionAxis: serial when there is nothing to overlap, parallel
// otherwise.
func TestExecutionAxis(t *testing.T) {
	one := Operands{Rows: 10, Cols: 4, HasMaterialized: true, Chunked: true, NumChunks: 1, ChunkRows: 16}
	d := Plan(OpGLM, one, Env{Workers: 8})
	if d.Strategy.Workers != 1 || d.Strategy.Prefetch != 0 {
		t.Errorf("1 chunk: workers=%d prefetch=%d, want serial", d.Strategy.Workers, d.Strategy.Prefetch)
	}
	many := Operands{Rows: 160, Cols: 4, HasMaterialized: true, Chunked: true, NumChunks: 10, ChunkRows: 16}
	if d := Plan(OpGLM, many, Env{Workers: 1}); d.Strategy.Workers != 1 {
		t.Errorf("workers=1 env planned %d workers", d.Strategy.Workers)
	}
	d = Plan(OpGLM, many, Env{Workers: 4})
	if d.Strategy.Workers != 4 || d.Strategy.Prefetch != 8 {
		t.Errorf("10 chunks × 4 workers: got workers=%d prefetch=%d", d.Strategy.Workers, d.Strategy.Prefetch)
	}
}

// TestPlacementAxis: pushdown only for registry ops on exec-capable
// shards; interleave only when a parallel reader spans multiple shards.
func TestPlacementAxis(t *testing.T) {
	o := Operands{Rows: 160, Cols: 4, HasMaterialized: true, Chunked: true, NumChunks: 10, ChunkRows: 16}
	env := Env{Workers: 4, Shards: 2, ExecShards: 2, ShardBytes: []int64{512, 512}}
	if d := Plan(OpKMeans, o, env); !d.Strategy.Pushdown {
		t.Errorf("kmeans on exec shards: no pushdown (%v)", d.Rules)
	}
	if d := Plan(OpGLM, o, env); d.Strategy.Pushdown {
		t.Errorf("glm pushed down despite closure-based passes (%v)", d.Rules)
	}
	if d := Plan(OpKMeans, o, Env{Workers: 4, Shards: 2}); d.Strategy.Pushdown {
		t.Errorf("pushdown without exec-capable shards (%v)", d.Rules)
	}
	if d := Plan(OpGLM, o, env); !d.Strategy.Interleave {
		t.Errorf("2 shards, parallel: no interleave (%v)", d.Rules)
	}
	if d := Plan(OpGLM, o, Env{Workers: 4, Shards: 1}); d.Strategy.Interleave {
		t.Errorf("1 shard: interleave planned (%v)", d.Rules)
	}
	if d := Plan(OpGLM, o, Env{Workers: 1, Shards: 2}); d.Strategy.Interleave {
		t.Errorf("serial reader: interleave planned (%v)", d.Rules)
	}
}

// TestDecisionExplainable: every axis records the rule it fired, and the
// one-line rendering carries the headline rule.
func TestDecisionExplainable(t *testing.T) {
	o := starOps(20000, 1000, 60, 120)
	o.Chunked, o.NumChunks, o.ChunkRows = true, 20, 1000
	d := Plan(OpGLM, o, Env{Workers: 4, Shards: 2})
	if len(d.Rules) < 3 {
		t.Fatalf("only %d rules recorded: %v", len(d.Rules), d.Rules)
	}
	if d.Rule == "" || !strings.Contains(d.String(), "factorized") {
		t.Errorf("decision not explainable: %q / %q", d.Rule, d.String())
	}
	for _, axis := range []string{"representation:", "residency:", "execution:"} {
		found := false
		for _, r := range d.Rules {
			if strings.HasPrefix(r, axis) {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s rule in %v", axis, d.Rules)
		}
	}
}
