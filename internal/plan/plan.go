// Package plan is the statistics-free cost-based planner: one
// Plan(op, operands, env) seam every driver runs through, choosing the
// four execution axes the repo grew across PRs 1–6 —
//
//	representation: factorized vs materialized (the paper's §3.7/§5.1 rule)
//	residency:      in-memory vs chunked, with the chunk height
//	execution:      serial vs the parallel prefetching pipeline
//	placement:      shard pushdown (Exec{Pushdown}) and multi-shard
//	                read interleave
//
// The planner reads only cheap structural facts already on hand — n, d,
// q, nnz, core.StatsFromDims (tuple ratio / feature ratio / redundancy),
// the memory budget via chunk.AutoRowsChecked, shard count, ShardStats,
// and each backend's exec capability. No data is scanned, no histograms
// are built, no statistics infrastructure exists: greedy rules over
// structural facts (the janus-datalog "statistics-unnecessary" line)
// decide in microseconds, and every Decision records which rule fired on
// which facts, so a plan is always explainable and testable against the
// paper's Table 9/10 crossover sweeps.
//
// The explicit-Exec driver forms in internal/chunk remain as overrides;
// the planner-driven entry points (LogReg, LogRegMN, KMeans, GNMF,
// Choose) are the default path and are pinned bit-identical to the
// explicit strategy they select.
package plan

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
)

// Op names a planned operation.
type Op string

// Planned operations. The training ops choose all four axes; the
// operator ops (crossprod/colsums/sum) exist so streaming passes can ask
// the planner for an Exec too.
const (
	OpGLM       Op = "glm"
	OpKMeans    Op = "kmeans"
	OpGNMF      Op = "gnmf"
	OpCrossProd Op = "crossprod"
	OpColSums   Op = "colsums"
	OpSum       Op = "sum"
)

// pushdownCapable reports whether the op's per-chunk map is in the named
// op registry a chunkd worker can execute (chunk.Op). GLM and GNMF passes
// are Go closures, not registry ops, so they cannot ship to shards yet.
func pushdownCapable(op Op) bool {
	switch op {
	case OpKMeans, OpCrossProd, OpColSums, OpSum:
		return true
	default:
		return false
	}
}

// Operands is the planner's view of the data: structural facts only,
// gathered by the *Operands builders. Zero-valued fields mean "fact not
// available" and keep the rules conservative.
type Operands struct {
	// Rows and Cols are the logical (join output) shape n×d.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// AttrTables is q, the number of joined attribute tables (0 = no join
	// structure, factorization impossible).
	AttrTables int `json:"attr_tables"`
	// NNZ counts stored nonzeros when known (sparse operands).
	NNZ int64 `json:"nnz,omitempty"`
	// Sparse marks operands whose materialized form is CSR.
	Sparse bool `json:"sparse,omitempty"`
	// MNJoin marks an M:N join (Table 10): redundancy, not the tuple
	// ratio, is the deciding fact.
	MNJoin bool `json:"mn_join,omitempty"`
	// Stats carries the §3.7 decision-rule facts derived from dimensions.
	Stats core.Stats `json:"stats"`
	// Chunked marks operands already spilled to a chunk store, with their
	// chunking.
	Chunked   bool `json:"chunked,omitempty"`
	NumChunks int  `json:"num_chunks,omitempty"`
	ChunkRows int  `json:"chunk_rows,omitempty"`
	// HasMaterialized/HasFactorized record which representations the
	// caller actually holds; the planner never selects an absent one.
	HasMaterialized bool `json:"has_materialized"`
	HasFactorized   bool `json:"has_factorized"`
	// BytesMaterialized/BytesFactorized estimate each representation's
	// working set (on-disk footprint for chunked operands); 0 = unknown.
	BytesMaterialized int64 `json:"bytes_materialized,omitempty"`
	BytesFactorized   int64 `json:"bytes_factorized,omitempty"`
}

// Env is the execution environment the planner reads: the facts that are
// properties of the machine and store rather than of the operands.
type Env struct {
	// MemBudgetBytes bounds decoded-chunk residency (0 = unbounded).
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
	// Workers bounds chunk parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Shards and ExecShards describe the chunk store: total shard count
	// and how many advertise the /exec worker capability.
	Shards     int `json:"shards,omitempty"`
	ExecShards int `json:"exec_shards,omitempty"`
	// ShardBytes is ShardStats' per-shard footprint, the placement fact
	// behind the read-interleave choice.
	ShardBytes []int64 `json:"shard_bytes,omitempty"`
	// ZoneMapShards counts shards whose backend records zone maps at spill
	// time — the placement fact behind skip-aware scheduling: on such
	// shards, all-zero chunks commit identity partials without a read.
	ZoneMapShards int `json:"zone_map_shards,omitempty"`
	// Advisor overrides the §5.1 thresholds; the zero value means
	// core.DefaultAdvisor() (τ=5, ρ=1).
	Advisor core.Advisor `json:"advisor,omitzero"`
}

// EnvFor gathers the environment facts from a chunk store: shard count,
// per-shard bytes (ShardStats), and exec capability.
func EnvFor(st *chunk.Store, workers int, memBudgetBytes int64) Env {
	e := Env{Workers: workers, MemBudgetBytes: memBudgetBytes}
	if st != nil {
		e.Shards = st.NumShards()
		e.ExecShards = st.ExecShards()
		e.ZoneMapShards = st.ZoneMapShards()
		for _, s := range st.ShardStats() {
			e.ShardBytes = append(e.ShardBytes, s.Bytes)
		}
	}
	return e
}

func (e Env) advisor() core.Advisor {
	if e.Advisor == (core.Advisor{}) {
		return core.DefaultAdvisor()
	}
	return e.Advisor
}

func (e Env) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Strategy is the plan: one value per execution axis. Exec() converts the
// chunked-execution axes into the chunk.Exec the explicit driver forms
// take, so a Strategy can always be replayed through the override seam.
type Strategy struct {
	Factorized bool `json:"factorized"`
	Chunked    bool `json:"chunked"`
	// ChunkRows is the chunk height for chunked execution (existing
	// chunking, or AutoRowsChecked from the memory budget).
	ChunkRows int  `json:"chunk_rows,omitempty"`
	Workers   int  `json:"workers"`
	Prefetch  int  `json:"prefetch"`
	Pushdown  bool `json:"pushdown,omitempty"`
	// Interleave records that the multi-shard pipeline will spread reads
	// round-robin across shards (informational: the pipeline applies it
	// automatically whenever chunks span shards).
	Interleave bool `json:"interleave,omitempty"`
	// SkipAware records that zone-map-annotated shards let the pass skip
	// proven all-zero chunks (informational: runOp consults zone maps
	// automatically whenever the store's backends record them).
	SkipAware bool `json:"skip_aware,omitempty"`
}

// Exec returns the chunk execution configuration the strategy selects.
func (s Strategy) Exec() chunk.Exec {
	return chunk.Exec{Workers: s.Workers, Prefetch: s.Prefetch, Pushdown: s.Pushdown}
}

// Decision is an explainable plan: the chosen strategy plus the facts
// consulted and the rule that fired on each axis. It marshals into the
// morpheus-bench -json results, so plan flips show up in the benchmark
// trajectory.
type Decision struct {
	// Label tags the decision with the workload it planned (set by
	// callers; empty from Plan itself).
	Label    string   `json:"label,omitempty"`
	Op       Op       `json:"op"`
	Strategy Strategy `json:"strategy"`
	// Rule is the headline representation rule that fired; Rules lists
	// every axis's rule with the facts it read.
	Rule     string   `json:"rule"`
	Rules    []string `json:"rules"`
	Operands Operands `json:"operands"`
	Env      Env      `json:"env"`
	// PlanMicros is the planning time in microseconds — the cost of
	// choosing, which the statistics-free design keeps at microseconds.
	PlanMicros float64 `json:"plan_us"`
}

// String renders the decision on one line: strategy, headline rule, and
// planning time.
func (d Decision) String() string {
	rep := "materialized"
	if d.Strategy.Factorized {
		rep = "factorized"
	}
	res := "in-memory"
	if d.Strategy.Chunked {
		res = fmt.Sprintf("chunked[%d rows]", d.Strategy.ChunkRows)
	}
	var opts []string
	if d.Strategy.Pushdown {
		opts = append(opts, "pushdown")
	}
	if d.Strategy.Interleave {
		opts = append(opts, "interleave")
	}
	if d.Strategy.SkipAware {
		opts = append(opts, "skip")
	}
	opt := ""
	if len(opts) > 0 {
		opt = " +" + strings.Join(opts, "+")
	}
	return fmt.Sprintf("%s: %s %s workers=%d prefetch=%d%s — %s (%.1fµs)",
		d.Op, rep, res, d.Strategy.Workers, d.Strategy.Prefetch, opt, d.Rule, d.PlanMicros)
}

// Plan greedily picks a strategy for op over the given operands in the
// given environment. Each axis is decided by the first rule whose facts
// match, in a fixed order — representation, residency, execution,
// placement — and the fired rules are recorded on the Decision. Planning
// reads only the facts in Operands/Env; it never touches data.
func Plan(op Op, o Operands, env Env) Decision {
	start := time.Now()
	d := Decision{Op: op, Operands: o, Env: env}
	rule := func(axis, format string, args ...any) string {
		r := fmt.Sprintf("%s: %s", axis, fmt.Sprintf(format, args...))
		d.Rules = append(d.Rules, r)
		return r
	}

	// Axis 1 — representation. The §3.7 Advisor rule (tuple ratio ≥ τ and
	// feature ratio ≥ ρ) for PK-FK/star joins; redundancy > 1 for M:N
	// joins, where |T'| rather than nS drives the blow-up (Table 10);
	// conservative materialized fallbacks for degenerate facts.
	adv := env.advisor()
	st := o.Stats
	switch {
	case !o.HasFactorized && !o.HasMaterialized:
		d.Rule = rule("representation", "materialized — no operands described; defaulting conservatively")
	case !o.HasFactorized:
		d.Rule = rule("representation", "materialized — only the materialized operand is available")
	case !o.HasMaterialized:
		d.Strategy.Factorized = true
		d.Rule = rule("representation", "factorized — only the factorized operand is available")
	case o.AttrTables == 0:
		d.Rule = rule("representation", "materialized — no join structure (q=0), nothing to factorize")
	case o.MNJoin:
		if st.Redundancy > 1 {
			d.Strategy.Factorized = true
			d.Rule = rule("representation", "factorized — M:N join redundancy %.2f > 1 (|T'|=%d vs base tables)", st.Redundancy, o.Rows)
		} else {
			d.Rule = rule("representation", "materialized — M:N join redundancy %.2f ≤ 1, factorization saves nothing", st.Redundancy)
		}
	case st.NR <= 0:
		d.Rule = rule("representation", "materialized — degenerate stats (nR=%d), conservative fallback", st.NR)
	case adv.ShouldFactorize(st):
		d.Strategy.Factorized = true
		d.Rule = rule("representation", "factorized — advisor: tuple ratio %.1f ≥ τ=%g and feature ratio %.2f ≥ ρ=%g", st.TupleRatio, adv.Tau, st.FeatureRatio, adv.Rho)
	default:
		d.Rule = rule("representation", "materialized — advisor: tuple ratio %.1f vs τ=%g, feature ratio %.2f vs ρ=%g", st.TupleRatio, adv.Tau, st.FeatureRatio, adv.Rho)
	}

	// Axis 2 — residency. Already-spilled operands stay chunked; otherwise
	// the chosen representation's working set is compared to the memory
	// budget and the chunk height derived via AutoRowsChecked.
	w := env.workers()
	prefetch := 2 * w
	workingSet := o.BytesMaterialized
	if d.Strategy.Factorized && o.BytesFactorized > 0 {
		workingSet = o.BytesFactorized
	}
	if workingSet == 0 {
		workingSet = int64(o.Rows) * int64(o.Cols) * 8
	}
	switch {
	case o.Chunked:
		d.Strategy.Chunked = true
		d.Strategy.ChunkRows = o.ChunkRows
		rule("residency", "chunked — operands already spilled (%d chunks × %d rows)", o.NumChunks, o.ChunkRows)
	case env.MemBudgetBytes > 0 && workingSet > env.MemBudgetBytes:
		d.Strategy.Chunked = true
		rows, err := chunk.AutoRowsChecked(env.MemBudgetBytes, o.Cols, w, prefetch)
		d.Strategy.ChunkRows = rows
		if err != nil {
			rule("residency", "chunked — working set %d B exceeds budget %d B; budget cannot hold even 1-row chunks, clamped to %d rows", workingSet, env.MemBudgetBytes, rows)
		} else {
			rule("residency", "chunked — working set %d B exceeds budget %d B; AutoRows height %d", workingSet, env.MemBudgetBytes, rows)
		}
	default:
		rule("residency", "in-memory — working set %d B fits the budget", workingSet)
	}

	// Axis 3 — execution. Parallel by default; the serial reference loop
	// when there is no parallelism to harvest.
	nChunks := o.NumChunks
	if d.Strategy.Chunked && nChunks == 0 && d.Strategy.ChunkRows > 0 {
		nChunks = (o.Rows + d.Strategy.ChunkRows - 1) / d.Strategy.ChunkRows
	}
	if d.Strategy.Chunked && (nChunks <= 1 || w == 1) {
		d.Strategy.Workers, d.Strategy.Prefetch = 1, 0
		rule("execution", "serial — %d chunk(s), %d worker(s): nothing to overlap", nChunks, w)
	} else {
		d.Strategy.Workers, d.Strategy.Prefetch = w, prefetch
		if d.Strategy.Chunked {
			rule("execution", "parallel — %d workers, prefetch %d over %d chunks", w, prefetch, nChunks)
		} else {
			rule("execution", "parallel — %d workers for the in-memory kernels", w)
		}
	}

	// Axis 4 — placement. Pushdown only for registry ops on exec-capable
	// shards; the multi-shard read interleave whenever the pipelined
	// reader will see more than one shard.
	if d.Strategy.Chunked && env.ExecShards > 0 {
		if pushdownCapable(op) {
			d.Strategy.Pushdown = true
			rule("placement", "pushdown — %d exec-capable shard(s) and op %q is in the chunk-op registry", env.ExecShards, op)
		} else {
			rule("placement", "no pushdown — op %q has no registered per-chunk map (closure-based pass)", op)
		}
	}
	if d.Strategy.Chunked && env.Shards > 1 && d.Strategy.Workers > 1 {
		d.Strategy.Interleave = true
		rule("placement", "interleave — reads round-robin across %d shards (ShardStats: %v bytes)", env.Shards, env.ShardBytes)
	}
	if d.Strategy.Chunked && env.ZoneMapShards > 0 {
		d.Strategy.SkipAware = true
		rule("placement", "skip-aware — %d shard(s) record zone maps: all-zero chunks commit identity partials without a read", env.ZoneMapShards)
	}

	d.PlanMicros = float64(time.Since(start).Nanoseconds()) / 1e3
	return d
}
