package chunk

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/la"
)

// shardDirs makes n fresh shard directories under one test temp root.
func shardDirs(t testing.TB, n int) []string {
	t.Helper()
	root := t.TempDir()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("shard%d", i))
	}
	return dirs
}

func testShardedStore(t testing.TB, n int, policy Placement) (*Store, []string) {
	t.Helper()
	dirs := shardDirs(t, n)
	s, err := NewShardedStore(dirs, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s, dirs
}

func filesIn(t testing.TB, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "chunk-") {
			n++
		}
	}
	return n
}

// TestShardedRoundRobinSpreadsChunks: round-robin placement lands chunk
// files on every shard, and the per-shard stats agree with the directory
// contents and the matrix's logical footprint.
func TestShardedRoundRobinSpreadsChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s, dirs := testShardedStore(t, 3, RoundRobin)
	m, err := FromDense(s, randDense(rng, 90, 4), 10) // 9 chunks over 3 shards
	if err != nil {
		t.Fatal(err)
	}
	stats := s.ShardStats()
	if len(stats) != 3 || s.NumShards() != 3 {
		t.Fatalf("NumShards/ShardStats = %d/%d, want 3", s.NumShards(), len(stats))
	}
	for i, st := range stats {
		if st.Chunks != 3 {
			t.Fatalf("shard %d holds %d chunks, want 3 (stats %+v)", i, st.Chunks, stats)
		}
		if got := filesIn(t, dirs[i]); got != 3 {
			t.Fatalf("shard dir %d holds %d files, want 3", i, got)
		}
		if st.Bytes != 30*4*8 {
			t.Fatalf("shard %d accounts %d bytes, want %d", i, st.Bytes, 30*4*8)
		}
	}
	if s.BytesOnDisk() != m.BytesOnDisk() {
		t.Fatalf("store accounts %d bytes, matrix reports %d", s.BytesOnDisk(), m.BytesOnDisk())
	}
	// The matrix reads back exactly despite living on three directories.
	got, err := m.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 90 || got.Cols() != 4 {
		t.Fatalf("read-back shape %dx%d", got.Rows(), got.Cols())
	}
}

// TestShardedLeastBytesBalances: the size-aware policy keeps shard byte
// counts balanced even when wide and narrow matrices share the store, and
// never starves a shard.
func TestShardedLeastBytesBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s, _ := testShardedStore(t, 2, LeastBytes)
	if _, err := FromDense(s, randDense(rng, 64, 32), 8); err != nil { // 8 wide chunks
		t.Fatal(err)
	}
	if _, err := FromDense(s, randDense(rng, 64, 2), 8); err != nil { // 8 narrow chunks
		t.Fatal(err)
	}
	stats := s.ShardStats()
	var maxB, minB int64 = stats[0].Bytes, stats[0].Bytes
	for _, st := range stats {
		if st.Chunks == 0 {
			t.Fatalf("least-bytes starved a shard: %+v", stats)
		}
		maxB = max(maxB, st.Bytes)
		minB = min(minB, st.Bytes)
	}
	// Imbalance stays within one widest chunk (8 rows × 32 cols × 8 B).
	if maxB-minB > 8*32*8 {
		t.Fatalf("least-bytes imbalance %d B exceeds one chunk: %+v", maxB-minB, stats)
	}
}

// buildPKFKInputs deterministically rebuilds the same dense table, CSR
// table, star, and labels in any store, so sharded and single-directory
// runs see identical bytes.
func buildPKFKInputs(t *testing.T, store *Store, seed int64) (tDense *Matrix, tSparse *SparseMatrix, nt *NormalizedTable, y *la.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nS, dS, chunkRows = 70, 6, 8
	td := randDense(rng, nS, dS+4)
	var err error
	tDense, err = FromDense(store, td, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	tSparse, err = FromCSR(store, oneHotCSR(rng, nS, 3, 4), chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	nt, _ = buildStar(t, rng, store, nS, dS, chunkRows)
	y = pmLabels(rng, nS)
	return tDense, tSparse, nt, y
}

// TestShardedDifferentialDrivers pins every existing driver — dense GLM,
// sparse GLM, star-schema factorized GLM, streamed k-means, streamed GNMF
// — to bitwise-identical results over a 3-shard store and a
// single-directory store: sharding changes placement, never results.
func TestShardedDifferentialDrivers(t *testing.T) {
	single := testStore(t)
	sharded, _ := testShardedStore(t, 3, LeastBytes)

	d1, s1, nt1, y := buildPKFKInputs(t, single, 55)
	d2, s2, nt2, _ := buildPKFKInputs(t, sharded, 55)

	const iters = 3
	ex := Parallel()

	rd1, err := LogRegMaterializedExec(ex, d1, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rd2, err := LogRegMaterializedExec(ex, d2, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(rd1.W, rd2.W) != 0 {
		t.Fatal("dense GLM weights differ between sharded and single-directory store")
	}

	rs1, err := LogRegMaterializedExec(ex, s1, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := LogRegMaterializedExec(ex, s2, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(rs1.W, rs2.W) != 0 {
		t.Fatal("sparse GLM weights differ between sharded and single-directory store")
	}

	rf1, err := LogRegFactorizedExec(ex, nt1, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rf2, err := LogRegFactorizedExec(ex, nt2, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(rf1.W, rf2.W) != 0 {
		t.Fatal("star GLM weights differ between sharded and single-directory store")
	}

	km1, err := KMeansExec(ex, d1, 4, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	km2, err := KMeansExec(ex, d2, 4, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(km1.Centroids, km2.Centroids) != 0 || km1.Objective != km2.Objective {
		t.Fatal("k-means results differ between sharded and single-directory store")
	}
	a1, err := km1.Assign.Dense()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := km2.Assign.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(a1, a2) != 0 {
		t.Fatal("k-means assignment columns differ between sharded and single-directory store")
	}

	g1, err := GNMFExec(ex, s1, 3, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GNMFExec(ex, s2, 3, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := g1.W.Dense()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := g2.W.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(g1.H, g2.H) != 0 || la.MaxAbsDiff(w1, w2) != 0 {
		t.Fatal("GNMF factors differ between sharded and single-directory store")
	}
}

// TestShardedWriteBehindBitIdentical: the per-shard write-behind queues
// produce output chunks byte-identical to the synchronous serial path.
func TestShardedWriteBehindBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	s, _ := testShardedStore(t, 3, RoundRobin)
	m, err := FromDense(s, randDense(rng, 100, 5), 7)
	if err != nil {
		t.Fatal(err)
	}
	x := randDense(rng, 5, 3)
	serial, err := m.MulExec(Serial, x)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := m.MulExec(Parallel(), x)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := serial.Dense()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := parallel.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(ds, dp) != 0 {
		t.Fatal("per-shard write-behind output not bit-identical to synchronous")
	}
}

// TestShardedFreeReapsAcrossShards: freeing a matrix removes its files
// from every shard directory and unwinds the per-shard accounting.
func TestShardedFreeReapsAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	s, dirs := testShardedStore(t, 3, RoundRobin)
	m, err := FromDense(s, randDense(rng, 60, 3), 10)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := m.Mul(randDense(rng, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range dirs {
		total += filesIn(t, d)
	}
	if total != keep.NumChunks() {
		t.Fatalf("after Free: %d files across shards, want the %d survivors", total, keep.NumChunks())
	}
	var bytes int64
	for _, st := range s.ShardStats() {
		bytes += st.Bytes
	}
	if bytes != s.BytesOnDisk() || bytes != keep.BytesOnDisk() {
		t.Fatalf("accounting after Free: shards %d B, store %d B, survivor %d B", bytes, s.BytesOnDisk(), keep.BytesOnDisk())
	}
}

// TestShardedCloseWithLiveMatrices: Close reaps every live matrix's files
// across all shards, later allocations fail with ErrClosed, and streaming
// a reaped matrix surfaces an error rather than silently reading nothing.
func TestShardedCloseWithLiveMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	s, dirs := testShardedStore(t, 3, LeastBytes)
	m, err := FromDense(s, randDense(rng, 50, 4), 6)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := FromCSR(s, oneHotCSR(rng, 50, 2, 3), 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, d := range dirs {
		if got := filesIn(t, d); got != 0 {
			t.Fatalf("shard %d still holds %d files after Close", i, got)
		}
	}
	if s.LiveChunks() != 0 || s.BytesOnDisk() != 0 {
		t.Fatalf("store still tracks %d chunks / %d bytes after Close", s.LiveChunks(), s.BytesOnDisk())
	}
	if _, err := FromDense(s, randDense(rng, 8, 2), 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("FromDense on closed sharded store: %v, want ErrClosed", err)
	}
	if _, err := m.Sum(); err == nil {
		t.Fatal("streaming a matrix whose files were reaped by Close succeeded")
	}
	if _, err := sp.Sum(); err == nil {
		t.Fatal("streaming a sparse matrix whose files were reaped by Close succeeded")
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestShardedStartupOrphanCleanup: a crashed run's spill files are reaped
// when a new store opens over the same directories — on every shard.
func TestShardedStartupOrphanCleanup(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	dirs := shardDirs(t, 2)
	s1, err := NewShardedStore(dirs, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromDense(s1, randDense(rng, 40, 3), 5); err != nil {
		t.Fatal(err)
	}
	orphaned := 0
	for _, d := range dirs {
		orphaned += filesIn(t, d)
	}
	if orphaned == 0 {
		t.Fatal("simulated crash left no spill files")
	}
	// Simulated crash: s1 is dropped without Close or Free. A fresh store
	// over the same directories reaps the debris before first use.
	s2, err := NewShardedStore(dirs, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.OrphansReaped(); got != orphaned {
		t.Fatalf("OrphansReaped = %d, want %d", got, orphaned)
	}
	for i, d := range dirs {
		if got := filesIn(t, d); got != 0 {
			t.Fatalf("shard %d still holds %d orphans after reopen", i, got)
		}
	}
	// The fresh store works normally afterwards.
	m, err := FromDense(s2, randDense(rng, 20, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Sum(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroWidthChunkAccounting: a 0-column product writes 0-byte chunk
// files; releasing them must unwind the shard accounting exactly once
// (regression: bytes==0 used to be conflated with "never written",
// double-decrementing the pending counter and skewing LeastBytes scores).
func TestZeroWidthChunkAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s, _ := testShardedStore(t, 2, LeastBytes)
	m, err := FromDense(s, randDense(rng, 20, 3), 5)
	if err != nil {
		t.Fatal(err)
	}
	z, err := m.Mul(la.NewDense(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := z.Free(); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(); err != nil {
		t.Fatal(err)
	}
	for i, st := range s.ShardStats() {
		if st.Chunks != 0 || st.Bytes != 0 {
			t.Fatalf("shard %d after frees: %+v, want empty", i, st)
		}
	}
	// Placement still balances after the zero-byte episode.
	if _, err := FromDense(s, randDense(rng, 40, 2), 5); err != nil {
		t.Fatal(err)
	}
	for i, st := range s.ShardStats() {
		if st.Chunks != 4 {
			t.Fatalf("post-episode placement skewed: shard %d holds %d chunks, want 4", i, st.Chunks)
		}
	}
}

// TestShardedStoreValidation: bad constructor inputs fail loudly.
func TestShardedStoreValidation(t *testing.T) {
	if _, err := NewShardedStore(nil, RoundRobin); err == nil {
		t.Fatal("empty dir list accepted")
	}
	d := t.TempDir()
	if _, err := NewShardedStore([]string{d, d}, RoundRobin); err == nil {
		t.Fatal("duplicate shard directory accepted")
	}
	if _, err := NewShardedStore([]string{d}, Placement(99)); err == nil {
		t.Fatal("unknown placement policy accepted")
	}
}

// BenchmarkShardedSpill measures spill throughput (Build + chunked Mul,
// the write-heavy passes) as the shard count grows. On hardware where the
// directories land on distinct devices the MB/s column should scale with
// the shard count; on one device it shows the per-shard pipelining is at
// least not slower.
func BenchmarkShardedSpill(b *testing.B) {
	const rows, cols, chunkRows = 4096, 128, 256
	src := randDense(rand.New(rand.NewSource(7)), rows, cols)
	x := randDense(rand.New(rand.NewSource(8)), cols, cols)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := NewShardedStore(shardDirs(b, shards), LeastBytes)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.SetBytes(2 * rows * cols * 8) // spilled input + spilled product
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := FromDense(s, src, chunkRows)
				if err != nil {
					b.Fatal(err)
				}
				p, err := m.Mul(x)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Free(); err != nil {
					b.Fatal(err)
				}
				if err := m.Free(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
