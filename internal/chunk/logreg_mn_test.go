package chunk

import (
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/ml"
)

// buildMN creates a small M:N join with chunked base tables and selectors.
func buildMN(t *testing.T, rng *rand.Rand, nS, nR, dS, dR, nU, chunkRows int) (*MNTable, *la.Dense, *la.Dense) {
	t.Helper()
	store := testStore(t)
	sD := randDense(rng, nS, dS)
	rD := randDense(rng, nR, dR)
	jS := make([]int, nS)
	jR := make([]int, nR)
	for i := range jS {
		jS[i] = rng.Intn(nU)
	}
	for i := range jR {
		jR[i] = rng.Intn(nU)
	}
	var isA, irA []int32
	for i, a := range jS {
		for j, b := range jR {
			if a == b {
				isA = append(isA, int32(i))
				irA = append(irA, int32(j))
			}
		}
	}
	if len(isA) == 0 {
		t.Fatal("no join output; adjust nU")
	}
	sM, err := FromDense(store, sD, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	rM, err := FromDense(store, rD, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	isV, err := BuildIntVector(store, isA, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	irV, err := BuildIntVector(store, irA, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := NewMNTable(sM, rM, isV, irV)
	if err != nil {
		t.Fatal(err)
	}
	// Materialized in-memory reference.
	td := la.NewDense(len(isA), dS+dR)
	for i := range isA {
		copy(td.Row(i)[:dS], sD.Row(int(isA[i])))
		copy(td.Row(i)[dS:], rD.Row(int(irA[i])))
	}
	y := la.NewDense(len(isA), 1)
	for i := range y.Data() {
		if rng.Intn(2) == 0 {
			y.Data()[i] = 1
		} else {
			y.Data()[i] = -1
		}
	}
	return mn, td, y
}

func TestLogRegFactorizedMNMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mn, td, y := buildMN(t, rng, 30, 25, 3, 4, 6, 16)
	const iters, alpha = 6, 1e-3
	resF, err := LogRegFactorizedMNExec(Parallel(), mn, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	wRef, err := ml.LogisticRegressionGD(td, y, nil, ml.Options{Iters: iters, StepSize: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(resF.W, wRef) > 1e-9 {
		t.Fatalf("M:N factorized deviates by %g", la.MaxAbsDiff(resF.W, wRef))
	}
}

func TestMaterializeMNAndIOAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Small nU → each base tuple repeated many times in the output.
	mn, td, y := buildMN(t, rng, 40, 40, 3, 3, 4, 32)
	store := testStore(t)
	tm, err := MaterializeMN(store, mn)
	if err != nil {
		t.Fatal(err)
	}
	tmD, err := tm.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(tmD, td, 0) {
		t.Fatal("MaterializeMN content mismatch")
	}
	const iters, alpha = 4, 1e-3
	resM, err := LogRegMaterializedExec(Parallel(), tm, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	resF, err := LogRegFactorizedMNExec(Parallel(), mn, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(resM.W, resF.W) > 1e-9 {
		t.Fatal("materialized vs factorized M:N weights differ")
	}
	if resF.BytesRead >= resM.BytesRead {
		t.Fatalf("factorized M:N read %d bytes, materialized %d", resF.BytesRead, resM.BytesRead)
	}
}

func TestMNTableValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store := testStore(t)
	s, _ := FromDense(store, randDense(rng, 5, 2), 4)
	r, _ := FromDense(store, randDense(rng, 5, 2), 4)
	a, _ := BuildIntVector(store, []int32{0, 1, 2}, 4)
	b, _ := BuildIntVector(store, []int32{0, 1}, 4)
	if _, err := NewMNTable(s, r, a, b); err == nil {
		t.Fatal("accepted misaligned selectors")
	}
}
