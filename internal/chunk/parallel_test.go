package chunk

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/la"
	"repro/internal/ml"
)

// parExec exercises real worker fan-out even on a single-core runner.
var parExec = Exec{Workers: 4, Prefetch: 3}

// TestParallelOpsMatchInMemory pins the parallel chunked operators to
// their in-memory la counterparts (within 1e-12) and to the serial
// chunked path (bit-identical: ordered commit makes worker scheduling
// invisible).
func TestParallelOpsMatchInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := testStore(t)
	d := randDense(rng, 103, 7) // ragged last chunk
	m, err := FromDense(s, d, 8)
	if err != nil {
		t.Fatal(err)
	}

	x := randDense(rng, 7, 3)
	mulP, err := m.MulExec(parExec, x)
	if err != nil {
		t.Fatal(err)
	}
	mulPD, err := mulP.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(mulPD, la.MatMul(d, x), 1e-12) {
		t.Fatal("parallel Mul deviates from in-memory")
	}
	mulS, err := m.MulExec(Serial, x)
	if err != nil {
		t.Fatal(err)
	}
	mulSD, _ := mulS.Dense()
	if la.MaxAbsDiff(mulPD, mulSD) != 0 {
		t.Fatal("parallel Mul not bit-identical to serial")
	}

	xt := randDense(rng, 103, 2)
	tmP, err := m.TMulExec(parExec, xt)
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(tmP, la.TMatMul(d, xt), 1e-12) {
		t.Fatal("parallel TMul deviates from in-memory")
	}
	tmS, err := m.TMulExec(Serial, xt)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(tmP, tmS) != 0 {
		t.Fatal("parallel TMul not bit-identical to serial")
	}

	cpP, err := m.CrossProdExec(parExec)
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(cpP, d.CrossProd(), 1e-12) {
		t.Fatal("parallel CrossProd deviates from in-memory")
	}
	cpS, err := m.CrossProdExec(Serial)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(cpP, cpS) != 0 {
		t.Fatal("parallel CrossProd not bit-identical to serial")
	}

	csP, err := m.ColSumsExec(parExec)
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(csP, d.ColSums(), 1e-12) {
		t.Fatal("parallel ColSums deviates from in-memory")
	}
	csS, err := m.ColSumsExec(Serial)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(csP, csS) != 0 {
		t.Fatal("parallel ColSums not bit-identical to serial")
	}

	sumP, err := m.SumExec(parExec)
	if err != nil {
		t.Fatal(err)
	}
	sumS, err := m.SumExec(Serial)
	if err != nil {
		t.Fatal(err)
	}
	if sumP != sumS {
		t.Fatal("parallel Sum not bit-identical to serial")
	}

	scP, err := m.ScaleExec(parExec, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	scPD, _ := scP.Dense()
	if !la.EqualApprox(scPD, d.ScaleDense(1.5), 1e-12) {
		t.Fatal("parallel Scale deviates from in-memory")
	}

	rsP, err := m.RowSumsExec(parExec)
	if err != nil {
		t.Fatal(err)
	}
	rsPD, _ := rsP.Dense()
	if !la.EqualApprox(rsPD, d.RowSums(), 1e-12) {
		t.Fatal("parallel RowSums deviates from in-memory")
	}
}

// TestParallelGLMMatchesSerialAndInMemory pins the parallel chunked GLM
// iterations to the serial path (bit-identical) and the in-memory
// reference.
func TestParallelGLMMatchesSerialAndInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	nS, dS, nR, dR := 210, 4, 11, 6
	s := randDense(rng, nS, dS)
	r := randDense(rng, nR, dR)
	fk := make([]int32, nS)
	for i := range fk {
		fk[i] = int32(rng.Intn(nR))
	}
	td := la.NewDense(nS, dS+dR)
	for i := 0; i < nS; i++ {
		copy(td.Row(i)[:dS], s.Row(i))
		copy(td.Row(i)[dS:], r.Row(int(fk[i])))
	}
	y := la.NewDense(nS, 1)
	for i := range y.Data() {
		y.Data()[i] = float64(1 - 2*rng.Intn(2))
	}
	const iters, alpha = 5, 1e-3

	store := testStore(t)
	tm, err := FromDense(store, td, 16)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := FromDense(store, s, 16)
	if err != nil {
		t.Fatal(err)
	}
	fkv, err := BuildIntVector(store, fk, 16)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := NewNormalizedTable(sm, fkv, r)
	if err != nil {
		t.Fatal(err)
	}

	wRef, err := ml.LogisticRegressionGD(td, y, nil, ml.Options{Iters: iters, StepSize: alpha})
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func(Exec) (*LogRegResult, error){
		"materialized": func(ex Exec) (*LogRegResult, error) { return LogRegMaterializedExec(ex, tm, y, iters, alpha) },
		"factorized":   func(ex Exec) (*LogRegResult, error) { return LogRegFactorizedExec(ex, nt, y, iters, alpha) },
	} {
		serial, err := run(Serial)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		parallel, err := run(parExec)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if la.MaxAbsDiff(serial.W, parallel.W) != 0 {
			t.Fatalf("%s: parallel weights not bit-identical to serial", name)
		}
		if serial.BytesRead != parallel.BytesRead {
			t.Fatalf("%s: bytesRead %d (serial) vs %d (parallel)", name, serial.BytesRead, parallel.BytesRead)
		}
		if la.MaxAbsDiff(parallel.W, wRef) > 1e-9 {
			t.Fatalf("%s: parallel deviates from in-memory", name)
		}
	}
}

// TestParallelGLMMatchesSerialMN does the same for the M:N engine.
func TestParallelGLMMatchesSerialMN(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mn, td, y := buildMN(t, rng, 30, 25, 3, 4, 6, 8)
	const iters, alpha = 4, 1e-3
	serial, err := LogRegFactorizedMNExec(Serial, mn, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LogRegFactorizedMNExec(parExec, mn, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(serial.W, parallel.W) != 0 {
		t.Fatal("M:N parallel weights not bit-identical to serial")
	}
	wRef, err := ml.LogisticRegressionGD(td, y, nil, ml.Options{Iters: iters, StepSize: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(parallel.W, wRef) > 1e-9 {
		t.Fatal("M:N parallel deviates from in-memory")
	}
}

// TestForEachExecConcurrent checks that the unordered parallel ForEach
// visits every chunk exactly once and tolerates concurrent fn calls.
func TestForEachExecConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := testStore(t)
	d := randDense(rng, 90, 3)
	m, err := FromDense(s, d, 7)
	if err != nil {
		t.Fatal(err)
	}
	var rows atomic.Int64
	var mu sync.Mutex
	seen := map[int]bool{}
	err = m.ForEachExec(parExec, func(lo int, c *la.Dense) error {
		rows.Add(int64(c.Rows()))
		mu.Lock()
		if seen[lo] {
			mu.Unlock()
			t.Errorf("chunk at %d visited twice", lo)
			return nil
		}
		seen[lo] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Load() != 90 {
		t.Fatalf("visited %d rows, want 90", rows.Load())
	}
	if len(seen) != m.NumChunks() {
		t.Fatalf("visited %d chunks, want %d", len(seen), m.NumChunks())
	}
}

// TestParallelErrorPropagation: a corrupt chunk must fail the whole
// pipeline under parallel execution too.
func TestParallelErrorPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDense(s, randDense(rng, 64, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	corruptOneChunk(t, dir)
	if _, err := m.CrossProdExec(parExec); err == nil {
		t.Fatal("parallel CrossProd succeeded on corrupt store")
	}
	if _, err := m.MulExec(parExec, randDense(rng, 4, 2)); err == nil {
		t.Fatal("parallel Mul succeeded on corrupt store")
	}
	if err := m.ForEachExec(parExec, func(lo int, c *la.Dense) error { return nil }); err == nil {
		t.Fatal("parallel ForEach succeeded on corrupt store")
	}
}
