package chunk

import (
	"fmt"
	"runtime"

	"repro/internal/la"
)

// Mat is the chunked-operand interface: the out-of-core mirror of la.Mat.
// Both chunked storage backends — dense (*Matrix) and CSR (*SparseMatrix)
// — implement it, so every consumer (the GLM drivers, the streamed
// factorized operators in internal/core, the chunked k-means) is written
// once and runs over either representation, exactly as the in-memory
// rewrites are written once against la.Mat.
//
// Stream is the fused-pass primitive: it delivers each decoded chunk as an
// la.Mat (concretely *la.Dense or *la.CSR), which carries the full Table 1
// operator set, while commit receives per-chunk results strictly in chunk
// order — reductions stay bit-identical for every Exec. The coarse-grained
// whole-matrix operators (MulExec, TMulExec, ...) are built on it.
type Mat interface {
	Rows() int
	Cols() int
	NumChunks() int
	ChunkRows() int
	BytesOnDisk() int64
	Store() *Store
	Free() error

	// Stream runs the chunk pipeline under ex: mapFn on the workers with
	// the decoded chunk and its first-row offset, commit on the calling
	// goroutine in ascending chunk order.
	Stream(ex Exec, mapFn func(ci, lo int, c la.Mat) (any, error), commit func(ci int, v any) error) error
	// StreamToMatrix maps every chunk to a dense output chunk (same row
	// count, outCols columns) and spills the results as a new chunked
	// matrix aligned with the input's chunking.
	StreamToMatrix(ex Exec, outCols int, f func(ci, lo int, c la.Mat) (*la.Dense, error)) (*Matrix, error)
	// StreamOp is Stream for registered ops: because the per-chunk map is
	// named rather than a closure, an Exec with Pushdown ships it to the
	// shard holding each chunk and only the partials travel back, with
	// commit still running in ascending chunk order — results are
	// bit-identical with the all-local run.
	StreamOp(ex Exec, op Op, commit func(ci int, v any) error) error

	// Whole-matrix operators, mirroring la.Mat's Mul/TMul/CrossProd/
	// ColSums/Sum under an explicit execution.
	MulExec(ex Exec, x *la.Dense) (*Matrix, error)
	TMulExec(ex Exec, x *la.Dense) (*la.Dense, error)
	CrossProdExec(ex Exec) (*la.Dense, error)
	ColSumsExec(ex Exec) (*la.Dense, error)
	SumExec(ex Exec) (float64, error)
}

var (
	_ Mat = (*Matrix)(nil)
	_ Mat = (*SparseMatrix)(nil)
)

// EncodedBytes reports the on-disk size of one decoded chunk — the I/O a
// streaming pass pays to load it. Dense chunks store rows×cols float64s;
// CSR chunks follow sparseChunkBytes.
func EncodedBytes(c la.Mat) int64 {
	switch t := c.(type) {
	case *la.CSR:
		return sparseChunkBytes(t.Rows(), int64(t.NNZ()))
	default:
		return int64(c.Rows()) * int64(c.Cols()) * 8
	}
}

// AutoRows picks a chunk height from a memory budget: the pipeline keeps at
// most workers+prefetch+1 decoded input chunks resident (admission tickets,
// see runPipeline), so the chunk height that fills memBudgetBytes is
//
//	chunkRows = memBudgetBytes / ((workers+prefetch+1) · cols · 8)
//
// clamped to [1, 1<<20]. workers<=0 means GOMAXPROCS, matching Exec;
// prefetch<0 means 0. Use it instead of hard-coding chunk heights: it keeps
// the same pass under the same budget whether the table is wide or narrow
// and whether one worker or thirty-two are running.
//
// The budget covers the decoded *input* chunks. Passes that spill a chunked
// output (StreamToMatrix, Mul, Scale, ...) additionally hold up to
// workers+spillQueueDepth+1 output chunks per shard (one per busy worker
// plus the bounded write-behind queues), and each chunk being written
// briefly holds one encoded []byte copy next to its decoded form (blobs
// cross the Backend interface whole); when the output is as wide as the
// input, size the budget for roughly twice the pass's input residency.
//
// A small budget degrades gracefully: the chunk height shrinks with the
// budget but never under one row, so the pass stays within (or as close
// as physically possible to) the budget instead of silently
// overcommitting it. AutoRowsChecked additionally reports when even
// one-row chunks exceed the budget.
func AutoRows(memBudgetBytes int64, cols, workers, prefetch int) int {
	rows, _ := AutoRowsChecked(memBudgetBytes, cols, workers, prefetch)
	return rows
}

// AutoRowsChecked is AutoRows with an explicit infeasibility signal: the
// returned chunk height is always usable (≥ 1 row), and the error is
// non-nil when the budget cannot hold even one row of the operand per
// resident chunk — the caller is about to stream wider than its memory
// bound and should raise the budget or narrow the operand.
func AutoRowsChecked(memBudgetBytes int64, cols, workers, prefetch int) (int, error) {
	const maxRows = 1 << 20
	if cols <= 0 {
		cols = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if prefetch < 0 {
		prefetch = 0
	}
	resident := int64(workers+prefetch+1) * int64(cols) * 8
	rows := memBudgetBytes / resident
	switch {
	case rows < 1:
		return 1, fmt.Errorf("chunk: memory budget %d B cannot hold one %d-column row in each of the %d resident chunks (needs %d B); clamping to 1-row chunks",
			memBudgetBytes, cols, workers+prefetch+1, resident)
	case rows > maxRows:
		return maxRows, nil
	default:
		return int(rows), nil
	}
}

// rowSquaredNorms returns the per-row sums of squares of one chunk (the
// point norms of the k-means distance expansion), with a sparse fast path.
func rowSquaredNorms(c la.Mat) []float64 {
	out := make([]float64, c.Rows())
	switch t := c.(type) {
	case *la.Dense:
		for i := range out {
			s := 0.0
			for _, v := range t.Row(i) {
				s += v * v
			}
			out[i] = s
		}
	case *la.CSR:
		for i := range out {
			_, vals := t.RowNNZ(i)
			s := 0.0
			for _, v := range vals {
				s += v * v
			}
			out[i] = s
		}
	default:
		for i := range out {
			s := 0.0
			for j := 0; j < c.Cols(); j++ {
				v := c.At(i, j)
				s += v * v
			}
			out[i] = s
		}
	}
	return out
}
