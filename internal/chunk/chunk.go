// Package chunk is the out-of-core substitute for Oracle R Enterprise in
// the paper's §5.2.4 scalability experiments. ORE executes LA operators
// over an RDBMS-resident table by partitioning it into row chunks
// (ore.rowapply) and streaming operator code over the chunks; this package
// reproduces that execution model with a directory-backed chunk store, so
// that the materialized matrix pays per-iteration I/O plus FLOPs
// proportional to nS·(dS+dR) while the factorized version streams only the
// base tables (Tables 9 and 10).
package chunk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/la"
)

// Store manages on-disk chunks under a directory.
type Store struct {
	dir  string
	next int
}

// NewStore creates (if needed) and wraps a chunk directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunk: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

func (s *Store) newPath() string {
	s.next++
	return filepath.Join(s.dir, fmt.Sprintf("chunk-%06d.bin", s.next))
}

// Matrix is a dense matrix partitioned into fixed-height row chunks, each
// persisted as a raw little-endian float64 file. Reads always go to disk:
// the matrix is genuinely out-of-core.
type Matrix struct {
	store      *Store
	rows, cols int
	chunkRows  int
	paths      []string
}

// Rows reports the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NumChunks reports the chunk count.
func (m *Matrix) NumChunks() int { return len(m.paths) }

// FromDense partitions d into chunks of chunkRows rows and spills them.
func FromDense(store *Store, d *la.Dense, chunkRows int) (*Matrix, error) {
	if chunkRows <= 0 {
		return nil, fmt.Errorf("chunk: chunkRows must be positive, got %d", chunkRows)
	}
	m := &Matrix{store: store, rows: d.Rows(), cols: d.Cols(), chunkRows: chunkRows}
	for lo := 0; lo < d.Rows(); lo += chunkRows {
		hi := lo + chunkRows
		if hi > d.Rows() {
			hi = d.Rows()
		}
		path := store.newPath()
		if err := writeChunk(path, d.SliceRowsDense(lo, hi)); err != nil {
			return nil, err
		}
		m.paths = append(m.paths, path)
	}
	return m, nil
}

// Build streams rows from gen (called once per chunk with the half-open row
// range) directly to disk, so matrices larger than memory can be created.
func Build(store *Store, rows, cols, chunkRows int, gen func(lo, hi int, dst *la.Dense)) (*Matrix, error) {
	if chunkRows <= 0 {
		return nil, fmt.Errorf("chunk: chunkRows must be positive, got %d", chunkRows)
	}
	m := &Matrix{store: store, rows: rows, cols: cols, chunkRows: chunkRows}
	for lo := 0; lo < rows; lo += chunkRows {
		hi := lo + chunkRows
		if hi > rows {
			hi = rows
		}
		buf := la.NewDense(hi-lo, cols)
		gen(lo, hi, buf)
		path := store.newPath()
		if err := writeChunk(path, buf); err != nil {
			return nil, err
		}
		m.paths = append(m.paths, path)
	}
	return m, nil
}

func writeChunk(path string, d *la.Dense) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("chunk: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var b [8]byte
	for _, v := range d.Data() {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := w.Write(b[:]); err != nil {
			f.Close()
			return fmt.Errorf("chunk: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("chunk: %w", err)
	}
	return f.Close()
}

func readChunk(path string, rows, cols int) (*la.Dense, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chunk: %w", err)
	}
	if len(raw) != rows*cols*8 {
		return nil, fmt.Errorf("chunk: %s has %d bytes, want %d", path, len(raw), rows*cols*8)
	}
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return la.NewDenseData(rows, cols, data), nil
}

func (m *Matrix) chunkBounds(i int) (lo, hi int) {
	lo = i * m.chunkRows
	hi = lo + m.chunkRows
	if hi > m.rows {
		hi = m.rows
	}
	return lo, hi
}

// ForEach streams every chunk through fn in row order (the ore.rowapply
// analogue).
func (m *Matrix) ForEach(fn func(lo int, chunk *la.Dense) error) error {
	for i, path := range m.paths {
		lo, hi := m.chunkBounds(i)
		c, err := readChunk(path, hi-lo, m.cols)
		if err != nil {
			return err
		}
		if err := fn(lo, c); err != nil {
			return err
		}
	}
	return nil
}

// Dense loads the whole matrix into memory (tests and small data only).
func (m *Matrix) Dense() (*la.Dense, error) {
	out := la.NewDense(m.rows, m.cols)
	err := m.ForEach(func(lo int, c *la.Dense) error {
		for i := 0; i < c.Rows(); i++ {
			copy(out.Row(lo+i), c.Row(i))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Mul computes m·x, producing a new chunked matrix with one streaming pass.
func (m *Matrix) Mul(x *la.Dense) (*Matrix, error) {
	if x.Rows() != m.cols {
		return nil, fmt.Errorf("chunk: Mul %dx%d · %dx%d", m.rows, m.cols, x.Rows(), x.Cols())
	}
	out := &Matrix{store: m.store, rows: m.rows, cols: x.Cols(), chunkRows: m.chunkRows}
	err := m.ForEach(func(lo int, c *la.Dense) error {
		path := m.store.newPath()
		out.paths = append(out.paths, path)
		return writeChunk(path, la.MatMul(c, x))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TMul computes mᵀ·x for an in-memory x with one streaming pass,
// accumulating the (small) cols×xCols output in memory.
func (m *Matrix) TMul(x *la.Dense) (*la.Dense, error) {
	if x.Rows() != m.rows {
		return nil, fmt.Errorf("chunk: TMul %dx%dᵀ · %dx%d", m.rows, m.cols, x.Rows(), x.Cols())
	}
	acc := la.NewDense(m.cols, x.Cols())
	err := m.ForEach(func(lo int, c *la.Dense) error {
		acc.AddInPlace(la.TMatMul(c, x.SliceRowsDense(lo, lo+c.Rows())))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// CrossProd computes mᵀ·m by accumulating per-chunk cross-products.
func (m *Matrix) CrossProd() (*la.Dense, error) {
	acc := la.NewDense(m.cols, m.cols)
	err := m.ForEach(func(lo int, c *la.Dense) error {
		acc.AddInPlace(c.CrossProd())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// Scale computes m·x element-wise into a new chunked matrix.
func (m *Matrix) Scale(x float64) (*Matrix, error) {
	out := &Matrix{store: m.store, rows: m.rows, cols: m.cols, chunkRows: m.chunkRows}
	err := m.ForEach(func(lo int, c *la.Dense) error {
		path := m.store.newPath()
		out.paths = append(out.paths, path)
		return writeChunk(path, c.ScaleDense(x))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ColSums aggregates column sums in one pass.
func (m *Matrix) ColSums() (*la.Dense, error) {
	acc := make([]float64, m.cols)
	err := m.ForEach(func(lo int, c *la.Dense) error {
		for j, v := range c.ColSumsVec() {
			acc[j] += v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return la.RowVector(acc), nil
}

// RowSums computes row sums into a chunked n×1 matrix.
func (m *Matrix) RowSums() (*Matrix, error) {
	out := &Matrix{store: m.store, rows: m.rows, cols: 1, chunkRows: m.chunkRows}
	err := m.ForEach(func(lo int, c *la.Dense) error {
		path := m.store.newPath()
		out.paths = append(out.paths, path)
		return writeChunk(path, c.RowSums())
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sum aggregates the grand total in one pass.
func (m *Matrix) Sum() (float64, error) {
	total := 0.0
	err := m.ForEach(func(lo int, c *la.Dense) error {
		total += c.SumAll()
		return nil
	})
	return total, err
}

// BytesOnDisk reports the matrix's storage footprint.
func (m *Matrix) BytesOnDisk() int64 { return int64(m.rows) * int64(m.cols) * 8 }
