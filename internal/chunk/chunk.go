// Package chunk is the out-of-core substitute for Oracle R Enterprise in
// the paper's §5.2.4 scalability experiments. ORE executes LA operators
// over an RDBMS-resident table by partitioning it into row chunks
// (ore.rowapply) and streaming operator code over the chunks; this package
// reproduces that execution model with a directory-backed chunk store, so
// that the materialized matrix pays per-iteration I/O plus FLOPs
// proportional to nS·(dS+dR) while the factorized version streams only the
// base tables (Tables 9 and 10).
//
// Execution is pipelined and parallel: every streaming pass runs as
//
//	reader ──bounded prefetch──▶ compute workers ──▶ ordered commit
//
// so the next chunks are read from disk while the current ones are being
// computed, and independent chunks proceed on all cores. Reductions are
// committed in chunk order, which makes parallel results bit-identical to
// the serial pass. See Exec, Serial, and Parallel.
//
// Chunk files are refcounted by their Store: Matrix.Free releases a
// matrix's chunks as soon as a pipeline no longer needs the intermediate,
// and Store.Close removes whatever is left, so long pipelines do not
// accumulate dead spill files.
//
// Where a shard's bytes live is pluggable (Backend): local spill
// directories by default, remote chunk servers (NewRemoteBackend, the
// morpheus-chunkd protocol) for multi-node sharding, or any mix of the
// two under one store (NewShardedStoreBackends).
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/la"
)

// ErrClosed is returned when allocating chunks in a closed store.
var ErrClosed = errors.New("chunk: store closed")

// ErrFreed is returned when streaming a matrix whose chunks were freed.
var ErrFreed = errors.New("chunk: use of freed matrix")

// Placement selects how a sharded store spreads chunk files across its
// directories.
type Placement int

const (
	// RoundRobin cycles chunk allocations across the shard directories in
	// order, balancing chunk counts.
	RoundRobin Placement = iota
	// LeastBytes places each new chunk on the shard currently holding the
	// fewest bytes (chunks that are allocated but not yet written count at
	// the store's average chunk size), so shards stay byte-balanced even
	// when matrices of very different widths share the store.
	LeastBytes
)

// ShardStat is one shard's accounted footprint and read-side I/O: what was
// placed there, what the passes actually fetched, and what zone maps let
// them avoid fetching.
type ShardStat struct {
	Dir    string // shard identity: directory path, or base URL for a remote shard
	Chunks int    // tracked chunk files placed on this shard
	Bytes  int64  // bytes of written chunk files currently tracked

	ChunksRead    int   // chunk blobs fetched from this shard
	BytesRead     int64 // stored bytes of those fetches (compressed size under a codec)
	ChunksSkipped int   // reads avoided because the shard's zone map proved the chunk all-zero
	BytesSkipped  int64 // stored bytes those skipped reads would have fetched
}

// shard is one chunk backend (a spill directory or a remote chunk server)
// plus its placement accounting.
type shard struct {
	backend Backend
	bytes   int64 // written bytes currently tracked on this shard
	chunks  int   // tracked chunks (written or pending)
	pending int   // allocated but not yet written

	chunksRead    int   // blobs fetched by passes
	bytesRead     int64 // stored bytes of those fetches
	chunksSkipped int   // reads avoided via the zone map
	bytesSkipped  int64 // stored bytes of the avoided reads
}

// chunkInfo is the store's bookkeeping for one chunk file.
type chunkInfo struct {
	refs    int
	shard   int
	written bool  // recordWrite ran (distinguishes a 0-byte file from no file)
	bytes   int64 // actual file size once written
}

// Store manages chunks across one or more shard backends — local spill
// directories, remote chunk servers, or a mix (NewShardedStoreBackends).
// Chunk files are refcounted: matrices register their chunks at creation,
// Free releases them (files are deleted when the last referencing matrix
// is freed), and Close deletes every file the store still tracks, across
// all shards. A Store is safe for concurrent use.
type Store struct {
	policy Placement

	mu      sync.Mutex
	shards  []shard
	next    int
	allocs  int // round-robin cursor
	refs    map[string]*chunkInfo
	orphans int // stale spill files reaped at startup
	closed  bool
}

// NewStore creates (if needed) and wraps a single-directory chunk store —
// NewShardedStore with one shard.
func NewStore(dir string) (*Store, error) {
	return NewShardedStore([]string{dir}, RoundRobin)
}

// NewShardedStore creates (if needed) the shard directories and wraps them
// as one chunk store: every chunk allocation is placed on a shard by the
// policy, and spill passes write to different shards concurrently (one
// write-behind queue per shard). Point the directories at different disks
// or volumes to spread out-of-core I/O across spindles.
//
// Any stale spill files (chunk-*.bin, plus *.tmp debris of interrupted
// spills) already present in a shard directory — left by a crashed
// previous run — are reaped before the store is returned; OrphansReaped
// reports how many.
func NewShardedStore(dirs []string, policy Placement) (*Store, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("chunk: sharded store needs at least one directory")
	}
	backends := make([]Backend, 0, len(dirs))
	for _, dir := range dirs {
		b, err := NewDirBackend(dir)
		if err != nil {
			return nil, err
		}
		backends = append(backends, b)
	}
	return NewShardedStoreBackends(backends, policy)
}

// NewShardedStoreBackends wraps arbitrary chunk backends as one store, so
// local spill directories and remote chunk servers (NewRemoteBackend) can
// shard one store's chunks between them. Placement policies, per-shard
// write-behind queues, the refcounted chunk lifecycle, and ShardStats
// accounting are backend-agnostic and run unchanged.
//
// Each backend's stale blobs from a crashed previous run are reaped before
// the store is returned; OrphansReaped reports the total.
func NewShardedStoreBackends(backends []Backend, policy Placement) (*Store, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("chunk: sharded store needs at least one backend")
	}
	if policy != RoundRobin && policy != LeastBytes {
		return nil, fmt.Errorf("chunk: unknown placement policy %d", policy)
	}
	seen := make(map[string]bool, len(backends))
	s := &Store{policy: policy, refs: make(map[string]*chunkInfo)}
	for _, b := range backends {
		if seen[b.Name()] {
			return nil, fmt.Errorf("chunk: shard %q listed twice", b.Name())
		}
		seen[b.Name()] = true
		reaped, err := b.Reap()
		if err != nil {
			return nil, err
		}
		s.orphans += reaped
		s.shards = append(s.shards, shard{backend: b})
	}
	return s, nil
}

// OrphansReaped reports how many stale spill files from previous runs the
// store removed when it was opened.
func (s *Store) OrphansReaped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.orphans
}

// NumShards reports the number of shard directories.
func (s *Store) NumShards() int { return len(s.shards) }

// pickShard chooses the shard for the next allocation. Caller holds mu.
func (s *Store) pickShard() int {
	if s.policy == RoundRobin || len(s.shards) == 1 {
		return s.allocs % len(s.shards)
	}
	// LeastBytes: score pending (not-yet-written) chunks at the store's
	// average written chunk size so a burst of allocations spreads out
	// instead of piling onto whichever shard was lightest at alloc time.
	var written int64
	var nWritten int
	for i := range s.shards {
		written += s.shards[i].bytes
		nWritten += s.shards[i].chunks - s.shards[i].pending
	}
	provisional := int64(1)
	if nWritten > 0 && written/int64(nWritten) > 0 {
		provisional = written / int64(nWritten)
	}
	best, bestScore := 0, int64(math.MaxInt64)
	for i := range s.shards {
		score := s.shards[i].bytes + int64(s.shards[i].pending)*provisional
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// alloc reserves n fresh chunk keys, each with an initial refcount of 1,
// placing each on a shard by the store's policy. Keys are unique across
// the whole store (one counter), so a key also names a unique blob within
// whichever backend it lands on.
func (s *Store) alloc(n int) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	paths := make([]string, n)
	for i := range paths {
		s.next++
		si := s.pickShard()
		s.allocs++
		p := fmt.Sprintf("chunk-%06d.bin", s.next)
		s.refs[p] = &chunkInfo{refs: 1, shard: si}
		s.shards[si].chunks++
		s.shards[si].pending++
		paths[i] = p
	}
	return paths, nil
}

// backendFor resolves the shard backend a tracked chunk key was placed on.
// An untracked key — already freed, or foreign to this store — surfaces as
// an error instead of a panic or a confusing missing-file read.
func (s *Store) backendFor(key string) (Backend, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.refs[key]
	if !ok {
		return nil, fmt.Errorf("chunk: %s is not tracked by this store (freed or foreign)", key)
	}
	return s.shards[info.shard].backend, nil
}

// execBackendFor resolves the shard index and worker capability of a
// tracked chunk key; (-1, nil) when the key's shard is passive storage or
// the key is untracked (the read path surfaces the tracking error).
func (s *Store) execBackendFor(key string) (int, ExecBackend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.refs[key]
	if !ok {
		return -1, nil
	}
	if eb, ok := s.shards[info.shard].backend.(ExecBackend); ok {
		return info.shard, eb
	}
	return -1, nil
}

// shardIndex reports which shard a chunk path was placed on (-1 when the
// path is no longer tracked).
func (s *Store) shardIndex(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if info, ok := s.refs[path]; ok {
		return info.shard
	}
	return -1
}

// ExecShards reports how many shard backends advertise the worker
// capability (ExecBackend) — the fact a planner consults before asking for
// Exec{Pushdown: true}. A capable backend can still refuse at runtime
// (older chunkd without /exec), in which case the pass degrades to the
// passive read path chunk by chunk.
func (s *Store) ExecShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i := range s.shards {
		if _, ok := s.shards[i].backend.(ExecBackend); ok {
			n++
		}
	}
	return n
}

// readOrder computes the placement-aware read order for a pipelined pass
// over keys: on a multi-shard store the reader interleaves chunks
// round-robin across shards within admission-bound windows (see
// interleavedOrder), so all spindles/nodes stream concurrently. Returns
// nil — plain chunk order — for single-shard stores and for the serial
// reference execution, whose strict read-compute-commit loop is pinned by
// the benchmarks.
func (s *Store) readOrder(keys []string, ex Exec) []int {
	ex = ex.normalized()
	if ex.Workers == 1 && ex.Prefetch == 0 {
		return nil
	}
	s.mu.Lock()
	if len(s.shards) < 2 {
		s.mu.Unlock()
		return nil
	}
	shardOf := make([]int, len(keys))
	for i, k := range keys {
		if info, ok := s.refs[k]; ok {
			shardOf[i] = info.shard
		}
	}
	numShards := len(s.shards)
	s.mu.Unlock()
	return interleavedOrder(shardOf, numShards, ex.Workers+ex.Prefetch+1)
}

// recordWrite attributes a successfully written chunk file's size to its
// shard. Written bytes drive the LeastBytes policy and the per-shard stats.
func (s *Store) recordWrite(path string, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.refs[path]
	if !ok || info.written {
		return
	}
	info.written = true
	info.bytes = n
	s.shards[info.shard].pending--
	s.shards[info.shard].bytes += n
}

// retain increments the refcount of every path.
func (s *Store) retain(paths []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range paths {
		if info, ok := s.refs[p]; ok {
			info.refs++
		}
	}
}

// removal is one untracked chunk blob awaiting backend deletion. Backend
// removes run outside the store mutex — a Remove may now be a network
// call (remote shards), and holding the lock across it would stall every
// alloc, read, and spill on the healthy shards. Keys are never reused
// (one monotone counter), so deleting after unlock cannot collide with a
// fresh allocation.
type removal struct {
	backend Backend
	key     string
}

// removeAll performs the collected backend deletions — concurrently
// across backends, since each may be a different disk or node — and
// keeps the first error. After a backend's first failed Remove its
// remaining keys are skipped: a dead remote shard should cost one
// round of bounded retries per Free, not one per chunk, and whatever
// blobs it still holds are reaped when the shard is next adopted.
func removeAll(removals []removal) error {
	perBackend := make(map[Backend][]string)
	for _, r := range removals {
		perBackend[r.backend] = append(perBackend[r.backend], r.key)
	}
	errs := make(chan error, len(perBackend))
	for b, keys := range perBackend {
		go func(b Backend, keys []string) {
			for _, k := range keys {
				if err := b.Remove(k); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(b, keys)
	}
	var firstErr error
	for range perBackend {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// release decrements refcounts and deletes files that reach zero. Missing
// files (e.g. a failed write that never created one) are not errors.
func (s *Store) release(paths []string) error {
	s.mu.Lock()
	var removals []removal
	for _, p := range paths {
		info, ok := s.refs[p]
		if !ok {
			continue
		}
		if info.refs > 1 {
			info.refs--
			continue
		}
		delete(s.refs, p)
		sh := &s.shards[info.shard]
		sh.chunks--
		if info.written {
			sh.bytes -= info.bytes
		} else {
			sh.pending--
		}
		removals = append(removals, removal{backend: sh.backend, key: p})
	}
	s.mu.Unlock()
	return removeAll(removals)
}

// LiveChunks reports how many chunk files the store currently tracks.
func (s *Store) LiveChunks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.refs)
}

// BytesOnDisk reports the total written bytes the store currently tracks
// across all shards.
func (s *Store) BytesOnDisk() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b int64
	for i := range s.shards {
		b += s.shards[i].bytes
	}
	return b
}

// ShardStats reports each shard's tracked chunk count and bytes plus its
// read-side I/O accounting (fetches and zone-map skips).
func (s *Store) ShardStats() []ShardStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardStat, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		out[i] = ShardStat{
			Dir: sh.backend.Name(), Chunks: sh.chunks, Bytes: sh.bytes,
			ChunksRead: sh.chunksRead, BytesRead: sh.bytesRead,
			ChunksSkipped: sh.chunksSkipped, BytesSkipped: sh.bytesSkipped,
		}
	}
	return out
}

// IOStats aggregates the store's read-side accounting across shards.
type IOStats struct {
	ChunksRead    int   `json:"chunks_read"`              // blobs fetched from shard backends
	BytesRead     int64 `json:"bytes_read"`               // stored bytes of those fetches (compressed size under a codec)
	ChunksSkipped int   `json:"chunks_skipped,omitempty"` // reads avoided via zone maps
	BytesSkipped  int64 `json:"bytes_skipped,omitempty"`  // stored bytes of the avoided reads
	BytesOnWire   int64 `json:"bytes_on_wire,omitempty"`  // chunk payload bytes that crossed remote-shard connections
}

// IOStats reports what the store's passes actually moved: blobs fetched
// (at their stored size, so compression shows up as fewer bytes), reads
// avoided because a zone map proved the chunk all-zero, and — for stores
// with remote shards anywhere in their wrapper chains — the chunk payload
// bytes that crossed the network.
func (s *Store) IOStats() IOStats {
	s.mu.Lock()
	var out IOStats
	backends := make([]Backend, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		out.ChunksRead += sh.chunksRead
		out.BytesRead += sh.bytesRead
		out.ChunksSkipped += sh.chunksSkipped
		out.BytesSkipped += sh.bytesSkipped
		backends[i] = sh.backend
	}
	s.mu.Unlock()
	for _, b := range backends {
		if m, ok := wireMeterOf(b); ok {
			out.BytesOnWire += m.BytesOnWire()
		}
	}
	return out
}

// ZoneMapShards reports how many shard backends record zone maps — the
// structural fact the planner's placement axis reads before advertising
// skip-aware execution in its Decision.
func (s *Store) ZoneMapShards() int {
	s.mu.Lock()
	backends := make([]Backend, len(s.shards))
	for i := range s.shards {
		backends[i] = s.shards[i].backend
	}
	s.mu.Unlock()
	n := 0
	for _, b := range backends {
		if _, ok := zoneMapperOf(b); ok {
			n++
		}
	}
	return n
}

// Close deletes every chunk file the store still tracks — across all
// shards — and marks the store closed; subsequent chunk allocations fail
// with ErrClosed. The directories themselves are left in place (the caller
// created them).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var removals []removal
	for p, info := range s.refs {
		removals = append(removals, removal{backend: s.shards[info.shard].backend, key: p})
	}
	s.refs = make(map[string]*chunkInfo)
	for i := range s.shards {
		s.shards[i] = shard{backend: s.shards[i].backend}
	}
	s.mu.Unlock()
	return removeAll(removals)
}

// Matrix is a dense matrix partitioned into fixed-height row chunks, each
// persisted as a raw little-endian float64 file. Reads always go to disk:
// the matrix is genuinely out-of-core.
type Matrix struct {
	store      *Store
	rows, cols int
	chunkRows  int
	paths      []string
	freed      bool
}

// Rows reports the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NumChunks reports the chunk count.
func (m *Matrix) NumChunks() int { return len(m.paths) }

// ChunkRows reports the chunk height.
func (m *Matrix) ChunkRows() int { return m.chunkRows }

// Store returns the chunk store backing this matrix.
func (m *Matrix) Store() *Store { return m.store }

// Free releases the matrix's chunk files (deleting each once no other
// Retain-ed handle references it). Freeing is idempotent; streaming a
// freed matrix fails with ErrFreed. Free is not safe to race with an
// in-flight pipeline over the same matrix.
func (m *Matrix) Free() error {
	if m == nil || m.freed {
		return nil
	}
	m.freed = true
	return m.store.release(m.paths)
}

// Retain returns a new handle sharing this matrix's chunk files. The
// files are deleted only after every handle (the original and all
// retained ones) has been freed, which lets pipelines hand intermediates
// to consumers with independent lifetimes. Retaining an already-freed
// matrix yields a handle that is itself freed (its files are gone), so
// streaming it reports ErrFreed instead of a confusing missing-file
// error.
func (m *Matrix) Retain() *Matrix {
	if !m.freed {
		m.store.retain(m.paths)
	}
	return &Matrix{store: m.store, rows: m.rows, cols: m.cols, chunkRows: m.chunkRows, paths: m.paths, freed: m.freed}
}

func numChunks(rows, chunkRows int) int {
	return (rows + chunkRows - 1) / chunkRows
}

// FromDense partitions d into chunks of chunkRows rows and spills them.
func FromDense(store *Store, d *la.Dense, chunkRows int) (*Matrix, error) {
	if chunkRows <= 0 {
		return nil, fmt.Errorf("chunk: chunkRows must be positive, got %d", chunkRows)
	}
	return Build(store, d.Rows(), d.Cols(), chunkRows, func(lo, hi int, dst *la.Dense) {
		copy(dst.Data(), d.Data()[lo*d.Cols():hi*d.Cols()])
	})
}

// RowSource is a row-addressable matrix view that can be streamed into
// chunked storage without ever materializing as a whole — the seam
// through which epoch snapshots (base table + copy-on-write overlay)
// reach the out-of-core engine. Implementations must be safe for
// concurrent ReadRow calls.
type RowSource interface {
	Rows() int
	Cols() int
	// ReadRow copies row i into dst, which has length Cols().
	ReadRow(i int, dst []float64)
}

// FromRowSource streams src into chunks of chunkRows rows and spills
// them, one row at a time — only one chunk buffer is resident. src is
// read exactly once per row, in ascending row order.
func FromRowSource(store *Store, src RowSource, chunkRows int) (*Matrix, error) {
	if chunkRows <= 0 {
		return nil, fmt.Errorf("chunk: chunkRows must be positive, got %d", chunkRows)
	}
	cols := src.Cols()
	return Build(store, src.Rows(), cols, chunkRows, func(lo, hi int, dst *la.Dense) {
		for i := lo; i < hi; i++ {
			src.ReadRow(i, dst.Row(i-lo))
		}
	})
}

// Build streams rows from gen (called once per chunk with the half-open row
// range) directly to disk, so matrices larger than memory can be created.
// On failure every chunk written so far is removed.
func Build(store *Store, rows, cols, chunkRows int, gen func(lo, hi int, dst *la.Dense)) (*Matrix, error) {
	if chunkRows <= 0 {
		return nil, fmt.Errorf("chunk: chunkRows must be positive, got %d", chunkRows)
	}
	paths, err := store.alloc(numChunks(rows, chunkRows))
	if err != nil {
		return nil, err
	}
	m := &Matrix{store: store, rows: rows, cols: cols, chunkRows: chunkRows, paths: paths}
	buf := la.NewDense(min(chunkRows, rows), cols)
	for ci := range paths {
		lo, hi := m.chunkBounds(ci)
		dst := buf
		if hi-lo != buf.Rows() {
			dst = la.NewDense(hi-lo, cols)
		} else {
			clear(dst.Data())
		}
		gen(lo, hi, dst)
		if err := store.writeChunkFile(paths[ci], dst); err != nil {
			store.release(paths)
			return nil, err
		}
	}
	return m, nil
}

// writeChunkFile encodes one dense chunk, stores it on the key's shard
// backend — annotated with its zone map when the backend records them, at
// its compressed size when the backend compresses — and attributes the
// stored size to that shard on success.
func (s *Store) writeChunkFile(key string, d *la.Dense) error {
	b, err := s.backendFor(key)
	if err != nil {
		return err
	}
	stored, err := writeThrough(b, key, encodeDenseChunk(d), func() ZoneMap { return denseZoneMap(d) })
	if err != nil {
		return err
	}
	s.recordWrite(key, stored)
	return nil
}

// readChunkBlob fetches key's blob from its shard backend — unless the
// shard's zone map proves the chunk all-zero, in which case the read is
// skipped entirely (skipped=true, no backend touched) and the caller
// synthesizes the zero chunk the decode would have produced. Fetches and
// skips feed the per-shard I/O accounting at the chunk's stored size, so
// bytes_read reflects actual (possibly compressed) I/O and bytes_skipped
// reflects what skipping avoided.
func (s *Store) readChunkBlob(key string) (raw []byte, skipped bool, err error) {
	s.mu.Lock()
	info, ok := s.refs[key]
	if !ok {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("chunk: %s is not tracked by this store (freed or foreign)", key)
	}
	si := info.shard
	stored := info.bytes
	b := s.shards[si].backend
	s.mu.Unlock()
	if zb, ok := zoneMapperOf(b); ok {
		if zm, ok := zb.ZoneMap(key); ok && zm.AllZero {
			s.mu.Lock()
			s.shards[si].chunksSkipped++
			s.shards[si].bytesSkipped += stored
			s.mu.Unlock()
			return nil, true, nil
		}
	}
	raw, err = b.ReadChunk(key)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	s.shards[si].chunksRead++
	s.shards[si].bytesRead += stored
	s.mu.Unlock()
	return raw, false, nil
}

// allZeroChunk reports whether key's shard zone map proves the chunk
// all-zero — the fact runOp consults to commit an identity partial without
// scheduling any read. Never touches chunk bytes.
func (s *Store) allZeroChunk(key string) bool {
	s.mu.Lock()
	info, ok := s.refs[key]
	if !ok {
		s.mu.Unlock()
		return false
	}
	b := s.shards[info.shard].backend
	s.mu.Unlock()
	zb, ok := zoneMapperOf(b)
	if !ok {
		return false
	}
	zm, ok := zb.ZoneMap(key)
	return ok && zm.AllZero
}

// noteSkip records a zone-map skip for a chunk whose read was elided above
// the blob layer (runOp's identity-partial shortcut).
func (s *Store) noteSkip(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.refs[key]
	if !ok {
		return
	}
	s.shards[info.shard].chunksSkipped++
	s.shards[info.shard].bytesSkipped += info.bytes
}

// readDenseChunk fetches key from its shard backend and decodes it as a
// rows×cols dense chunk; a zone-map-skipped read synthesizes the zero
// chunk, which is bit-identical to what decoding would have produced
// (AllZero admits only +0.0 cells).
func (s *Store) readDenseChunk(key string, rows, cols int) (*la.Dense, error) {
	raw, skipped, err := s.readChunkBlob(key)
	if err != nil {
		return nil, err
	}
	if skipped {
		return la.NewDense(rows, cols), nil
	}
	return decodeDenseChunk(key, raw, rows, cols)
}

// encodeDenseChunk serializes d as raw little-endian float64 rows.
func encodeDenseChunk(d *la.Dense) []byte {
	data := d.Data()
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return raw
}

// decodeDenseChunk validates the blob length against the expected shape (a
// truncated or foreign blob surfaces as an error, never garbage values) and
// decodes it.
func decodeDenseChunk(key string, raw []byte, rows, cols int) (*la.Dense, error) {
	if len(raw) != rows*cols*8 {
		return nil, fmt.Errorf("chunk: %s has %d bytes, want %d", key, len(raw), rows*cols*8)
	}
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return la.NewDenseData(rows, cols, data), nil
}

func (m *Matrix) chunkBounds(i int) (lo, hi int) {
	lo = i * m.chunkRows
	hi = lo + m.chunkRows
	if hi > m.rows {
		hi = m.rows
	}
	return lo, hi
}

func (m *Matrix) readAt(ci int) (*la.Dense, error) {
	lo, hi := m.chunkBounds(ci)
	return m.store.readDenseChunk(m.paths[ci], hi-lo, m.cols)
}

// Chunk decodes chunk ci and returns it with its first-row offset. It is
// safe to call concurrently (each call reads its own chunk), which lets a
// pipeline over one matrix fetch the aligned chunk of another — the
// two-operand pattern the streamed GNMF W-passes use, mirroring
// IntVector.Keys for key columns.
func (m *Matrix) Chunk(ci int) (lo int, c *la.Dense, err error) {
	if m.freed {
		return 0, nil, ErrFreed
	}
	lo, _ = m.chunkBounds(ci)
	c, err = m.readAt(ci)
	return lo, c, err
}

// pipeline runs the chunk pipeline over this matrix; on a multi-shard
// store the reads are interleaved across shards (Store.readOrder).
func (m *Matrix) pipeline(ex Exec, mapFn func(ci, lo int, c *la.Dense) (any, error), commit func(ci int, v any) error) error {
	if m.freed {
		return ErrFreed
	}
	return runPipelineOrder(len(m.paths), ex, m.store.readOrder(m.paths, ex),
		m.readAt,
		func(ci int, c *la.Dense) (any, error) {
			lo, _ := m.chunkBounds(ci)
			return mapFn(ci, lo, c)
		},
		commit)
}

// ForEach streams every chunk through fn in row order (the ore.rowapply
// analogue). The next chunk is prefetched from disk while fn runs on the
// current one, but fn itself is never called concurrently.
func (m *Matrix) ForEach(fn func(lo int, chunk *la.Dense) error) error {
	return m.ForEachExec(Exec{Workers: 1, Prefetch: 2}, fn)
}

// ForEachExec streams every chunk through fn under the given execution.
// With ex.Workers > 1, fn is called concurrently from multiple goroutines
// and chunk order is unspecified; fn must be safe for concurrent use.
// Use MapChunks when per-chunk results must be combined in chunk order.
func (m *Matrix) ForEachExec(ex Exec, fn func(lo int, chunk *la.Dense) error) error {
	return m.pipeline(ex, func(ci, lo int, c *la.Dense) (any, error) {
		return nil, fn(lo, c)
	}, nil)
}

// MapChunks streams every chunk through mapFn on ex.Workers goroutines and
// hands the results to commit strictly in chunk order on the calling
// goroutine. Reductions accumulated in commit are therefore bit-identical
// to a serial pass, independent of worker scheduling. mapFn receives the
// chunk index and the first-row offset.
func (m *Matrix) MapChunks(ex Exec, mapFn func(ci, lo int, c *la.Dense) (any, error), commit func(ci int, v any) error) error {
	return m.pipeline(ex, mapFn, commit)
}

// MapChunksToMatrix streams every chunk through f and spills the per-chunk
// results (which must all have outCols columns and preserve the row count)
// as a new chunked matrix. Under a pipelined execution the spills go
// through the dedicated write-behind stage, so output I/O overlaps compute;
// output chunk files keep the input's chunk order and are byte-identical to
// a serial pass. On failure every output chunk written so far is removed
// and no matrix is registered.
func (m *Matrix) MapChunksToMatrix(ex Exec, outCols int, f func(ci, lo int, c *la.Dense) (*la.Dense, error)) (*Matrix, error) {
	if m.freed {
		return nil, ErrFreed
	}
	sp, err := newOutputSpiller(m.store, len(m.paths), ex)
	if err != nil {
		return nil, err
	}
	err = m.pipeline(ex, func(ci, lo int, c *la.Dense) (any, error) {
		out, err := f(ci, lo, c)
		if err != nil {
			return nil, err
		}
		if out.Rows() != c.Rows() || out.Cols() != outCols {
			return nil, fmt.Errorf("chunk: mapped chunk is %dx%d, want %dx%d", out.Rows(), out.Cols(), c.Rows(), outCols)
		}
		return nil, sp.emit(ci, out)
	}, nil)
	paths, err := sp.finish(err)
	if err != nil {
		return nil, err
	}
	return &Matrix{store: m.store, rows: m.rows, cols: outCols, chunkRows: m.chunkRows, paths: paths}, nil
}

// Stream implements Mat: the chunk pipeline with each decoded chunk
// delivered as an la.Mat.
func (m *Matrix) Stream(ex Exec, mapFn func(ci, lo int, c la.Mat) (any, error), commit func(ci int, v any) error) error {
	return m.pipeline(ex, func(ci, lo int, c *la.Dense) (any, error) {
		return mapFn(ci, lo, c)
	}, commit)
}

// StreamOp implements Mat: it runs a registered op over every chunk and
// commits the partials in chunk order. With ex.Pushdown, chunks held by
// exec-capable remote shards are mapped in place by the shard's worker
// and only the partials travel back; results are bit-identical with the
// all-local run either way.
func (m *Matrix) StreamOp(ex Exec, op Op, commit func(ci int, v any) error) error {
	if m.freed {
		return ErrFreed
	}
	src := opSource{
		store: m.store,
		keys:  m.paths,
		kind:  chunkKindDense,
		cols:  m.cols,
		rowsAt: func(ci int) int {
			lo, hi := m.chunkBounds(ci)
			return hi - lo
		},
		read: func(ci int) (la.Mat, error) { return m.readAt(ci) },
	}
	return src.runOp(ex, op, commit)
}

// StreamToMatrix implements Mat: MapChunksToMatrix with the chunk exposed
// as an la.Mat.
func (m *Matrix) StreamToMatrix(ex Exec, outCols int, f func(ci, lo int, c la.Mat) (*la.Dense, error)) (*Matrix, error) {
	return m.MapChunksToMatrix(ex, outCols, func(ci, lo int, c *la.Dense) (*la.Dense, error) {
		return f(ci, lo, c)
	})
}

// Dense loads the whole matrix into memory (tests and small data only).
func (m *Matrix) Dense() (*la.Dense, error) {
	out := la.NewDense(m.rows, m.cols)
	err := m.ForEach(func(lo int, c *la.Dense) error {
		copy(out.Data()[lo*m.cols:], c.Data())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Mul computes m·x, producing a new chunked matrix with one parallel
// streaming pass.
func (m *Matrix) Mul(x *la.Dense) (*Matrix, error) { return m.MulExec(Parallel(), x) }

// MulExec computes m·x under the given execution.
func (m *Matrix) MulExec(ex Exec, x *la.Dense) (*Matrix, error) {
	if x.Rows() != m.cols {
		return nil, fmt.Errorf("chunk: Mul %dx%d · %dx%d", m.rows, m.cols, x.Rows(), x.Cols())
	}
	return m.MapChunksToMatrix(ex, x.Cols(), func(ci, lo int, c *la.Dense) (*la.Dense, error) {
		return la.MatMul(c, x), nil
	})
}

// TMul computes mᵀ·x for an in-memory x with one parallel streaming pass,
// accumulating the (small) cols×xCols output in memory.
func (m *Matrix) TMul(x *la.Dense) (*la.Dense, error) { return m.TMulExec(Parallel(), x) }

// TMulExec computes mᵀ·x under the given execution.
func (m *Matrix) TMulExec(ex Exec, x *la.Dense) (*la.Dense, error) {
	if x.Rows() != m.rows {
		return nil, fmt.Errorf("chunk: TMul %dx%dᵀ · %dx%d", m.rows, m.cols, x.Rows(), x.Cols())
	}
	acc := la.NewDense(m.cols, x.Cols())
	err := m.pipeline(ex, func(ci, lo int, c *la.Dense) (any, error) {
		return la.TMatMul(c, x.SliceRowsDense(lo, lo+c.Rows())), nil
	}, func(ci int, v any) error {
		acc.AddInPlace(v.(*la.Dense))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// CrossProd computes mᵀ·m by accumulating per-chunk cross-products.
func (m *Matrix) CrossProd() (*la.Dense, error) { return m.CrossProdExec(Parallel()) }

// CrossProdExec computes mᵀ·m under the given execution. The per-chunk
// cross-products run through the registered op, so with ex.Pushdown they
// execute on the shard holding each chunk.
func (m *Matrix) CrossProdExec(ex Exec) (*la.Dense, error) {
	acc := la.NewDense(m.cols, m.cols)
	err := m.StreamOp(ex, OpCrossProd(), func(ci int, v any) error {
		acc.AddInPlace(v.(*la.Dense))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// Scale computes m·x element-wise into a new chunked matrix.
func (m *Matrix) Scale(x float64) (*Matrix, error) { return m.ScaleExec(Parallel(), x) }

// ScaleExec computes m·x element-wise under the given execution.
func (m *Matrix) ScaleExec(ex Exec, x float64) (*Matrix, error) {
	return m.MapChunksToMatrix(ex, m.cols, func(ci, lo int, c *la.Dense) (*la.Dense, error) {
		return c.ScaleDense(x), nil
	})
}

// ColSums aggregates column sums in one pass.
func (m *Matrix) ColSums() (*la.Dense, error) { return m.ColSumsExec(Parallel()) }

// ColSumsExec aggregates column sums under the given execution, via the
// registered op (pushdown-capable).
func (m *Matrix) ColSumsExec(ex Exec) (*la.Dense, error) {
	acc := la.NewDense(1, m.cols)
	err := m.StreamOp(ex, OpColSums(), func(ci int, v any) error {
		acc.AddInPlace(v.(*la.Dense))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// RowSums computes row sums into a chunked n×1 matrix.
func (m *Matrix) RowSums() (*Matrix, error) { return m.RowSumsExec(Parallel()) }

// RowSumsExec computes row sums under the given execution.
func (m *Matrix) RowSumsExec(ex Exec) (*Matrix, error) {
	return m.MapChunksToMatrix(ex, 1, func(ci, lo int, c *la.Dense) (*la.Dense, error) {
		return c.RowSums(), nil
	})
}

// Sum aggregates the grand total in one pass.
func (m *Matrix) Sum() (float64, error) { return m.SumExec(Parallel()) }

// SumExec aggregates the grand total under the given execution, via the
// registered op (pushdown-capable).
func (m *Matrix) SumExec(ex Exec) (float64, error) {
	total := 0.0
	err := m.StreamOp(ex, OpSum(), func(ci int, v any) error {
		total += v.(float64)
		return nil
	})
	return total, err
}

// BytesOnDisk reports the matrix's storage footprint as the store tracks
// it: the bytes actually written for its chunks — the compressed size when
// a codec wrapper is in the shard's chain — not a shape-derived estimate.
// Zero once the matrix has been freed (its files are gone).
func (m *Matrix) BytesOnDisk() int64 { return m.store.trackedBytes(m.paths) }

// trackedBytes sums the recorded written sizes of the given chunk keys;
// untracked (freed) or not-yet-written keys contribute nothing.
func (s *Store) trackedBytes(paths []string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b int64
	for _, p := range paths {
		if info, ok := s.refs[p]; ok && info.written {
			b += info.bytes
		}
	}
	return b
}
