package chunk

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/la"
	"repro/internal/ml"
)

// TestChunkedKMeansMatchesInMemory pins the streamed k-means to ml.KMeans
// with the same seed: identical distance expansion and tie-breaking, so
// assignments agree exactly and centroids to summation-order tolerance.
func TestChunkedKMeansMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	store := testStore(t)
	d := randDense(rng, 220, 6)
	m, err := FromDense(store, d, 32)
	if err != nil {
		t.Fatal(err)
	}
	const k, iters, seed = 5, 6, 7
	ref, err := ml.KMeans(d, k, ml.Options{Iters: iters, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	got, err := KMeansExec(Parallel(), m, k, iters, seed)
	if err != nil {
		t.Fatal(err)
	}
	if diff := la.MaxAbsDiff(got.Centroids, ref.Centroids); diff > 1e-8 {
		t.Fatalf("streamed centroids deviate from in-memory by %g", diff)
	}
	assignD, err := got.Assign.Dense()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ref.Assign {
		if int(assignD.At(i, 0)) != want {
			t.Fatalf("row %d assigned to %d, in-memory %d", i, int(assignD.At(i, 0)), want)
		}
	}
	if rel := math.Abs(got.Objective-ref.Objective) / math.Max(math.Abs(ref.Objective), 1); rel > 1e-8 {
		t.Fatalf("objective %g deviates from in-memory %g", got.Objective, ref.Objective)
	}
	if got.BytesRead == 0 {
		t.Fatal("streamed k-means reported zero bytes read")
	}
	if err := got.Assign.Free(); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedKMeansSerialParallelIdentical: ordered-commit centroid
// reductions keep the pass bit-deterministic across executions.
func TestChunkedKMeansSerialParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	store := testStore(t)
	d := randDense(rng, 150, 5)
	m, err := FromDense(store, d, 16)
	if err != nil {
		t.Fatal(err)
	}
	const k, iters, seed = 4, 5, 3
	serial, err := KMeansExec(Serial, m, k, iters, seed)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := KMeansExec(parExec, m, k, iters, seed)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(serial.Centroids, parallel.Centroids) != 0 {
		t.Fatal("parallel centroids not bit-identical to serial")
	}
	if serial.Objective != parallel.Objective {
		t.Fatal("parallel objective not bit-identical to serial")
	}
	sA, err := serial.Assign.Dense()
	if err != nil {
		t.Fatal(err)
	}
	pA, err := parallel.Assign.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(sA, pA) != 0 {
		t.Fatal("parallel assignments not bit-identical to serial")
	}
}

// TestChunkedKMeansSparse runs streamed k-means over CSR chunks — the
// one-hot shapes — and pins it to ml.KMeans on the same CSR matrix.
func TestChunkedKMeansSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	store := testStore(t)
	c := oneHotCSR(rng, 180, 3, 4)
	m, err := FromCSR(store, c, 32)
	if err != nil {
		t.Fatal(err)
	}
	const k, iters, seed = 4, 4, 9
	ref, err := ml.KMeans(c, k, ml.Options{Iters: iters, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	got, err := KMeansExec(Parallel(), m, k, iters, seed)
	if err != nil {
		t.Fatal(err)
	}
	if diff := la.MaxAbsDiff(got.Centroids, ref.Centroids); diff > 1e-8 {
		t.Fatalf("sparse streamed centroids deviate by %g", diff)
	}
}

// TestChunkedKMeansValidation rejects bad arguments.
func TestChunkedKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	store := testStore(t)
	m, err := FromDense(store, randDense(rng, 10, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := KMeansExec(Parallel(), m, 0, 3, 1); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := KMeansExec(Parallel(), m, 11, 3, 1); err == nil {
		t.Fatal("accepted k>n")
	}
	if _, err := KMeansExec(Parallel(), m, 2, 0, 1); err == nil {
		t.Fatal("accepted iters=0")
	}
}

// BenchmarkChunkedKMeans streams k-means over a table several times larger
// than the configured memory budget: AutoRows sizes the chunks so the
// pipeline keeps at most ~1 MiB of decoded chunks resident while the table
// holds ~5 MiB.
func BenchmarkChunkedKMeans(b *testing.B) {
	dir, err := os.MkdirTemp("", "morpheus-kmeans-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := NewStore(filepath.Join(dir, "chunks"))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()

	const (
		n, d      = 20_000, 32
		k, iters  = 8, 2
		memBudget = 1 << 20 // 1 MiB of resident decoded chunks
	)
	ex := Parallel()
	chunkRows := AutoRows(memBudget, d, ex.Workers, ex.Prefetch)
	rng := rand.New(rand.NewSource(1))
	m, err := Build(store, n, d, chunkRows, func(lo, hi int, dst *la.Dense) {
		for i := range dst.Data() {
			dst.Data()[i] = rng.NormFloat64()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	if m.BytesOnDisk() <= memBudget {
		b.Fatalf("table is %d bytes, not larger than the %d budget", m.BytesOnDisk(), memBudget)
	}
	b.SetBytes(m.BytesOnDisk() * (iters + 1)) // one read pass per iteration + assignment pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := KMeansExec(ex, m, k, iters, 7)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Assign.Free(); err != nil {
			b.Fatal(err)
		}
	}
}
