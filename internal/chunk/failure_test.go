package chunk

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corruptOneChunk truncates the first chunk file in the store directory.
func corruptOneChunk(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "chunk-") {
			p := filepath.Join(dir, e.Name())
			if err := os.Truncate(p, 8); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatal("no chunk files found")
}

func TestTruncatedChunkSurfacesError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDense(store, randDense(rng, 30, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	corruptOneChunk(t, dir)
	if _, err := m.Dense(); err == nil {
		t.Fatal("Dense succeeded on truncated chunk")
	}
	if _, err := m.CrossProd(); err == nil {
		t.Fatal("CrossProd succeeded on truncated chunk")
	}
	if _, err := m.Mul(randDense(rng, 4, 2)); err == nil {
		t.Fatal("Mul succeeded on truncated chunk")
	}
	if _, err := m.Sum(); err == nil {
		t.Fatal("Sum succeeded on truncated chunk")
	}
}

func TestMissingChunkSurfacesError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDense(store, randDense(rng, 20, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if err := os.Remove(filepath.Join(dir, entries[0].Name())); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ColSums(); err == nil {
		t.Fatal("ColSums succeeded on missing chunk")
	}
}

func TestLogRegSurfacesChunkError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	td := randDense(rng, 40, 5)
	m, err := FromDense(store, td, 16)
	if err != nil {
		t.Fatal(err)
	}
	y := randDense(rng, 40, 1)
	corruptOneChunk(t, dir)
	if _, err := LogRegMaterializedExec(Parallel(), m, y, 2, 1e-3); err == nil {
		t.Fatal("training succeeded on corrupt store")
	}
}

// corruptLastChunk truncates the last chunk file in the store directory,
// so a streaming pass fails mid-stream after earlier chunks succeeded.
func corruptLastChunk(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(entries) - 1; i >= 0; i-- {
		if strings.HasPrefix(entries[i].Name(), "chunk-") {
			if err := os.Truncate(filepath.Join(dir, entries[i].Name()), 8); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatal("no chunk files found")
}

// TestMapOpsCleanUpOnMidStreamFailure: when Mul/Scale/RowSums fail partway
// through (here: the last input chunk is truncated, so earlier output
// chunks were already written), every orphaned output chunk must be
// removed and nothing half-registered (the satellite bugfix for
// out.paths being appended before writeChunk succeeded).
func TestMapOpsCleanUpOnMidStreamFailure(t *testing.T) {
	for _, ex := range []Exec{Serial, {Workers: 4, Prefetch: 2}} {
		rng := rand.New(rand.NewSource(9))
		dir := t.TempDir()
		store, err := NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		m, err := FromDense(store, randDense(rng, 40, 4), 8) // 5 chunks
		if err != nil {
			t.Fatal(err)
		}
		corruptLastChunk(t, dir)
		before := chunkFileCount(t, dir)
		live := store.LiveChunks()

		if _, err := m.MulExec(ex, randDense(rng, 4, 2)); err == nil {
			t.Fatal("Mul succeeded on truncated input")
		}
		if _, err := m.ScaleExec(ex, 2); err == nil {
			t.Fatal("Scale succeeded on truncated input")
		}
		if _, err := m.RowSumsExec(ex); err == nil {
			t.Fatal("RowSums succeeded on truncated input")
		}

		if got := chunkFileCount(t, dir); got != before {
			t.Fatalf("workers=%d: failed ops left %d chunk files, want %d", ex.Workers, got, before)
		}
		if got := store.LiveChunks(); got != live {
			t.Fatalf("workers=%d: failed ops left %d chunks registered, want %d", ex.Workers, got, live)
		}
	}
}

func TestNewStoreBadPath(t *testing.T) {
	// A path under a regular file cannot be created.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(filepath.Join(f, "sub")); err == nil {
		t.Fatal("NewStore under a file succeeded")
	}
}
