package chunk

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corruptOneChunk truncates the first chunk file in the store directory.
func corruptOneChunk(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "chunk-") {
			p := filepath.Join(dir, e.Name())
			if err := os.Truncate(p, 8); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatal("no chunk files found")
}

func TestTruncatedChunkSurfacesError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDense(store, randDense(rng, 30, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	corruptOneChunk(t, dir)
	if _, err := m.Dense(); err == nil {
		t.Fatal("Dense succeeded on truncated chunk")
	}
	if _, err := m.CrossProd(); err == nil {
		t.Fatal("CrossProd succeeded on truncated chunk")
	}
	if _, err := m.Mul(randDense(rng, 4, 2)); err == nil {
		t.Fatal("Mul succeeded on truncated chunk")
	}
	if _, err := m.Sum(); err == nil {
		t.Fatal("Sum succeeded on truncated chunk")
	}
}

func TestMissingChunkSurfacesError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDense(store, randDense(rng, 20, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if err := os.Remove(filepath.Join(dir, entries[0].Name())); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ColSums(); err == nil {
		t.Fatal("ColSums succeeded on missing chunk")
	}
}

func TestLogRegSurfacesChunkError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	td := randDense(rng, 40, 5)
	m, err := FromDense(store, td, 16)
	if err != nil {
		t.Fatal(err)
	}
	y := randDense(rng, 40, 1)
	corruptOneChunk(t, dir)
	if _, err := LogRegMaterialized(m, y, 2, 1e-3); err == nil {
		t.Fatal("training succeeded on corrupt store")
	}
}

func TestNewStoreBadPath(t *testing.T) {
	// A path under a regular file cannot be created.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(filepath.Join(f, "sub")); err == nil {
		t.Fatal("NewStore under a file succeeded")
	}
}
