package chunk

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// MNTable is the out-of-core normalized matrix for an M:N join (Table 10):
// base tables S and R are chunked on disk, and the join is represented by
// the IS/IR row-selector columns, also chunked, with |T'| rows each. The
// materialized alternative would store |T'|·(dS+dR) cells — the quantity
// that explodes as the join-attribute domain shrinks.
type MNTable struct {
	S  *Matrix    // nS×dS
	R  *Matrix    // nR×dR
	IS *IntVector // |T'|×1
	IR *IntVector // |T'|×1
}

// NewMNTable validates the selector alignment and key ranges.
func NewMNTable(s, r *Matrix, is, ir *IntVector) (*MNTable, error) {
	if is.m.rows != ir.m.rows {
		return nil, fmt.Errorf("chunk: IS has %d rows but IR has %d", is.m.rows, ir.m.rows)
	}
	if is.m.chunkRows != ir.m.chunkRows {
		return nil, fmt.Errorf("chunk: IS chunked by %d rows but IR by %d", is.m.chunkRows, ir.m.chunkRows)
	}
	if is.m.rows > 0 {
		if is.minKey < 0 || int(is.maxKey) >= s.rows {
			return nil, fmt.Errorf("chunk: IS keys span [%d,%d] but S has %d rows", is.minKey, is.maxKey, s.rows)
		}
		if ir.minKey < 0 || int(ir.maxKey) >= r.rows {
			return nil, fmt.Errorf("chunk: IR keys span [%d,%d] but R has %d rows", ir.minKey, ir.maxKey, r.rows)
		}
	}
	return &MNTable{S: s, R: r, IS: is, IR: ir}, nil
}

// OutputRows reports |T'|, the join output cardinality.
func (t *MNTable) OutputRows() int { return t.IS.m.rows }

// Free releases every on-disk component of the table.
func (t *MNTable) Free() error {
	err := t.S.Free()
	for _, e := range []error{t.R.Free(), t.IS.Free(), t.IR.Free()} {
		if err == nil {
			err = e
		}
	}
	return err
}

// partialProducts streams base table b and writes b·w into the
// pre-allocated dst vector (disjoint row ranges, so workers write
// directly); bytes read are tallied on the committer.
func partialProducts(ex Exec, b *Matrix, w *la.Dense, dst []float64, bytesRead *int64) error {
	return b.pipeline(ex, func(ci, lo int, c *la.Dense) (any, error) {
		p := la.MatMul(c, w)
		copy(dst[lo:lo+c.Rows()], p.Data())
		return int64(c.Rows()) * int64(c.Cols()) * 8, nil
	}, func(ci int, v any) error {
		*bytesRead += v.(int64)
		return nil
	})
}

// gradPass streams base table b and accumulates bᵀ·coef chunk-by-chunk in
// order.
func gradPass(ex Exec, b *Matrix, coef []float64, grad *la.Dense, bytesRead *int64) error {
	return b.pipeline(ex, func(ci, lo int, c *la.Dense) (any, error) {
		return matPart{
			grad:  la.TMatMul(c, la.ColVector(coef[lo:lo+c.Rows()])),
			bytes: int64(c.Rows()) * int64(c.Cols()) * 8,
		}, nil
	}, func(ci int, v any) error {
		pt := v.(matPart)
		grad.AddInPlace(pt.grad)
		*bytesRead += pt.bytes
		return nil
	})
}

// mnSelPart is one selector chunk's contribution: the per-output-tuple
// coefficients plus both key columns for the ordered scatter.
type mnSelPart struct {
	is, ir []int32
	coef   []float64
	bytes  int64
}

// LogRegFactorizedMNExec runs factorized logistic regression over the
// out-of-core M:N join under the given execution. Per iteration it makes
// one pass over S and R to compute the partial inner products (nS- and
// nR-length vectors held in memory), one pass over the selector columns to
// form the per-output-tuple coefficients, and one more pass over S and R
// for the gradients — total I/O proportional to the base tables plus two
// key columns, never to |T'|·(dS+dR). Scatter-adds commit in chunk order,
// so results are identical for every Exec. The planner-driven entry point
// is plan.LogRegMN.
func LogRegFactorizedMNExec(ex Exec, t *MNTable, y *la.Dense, iters int, alpha float64) (*LogRegResult, error) {
	n := t.OutputRows()
	if y.Rows() != n || y.Cols() != 1 {
		return nil, fmt.Errorf("chunk: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), n)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("chunk: iters must be positive")
	}
	dS, dR := t.S.cols, t.R.cols
	w := la.NewDense(dS+dR, 1)
	var bytesRead int64
	for it := 0; it < iters; it++ {
		wS := la.NewDenseData(dS, 1, w.Data()[:dS])
		wR := la.NewDenseData(dR, 1, w.Data()[dS:])
		// Pass 1: partial inner products for every base tuple.
		sw := make([]float64, t.S.rows)
		if err := partialProducts(ex, t.S, wS, sw, &bytesRead); err != nil {
			return nil, err
		}
		rw := make([]float64, t.R.rows)
		if err := partialProducts(ex, t.R, wR, rw, &bytesRead); err != nil {
			return nil, err
		}
		// Pass 2: stream the selectors, scatter coefficients per base row.
		cs := make([]float64, t.S.rows)
		cr := make([]float64, t.R.rows)
		err := t.IS.m.pipeline(ex, func(ci, lo int, isChunk *la.Dense) (any, error) {
			_, irKeys, err := t.IR.Keys(ci)
			if err != nil {
				return nil, err
			}
			isKeys := make([]int32, isChunk.Rows())
			coef := make([]float64, isChunk.Rows())
			for i := 0; i < isChunk.Rows(); i++ {
				si := int32(isChunk.At(i, 0))
				inner := sw[si] + rw[irKeys[i]]
				isKeys[i] = si
				coef[i] = y.At(lo+i, 0) / (1 + math.Exp(inner))
			}
			return mnSelPart{
				is:    isKeys,
				ir:    irKeys,
				coef:  coef,
				bytes: 2 * int64(isChunk.Rows()) * 8,
			}, nil
		}, func(ci int, v any) error {
			pt := v.(mnSelPart)
			for i, v := range pt.coef {
				cs[pt.is[i]] += v
				cr[pt.ir[i]] += v
			}
			bytesRead += pt.bytes
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Pass 3: gradients gradS = Sᵀ·cs, gradR = Rᵀ·cr.
		gradS := la.NewDense(dS, 1)
		if err := gradPass(ex, t.S, cs, gradS, &bytesRead); err != nil {
			return nil, err
		}
		gradR := la.NewDense(dR, 1)
		if err := gradPass(ex, t.R, cr, gradR, &bytesRead); err != nil {
			return nil, err
		}
		for j := 0; j < dS; j++ {
			w.Set(j, 0, w.At(j, 0)+alpha*gradS.At(j, 0))
		}
		for j := 0; j < dR; j++ {
			w.Set(dS+j, 0, w.At(dS+j, 0)+alpha*gradR.At(j, 0))
		}
	}
	return &LogRegResult{W: w, BytesRead: bytesRead}, nil
}

// MaterializeMN spills the joined table [IS·S, IR·R] to chunked storage —
// the baseline input for Table 10. It streams selector chunks and gathers
// base rows, so building it costs the full |T'|·(dS+dR) write. Chunks are
// gathered and written in parallel; a mid-stream failure removes every
// chunk written so far.
func MaterializeMN(store *Store, t *MNTable) (*Matrix, error) {
	sD, err := t.S.Dense()
	if err != nil {
		return nil, err
	}
	rD, err := t.R.Dense()
	if err != nil {
		return nil, err
	}
	dS, dR := sD.Cols(), rD.Cols()
	paths, err := store.alloc(t.IS.m.NumChunks())
	if err != nil {
		return nil, err
	}
	err = t.IS.m.pipeline(Parallel(), func(ci, lo int, isChunk *la.Dense) (any, error) {
		_, irKeys, err := t.IR.Keys(ci)
		if err != nil {
			return nil, err
		}
		buf := la.NewDense(isChunk.Rows(), dS+dR)
		for i := 0; i < isChunk.Rows(); i++ {
			copy(buf.Row(i)[:dS], sD.Row(int(isChunk.At(i, 0))))
			copy(buf.Row(i)[dS:], rD.Row(int(irKeys[i])))
		}
		return nil, store.writeChunkFile(paths[ci], buf)
	}, nil)
	if err != nil {
		store.release(paths)
		return nil, err
	}
	return &Matrix{store: store, rows: t.OutputRows(), cols: dS + dR, chunkRows: t.IS.m.chunkRows, paths: paths}, nil
}
