package chunk

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// MNTable is the out-of-core normalized matrix for an M:N join (Table 10):
// base tables S and R are chunked on disk, and the join is represented by
// the IS/IR row-selector columns, also chunked, with |T'| rows each. The
// materialized alternative would store |T'|·(dS+dR) cells — the quantity
// that explodes as the join-attribute domain shrinks.
type MNTable struct {
	S  *Matrix    // nS×dS
	R  *Matrix    // nR×dR
	IS *IntVector // |T'|×1
	IR *IntVector // |T'|×1
}

// NewMNTable validates the selector alignment.
func NewMNTable(s, r *Matrix, is, ir *IntVector) (*MNTable, error) {
	if is.m.rows != ir.m.rows {
		return nil, fmt.Errorf("chunk: IS has %d rows but IR has %d", is.m.rows, ir.m.rows)
	}
	if is.m.chunkRows != ir.m.chunkRows {
		return nil, fmt.Errorf("chunk: IS chunked by %d rows but IR by %d", is.m.chunkRows, ir.m.chunkRows)
	}
	return &MNTable{S: s, R: r, IS: is, IR: ir}, nil
}

// OutputRows reports |T'|, the join output cardinality.
func (t *MNTable) OutputRows() int { return t.IS.m.rows }

// LogRegFactorizedMN runs factorized logistic regression over the
// out-of-core M:N join. Per iteration it makes one pass over S and R to
// compute the partial inner products (nS- and nR-length vectors held in
// memory), one pass over the selector columns to form the per-output-tuple
// coefficients, and one more pass over S and R for the gradients — total
// I/O proportional to the base tables plus two key columns, never to
// |T'|·(dS+dR).
func LogRegFactorizedMN(t *MNTable, y *la.Dense, iters int, alpha float64) (*LogRegResult, error) {
	n := t.OutputRows()
	if y.Rows() != n || y.Cols() != 1 {
		return nil, fmt.Errorf("chunk: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), n)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("chunk: iters must be positive")
	}
	dS, dR := t.S.cols, t.R.cols
	w := la.NewDense(dS+dR, 1)
	var bytesRead int64
	track := func(c *la.Dense) { bytesRead += int64(c.Rows()) * int64(c.Cols()) * 8 }
	for it := 0; it < iters; it++ {
		wS := la.NewDenseData(dS, 1, w.Data()[:dS])
		wR := la.NewDenseData(dR, 1, w.Data()[dS:])
		// Pass 1: partial inner products for every base tuple.
		sw := make([]float64, t.S.rows)
		if err := t.S.ForEach(func(lo int, c *la.Dense) error {
			track(c)
			p := la.MatMul(c, wS)
			copy(sw[lo:lo+c.Rows()], p.Data())
			return nil
		}); err != nil {
			return nil, err
		}
		rw := make([]float64, t.R.rows)
		if err := t.R.ForEach(func(lo int, c *la.Dense) error {
			track(c)
			p := la.MatMul(c, wR)
			copy(rw[lo:lo+c.Rows()], p.Data())
			return nil
		}); err != nil {
			return nil, err
		}
		// Pass 2: stream the selectors, scatter coefficients per base row.
		cs := make([]float64, t.S.rows)
		cr := make([]float64, t.R.rows)
		ci := 0
		err := t.IS.m.ForEach(func(lo int, isChunk *la.Dense) error {
			track(isChunk)
			loK, hiK := t.IR.m.chunkBounds(ci)
			irChunk, err := readChunk(t.IR.m.paths[ci], hiK-loK, 1)
			if err != nil {
				return err
			}
			track(irChunk)
			ci++
			for i := 0; i < isChunk.Rows(); i++ {
				si := int(isChunk.At(i, 0))
				ri := int(irChunk.At(i, 0))
				inner := sw[si] + rw[ri]
				v := y.At(lo+i, 0) / (1 + math.Exp(inner))
				cs[si] += v
				cr[ri] += v
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Pass 3: gradients gradS = Sᵀ·cs, gradR = Rᵀ·cr.
		gradS := la.NewDense(dS, 1)
		if err := t.S.ForEach(func(lo int, c *la.Dense) error {
			track(c)
			gradS.AddInPlace(la.TMatMul(c, la.ColVector(cs[lo:lo+c.Rows()])))
			return nil
		}); err != nil {
			return nil, err
		}
		gradR := la.NewDense(dR, 1)
		if err := t.R.ForEach(func(lo int, c *la.Dense) error {
			track(c)
			gradR.AddInPlace(la.TMatMul(c, la.ColVector(cr[lo:lo+c.Rows()])))
			return nil
		}); err != nil {
			return nil, err
		}
		for j := 0; j < dS; j++ {
			w.Set(j, 0, w.At(j, 0)+alpha*gradS.At(j, 0))
		}
		for j := 0; j < dR; j++ {
			w.Set(dS+j, 0, w.At(dS+j, 0)+alpha*gradR.At(j, 0))
		}
	}
	return &LogRegResult{W: w, BytesRead: bytesRead}, nil
}

// MaterializeMN spills the joined table [IS·S, IR·R] to chunked storage —
// the baseline input for Table 10. It streams selector chunks and gathers
// base rows, so building it costs the full |T'|·(dS+dR) write.
func MaterializeMN(store *Store, t *MNTable) (*Matrix, error) {
	sD, err := t.S.Dense()
	if err != nil {
		return nil, err
	}
	rD, err := t.R.Dense()
	if err != nil {
		return nil, err
	}
	dS, dR := sD.Cols(), rD.Cols()
	n := t.OutputRows()
	out := &Matrix{store: store, rows: n, cols: dS + dR, chunkRows: t.IS.m.chunkRows}
	ci := 0
	err = t.IS.m.ForEach(func(lo int, isChunk *la.Dense) error {
		loK, hiK := t.IR.m.chunkBounds(ci)
		irChunk, err := readChunk(t.IR.m.paths[ci], hiK-loK, 1)
		if err != nil {
			return err
		}
		ci++
		buf := la.NewDense(isChunk.Rows(), dS+dR)
		for i := 0; i < isChunk.Rows(); i++ {
			copy(buf.Row(i)[:dS], sD.Row(int(isChunk.At(i, 0))))
			copy(buf.Row(i)[dS:], rD.Row(int(irChunk.At(i, 0))))
		}
		path := store.newPath()
		out.paths = append(out.paths, path)
		return writeChunk(path, buf)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
