package chunk

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/la"
)

// TestCodecRoundTrip: every registered codec inverts its own encoding
// bit-exactly over the shapes chunks actually take — empty, tail-only
// (shorter than one 8-byte word), word-aligned, ragged, all-zero, and
// incompressible random bytes.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	random := make([]byte, 1003) // not a multiple of 8: shuffle tail in play
	rng.Read(random)
	repetitive := bytes.Repeat([]byte{0x3f, 0xf0, 0, 0, 0, 0, 0, 1}, 512)
	cases := map[string][]byte{
		"empty":      {},
		"one":        {42},
		"tail-only":  {1, 2, 3, 4, 5, 6, 7},
		"word":       {8, 7, 6, 5, 4, 3, 2, 1},
		"zeros":      make([]byte, 4096),
		"random":     random,
		"repetitive": repetitive,
	}
	for _, name := range Codecs() {
		c, err := CodecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Fatalf("codec %q reports Name %q", name, c.Name())
		}
		for label, raw := range cases {
			blob := c.Encode(raw)
			got, err := c.Decode(blob)
			if err != nil {
				t.Fatalf("%s/%s: Decode: %v", name, label, err)
			}
			if !bytes.Equal(got, raw) {
				t.Fatalf("%s/%s: round trip lost bytes: got %d, want %d", name, label, len(got), len(raw))
			}
			// Overhead on incompressible input is bounded by the frame header.
			if len(blob) > len(raw)+codecHeaderLen {
				t.Fatalf("%s/%s: blob %d B exceeds raw %d B + header", name, label, len(blob), len(raw))
			}
		}
	}
}

// TestCodecCompressesDenseChunks: the byte-shuffled DEFLATE layout actually
// shrinks a realistic dense chunk encoding (smooth float64 values), which
// is the whole point of the wrapper.
func TestCodecCompressesDenseChunks(t *testing.T) {
	d := la.NewDense(256, 32)
	for i := range d.Data() {
		d.Data()[i] = float64(i%64) / 8
	}
	raw := encodeDenseChunk(d)
	blob := shuffleFlateCodec{}.Encode(raw)
	if len(blob) >= len(raw)/2 {
		t.Fatalf("dense chunk compressed to %d of %d bytes, want < half", len(blob), len(raw))
	}
}

// TestByteShuffleRoundTrip: the shuffle is its own inverse composition for
// every length, including the 0–7 byte tails.
func TestByteShuffleRoundTrip(t *testing.T) {
	for n := 0; n < 64; n++ {
		raw := make([]byte, n)
		for i := range raw {
			raw[i] = byte(i * 7)
		}
		if got := byteUnshuffle(byteShuffle(raw)); !bytes.Equal(got, raw) {
			t.Fatalf("len %d: shuffle round trip = %v, want %v", n, got, raw)
		}
	}
}

// TestCodecRejectsCorruptInput: truncated, tampered, or misdeclared frames
// are errors — never silently short or wrong data.
func TestCodecRejectsCorruptInput(t *testing.T) {
	c := shuffleFlateCodec{}
	raw := bytes.Repeat([]byte("hello codec "), 40)
	blob := c.Encode(raw)

	for _, n := range []int{0, 3, codecHeaderLen - 1, codecHeaderLen, len(blob) / 2} {
		if n >= len(blob) {
			continue
		}
		if _, err := c.Decode(blob[:n]); err == nil {
			t.Fatalf("decoding a frame truncated to %d bytes succeeded", n)
		}
	}

	badMagic := append([]byte(nil), blob...)
	badMagic[0] ^= 0xff
	if _, err := c.Decode(badMagic); err == nil {
		t.Fatal("decoding a frame with corrupt magic succeeded")
	}

	badMethod := append([]byte(nil), blob...)
	badMethod[len(codecMagic)] = 0x7f
	if _, err := c.Decode(badMethod); err == nil {
		t.Fatal("decoding a frame with an unknown method succeeded")
	}

	// A stored frame whose payload disagrees with the declared length.
	shortStored := appendCodecHeader(nil, codecMethodStored, 10)
	shortStored = append(shortStored, 1, 2, 3)
	if _, err := c.Decode(shortStored); err == nil {
		t.Fatal("decoding a stored frame with a short payload succeeded")
	}

	// A frame that under-declares its decoded length: the payload runs past
	// rawLen, which must be rejected, not truncated.
	under := append([]byte(nil), blob...)
	under[codecHeaderLen-8] -= 8 // low byte of the little-endian rawLen
	if _, err := c.Decode(under); err == nil {
		t.Fatal("decoding a frame that under-declares its length succeeded")
	}

	if _, err := CodecByName("no-such-codec"); err == nil {
		t.Fatal("CodecByName resolved an unregistered name")
	}
}

// FuzzCodecRoundTrip: arbitrary bytes encode→decode bit-identically, and a
// truncated blob never silently decodes to the wrong bytes.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(bytes.Repeat([]byte{0x40, 0x09, 0x21, 0xfb, 0x54, 0x44, 0x2d, 0x18}, 32))
	f.Fuzz(func(t *testing.T, raw []byte) {
		c := shuffleFlateCodec{}
		blob := c.Encode(raw)
		got, err := c.Decode(blob)
		if err != nil {
			t.Fatalf("Decode(Encode(raw)): %v", err)
		}
		if !bytes.Equal(got, raw) {
			t.Fatalf("round trip lost bytes: got %d, want %d", len(got), len(raw))
		}
		if len(blob) > 0 {
			if dec, err := c.Decode(blob[:len(blob)-1]); err == nil && !bytes.Equal(dec, raw) {
				t.Fatal("truncated blob decoded to wrong bytes without an error")
			}
		}
	})
}

// TestCompressingBackendTransparent: blobs land framed (and smaller, for
// compressible input) while ReadChunk returns the original bytes; BytesOf
// and the sized-write accounting report the stored size.
func TestCompressingBackendTransparent(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCompressingBackend(inner, "no-such-codec"); err == nil {
		t.Fatal("NewCompressingBackend accepted an unregistered codec")
	}
	cb, err := NewCompressingBackend(inner, CodecShuffleFlate)
	if err != nil {
		t.Fatal(err)
	}

	const key = "chunk-000001.bin"
	raw := bytes.Repeat([]byte{0x3f, 0xf0, 1, 2, 0, 0, 0, 0}, 256)
	stored, err := writeSized(cb, key, raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cb.ReadChunk(key)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("ReadChunk through the codec = %d bytes, %v, want the raw encoding back", len(got), err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(onDisk, []byte(codecMagic)) {
		t.Fatalf("stored blob is not framed: %q...", onDisk[:8])
	}
	if int64(len(onDisk)) != stored {
		t.Fatalf("WriteChunkSized reported %d bytes, %d landed", stored, len(onDisk))
	}
	if len(onDisk) >= len(raw) {
		t.Fatalf("compressible blob stored at %d of %d bytes", len(onDisk), len(raw))
	}
	if n, err := cb.BytesOf(key); err != nil || n != stored {
		t.Fatalf("BytesOf = %d, %v, want the stored size %d", n, err, stored)
	}

	// A corrupt stored blob is a read error, not wrong data.
	if err := inner.WriteChunk(key, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.ReadChunk(key); err == nil {
		t.Fatal("reading a corrupt stored blob succeeded")
	}
}

// TestCompressedStoreAccounting: a store over the compressing wrapper holds
// the same matrix in fewer bytes, BytesOnDisk/Matrix.BytesOnDisk track the
// compressed (actually stored) sizes, and the decoded matrix is
// bit-identical to a plain store's.
func TestCompressedStoreAccounting(t *testing.T) {
	inner, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewCompressingBackend(inner, CodecShuffleFlate)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewShardedStoreBackends([]Backend{cb}, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	plain := testStore(t)

	d := la.NewDense(96, 16)
	for i := range d.Data() {
		d.Data()[i] = float64(i % 32)
	}
	mp, err := FromDense(plain, d, 10)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := FromDense(cs, d, 10)
	if err != nil {
		t.Fatal(err)
	}

	if raw := int64(96 * 16 * 8); mp.BytesOnDisk() != raw {
		t.Fatalf("plain BytesOnDisk = %d, want %d", mp.BytesOnDisk(), raw)
	}
	if mc.BytesOnDisk() >= mp.BytesOnDisk() {
		t.Fatalf("compressed BytesOnDisk = %d, want < plain %d", mc.BytesOnDisk(), mp.BytesOnDisk())
	}
	if cs.BytesOnDisk() != mc.BytesOnDisk() {
		t.Fatalf("store BytesOnDisk = %d, matrix says %d", cs.BytesOnDisk(), mc.BytesOnDisk())
	}

	dp, err := mp.Dense()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := mc.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(dp, dc) != 0 {
		t.Fatal("compressed store decoded a different matrix")
	}
	if err := mc.Free(); err != nil {
		t.Fatal(err)
	}
	if got := cs.BytesOnDisk(); got != 0 {
		t.Fatalf("%d bytes accounted after freeing the compressed matrix", got)
	}
}

// TestBackendListContract: every backend — plain directory, remote, the
// compressing wrapper, the zone-map wrapper, and the composed pair — lists
// exactly the stored chunk keys, excluding *.tmp write debris, zone-map
// sidecars, and foreign files sharing the directory.
func TestBackendListContract(t *testing.T) {
	builders := []struct {
		name string
		make func(t *testing.T) (Backend, string)
	}{
		{"dir", func(t *testing.T) (Backend, string) {
			dir := t.TempDir()
			b, err := NewDirBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			return b, dir
		}},
		{"remote", func(t *testing.T) (Backend, string) {
			b, dir := startChunkServer(t)
			return b, dir
		}},
		{"compress(dir)", func(t *testing.T) (Backend, string) {
			dir := t.TempDir()
			inner, err := NewDirBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewCompressingBackend(inner, CodecShuffleFlate)
			if err != nil {
				t.Fatal(err)
			}
			return b, dir
		}},
		{"zone(dir)", func(t *testing.T) (Backend, string) {
			// Sidecars share the shard directory: the hardest listing case.
			dir := t.TempDir()
			inner, err := NewDirBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewZoneMapBackend(inner, dir)
			if err != nil {
				t.Fatal(err)
			}
			return b, dir
		}},
		{"zone(compress(dir))", func(t *testing.T) (Backend, string) {
			dir := t.TempDir()
			inner, err := NewDirBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := NewCompressingBackend(inner, CodecShuffleFlate)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewZoneMapBackend(comp, dir)
			if err != nil {
				t.Fatal(err)
			}
			return b, dir
		}},
	}
	for _, bc := range builders {
		t.Run(bc.name, func(t *testing.T) {
			b, dir := bc.make(t)
			want := []string{"chunk-000001.bin", "chunk-000002.bin"}
			for _, key := range want {
				if _, err := writeThrough(b, key, []byte{1, 2, 3, 4}, func() ZoneMap { return ZoneMap{} }); err != nil {
					t.Fatal(err)
				}
			}
			// Debris and metadata sharing the directory must never list.
			for _, name := range []string{
				"chunk-000003.bin" + tmpSuffix,
				"chunk-000001.bin" + zoneSuffix,
				"chunk-000002.bin" + zoneSuffix + tmpSuffix,
				"README.txt",
			} {
				if err := os.WriteFile(filepath.Join(dir, name), []byte{9}, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := b.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != len(want) {
				t.Fatalf("List = %v, want %v", keys, want)
			}
			for i, k := range want {
				if keys[i] != k {
					t.Fatalf("List = %v, want %v", keys, want)
				}
			}
		})
	}
}

// TestExecUnknownCodecIs400: a worker that does not know a requested codec
// answers with a per-request hard error — not the "no /exec at all" signal
// that would poison the client's capability cache — so a plain request to
// the same shard still executes afterwards.
func TestExecUnknownCodecIs400(t *testing.T) {
	dir := t.TempDir()
	h, err := NewChunkServer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	rb, err := NewRemoteBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	d := la.NewDense(4, 3)
	for i := range d.Data() {
		d.Data()[i] = float64(i + 1)
	}
	const key = "chunk-000001.bin"
	if err := rb.WriteChunk(key, encodeDenseChunk(d)); err != nil {
		t.Fatal(err)
	}
	chunks := []ExecChunk{{Key: key, Rows: 4}}

	if _, err := rb.execOpCodec(OpSum(), chunkKindDense, 3, chunks, "no-such-codec"); err == nil {
		t.Fatal("exec with an unknown codec succeeded")
	}
	// The failure was per-request: plain exec still works on this shard.
	ps, err := rb.ExecOp(OpSum(), chunkKindDense, 3, chunks)
	if err != nil {
		t.Fatalf("plain exec after a codec rejection: %v", err)
	}
	defer ps.Close()
	if _, err := ps.Next(); err != nil {
		t.Fatalf("plain exec partial after a codec rejection: %v", err)
	}
}

// TestExecDecodesCodecShardSide: a compressed remote shard executes
// pushed-down ops on its stored (framed) blobs by decoding them shard-side,
// and the partial matches the op run locally on the raw chunk.
func TestExecDecodesCodecShardSide(t *testing.T) {
	rb, _ := startChunkServer(t)
	cb, err := NewCompressingBackend(rb, CodecShuffleFlate)
	if err != nil {
		t.Fatal(err)
	}
	eb, ok := cb.(ExecBackend)
	if !ok {
		t.Fatal("compressing wrapper over a remote backend lost the exec capability")
	}

	d := la.NewDense(8, 5)
	for i := range d.Data() {
		d.Data()[i] = float64(i%11) / 4
	}
	const key = "chunk-000001.bin"
	if err := cb.WriteChunk(key, encodeDenseChunk(d)); err != nil {
		t.Fatal(err)
	}

	ps, err := eb.ExecOp(OpCrossProd(), chunkKindDense, 5, []ExecChunk{{Key: key, Rows: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	raw, err := ps.Next()
	if err != nil {
		t.Fatal(err)
	}
	st, err := prepareOp(OpCrossProd())
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.decodePartial(raw)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(got.(*la.Dense), want.(*la.Dense)) != 0 {
		t.Fatal("shard-side decoded partial differs from the local apply")
	}
}
