package chunk

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/la"
)

// ZoneMap is the per-chunk metadata an annotating backend records at spill
// time: value bounds, a stored-entry count, the all-zero proof the read
// path skips on, and a coarse per-column-block occupancy mask (for CSR
// chunks, which columns hold any stored entry).
type ZoneMap struct {
	// Min and Max bound the chunk's stored values (0 for a chunk with no
	// stored entries). Advisory facts — NaNs are not ordered into them.
	Min float64
	Max float64
	// NNZ counts stored entries that are not bit-pattern +0.0 for dense
	// chunks, and all stored entries for CSR chunks (an explicitly stored
	// zero still occupies structure a synthesized chunk would lack).
	NNZ int64
	// AllZero is the skip proof: decoding the chunk is guaranteed to yield
	// exactly the zero chunk of its shape. It is deliberately strict — a
	// dense cell holding -0.0 or NaN is NOT zero (its bit pattern differs
	// from +0.0), because skipping is only sound when the synthesized
	// replacement is bit-identical to what a read would have decoded.
	AllZero bool
	// ColBlocks is a 64-bit occupancy mask: the chunk's columns are split
	// into 64 even blocks and bit b is set iff block b holds a counted
	// entry. Lets a pass reason about column locality without the chunk.
	ColBlocks uint64
}

// colBlock maps column j of cols to its ColBlocks bit.
func colBlock(j, cols int) uint { return uint(j * 64 / cols) }

// denseZoneMap scans one dense chunk. Zero is bit-pattern +0.0: anything
// else (including -0.0 and NaN) counts as an entry and defeats AllZero.
func denseZoneMap(d *la.Dense) ZoneMap {
	zm := ZoneMap{AllZero: true}
	data := d.Data()
	cols := d.Cols()
	first := true
	for i, v := range data {
		if math.Float64bits(v) == 0 {
			continue
		}
		zm.NNZ++
		zm.AllZero = false
		if first {
			zm.Min, zm.Max = v, v
			first = false
		} else if v < zm.Min {
			zm.Min = v
		} else if v > zm.Max {
			zm.Max = v
		}
		if cols > 0 {
			zm.ColBlocks |= 1 << colBlock(i%cols, cols)
		}
	}
	return zm
}

// csrZoneMap scans one CSR chunk. Every stored entry counts — AllZero means
// "no stored entries", which is exactly the condition under which the
// synthesized empty CSR is bit-identical to the decoded chunk.
func csrZoneMap(c *la.CSR) ZoneMap {
	zm := ZoneMap{AllZero: true}
	cols := c.Cols()
	first := true
	for i := 0; i < c.Rows(); i++ {
		idx, vals := c.RowNNZ(i)
		for k, j := range idx {
			v := vals[k]
			zm.NNZ++
			zm.AllZero = false
			if first {
				zm.Min, zm.Max = v, v
				first = false
			} else if v < zm.Min {
				zm.Min = v
			} else if v > zm.Max {
				zm.Max = v
			}
			if cols > 0 {
				zm.ColBlocks |= 1 << colBlock(int(j), cols)
			}
		}
	}
	return zm
}

// Zone-map sidecar file, version 1 (the "1" in the magic): 4-byte magic,
// one flags byte (bit 0 = AllZero), then min, max (float64 bit patterns),
// NNZ, and ColBlocks, all little-endian uint64. Fixed 37-byte layout so a
// truncated sidecar is always detectable.
const zoneMagic = "MZM1"

// zoneSuffix names a chunk's zone-map sidecar: <key>.zm. The suffix keeps
// sidecars out of every chunk namespace check (validChunkKey requires a
// .bin suffix), so they can share a directory with dirBackend blobs without
// ever being listed, served, or reaped as chunks.
const zoneSuffix = ".zm"

const zoneFileLen = len(zoneMagic) + 1 + 4*8

func encodeZoneMap(zm ZoneMap) []byte {
	raw := make([]byte, 0, zoneFileLen)
	raw = append(raw, zoneMagic...)
	var flags byte
	if zm.AllZero {
		flags |= 1
	}
	raw = append(raw, flags)
	raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(zm.Min))
	raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(zm.Max))
	raw = binary.LittleEndian.AppendUint64(raw, uint64(zm.NNZ))
	raw = binary.LittleEndian.AppendUint64(raw, zm.ColBlocks)
	return raw
}

func decodeZoneMap(raw []byte) (ZoneMap, error) {
	if len(raw) != zoneFileLen {
		return ZoneMap{}, fmt.Errorf("chunk: zone map sidecar has %d bytes, want %d", len(raw), zoneFileLen)
	}
	if string(raw[:len(zoneMagic)]) != zoneMagic {
		return ZoneMap{}, fmt.Errorf("chunk: bad zone map magic %q", raw[:len(zoneMagic)])
	}
	flags := raw[len(zoneMagic)]
	p := len(zoneMagic) + 1
	return ZoneMap{
		Min:       math.Float64frombits(binary.LittleEndian.Uint64(raw[p:])),
		Max:       math.Float64frombits(binary.LittleEndian.Uint64(raw[p+8:])),
		NNZ:       int64(binary.LittleEndian.Uint64(raw[p+16:])),
		AllZero:   flags&1 != 0,
		ColBlocks: binary.LittleEndian.Uint64(raw[p+24:]),
	}, nil
}

// Capability interfaces the store probes on a chunk's backend. They are
// structural (type assertions), so wrappers compose freely and a plain
// Backend implementation never has to know about them.

// sizedWriter is implemented by backends whose stored blob differs in size
// from the logical chunk encoding (compression): WriteChunkSized reports
// the bytes that actually landed, which the store records instead of the
// raw encoding's length.
type sizedWriter interface {
	WriteChunkSized(key string, data []byte) (int64, error)
}

// zoneWriter is the annotating capability: store the blob and persist its
// zone map sidecar-atomically in the same write.
type zoneWriter interface {
	WriteChunkZoned(key string, data []byte, zm ZoneMap) (int64, error)
}

// zoneMapper exposes recorded zone maps to the read path.
type zoneMapper interface {
	ZoneMap(key string) (ZoneMap, bool)
}

// wireMeter is implemented by backends that move chunk bytes over a
// network (RemoteBackend) and can report how many.
type wireMeter interface {
	BytesOnWire() int64
}

// unwrapper is implemented by wrapper backends; capability probes walk the
// chain so e.g. the wire meter of a zone-mapped, compressed remote shard is
// still found.
type unwrapper interface {
	Unwrap() Backend
}

// zoneMapperOf probes b and its wrapped chain for the zone-map capability.
func zoneMapperOf(b Backend) (zoneMapper, bool) {
	for b != nil {
		if z, ok := b.(zoneMapper); ok {
			return z, true
		}
		u, ok := b.(unwrapper)
		if !ok {
			return nil, false
		}
		b = u.Unwrap()
	}
	return nil, false
}

// wireMeterOf probes b and its wrapped chain for the wire meter.
func wireMeterOf(b Backend) (wireMeter, bool) {
	for b != nil {
		if m, ok := b.(wireMeter); ok {
			return m, true
		}
		u, ok := b.(unwrapper)
		if !ok {
			return nil, false
		}
		b = u.Unwrap()
	}
	return nil, false
}

// writeSized writes through b, preferring the sized-write capability so the
// bytes that actually landed (compressed, when a codec wrapper is in the
// chain) flow back to the store's accounting.
func writeSized(b Backend, key string, data []byte) (int64, error) {
	if sw, ok := b.(sizedWriter); ok {
		return sw.WriteChunkSized(key, data)
	}
	if err := b.WriteChunk(key, data); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// writeThrough routes one encoded chunk to its backend with whatever
// capabilities the wrapper chain offers: annotating backends get the zone
// map (computed lazily, so plain backends never pay the scan), sized
// writers report the stored size.
func writeThrough(b Backend, key string, data []byte, zm func() ZoneMap) (int64, error) {
	if zw, ok := b.(zoneWriter); ok {
		return zw.WriteChunkZoned(key, data, zm())
	}
	return writeSized(b, key, data)
}

// zoneMapBackend is the annotating wrapper: chunk blobs pass through to the
// inner backend unchanged while each chunk's ZoneMap is persisted as a
// sidecar file (<key>.zm) under the same temp+rename discipline as chunks.
// Sidecars live in a wrapper-owned directory, so the inner backend may be
// local or remote; when it is a local dirBackend, the sidecar directory can
// simply be the shard directory itself (sidecar names never collide with
// the chunk namespace).
type zoneMapBackend struct {
	inner Backend
	dir   string

	mu    sync.Mutex
	cache map[string]ZoneMap
}

// NewZoneMapBackend wraps inner with zone-map annotation, persisting
// sidecars under sidecarDir (created if needed). Zone maps recorded by a
// previous run are reloaded lazily from their sidecars, so a store adopting
// already-spilled chunks regains skip eligibility without rescanning data.
// If the inner backend can execute pushed-down ops, the returned backend
// forwards that capability.
//
// Composition order: zone maps go outside, compression inside
// (NewZoneMapBackend over NewCompressingBackend), so annotations describe
// the decoded values regardless of how blobs are stored.
func NewZoneMapBackend(inner Backend, sidecarDir string) (Backend, error) {
	if err := os.MkdirAll(sidecarDir, 0o755); err != nil {
		return nil, fmt.Errorf("chunk: creating zone-map sidecar dir: %w", err)
	}
	zb := &zoneMapBackend{inner: inner, dir: sidecarDir, cache: make(map[string]ZoneMap)}
	if eb, ok := inner.(ExecBackend); ok {
		return &zoneMapExecBackend{zoneMapBackend: zb, exec: eb}, nil
	}
	return zb, nil
}

// Unwrap exposes the inner backend for capability probes.
func (b *zoneMapBackend) Unwrap() Backend { return b.inner }

func (b *zoneMapBackend) Name() string { return b.inner.Name() }

func (b *zoneMapBackend) sidecarPath(key string) string {
	return filepath.Join(b.dir, key+zoneSuffix)
}

// WriteChunkZoned stores the blob through the inner backend and persists
// its zone map sidecar-atomically. The chunk lands first: a crash between
// the two writes leaves a chunk without a sidecar — merely not skippable —
// never a sidecar describing a chunk that was not durably written.
func (b *zoneMapBackend) WriteChunkZoned(key string, data []byte, zm ZoneMap) (int64, error) {
	stored, err := writeSized(b.inner, key, data)
	if err != nil {
		return 0, err
	}
	final := b.sidecarPath(key)
	tmp := final + tmpSuffix
	if err := os.WriteFile(tmp, encodeZoneMap(zm), 0o644); err != nil {
		return 0, fmt.Errorf("chunk: zone map for %s: %w", key, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("chunk: zone map for %s: %w", key, err)
	}
	b.mu.Lock()
	b.cache[key] = zm
	b.mu.Unlock()
	return stored, nil
}

// WriteChunk stores a blob with no zone information, invalidating whatever
// sidecar a previous blob under the key may have left: a stale annotation
// must never describe fresh bytes.
func (b *zoneMapBackend) WriteChunk(key string, data []byte) error {
	b.mu.Lock()
	delete(b.cache, key)
	b.mu.Unlock()
	if err := os.Remove(b.sidecarPath(key)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return b.inner.WriteChunk(key, data)
}

// ZoneMap reports the recorded zone map for key: from the in-memory cache,
// or lazily reloaded from the sidecar file — which is how a fresh wrapper
// over already-spilled chunks (store adoption after a restart) regains its
// annotations without rescanning any chunk. A missing or corrupt sidecar
// just means the chunk is not skippable.
func (b *zoneMapBackend) ZoneMap(key string) (ZoneMap, bool) {
	b.mu.Lock()
	zm, ok := b.cache[key]
	b.mu.Unlock()
	if ok {
		return zm, true
	}
	raw, err := os.ReadFile(b.sidecarPath(key))
	if err != nil {
		return ZoneMap{}, false
	}
	zm, err = decodeZoneMap(raw)
	if err != nil {
		return ZoneMap{}, false
	}
	b.mu.Lock()
	b.cache[key] = zm
	b.mu.Unlock()
	return zm, true
}

func (b *zoneMapBackend) ReadChunk(key string) ([]byte, error) { return b.inner.ReadChunk(key) }

func (b *zoneMapBackend) Remove(key string) error {
	b.mu.Lock()
	delete(b.cache, key)
	b.mu.Unlock()
	if err := os.Remove(b.sidecarPath(key)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return b.inner.Remove(key)
}

// Reap reaps the inner backend, then removes sidecar debris — stale .zm
// files and interrupted .zm.tmp writes. Sidecars are metadata, not chunks,
// so they do not inflate the reported reap count.
func (b *zoneMapBackend) Reap() (int, error) {
	b.mu.Lock()
	b.cache = make(map[string]ZoneMap)
	b.mu.Unlock()
	n, err := b.inner.Reap()
	if err != nil {
		return n, err
	}
	for _, pattern := range []string{"chunk-*.bin" + zoneSuffix, "chunk-*.bin" + zoneSuffix + tmpSuffix} {
		stale, gerr := filepath.Glob(filepath.Join(b.dir, pattern))
		if gerr != nil {
			return n, fmt.Errorf("chunk: scanning for stale zone maps: %w", gerr)
		}
		for _, p := range stale {
			if rerr := os.Remove(p); rerr != nil && !os.IsNotExist(rerr) {
				return n, fmt.Errorf("chunk: reaping stale zone map: %w", rerr)
			}
		}
	}
	return n, nil
}

func (b *zoneMapBackend) BytesOf(key string) (int64, error) { return b.inner.BytesOf(key) }

// List delegates and re-filters through validChunkKey: even when the
// sidecar directory is the inner backend's own directory, .zm files are not
// valid chunk keys, so the Backend.List contract (write debris and metadata
// excluded) holds for the wrapped backend too.
func (b *zoneMapBackend) List() ([]string, error) {
	keys, err := b.inner.List()
	if err != nil {
		return nil, err
	}
	out := keys[:0]
	for _, k := range keys {
		if validChunkKey(k) {
			out = append(out, k)
		}
	}
	return out, nil
}

// zoneMapExecBackend forwards the inner backend's pushdown capability
// through the annotating wrapper (the inner ExecOp already carries any
// codec negotiation a compressing layer added).
type zoneMapExecBackend struct {
	*zoneMapBackend
	exec ExecBackend
}

func (b *zoneMapExecBackend) ExecOp(op Op, kind string, cols int, chunks []ExecChunk) (*PartialStream, error) {
	return b.exec.ExecOp(op, kind, cols, chunks)
}

var (
	_ Backend     = (*zoneMapBackend)(nil)
	_ zoneWriter  = (*zoneMapBackend)(nil)
	_ zoneMapper  = (*zoneMapBackend)(nil)
	_ ExecBackend = (*zoneMapExecBackend)(nil)
)
