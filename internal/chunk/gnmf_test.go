package chunk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/ml"
)

// positiveDense builds a strictly positive matrix (GNMF input domain).
func positiveDense(rng *rand.Rand, rows, cols int) *la.Dense {
	d := la.NewDense(rows, cols)
	for i := range d.Data() {
		d.Data()[i] = rng.Float64() + 0.05
	}
	return d
}

// TestChunkedGNMFMatchesInMemory pins the streamed GNMF to the in-memory
// ml.GNMF on a dense table: identical seed, factors within 1e-12.
func TestChunkedGNMFMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n, d, rank, iters, seed = 89, 11, 4, 8, 7
	td := positiveDense(rng, n, d)
	ref, err := ml.GNMF(td, rank, ml.Options{Iters: iters, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	s := testStore(t)
	tc, err := FromDense(s, td, 9) // ragged last chunk
	if err != nil {
		t.Fatal(err)
	}
	res, err := GNMFExec(Parallel(), tc, rank, iters, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.W.Rows() != n || res.W.Cols() != rank || res.H.Rows() != d || res.H.Cols() != rank {
		t.Fatalf("factor shapes W %dx%d H %dx%d", res.W.Rows(), res.W.Cols(), res.H.Rows(), res.H.Cols())
	}
	w, err := res.W.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if diff := la.MaxAbsDiff(res.H, ref.H); diff > 1e-12 {
		t.Fatalf("H diverges from ml.GNMF by %g", diff)
	}
	if diff := la.MaxAbsDiff(w, ref.W); diff > 1e-12 {
		t.Fatalf("W diverges from ml.GNMF by %g", diff)
	}
	if res.BytesRead <= 0 {
		t.Fatal("no I/O accounted")
	}
	// Streamed reconstruction error agrees with the in-memory one.
	got, err := res.ReconstructionError(Parallel(), tc)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.ReconstructionError(td)
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("reconstruction error %g, in-memory %g", got, want)
	}
}

// TestChunkedGNMFSparseMatchesInMemory: the same driver over CSR chunks
// (one-hot Table 6 shape) matches ml.GNMF run on the in-memory CSR.
func TestChunkedGNMFSparseMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const n, rank, iters, seed = 77, 3, 6, 5
	sp := oneHotCSR(rng, n, 3, 4)
	ref, err := ml.GNMF(sp, rank, ml.Options{Iters: iters, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	s := testStore(t)
	tc, err := FromCSR(s, sp, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GNMFExec(Parallel(), tc, rank, iters, seed)
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.W.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if diff := la.MaxAbsDiff(res.H, ref.H); diff > 1e-12 {
		t.Fatalf("sparse H diverges from ml.GNMF by %g", diff)
	}
	if diff := la.MaxAbsDiff(w, ref.W); diff > 1e-12 {
		t.Fatalf("sparse W diverges from ml.GNMF by %g", diff)
	}
}

// TestChunkedGNMFSerialParallelIdentical: ordered commit keeps the
// streamed GNMF bit-deterministic across executions.
func TestChunkedGNMFSerialParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	s := testStore(t)
	tc, err := FromDense(s, positiveDense(rng, 64, 6), 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := GNMFExec(Serial, tc, 3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GNMFExec(Exec{Workers: 4, Prefetch: 8}, tc, 3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	wa, err := a.W.Dense()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := b.W.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(a.H, b.H) != 0 || la.MaxAbsDiff(wa, wb) != 0 {
		t.Fatal("serial and parallel GNMF diverged")
	}
}

// TestChunkedGNMFLifecycle: intermediate W generations are freed as the
// iterations advance — after the run the store tracks only the input and
// the final W (plus the second result's, across repeated runs).
func TestChunkedGNMFLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	s := testStore(t)
	tc, err := FromDense(s, positiveDense(rng, 48, 5), 6)
	if err != nil {
		t.Fatal(err)
	}
	base := s.LiveChunks()
	res, err := GNMFExec(Parallel(), tc, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LiveChunks(); got != base+res.W.NumChunks() {
		t.Fatalf("after GNMF the store tracks %d chunks, want input %d + final W %d", got, base, res.W.NumChunks())
	}
	if err := res.W.Free(); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveChunks(); got != base {
		t.Fatalf("after freeing W the store tracks %d chunks, want %d", got, base)
	}
	// Invalid parameters fail loudly.
	if _, err := GNMFExec(Parallel(), tc, 0, 4, 3); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := GNMFExec(Parallel(), tc, 2, 0, 3); err == nil {
		t.Fatal("iters 0 accepted")
	}
}
