package chunk

import (
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/ml"
)

// oneHotCSR builds an n×(groups·groupWidth) matrix with exactly one 1 per
// group per row — the Table 6 one-hot shape.
func oneHotCSR(rng *rand.Rand, n, groups, groupWidth int) *la.CSR {
	b := la.NewCSRBuilder(n, groups*groupWidth)
	for i := 0; i < n; i++ {
		for g := 0; g < groups; g++ {
			b.Add(i, g*groupWidth+rng.Intn(groupWidth), 1)
		}
	}
	return b.Build()
}

// buildStar assembles a two-attribute-table star (dense R1, one-hot CSR
// R2) out-of-core plus its dense materialized join output.
func buildStar(t *testing.T, rng *rand.Rand, store *Store, nS, dS, chunkRows int) (*NormalizedTable, *la.Dense) {
	t.Helper()
	nR1, dR1 := 9, 5
	nR2, groups, gw := 7, 2, 3
	s := randDense(rng, nS, dS)
	r1 := randDense(rng, nR1, dR1)
	r2 := oneHotCSR(rng, nR2, groups, gw)
	dR2 := r2.Cols()
	fk1 := make([]int32, nS)
	fk2 := make([]int32, nS)
	for i := range fk1 {
		fk1[i] = int32(rng.Intn(nR1))
		fk2[i] = int32(rng.Intn(nR2))
	}
	td := la.NewDense(nS, dS+dR1+dR2)
	r2d := r2.Dense()
	for i := 0; i < nS; i++ {
		copy(td.Row(i)[:dS], s.Row(i))
		copy(td.Row(i)[dS:dS+dR1], r1.Row(int(fk1[i])))
		copy(td.Row(i)[dS+dR1:], r2d.Row(int(fk2[i])))
	}
	sm, err := FromDense(store, s, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	fkv1, err := BuildIntVector(store, fk1, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	fkv2, err := BuildIntVector(store, fk2, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := NewStarTable(sm, []AttrTable{{FK: fkv1, R: r1}, {FK: fkv2, R: r2}})
	if err != nil {
		t.Fatal(err)
	}
	return nt, td
}

func pmLabels(rng *rand.Rand, n int) *la.Dense {
	y := la.NewDense(n, 1)
	for i := range y.Data() {
		y.Data()[i] = float64(1 - 2*rng.Intn(2))
	}
	return y
}

// TestStarChunkedGLMMatchesInMemory pins the star-schema factorized
// chunked GLM to the chunked materialized run and the in-memory reference,
// and checks the factorized pass reads fewer bytes.
func TestStarChunkedGLMMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	store := testStore(t)
	const nS, dS, chunkRows = 260, 4, 32
	nt, td := buildStar(t, rng, store, nS, dS, chunkRows)
	y := pmLabels(rng, nS)
	const iters, alpha = 6, 1e-3

	tm, err := FromDense(store, td, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	resM, err := LogRegMaterializedExec(Parallel(), tm, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	resF, err := LogRegFactorizedExec(Parallel(), nt, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	wRef, err := ml.LogisticRegressionGD(td, y, nil, ml.Options{Iters: iters, StepSize: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if diff := la.MaxAbsDiff(resM.W, wRef); diff > 1e-12 {
		t.Fatalf("star chunked materialized deviates from in-memory by %g", diff)
	}
	if diff := la.MaxAbsDiff(resF.W, wRef); diff > 1e-12 {
		t.Fatalf("star chunked factorized deviates from in-memory by %g", diff)
	}
	if resF.BytesRead >= resM.BytesRead {
		t.Fatalf("star factorized read %d bytes, materialized %d — no I/O saving", resF.BytesRead, resM.BytesRead)
	}
}

// TestStarChunkedGLMSerialParallelIdentical: ordered commit keeps the star
// driver bit-deterministic across executions.
func TestStarChunkedGLMSerialParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	store := testStore(t)
	const nS, dS, chunkRows = 210, 3, 16
	nt, _ := buildStar(t, rng, store, nS, dS, chunkRows)
	y := pmLabels(rng, nS)
	serial, err := LogRegFactorizedExec(Serial, nt, y, 5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LogRegFactorizedExec(parExec, nt, y, 5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(serial.W, parallel.W) != 0 {
		t.Fatal("star parallel weights not bit-identical to serial")
	}
	if serial.BytesRead != parallel.BytesRead {
		t.Fatalf("star bytesRead %d (serial) vs %d (parallel)", serial.BytesRead, parallel.BytesRead)
	}
}

// TestSparseEntityStar runs the factorized star driver with the entity
// table stored as CSR chunks: the same chunk.Mat interface, same weights.
func TestSparseEntityStar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	store := testStore(t)
	const nS, dS, chunkRows = 180, 5, 16
	nt, _ := buildStar(t, rng, store, nS, dS, chunkRows)
	y := pmLabels(rng, nS)

	// Rebuild the same star with S in CSR chunks.
	sDense, err := nt.S.(*Matrix).Dense()
	if err != nil {
		t.Fatal(err)
	}
	sSparse, err := FromCSR(store, la.CSRFromDense(sDense), chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	ntSparse, err := NewStarTable(sSparse, nt.Attrs)
	if err != nil {
		t.Fatal(err)
	}
	const iters, alpha = 5, 1e-3
	wDense, err := LogRegFactorizedExec(parExec, nt, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	wSparse, err := LogRegFactorizedExec(parExec, ntSparse, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if diff := la.MaxAbsDiff(wDense.W, wSparse.W); diff > 1e-12 {
		t.Fatalf("sparse-entity star deviates from dense-entity star by %g", diff)
	}
}

// TestStarTableValidation rejects misaligned or missing components.
func TestStarTableValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	store := testStore(t)
	s, _ := FromDense(store, randDense(rng, 20, 2), 8)
	fk, _ := BuildIntVector(store, make([]int32, 20), 8)
	r := randDense(rng, 3, 2)
	if _, err := NewStarTable(nil, []AttrTable{{FK: fk, R: r}}); err == nil {
		t.Fatal("accepted nil entity table")
	}
	if _, err := NewStarTable(s, nil); err == nil {
		t.Fatal("accepted empty star")
	}
	if _, err := NewStarTable(s, []AttrTable{{FK: nil, R: r}}); err == nil {
		t.Fatal("accepted nil FK")
	}
	if _, err := NewStarTable(s, []AttrTable{{FK: fk, R: nil}}); err == nil {
		t.Fatal("accepted nil R")
	}
	fkShort, _ := BuildIntVector(store, make([]int32, 19), 8)
	if _, err := NewStarTable(s, []AttrTable{{FK: fkShort, R: r}}); err == nil {
		t.Fatal("accepted misaligned FK length")
	}
	fkWrongChunks, _ := BuildIntVector(store, make([]int32, 20), 7)
	if _, err := NewStarTable(s, []AttrTable{{FK: fk, R: r}, {FK: fkWrongChunks, R: r}}); err == nil {
		t.Fatal("accepted misaligned chunking")
	}
	// Out-of-range keys must be rejected at construction, not crash a
	// pipeline worker mid-pass.
	big := make([]int32, 20)
	big[7] = int32(r.Rows()) // == nR, one past the last R row
	fkBig, _ := BuildIntVector(store, big, 8)
	if _, err := NewStarTable(s, []AttrTable{{FK: fkBig, R: r}}); err == nil {
		t.Fatal("accepted FK key out of R's range")
	}
	neg := make([]int32, 20)
	neg[3] = -1
	fkNeg, _ := BuildIntVector(store, neg, 8)
	if _, err := NewStarTable(s, []AttrTable{{FK: fkNeg, R: r}}); err == nil {
		t.Fatal("accepted negative FK key")
	}
}
