package chunk

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/la"
)

// SparseMatrix is a CSR matrix partitioned into fixed-height row chunks,
// each persisted as its own little-endian CSR file. It brings the sparse
// real-data shapes of Table 6 (one-hot feature matrices with d in the tens
// of thousands) to the out-of-core engine: per-chunk I/O is proportional
// to the chunk's non-zeros, not rows×cols.
//
// Chunk file layout: three int64 header words (rows, cols, nnz), then
// rows+1 int64 row pointers, nnz int32 column indices, nnz float64 values.
type SparseMatrix struct {
	store      *Store
	rows, cols int
	chunkRows  int
	paths      []string
	nnz        int64
	freed      bool
}

// Rows reports the number of rows.
func (m *SparseMatrix) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *SparseMatrix) Cols() int { return m.cols }

// NNZ reports the total stored non-zeros.
func (m *SparseMatrix) NNZ() int64 { return m.nnz }

// NumChunks reports the chunk count.
func (m *SparseMatrix) NumChunks() int { return len(m.paths) }

// ChunkRows reports the chunk height.
func (m *SparseMatrix) ChunkRows() int { return m.chunkRows }

// Store returns the chunk store backing this matrix.
func (m *SparseMatrix) Store() *Store { return m.store }

// sparseChunkBytes is the on-disk size of one CSR chunk file: 3 header
// words + rows+1 row pointers, then 4+8 bytes per non-zero. The single
// source of truth for the layout that encodeSparseChunk produces,
// decodeSparseChunk validates, and the I/O accounting reports.
func sparseChunkBytes(rows int, nnz int64) int64 {
	return 8*int64(3+rows+1) + 12*nnz
}

// BytesOnDisk reports the storage footprint as the store tracks it: the
// bytes actually written for the matrix's chunks (compressed size when a
// codec wrapper is in the shard's chain). Zero once the matrix is freed.
func (m *SparseMatrix) BytesOnDisk() int64 { return m.store.trackedBytes(m.paths) }

// Free releases the matrix's chunk files.
func (m *SparseMatrix) Free() error {
	if m == nil || m.freed {
		return nil
	}
	m.freed = true
	return m.store.release(m.paths)
}

func (m *SparseMatrix) chunkBounds(i int) (lo, hi int) {
	lo = i * m.chunkRows
	hi = lo + m.chunkRows
	if hi > m.rows {
		hi = m.rows
	}
	return lo, hi
}

// FromCSR partitions c into chunks of chunkRows rows and spills them. On
// failure every chunk written so far is removed.
func FromCSR(store *Store, c *la.CSR, chunkRows int) (*SparseMatrix, error) {
	if chunkRows <= 0 {
		return nil, fmt.Errorf("chunk: chunkRows must be positive, got %d", chunkRows)
	}
	paths, err := store.alloc(numChunks(c.Rows(), chunkRows))
	if err != nil {
		return nil, err
	}
	m := &SparseMatrix{store: store, rows: c.Rows(), cols: c.Cols(), chunkRows: chunkRows, paths: paths, nnz: int64(c.NNZ())}
	for ci := range paths {
		lo, hi := m.chunkBounds(ci)
		part, ok := c.SliceRows(lo, hi).(*la.CSR)
		if !ok {
			store.release(paths)
			return nil, fmt.Errorf("chunk: CSR SliceRows returned %T", c.SliceRows(lo, hi))
		}
		if err := store.writeSparseChunkFile(paths[ci], part); err != nil {
			store.release(paths)
			return nil, err
		}
	}
	return m, nil
}

// writeSparseChunkFile encodes one CSR chunk, stores it on the key's shard
// backend — annotated with its zone map when the backend records them, at
// its compressed size when the backend compresses — and attributes the
// stored size to that shard on success.
func (s *Store) writeSparseChunkFile(key string, c *la.CSR) error {
	b, err := s.backendFor(key)
	if err != nil {
		return err
	}
	stored, err := writeThrough(b, key, encodeSparseChunk(c), func() ZoneMap { return csrZoneMap(c) })
	if err != nil {
		return err
	}
	s.recordWrite(key, stored)
	return nil
}

// encodeSparseChunk serializes c in the CSR chunk layout (header, row
// pointers, column indices, values), sized exactly sparseChunkBytes.
func encodeSparseChunk(c *la.CSR) []byte {
	nnz := c.NNZ()
	raw := make([]byte, 0, sparseChunkBytes(c.Rows(), int64(nnz)))
	raw = binary.LittleEndian.AppendUint64(raw, uint64(c.Rows()))
	raw = binary.LittleEndian.AppendUint64(raw, uint64(c.Cols()))
	raw = binary.LittleEndian.AppendUint64(raw, uint64(nnz))
	off := 0
	raw = binary.LittleEndian.AppendUint64(raw, 0)
	for i := 0; i < c.Rows(); i++ {
		idx, _ := c.RowNNZ(i)
		off += len(idx)
		raw = binary.LittleEndian.AppendUint64(raw, uint64(off))
	}
	for i := 0; i < c.Rows(); i++ {
		idx, _ := c.RowNNZ(i)
		for _, j := range idx {
			raw = binary.LittleEndian.AppendUint32(raw, uint32(j))
		}
	}
	for i := 0; i < c.Rows(); i++ {
		_, vals := c.RowNNZ(i)
		for _, v := range vals {
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
		}
	}
	return raw
}

// readSparseChunk fetches key from its shard backend and decodes it,
// validating shape and invariants (a corrupt blob surfaces as an error,
// never a panic). A zone-map-skipped read synthesizes the empty CSR chunk,
// allocated exactly as decodeSparseChunk would for a stored nnz=0 blob, so
// the result is bit-identical to reading.
func (s *Store) readSparseChunk(key string, rows, cols int) (*la.CSR, error) {
	raw, skipped, err := s.readChunkBlob(key)
	if err != nil {
		return nil, err
	}
	if skipped {
		return la.NewCSR(rows, cols, make([]int, rows+1), make([]int32, 0), make([]float64, 0)), nil
	}
	return decodeSparseChunk(key, raw, rows, cols)
}

func decodeSparseChunk(path string, raw []byte, rows, cols int) (c *la.CSR, err error) {
	if len(raw) < 8*3 {
		return nil, fmt.Errorf("chunk: %s truncated header", path)
	}
	gotRows := int(binary.LittleEndian.Uint64(raw[0:]))
	gotCols := int(binary.LittleEndian.Uint64(raw[8:]))
	nnz := int(binary.LittleEndian.Uint64(raw[16:]))
	if gotRows != rows || gotCols != cols || nnz < 0 {
		return nil, fmt.Errorf("chunk: %s is %dx%d (nnz %d), want %dx%d", path, gotRows, gotCols, nnz, rows, cols)
	}
	want := int(sparseChunkBytes(rows, int64(nnz)))
	if len(raw) != want {
		return nil, fmt.Errorf("chunk: %s has %d bytes, want %d", path, len(raw), want)
	}
	indptr := make([]int, rows+1)
	p := 8 * 3
	for i := range indptr {
		indptr[i] = int(int64(binary.LittleEndian.Uint64(raw[p:])))
		p += 8
	}
	indices := make([]int32, nnz)
	for i := range indices {
		indices[i] = int32(binary.LittleEndian.Uint32(raw[p:]))
		p += 4
	}
	vals := make([]float64, nnz)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	// la.NewCSR enforces the structural invariants by panicking; convert a
	// corrupt chunk into an error instead.
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, fmt.Errorf("chunk: corrupt sparse chunk %s: %v", path, r)
		}
	}()
	return la.NewCSR(rows, cols, indptr, indices, vals), nil
}

func (m *SparseMatrix) readAt(ci int) (*la.CSR, error) {
	lo, hi := m.chunkBounds(ci)
	return m.store.readSparseChunk(m.paths[ci], hi-lo, m.cols)
}

func (m *SparseMatrix) pipeline(ex Exec, mapFn func(ci, lo int, c *la.CSR) (any, error), commit func(ci int, v any) error) error {
	if m.freed {
		return ErrFreed
	}
	return runPipelineOrder(len(m.paths), ex, m.store.readOrder(m.paths, ex),
		m.readAt,
		func(ci int, c *la.CSR) (any, error) {
			lo, _ := m.chunkBounds(ci)
			return mapFn(ci, lo, c)
		},
		commit)
}

// ForEach streams every CSR chunk through fn in row order with read-ahead;
// fn is never called concurrently.
func (m *SparseMatrix) ForEach(fn func(lo int, chunk *la.CSR) error) error {
	return m.ForEachExec(Exec{Workers: 1, Prefetch: 2}, fn)
}

// ForEachExec streams chunks under the given execution; with ex.Workers>1,
// fn runs concurrently and chunk order is unspecified.
func (m *SparseMatrix) ForEachExec(ex Exec, fn func(lo int, chunk *la.CSR) error) error {
	return m.pipeline(ex, func(ci, lo int, c *la.CSR) (any, error) {
		return nil, fn(lo, c)
	}, nil)
}

// CSR loads the whole matrix back into memory (tests and small data only).
func (m *SparseMatrix) CSR() (*la.CSR, error) {
	parts := make([]*la.CSR, len(m.paths))
	err := m.pipeline(Parallel(), func(ci, lo int, c *la.CSR) (any, error) {
		return c, nil
	}, func(ci int, v any) error {
		parts[ci] = v.(*la.CSR)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return la.VCatCSR(parts...), nil
}

// Stream implements Mat: the chunk pipeline with each decoded CSR chunk
// delivered as an la.Mat.
func (m *SparseMatrix) Stream(ex Exec, mapFn func(ci, lo int, c la.Mat) (any, error), commit func(ci int, v any) error) error {
	return m.pipeline(ex, func(ci, lo int, c *la.CSR) (any, error) {
		return mapFn(ci, lo, c)
	}, commit)
}

// StreamOp implements Mat: it runs a registered op over every CSR chunk
// and commits the partials in chunk order; with ex.Pushdown, chunks held
// by exec-capable remote shards are mapped in place by the shard's worker.
func (m *SparseMatrix) StreamOp(ex Exec, op Op, commit func(ci int, v any) error) error {
	if m.freed {
		return ErrFreed
	}
	src := opSource{
		store: m.store,
		keys:  m.paths,
		kind:  chunkKindCSR,
		cols:  m.cols,
		rowsAt: func(ci int) int {
			lo, hi := m.chunkBounds(ci)
			return hi - lo
		},
		read: func(ci int) (la.Mat, error) { return m.readAt(ci) },
	}
	return src.runOp(ex, op, commit)
}

// StreamToMatrix implements Mat: it maps every CSR chunk to a dense output
// chunk and spills the results (through the write-behind stage under a
// pipelined execution) as a new chunked dense matrix aligned with the
// input's chunking. On failure every output chunk written so far is
// removed.
func (m *SparseMatrix) StreamToMatrix(ex Exec, outCols int, f func(ci, lo int, c la.Mat) (*la.Dense, error)) (*Matrix, error) {
	if m.freed {
		return nil, ErrFreed
	}
	sp, err := newOutputSpiller(m.store, len(m.paths), ex)
	if err != nil {
		return nil, err
	}
	err = m.pipeline(ex, func(ci, lo int, c *la.CSR) (any, error) {
		out, err := f(ci, lo, c)
		if err != nil {
			return nil, err
		}
		if out.Rows() != c.Rows() || out.Cols() != outCols {
			return nil, fmt.Errorf("chunk: mapped chunk is %dx%d, want %dx%d", out.Rows(), out.Cols(), c.Rows(), outCols)
		}
		return nil, sp.emit(ci, out)
	}, nil)
	paths, err := sp.finish(err)
	if err != nil {
		return nil, err
	}
	return &Matrix{store: m.store, rows: m.rows, cols: outCols, chunkRows: m.chunkRows, paths: paths}, nil
}

// Mul computes m·x into a new chunked dense matrix with one parallel
// streaming pass.
func (m *SparseMatrix) Mul(x *la.Dense) (*Matrix, error) { return m.MulExec(Parallel(), x) }

// MulExec computes m·x under the given execution. On failure every output
// chunk written so far is removed.
func (m *SparseMatrix) MulExec(ex Exec, x *la.Dense) (*Matrix, error) {
	if x.Rows() != m.cols {
		return nil, fmt.Errorf("chunk: sparse Mul %dx%d · %dx%d", m.rows, m.cols, x.Rows(), x.Cols())
	}
	return m.StreamToMatrix(ex, x.Cols(), func(ci, lo int, c la.Mat) (*la.Dense, error) {
		return c.Mul(x), nil
	})
}

// TMul computes mᵀ·x, accumulating the cols×xCols output in memory.
func (m *SparseMatrix) TMul(x *la.Dense) (*la.Dense, error) { return m.TMulExec(Parallel(), x) }

// TMulExec computes mᵀ·x under the given execution.
func (m *SparseMatrix) TMulExec(ex Exec, x *la.Dense) (*la.Dense, error) {
	if x.Rows() != m.rows {
		return nil, fmt.Errorf("chunk: sparse TMul %dx%dᵀ · %dx%d", m.rows, m.cols, x.Rows(), x.Cols())
	}
	acc := la.NewDense(m.cols, x.Cols())
	err := m.pipeline(ex, func(ci, lo int, c *la.CSR) (any, error) {
		return c.TMul(x.SliceRowsDense(lo, lo+c.Rows())), nil
	}, func(ci int, v any) error {
		acc.AddInPlace(v.(*la.Dense))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// CrossProd computes mᵀ·m by accumulating per-chunk cross-products.
func (m *SparseMatrix) CrossProd() (*la.Dense, error) { return m.CrossProdExec(Parallel()) }

// CrossProdExec computes mᵀ·m under the given execution, via the
// registered op (pushdown-capable).
func (m *SparseMatrix) CrossProdExec(ex Exec) (*la.Dense, error) {
	acc := la.NewDense(m.cols, m.cols)
	err := m.StreamOp(ex, OpCrossProd(), func(ci int, v any) error {
		acc.AddInPlace(v.(*la.Dense))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// ColSums aggregates column sums in one pass.
func (m *SparseMatrix) ColSums() (*la.Dense, error) { return m.ColSumsExec(Parallel()) }

// ColSumsExec aggregates column sums under the given execution, via the
// registered op (pushdown-capable).
func (m *SparseMatrix) ColSumsExec(ex Exec) (*la.Dense, error) {
	acc := la.NewDense(1, m.cols)
	err := m.StreamOp(ex, OpColSums(), func(ci int, v any) error {
		acc.AddInPlace(v.(*la.Dense))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// Sum aggregates the grand total in one pass.
func (m *SparseMatrix) Sum() (float64, error) { return m.SumExec(Parallel()) }

// SumExec aggregates the grand total under the given execution, via the
// registered op (pushdown-capable).
func (m *SparseMatrix) SumExec(ex Exec) (float64, error) {
	total := 0.0
	err := m.StreamOp(ex, OpSum(), func(ci int, v any) error {
		total += v.(float64)
		return nil
	})
	return total, err
}
