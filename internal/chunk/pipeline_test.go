package chunk

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestExecZeroValueIsParallel pins the documented zero-value contract:
// Exec{} normalizes to the full parallel configuration — Parallel()'s
// workers AND prefetch — while Serial and explicit worker counts keep
// their stated meaning.
func TestExecZeroValueIsParallel(t *testing.T) {
	zero := Exec{}.normalized()
	par := Parallel().normalized()
	if zero != par {
		t.Fatalf("Exec{}.normalized() = %+v, want Parallel() = %+v", zero, par)
	}
	if par.Prefetch != 2*par.Workers {
		t.Fatalf("Parallel().normalized() prefetch = %d, want 2×%d", par.Prefetch, par.Workers)
	}

	ser := Serial.normalized()
	if ser.Workers != 1 || ser.Prefetch != 0 {
		t.Fatalf("Serial.normalized() = %+v, want workers=1 prefetch=0", ser)
	}

	// An explicit worker count with Prefetch: 0 means "no prefetching",
	// as documented — only the all-defaulted zero value gets the parallel
	// prefetch depth.
	explicit := Exec{Workers: 3}.normalized()
	if explicit.Workers != 3 || explicit.Prefetch != 0 {
		t.Fatalf("Exec{Workers: 3}.normalized() = %+v, want workers=3 prefetch=0", explicit)
	}

	// Negative prefetch still clamps to 0, with and without workers set.
	if nx := (Exec{Workers: 2, Prefetch: -1}).normalized(); nx.Prefetch != 0 {
		t.Fatalf("negative prefetch normalized to %d, want 0", nx.Prefetch)
	}
	if nx := (Exec{Prefetch: -1}).normalized(); nx.Workers != runtime.GOMAXPROCS(0) || nx.Prefetch != 0 {
		t.Fatalf("Exec{Prefetch: -1}.normalized() = %+v, want workers=GOMAXPROCS prefetch=0", nx)
	}

	// Pushdown survives normalization.
	if nx := (Exec{Pushdown: true}).normalized(); !nx.Pushdown {
		t.Fatal("normalized() dropped Pushdown")
	}
}

// TestAdmissionTicketsBoundResidency pins the pipeline's residency bound:
// under a deliberately skewed straggler mapFn, the number of chunks
// admitted past read and not yet retired by commit never exceeds
// Workers+Prefetch+1. This is the invariant AutoRows sizes memory budgets
// against, so the larger-than-RAM regime depends on it.
func TestAdmissionTicketsBoundResidency(t *testing.T) {
	const n = 64
	ex := Exec{Workers: 4, Prefetch: 3}
	bound := ex.Workers + ex.Prefetch + 1

	var cur, peak atomic.Int64
	var release sync.Once
	unblock := make(chan struct{})

	read := func(ci int) (int, error) {
		v := cur.Add(1)
		for {
			old := peak.Load()
			if v <= old || peak.CompareAndSwap(old, v) {
				break
			}
		}
		// Once the pipeline has admitted as many chunks as it ever may,
		// let the straggler finish: if admission control were broken, the
		// reader would have run past the bound before this fires.
		if v >= int64(bound) {
			release.Do(func() { close(unblock) })
		}
		return ci, nil
	}
	mapFn := func(ci int, c int) (any, error) {
		if ci == 0 {
			// The straggler: chunk 0 blocks every commit (ordered) while
			// later chunks pile up behind it.
			<-unblock
		}
		return c, nil
	}
	next := 0
	commit := func(ci int, v any) error {
		if ci != next {
			t.Errorf("commit out of order: got %d, want %d", ci, next)
		}
		next++
		cur.Add(-1)
		return nil
	}
	if err := runPipeline(n, ex, read, mapFn, commit); err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("committed %d chunks, want %d", next, n)
	}
	if got := peak.Load(); got > int64(bound) {
		t.Fatalf("peak in-flight residency %d exceeds Workers+Prefetch+1 = %d", got, bound)
	}
	// The straggler really did hold the bound open: the pipeline reached
	// it (otherwise the release never fired and the test would deadlock).
	if got := peak.Load(); got != int64(bound) {
		t.Fatalf("peak in-flight residency %d, want the full bound %d", got, bound)
	}
}
