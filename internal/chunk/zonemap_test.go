package chunk

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/la"
)

// zoneStore builds a store whose single shard records zone maps; when
// codec is non-empty the compressing wrapper sits inside (the documented
// composition order), with sidecars sharing the shard directory.
func zoneStore(t testing.TB, codec string) *Store {
	t.Helper()
	dir := t.TempDir()
	var b Backend
	b, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if codec != "" {
		if b, err = NewCompressingBackend(b, codec); err != nil {
			t.Fatal(err)
		}
	}
	if b, err = NewZoneMapBackend(b, dir); err != nil {
		t.Fatal(err)
	}
	s, err := NewShardedStoreBackends([]Backend{b}, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// zeroBandDense builds a rows×cols dense matrix whose odd chunkRows-high
// bands are entirely +0.0 — the shape that rewards chunk skipping.
func zeroBandDense(rows, cols, chunkRows int) *la.Dense {
	d := la.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		if (i/chunkRows)%2 == 1 {
			continue
		}
		for j := 0; j < cols; j++ {
			d.Data()[i*cols+j] = float64(1 + (i+j)%7)
		}
	}
	return d
}

func TestDenseZoneMapStrictness(t *testing.T) {
	z := la.NewDense(3, 4)
	zm := denseZoneMap(z)
	if !zm.AllZero || zm.NNZ != 0 {
		t.Fatalf("zero chunk zone map = %+v, want AllZero", zm)
	}

	d := la.NewDense(2, 3)
	d.Data()[1] = -2.5
	d.Data()[5] = 7
	zm = denseZoneMap(d)
	if zm.AllZero || zm.NNZ != 2 || zm.Min != -2.5 || zm.Max != 7 {
		t.Fatalf("zone map = %+v, want nnz=2 min=-2.5 max=7", zm)
	}

	// Strictness: -0.0 and NaN have non-+0.0 bit patterns, so a chunk
	// holding them is NOT all-zero — skipping it would synthesize different
	// bits than a read would decode.
	neg := la.NewDense(1, 2)
	neg.Data()[0] = math.Copysign(0, -1)
	if zm := denseZoneMap(neg); zm.AllZero {
		t.Fatal("-0.0 chunk marked AllZero")
	}
	nan := la.NewDense(1, 2)
	nan.Data()[1] = math.NaN()
	if zm := denseZoneMap(nan); zm.AllZero {
		t.Fatal("NaN chunk marked AllZero")
	}

	// ColBlocks sees column occupancy.
	wide := la.NewDense(1, 128)
	wide.Data()[0] = 1   // block 0
	wide.Data()[127] = 1 // block 63
	if zm := denseZoneMap(wide); zm.ColBlocks != 1|1<<63 {
		t.Fatalf("ColBlocks = %b, want bits 0 and 63", zm.ColBlocks)
	}
}

func TestCSRZoneMap(t *testing.T) {
	empty := la.NewCSR(4, 8, make([]int, 5), []int32{}, []float64{})
	if zm := csrZoneMap(empty); !zm.AllZero || zm.NNZ != 0 {
		t.Fatalf("empty CSR zone map = %+v, want AllZero", zm)
	}
	c := la.NewCSR(2, 8, []int{0, 1, 2}, []int32{1, 6}, []float64{-1, 4})
	zm := csrZoneMap(c)
	if zm.AllZero || zm.NNZ != 2 || zm.Min != -1 || zm.Max != 4 {
		t.Fatalf("CSR zone map = %+v, want nnz=2 min=-1 max=4", zm)
	}
	// An explicitly stored zero still occupies structure: not all-zero.
	stored := la.NewCSR(1, 4, []int{0, 1}, []int32{2}, []float64{0})
	if zm := csrZoneMap(stored); zm.AllZero || zm.NNZ != 1 {
		t.Fatalf("stored-zero CSR zone map = %+v, want nnz=1, not AllZero", zm)
	}
}

func TestZoneMapSidecarEncoding(t *testing.T) {
	zm := ZoneMap{Min: -3.25, Max: 12.5, NNZ: 42, AllZero: false, ColBlocks: 0xdeadbeef}
	got, err := decodeZoneMap(encodeZoneMap(zm))
	if err != nil || got != zm {
		t.Fatalf("sidecar round trip = %+v, %v, want %+v", got, err, zm)
	}
	if _, err := decodeZoneMap(encodeZoneMap(zm)[:zoneFileLen-1]); err == nil {
		t.Fatal("decoding a truncated sidecar succeeded")
	}
	bad := encodeZoneMap(zm)
	bad[0] ^= 0xff
	if _, err := decodeZoneMap(bad); err == nil {
		t.Fatal("decoding a sidecar with corrupt magic succeeded")
	}
}

// TestZoneMapSidecarLifecycle: sidecars appear next to chunks at spill
// time, reload into a fresh wrapper (store adoption), vanish with Remove,
// and Reap clears debris without inflating the chunk count.
func TestZoneMapSidecarLifecycle(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := NewZoneMapBackend(inner, dir)
	if err != nil {
		t.Fatal(err)
	}
	zw := zb.(zoneWriter)
	const key = "chunk-000001.bin"
	want := ZoneMap{Min: 1, Max: 2, NNZ: 3, ColBlocks: 5}
	if _, err := zw.WriteChunkZoned(key, []byte{1, 2, 3}, want); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key+zoneSuffix)); err != nil {
		t.Fatalf("sidecar missing after zoned write: %v", err)
	}
	if got, ok := zb.(zoneMapper).ZoneMap(key); !ok || got != want {
		t.Fatalf("ZoneMap = %+v, %v, want %+v", got, ok, want)
	}

	// A fresh wrapper over the same directories regains the annotation from
	// the sidecar alone — the adoption path after a restart.
	zb2, err := NewZoneMapBackend(inner, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := zb2.(zoneMapper).ZoneMap(key); !ok || got != want {
		t.Fatalf("reloaded ZoneMap = %+v, %v, want %+v", got, ok, want)
	}

	// A corrupt sidecar means "not skippable", never an error or a wrong map.
	if err := os.WriteFile(filepath.Join(dir, key+zoneSuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	zb3, err := NewZoneMapBackend(inner, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := zb3.(zoneMapper).ZoneMap(key); ok {
		t.Fatal("corrupt sidecar produced a zone map")
	}

	// A plain (unzoned) overwrite invalidates the stale annotation.
	if err := zb.WriteChunk(key, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if _, ok := zb.(zoneMapper).ZoneMap(key); ok {
		t.Fatal("stale zone map survived a plain overwrite")
	}

	if _, err := zw.WriteChunkZoned(key, []byte{1}, want); err != nil {
		t.Fatal(err)
	}
	if err := zb.Remove(key); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key+zoneSuffix)); !os.IsNotExist(err) {
		t.Fatalf("sidecar survived Remove: %v", err)
	}

	// Reap counts chunks only, but clears sidecar debris too.
	if _, err := zw.WriteChunkZoned("chunk-000002.bin", []byte{1, 2}, want); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "chunk-000009.bin"+zoneSuffix+tmpSuffix), []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := zb.Reap()
	if err != nil || n != 1 {
		t.Fatalf("Reap = %d, %v, want 1 (the chunk, not its metadata)", n, err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"+zoneSuffix+"*"))
	if err != nil || len(left) != 0 {
		t.Fatalf("sidecar debris after Reap: %v, %v", left, err)
	}
}

// TestZoneSkipAccounting: over a zero-banded matrix, a zone-map store
// produces bit-identical reductions while reading only the nonzero chunks,
// and the skips surface through IOStats and ShardStats.
func TestZoneSkipAccounting(t *testing.T) {
	const rows, cols, chunkRows = 64, 16, 8 // 8 chunks, 4 of them zero
	d := zeroBandDense(rows, cols, chunkRows)

	plain := testStore(t)
	zoned := zoneStore(t, CodecShuffleFlate)
	defer zoned.Close()
	mp, err := FromDense(plain, d, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	mz, err := FromDense(zoned, d, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	if got := zoned.ZoneMapShards(); got != 1 {
		t.Fatalf("ZoneMapShards = %d, want 1", got)
	}

	for _, ex := range []Exec{Serial, Parallel()} {
		cpP, err := mp.CrossProdExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		cpZ, err := mz.CrossProdExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(cpP, cpZ) != 0 {
			t.Fatal("crossprod differs between plain and zone-map store")
		}
		csP, err := mp.ColSumsExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		csZ, err := mz.ColSumsExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(csP, csZ) != 0 {
			t.Fatal("colsums differs between plain and zone-map store")
		}
		sP, err := mp.SumExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		sZ, err := mz.SumExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		if sP != sZ {
			t.Fatalf("sum = %v zoned, %v plain", sZ, sP)
		}
	}

	io := zoned.IOStats()
	// 3 ops × 2 execs, 4 zero chunks each: every one skipped, none read.
	if io.ChunksSkipped != 24 {
		t.Fatalf("ChunksSkipped = %d, want 24", io.ChunksSkipped)
	}
	if io.ChunksRead != 24 {
		t.Fatalf("ChunksRead = %d, want 24 (6 passes × 4 nonzero chunks)", io.ChunksRead)
	}
	if io.BytesSkipped <= 0 || io.BytesRead <= 0 {
		t.Fatalf("IOStats bytes not accounted: %+v", io)
	}
	pio := plain.IOStats()
	if pio.ChunksSkipped != 0 || pio.ChunksRead != 48 {
		t.Fatalf("plain IOStats = %+v, want 48 reads and no skips", pio)
	}
	if io.BytesRead >= pio.BytesRead {
		t.Fatalf("zone+codec store read %d bytes, plain read %d — skipping saved nothing", io.BytesRead, pio.BytesRead)
	}
	stats := zoned.ShardStats()
	if len(stats) != 1 || stats[0].ChunksSkipped != io.ChunksSkipped || stats[0].BytesSkipped != io.BytesSkipped {
		t.Fatalf("ShardStats skip accounting %+v disagrees with IOStats %+v", stats, io)
	}

	// The k-means assignment pass has no shape-only partial: its zero
	// chunks are synthesized by the read path (never decoded from disk) and
	// assigned for real, bit-identically.
	kmP, err := KMeansExec(Parallel(), mp, 3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	kmZ, err := KMeansExec(Parallel(), mz, 3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(kmP.Centroids, kmZ.Centroids) != 0 || kmP.Objective != kmZ.Objective {
		t.Fatal("k-means differs between plain and zone-map store")
	}
}

// TestZoneSkipSparse: CSR chunks with no stored entries are skipped and the
// synthesized empty chunk is bit-identical to the decoded one.
func TestZoneSkipSparse(t *testing.T) {
	const rows, cols, chunkRows = 32, 8, 8 // chunks 1 and 3 empty
	indptr := make([]int, rows+1)
	var idx []int32
	var vals []float64
	for i := 0; i < rows; i++ {
		if (i/chunkRows)%2 == 0 {
			idx = append(idx, int32(i%cols))
			vals = append(vals, float64(i+1))
		}
		indptr[i+1] = len(idx)
	}
	c := la.NewCSR(rows, cols, indptr, idx, vals)

	plain := testStore(t)
	zoned := zoneStore(t, "")
	defer zoned.Close()
	mp, err := FromCSR(plain, c, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	mz, err := FromCSR(zoned, c, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	cpP, err := mp.CrossProdExec(Parallel())
	if err != nil {
		t.Fatal(err)
	}
	cpZ, err := mz.CrossProdExec(Parallel())
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(cpP, cpZ) != 0 {
		t.Fatal("sparse crossprod differs between plain and zone-map store")
	}
	if io := zoned.IOStats(); io.ChunksSkipped != 2 {
		t.Fatalf("ChunksSkipped = %d, want 2", io.ChunksSkipped)
	}
	// Full round trip: the synthesized empty chunks decode into the
	// original matrix bit-exactly.
	got, err := mz.CSR()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(got.Dense(), c.Dense()) != 0 {
		t.Fatal("zone-map CSR round trip differs")
	}
}

// TestNegativeZeroNotSkipped: a chunk whose only entries are -0.0 must be
// read, not skipped — its bit pattern differs from the synthesized +0.0
// chunk even though it compares equal.
func TestNegativeZeroNotSkipped(t *testing.T) {
	const rows, cols, chunkRows = 16, 4, 8
	d := la.NewDense(rows, cols)
	d.Data()[0] = 1 // chunk 0 nonzero
	for j := 0; j < cols; j++ {
		d.Data()[chunkRows*cols+j] = math.Copysign(0, -1) // chunk 1 all -0.0
	}
	zoned := zoneStore(t, "")
	defer zoned.Close()
	m, err := FromDense(zoned, d, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ColSumsExec(Serial); err != nil {
		t.Fatal(err)
	}
	if io := zoned.IOStats(); io.ChunksSkipped != 0 {
		t.Fatalf("ChunksSkipped = %d, want 0 (-0.0 defeats the all-zero proof)", io.ChunksSkipped)
	}
	// The real invariant: the -0.0 chunk was read, not synthesized, so its
	// bit patterns survive the round trip. A store that (incorrectly)
	// treated -0.0 as zero would hand back +0.0 here.
	got, err := m.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(got, d) != 0 {
		t.Fatal("round trip differs")
	}
	for j := 0; j < cols; j++ {
		if !math.Signbit(got.Data()[chunkRows*cols+j]) {
			t.Fatal("-0.0 bit pattern lost in round trip")
		}
	}
}

// TestZoneSkipPushdown: the zero-partial shortcut merges correctly with the
// pushdown committer — local, remote, and precomputed partials interleave
// in ascending chunk order and the result matches the plain store exactly.
func TestZoneSkipPushdown(t *testing.T) {
	const rows, cols, chunkRows = 64, 16, 8
	d := zeroBandDense(rows, cols, chunkRows)

	plain := testStore(t)
	mp, err := FromDense(plain, d, chunkRows)
	if err != nil {
		t.Fatal(err)
	}

	// Mixed store: one zoned+compressed local shard, one zoned+compressed
	// remote (exec-capable) shard.
	localDir := t.TempDir()
	var local Backend
	local, err = NewDirBackend(localDir)
	if err != nil {
		t.Fatal(err)
	}
	if local, err = NewCompressingBackend(local, CodecShuffleFlate); err != nil {
		t.Fatal(err)
	}
	if local, err = NewZoneMapBackend(local, localDir); err != nil {
		t.Fatal(err)
	}
	var remote Backend
	remote, _ = startChunkServer(t)
	if remote, err = NewCompressingBackend(remote, CodecShuffleFlate); err != nil {
		t.Fatal(err)
	}
	if remote, err = NewZoneMapBackend(remote, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, ok := remote.(ExecBackend); !ok {
		t.Fatal("zone(compress(remote)) lost the exec capability")
	}
	mixed, err := NewShardedStoreBackends([]Backend{local, remote}, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer mixed.Close()
	mm, err := FromDense(mixed, d, chunkRows)
	if err != nil {
		t.Fatal(err)
	}

	for _, pd := range []bool{false, true} {
		ex := Exec{Workers: 2, Prefetch: 2, Pushdown: pd}
		cpP, err := mp.CrossProdExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		cpM, err := mm.CrossProdExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(cpP, cpM) != 0 {
			t.Fatalf("pushdown=%v: crossprod differs from the plain store", pd)
		}
		sP, err := mp.SumExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		sM, err := mm.SumExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		if sP != sM {
			t.Fatalf("pushdown=%v: sum differs from the plain store", pd)
		}
		kmP, err := KMeansExec(ex, mp, 3, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		kmM, err := KMeansExec(ex, mm, 3, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(kmP.Centroids, kmM.Centroids) != 0 || kmP.Objective != kmM.Objective {
			t.Fatalf("pushdown=%v: k-means differs from the plain store", pd)
		}
	}
	if io := mixed.IOStats(); io.ChunksSkipped == 0 {
		t.Fatalf("no chunks skipped across the mixed passes: %+v", io)
	}
	if io := mixed.IOStats(); io.BytesOnWire <= 0 {
		t.Fatalf("BytesOnWire = %d through the remote shard, want > 0", io.BytesOnWire)
	}
}

// TestWrappedDifferentialDrivers pins every driver — dense GLM, sparse GLM,
// star-schema factorized GLM, streamed k-means, streamed GNMF — to
// bitwise-identical results between a plain store and a store whose shards
// (one local, one remote) sit behind zone-map-over-compressing wrappers,
// with pushdown both off and on: compression and skip annotations change
// bytes moved, never results.
func TestWrappedDifferentialDrivers(t *testing.T) {
	plain := testStore(t)

	localDir := t.TempDir()
	var local Backend
	local, err := NewDirBackend(localDir)
	if err != nil {
		t.Fatal(err)
	}
	if local, err = NewCompressingBackend(local, CodecShuffleFlate); err != nil {
		t.Fatal(err)
	}
	if local, err = NewZoneMapBackend(local, localDir); err != nil {
		t.Fatal(err)
	}
	var remote Backend
	remote, _ = startChunkServer(t)
	if remote, err = NewCompressingBackend(remote, CodecShuffleFlate); err != nil {
		t.Fatal(err)
	}
	if remote, err = NewZoneMapBackend(remote, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	wrapped, err := NewShardedStoreBackends([]Backend{local, remote}, LeastBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer wrapped.Close()

	d1, s1, nt1, y := buildPKFKInputs(t, plain, 55)
	d2, s2, nt2, _ := buildPKFKInputs(t, wrapped, 55)

	const iters = 3
	for _, pd := range []bool{false, true} {
		ex := Parallel()
		ex.Pushdown = pd

		rd1, err := LogRegMaterializedExec(ex, d1, y, iters, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		rd2, err := LogRegMaterializedExec(ex, d2, y, iters, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(rd1.W, rd2.W) != 0 {
			t.Fatalf("pushdown=%v: dense GLM weights differ under wrapped backends", pd)
		}

		rs1, err := LogRegMaterializedExec(ex, s1, y, iters, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		rs2, err := LogRegMaterializedExec(ex, s2, y, iters, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(rs1.W, rs2.W) != 0 {
			t.Fatalf("pushdown=%v: sparse GLM weights differ under wrapped backends", pd)
		}

		rf1, err := LogRegFactorizedExec(ex, nt1, y, iters, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		rf2, err := LogRegFactorizedExec(ex, nt2, y, iters, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(rf1.W, rf2.W) != 0 {
			t.Fatalf("pushdown=%v: star GLM weights differ under wrapped backends", pd)
		}

		km1, err := KMeansExec(ex, d1, 4, 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		km2, err := KMeansExec(ex, d2, 4, 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(km1.Centroids, km2.Centroids) != 0 || km1.Objective != km2.Objective {
			t.Fatalf("pushdown=%v: k-means results differ under wrapped backends", pd)
		}
		a1, err := km1.Assign.Dense()
		if err != nil {
			t.Fatal(err)
		}
		a2, err := km2.Assign.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(a1, a2) != 0 {
			t.Fatalf("pushdown=%v: k-means assignments differ under wrapped backends", pd)
		}

		g1, err := GNMFExec(ex, s1, 3, 3, 11)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := GNMFExec(ex, s2, 3, 3, 11)
		if err != nil {
			t.Fatal(err)
		}
		w1, err := g1.W.Dense()
		if err != nil {
			t.Fatal(err)
		}
		w2, err := g2.W.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(g1.H, g2.H) != 0 || la.MaxAbsDiff(w1, w2) != 0 {
			t.Fatalf("pushdown=%v: GNMF factors differ under wrapped backends", pd)
		}
	}

	// The wrapped store stores the same matrices in fewer tracked bytes
	// (the compressed sizes), and the wire meter saw the remote traffic.
	if wb, pb := wrapped.BytesOnDisk(), plain.BytesOnDisk(); wb >= pb {
		t.Fatalf("wrapped store BytesOnDisk = %d, plain = %d — compression saved nothing", wb, pb)
	}
	if io := wrapped.IOStats(); io.BytesOnWire <= 0 {
		t.Fatalf("BytesOnWire = %d, want > 0 through the remote shard", io.BytesOnWire)
	}
}

// TestWrappedMidStreamFailureAccounting mirrors the remote failure-injection
// test with both wrappers in the chain: injected mid-stream failures error
// the pass, and LiveChunks/BytesOnDisk return to baseline — the wrappers
// add no leak paths.
func TestWrappedMidStreamFailureAccounting(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewChunkServer(filepath.Join(dir, "remote"), 0)
	if err != nil {
		t.Fatal(err)
	}
	fault := &faultServer{inner: inner, dir: filepath.Join(dir, "remote")}
	srv := httptest.NewServer(fault)
	defer srv.Close()
	var remote Backend
	remote, err = NewRemoteBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if remote, err = NewCompressingBackend(remote, CodecShuffleFlate); err != nil {
		t.Fatal(err)
	}
	if remote, err = NewZoneMapBackend(remote, filepath.Join(dir, "zm-remote")); err != nil {
		t.Fatal(err)
	}
	localDir := filepath.Join(dir, "local")
	var local Backend
	local, err = NewDirBackend(localDir)
	if err != nil {
		t.Fatal(err)
	}
	if local, err = NewCompressingBackend(local, CodecShuffleFlate); err != nil {
		t.Fatal(err)
	}
	if local, err = NewZoneMapBackend(local, localDir); err != nil {
		t.Fatal(err)
	}
	s, err := NewShardedStoreBackends([]Backend{local, remote}, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}

	d, sp, nt, y := buildPKFKInputs(t, s, 56)
	baselineChunks := s.LiveChunks()
	baselineBytes := s.BytesOnDisk()

	ex := Exec{Workers: 2, Prefetch: 2}

	fault.arm("read")
	if _, err := LogRegMaterializedExec(ex, d, y, 2, 1e-3); err == nil {
		t.Fatal("dense GLM succeeded despite mid-stream read failures")
	}
	fault.arm("")
	if got := s.LiveChunks(); got != baselineChunks {
		t.Fatalf("after read failures: %d live chunks, want baseline %d", got, baselineChunks)
	}
	if got := s.BytesOnDisk(); got != baselineBytes {
		t.Fatalf("after read failures: %d bytes, want baseline %d", got, baselineBytes)
	}

	fault.arm("write")
	if _, err := d.MulExec(ex, la.Ones(d.Cols(), 3)); err == nil {
		t.Fatal("spilled Mul succeeded despite remote write outage")
	}
	fault.arm("")
	if got := s.LiveChunks(); got != baselineChunks {
		t.Fatalf("after write failures: %d live chunks, want baseline %d", got, baselineChunks)
	}
	if got := s.BytesOnDisk(); got != baselineBytes {
		t.Fatalf("after write failures: %d bytes, want baseline %d", got, baselineBytes)
	}

	if _, err := d.SumExec(ex); err != nil {
		t.Fatalf("pass after recovery: %v", err)
	}
	if err := nt.Free(); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Free(); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveChunks(); got != 0 {
		t.Fatalf("%d live chunks after freeing everything", got)
	}
	if got := s.BytesOnDisk(); got != 0 {
		t.Fatalf("%d bytes accounted after freeing everything", got)
	}
	// No sidecar leaks either: local sidecars share the shard dir.
	if left, _ := filepath.Glob(filepath.Join(localDir, "*"+zoneSuffix)); len(left) != 0 {
		t.Fatalf("sidecars leaked after freeing everything: %v", left)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestZoneSkipSerialMatchesParallelWithRandomZeros: randomized placement of
// zero chunks; serial, parallel, and skipping paths all commit in ascending
// order, so sums match bitwise across every configuration.
func TestZoneSkipSerialMatchesParallelWithRandomZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const rows, cols, chunkRows = 96, 8, 8
	d := la.NewDense(rows, cols)
	for band := 0; band < rows/chunkRows; band++ {
		if rng.Intn(2) == 0 {
			continue // leave the band all-zero
		}
		for i := band * chunkRows * cols; i < (band+1)*chunkRows*cols; i++ {
			d.Data()[i] = rng.NormFloat64()
		}
	}
	plain := testStore(t)
	zoned := zoneStore(t, "")
	defer zoned.Close()
	mp, err := FromDense(plain, d, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	mz, err := FromDense(zoned, d, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mp.SumExec(Serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range []Exec{Serial, {Workers: 2, Prefetch: 1}, Parallel()} {
		got, err := mz.SumExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sum = %v under %+v, want %v", got, ex, want)
		}
	}
}
