package chunk

import (
	"fmt"
	"math/rand"

	"repro/internal/la"
)

// KMeansResult holds the fitted centroids, the chunked assignment column,
// and the observed I/O volume.
type KMeansResult struct {
	// Centroids is d×k, matching ml.KMeans.
	Centroids *la.Dense
	// Assign is the n×1 chunked cluster-id column, aligned with the input
	// table's chunking — the assignment vector itself stays out-of-core.
	Assign *Matrix
	// Objective is the final sum of squared distances to assigned
	// centroids.
	Objective float64
	// BytesRead tallies the chunk bytes streamed across all passes.
	BytesRead int64
}

// kmPart is one chunk's contribution to a k-means iteration: the partial
// centroid numerators Tᵀ·A and cluster counts.
type kmPart struct {
	sums   *la.Dense
	counts []float64
	bytes  int64
}

// kmeansAssignPartial computes one chunk's assignment partial for fixed
// centroids: expand the pairwise squared distances ‖t_i‖² + ‖c_j‖² −
// 2·t_i·c_j from the chunk's T·C product, take the per-row argmin (ties
// toward the lowest cluster index, like ml.KMeans), and return the chunk's
// centroid numerators chunkᵀ·A and cluster counts. It is the body of
// OpKMeansAssign, shared by the driver's workers and the chunkd worker so
// pushed-down iterations reduce bit-identically.
func kmeansAssignPartial(ch la.Mat, c *la.Dense, cNorm []float64) kmPart {
	rows, k := ch.Rows(), c.Cols()
	tc := ch.Mul(c) // rows×k (LMM)
	dt := rowSquaredNorms(ch)
	a := la.NewDense(rows, k)
	for i := 0; i < rows; i++ {
		row := tc.Row(i)
		best, bestD := 0, dt[i]+cNorm[0]-2*row[0]
		for j := 1; j < k; j++ {
			if dd := dt[i] + cNorm[j] - 2*row[j]; dd < bestD {
				best, bestD = j, dd
			}
		}
		a.Set(i, best, 1)
	}
	return kmPart{sums: ch.TMul(a), counts: a.ColSumsVec(), bytes: EncodedBytes(ch)}
}

// KMeansExec runs streamed k-means under the given execution. Each
// iteration is one pass over the chunks: workers expand the pairwise
// squared distances ‖t_i‖² + ‖c_j‖² − 2·t_i·c_j from a per-chunk T·C
// product, take the per-row argmin (ties toward the lowest cluster index,
// like ml.KMeans), and produce the chunk's centroid partials chunkᵀ·A; the
// committer reduces the partials in chunk order, so centroids are
// bit-identical for every Exec. Empty clusters keep their previous
// centroid. A final pass gathers the argmin per row into a chunked
// assignment column through the write-behind spiller and accumulates the
// objective, again in chunk order. The planner-driven entry point is
// plan.KMeans.
func KMeansExec(ex Exec, t Mat, k, iters int, seed int64) (*KMeansResult, error) {
	n, d := t.Rows(), t.Cols()
	if k <= 0 {
		return nil, fmt.Errorf("chunk: k must be positive, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("chunk: k=%d exceeds %d points", k, n)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("chunk: iters must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	c := la.NewDense(d, k)
	for i := range c.Data() {
		c.Data()[i] = rng.NormFloat64()
	}
	var bytesRead int64

	for it := 0; it < iters; it++ {
		sums := la.NewDense(d, k)
		counts := make([]float64, k)
		// The assignment pass is a registered op (the centroids travel in
		// the op params), so with ex.Pushdown each chunk's distance+argmin
		// expansion runs on the shard holding it.
		err := t.StreamOp(ex, OpKMeansAssign(c), func(ci int, v any) error {
			pt := v.(kmPart)
			sums.AddInPlace(pt.sums)
			for j, cv := range pt.counts {
				counts[j] += cv
			}
			bytesRead += pt.bytes
			return nil
		})
		if err != nil {
			return nil, err
		}
		for j := 0; j < k; j++ {
			if counts[j] == 0 {
				continue
			}
			for i := 0; i < d; i++ {
				c.Set(i, j, sums.At(i, j)/counts[j])
			}
		}
	}

	// Final pass: argmin gather into the chunked assignment column plus
	// the objective, committed in chunk order.
	cNorm := c.PowDense(2).ColSumsVec()
	sp, err := newOutputSpiller(t.Store(), t.NumChunks(), ex)
	if err != nil {
		return nil, err
	}
	type assignPart struct {
		obj   float64
		bytes int64
	}
	objective := 0.0
	err = t.Stream(ex, func(ci, lo int, ch la.Mat) (any, error) {
		rows := ch.Rows()
		tc := ch.Mul(c)
		dt := rowSquaredNorms(ch)
		out := la.NewDense(rows, 1)
		obj := 0.0
		for i := 0; i < rows; i++ {
			row := tc.Row(i)
			best, bestD := 0, dt[i]+cNorm[0]-2*row[0]
			for j := 1; j < k; j++ {
				if dd := dt[i] + cNorm[j] - 2*row[j]; dd < bestD {
					best, bestD = j, dd
				}
			}
			out.Set(i, 0, float64(best))
			obj += bestD
		}
		if err := sp.emit(ci, out); err != nil {
			return nil, err
		}
		return assignPart{obj: obj, bytes: EncodedBytes(ch)}, nil
	}, func(ci int, v any) error {
		pt := v.(assignPart)
		objective += pt.obj
		bytesRead += pt.bytes
		return nil
	})
	paths, err := sp.finish(err)
	if err != nil {
		return nil, err
	}
	assign := &Matrix{store: t.Store(), rows: n, cols: 1, chunkRows: t.ChunkRows(), paths: paths}
	return &KMeansResult{Centroids: c, Assign: assign, Objective: objective, BytesRead: bytesRead}, nil
}
