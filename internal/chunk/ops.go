package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/la"
)

// Op names a per-chunk map whose partials reduce associatively on the
// driver. Ops are registered by name so the exact same apply code runs on
// the driver's workers and on a remote chunkd worker: a pushed-down pass
// merges bit-identically with the all-local run because the per-chunk
// floating-point work is byte-for-byte the same and the committer reduces
// in ascending chunk order either way.
//
// Params carries the op's closure state (e.g. the k-means centroids) as an
// opaque blob produced by the Op constructors below; both sides decode it
// with the same registry entry.
type Op struct {
	Name   string
	Params []byte
}

// ErrUnknownOp reports an op name absent from the registry (e.g. a newer
// client against an older chunkd).
var ErrUnknownOp = errors.New("chunk: unknown op")

// opState is a prepared op: immutable after construction, so one instance
// is shared safely by all pipeline workers.
type opState interface {
	// apply runs the per-chunk map. The returned value is what the
	// driver-side committer sees — the same Go value whether the chunk was
	// mapped locally or remotely.
	apply(c la.Mat) (any, error)
	// encodePartial and decodePartial serialize apply's result for the
	// /exec wire. Floats travel as raw IEEE-754 bit patterns, so the
	// round-trip is lossless.
	encodePartial(v any) ([]byte, error)
	decodePartial(raw []byte) (any, error)
}

var opRegistry = map[string]func(params []byte) (opState, error){
	"crossprod": func(params []byte) (opState, error) {
		if len(params) != 0 {
			return nil, fmt.Errorf("chunk: op crossprod takes no params")
		}
		return denseReduceOp{
			f:    func(c la.Mat) *la.Dense { return c.CrossProd() },
			zero: func(rows, cols int) *la.Dense { return la.NewDense(cols, cols) },
		}, nil
	},
	"colsums": func(params []byte) (opState, error) {
		if len(params) != 0 {
			return nil, fmt.Errorf("chunk: op colsums takes no params")
		}
		return denseReduceOp{
			f:    func(c la.Mat) *la.Dense { return c.ColSums() },
			zero: func(rows, cols int) *la.Dense { return la.NewDense(1, cols) },
		}, nil
	},
	"sum": func(params []byte) (opState, error) {
		if len(params) != 0 {
			return nil, fmt.Errorf("chunk: op sum takes no params")
		}
		return sumOp{}, nil
	},
	"kmeans-assign": func(params []byte) (opState, error) {
		cent, rest, err := readDenseBlob(params)
		if err != nil {
			return nil, fmt.Errorf("chunk: op kmeans-assign params: %w", err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("chunk: op kmeans-assign params: %d trailing bytes", len(rest))
		}
		return kmeansAssignOp{cent: cent, cNorm: cent.PowDense(2).ColSumsVec()}, nil
	},
}

// OpCrossProd names the AᵀA partial: each chunk contributes chunkᵀ·chunk.
func OpCrossProd() Op { return Op{Name: "crossprod"} }

// OpColSums names the column-sum partial: each chunk contributes its 1×d
// column sums.
func OpColSums() Op { return Op{Name: "colsums"} }

// OpSum names the scalar-sum partial.
func OpSum() Op { return Op{Name: "sum"} }

// OpKMeansAssign names one k-means assignment pass against the given d×k
// centroids: each chunk contributes its centroid numerators chunkᵀ·A and
// cluster counts (A the one-hot argmin matrix, ties toward the lowest
// cluster index).
func OpKMeansAssign(centroids *la.Dense) Op {
	return Op{Name: "kmeans-assign", Params: appendDenseBlob(nil, centroids)}
}

// prepareOp resolves an Op against the registry.
func prepareOp(op Op) (opState, error) {
	mk, ok := opRegistry[op.Name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownOp, op.Name)
	}
	return mk(op.Params)
}

// zeroPartialer is the skip-eligibility capability: ops whose partial for
// an all-zero chunk depends only on the chunk's shape, so runOp can commit
// it without reading, decoding, or even synthesizing the chunk. The value
// MUST be bit-identical to apply on the zero chunk — true for the additive
// reductions, because an AllZero zone map admits only +0.0 bit patterns
// and IEEE-754 sums and products of +0.0 are exactly +0.0. kmeans-assign
// is deliberately absent: its partial encodes real cluster assignments
// even for a zero chunk, so skipped chunks are synthesized by the read
// path (Store.readChunkBlob) and assigned for real instead.
type zeroPartialer interface {
	zeroPartial(rows, cols int) any
}

// denseReduceOp covers ops whose partial is a single dense matrix reduced
// by element-wise addition (crossprod, colsums). zero builds the identity
// partial for an all-zero rows×cols chunk.
type denseReduceOp struct {
	f    func(c la.Mat) *la.Dense
	zero func(rows, cols int) *la.Dense
}

func (o denseReduceOp) apply(c la.Mat) (any, error) { return o.f(c), nil }

func (o denseReduceOp) zeroPartial(rows, cols int) any { return o.zero(rows, cols) }

func (o denseReduceOp) encodePartial(v any) ([]byte, error) {
	d, ok := v.(*la.Dense)
	if !ok {
		return nil, fmt.Errorf("chunk: dense op partial is %T, want *la.Dense", v)
	}
	return appendDenseBlob(nil, d), nil
}

func (o denseReduceOp) decodePartial(raw []byte) (any, error) {
	d, rest, err := readDenseBlob(raw)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("chunk: dense partial: %d trailing bytes", len(rest))
	}
	return d, nil
}

// sumOp's partial is one float64.
type sumOp struct{}

func (sumOp) apply(c la.Mat) (any, error) { return c.Sum(), nil }

func (sumOp) zeroPartial(rows, cols int) any { return 0.0 }

func (sumOp) encodePartial(v any) ([]byte, error) {
	f, ok := v.(float64)
	if !ok {
		return nil, fmt.Errorf("chunk: sum partial is %T, want float64", v)
	}
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(f)), nil
}

func (sumOp) decodePartial(raw []byte) (any, error) {
	if len(raw) != 8 {
		return nil, fmt.Errorf("chunk: sum partial is %d bytes, want 8", len(raw))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw)), nil
}

// kmeansAssignOp maps a chunk to its kmPart for fixed centroids.
type kmeansAssignOp struct {
	cent  *la.Dense
	cNorm []float64
}

func (o kmeansAssignOp) apply(c la.Mat) (any, error) {
	return kmeansAssignPartial(c, o.cent, o.cNorm), nil
}

func (o kmeansAssignOp) encodePartial(v any) ([]byte, error) {
	pt, ok := v.(kmPart)
	if !ok {
		return nil, fmt.Errorf("chunk: kmeans-assign partial is %T, want kmPart", v)
	}
	raw := appendDenseBlob(nil, pt.sums)
	raw = binary.LittleEndian.AppendUint64(raw, uint64(len(pt.counts)))
	for _, cv := range pt.counts {
		raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(cv))
	}
	return binary.LittleEndian.AppendUint64(raw, uint64(pt.bytes)), nil
}

func (o kmeansAssignOp) decodePartial(raw []byte) (any, error) {
	sums, rest, err := readDenseBlob(raw)
	if err != nil {
		return nil, fmt.Errorf("chunk: kmeans-assign partial: %w", err)
	}
	if len(rest) < 8 {
		return nil, fmt.Errorf("chunk: kmeans-assign partial: truncated counts")
	}
	k := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	if k > uint64(1)<<24 || uint64(len(rest)) != (k+1)*8 {
		return nil, fmt.Errorf("chunk: kmeans-assign partial: bad counts length %d", k)
	}
	counts := make([]float64, k)
	for j := range counts {
		counts[j] = math.Float64frombits(binary.LittleEndian.Uint64(rest[j*8:]))
	}
	bytes := binary.LittleEndian.Uint64(rest[k*8:])
	return kmPart{sums: sums, counts: counts, bytes: int64(bytes)}, nil
}

// appendDenseBlob serializes a dense matrix as uint64 rows, uint64 cols,
// then rows·cols float64 bit patterns, all little-endian.
func appendDenseBlob(raw []byte, d *la.Dense) []byte {
	raw = binary.LittleEndian.AppendUint64(raw, uint64(d.Rows()))
	raw = binary.LittleEndian.AppendUint64(raw, uint64(d.Cols()))
	for _, v := range d.Data() {
		raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
	}
	return raw
}

// readDenseBlob decodes one appendDenseBlob matrix and returns the
// remaining bytes.
func readDenseBlob(raw []byte) (*la.Dense, []byte, error) {
	if len(raw) < 16 {
		return nil, nil, fmt.Errorf("dense blob: %d bytes, want ≥16", len(raw))
	}
	rows := binary.LittleEndian.Uint64(raw)
	cols := binary.LittleEndian.Uint64(raw[8:])
	if rows > uint64(1)<<31 || cols > uint64(1)<<31 {
		return nil, nil, fmt.Errorf("dense blob: implausible shape %dx%d", rows, cols)
	}
	cells := rows * cols
	if cells > uint64(1)<<32 {
		return nil, nil, fmt.Errorf("dense blob: implausible size %dx%d", rows, cols)
	}
	need := 16 + cells*8
	if uint64(len(raw)) < need {
		return nil, nil, fmt.Errorf("dense blob: %d bytes, want %d for %dx%d", len(raw), need, rows, cols)
	}
	data := make([]float64, cells)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[16+i*8:]))
	}
	return la.NewDenseData(int(rows), int(cols), data), raw[need:], nil
}
