package chunk

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/la"
)

// TestInterleavedOrderWindows pins the window-limited round-robin: within
// each window reads cycle across the shards present, never across window
// boundaries, and trivial interleaves collapse to nil (chunk order).
func TestInterleavedOrderWindows(t *testing.T) {
	// Block placement [0,0,1,1 | 0,0,1,1] under window 4: each window holds
	// two chunks per shard, so reads alternate 0,2,1,3 then 4,6,5,7.
	got := interleavedOrder([]int{0, 0, 1, 1, 0, 0, 1, 1}, 2, 4)
	want := []int{0, 2, 1, 3, 4, 6, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// One shard, tiny window, or an already-interleaved layout: nil.
	if got := interleavedOrder([]int{0, 0, 0, 0}, 1, 4); got != nil {
		t.Errorf("single shard: order = %v, want nil", got)
	}
	if got := interleavedOrder([]int{0, 1, 0, 1}, 2, 1); got != nil {
		t.Errorf("window 1: order = %v, want nil", got)
	}
	if got := interleavedOrder([]int{0, 1, 0, 1}, 2, 2); got != nil {
		t.Errorf("identity interleave: order = %v, want nil", got)
	}
	// Out-of-range shard ids group with shard 0 instead of panicking.
	if got := interleavedOrder([]int{-1, 5, 1, 1}, 2, 4); len(got) == 0 {
		t.Error("out-of-range shard ids: expected a non-identity order")
	}
}

// recordingBackend wraps a Backend and appends every ReadChunk key to a
// shared, mutex-guarded log — the observability hook for asserting the
// reader's actual visit order.
type recordingBackend struct {
	Backend
	mu    *sync.Mutex
	reads *[]string
}

func (b *recordingBackend) ReadChunk(key string) ([]byte, error) {
	b.mu.Lock()
	*b.reads = append(*b.reads, key)
	b.mu.Unlock()
	return b.Backend.ReadChunk(key)
}

// TestPipelineShardInterleave drives a pipelined pass over a two-shard
// store and asserts the reader visits chunks in the interleaved order —
// round-robin across shards within admission windows — while results stay
// bit-identical to the serial chunk-order pass; a single-shard store keeps
// plain chunk order.
func TestPipelineShardInterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	root := t.TempDir()
	var mu sync.Mutex
	var reads []string
	backends := make([]Backend, 2)
	for i, dir := range []string{root + "/a", root + "/b"} {
		b, err := NewDirBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = &recordingBackend{Backend: b, mu: &mu, reads: &reads}
	}
	st, err := NewShardedStoreBackends(backends, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const n, d, chunkRows = 64, 3, 8 // 8 chunks alternating shards
	data := randDense(rng, n, d)
	m, err := FromDense(st, data, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	// Workers 1 + Prefetch 1: window 3, so window [3,4,5] holds shard-1
	// chunk 3 behind shard-0 chunk 4 and the interleave is not the
	// identity.
	ex := Exec{Workers: 1, Prefetch: 1}
	order := m.store.readOrder(m.paths, ex)
	if order == nil {
		t.Fatal("2-shard store: expected a non-nil read order")
	}
	identity := true
	for i, ci := range order {
		if ci != i {
			identity = false
		}
	}
	if identity {
		t.Fatal("2-shard interleave collapsed to chunk order")
	}

	serial, err := m.ColSumsExec(Serial)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	reads = reads[:0]
	mu.Unlock()
	inter, err := m.ColSumsExec(ex)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(serial, inter) != 0 {
		t.Fatal("interleaved pass not bit-identical to serial chunk-order pass")
	}
	mu.Lock()
	got := append([]string(nil), reads...)
	mu.Unlock()
	if len(got) != len(order) {
		t.Fatalf("observed %d reads for %d chunks", len(got), len(order))
	}
	for i, ci := range order {
		if got[i] != m.paths[ci] {
			t.Fatalf("read %d = %s, want chunk %d (%s); full sequence %v", i, got[i], ci, m.paths[ci], got)
		}
	}

	// Single-shard store: same pass, plain chunk order.
	var muS sync.Mutex
	var readsS []string
	bS, err := NewDirBackend(root + "/single")
	if err != nil {
		t.Fatal(err)
	}
	stS, err := NewShardedStoreBackends([]Backend{&recordingBackend{Backend: bS, mu: &muS, reads: &readsS}}, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer stS.Close()
	mS, err := FromDense(stS, data, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	if ord := mS.store.readOrder(mS.paths, ex); ord != nil {
		t.Fatalf("1-shard store: read order %v, want nil (chunk order)", ord)
	}
	single, err := mS.ColSumsExec(ex)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(serial, single) != 0 {
		t.Fatal("single-shard pass deviates")
	}
	muS.Lock()
	defer muS.Unlock()
	for i, key := range readsS {
		if key != mS.paths[i] {
			t.Fatalf("1-shard read %d = %s, want %s", i, key, mS.paths[i])
		}
	}
}
