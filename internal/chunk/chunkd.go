package chunk

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
)

// DefaultMaxChunkBytes bounds the chunk blobs a ChunkServer accepts. A
// chunk's size is set by the store's memory budget (AutoRows), so anything
// approaching this limit indicates a misconfigured client, not a real
// chunk.
const DefaultMaxChunkBytes = 1 << 30 // 1 GiB

// ChunkServer serves one shard directory over HTTP — the morpheus-chunkd
// wire protocol that RemoteBackend speaks:
//
//	PUT    /chunks/{key}  store a chunk blob (Content-Length required,
//	                      bounded by maxBytes; the write is atomic, so a
//	                      client that dies mid-upload leaves nothing at key)
//	GET    /chunks/{key}  fetch a blob (exact Content-Length set)
//	HEAD   /chunks/{key}  stored size only
//	DELETE /chunks/{key}  remove a blob (idempotent)
//	GET    /chunks        list stored chunk keys, one per line
//	DELETE /chunks        reap every stored chunk plus interrupted-spill
//	                      temp debris; responds with the reaped count
//
// Keys are store-assigned chunk names (chunk-NNNNNN.bin); anything else is
// rejected, so a request can never escape the shard directory. Blobs land
// in the directory through the same atomic temp-file+rename path local
// shards use, making a crashed server restartable: debris is reaped by the
// next store that adopts the shard (DELETE /chunks).
//
// A ChunkServer holds no chunk state in memory — all state is the
// directory — so it can sit behind any stock HTTP server or mux.
type ChunkServer struct {
	dir      string
	backend  Backend
	maxBytes int64
}

// NewChunkServer creates (if needed) dir and returns a handler serving it.
// maxChunkBytes bounds accepted uploads; <=0 means DefaultMaxChunkBytes.
func NewChunkServer(dir string, maxChunkBytes int64) (*ChunkServer, error) {
	b, err := NewDirBackend(dir)
	if err != nil {
		return nil, err
	}
	if maxChunkBytes <= 0 {
		maxChunkBytes = DefaultMaxChunkBytes
	}
	return &ChunkServer{dir: dir, backend: b, maxBytes: maxChunkBytes}, nil
}

// ServeHTTP implements http.Handler.
func (s *ChunkServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rest, ok := strings.CutPrefix(r.URL.Path, "/chunks")
	if !ok {
		http.NotFound(w, r)
		return
	}
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		s.serveCollection(w, r)
		return
	}
	if !validChunkKey(rest) {
		http.Error(w, fmt.Sprintf("invalid chunk key %q", rest), http.StatusBadRequest)
		return
	}
	s.serveChunk(w, r, rest)
}

// serveCollection handles the keyless /chunks endpoints: listing and reap.
func (s *ChunkServer) serveCollection(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		keys, err := s.listKeys()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, k := range keys {
			fmt.Fprintln(w, k)
		}
	case http.MethodDelete:
		n, err := s.backend.Reap()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, n)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serveChunk handles the per-key verbs.
func (s *ChunkServer) serveChunk(w http.ResponseWriter, r *http.Request, key string) {
	switch r.Method {
	case http.MethodPut:
		s.put(w, r, key)
	case http.MethodGet:
		raw, err := s.backend.ReadChunk(key)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, os.ErrNotExist) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
		w.Write(raw)
	case http.MethodHead:
		n, err := s.backend.BytesOf(key)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, os.ErrNotExist) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	case http.MethodDelete:
		if err := s.backend.Remove(key); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// put stores an uploaded blob. The declared Content-Length is required and
// validated against the received bytes, so a connection cut mid-upload is
// rejected — and because the underlying write is temp-file+rename, a
// rejected or failed upload never leaves a partial blob at the key.
func (s *ChunkServer) put(w http.ResponseWriter, r *http.Request, key string) {
	if r.ContentLength < 0 {
		http.Error(w, "Content-Length required", http.StatusLengthRequired)
		return
	}
	if r.ContentLength > s.maxBytes {
		http.Error(w, fmt.Sprintf("chunk of %d bytes exceeds the server limit of %d", r.ContentLength, s.maxBytes), http.StatusRequestEntityTooLarge)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading chunk body: %v", err), http.StatusBadRequest)
		return
	}
	if int64(len(raw)) != r.ContentLength {
		http.Error(w, fmt.Sprintf("received %d bytes, Content-Length declared %d", len(raw), r.ContentLength), http.StatusBadRequest)
		return
	}
	if err := s.backend.WriteChunk(key, raw); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// listKeys enumerates the stored chunk keys in sorted order.
func (s *ChunkServer) listKeys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("chunk: listing shard: %w", err)
	}
	var keys []string
	for _, e := range entries {
		if !e.IsDir() && validChunkKey(e.Name()) {
			keys = append(keys, e.Name())
		}
	}
	sort.Strings(keys)
	return keys, nil
}
