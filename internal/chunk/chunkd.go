package chunk

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/la"
)

// DefaultMaxChunkBytes bounds the chunk blobs a ChunkServer accepts. A
// chunk's size is set by the store's memory budget (AutoRows), so anything
// approaching this limit indicates a misconfigured client, not a real
// chunk.
const DefaultMaxChunkBytes = 1 << 30 // 1 GiB

// ChunkServer serves one shard directory over HTTP — the morpheus-chunkd
// wire protocol that RemoteBackend speaks:
//
//	PUT    /chunks/{key}  store a chunk blob (Content-Length required,
//	                      bounded by maxBytes; the write is atomic, so a
//	                      client that dies mid-upload leaves nothing at key)
//	GET    /chunks/{key}  fetch a blob (exact Content-Length set)
//	HEAD   /chunks/{key}  stored size only
//	DELETE /chunks/{key}  remove a blob (idempotent)
//	GET    /chunks        list stored chunk keys, one per line
//	DELETE /chunks        reap every stored chunk plus interrupted-spill
//	                      temp debris; responds with the reaped count
//	POST   /exec          run a registered op over locally stored chunks
//	                      and stream back the encoded partials, in request
//	                      order (see the framing in exec.go)
//
// Keys are store-assigned chunk names (chunk-NNNNNN.bin); anything else is
// rejected, so a request can never escape the shard directory. Blobs land
// in the directory through the same atomic temp-file+rename path local
// shards use, making a crashed server restartable: debris is reaped by the
// next store that adopts the shard (DELETE /chunks).
//
// A ChunkServer holds no chunk state in memory — all state is the
// directory — so it can sit behind any stock HTTP server or mux.
type ChunkServer struct {
	dir      string
	backend  Backend
	maxBytes int64
}

// NewChunkServer creates (if needed) dir and returns a handler serving it.
// maxChunkBytes bounds accepted uploads; <=0 means DefaultMaxChunkBytes.
func NewChunkServer(dir string, maxChunkBytes int64) (*ChunkServer, error) {
	b, err := NewDirBackend(dir)
	if err != nil {
		return nil, err
	}
	if maxChunkBytes <= 0 {
		maxChunkBytes = DefaultMaxChunkBytes
	}
	return &ChunkServer{dir: dir, backend: b, maxBytes: maxChunkBytes}, nil
}

// ServeHTTP implements http.Handler.
func (s *ChunkServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/exec" {
		s.serveExec(w, r)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/chunks")
	if !ok {
		http.NotFound(w, r)
		return
	}
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		s.serveCollection(w, r)
		return
	}
	if !validChunkKey(rest) {
		http.Error(w, fmt.Sprintf("invalid chunk key %q", rest), http.StatusBadRequest)
		return
	}
	s.serveChunk(w, r, rest)
}

// serveCollection handles the keyless /chunks endpoints: listing and reap.
func (s *ChunkServer) serveCollection(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		keys, err := s.backend.List()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, k := range keys {
			fmt.Fprintln(w, k)
		}
	case http.MethodDelete:
		n, err := s.backend.Reap()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, n)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serveChunk handles the per-key verbs.
func (s *ChunkServer) serveChunk(w http.ResponseWriter, r *http.Request, key string) {
	switch r.Method {
	case http.MethodPut:
		s.put(w, r, key)
	case http.MethodGet:
		raw, err := s.backend.ReadChunk(key)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, os.ErrNotExist) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
		if _, err := w.Write(raw); err != nil {
			// The client is gone (it will see the cut and retry); log so a
			// half-sent chunk is visible server-side.
			log.Printf("morpheus-chunkd: sending %s: %v", key, err)
		}
	case http.MethodHead:
		n, err := s.backend.BytesOf(key)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, os.ErrNotExist) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	case http.MethodDelete:
		if err := s.backend.Remove(key); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// put stores an uploaded blob. The declared Content-Length is required and
// validated against the received bytes, so a connection cut mid-upload is
// rejected — and because the underlying write is temp-file+rename, a
// rejected or failed upload never leaves a partial blob at the key.
func (s *ChunkServer) put(w http.ResponseWriter, r *http.Request, key string) {
	if r.ContentLength < 0 {
		http.Error(w, "Content-Length required", http.StatusLengthRequired)
		return
	}
	if r.ContentLength > s.maxBytes {
		http.Error(w, fmt.Sprintf("chunk of %d bytes exceeds the server limit of %d", r.ContentLength, s.maxBytes), http.StatusRequestEntityTooLarge)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBytes))
	if err != nil {
		// A body overrunning the reader's limit is the same protocol
		// violation as an over-limit Content-Length; answer 413 for both
		// instead of a generic 400.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("chunk body exceeds the server limit of %d", s.maxBytes), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("reading chunk body: %v", err), http.StatusBadRequest)
		return
	}
	if int64(len(raw)) != r.ContentLength {
		http.Error(w, fmt.Sprintf("received %d bytes, Content-Length declared %d", len(raw), r.ContentLength), http.StatusBadRequest)
		return
	}
	if err := s.backend.WriteChunk(key, raw); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// serveExec runs a registered op over locally stored chunks — the worker
// half of pushdown. Partial frames stream back in request order, flushed
// as they complete, through the same ordered-commit pipeline the driver
// uses locally; a per-chunk failure after streaming has begun is reported
// in-band as an error frame (the HTTP status is already committed).
func (s *ChunkServer) serveExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("exec request exceeds the server limit of %d", s.maxBytes), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("reading exec request: %v", err), http.StatusBadRequest)
		return
	}
	var req execRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, fmt.Sprintf("decoding exec request: %v", err), http.StatusBadRequest)
		return
	}
	st, err := prepareOp(Op{Name: req.Op, Params: req.Params})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrUnknownOp) {
			// Not implemented: the client treats this as "no pushdown
			// here" and falls back, same as a pre-/exec server.
			status = http.StatusNotImplemented
		}
		http.Error(w, err.Error(), status)
		return
	}
	if req.Kind != chunkKindDense && req.Kind != chunkKindCSR {
		http.Error(w, fmt.Sprintf("unknown chunk kind %q", req.Kind), http.StatusBadRequest)
		return
	}
	if req.Cols <= 0 {
		http.Error(w, fmt.Sprintf("invalid cols %d", req.Cols), http.StatusBadRequest)
		return
	}
	var dec Codec
	if req.Codec != "" {
		// Unknown codec answers 400, not 501: 501 means "no /exec at all"
		// and would poison the client's capability cache even for requests
		// that ship no codec.
		dec, err = CodecByName(req.Codec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if len(req.Chunks) == 0 {
		http.Error(w, "no chunks requested", http.StatusBadRequest)
		return
	}
	for _, c := range req.Chunks {
		if !validChunkKey(c.Key) {
			http.Error(w, fmt.Sprintf("invalid chunk key %q", c.Key), http.StatusBadRequest)
			return
		}
		if c.Rows <= 0 {
			http.Error(w, fmt.Sprintf("invalid rows %d for %s", c.Rows, c.Key), http.StatusBadRequest)
			return
		}
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	read := func(ci int) (la.Mat, error) {
		c := req.Chunks[ci]
		raw, err := s.backend.ReadChunk(c.Key)
		if err != nil {
			return nil, err
		}
		if dec != nil {
			if raw, err = dec.Decode(raw); err != nil {
				return nil, fmt.Errorf("decoding %s with codec %s: %w", c.Key, dec.Name(), err)
			}
		}
		if req.Kind == chunkKindCSR {
			return decodeSparseChunk(c.Key, raw, c.Rows, req.Cols)
		}
		return decodeDenseChunk(c.Key, raw, c.Rows, req.Cols)
	}
	err = runPipeline(len(req.Chunks), Parallel(), read,
		func(ci int, c la.Mat) (any, error) {
			v, err := st.apply(c)
			if err != nil {
				return nil, err
			}
			return st.encodePartial(v)
		},
		func(ci int, v any) error {
			if err := writePartialFrame(w, v.([]byte)); err != nil {
				return err
			}
			flush()
			return nil
		})
	if err != nil {
		// Best effort: the client treats a failed error frame (cut
		// connection) the same way — fall back for the remaining chunks.
		if werr := writeErrorFrame(w, err.Error()); werr == nil {
			flush()
		}
		return
	}
	if err := writeEndFrame(w); err == nil {
		flush()
	}
}
