package chunk

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/la"
)

// execCountingServer wraps a ChunkServer and counts /exec requests, so
// tests can assert pushdown actually engaged (and not silently fall back
// everywhere while the differential still passes).
type execCountingServer struct {
	inner *ChunkServer
	execs atomic.Int64
}

func (s *execCountingServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/exec" {
		s.execs.Add(1)
	}
	s.inner.ServeHTTP(w, r)
}

// pushdownStore builds a store mixing one local shard with nWorkers
// exec-capable chunkd workers (RoundRobin, so every shard holds chunks)
// and returns the per-worker exec counters.
func pushdownStore(t testing.TB, nWorkers int) (*Store, []*execCountingServer) {
	t.Helper()
	local, err := NewDirBackend(filepath.Join(t.TempDir(), "local"))
	if err != nil {
		t.Fatal(err)
	}
	backends := []Backend{local}
	counters := make([]*execCountingServer, 0, nWorkers)
	for i := 0; i < nWorkers; i++ {
		inner, err := NewChunkServer(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		cs := &execCountingServer{inner: inner}
		srv := httptest.NewServer(cs)
		t.Cleanup(srv.Close)
		rb, err := NewRemoteBackend(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, rb)
		counters = append(counters, cs)
	}
	s, err := NewShardedStoreBackends(backends, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	return s, counters
}

func totalExecs(counters []*execCountingServer) int64 {
	var n int64
	for _, c := range counters {
		n += c.execs.Load()
	}
	return n
}

// TestPushdownDifferential pins the acceptance criterion: every pushed-down
// op — CrossProd, ColSums, Sum over dense and CSR chunks, and the k-means
// distance+argmin pass — is bitwise identical to the all-local parallel
// run over the same mixed local+remote store, and the /exec endpoint
// really was used.
func TestPushdownDifferential(t *testing.T) {
	s, counters := pushdownStore(t, 2)
	defer s.Close()

	rng := rand.New(rand.NewSource(42))
	dd := randDense(rng, 103, 7) // ragged last chunk
	dM, err := FromDense(s, dd, 8)
	if err != nil {
		t.Fatal(err)
	}
	sM, err := FromCSR(s, oneHotCSR(rng, 103, 3, 4), 8)
	if err != nil {
		t.Fatal(err)
	}

	exLocal := Exec{Workers: 4, Prefetch: 3}
	for _, ex := range []Exec{
		{Workers: 4, Prefetch: 3, Pushdown: true},
		{Workers: 1, Prefetch: 0, Pushdown: true}, // serial driver, remote workers
	} {
		for _, m := range []Mat{dM, sM} {
			xpL, err := m.CrossProdExec(exLocal)
			if err != nil {
				t.Fatal(err)
			}
			xpP, err := m.CrossProdExec(ex)
			if err != nil {
				t.Fatal(err)
			}
			if la.MaxAbsDiff(xpL, xpP) != 0 {
				t.Fatalf("%T crossprod under %+v diverged from all-local", m, ex)
			}
			csL, err := m.ColSumsExec(exLocal)
			if err != nil {
				t.Fatal(err)
			}
			csP, err := m.ColSumsExec(ex)
			if err != nil {
				t.Fatal(err)
			}
			if la.MaxAbsDiff(csL, csP) != 0 {
				t.Fatalf("%T colsums under %+v diverged from all-local", m, ex)
			}
			sumL, err := m.SumExec(exLocal)
			if err != nil {
				t.Fatal(err)
			}
			sumP, err := m.SumExec(ex)
			if err != nil {
				t.Fatal(err)
			}
			if sumL != sumP {
				t.Fatalf("%T sum under %+v = %v, all-local %v", m, ex, sumP, sumL)
			}
		}

		kmL, err := KMeansExec(exLocal, dM, 4, 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		kmP, err := KMeansExec(ex, dM, 4, 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(kmL.Centroids, kmP.Centroids) != 0 || kmL.Objective != kmP.Objective {
			t.Fatalf("k-means under %+v diverged from all-local", ex)
		}
		if kmL.BytesRead != kmP.BytesRead {
			t.Fatalf("k-means BytesRead under %+v = %d, all-local %d", ex, kmP.BytesRead, kmL.BytesRead)
		}
		aL, err := kmL.Assign.Dense()
		if err != nil {
			t.Fatal(err)
		}
		aP, err := kmP.Assign.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(aL, aP) != 0 {
			t.Fatalf("k-means assignments under %+v diverged from all-local", ex)
		}
		if err := kmL.Assign.Free(); err != nil {
			t.Fatal(err)
		}
		if err := kmP.Assign.Free(); err != nil {
			t.Fatal(err)
		}
	}

	if n := totalExecs(counters); n == 0 {
		t.Fatal("pushdown never reached a worker's /exec endpoint")
	}
	for i, c := range counters {
		if c.execs.Load() == 0 {
			t.Fatalf("worker %d never received an /exec request", i)
		}
	}

	if err := dM.Free(); err != nil {
		t.Fatal(err)
	}
	if err := sM.Free(); err != nil {
		t.Fatal(err)
	}
	if s.LiveChunks() != 0 || s.BytesOnDisk() != 0 {
		t.Fatalf("after Free: %d chunks, %d bytes still accounted", s.LiveChunks(), s.BytesOnDisk())
	}
}

// noExecServer is a pre-/exec chunk server: the disk protocol works, but
// /exec answers 404 like any unknown path did before the endpoint existed.
type noExecServer struct {
	inner *ChunkServer
	execs atomic.Int64
}

func (s *noExecServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/exec" {
		s.execs.Add(1)
		http.NotFound(w, r)
		return
	}
	s.inner.ServeHTTP(w, r)
}

// TestPushdownFallsBackOnOldServer: against a shard without /exec, a
// pushdown pass silently degrades to the passive read path — same results,
// no error — and the client remembers the answer so later passes skip the
// probe.
func TestPushdownFallsBackOnOldServer(t *testing.T) {
	inner, err := NewChunkServer(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	old := &noExecServer{inner: inner}
	srv := httptest.NewServer(old)
	defer srv.Close()
	rb, err := NewRemoteBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShardedStoreBackends([]Backend{rb}, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(3))
	dM, err := FromDense(s, randDense(rng, 61, 5), 8)
	if err != nil {
		t.Fatal(err)
	}
	exPush := Exec{Workers: 2, Prefetch: 2, Pushdown: true}
	want, err := dM.CrossProdExec(Exec{Workers: 2, Prefetch: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dM.CrossProdExec(exPush)
	if err != nil {
		t.Fatalf("pushdown against a pre-/exec server: %v", err)
	}
	if la.MaxAbsDiff(want, got) != 0 {
		t.Fatal("fallback results diverged from the local pass")
	}
	if n := old.execs.Load(); n != 1 {
		t.Fatalf("probed /exec %d times, want exactly 1", n)
	}
	// The unsupported answer is cached: another pass must not re-probe.
	if _, err := dM.ColSumsExec(exPush); err != nil {
		t.Fatal(err)
	}
	if n := old.execs.Load(); n != 1 {
		t.Fatalf("re-probed /exec after a definitive 404 (%d probes)", n)
	}
	if _, err := rb.ExecOp(OpSum(), chunkKindDense, 5, []ExecChunk{{Key: "chunk-000001.bin", Rows: 8}}); !errors.Is(err, ErrExecUnsupported) {
		t.Fatalf("ExecOp on a cached no-exec backend = %v, want ErrExecUnsupported", err)
	}
}

// cutExecServer serves /exec but cuts the connection after passing through
// a fixed number of response bytes — a worker dying mid-partial. The disk
// protocol can be failed independently, to pin what happens when the
// fallback path is dead too.
type cutExecServer struct {
	inner    *ChunkServer
	mu       sync.Mutex
	cutAfter int  // bytes of /exec response to pass through before dying
	failGets bool // when set, GET /chunks/{key} answers 500
}

func (s *cutExecServer) arm(cutAfter int, failGets bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cutAfter = cutAfter
	s.failGets = failGets
}

type cutWriter struct {
	http.ResponseWriter
	remaining int
}

func (w *cutWriter) Write(p []byte) (int, error) {
	if len(p) > w.remaining {
		if w.remaining > 0 {
			w.ResponseWriter.Write(p[:w.remaining])
		}
		if fl, ok := w.ResponseWriter.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler) // kill the stream without a clean end frame
	}
	w.remaining -= len(p)
	return w.ResponseWriter.Write(p)
}

func (s *cutExecServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	cutAfter, failGets := s.cutAfter, s.failGets
	s.mu.Unlock()
	if failGets && r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/chunks/") {
		http.Error(w, "injected disk outage", http.StatusInternalServerError)
		return
	}
	if r.URL.Path == "/exec" && cutAfter >= 0 {
		s.inner.ServeHTTP(&cutWriter{ResponseWriter: w, remaining: cutAfter}, r)
		return
	}
	s.inner.ServeHTTP(w, r)
}

// TestPushdownMidStreamCutFallsBack: a worker that dies mid-partial does
// not fail the pass or skew the result — the cut is detected (framed
// stream, no end frame) and the affected chunks rerun through the passive
// read path, bit-identically.
func TestPushdownMidStreamCutFallsBack(t *testing.T) {
	inner, err := NewChunkServer(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cut := &cutExecServer{inner: inner, cutAfter: -1}
	srv := httptest.NewServer(cut)
	defer srv.Close()
	rb, err := NewRemoteBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewDirBackend(filepath.Join(t.TempDir(), "local"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShardedStoreBackends([]Backend{local, rb}, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(11))
	dM, err := FromDense(s, randDense(rng, 103, 7), 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dM.CrossProdExec(Exec{Workers: 4, Prefetch: 3})
	if err != nil {
		t.Fatal(err)
	}
	baselineChunks, baselineBytes := s.LiveChunks(), s.BytesOnDisk()

	exPush := Exec{Workers: 4, Prefetch: 3, Pushdown: true}
	// Cut at every interesting offset: before any frame, mid-header,
	// mid-payload, and after a whole first partial (7×7×8 B + blob header
	// + frame header).
	for _, cutAfter := range []int{0, 5, 100, 9 + 16 + 7*7*8} {
		cut.arm(cutAfter, false)
		got, err := dM.CrossProdExec(exPush)
		if err != nil {
			t.Fatalf("cut after %d bytes: pass failed instead of falling back: %v", cutAfter, err)
		}
		if la.MaxAbsDiff(want, got) != 0 {
			t.Fatalf("cut after %d bytes: fallback result diverged", cutAfter)
		}
		if s.LiveChunks() != baselineChunks || s.BytesOnDisk() != baselineBytes {
			t.Fatalf("cut after %d bytes: accounting moved off baseline (%d chunks, %d bytes)",
				cutAfter, s.LiveChunks(), s.BytesOnDisk())
		}
	}

	// Worker dead AND the passive path dead: the pass must error — a
	// partial is never silently dropped — and accounting stays at
	// baseline; Free then unwinds to zero.
	cut.arm(0, true)
	if _, err := dM.CrossProdExec(exPush); err == nil {
		t.Fatal("pass succeeded with the worker cut and reads failing")
	}
	cut.arm(-1, false)
	if s.LiveChunks() != baselineChunks || s.BytesOnDisk() != baselineBytes {
		t.Fatalf("after failed pass: accounting off baseline (%d chunks, %d bytes)", s.LiveChunks(), s.BytesOnDisk())
	}
	if err := dM.Free(); err != nil {
		t.Fatal(err)
	}
	if s.LiveChunks() != 0 || s.BytesOnDisk() != 0 {
		t.Fatalf("after Free: %d chunks, %d bytes still accounted", s.LiveChunks(), s.BytesOnDisk())
	}
}

// TestExecOpRoundTrip drives the client-server /exec pair directly: the
// stream yields one decodable partial per requested chunk, in request
// order, then a clean EOF.
func TestExecOpRoundTrip(t *testing.T) {
	rb, _ := startChunkServer(t)
	rng := rand.New(rand.NewSource(5))
	chunks := make([]ExecChunk, 3)
	want := make([]float64, 3)
	for i := range chunks {
		d := randDense(rng, 4, 3)
		if err := rb.WriteChunk(keyFor(i), encodeDenseChunk(d)); err != nil {
			t.Fatal(err)
		}
		chunks[i] = ExecChunk{Key: keyFor(i), Rows: 4}
		want[i] = d.SumAll()
	}
	ps, err := rb.ExecOp(OpSum(), chunkKindDense, 3, chunks)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	st, err := prepareOp(OpSum())
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		raw, err := ps.Next()
		if err != nil {
			t.Fatalf("partial %d: %v", i, err)
		}
		v, err := st.decodePartial(raw)
		if err != nil {
			t.Fatalf("partial %d: %v", i, err)
		}
		if v.(float64) != want[i] {
			t.Fatalf("partial %d = %v, want %v", i, v, want[i])
		}
	}
	if _, err := ps.Next(); err != io.EOF {
		t.Fatalf("after end frame: %v, want io.EOF", err)
	}
}

func keyFor(i int) string { return fmt.Sprintf("chunk-%06d.bin", i+1) }

// TestServeExecProtocolErrors pins the /exec status codes the client's
// probe logic depends on: unknown op → 501 (treated as "no pushdown
// here"), malformed requests → 400, wrong method → 405.
func TestServeExecProtocolErrors(t *testing.T) {
	h, err := NewChunkServer(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	post := func(body string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/exec", strings.NewReader(body)))
		return rr
	}
	if rr := post(`{"op":"no-such-op","kind":"dense","cols":3,"chunks":[{"key":"chunk-000001.bin","rows":4}]}`); rr.Code != http.StatusNotImplemented {
		t.Fatalf("unknown op = %d, want 501", rr.Code)
	}
	for name, body := range map[string]string{
		"bad JSON":    `{`,
		"bad key":     `{"op":"sum","kind":"dense","cols":3,"chunks":[{"key":"../etc/passwd","rows":4}]}`,
		"bad kind":    `{"op":"sum","kind":"coo","cols":3,"chunks":[{"key":"chunk-000001.bin","rows":4}]}`,
		"bad cols":    `{"op":"sum","kind":"dense","cols":0,"chunks":[{"key":"chunk-000001.bin","rows":4}]}`,
		"bad rows":    `{"op":"sum","kind":"dense","cols":3,"chunks":[{"key":"chunk-000001.bin","rows":0}]}`,
		"no chunks":   `{"op":"sum","kind":"dense","cols":3,"chunks":[]}`,
		"bad params":  `{"op":"sum","params":"AAAA","kind":"dense","cols":3,"chunks":[{"key":"chunk-000001.bin","rows":4}]}`,
		"kmeans junk": `{"op":"kmeans-assign","params":"AAAA","kind":"dense","cols":3,"chunks":[{"key":"chunk-000001.bin","rows":4}]}`,
	} {
		if rr := post(body); rr.Code != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", name, rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/exec", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /exec = %d, want 405", rr.Code)
	}
	// A missing chunk surfaces in-band: 200, then an error frame.
	rr = post(`{"op":"sum","kind":"dense","cols":3,"chunks":[{"key":"chunk-000001.bin","rows":4}]}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("exec over a missing chunk = %d, want 200 + error frame", rr.Code)
	}
	ps := newPartialStream(io.NopCloser(rr.Body))
	if _, err := ps.Next(); err == nil || err == io.EOF {
		t.Fatalf("missing chunk stream = %v, want an in-band error", err)
	}
}

// TestPutOverrunReturns413 pins the MaxBytesReader path of put: a body
// that overruns the server limit answers 413 like the Content-Length
// check, not a generic 400. (Driving the handler directly, as a real
// server bounds the body read by the declared Content-Length.)
func TestPutOverrunReturns413(t *testing.T) {
	h, err := NewChunkServer(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPut, "/chunks/chunk-000001.bin", strings.NewReader(strings.Repeat("x", 200)))
	req.ContentLength = 32 // declared under the limit; the body overruns it
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("overrunning PUT = %d, want 413", rr.Code)
	}
}
