package chunk

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/la"
)

// errCanceled marks a pushdown producer stopped by the committer's
// cancellation; it never surfaces to callers.
var errCanceled = errors.New("chunk: pushdown pass canceled")

// opSource is one chunked operand viewed as op input: its store, chunk
// keys, wire kind, and the passive read path the pushdown runner falls
// back to.
type opSource struct {
	store  *Store
	keys   []string
	kind   string
	cols   int
	rowsAt func(ci int) int
	read   func(ci int) (la.Mat, error)
}

// pushRes is one chunk's op result traveling from a producer (local
// pipeline or remote group relay) to the merging committer.
type pushRes struct {
	ci  int
	v   any
	err error
}

// runOp streams every chunk through the op and commits the partials in
// ascending chunk order. Without ex.Pushdown (or without any exec-capable
// shard) this is exactly the local chunk pipeline. With it, chunks held by
// exec-capable shards are mapped in place by the shard's worker — one
// /exec stream per shard, partials relayed in that shard's ascending chunk
// order — while local chunks run through the usual worker pipeline; the
// committer merges the per-source streams in ascending global chunk order,
// so the reduction visits partials in the same order as the all-local run
// and the result is bit-identical. Any exec failure (no endpoint, unknown
// op, cut stream, corrupt partial) degrades that shard's remaining chunks
// to the passive ReadChunk + local-map path; a partial is dropped only by
// erroring the whole pass, never silently.
func (src opSource) runOp(ex Exec, op Op, commit func(ci int, v any) error) error {
	st, err := prepareOp(op)
	if err != nil {
		return err
	}
	ex = ex.normalized()
	n := len(src.keys)
	apply := func(ci int, c la.Mat) (any, error) { return st.apply(c) }

	// Zone-map shortcut: chunks proven all-zero whose op can build its
	// partial from the chunk shape alone never enter any pipeline — no
	// read, no decode, no synthesis. Their precomputed partials are merged
	// into the ordered commit below at their global positions, so the
	// reduction still visits every chunk's partial in ascending order and
	// the result stays bit-identical (an AllZero zone map admits only +0.0
	// bit patterns, for which the identity partial is exactly what apply
	// would have produced).
	var pre map[int]any
	if zp, ok := st.(zeroPartialer); ok {
		for ci := 0; ci < n; ci++ {
			if src.store.allZeroChunk(src.keys[ci]) {
				if pre == nil {
					pre = make(map[int]any)
				}
				pre[ci] = zp.zeroPartial(src.rowsAt(ci), src.cols)
				src.store.noteSkip(src.keys[ci])
			}
		}
	}

	if !ex.Pushdown {
		if pre == nil {
			return runPipelineOrder(n, ex, src.store.readOrder(src.keys, ex), src.read, apply, commit)
		}
		return src.runSkipping(ex, st, pre, commit)
	}

	// Partition the chunks by executing shard; chunks on passive shards
	// (or untracked keys, which surface their error on read) stay local.
	// Zone-proven all-zero chunks never ship: precomputed partials are
	// excluded entirely, and ops without the shape-only shortcut route
	// their all-zero chunks to the local group, where the read path
	// synthesizes the zero chunk without touching the backend.
	groups := make(map[int][]int)
	execs := make(map[int]ExecBackend)
	var local []int
	for ci := 0; ci < n; ci++ {
		if _, ok := pre[ci]; ok {
			continue
		}
		si, eb := src.store.execBackendFor(src.keys[ci])
		if eb == nil || src.store.allZeroChunk(src.keys[ci]) {
			local = append(local, ci)
			continue
		}
		groups[si] = append(groups[si], ci)
		execs[si] = eb
	}
	if len(groups) == 0 {
		if pre == nil {
			return runPipelineOrder(n, ex, src.store.readOrder(src.keys, ex), src.read, apply, commit)
		}
		return src.runSkipping(ex, st, pre, commit)
	}

	done := make(chan struct{})
	var cancelOnce sync.Once
	cancel := func() { cancelOnce.Do(func() { close(done) }) }
	defer cancel()

	// owner[ci] is the channel chunk ci's result arrives on. Each producer
	// delivers its results in its own ascending chunk order, so the
	// committer below — walking global chunk order and reading each chunk's
	// owner — always finds the next result at the head of some stream.
	owner := make([]chan pushRes, n)
	for si, cis := range groups {
		ch := make(chan pushRes, 4)
		for _, ci := range cis {
			owner[ci] = ch
		}
		go src.runRemoteGroup(st, op, execs[si], cis, ch, done)
	}
	if len(local) > 0 {
		ch := make(chan pushRes, 4)
		for _, ci := range local {
			owner[ci] = ch
		}
		go func() {
			err := runPipeline(len(local), ex,
				func(i int) (la.Mat, error) { return src.read(local[i]) },
				func(i int, c la.Mat) (any, error) { return st.apply(c) },
				func(i int, v any) error {
					if !sendRes(ch, done, pushRes{ci: local[i], v: v}) {
						return errCanceled
					}
					return nil
				})
			if err != nil && !errors.Is(err, errCanceled) {
				sendRes(ch, done, pushRes{ci: -1, err: err})
			}
		}()
	}

	for ci := 0; ci < n; ci++ {
		if v, ok := pre[ci]; ok {
			if err := commit(ci, v); err != nil {
				return err
			}
			continue
		}
		r := <-owner[ci]
		if r.err != nil {
			return r.err
		}
		if r.ci != ci {
			return fmt.Errorf("chunk: pushdown merge out of order: got chunk %d, want %d", r.ci, ci)
		}
		if err := commit(ci, r.v); err != nil {
			return err
		}
	}
	return nil
}

// runSkipping runs the local pipeline over only the chunks the zone-map
// shortcut could not precompute, interleaving the precomputed identity
// partials into the ordered commit at their global chunk positions: commit
// still sees every chunk index exactly once, in ascending order.
func (src opSource) runSkipping(ex Exec, st opState, pre map[int]any, commit func(ci int, v any) error) error {
	n := len(src.keys)
	pend := make([]int, 0, n-len(pre))
	keys := make([]string, 0, n-len(pre))
	for ci := 0; ci < n; ci++ {
		if _, ok := pre[ci]; !ok {
			pend = append(pend, ci)
			keys = append(keys, src.keys[ci])
		}
	}
	next := 0 // next global chunk index to commit
	flush := func(upto int) error {
		for ; next < upto; next++ {
			if v, ok := pre[next]; ok {
				if err := commit(next, v); err != nil {
					return err
				}
			}
		}
		return nil
	}
	err := runPipelineOrder(len(pend), ex, src.store.readOrder(keys, ex),
		func(i int) (la.Mat, error) { return src.read(pend[i]) },
		func(i int, c la.Mat) (any, error) { return st.apply(c) },
		func(i int, v any) error {
			if err := flush(pend[i]); err != nil {
				return err
			}
			next = pend[i] + 1
			return commit(pend[i], v)
		})
	if err != nil {
		return err
	}
	return flush(n)
}

// sendRes delivers a result unless the pass was canceled.
func sendRes(ch chan<- pushRes, done <-chan struct{}, r pushRes) bool {
	select {
	case ch <- r:
		return true
	case <-done:
		return false
	}
}

// runRemoteGroup maps one shard's chunks in place via its /exec stream,
// relaying decoded partials in the group's ascending chunk order. Any
// failure — the endpoint missing, the stream cut mid-partial, a corrupt
// frame — drops this chunk and the rest of the group to the passive
// ReadChunk + local-map path; only a failure of that path too errors the
// pass.
func (src opSource) runRemoteGroup(st opState, op Op, eb ExecBackend, cis []int, out chan<- pushRes, done <-chan struct{}) {
	fallback := func(ci int) bool {
		c, err := src.read(ci)
		if err == nil {
			var v any
			if v, err = st.apply(c); err == nil {
				return sendRes(out, done, pushRes{ci: ci, v: v})
			}
		}
		sendRes(out, done, pushRes{ci: ci, err: err})
		return false
	}
	chunks := make([]ExecChunk, len(cis))
	for i, ci := range cis {
		chunks[i] = ExecChunk{Key: src.keys[ci], Rows: src.rowsAt(ci)}
	}
	ps, err := eb.ExecOp(op, src.kind, src.cols, chunks)
	if err != nil {
		for _, ci := range cis {
			if !fallback(ci) {
				return
			}
		}
		return
	}
	defer ps.Close()
	for i, ci := range cis {
		raw, err := ps.Next()
		if err == nil {
			var v any
			if v, err = st.decodePartial(raw); err == nil {
				if !sendRes(out, done, pushRes{ci: ci, v: v}) {
					return
				}
				continue
			}
		}
		// Stream dead or partial corrupt: the rest of the group falls
		// back to the passive path.
		ps.Close()
		for _, rest := range cis[i:] {
			if !fallback(rest) {
				return
			}
		}
		return
	}
}
