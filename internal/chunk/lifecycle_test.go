package chunk

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/la"
)

func chunkFileCount(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "chunk-") {
			n++
		}
	}
	return n
}

// TestFreeRemovesIntermediateChunks: a pipeline's intermediate can be
// freed as soon as it is consumed, shrinking the on-disk footprint.
func TestFreeRemovesIntermediateChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDense(s, randDense(rng, 40, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	base := chunkFileCount(t, dir)
	inter, err := m.Mul(randDense(rng, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := chunkFileCount(t, dir); got != base+inter.NumChunks() {
		t.Fatalf("after Mul: %d files, want %d", got, base+inter.NumChunks())
	}
	final, err := inter.RowSums()
	if err != nil {
		t.Fatal(err)
	}
	if err := inter.Free(); err != nil {
		t.Fatal(err)
	}
	if err := inter.Free(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := chunkFileCount(t, dir); got != base+final.NumChunks() {
		t.Fatalf("after Free: %d files, want %d", got, base+final.NumChunks())
	}
	// The freed matrix refuses further streaming.
	if _, err := inter.Sum(); !errors.Is(err, ErrFreed) {
		t.Fatalf("Sum on freed matrix: %v, want ErrFreed", err)
	}
	if _, err := inter.Mul(randDense(rng, 4, 1)); !errors.Is(err, ErrFreed) {
		t.Fatalf("Mul on freed matrix: %v, want ErrFreed", err)
	}
	// The surviving result is still readable.
	if _, err := final.Dense(); err != nil {
		t.Fatal(err)
	}
}

// TestRetainSharesChunkFiles: files survive until the last handle is
// freed.
func TestRetainSharesChunkFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDense(s, randDense(rng, 20, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	h := m.Retain()
	if err := m.Free(); err != nil {
		t.Fatal(err)
	}
	if got := chunkFileCount(t, dir); got != h.NumChunks() {
		t.Fatalf("after freeing one handle: %d files, want %d", got, h.NumChunks())
	}
	if _, err := h.Sum(); err != nil {
		t.Fatalf("retained handle unusable: %v", err)
	}
	if err := h.Free(); err != nil {
		t.Fatal(err)
	}
	if got := chunkFileCount(t, dir); got != 0 {
		t.Fatalf("after freeing both handles: %d files, want 0", got)
	}
}

// TestRetainAfterFreeIsFreed: retaining a freed matrix must yield a
// handle that reports ErrFreed, not a dangling handle over deleted files.
func TestRetainAfterFreeIsFreed(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	s := testStore(t)
	m, err := FromDense(s, randDense(rng, 16, 2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(); err != nil {
		t.Fatal(err)
	}
	h := m.Retain()
	if _, err := h.Sum(); !errors.Is(err, ErrFreed) {
		t.Fatalf("Sum on retain-after-free handle: %v, want ErrFreed", err)
	}
	if err := h.Free(); err != nil { // no double release
		t.Fatal(err)
	}
	if s.LiveChunks() != 0 {
		t.Fatalf("store tracks %d chunks", s.LiveChunks())
	}
}

// TestStoreCloseRemovesEverything: Close deletes all remaining spill
// files and blocks new allocations.
func TestStoreCloseRemovesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDense(s, randDense(rng, 50, 5), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Scale(2); err != nil {
		t.Fatal(err)
	}
	if s.LiveChunks() == 0 {
		t.Fatal("store tracks no chunks before Close")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := chunkFileCount(t, dir); got != 0 {
		t.Fatalf("after Close: %d chunk files left", got)
	}
	if s.LiveChunks() != 0 {
		t.Fatal("store still tracks chunks after Close")
	}
	if _, err := FromDense(s, randDense(rng, 8, 2), 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("FromDense on closed store: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestPipelineLeavesNoDeadChunks drives a multi-step pipeline the way the
// experiments do — build, transform, reduce, free — and checks the store
// directory holds only the inputs afterwards (the ISSUE acceptance
// criterion: no chunk files left after a pipeline completes).
func TestPipelineLeavesNoDeadChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromDense(s, randDense(rng, 60, 6), 8)
	if err != nil {
		t.Fatal(err)
	}
	base := chunkFileCount(t, dir)

	scaled, err := m.Scale(0.5)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := scaled.Mul(randDense(rng, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prod.ColSums(); err != nil {
		t.Fatal(err)
	}
	if err := scaled.Free(); err != nil {
		t.Fatal(err)
	}
	if err := prod.Free(); err != nil {
		t.Fatal(err)
	}
	if got := chunkFileCount(t, dir); got != base {
		t.Fatalf("pipeline left %d files, want the %d inputs", got, base)
	}
	if err := m.Free(); err != nil {
		t.Fatal(err)
	}
	if got := chunkFileCount(t, dir); got != 0 {
		t.Fatalf("%d files left after freeing everything", got)
	}
}

// TestBuildCleansUpOnGenFailure: Build removes already-written chunks
// when a later write fails (here: the store directory vanishes
// mid-build).
func TestBuildCleansUpOnWriteFailure(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "gone")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(sub)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(s2, 40, 2, 8, func(lo, hi int, dst *la.Dense) {
		if lo >= 16 {
			os.RemoveAll(sub) // make the next writeChunk fail
		}
	})
	if err == nil {
		t.Fatal("Build succeeded with a vanished store directory")
	}
	if s2.LiveChunks() != 0 {
		t.Fatalf("failed Build left %d chunks registered", s2.LiveChunks())
	}
}
