package chunk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestStoreAccountingConcurrentStress hammers the store's accounting
// surface — alloc/recordWrite (via FromDense + spilled Mul products),
// release (Free), ShardStats, BytesOnDisk, LiveChunks — from many
// goroutines while parallel spill passes are active. Run under -race it
// pins the Store's locking; afterwards the accounting must unwind to
// exactly zero.
func TestStoreAccountingConcurrentStress(t *testing.T) {
	s, _ := testShardedStore(t, 3, LeastBytes)
	base := randDense(rand.New(rand.NewSource(81)), 120, 6)
	m, err := FromDense(s, base, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := randDense(rand.New(rand.NewSource(82)), 6, 4)

	errs := make(chan error, 16)
	var writers sync.WaitGroup
	// Active spill passes: chunked products allocated, written, and freed.
	for g := 0; g < 3; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 5; i++ {
				p, err := m.MulExec(Exec{Workers: 2, Prefetch: 2}, x)
				if err != nil {
					errs <- err
					return
				}
				if err := p.Free(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Builders: concurrent alloc + recordWrite + release on fresh matrices.
	for g := 0; g < 3; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 8; i++ {
				d, err := FromDense(s, randDense(rng, 30, 1+g), 5)
				if err != nil {
					errs <- err
					return
				}
				if err := d.Free(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Readers of the accounting surface, racing the writers above until
	// every writer has finished.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, st := range s.ShardStats() {
					if st.Bytes < 0 || st.Chunks < 0 {
						errs <- fmt.Errorf("negative shard accounting: %+v", st)
						return
					}
				}
				if got := s.BytesOnDisk(); got < 0 {
					errs <- fmt.Errorf("negative BytesOnDisk %d", got)
					return
				}
				if got := s.LiveChunks(); got < m.NumChunks() {
					errs <- fmt.Errorf("LiveChunks %d below the %d pinned input chunks", got, m.NumChunks())
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := m.Free(); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveChunks(); got != 0 {
		t.Fatalf("stress left %d live chunks", got)
	}
	if got := s.BytesOnDisk(); got != 0 {
		t.Fatalf("stress left %d bytes accounted", got)
	}
	for i, st := range s.ShardStats() {
		if st.Chunks != 0 || st.Bytes != 0 {
			t.Fatalf("shard %d accounting did not unwind: %+v", i, st)
		}
	}
}

// failWriteBackend wraps a Backend and fails every WriteChunk, for
// exercising the write-behind error paths.
type failWriteBackend struct {
	Backend
}

var errInjectedWrite = errors.New("injected write failure")

func (b *failWriteBackend) WriteChunk(key string, data []byte) error { return errInjectedWrite }

// TestSpillWriterEnqueueVsErrorRace races concurrent enqueues against the
// writer goroutine recording its first error: whatever interleaving the
// scheduler picks, the injected write failure must surface by finish —
// either on an enqueue or from the queue drain — and never deadlock a
// producer blocked on a full queue.
func TestSpillWriterEnqueueVsErrorRace(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	out := randDense(rng, 4, 3)
	for round := 0; round < 30; round++ {
		inner, err := NewDirBackend(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewShardedStoreBackends([]Backend{&failWriteBackend{Backend: inner}}, RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		const n = 12
		sp, err := newOutputSpiller(s, n, Exec{Workers: 4, Prefetch: 2})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for ci := 0; ci < n; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				// An enqueue may or may not observe the error first; the
				// guarantee under test is that finish always does.
				sp.emit(ci, out)
			}(ci)
		}
		wg.Wait()
		if _, err := sp.finish(nil); !errors.Is(err, errInjectedWrite) {
			t.Fatalf("round %d: finish = %v, want the injected write failure", round, err)
		}
		if got := s.LiveChunks(); got != 0 {
			t.Fatalf("round %d: failed spill left %d chunks tracked", round, got)
		}
	}
}
