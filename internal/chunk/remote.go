package chunk

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// remoteAttempts bounds how many times the client tries one operation.
// Every verb in the chunkd protocol is idempotent (PUT is a full replace,
// DELETE tolerates missing keys), so a retry after an ambiguous network
// failure is always safe.
const remoteAttempts = 3

// remoteBackoff spaces the retries. Kept short: the store's pipeline is
// blocked on the chunk, so a dead shard should fail fast, not hang.
const remoteBackoff = 50 * time.Millisecond

// remoteHeaderTimeout bounds how long a wedged server may sit on a request
// before sending response headers; without it a host that accepts the TCP
// connection but never answers would hang an attempt forever and the
// remoteAttempts bound would never engage.
const remoteHeaderTimeout = 30 * time.Second

// remoteOpTimeout bounds one whole attempt including the body transfer.
// Generous relative to chunk sizes (a server-limit-sized 1 GiB chunk at
// ~20 MB/s still fits), but finite, so a transfer that stalls mid-body
// fails the attempt instead of blocking the pipeline indefinitely.
const remoteOpTimeout = 2 * time.Minute

// RemoteBackend is the client side of the morpheus-chunkd protocol: a
// chunk Backend whose blobs live on a remote chunk server, so a sharded
// store can place chunks on other nodes next to (or instead of) local
// disks. It maintains a keep-alive connection pool sized for the parallel
// pipeline (reads from worker goroutines overlap write-behind spills),
// retries each operation a bounded number of times on network errors and
// 5xx responses, and validates every fetched blob against the response's
// Content-Length so a connection cut mid-stream surfaces as an error, not
// as a short chunk.
type RemoteBackend struct {
	base   string // normalized base URL, no trailing slash
	client *http.Client
	// execClient issues /exec requests. Separate from client because an
	// exec response is an open-ended partial stream: it keeps the
	// per-header timeout but no whole-request deadline.
	execClient *http.Client
	// noExec caches a definitive "this server has no /exec" answer
	// (404/405/501) so later passes skip straight to the passive path.
	noExec atomic.Bool
	// wire counts chunk payload bytes shipped to or fetched from this
	// shard (PUT bodies and GET responses; headers, retries of failed
	// attempts, and /exec partial frames excluded). With a compressing
	// wrapper around the backend this is the compressed byte count — the
	// "ship less" half of the store's IOStats.
	wire atomic.Int64
}

// BytesOnWire reports the chunk payload bytes this backend has moved over
// the network so far.
func (b *RemoteBackend) BytesOnWire() int64 { return b.wire.Load() }

// NewRemoteBackend returns a Backend speaking to the chunk server at
// baseURL (e.g. http://spill-node-1:9431). The URL must be absolute; any
// path prefix is kept, so one HTTP server can host several shards under
// different prefixes.
func NewRemoteBackend(baseURL string) (*RemoteBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("chunk: remote shard URL %q: %w", baseURL, err)
	}
	if !u.IsAbs() || u.Host == "" {
		return nil, fmt.Errorf("chunk: remote shard URL %q must be absolute (http://host:port)", baseURL)
	}
	transport := http.DefaultTransport.(*http.Transport).Clone()
	// One store streams a shard from many pipeline workers at once; keep
	// enough warm connections that reads, write-behind spills, and frees
	// reuse sockets instead of re-dialing.
	transport.MaxIdleConnsPerHost = 16
	transport.ResponseHeaderTimeout = remoteHeaderTimeout
	return &RemoteBackend{
		base:       strings.TrimRight(u.String(), "/"),
		client:     &http.Client{Transport: transport, Timeout: remoteOpTimeout},
		execClient: &http.Client{Transport: transport},
	}, nil
}

// Name identifies the shard by its base URL.
func (b *RemoteBackend) Name() string { return b.base }

func (b *RemoteBackend) chunkURL(key string) string { return b.base + "/chunks/" + key }

// retryable classifies one attempt's outcome: transport errors, mid-body
// read errors, and 5xx responses are worth retrying; everything else is a
// hard answer from the server.
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode >= 500
}

// do runs one request up to remoteAttempts times and returns the last
// response's status, body, and declared Content-Length (what HEAD reports
// a blob's size through). body (may be nil) is re-sent from the start on
// every attempt. The response body is fully read, validated against the
// response's Content-Length (except for HEAD, whose body is defined
// empty), and the connection returned to the pool.
func (b *RemoteBackend) do(method, u string, body []byte) (status int, respBody []byte, size int64, err error) {
	for attempt := 0; ; attempt++ {
		var r io.Reader
		if body != nil {
			r = bytes.NewReader(body)
		}
		req, reqErr := http.NewRequest(method, u, r)
		if reqErr != nil {
			return 0, nil, 0, fmt.Errorf("chunk: remote %s %s: %w", method, u, reqErr)
		}
		if body != nil {
			req.ContentLength = int64(len(body))
		}
		resp, doErr := b.client.Do(req)
		if doErr == nil {
			respBody, doErr = io.ReadAll(resp.Body)
			resp.Body.Close()
			if doErr == nil && method != http.MethodHead && resp.ContentLength >= 0 && int64(len(respBody)) != resp.ContentLength {
				doErr = fmt.Errorf("body has %d bytes, Content-Length declared %d", len(respBody), resp.ContentLength)
			}
			if doErr == nil && !retryable(resp, nil) {
				return resp.StatusCode, respBody, resp.ContentLength, nil
			}
		}
		if attempt+1 >= remoteAttempts {
			if doErr != nil {
				return 0, nil, 0, fmt.Errorf("chunk: remote %s %s: %w (after %d attempts)", method, u, doErr, attempt+1)
			}
			return 0, nil, 0, fmt.Errorf("chunk: remote %s %s: server error %s: %s (after %d attempts)",
				method, u, resp.Status, strings.TrimSpace(string(respBody)), attempt+1)
		}
		time.Sleep(remoteBackoff * time.Duration(attempt+1))
	}
}

// statusErr turns a non-2xx hard answer into an error carrying the
// server's message.
func statusErr(method, u string, status int, body []byte) error {
	return fmt.Errorf("chunk: remote %s %s: HTTP %d: %s", method, u, status, strings.TrimSpace(string(body)))
}

// WriteChunk uploads the blob with a declared Content-Length; the server
// stores it atomically, so an interrupted upload leaves nothing readable.
func (b *RemoteBackend) WriteChunk(key string, data []byte) error {
	if !validChunkKey(key) {
		return fmt.Errorf("chunk: invalid chunk key %q", key)
	}
	u := b.chunkURL(key)
	status, body, _, err := b.do(http.MethodPut, u, data)
	if err != nil {
		return err
	}
	if status != http.StatusNoContent && status != http.StatusOK && status != http.StatusCreated {
		return statusErr(http.MethodPut, u, status, body)
	}
	b.wire.Add(int64(len(data)))
	return nil
}

// ReadChunk fetches the blob; the length is validated against the
// response's Content-Length (and again against the expected chunk shape
// by the store's decoder).
func (b *RemoteBackend) ReadChunk(key string) ([]byte, error) {
	if !validChunkKey(key) {
		return nil, fmt.Errorf("chunk: invalid chunk key %q", key)
	}
	u := b.chunkURL(key)
	status, body, _, err := b.do(http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, statusErr(http.MethodGet, u, status, body)
	}
	b.wire.Add(int64(len(body)))
	return body, nil
}

// Remove deletes the blob; a missing key is not an error.
func (b *RemoteBackend) Remove(key string) error {
	if !validChunkKey(key) {
		return fmt.Errorf("chunk: invalid chunk key %q", key)
	}
	u := b.chunkURL(key)
	status, body, _, err := b.do(http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	if status != http.StatusNoContent && status != http.StatusOK && status != http.StatusNotFound {
		return statusErr(http.MethodDelete, u, status, body)
	}
	return nil
}

// Reap asks the server to remove every stored chunk plus temp debris (the
// remote analogue of startup orphan reaping) and reports the count.
func (b *RemoteBackend) Reap() (int, error) {
	u := b.base + "/chunks"
	status, body, _, err := b.do(http.MethodDelete, u, nil)
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, statusErr(http.MethodDelete, u, status, body)
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(body)))
	if err != nil {
		return 0, fmt.Errorf("chunk: remote reap count %q: %w", strings.TrimSpace(string(body)), err)
	}
	return n, nil
}

// BytesOf reports the stored size from a HEAD request's Content-Length.
func (b *RemoteBackend) BytesOf(key string) (int64, error) {
	if !validChunkKey(key) {
		return 0, fmt.Errorf("chunk: invalid chunk key %q", key)
	}
	u := b.chunkURL(key)
	status, body, size, err := b.do(http.MethodHead, u, nil)
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, statusErr(http.MethodHead, u, status, body)
	}
	return size, nil
}

// List fetches the server's stored chunk keys (the reap listing) —
// ops/debugging surface, not used by the streaming hot path.
func (b *RemoteBackend) List() ([]string, error) {
	u := b.base + "/chunks"
	status, body, _, err := b.do(http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, statusErr(http.MethodGet, u, status, body)
	}
	var keys []string
	for _, line := range strings.Split(string(body), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			keys = append(keys, line)
		}
	}
	return keys, nil
}

// ListKeys is List under its historical name.
func (b *RemoteBackend) ListKeys() ([]string, error) { return b.List() }

// ExecOp asks the chunk server to run the op over chunks it holds and
// returns the stream of encoded partials, in request order. A server
// without /exec (or without this op in its registry) yields
// ErrExecUnsupported — remembered, so later passes skip the probe.
// Transport errors and 5xx answers before the stream starts are retried
// like every other verb; once the stream is open, failures surface through
// PartialStream.Next and the caller falls back per chunk.
func (b *RemoteBackend) ExecOp(op Op, kind string, cols int, chunks []ExecChunk) (*PartialStream, error) {
	return b.execOpCodec(op, kind, cols, chunks, "")
}

// execOpCodec is ExecOp with content negotiation: codec (when non-empty)
// names the framing of the stored blobs, and the worker decodes them
// shard-side before the chunk decode. A server that does not know the
// codec answers 400, which surfaces as a hard error here and drops the
// group to the passive path — without caching noExec, since plain /exec
// may still work.
func (b *RemoteBackend) execOpCodec(op Op, kind string, cols int, chunks []ExecChunk, codec string) (*PartialStream, error) {
	if b.noExec.Load() {
		return nil, fmt.Errorf("%w: %s", ErrExecUnsupported, b.base)
	}
	for _, c := range chunks {
		if !validChunkKey(c.Key) {
			return nil, fmt.Errorf("chunk: invalid chunk key %q", c.Key)
		}
	}
	body, err := json.Marshal(execRequest{Op: op.Name, Params: op.Params, Kind: kind, Cols: cols, Codec: codec, Chunks: chunks})
	if err != nil {
		return nil, fmt.Errorf("chunk: encoding exec request: %w", err)
	}
	u := b.base + "/exec"
	for attempt := 0; ; attempt++ {
		req, reqErr := http.NewRequest(http.MethodPost, u, bytes.NewReader(body))
		if reqErr != nil {
			return nil, fmt.Errorf("chunk: remote POST %s: %w", u, reqErr)
		}
		req.ContentLength = int64(len(body))
		req.Header.Set("Content-Type", "application/json")
		resp, doErr := b.execClient.Do(req)
		if doErr == nil {
			switch resp.StatusCode {
			case http.StatusOK:
				return newPartialStream(resp.Body), nil
			case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
				resp.Body.Close()
				b.noExec.Store(true)
				return nil, fmt.Errorf("%w: %s: HTTP %d: %s", ErrExecUnsupported, b.base, resp.StatusCode, strings.TrimSpace(string(msg)))
			default:
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
				resp.Body.Close()
				if !retryable(resp, nil) {
					return nil, statusErr(http.MethodPost, u, resp.StatusCode, msg)
				}
				if attempt+1 >= remoteAttempts {
					return nil, fmt.Errorf("chunk: remote POST %s: server error %s: %s (after %d attempts)",
						u, resp.Status, strings.TrimSpace(string(msg)), attempt+1)
				}
			}
		} else if attempt+1 >= remoteAttempts {
			return nil, fmt.Errorf("chunk: remote POST %s: %w (after %d attempts)", u, doErr, attempt+1)
		}
		time.Sleep(remoteBackoff * time.Duration(attempt+1))
	}
}

var (
	_ Backend     = (*RemoteBackend)(nil)
	_ ExecBackend = (*RemoteBackend)(nil)
	_ codecExecer = (*RemoteBackend)(nil)
	_ wireMeter   = (*RemoteBackend)(nil)
)
