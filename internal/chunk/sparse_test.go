package chunk

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/la"
)

// randCSR builds a random sparse matrix with ~density fraction non-zeros.
func randCSR(rng *rand.Rand, rows, cols int, density float64) *la.CSR {
	b := la.NewCSRBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func TestSparseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := testStore(t)
	c := randCSR(rng, 57, 9, 0.2) // ragged last chunk
	m, err := FromCSR(s, c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumChunks() != 6 {
		t.Fatalf("chunks = %d, want 6", m.NumChunks())
	}
	if m.NNZ() != int64(c.NNZ()) {
		t.Fatalf("nnz = %d, want %d", m.NNZ(), c.NNZ())
	}
	got, err := m.CSR()
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(got.Dense(), c.Dense(), 0) {
		t.Fatal("sparse round trip mismatch")
	}
}

// TestSparseOpsMatchInMemory pins the chunked sparse operators to their
// in-memory CSR counterparts under both serial and parallel execution.
func TestSparseOpsMatchInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := testStore(t)
	c := randCSR(rng, 83, 6, 0.3)
	m, err := FromCSR(s, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range []Exec{Serial, parExec} {
		x := randDense(rng, 6, 3)
		mul, err := m.MulExec(ex, x)
		if err != nil {
			t.Fatal(err)
		}
		mulD, err := mul.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if !la.EqualApprox(mulD, c.Mul(x), 1e-12) {
			t.Fatal("chunked sparse Mul mismatch")
		}
		if err := mul.Free(); err != nil {
			t.Fatal(err)
		}

		xt := randDense(rng, 83, 2)
		tm, err := m.TMulExec(ex, xt)
		if err != nil {
			t.Fatal(err)
		}
		if !la.EqualApprox(tm, c.TMul(xt), 1e-12) {
			t.Fatal("chunked sparse TMul mismatch")
		}

		cp, err := m.CrossProdExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		if !la.EqualApprox(cp, c.CrossProd(), 1e-12) {
			t.Fatal("chunked sparse CrossProd mismatch")
		}

		cs, err := m.ColSumsExec(ex)
		if err != nil {
			t.Fatal(err)
		}
		if !la.EqualApprox(cs, c.ColSums(), 1e-12) {
			t.Fatal("chunked sparse ColSums mismatch")
		}

		sum, err := m.Sum()
		if err != nil {
			t.Fatal(err)
		}
		if d := sum - c.Sum(); d > 1e-9 || d < -1e-9 {
			t.Fatal("chunked sparse Sum mismatch")
		}
	}
}

// TestSparseCorruptChunkSurfacesError: a corrupt sparse chunk must return
// an error, never panic (la.NewCSR's invariant panics are converted).
func TestSparseCorruptChunkSurfacesError(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := randCSR(rng, 30, 5, 0.4)
	m, err := FromCSR(s, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "chunk-") {
			first = filepath.Join(dir, e.Name())
			break
		}
	}
	// Truncation: wrong byte count.
	if err := os.Truncate(first, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CSR(); err == nil {
		t.Fatal("CSR() succeeded on truncated chunk")
	}
	if _, err := m.CrossProd(); err == nil {
		t.Fatal("CrossProd succeeded on truncated chunk")
	}
	// Structural corruption: right size, garbage content.
	raw := make([]byte, 8*3)
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Sum(); err == nil {
		t.Fatal("Sum succeeded on corrupt chunk")
	}
}

// TestSparseFreeRemovesChunks: sparse spill files participate in the same
// refcounted lifecycle as dense ones.
func TestSparseFreeRemovesChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := randCSR(rng, 24, 4, 0.5)
	m, err := FromCSR(s, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := chunkFileCount(t, dir); got != m.NumChunks() {
		t.Fatalf("%d files, want %d", got, m.NumChunks())
	}
	if err := m.Free(); err != nil {
		t.Fatal(err)
	}
	if got := chunkFileCount(t, dir); got != 0 {
		t.Fatalf("%d files left after Free", got)
	}
	if err := m.ForEach(func(lo int, c *la.CSR) error { return nil }); err != ErrFreed {
		t.Fatalf("ForEach on freed sparse matrix: %v, want ErrFreed", err)
	}
}
