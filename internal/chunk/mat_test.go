package chunk

import (
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/ml"
)

// TestSparseChunkedGLMMatchesInMemoryCSR pins the materialized chunked GLM
// over CSR chunks (the Table 6 one-hot shapes, now trainable out-of-core
// through chunk.Mat) to the in-memory CSR run, bit-determinism across
// executions included.
func TestSparseChunkedGLMMatchesInMemoryCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	store := testStore(t)
	const n, groups, gw, chunkRows = 300, 4, 6, 32
	c := oneHotCSR(rng, n, groups, gw)
	y := pmLabels(rng, n)
	const iters, alpha = 8, 1e-3

	sm, err := FromCSR(store, c, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := LogRegMaterializedExec(Serial, sm, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LogRegMaterializedExec(parExec, sm, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(serial.W, parallel.W) != 0 {
		t.Fatal("sparse chunked GLM: parallel weights not bit-identical to serial")
	}
	wRef, err := ml.LogisticRegressionGD(c, y, nil, ml.Options{Iters: iters, StepSize: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if diff := la.MaxAbsDiff(parallel.W, wRef); diff > 1e-12 {
		t.Fatalf("sparse chunked GLM deviates from in-memory CSR by %g", diff)
	}

	// The sparse chunks must pay I/O proportional to nnz, far below the
	// dense encoding of the same one-hot table.
	dm, err := FromDense(store, c.Dense(), chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := LogRegMaterializedExec(parExec, dm, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if diff := la.MaxAbsDiff(dense.W, wRef); diff > 1e-12 {
		t.Fatalf("dense chunked GLM deviates from in-memory CSR by %g", diff)
	}
	if serial.BytesRead >= dense.BytesRead {
		t.Fatalf("sparse chunks read %d bytes, dense %d — no sparse I/O saving", serial.BytesRead, dense.BytesRead)
	}
}

// TestMatInterfaceOps drives the shared operator surface through the Mat
// interface for both backends and pins it to the in-memory results.
func TestMatInterfaceOps(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	store := testStore(t)
	d := randDense(rng, 75, 6)
	dm, err := FromDense(store, d, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := oneHotCSR(rng, 75, 2, 3)
	cm, err := FromCSR(store, c, 16)
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		m    Mat
		mem  la.Mat
		cols int
	}{
		"dense":  {m: dm, mem: d, cols: d.Cols()},
		"sparse": {m: cm, mem: c, cols: c.Cols()},
	} {
		x := randDense(rng, tc.cols, 3)
		mul, err := tc.m.MulExec(parExec, x)
		if err != nil {
			t.Fatal(err)
		}
		mulD, err := mul.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if diff := la.MaxAbsDiff(mulD, tc.mem.Mul(x)); diff > 1e-12 {
			t.Fatalf("%s Mat.Mul deviates by %g", name, diff)
		}
		xt := randDense(rng, 75, 2)
		tm, err := tc.m.TMulExec(parExec, xt)
		if err != nil {
			t.Fatal(err)
		}
		if diff := la.MaxAbsDiff(tm, tc.mem.TMul(xt)); diff > 1e-12 {
			t.Fatalf("%s Mat.TMul deviates by %g", name, diff)
		}
		cp, err := tc.m.CrossProdExec(parExec)
		if err != nil {
			t.Fatal(err)
		}
		if diff := la.MaxAbsDiff(cp, tc.mem.CrossProd()); diff > 1e-12 {
			t.Fatalf("%s Mat.CrossProd deviates by %g", name, diff)
		}
		cs, err := tc.m.ColSumsExec(parExec)
		if err != nil {
			t.Fatal(err)
		}
		if diff := la.MaxAbsDiff(cs, tc.mem.ColSums()); diff > 1e-12 {
			t.Fatalf("%s Mat.ColSums deviates by %g", name, diff)
		}
		sum, err := tc.m.SumExec(Serial)
		if err != nil {
			t.Fatal(err)
		}
		if diff := sum - tc.mem.Sum(); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s Mat.Sum deviates by %g", name, diff)
		}
	}
}

// TestWriteBehindBitIdentical pins spilled outputs of the asynchronous
// write-behind path to the synchronous serial path, for both backends.
func TestWriteBehindBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	store := testStore(t)
	d := randDense(rng, 90, 5)
	m, err := FromDense(store, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := randDense(rng, 5, 3)
	serialOut, err := m.MulExec(Serial, x) // synchronous writes
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := m.MulExec(parExec, x) // write-behind stage
	if err != nil {
		t.Fatal(err)
	}
	sd, err := serialOut.Dense()
	if err != nil {
		t.Fatal(err)
	}
	pd, err := parOut.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(sd, pd) != 0 {
		t.Fatal("write-behind dense output not bit-identical to synchronous")
	}

	c := oneHotCSR(rng, 90, 3, 4)
	cm, err := FromCSR(store, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	xs := randDense(rng, c.Cols(), 2)
	serialS, err := cm.MulExec(Serial, xs)
	if err != nil {
		t.Fatal(err)
	}
	parS, err := cm.MulExec(parExec, xs)
	if err != nil {
		t.Fatal(err)
	}
	ssd, err := serialS.Dense()
	if err != nil {
		t.Fatal(err)
	}
	psd, err := parS.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(ssd, psd) != 0 {
		t.Fatal("write-behind sparse-source output not bit-identical to synchronous")
	}
}

// TestAutoRows checks the budget arithmetic and the clamps.
func TestAutoRows(t *testing.T) {
	// 1 MiB over (4+3+1 resident chunks)·16 cols·8 B = 1024 rows.
	if got := AutoRows(1<<20, 16, 4, 3); got != 1024 {
		t.Fatalf("AutoRows(1MiB,16,4,3) = %d, want 1024", got)
	}
	// A budget smaller than one row of the widest operand clamps to one
	// row — never 0, never the old overcommitting 64-row floor — and
	// AutoRowsChecked reports the infeasibility explicitly.
	if got := AutoRows(1, 1000, 8, 16); got != 1 {
		t.Fatalf("tiny budget: got %d, want 1", got)
	}
	rows, err := AutoRowsChecked(1, 1000, 8, 16)
	if rows != 1 || err == nil {
		t.Fatalf("AutoRowsChecked(1,1000,8,16) = (%d, %v), want (1, infeasibility error)", rows, err)
	}
	if got := AutoRows(0, 1<<30, 0, -1); got < 1 {
		t.Fatalf("zero budget over a 2^30-wide operand: got %d, want >= 1", got)
	}
	// A budget worth only a few rows honors the budget: the pass streams
	// shorter chunks rather than overcommitting.
	under, err := AutoRowsChecked(10*1000*8*(8+16+1), 1000, 8, 16)
	if err != nil {
		t.Fatalf("10-row budget unexpectedly infeasible: %v", err)
	}
	if under != 10 {
		t.Fatalf("10-row budget: got %d, want 10", under)
	}
	// Huge budgets clamp down to the ceiling.
	if got := AutoRows(1<<50, 1, 1, 0); got != 1<<20 {
		t.Fatalf("huge budget: got %d, want %d", got, 1<<20)
	}
	// Wider tables get shorter chunks under the same budget.
	narrow := AutoRows(1<<24, 8, 4, 4)
	wide := AutoRows(1<<24, 64, 4, 4)
	if wide >= narrow {
		t.Fatalf("wider table should get shorter chunks: narrow=%d wide=%d", narrow, wide)
	}
	// More workers get shorter chunks under the same budget.
	few := AutoRows(1<<24, 16, 2, 2)
	many := AutoRows(1<<24, 16, 16, 16)
	if many >= few {
		t.Fatalf("more workers should get shorter chunks: few=%d many=%d", few, many)
	}
}

// TestEncodedBytes pins the per-chunk I/O accounting to the file formats.
func TestEncodedBytes(t *testing.T) {
	d := la.NewDense(10, 4)
	if got := EncodedBytes(d); got != 10*4*8 {
		t.Fatalf("dense EncodedBytes = %d, want %d", got, 10*4*8)
	}
	rng := rand.New(rand.NewSource(34))
	c := oneHotCSR(rng, 10, 2, 3)
	want := int64(8*(3+10+1) + 12*c.NNZ())
	if got := EncodedBytes(c); got != want {
		t.Fatalf("CSR EncodedBytes = %d, want %d", got, want)
	}
}
