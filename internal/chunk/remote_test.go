package chunk

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/la"
)

// startChunkServer serves a fresh shard directory over a real HTTP
// listener and returns the remote backend speaking to it.
func startChunkServer(t testing.TB) (*RemoteBackend, string) {
	t.Helper()
	dir := t.TempDir()
	h, err := NewChunkServer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	b, err := NewRemoteBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return b, dir
}

// remoteStore builds a store with one local shard and one remote
// (HTTP-served) shard — the mixed deployment the backend interface exists
// for.
func remoteStore(t testing.TB, policy Placement) *Store {
	t.Helper()
	local, err := NewDirBackend(filepath.Join(t.TempDir(), "local"))
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := startChunkServer(t)
	s, err := NewShardedStoreBackends([]Backend{local, remote}, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRemoteBackendRoundTrip exercises the wire protocol end to end:
// write, size, list, read, remove, reap.
func TestRemoteBackendRoundTrip(t *testing.T) {
	b, dir := startChunkServer(t)
	blob := []byte{1, 2, 3, 4, 5}
	if err := b.WriteChunk("chunk-000001.bin", blob); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChunk("chunk-000002.bin", nil); err != nil { // 0-byte chunk (0-col matrices)
		t.Fatal(err)
	}
	if n, err := b.BytesOf("chunk-000001.bin"); err != nil || n != int64(len(blob)) {
		t.Fatalf("BytesOf = %d, %v, want %d", n, err, len(blob))
	}
	keys, err := b.ListKeys()
	if err != nil || len(keys) != 2 {
		t.Fatalf("ListKeys = %v, %v, want 2 keys", keys, err)
	}
	got, err := b.ReadChunk("chunk-000001.bin")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("ReadChunk = %v, %v", got, err)
	}
	if got, err := b.ReadChunk("chunk-000002.bin"); err != nil || len(got) != 0 {
		t.Fatalf("0-byte ReadChunk = %v, %v", got, err)
	}
	if err := b.Remove("chunk-000001.bin"); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove("chunk-000001.bin"); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := b.ReadChunk("chunk-000001.bin"); err == nil {
		t.Fatal("reading a removed chunk succeeded")
	}
	// Reap clears the shard — including tmp debris a crashed server write
	// would leave.
	if err := os.WriteFile(filepath.Join(dir, "chunk-000009.bin"+tmpSuffix), []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := b.Reap()
	if err != nil || n != 2 { // chunk-000002.bin + the tmp debris
		t.Fatalf("Reap = %d, %v, want 2", n, err)
	}
	if keys, err := b.ListKeys(); err != nil || len(keys) != 0 {
		t.Fatalf("after Reap: ListKeys = %v, %v", keys, err)
	}
}

// TestChunkServerRejectsBadRequests: traversal keys, foreign paths, and
// over-limit uploads are refused.
func TestChunkServerRejectsBadRequests(t *testing.T) {
	dir := t.TempDir()
	h, err := NewChunkServer(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Drive the handler directly so the raw (uncleaned) paths reach it —
	// a client would normalize the traversal away before sending.
	for _, path := range []string{
		"/chunks/../../etc/passwd",
		"/chunks/notachunk",
		"/chunks/chunk-12x34.bin",
		"/elsewhere",
	} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		if rr.Code != http.StatusBadRequest && rr.Code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 400/404", path, rr.Code)
		}
	}

	// Upload above the server's chunk limit.
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/chunks/chunk-000001.bin", bytes.NewReader(make([]byte, 65)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit PUT = %d, want 413", resp.StatusCode)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("rejected upload left files: %v", entries)
	}
}

// TestRemoteRetriesTransientFailures: the client retries transient 5xx
// answers and network-level failures a bounded number of times, so a
// briefly unavailable shard does not kill a pass — but a persistently dead
// one fails instead of hanging.
func TestRemoteRetriesTransientFailures(t *testing.T) {
	inner, err := NewChunkServer(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var failN atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failN.Add(-1) >= 0 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	b, err := NewRemoteBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	failN.Store(remoteAttempts - 1) // recoverable: last attempt succeeds
	if err := b.WriteChunk("chunk-000001.bin", []byte{7}); err != nil {
		t.Fatalf("write with transient failures: %v", err)
	}
	failN.Store(remoteAttempts - 1)
	if got, err := b.ReadChunk("chunk-000001.bin"); err != nil || !bytes.Equal(got, []byte{7}) {
		t.Fatalf("read with transient failures = %v, %v", got, err)
	}
	failN.Store(remoteAttempts + 5) // persistent: retries must stay bounded
	if err := b.WriteChunk("chunk-000002.bin", []byte{8}); err == nil {
		t.Fatal("write against a persistently failing shard succeeded")
	}
}

// TestRemoteDifferentialDrivers pins every driver — dense GLM, sparse GLM,
// star-schema factorized GLM, streamed k-means, streamed GNMF — to
// bitwise-identical results between a local-directory store and a store
// with a remote HTTP shard: where a chunk lives (local disk or another
// node) changes placement, never results.
func TestRemoteDifferentialDrivers(t *testing.T) {
	local := testStore(t)
	mixed := remoteStore(t, LeastBytes)

	d1, s1, nt1, y := buildPKFKInputs(t, local, 55)
	d2, s2, nt2, _ := buildPKFKInputs(t, mixed, 55)

	const iters = 3
	ex := Parallel()

	rd1, err := LogRegMaterializedExec(ex, d1, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rd2, err := LogRegMaterializedExec(ex, d2, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(rd1.W, rd2.W) != 0 {
		t.Fatal("dense GLM weights differ between local and remote-shard store")
	}

	rs1, err := LogRegMaterializedExec(ex, s1, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := LogRegMaterializedExec(ex, s2, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(rs1.W, rs2.W) != 0 {
		t.Fatal("sparse GLM weights differ between local and remote-shard store")
	}

	rf1, err := LogRegFactorizedExec(ex, nt1, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rf2, err := LogRegFactorizedExec(ex, nt2, y, iters, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(rf1.W, rf2.W) != 0 {
		t.Fatal("star GLM weights differ between local and remote-shard store")
	}

	km1, err := KMeansExec(ex, d1, 4, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	km2, err := KMeansExec(ex, d2, 4, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(km1.Centroids, km2.Centroids) != 0 || km1.Objective != km2.Objective {
		t.Fatal("k-means results differ between local and remote-shard store")
	}
	a1, err := km1.Assign.Dense()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := km2.Assign.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(a1, a2) != 0 {
		t.Fatal("k-means assignments differ between local and remote-shard store")
	}

	g1, err := GNMFExec(ex, s1, 3, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GNMFExec(ex, s2, 3, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := g1.W.Dense()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := g2.W.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(g1.H, g2.H) != 0 || la.MaxAbsDiff(w1, w2) != 0 {
		t.Fatal("GNMF factors differ between local and remote-shard store")
	}

	// Remote chunks participate in the shard accounting like local ones.
	stats := mixed.ShardStats()
	var remoteStat *ShardStat
	for i := range stats {
		if strings.HasPrefix(stats[i].Dir, "http") {
			remoteStat = &stats[i]
		}
	}
	if remoteStat == nil || remoteStat.Chunks == 0 || remoteStat.Bytes == 0 {
		t.Fatalf("remote shard holds no accounted chunks: %+v", stats)
	}
}

// BenchmarkRemoteSpill measures spill + stream throughput when every
// chunk crosses HTTP to an in-process chunkd — the wire-protocol overhead
// floor (loopback, no real network). Compare against BenchmarkShardedSpill
// to see what a remote shard costs per byte.
func BenchmarkRemoteSpill(b *testing.B) {
	const rows, cols, chunkRows = 2048, 128, 256
	src := randDense(rand.New(rand.NewSource(7)), rows, cols)
	x := randDense(rand.New(rand.NewSource(8)), cols, cols)
	remote, _ := startChunkServer(b)
	s, err := NewShardedStoreBackends([]Backend{remote}, RoundRobin)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.SetBytes(2 * rows * cols * 8) // spilled input + spilled product
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := FromDense(s, src, chunkRows)
		if err != nil {
			b.Fatal(err)
		}
		p, err := m.Mul(x)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Free(); err != nil {
			b.Fatal(err)
		}
		if err := m.Free(); err != nil {
			b.Fatal(err)
		}
	}
}

// faultServer wraps a ChunkServer and, once armed, injects mid-stream
// failures: GET responses declare the full Content-Length but the body is
// cut halfway; PUTs fail outright. The injection persists across the
// client's bounded retries.
type faultServer struct {
	inner *ChunkServer
	mu    sync.Mutex
	mode  string // "", "read", "write"
	dir   string
}

func (f *faultServer) arm(mode string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mode = mode
}

func (f *faultServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	mode := f.mode
	f.mu.Unlock()
	key := strings.TrimPrefix(r.URL.Path, "/chunks/")
	switch {
	case mode == "read" && r.Method == http.MethodGet && validChunkKey(key):
		raw, err := os.ReadFile(filepath.Join(f.dir, key))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		// Declare the real size, send half: the connection dies
		// mid-stream from the client's point of view.
		w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
		w.WriteHeader(http.StatusOK)
		w.Write(raw[:len(raw)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler) // kill the connection without a clean EOF
	case mode == "write" && r.Method == http.MethodPut:
		http.Error(w, "injected shard outage", http.StatusInternalServerError)
	default:
		f.inner.ServeHTTP(w, r)
	}
}

// TestRemoteMidStreamFailureNoLeakedAccounting injects network failures in
// the middle of streamed passes over a mixed local+remote store and checks
// the acceptance criterion: the pass returns an error, and after freeing
// the inputs the store's accounting returns to its baseline — zero live
// chunks, zero bytes, on every shard.
func TestRemoteMidStreamFailureNoLeakedAccounting(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewChunkServer(filepath.Join(dir, "remote"), 0)
	if err != nil {
		t.Fatal(err)
	}
	fault := &faultServer{inner: inner, dir: filepath.Join(dir, "remote")}
	srv := httptest.NewServer(fault)
	defer srv.Close()
	remote, err := NewRemoteBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewDirBackend(filepath.Join(dir, "local"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShardedStoreBackends([]Backend{local, remote}, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}

	d, sp, nt, y := buildPKFKInputs(t, s, 56)
	baselineChunks := s.LiveChunks()
	baselineBytes := s.BytesOnDisk()

	ex := Exec{Workers: 2, Prefetch: 2}

	// Mid-stream read failure: a GET dies halfway through the body.
	fault.arm("read")
	if _, err := LogRegMaterializedExec(ex, d, y, 2, 1e-3); err == nil {
		t.Fatal("dense GLM succeeded despite mid-stream read failures")
	}
	if _, err := LogRegMaterializedExec(ex, sp, y, 2, 1e-3); err == nil {
		t.Fatal("sparse GLM succeeded despite mid-stream read failures")
	}
	if _, err := LogRegFactorizedExec(ex, nt, y, 2, 1e-3); err == nil {
		t.Fatal("star GLM succeeded despite mid-stream read failures")
	}
	fault.arm("")
	if got := s.LiveChunks(); got != baselineChunks {
		t.Fatalf("after read failures: %d live chunks, want baseline %d", got, baselineChunks)
	}
	if got := s.BytesOnDisk(); got != baselineBytes {
		t.Fatalf("after read failures: %d bytes, want baseline %d", got, baselineBytes)
	}

	// Mid-stream write failure: spilled products die on the remote shard.
	fault.arm("write")
	if _, err := d.MulExec(ex, la.Ones(d.Cols(), 3)); err == nil {
		t.Fatal("spilled Mul succeeded despite remote write outage")
	}
	fault.arm("")
	if got := s.LiveChunks(); got != baselineChunks {
		t.Fatalf("after write failures: %d live chunks, want baseline %d", got, baselineChunks)
	}
	if got := s.BytesOnDisk(); got != baselineBytes {
		t.Fatalf("after write failures: %d bytes, want baseline %d", got, baselineBytes)
	}

	// Healthy again: the same matrices stream to completion, then the
	// store unwinds to zero.
	if _, err := d.SumExec(ex); err != nil {
		t.Fatalf("pass after recovery: %v", err)
	}
	if err := nt.Free(); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Free(); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveChunks(); got != 0 {
		t.Fatalf("%d live chunks after freeing everything", got)
	}
	if got := s.BytesOnDisk(); got != 0 {
		t.Fatalf("%d bytes accounted after freeing everything", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
