package chunk

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Codec is a named chunk-blob codec: Encode wraps a chunk's raw encoding in
// a self-describing, versioned frame; Decode strictly validates and inverts
// it. Names are wire-stable identifiers — they travel in /exec requests so
// a chunkd worker can decode compressed blobs shard-side — and a codec's
// output format must never change under an existing name (add a new name
// for a new format).
type Codec interface {
	Name() string
	// Encode wraps raw in the codec's framed format. Encoding never fails:
	// incompressible input is framed in a stored (uncompressed) variant.
	Encode(raw []byte) []byte
	// Decode inverts Encode bit-exactly. Truncated or corrupt input is an
	// error — never silently short or wrong data.
	Decode(blob []byte) ([]byte, error)
}

// CodecShuffleFlate names the default chunk codec: a byte-shuffle
// (transposing the blob's 8-byte words so each float64 byte lane is stored
// contiguously) followed by DEFLATE at the fastest level. The shuffle turns
// the slowly-varying sign/exponent bytes of neighboring float64 values into
// long runs the LZ77 stage folds cheaply — the classic shuffle+LZ layout
// for dense numeric blocks.
const CodecShuffleFlate = "shuffle-flate"

// Codec frame, version 1 (the "1" in the magic): 4-byte magic, one method
// byte, uint64-LE decoded length, then the method's payload. The decoded
// length is declared up front so Decode can validate it got exactly the
// bytes Encode saw, and a stored method keeps incompressible blobs from
// growing beyond the fixed header.
const codecMagic = "MCZ1"

const codecHeaderLen = len(codecMagic) + 1 + 8

const (
	codecMethodStored       = 0x00 // payload is the raw bytes verbatim
	codecMethodShuffleFlate = 0x01 // payload is DEFLATE(byteShuffle(raw))
)

// codecRegistry maps wire names to implementations. chunkd resolves /exec
// codec names here too, so driver and worker always agree on a format.
var codecRegistry = map[string]Codec{
	CodecShuffleFlate: shuffleFlateCodec{},
}

// CodecByName resolves a codec wire name.
func CodecByName(name string) (Codec, error) {
	c, ok := codecRegistry[name]
	if !ok {
		return nil, fmt.Errorf("chunk: unknown codec %q (have %v)", name, Codecs())
	}
	return c, nil
}

// Codecs lists the registered codec names, sorted.
func Codecs() []string {
	names := make([]string, 0, len(codecRegistry))
	for n := range codecRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type shuffleFlateCodec struct{}

func (shuffleFlateCodec) Name() string { return CodecShuffleFlate }

func appendCodecHeader(dst []byte, method byte, rawLen int) []byte {
	dst = append(dst, codecMagic...)
	dst = append(dst, method)
	return binary.LittleEndian.AppendUint64(dst, uint64(rawLen))
}

func (shuffleFlateCodec) Encode(raw []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(codecHeaderLen + len(raw)/2)
	buf.Write(appendCodecHeader(nil, codecMethodShuffleFlate, len(raw)))
	fw, _ := flate.NewWriter(&buf, flate.BestSpeed)
	fw.Write(byteShuffle(raw))
	fw.Close()
	if buf.Len() >= codecHeaderLen+len(raw) {
		// Incompressible (or tiny): store raw so the overhead is bounded by
		// the fixed header.
		out := appendCodecHeader(make([]byte, 0, codecHeaderLen+len(raw)), codecMethodStored, len(raw))
		return append(out, raw...)
	}
	return buf.Bytes()
}

func (shuffleFlateCodec) Decode(blob []byte) ([]byte, error) {
	if len(blob) < codecHeaderLen {
		return nil, fmt.Errorf("chunk: codec frame truncated: %d bytes, want ≥%d", len(blob), codecHeaderLen)
	}
	if string(blob[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("chunk: bad codec magic %q", blob[:len(codecMagic)])
	}
	method := blob[len(codecMagic)]
	rawLen := binary.LittleEndian.Uint64(blob[len(codecMagic)+1:])
	if rawLen > maxPartialBytes {
		return nil, fmt.Errorf("chunk: codec frame declares %d decoded bytes, exceeds cap", rawLen)
	}
	payload := blob[codecHeaderLen:]
	switch method {
	case codecMethodStored:
		if uint64(len(payload)) != rawLen {
			return nil, fmt.Errorf("chunk: stored codec payload has %d bytes, frame declares %d", len(payload), rawLen)
		}
		return append([]byte(nil), payload...), nil
	case codecMethodShuffleFlate:
		fr := flate.NewReader(bytes.NewReader(payload))
		defer fr.Close()
		shuf := make([]byte, rawLen)
		if _, err := io.ReadFull(fr, shuf); err != nil {
			return nil, fmt.Errorf("chunk: corrupt compressed payload: %w", err)
		}
		// The stream must end exactly at rawLen: trailing compressed data
		// means the frame misdescribes its contents.
		var tail [1]byte
		if n, err := fr.Read(tail[:]); n != 0 || (err != nil && err != io.EOF) {
			return nil, fmt.Errorf("chunk: compressed payload longer than the declared %d bytes", rawLen)
		}
		return byteUnshuffle(shuf), nil
	default:
		return nil, fmt.Errorf("chunk: unknown codec method 0x%02x", method)
	}
}

// byteShuffle transposes the blob viewed as (n/8)×8 bytes: byte lane k of
// every 8-byte word is grouped contiguously, so for float64 data the sign/
// exponent bytes (near-constant across neighboring values) form long runs.
// The tail (n mod 8 bytes) is copied unchanged. byteUnshuffle is the exact
// inverse for every input length.
func byteShuffle(raw []byte) []byte {
	n := len(raw)
	words := n / 8
	out := make([]byte, n)
	for lane := 0; lane < 8; lane++ {
		base := lane * words
		for w := 0; w < words; w++ {
			out[base+w] = raw[w*8+lane]
		}
	}
	copy(out[8*words:], raw[8*words:])
	return out
}

func byteUnshuffle(shuf []byte) []byte {
	n := len(shuf)
	words := n / 8
	out := make([]byte, n)
	for lane := 0; lane < 8; lane++ {
		base := lane * words
		for w := 0; w < words; w++ {
			out[w*8+lane] = shuf[base+w]
		}
	}
	copy(out[8*words:], shuf[8*words:])
	return out
}

// compressingBackend wraps an inner Backend so every chunk blob is stored —
// and, when the inner backend is remote, shipped — in the codec's framed
// format. The compression is transparent at the Backend seam: ReadChunk
// returns the original raw encoding, so the store's decoders (and every
// driver above them) run unmodified.
//
// Composition order: compression goes inside, the zone-map annotating
// wrapper outside (NewZoneMapBackend(compressed, dir)), so zone maps are
// computed from the uncompressed encoding and sidecars are never
// compressed.
type compressingBackend struct {
	inner Backend
	codec Codec
}

// NewCompressingBackend wraps inner with the named codec (see Codecs). If
// the inner backend can execute pushed-down ops, the returned backend keeps
// that capability, adding content negotiation: /exec requests name the
// codec so the worker decodes blobs shard-side and compressed chunks never
// travel for a pushed-down pass.
func NewCompressingBackend(inner Backend, codecName string) (Backend, error) {
	codec, err := CodecByName(codecName)
	if err != nil {
		return nil, err
	}
	cb := &compressingBackend{inner: inner, codec: codec}
	if ce, ok := inner.(codecExecer); ok {
		return &compressingExecBackend{compressingBackend: cb, exec: ce}, nil
	}
	return cb, nil
}

// Unwrap exposes the inner backend for capability probes (wire metering,
// nested wrappers).
func (b *compressingBackend) Unwrap() Backend { return b.inner }

func (b *compressingBackend) Name() string { return b.inner.Name() }

func (b *compressingBackend) WriteChunk(key string, data []byte) error {
	_, err := b.WriteChunkSized(key, data)
	return err
}

// WriteChunkSized stores the encoded blob and reports the bytes that
// actually landed — the compressed size, which is what the store's
// BytesOnDisk/ShardStats accounting should track.
func (b *compressingBackend) WriteChunkSized(key string, data []byte) (int64, error) {
	blob := b.codec.Encode(data)
	if err := b.inner.WriteChunk(key, blob); err != nil {
		return 0, err
	}
	return int64(len(blob)), nil
}

func (b *compressingBackend) ReadChunk(key string) ([]byte, error) {
	blob, err := b.inner.ReadChunk(key)
	if err != nil {
		return nil, err
	}
	raw, err := b.codec.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("chunk: %s: %w", key, err)
	}
	return raw, nil
}

func (b *compressingBackend) Remove(key string) error { return b.inner.Remove(key) }

func (b *compressingBackend) Reap() (int, error) { return b.inner.Reap() }

// BytesOf reports the stored (compressed) size, consistent with what
// WriteChunkSized accounted.
func (b *compressingBackend) BytesOf(key string) (int64, error) { return b.inner.BytesOf(key) }

func (b *compressingBackend) List() ([]string, error) { return b.inner.List() }

// compressingExecBackend adds pushdown to the compressing wrapper: the op
// ships with the codec name and the worker decodes blobs shard-side, so a
// pushed-down pass over compressed chunks moves only partials (and the
// request), never chunk bytes in either format.
type compressingExecBackend struct {
	*compressingBackend
	exec codecExecer
}

func (b *compressingExecBackend) ExecOp(op Op, kind string, cols int, chunks []ExecChunk) (*PartialStream, error) {
	return b.exec.execOpCodec(op, kind, cols, chunks, b.codec.Name())
}

var (
	_ Backend     = (*compressingBackend)(nil)
	_ sizedWriter = (*compressingBackend)(nil)
	_ ExecBackend = (*compressingExecBackend)(nil)
)
