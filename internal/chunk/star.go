package chunk

import (
	"fmt"

	"repro/internal/la"
)

// IntVector is an on-disk chunked int32 column (the foreign-key column of
// the out-of-core entity table). It reuses the float64 chunk files,
// storing keys as exact small floats. The key range observed at build
// time is kept so table constructors can validate references without
// re-reading the chunks.
type IntVector struct {
	m              *Matrix
	minKey, maxKey int32
}

// BuildIntVector spills a foreign-key column chunk-aligned with rows.
func BuildIntVector(store *Store, keys []int32, chunkRows int) (*IntVector, error) {
	m, err := Build(store, len(keys), 1, chunkRows, func(lo, hi int, dst *la.Dense) {
		for i := lo; i < hi; i++ {
			dst.Set(i-lo, 0, float64(keys[i]))
		}
	})
	if err != nil {
		return nil, err
	}
	v := &IntVector{m: m}
	for i, k := range keys {
		if i == 0 || k < v.minKey {
			v.minKey = k
		}
		if i == 0 || k > v.maxKey {
			v.maxKey = k
		}
	}
	return v, nil
}

// Rows reports the number of keys.
func (v *IntVector) Rows() int { return v.m.rows }

// Keys reads chunk ci and returns its first-row offset plus the decoded
// keys. It is safe to call concurrently (each call reads its own chunk),
// which lets parallel pipelines over an aligned Matrix fetch the matching
// key chunk from inside their workers.
func (v *IntVector) Keys(ci int) (lo int, keys []int32, err error) {
	lo, hi := v.m.chunkBounds(ci)
	c, err := v.m.readAt(ci)
	if err != nil {
		return 0, nil, err
	}
	keys = make([]int32, hi-lo)
	for i, f := range c.Data() {
		keys[i] = int32(f)
	}
	return lo, keys, nil
}

// Free releases the vector's chunk files.
func (v *IntVector) Free() error { return v.m.Free() }

// AttrTable is one arm of an out-of-core star schema: the foreign-key
// column lives in chunked storage aligned with the entity table, while the
// (much smaller) attribute feature matrix R stays in memory — dense or CSR,
// anything implementing la.Mat.
type AttrTable struct {
	FK *IntVector
	R  la.Mat
}

// NormalizedTable is the out-of-core normalized matrix for a star-schema
// PK-FK join at ORE scale, T = [S, K_1·R_1, ..., K_q·R_q]: the entity
// table S (dense or sparse, chunked) and each foreign-key column live on
// disk, the attribute tables stay in memory. A single attribute table
// (q = 1) is the paper's plain PK-FK join; for M:N joins (Table 10) see
// MNTable.
type NormalizedTable struct {
	S     Mat // nS×dS on disk, dense or CSR chunks
	Attrs []AttrTable
}

// NewNormalizedTable builds the single-attribute-table (plain PK-FK) star.
func NewNormalizedTable(s *Matrix, fk *IntVector, r *la.Dense) (*NormalizedTable, error) {
	return NewStarTable(s, []AttrTable{{FK: fk, R: r}})
}

// NewStarTable validates chunk alignment between S and every foreign-key
// column.
func NewStarTable(s Mat, attrs []AttrTable) (*NormalizedTable, error) {
	if s == nil {
		return nil, fmt.Errorf("chunk: star table needs an entity table")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("chunk: star table needs at least one attribute table")
	}
	for i, a := range attrs {
		if a.FK == nil || a.R == nil {
			return nil, fmt.Errorf("chunk: attribute table %d is missing FK or R", i+1)
		}
		if a.FK.m.rows != s.Rows() {
			return nil, fmt.Errorf("chunk: S has %d rows but FK%d has %d", s.Rows(), i+1, a.FK.m.rows)
		}
		if a.FK.m.chunkRows != s.ChunkRows() {
			return nil, fmt.Errorf("chunk: S chunked by %d rows but FK%d by %d", s.ChunkRows(), i+1, a.FK.m.chunkRows)
		}
		// Reject out-of-range references here instead of index-panicking
		// on a pipeline worker mid-pass.
		if a.FK.m.rows > 0 && (a.FK.minKey < 0 || int(a.FK.maxKey) >= a.R.Rows()) {
			return nil, fmt.Errorf("chunk: FK%d keys span [%d,%d] but R%d has %d rows", i+1, a.FK.minKey, a.FK.maxKey, i+1, a.R.Rows())
		}
	}
	return &NormalizedTable{S: s, Attrs: attrs}, nil
}

// Rows reports the join output row count (= nS for a PK-FK join).
func (nt *NormalizedTable) Rows() int { return nt.S.Rows() }

// Cols reports the logical column count dS + Σ dRi of the joined table.
func (nt *NormalizedTable) Cols() int {
	d := nt.S.Cols()
	for _, a := range nt.Attrs {
		d += a.R.Cols()
	}
	return d
}

// NumTables reports the number of attribute tables q.
func (nt *NormalizedTable) NumTables() int { return len(nt.Attrs) }

// ColOffsets returns the starting logical column of each attribute part
// plus the total width: offsets[0] = dS, offsets[t] the start of R_t's
// block, offsets[q] = Cols().
func (nt *NormalizedTable) ColOffsets() []int {
	offs := make([]int, len(nt.Attrs)+1)
	offs[0] = nt.S.Cols()
	for t, a := range nt.Attrs {
		offs[t+1] = offs[t] + a.R.Cols()
	}
	return offs
}

// ChunkKeys reads the aligned key chunk ci of every attribute table. Like
// IntVector.Keys it is safe to call from concurrent pipeline workers.
func (nt *NormalizedTable) ChunkKeys(ci int) ([][]int32, error) {
	keys := make([][]int32, len(nt.Attrs))
	for t, a := range nt.Attrs {
		_, ks, err := a.FK.Keys(ci)
		if err != nil {
			return nil, err
		}
		keys[t] = ks
	}
	return keys, nil
}

// Free releases the on-disk base table and key columns.
func (nt *NormalizedTable) Free() error {
	err := nt.S.Free()
	for _, a := range nt.Attrs {
		if e := a.FK.Free(); err == nil {
			err = e
		}
	}
	return err
}
