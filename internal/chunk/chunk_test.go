package chunk

import (
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/ml"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randDense(rng *rand.Rand, rows, cols int) *la.Dense {
	d := la.NewDense(rows, cols)
	for i := range d.Data() {
		d.Data()[i] = rng.NormFloat64()
	}
	return d
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := testStore(t)
	d := randDense(rng, 53, 7) // odd row count: last chunk is ragged
	m, err := FromDense(s, d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumChunks() != 6 {
		t.Fatalf("chunks = %d, want 6", m.NumChunks())
	}
	got, err := m.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(got, d, 0) {
		t.Fatal("round trip mismatch")
	}
}

func TestBuildStreaming(t *testing.T) {
	s := testStore(t)
	m, err := Build(s, 25, 3, 4, func(lo, hi int, dst *la.Dense) {
		for i := lo; i < hi; i++ {
			for j := 0; j < 3; j++ {
				dst.Set(i-lo, j, float64(i*10+j))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if d.At(24, 2) != 242 || d.At(0, 0) != 0 {
		t.Fatal("Build content mismatch")
	}
}

func TestChunkedOpsMatchInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := testStore(t)
	d := randDense(rng, 40, 6)
	m, err := FromDense(s, d, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := randDense(rng, 6, 3)
	mul, err := m.Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	mulD, _ := mul.Dense()
	if !la.EqualApprox(mulD, la.MatMul(d, x), 1e-12) {
		t.Fatal("chunked Mul mismatch")
	}
	xt := randDense(rng, 40, 2)
	tm, err := m.TMul(xt)
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(tm, la.TMatMul(d, xt), 1e-10) {
		t.Fatal("chunked TMul mismatch")
	}
	cp, err := m.CrossProd()
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(cp, d.CrossProd(), 1e-10) {
		t.Fatal("chunked CrossProd mismatch")
	}
	sc, err := m.Scale(2.5)
	if err != nil {
		t.Fatal(err)
	}
	scD, _ := sc.Dense()
	if !la.EqualApprox(scD, d.ScaleDense(2.5), 1e-12) {
		t.Fatal("chunked Scale mismatch")
	}
	cs, err := m.ColSums()
	if err != nil {
		t.Fatal(err)
	}
	if !la.EqualApprox(cs, d.ColSums(), 1e-10) {
		t.Fatal("chunked ColSums mismatch")
	}
	rs, err := m.RowSums()
	if err != nil {
		t.Fatal(err)
	}
	rsD, _ := rs.Dense()
	if !la.EqualApprox(rsD, d.RowSums(), 1e-12) {
		t.Fatal("chunked RowSums mismatch")
	}
	sum, err := m.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if diff := sum - d.Sum(); diff > 1e-9 || diff < -1e-9 {
		t.Fatal("chunked Sum mismatch")
	}
}

func TestMulShapeError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := testStore(t)
	m, _ := FromDense(s, randDense(rng, 10, 4), 5)
	if _, err := m.Mul(randDense(rng, 5, 2)); err == nil {
		t.Fatal("accepted shape mismatch")
	}
}

// TestOutOfCoreLogRegMatchesInMemory: both chunked strategies must produce
// exactly the weights the in-memory implementations produce, and the
// factorized strategy must read far fewer bytes.
func TestOutOfCoreLogRegMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nS, dS, nR, dR := 300, 4, 12, 16
	s := randDense(rng, nS, dS)
	r := randDense(rng, nR, dR)
	fk := make([]int32, nS)
	for i := range fk {
		fk[i] = int32(rng.Intn(nR))
	}
	// Materialized T.
	td := la.NewDense(nS, dS+dR)
	for i := 0; i < nS; i++ {
		copy(td.Row(i)[:dS], s.Row(i))
		copy(td.Row(i)[dS:], r.Row(int(fk[i])))
	}
	y := la.NewDense(nS, 1)
	for i := range y.Data() {
		if rng.Intn(2) == 0 {
			y.Data()[i] = 1
		} else {
			y.Data()[i] = -1
		}
	}
	const iters, alpha = 8, 1e-3

	store := testStore(t)
	tm, err := FromDense(store, td, 64)
	if err != nil {
		t.Fatal(err)
	}
	resM, err := LogRegMaterializedExec(Parallel(), tm, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := FromDense(store, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	fkv, err := BuildIntVector(store, fk, 64)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := NewNormalizedTable(sm, fkv, r)
	if err != nil {
		t.Fatal(err)
	}
	resF, err := LogRegFactorizedExec(Parallel(), nt, y, iters, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: in-memory materialized GD.
	wRef, err := ml.LogisticRegressionGD(td, y, nil, ml.Options{Iters: iters, StepSize: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(resM.W, wRef) > 1e-9 {
		t.Fatal("chunked materialized logreg deviates from in-memory")
	}
	if la.MaxAbsDiff(resF.W, wRef) > 1e-9 {
		t.Fatal("chunked factorized logreg deviates from in-memory")
	}
	if resF.BytesRead >= resM.BytesRead {
		t.Fatalf("factorized read %d bytes, materialized %d — no I/O saving", resF.BytesRead, resM.BytesRead)
	}
}

func TestNormalizedTableValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := testStore(t)
	s, _ := FromDense(store, randDense(rng, 20, 2), 8)
	fkShort, _ := BuildIntVector(store, make([]int32, 19), 8)
	if _, err := NewNormalizedTable(s, fkShort, randDense(rng, 3, 2)); err == nil {
		t.Fatal("accepted misaligned FK length")
	}
	fkWrongChunks, _ := BuildIntVector(store, make([]int32, 20), 7)
	if _, err := NewNormalizedTable(s, fkWrongChunks, randDense(rng, 3, 2)); err == nil {
		t.Fatal("accepted misaligned chunking")
	}
}
