package chunk

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/la"
)

// Exec configures how a streaming pass executes. The zero value is
// normalized to the full parallel configuration; use Serial for the
// strictly sequential read-compute-read loop (the pre-parallel engine,
// kept as the baseline the benchmarks compare against).
type Exec struct {
	// Workers is the number of goroutines computing over chunks
	// concurrently (<=0 means GOMAXPROCS).
	Workers int
	// Prefetch bounds how many decoded chunks the background reader may
	// buffer ahead of the compute workers (<0 means 0). Workers=1 with
	// Prefetch=1 is the classic double-buffered pipeline: the next chunk
	// is read while the current one is computed.
	Prefetch int
	// Pushdown ships op-based passes (StreamOp and the operators built on
	// it) to exec-capable remote shards: chunks held by a chunkd worker
	// are mapped in place and only the partials travel back, while local
	// chunks run through the usual worker pipeline. Results are
	// bit-identical with the all-local run; shards that cannot execute
	// (or fail mid-stream) fall back to the passive read path.
	Pushdown bool
}

// Serial is the strictly sequential execution: one chunk is read,
// computed, and committed before the next is touched.
var Serial = Exec{Workers: 1, Prefetch: 0}

// Parallel returns the default parallel execution: GOMAXPROCS compute
// workers fed by a prefetching reader that keeps up to 2×Workers decoded
// chunks in flight, so I/O and compute overlap and independent chunks
// proceed concurrently.
func Parallel() Exec {
	w := runtime.GOMAXPROCS(0)
	return Exec{Workers: w, Prefetch: 2 * w}
}

// normalized resolves the zero value to the full parallel configuration:
// when Workers is defaulted, an unset Prefetch defaults alongside it to
// Parallel()'s 2×Workers, so Exec{} ≡ Parallel(). An explicit Workers
// count leaves Prefetch: 0 meaning no prefetching, as documented.
func (ex Exec) normalized() Exec {
	if ex.Workers <= 0 {
		ex.Workers = runtime.GOMAXPROCS(0)
		if ex.Prefetch == 0 {
			ex.Prefetch = 2 * ex.Workers
		}
	}
	if ex.Prefetch < 0 {
		ex.Prefetch = 0
	}
	return ex
}

// writeJob is one finished output chunk awaiting spill by the write-behind
// stage.
type writeJob struct {
	path string
	d    *la.Dense
}

// spillWriter is the dedicated write-behind stage: compute workers enqueue
// finished output chunks onto a bounded queue and a single writer goroutine
// spills them to disk, overlapping output I/O with compute the same way the
// prefetching reader overlaps input I/O. enqueue blocks when the queue is
// full, which bounds in-memory output-chunk residency at the queue depth.
// After the first write error the writer keeps draining (so blocked
// producers always make progress) but drops the jobs; the error surfaces on
// every later enqueue and on close. A sharded store runs one spillWriter
// per shard, so spills to different disks proceed concurrently.
type spillWriter struct {
	jobs chan writeJob
	done chan struct{}
	mu   sync.Mutex
	err  error
}

func newSpillWriter(store *Store, depth int) *spillWriter {
	if depth < 1 {
		depth = 1
	}
	w := &spillWriter{jobs: make(chan writeJob, depth), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		for j := range w.jobs {
			if w.firstErr() != nil {
				continue
			}
			if err := store.writeChunkFile(j.path, j.d); err != nil {
				w.setErr(err)
			}
		}
	}()
	return w
}

func (w *spillWriter) firstErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *spillWriter) setErr(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
}

func (w *spillWriter) enqueue(path string, d *la.Dense) error {
	if err := w.firstErr(); err != nil {
		return err
	}
	w.jobs <- writeJob{path: path, d: d}
	return nil
}

// close waits for the queue to drain and reports the first write error.
func (w *spillWriter) close() error {
	close(w.jobs)
	<-w.done
	return w.firstErr()
}

// outputSpiller pairs freshly allocated output chunk paths with the
// writers that spill mapped chunks to them: asynchronous (write-behind)
// whenever the execution is pipelined, strictly synchronous for the Serial
// baseline so the reference path stays read-compute-write. Under a sharded
// store the spiller runs one write-behind queue per shard, so output
// chunks placed on different disks are written concurrently. Output bytes
// are identical either way — only the overlap changes.
type outputSpiller struct {
	store   *Store
	paths   []string
	shards  []int          // shard of each output path, parallel to paths
	writers []*spillWriter // indexed by shard; all nil → synchronous writes
}

// spillQueueDepth bounds each shard's write-behind queue. A small constant
// keeps output-chunk residency tight — during a spill pass at most Workers
// outputs are being computed plus spillQueueDepth+1 per shard
// queued/being written — while still decoupling the writers from bursty
// chunk completion.
const spillQueueDepth = 2

func newOutputSpiller(store *Store, n int, ex Exec) (*outputSpiller, error) {
	paths, err := store.alloc(n)
	if err != nil {
		return nil, err
	}
	sp := &outputSpiller{store: store, paths: paths, shards: make([]int, n)}
	for i, p := range paths {
		si := store.shardIndex(p)
		if si < 0 {
			// The freshly allocated path is already untracked — something
			// released it out from under us. Surface the inconsistency
			// instead of index-panicking in emit mid-pass.
			store.release(paths)
			return nil, fmt.Errorf("chunk: output chunk %s released before the spill pass started", p)
		}
		sp.shards[i] = si
	}
	if nx := ex.normalized(); nx.Workers > 1 || nx.Prefetch > 0 {
		sp.writers = make([]*spillWriter, store.NumShards())
		for _, si := range sp.shards {
			if sp.writers[si] == nil {
				sp.writers[si] = newSpillWriter(store, spillQueueDepth)
			}
		}
	}
	return sp, nil
}

// emit spills chunk ci's output, possibly asynchronously through the
// write-behind queue of the shard it was placed on. Safe for concurrent
// use from pipeline workers. A released or foreign output path surfaces as
// an error (writeChunkFile resolves the backend through the store's
// tracking; the shard index is re-checked here for the async queues)
// rather than an index panic.
func (sp *outputSpiller) emit(ci int, out *la.Dense) error {
	if sp.writers == nil {
		return sp.store.writeChunkFile(sp.paths[ci], out)
	}
	si := sp.shards[ci]
	if si < 0 || si >= len(sp.writers) || sp.writers[si] == nil {
		return fmt.Errorf("chunk: output chunk %s is not tracked by this store (freed or foreign)", sp.paths[ci])
	}
	return sp.writers[si].enqueue(sp.paths[ci], out)
}

// finish drains every shard's write-behind queue and combines their first
// error with the pipeline's. On any failure every output chunk written so
// far is released and finish returns nil paths.
func (sp *outputSpiller) finish(err error) ([]string, error) {
	for _, w := range sp.writers {
		if w == nil {
			continue
		}
		if werr := w.close(); err == nil {
			err = werr
		}
	}
	if err != nil {
		sp.store.release(sp.paths)
		return nil, err
	}
	return sp.paths, nil
}

// pipeRes is one mapped chunk result traveling from a worker to the
// ordered committer.
type pipeRes struct {
	ci  int
	v   any
	err error
}

// loaded is one decoded chunk traveling from the reader to a worker.
type loaded[T any] struct {
	ci  int
	c   T
	err error
}

// interleavedOrder computes the order a pipelined reader visits chunks
// whose files are spread across multiple shards: within consecutive
// windows of `window` chunks, reads cycle round-robin across the shards
// present in the window, so every disk (or remote chunk server) streams
// concurrently instead of serving the pass one shard at a time.
//
// The window never exceeds the pipeline's admission bound
// (Workers+Prefetch+1): the reader cannot enter window w+1 before every
// chunk of window w has been read, so whenever the ordered committer is
// waiting on chunk `next`, at most window-1 < inflight later chunks hold
// tickets and the ticket for `next`'s read is always admittable — a
// global (unwindowed) shuffle could instead fill every ticket with
// later-ordered chunks and deadlock against the ascending-ci commit.
// Commits still run in ascending chunk order, so results are bit-identical
// to the chunk-order read.
//
// shardOf[ci] is the owning shard of chunk ci (out-of-range values are
// grouped together). Returns nil — meaning plain chunk order — when fewer
// than two shards are present or the interleave is a no-op.
func interleavedOrder(shardOf []int, numShards, window int) []int {
	if numShards < 2 || window < 2 {
		return nil
	}
	n := len(shardOf)
	order := make([]int, 0, n)
	queues := make([][]int, numShards)
	for lo := 0; lo < n; lo += window {
		hi := lo + window
		if hi > n {
			hi = n
		}
		for i := range queues {
			queues[i] = queues[i][:0]
		}
		for ci := lo; ci < hi; ci++ {
			si := shardOf[ci]
			if si < 0 || si >= numShards {
				si = 0
			}
			queues[si] = append(queues[si], ci)
		}
		for emitted := true; emitted; {
			emitted = false
			for si := range queues {
				if len(queues[si]) > 0 {
					order = append(order, queues[si][0])
					queues[si] = queues[si][1:]
					emitted = true
				}
			}
		}
	}
	for i, ci := range order {
		if ci != i {
			return order
		}
	}
	return nil // the interleave is the identity; keep the fast path
}

// runPipeline streams chunks [0,n) through mapFn and commits the results
// strictly in chunk order:
//
//	reader ──bounded chan──▶ workers ──chan──▶ ordered commit
//
// read(ci) decodes chunk ci from disk; it runs on a single background
// reader goroutine so disk access stays sequential. mapFn runs on
// ex.Workers goroutines and must not touch shared state. commit runs on
// the calling goroutine, in ascending ci order regardless of which worker
// finishes first — reductions committed this way are bit-identical to the
// serial pass. The first error cancels the pipeline and is returned.
func runPipeline[T any](n int, ex Exec,
	read func(ci int) (T, error),
	mapFn func(ci int, c T) (any, error),
	commit func(ci int, v any) error) error {
	return runPipelineOrder(n, ex, nil, read, mapFn, commit)
}

// runPipelineOrder is runPipeline with an explicit read order: the single
// reader goroutine visits chunks in order[0..n) instead of ascending ci
// (nil or mis-sized order means chunk order). Pass the result of
// interleavedOrder to spread a multi-shard pass's reads round-robin across
// the shards; because commit order is unchanged, the read order never
// affects results — only which disk is busy when. The serial reference
// path (Workers 1, Prefetch 0) always reads in chunk order.
func runPipelineOrder[T any](n int, ex Exec, order []int,
	read func(ci int) (T, error),
	mapFn func(ci int, c T) (any, error),
	commit func(ci int, v any) error) error {
	if n == 0 {
		return nil
	}
	ex = ex.normalized()
	if ex.Workers == 1 && ex.Prefetch == 0 {
		// Strictly serial reference path.
		for ci := 0; ci < n; ci++ {
			c, err := read(ci)
			if err != nil {
				return err
			}
			v, err := mapFn(ci, c)
			if err != nil {
				return err
			}
			if commit != nil {
				if err := commit(ci, v); err != nil {
					return err
				}
			}
		}
		return nil
	}

	done := make(chan struct{})
	var cancelOnce sync.Once
	cancel := func() { cancelOnce.Do(func() { close(done) }) }
	defer cancel()

	// Admission tickets bound the chunks in flight between read and
	// ordered commit. Without them a single straggler chunk would let
	// the committer park every later result in `pending` with no
	// backpressure — unbounded memory in exactly the larger-than-RAM
	// regime this engine exists for. The ticket is acquired before the
	// read and released after the commit, so decoded-chunk residency is
	// capped at Workers+Prefetch+1 regardless of worker skew. Releasing
	// at commit (in ci order) cannot deadlock: the straggler holds a
	// ticket, so its result always has room to reach the committer.
	inflight := ex.Workers + ex.Prefetch + 1
	tickets := make(chan struct{}, inflight)

	if len(order) != n {
		order = nil
	}
	feed := make(chan loaded[T], ex.Prefetch)
	go func() {
		defer close(feed)
		for i := 0; i < n; i++ {
			ci := i
			if order != nil {
				ci = order[i]
			}
			select {
			case tickets <- struct{}{}:
			case <-done:
				return
			}
			c, err := read(ci)
			select {
			case feed <- loaded[T]{ci: ci, c: c, err: err}:
				if err != nil {
					return
				}
			case <-done:
				return
			}
		}
	}()

	workers := ex.Workers
	if workers > n {
		workers = n
	}
	results := make(chan pipeRes, inflight)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for lc := range feed {
				select {
				case <-done:
					return
				default:
				}
				if lc.err != nil {
					select {
					case results <- pipeRes{ci: lc.ci, err: lc.err}:
					case <-done:
					}
					return
				}
				v, err := mapFn(lc.ci, lc.c)
				select {
				case results <- pipeRes{ci: lc.ci, v: v, err: err}:
				case <-done:
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]any, workers)
	next := 0
	var firstErr error
	for r := range results {
		if firstErr != nil {
			continue // drain so the workers can exit
		}
		if r.err != nil {
			firstErr = r.err
			cancel()
			continue
		}
		pending[r.ci] = r.v
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if commit != nil {
				if err := commit(next, v); err != nil {
					firstErr = err
					cancel()
					break
				}
			}
			<-tickets // chunk fully retired; admit the next read
			next++
		}
	}
	return firstErr
}
