package chunk

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/la"
)

// TestDirBackendAtomicWrite: a spill goes through a temp file and an
// atomic rename, so after WriteChunk returns there is exactly the final
// blob — no temp debris — and a failed write leaves nothing at the final
// key.
func TestDirBackendAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChunk("chunk-000001.bin", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "chunk-000001.bin" {
		t.Fatalf("after WriteChunk the directory holds %v, want exactly chunk-000001.bin", entries)
	}
	raw, err := b.ReadChunk("chunk-000001.bin")
	if err != nil || len(raw) != 3 {
		t.Fatalf("ReadChunk = %v bytes, %v", raw, err)
	}
	// A write into a vanished directory fails without leaving the final
	// key readable anywhere.
	sub := filepath.Join(dir, "gone")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	b2, err := NewDirBackend(sub)
	if err != nil {
		t.Fatal(err)
	}
	os.RemoveAll(sub)
	if err := b2.WriteChunk("chunk-000002.bin", []byte{9}); err == nil {
		t.Fatal("WriteChunk into a vanished directory succeeded")
	}
	if _, err := b2.ReadChunk("chunk-000002.bin"); err == nil {
		t.Fatal("failed write left a readable blob at the final key")
	}
}

// TestInterruptedSpillNeverReadable simulates a spill interrupted mid-write
// — a *.tmp file left in the shard directory — and checks (a) the final
// key was never created, so a reader cannot misread a truncated chunk, and
// (b) a fresh store reaps the debris alongside stale chunk files.
func TestInterruptedSpillNeverReadable(t *testing.T) {
	dir := t.TempDir()
	// Debris of a crashed run: one complete stale chunk, one interrupted
	// spill caught between temp-file write and rename.
	if err := os.WriteFile(filepath.Join(dir, "chunk-000007.bin"), make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "chunk-000008.bin"+tmpSuffix), make([]byte, 13), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.OrphansReaped(); got != 2 {
		t.Fatalf("OrphansReaped = %d, want 2 (stale chunk + tmp debris)", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("debris left after reopen: %v", entries)
	}
	// The interrupted key was never renamed into place, so nothing at the
	// final path could have been misread as a short chunk.
	if _, err := os.Stat(filepath.Join(dir, "chunk-000008.bin")); !os.IsNotExist(err) {
		t.Fatalf("interrupted spill left a readable final file (stat err %v)", err)
	}
}

// TestWriteUntrackedKeyError: writing through the store to a key it no
// longer tracks (freed, or foreign to the store) surfaces a clear error —
// the shardIndex -1 case — instead of writing an orphan blob or panicking.
func TestWriteUntrackedKeyError(t *testing.T) {
	s := testStore(t)
	if err := s.writeChunkFile("chunk-999999.bin", la.NewDense(1, 1)); err == nil || !strings.Contains(err.Error(), "not tracked") {
		t.Fatalf("write to foreign key: %v, want a not-tracked error", err)
	}
}

// TestSpillerReleasedPathSurfacesError: a spill pass whose output chunks
// were released out from under it (double-free bug in a caller, or a
// foreign path) must fail with an error on emit/finish, never an index
// panic — for both the synchronous and the write-behind spiller.
func TestSpillerReleasedPathSurfacesError(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, ex := range []Exec{Serial, {Workers: 2, Prefetch: 2}} {
		s, _ := testShardedStore(t, 2, RoundRobin)
		sp, err := newOutputSpiller(s, 3, ex)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.release(sp.paths); err != nil {
			t.Fatal(err)
		}
		emitErr := sp.emit(0, randDense(rng, 4, 2))
		_, finErr := sp.finish(emitErr)
		if emitErr == nil && finErr == nil {
			t.Fatalf("workers=%d: spilling to released output paths reported no error", ex.Workers)
		}
	}
}

// TestSpillerForeignShardIndexSurfacesError pins the emit hardening
// directly: a shard index of -1 (untracked path) returns an error instead
// of indexing sp.writers[-1].
func TestSpillerForeignShardIndexSurfacesError(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	s, _ := testShardedStore(t, 2, RoundRobin)
	sp, err := newOutputSpiller(s, 2, Exec{Workers: 2, Prefetch: 2})
	if err != nil {
		t.Fatal(err)
	}
	sp.shards[1] = -1 // simulate a path the store no longer tracks
	if err := sp.emit(1, randDense(rng, 4, 2)); err == nil || !strings.Contains(err.Error(), "not tracked") {
		t.Fatalf("emit with shard index -1: %v, want a not-tracked error", err)
	}
	if _, err := sp.finish(nil); err != nil {
		t.Fatal(err)
	}
}

// TestDirBackendList pins the Backend.List contract the chunk server's
// key listing (and remote-shard adoption) is built on: only valid chunk
// keys come back, sorted — .tmp spill debris, foreign files, and
// subdirectories are invisible.
func TestDirBackendList(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"chunk-000002.bin", "chunk-000010.bin", "chunk-000001.bin"} {
		if err := b.WriteChunk(key, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, debris := range []string{
		"chunk-000003.bin" + tmpSuffix, // interrupted spill
		"notes.txt",                    // foreign file
		"chunk-abc.bin",                // malformed key
	} {
		if err := os.WriteFile(filepath.Join(dir, debris), []byte{2}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "chunk-000099.bin"), 0o755); err != nil {
		t.Fatal(err)
	}
	keys, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"chunk-000001.bin", "chunk-000002.bin", "chunk-000010.bin"}
	if len(keys) != len(want) {
		t.Fatalf("List() = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("List() = %v, want %v", keys, want)
		}
	}
}
