package chunk

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// LogRegResult reports the fitted weights and observed I/O volume, the
// quantity that separates M from F at ORE scale.
type LogRegResult struct {
	W         *la.Dense
	BytesRead int64
}

// matPart is one chunk's contribution to a materialized-GLM iteration.
type matPart struct {
	grad  *la.Dense
	bytes int64
}

// LogRegMaterializedExec runs the standard logistic regression
// (Algorithm 3) over any chunked materialized table — dense or CSR —
// under the given execution, streaming every stored cell from disk each
// iteration: the ORE baseline of Table 9, and the sparse one-hot shapes
// of Table 6 when t is a *SparseMatrix. Per-chunk gradients are computed
// on the workers and accumulated in chunk order, so results are identical
// for every Exec. The planner-driven entry point is plan.LogReg.
func LogRegMaterializedExec(ex Exec, t Mat, y *la.Dense, iters int, alpha float64) (*LogRegResult, error) {
	if y.Rows() != t.Rows() || y.Cols() != 1 {
		return nil, fmt.Errorf("chunk: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), t.Rows())
	}
	if iters <= 0 {
		return nil, fmt.Errorf("chunk: iters must be positive")
	}
	d := t.Cols()
	w := la.NewDense(d, 1)
	var bytesRead int64
	for it := 0; it < iters; it++ {
		grad := la.NewDense(d, 1)
		err := t.Stream(ex, func(ci, lo int, c la.Mat) (any, error) {
			tw := c.Mul(w)
			p := la.NewDense(c.Rows(), 1)
			for i := 0; i < c.Rows(); i++ {
				p.Set(i, 0, y.At(lo+i, 0)/(1+math.Exp(tw.At(i, 0))))
			}
			return matPart{grad: c.TMul(p), bytes: EncodedBytes(c)}, nil
		}, func(ci int, v any) error {
			pt := v.(matPart)
			grad.AddInPlace(pt.grad)
			bytesRead += pt.bytes
			return nil
		})
		if err != nil {
			return nil, err
		}
		w.AXPYInPlace(alpha, grad)
	}
	return &LogRegResult{W: w, BytesRead: bytesRead}, nil
}

// starPart is one chunk's contribution to a factorized-GLM iteration: the
// S-side partial gradient plus the per-row coefficients and per-table keys
// needed for the (serial, ordered) R-side scatters.
type starPart struct {
	gradS *la.Dense
	keys  [][]int32
	coef  []float64
	bytes int64
}

// LogRegFactorizedExec runs the factorized logistic regression
// (Algorithm 4) over the out-of-core star under the given execution: per
// iteration it reads only the base table S (plus the key columns) from
// disk and computes the R-side partial products in memory — the
// Morpheus-on-ORE configuration, generalized to any number of attribute
// tables. Workers compute the S-side products; the R-side scatter-adds
// run in chunk order on the committer, keeping results identical for
// every Exec. The planner-driven entry point is plan.LogReg.
func LogRegFactorizedExec(ex Exec, nt *NormalizedTable, y *la.Dense, iters int, alpha float64) (*LogRegResult, error) {
	nS, dS := nt.S.Rows(), nt.S.Cols()
	offs := nt.ColOffsets()
	q := len(nt.Attrs)
	if y.Rows() != nS || y.Cols() != 1 {
		return nil, fmt.Errorf("chunk: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), nS)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("chunk: iters must be positive")
	}
	w := la.NewDense(nt.Cols(), 1)
	var bytesRead int64
	for it := 0; it < iters; it++ {
		wS := la.NewDenseData(dS, 1, w.Data()[:dS])
		rw := make([]*la.Dense, q) // per-table partial inner products, in memory
		scatter := make([][]float64, q)
		for t, a := range nt.Attrs {
			rw[t] = a.R.Mul(la.NewDenseData(a.R.Cols(), 1, w.Data()[offs[t]:offs[t+1]]))
			scatter[t] = make([]float64, a.R.Rows())
		}
		gradS := la.NewDense(dS, 1)
		err := nt.S.Stream(ex, func(ci, lo int, c la.Mat) (any, error) {
			keys, err := nt.ChunkKeys(ci)
			if err != nil {
				return nil, err
			}
			sw := c.Mul(wS)
			coef := make([]float64, c.Rows())
			for i := range coef {
				inner := sw.At(i, 0)
				for t := range keys {
					inner += rw[t].At(int(keys[t][i]), 0)
				}
				coef[i] = y.At(lo+i, 0) / (1 + math.Exp(inner))
			}
			return starPart{
				gradS: c.TMul(la.ColVector(coef)),
				keys:  keys,
				coef:  coef,
				bytes: EncodedBytes(c) + int64(q)*int64(c.Rows())*8,
			}, nil
		}, func(ci int, v any) error {
			pt := v.(starPart)
			gradS.AddInPlace(pt.gradS)
			for t := range pt.keys {
				for i, rid := range pt.keys[t] {
					scatter[t][rid] += pt.coef[i]
				}
			}
			bytesRead += pt.bytes
			return nil
		})
		if err != nil {
			return nil, err
		}
		for j := 0; j < dS; j++ {
			w.Set(j, 0, w.At(j, 0)+alpha*gradS.At(j, 0))
		}
		for t, a := range nt.Attrs {
			gradR := a.R.TMul(la.ColVector(scatter[t])) // R_tᵀ·(K_tᵀp)
			for j := 0; j < a.R.Cols(); j++ {
				w.Set(offs[t]+j, 0, w.At(offs[t]+j, 0)+alpha*gradR.At(j, 0))
			}
		}
	}
	return &LogRegResult{W: w, BytesRead: bytesRead}, nil
}
