package chunk

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// IntVector is an on-disk chunked int32 column (the foreign-key column of
// the out-of-core entity table). It reuses the float64 chunk files,
// storing keys as exact small floats.
type IntVector struct {
	m *Matrix
}

// BuildIntVector spills a foreign-key column chunk-aligned with rows.
func BuildIntVector(store *Store, keys []int32, chunkRows int) (*IntVector, error) {
	m, err := Build(store, len(keys), 1, chunkRows, func(lo, hi int, dst *la.Dense) {
		for i := lo; i < hi; i++ {
			dst.Set(i-lo, 0, float64(keys[i]))
		}
	})
	if err != nil {
		return nil, err
	}
	return &IntVector{m: m}, nil
}

// Rows reports the number of keys.
func (v *IntVector) Rows() int { return v.m.rows }

// Keys reads chunk ci and returns its first-row offset plus the decoded
// keys. It is safe to call concurrently (each call reads its own chunk),
// which lets parallel pipelines over an aligned Matrix fetch the matching
// key chunk from inside their workers.
func (v *IntVector) Keys(ci int) (lo int, keys []int32, err error) {
	lo, hi := v.m.chunkBounds(ci)
	c, err := readChunk(v.m.paths[ci], hi-lo, 1)
	if err != nil {
		return 0, nil, err
	}
	keys = make([]int32, hi-lo)
	for i, f := range c.Data() {
		keys[i] = int32(f)
	}
	return lo, keys, nil
}

// Free releases the vector's chunk files.
func (v *IntVector) Free() error { return v.m.Free() }

// NormalizedTable is the out-of-core normalized matrix for a single PK-FK
// join at ORE scale: the entity table S and its foreign-key column live in
// chunked storage, the (much smaller) attribute table R stays in memory.
// For M:N joins (Table 10), S and R base tables stay on disk and the
// indicator assignments are chunk-streamed the same way.
type NormalizedTable struct {
	S  *Matrix    // nS×dS on disk
	FK *IntVector // nS×1 on disk, aligned with S's chunking
	R  *la.Dense  // nR×dR in memory
}

// NewNormalizedTable validates chunk alignment between S and FK.
func NewNormalizedTable(s *Matrix, fk *IntVector, r *la.Dense) (*NormalizedTable, error) {
	if s.rows != fk.m.rows {
		return nil, fmt.Errorf("chunk: S has %d rows but FK has %d", s.rows, fk.m.rows)
	}
	if s.chunkRows != fk.m.chunkRows {
		return nil, fmt.Errorf("chunk: S chunked by %d rows but FK by %d", s.chunkRows, fk.m.chunkRows)
	}
	return &NormalizedTable{S: s, FK: fk, R: r}, nil
}

// Rows reports the join output row count (= nS for a PK-FK join).
func (nt *NormalizedTable) Rows() int { return nt.S.rows }

// Cols reports the logical column count dS+dR of the joined table.
func (nt *NormalizedTable) Cols() int { return nt.S.cols + nt.R.Cols() }

// Free releases the on-disk base table and key column.
func (nt *NormalizedTable) Free() error {
	err := nt.S.Free()
	if e := nt.FK.Free(); err == nil {
		err = e
	}
	return err
}

// LogRegResult reports the fitted weights and observed I/O volume, the
// quantity that separates M from F at ORE scale.
type LogRegResult struct {
	W         *la.Dense
	BytesRead int64
}

// LogRegMaterialized runs the standard logistic regression (Algorithm 3)
// over the chunked materialized table T with the parallel engine,
// streaming all nS·(dS+dR) cells from disk every iteration — the ORE
// baseline of Table 9.
func LogRegMaterialized(t *Matrix, y *la.Dense, iters int, alpha float64) (*LogRegResult, error) {
	return LogRegMaterializedExec(Parallel(), t, y, iters, alpha)
}

// matPart is one chunk's contribution to a materialized-GLM iteration.
type matPart struct {
	grad  *la.Dense
	bytes int64
}

// LogRegMaterializedExec runs the materialized chunked logistic regression
// under the given execution. Per-chunk gradients are computed on the
// workers and accumulated in chunk order, so results are identical for
// every Exec.
func LogRegMaterializedExec(ex Exec, t *Matrix, y *la.Dense, iters int, alpha float64) (*LogRegResult, error) {
	if y.Rows() != t.rows || y.Cols() != 1 {
		return nil, fmt.Errorf("chunk: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), t.rows)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("chunk: iters must be positive")
	}
	d := t.cols
	w := la.NewDense(d, 1)
	var bytesRead int64
	for it := 0; it < iters; it++ {
		grad := la.NewDense(d, 1)
		err := t.pipeline(ex, func(ci, lo int, c *la.Dense) (any, error) {
			tw := la.MatMul(c, w)
			p := la.NewDense(c.Rows(), 1)
			for i := 0; i < c.Rows(); i++ {
				p.Set(i, 0, y.At(lo+i, 0)/(1+math.Exp(tw.At(i, 0))))
			}
			return matPart{grad: la.TMatMul(c, p), bytes: int64(c.Rows()) * int64(c.Cols()) * 8}, nil
		}, func(ci int, v any) error {
			pt := v.(matPart)
			grad.AddInPlace(pt.grad)
			bytesRead += pt.bytes
			return nil
		})
		if err != nil {
			return nil, err
		}
		w.AXPYInPlace(alpha, grad)
	}
	return &LogRegResult{W: w, BytesRead: bytesRead}, nil
}

// LogRegFactorized runs the factorized logistic regression (Algorithm 4)
// over the out-of-core normalized table with the parallel engine: per
// iteration it reads only the base table S (plus the key column) from disk
// and computes the R-side partial products in memory — the
// Morpheus-on-ORE configuration.
func LogRegFactorized(nt *NormalizedTable, y *la.Dense, iters int, alpha float64) (*LogRegResult, error) {
	return LogRegFactorizedExec(Parallel(), nt, y, iters, alpha)
}

// factPart is one chunk's contribution to a factorized-GLM iteration: the
// S-side partial gradient plus the per-row coefficients and keys needed
// for the (serial, ordered) R-side scatter.
type factPart struct {
	gradS *la.Dense
	keys  []int32
	coef  []float64
	bytes int64
}

// LogRegFactorizedExec runs the factorized chunked logistic regression
// under the given execution. Workers compute the S-side products; the
// R-side scatter-adds run in chunk order on the committer, keeping results
// identical for every Exec.
func LogRegFactorizedExec(ex Exec, nt *NormalizedTable, y *la.Dense, iters int, alpha float64) (*LogRegResult, error) {
	nS, dS := nt.S.rows, nt.S.cols
	dR := nt.R.Cols()
	if y.Rows() != nS || y.Cols() != 1 {
		return nil, fmt.Errorf("chunk: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), nS)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("chunk: iters must be positive")
	}
	w := la.NewDense(dS+dR, 1)
	var bytesRead int64
	for it := 0; it < iters; it++ {
		wS := la.NewDenseData(dS, 1, w.Data()[:dS])
		wR := la.NewDenseData(dR, 1, w.Data()[dS:])
		rw := la.MatMul(nt.R, wR) // partial inner products, in memory
		gradS := la.NewDense(dS, 1)
		scatter := make([]float64, nt.R.Rows())
		err := nt.S.pipeline(ex, func(ci, lo int, c *la.Dense) (any, error) {
			_, keys, err := nt.FK.Keys(ci)
			if err != nil {
				return nil, err
			}
			sw := la.MatMul(c, wS)
			coef := make([]float64, c.Rows())
			for i := range coef {
				inner := sw.At(i, 0) + rw.At(int(keys[i]), 0)
				coef[i] = y.At(lo+i, 0) / (1 + math.Exp(inner))
			}
			return factPart{
				gradS: la.TMatMul(c, la.ColVector(coef)),
				keys:  keys,
				coef:  coef,
				bytes: int64(c.Rows())*int64(c.Cols())*8 + int64(c.Rows())*8,
			}, nil
		}, func(ci int, v any) error {
			pt := v.(factPart)
			gradS.AddInPlace(pt.gradS)
			for i, rid := range pt.keys {
				scatter[rid] += pt.coef[i]
			}
			bytesRead += pt.bytes
			return nil
		})
		if err != nil {
			return nil, err
		}
		gradR := la.TMatMul(nt.R, la.ColVector(scatter)) // Rᵀ·(Kᵀp)
		for j := 0; j < dS; j++ {
			w.Set(j, 0, w.At(j, 0)+alpha*gradS.At(j, 0))
		}
		for j := 0; j < dR; j++ {
			w.Set(dS+j, 0, w.At(dS+j, 0)+alpha*gradR.At(j, 0))
		}
	}
	return &LogRegResult{W: w, BytesRead: bytesRead}, nil
}
