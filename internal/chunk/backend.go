package chunk

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Backend stores the chunk blobs of one shard. The Store handles placement,
// refcounting, and byte accounting; a Backend only has to persist, return,
// and delete opaque blobs under store-assigned keys (chunk-NNNNNN.bin). The
// default backend is a local directory (NewDirBackend); NewRemoteBackend
// talks to a morpheus-chunkd chunk server over HTTP, so one sharded store
// can mix local disks and remote nodes behind the same placement policies,
// per-shard write-behind queues, and ShardStats accounting.
//
// A Backend must be safe for concurrent use: a streaming pass reads chunks
// from worker goroutines while the write-behind stage spills to the same
// shard.
//
// Blobs cross the interface as whole []byte values (the natural unit for a
// remote shard), so each in-flight spill briefly holds one encoded copy of
// its chunk next to the decoded *la.Dense — budget for it when sizing
// chunks, as the AutoRows docs describe for output residency.
type Backend interface {
	// Name identifies the shard in stats and errors: the directory path
	// for a local shard, the base URL for a remote one. Names must be
	// unique within a store.
	Name() string
	// WriteChunk durably stores data under key, replacing any previous
	// blob. The write must be atomic: a crashed or failed write may leave
	// temporary debris (removed by Reap) but never a readable partial
	// blob under the final key.
	WriteChunk(key string, data []byte) error
	// ReadChunk returns the blob stored under key.
	ReadChunk(key string) ([]byte, error)
	// Remove deletes the blob under key. Removing a key that was never
	// written (e.g. after a failed spill) is not an error.
	Remove(key string) error
	// Reap removes stale blobs left behind by a crashed previous run —
	// chunk blobs and write-temporary debris — and reports how many it
	// removed. The Store calls it once when the backend is adopted.
	Reap() (int, error)
	// BytesOf reports the stored size of the blob under key.
	BytesOf(key string) (int64, error)
	// List returns the valid chunk keys currently stored, sorted. Write
	// debris (*.tmp) and foreign files are excluded here, so wrapped
	// backends (compression, zone maps) and the chunk server's listing all
	// share one notion of "what is a chunk".
	List() ([]string, error)
}

// tmpSuffix marks an in-progress dirBackend spill. writeChunkFile goes
// through key+tmpSuffix and renames into place, so a crash mid-write leaves
// only *.tmp debris, never a truncated chunk at a readable key.
const tmpSuffix = ".tmp"

// dirBackend is the default Backend: one local spill directory.
type dirBackend struct {
	dir string
}

// NewDirBackend creates (if needed) dir and returns the local-directory
// chunk backend over it. Stale chunk and temp files are not removed here;
// the Store reaps them via Reap when it adopts the backend.
func NewDirBackend(dir string) (Backend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunk: creating store: %w", err)
	}
	return &dirBackend{dir: dir}, nil
}

func (b *dirBackend) Name() string { return b.dir }

// WriteChunk spills via a temp file and an atomic rename, removing the
// temp on any failure: an interrupted spill never leaves a truncated chunk
// at its final path to be misread later as a byte-count error.
func (b *dirBackend) WriteChunk(key string, data []byte) error {
	final := filepath.Join(b.dir, key)
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("chunk: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("chunk: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("chunk: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("chunk: %w", err)
	}
	return nil
}

func (b *dirBackend) ReadChunk(key string) ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(b.dir, key))
	if err != nil {
		return nil, fmt.Errorf("chunk: %w", err)
	}
	return raw, nil
}

func (b *dirBackend) Remove(key string) error {
	if err := os.Remove(filepath.Join(b.dir, key)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Reap removes the debris of a crashed previous run: stale chunk files and
// interrupted-spill *.tmp files.
func (b *dirBackend) Reap() (int, error) {
	reaped := 0
	for _, pattern := range []string{"chunk-*.bin", "chunk-*.bin" + tmpSuffix} {
		stale, err := filepath.Glob(filepath.Join(b.dir, pattern))
		if err != nil {
			return reaped, fmt.Errorf("chunk: scanning for orphans: %w", err)
		}
		for _, p := range stale {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return reaped, fmt.Errorf("chunk: reaping orphan: %w", err)
			}
			reaped++
		}
	}
	return reaped, nil
}

// List returns the chunk keys in the directory, sorted (os.ReadDir order),
// skipping *.tmp debris and anything else that is not a valid chunk key.
func (b *dirBackend) List() ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("chunk: %w", err)
	}
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !validChunkKey(e.Name()) {
			continue
		}
		keys = append(keys, e.Name())
	}
	return keys, nil
}

func (b *dirBackend) BytesOf(key string) (int64, error) {
	fi, err := os.Stat(filepath.Join(b.dir, key))
	if err != nil {
		return 0, fmt.Errorf("chunk: %w", err)
	}
	return fi.Size(), nil
}

// validChunkKey reports whether key is a store-assigned chunk key. Both the
// chunk server and the remote client reject anything else, so a key can
// never escape a shard's namespace (path traversal) on either end.
func validChunkKey(key string) bool {
	if !strings.HasPrefix(key, "chunk-") || !strings.HasSuffix(key, ".bin") {
		return false
	}
	digits := key[len("chunk-") : len(key)-len(".bin")]
	if digits == "" {
		return false
	}
	for _, r := range digits {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
