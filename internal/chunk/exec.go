package chunk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Chunk kinds on the /exec wire: how the worker should decode the raw
// chunk bytes it holds.
const (
	chunkKindDense = "dense"
	chunkKindCSR   = "csr"
)

// ExecChunk names one locally held chunk in an /exec request. Rows is the
// chunk's row count, needed to decode the stored bytes.
type ExecChunk struct {
	Key  string `json:"key"`
	Rows int    `json:"rows"`
}

// execRequest is the POST /exec body. Params is base64 via encoding/json's
// []byte convention. Codec, when set, names the codec (CodecByName) the
// stored blobs are framed with: the worker decodes each blob shard-side
// before the chunk decode — the content negotiation that lets compressed
// shards execute pushed-down ops without the blobs ever traveling. A
// server that does not know the codec answers 400 (a per-request hard
// error, not the 501 that would poison the client's "no /exec here"
// cache), and the pass falls back to the passive read path, where the
// compressing wrapper decodes driver-side.
type execRequest struct {
	Op     string      `json:"op"`
	Params []byte      `json:"params,omitempty"`
	Kind   string      `json:"kind"`
	Cols   int         `json:"cols"`
	Codec  string      `json:"codec,omitempty"`
	Chunks []ExecChunk `json:"chunks"`
}

// The /exec response is a stream of length-prefixed frames, flushed per
// frame so the client sees partials as they complete:
//
//	0x00 uint64-LE length, then that many bytes of encoded partial
//	0x01 uint64-LE length, then a UTF-8 error message (terminates stream)
//	0x02 end of stream (success; one per response, nothing follows)
//
// Partial frames arrive in request order. A response that ends without an
// 0x01 or 0x02 frame was cut mid-stream, and the client reports it as such
// rather than treating the prefix as complete.
const (
	framePartial = 0x00
	frameError   = 0x01
	frameEnd     = 0x02
)

// maxPartialBytes bounds a single decoded partial frame (sanity cap
// against a corrupt or hostile length prefix).
const maxPartialBytes = 1 << 30

// ExecBackend is the worker capability: a shard backend that can run a
// registered op over chunks it holds and stream back the encoded partials
// in request order. The pipeline probes for it with a type assertion and
// falls back to ReadChunk + local map when it is absent or fails.
type ExecBackend interface {
	Backend
	// ExecOp starts the op over the given chunks. The returned stream
	// yields one encoded partial per chunk, in request order. A server
	// without /exec (or without the op) returns ErrExecUnsupported.
	ExecOp(op Op, kind string, cols int, chunks []ExecChunk) (*PartialStream, error)
}

// ErrExecUnsupported reports a shard that stores chunks but cannot execute
// ops on them (older chunkd, or op not in its registry).
var ErrExecUnsupported = errors.New("chunk: exec not supported by backend")

// codecExecer is the content-negotiating variant of ExecBackend.ExecOp:
// the request names the codec the stored blobs are framed with, so the
// worker decodes them shard-side. RemoteBackend implements it (ExecOp is
// the codec="" case); the compressing wrapper injects its codec's name.
type codecExecer interface {
	execOpCodec(op Op, kind string, cols int, chunks []ExecChunk, codec string) (*PartialStream, error)
}

// PartialStream iterates the partial frames of one /exec response.
type PartialStream struct {
	r    *bufio.Reader
	body io.Closer
	done bool
}

func newPartialStream(body io.ReadCloser) *PartialStream {
	return &PartialStream{r: bufio.NewReader(body), body: body}
}

// Next returns the next encoded partial, io.EOF after the end frame, or a
// descriptive error for an error frame, a mid-stream cut, or a corrupt
// frame. After any non-nil error the stream is exhausted.
func (ps *PartialStream) Next() ([]byte, error) {
	if ps.done {
		return nil, io.EOF
	}
	tag, err := ps.r.ReadByte()
	if err != nil {
		ps.done = true
		return nil, fmt.Errorf("chunk: exec stream cut before end frame: %w", err)
	}
	switch tag {
	case frameEnd:
		ps.done = true
		return nil, io.EOF
	case framePartial, frameError:
		var lenBuf [8]byte
		if _, err := io.ReadFull(ps.r, lenBuf[:]); err != nil {
			ps.done = true
			return nil, fmt.Errorf("chunk: exec stream cut in frame header: %w", err)
		}
		n := binary.LittleEndian.Uint64(lenBuf[:])
		if n > maxPartialBytes {
			ps.done = true
			return nil, fmt.Errorf("chunk: exec frame of %d bytes exceeds cap", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(ps.r, payload); err != nil {
			ps.done = true
			return nil, fmt.Errorf("chunk: exec stream cut in frame payload: %w", err)
		}
		if tag == frameError {
			ps.done = true
			return nil, fmt.Errorf("chunk: exec worker error: %s", payload)
		}
		return payload, nil
	default:
		ps.done = true
		return nil, fmt.Errorf("chunk: exec stream: unknown frame tag 0x%02x", tag)
	}
}

// Close releases the underlying response body. Safe to call at any point;
// always call it when done with the stream.
func (ps *PartialStream) Close() error {
	ps.done = true
	return ps.body.Close()
}

func writePartialFrame(w io.Writer, payload []byte) error {
	var hdr [9]byte
	hdr[0] = framePartial
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeErrorFrame(w io.Writer, msg string) error {
	var hdr [9]byte
	hdr[0] = frameError
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, msg)
	return err
}

func writeEndFrame(w io.Writer) error {
	_, err := w.Write([]byte{frameEnd})
	return err
}
