package chunk

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/la"
)

// GNMFResult holds the streamed factorization T ≈ W·Hᵀ: the tall factor W
// stays chunked on disk, the wide-but-short factor H lives in memory.
type GNMFResult struct {
	// W is the n×rank chunked factor, aligned with the input's chunking.
	W *Matrix
	// H is the d×rank factor.
	H *la.Dense
	// BytesRead tallies the chunk bytes streamed across all passes.
	BytesRead int64
}

// gnmfPart is one chunk's contribution to the H-update pass: the partials
// T_cᵀ·W_c and W_cᵀ·W_c.
type gnmfPart struct {
	tw, wtw *la.Dense
	bytes   int64
}

// GNMFExec runs streamed GNMF under the given execution, with the same
// multiplicative updates as ml.GNMF:
//
//	H = H ∗ (Tᵀ·W) / (H·crossprod(W))
//	W = W ∗ (T·H)  / (W·crossprod(H))
//
// The n-tall factor W is itself chunked, aligned with T, so the pass never
// holds more than the in-flight chunks of either operand. Each iteration
// is two passes: the H pass streams T and the aligned W chunks, reducing
// Tᵀ·W (d×rank) and WᵀW (rank×rank) in chunk order; the W pass streams T
// again, computing each new W chunk W_c ∗ (T_c·H) / (W_c·HᵀH) and spilling
// it through the (per-shard) write-behind stage. Reductions commit in
// chunk order, so results are bit-identical for every Exec, and the
// initialization draws the identical rng sequence as ml.GNMF, so the two
// agree to floating-point reassociation error. Intermediate W generations
// are freed as soon as the next one is spilled. The planner-driven entry
// point is plan.GNMF.
func GNMFExec(ex Exec, t Mat, rank, iters int, seed int64) (*GNMFResult, error) {
	n, d := t.Rows(), t.Cols()
	if rank <= 0 {
		return nil, fmt.Errorf("chunk: rank must be positive, got %d", rank)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("chunk: iters must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	w, err := Build(t.Store(), n, rank, t.ChunkRows(), func(lo, hi int, dst *la.Dense) {
		for i := range dst.Data() {
			dst.Data()[i] = rng.Float64() + 0.1
		}
	})
	if err != nil {
		return nil, err
	}
	h := la.NewDense(d, rank)
	for i := range h.Data() {
		h.Data()[i] = rng.Float64() + 0.1
	}

	const eps = 1e-12
	var bytesRead int64
	for it := 0; it < iters; it++ {
		// H pass: tw = Tᵀ·W and wtw = WᵀW in one streamed reduction.
		tw := la.NewDense(d, rank)
		wtw := la.NewDense(rank, rank)
		err := t.Stream(ex, func(ci, lo int, c la.Mat) (any, error) {
			_, wc, err := w.Chunk(ci)
			if err != nil {
				return nil, err
			}
			return gnmfPart{
				tw:    c.TMul(wc),
				wtw:   wc.CrossProd(),
				bytes: EncodedBytes(c) + EncodedBytes(wc),
			}, nil
		}, func(ci int, v any) error {
			pt := v.(gnmfPart)
			tw.AddInPlace(pt.tw)
			wtw.AddInPlace(pt.wtw)
			bytesRead += pt.bytes
			return nil
		})
		if err != nil {
			w.Free()
			return nil, err
		}
		h = multiplicative(h, tw, la.MatMul(h, wtw), eps)

		// W pass: each new chunk is W_c ∗ (T_c·H) / (W_c·HᵀH), spilled as
		// the next W generation.
		hth := h.CrossProd()
		var passBytes atomic.Int64
		next, err := t.StreamToMatrix(ex, rank, func(ci, lo int, c la.Mat) (*la.Dense, error) {
			_, wc, err := w.Chunk(ci)
			if err != nil {
				return nil, err
			}
			passBytes.Add(EncodedBytes(c) + EncodedBytes(wc))
			return multiplicative(wc, c.Mul(h), la.MatMul(wc, hth), eps), nil
		})
		if err != nil {
			w.Free()
			return nil, err
		}
		bytesRead += passBytes.Load()
		if err := w.Free(); err != nil {
			next.Free()
			return nil, err
		}
		w = next
	}
	return &GNMFResult{W: w, H: h, BytesRead: bytesRead}, nil
}

// ReconstructionError returns ‖T − W·Hᵀ‖²_F in one streamed pass over T
// and the aligned W chunks, expanded per chunk as
//
//	‖T_c‖² − 2·Σ_{t_ij≠0} t_ij·(w_i·h_j) + tr((W_cᵀW_c)·(HᵀH))
//
// so the cross term touches only stored entries (CSR chunks pay
// O(nnz·rank), never rows×cols) and the reconstruction never
// materializes.
func (r *GNMFResult) ReconstructionError(ex Exec, t Mat) (float64, error) {
	hth := r.H.CrossProd() // rank×rank
	total := 0.0
	err := t.Stream(ex, func(ci, lo int, c la.Mat) (any, error) {
		_, wc, err := r.W.Chunk(ci)
		if err != nil {
			return nil, err
		}
		s := 0.0
		for _, v := range rowSquaredNorms(c) {
			s += v
		}
		switch tc := c.(type) {
		case *la.CSR:
			for i := 0; i < tc.Rows(); i++ {
				idx, vals := tc.RowNNZ(i)
				wr := wc.Row(i)
				for k, j := range idx {
					s -= 2 * vals[k] * dotVec(wr, r.H.Row(int(j)))
				}
			}
		default:
			for i := 0; i < c.Rows(); i++ {
				wr := wc.Row(i)
				for j := 0; j < c.Cols(); j++ {
					if v := c.At(i, j); v != 0 {
						s -= 2 * v * dotVec(wr, r.H.Row(j))
					}
				}
			}
		}
		// tr((W_cᵀW_c)·(HᵀH)) — both factors are symmetric rank×rank, so
		// the trace is their element-wise dot.
		wtw := wc.CrossProd()
		for i, v := range wtw.Data() {
			s += v * hth.Data()[i]
		}
		return s, nil
	}, func(ci int, v any) error {
		total += v.(float64)
		return nil
	})
	return total, err
}

// dotVec is the inner product of two equal-length slices.
func dotVec(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// multiplicative computes base ∗ num / den element-wise with a stabilizer,
// matching ml's update rule exactly.
func multiplicative(base, num, den *la.Dense, eps float64) *la.Dense {
	out := la.NewDense(base.Rows(), base.Cols())
	bd, nd, dd, od := base.Data(), num.Data(), den.Data(), out.Data()
	for i := range bd {
		od[i] = bd[i] * nd[i] / (dd[i] + eps)
	}
	return out
}
