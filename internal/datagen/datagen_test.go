package datagen

import (
	"math"
	"testing"

	"repro/internal/la"
)

func TestPKFKDimensions(t *testing.T) {
	spec := PKFKSpec{NS: 200, DS: 4, NR: 20, DR: 8, Seed: 1}
	m, err := PKFK(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 200 || m.Cols() != 12 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	if spec.TupleRatio() != 10 || spec.FeatureRatio() != 2 {
		t.Fatal("ratio helpers")
	}
	// Every R tuple referenced (no Compact needed).
	counts := m.Ks()[0].ColCounts()
	for j, c := range counts {
		if c == 0 {
			t.Fatalf("R tuple %d unreferenced", j)
		}
	}
}

func TestPKFKDeterministic(t *testing.T) {
	spec := PKFKSpec{NS: 50, DS: 2, NR: 5, DR: 3, Seed: 7}
	a, _ := PKFK(spec)
	b, _ := PKFK(spec)
	if la.MaxAbsDiff(a.Dense(), b.Dense()) != 0 {
		t.Fatal("same seed produced different data")
	}
	spec.Seed = 8
	c, _ := PKFK(spec)
	if la.MaxAbsDiff(a.Dense(), c.Dense()) == 0 {
		t.Fatal("different seeds produced identical data")
	}
}

func TestPKFKNoEntityFeatures(t *testing.T) {
	m, err := PKFK(PKFKSpec{NS: 30, DS: 0, NR: 5, DR: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.S() != nil || m.Cols() != 4 {
		t.Fatal("dS=0 handling")
	}
}

func TestPKFKInvalidSpec(t *testing.T) {
	if _, err := PKFK(PKFKSpec{NS: 0, DS: 1, NR: 1, DR: 1}); err == nil {
		t.Fatal("accepted nS=0")
	}
}

func TestStarDimensions(t *testing.T) {
	m, err := Star(StarSpec{NS: 100, DS: 3, NR: []int{10, 20}, DR: []int{4, 5}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTables() != 2 || m.Cols() != 12 || m.Rows() != 100 {
		t.Fatalf("star dims %dx%d q=%d", m.Rows(), m.Cols(), m.NumTables())
	}
}

func TestStarInvalidSpec(t *testing.T) {
	if _, err := Star(StarSpec{NS: 10, DS: 1, NR: []int{5}, DR: []int{1, 2}}); err == nil {
		t.Fatal("accepted mismatched NR/DR")
	}
}

func TestMNJoinSemantics(t *testing.T) {
	spec := MNSpec{NS: 40, NR: 40, DS: 3, DR: 3, NU: 10, Seed: 3}
	m, err := MN(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Output rows = number of matching (s,r) pairs; with nU=10 and 40+40
	// uniform tuples, expect roughly nS·nR/nU = 160 rows, definitely > nS.
	if m.Rows() <= spec.NS/2 {
		t.Fatalf("suspiciously few join rows: %d", m.Rows())
	}
	if m.Cols() != 6 {
		t.Fatalf("cols %d", m.Cols())
	}
	// IS/IR indicator invariant: same number of rows.
	if m.IS().Rows() != m.Ks()[0].Rows() {
		t.Fatal("IS/IR row mismatch")
	}
	// Expected output cardinality: nnz(T') = Σ_u cntS(u)·cntR(u).
	// Verify via the indicators against a direct recount.
	if m.IS().NNZ() != m.Rows() || m.Ks()[0].NNZ() != m.Rows() {
		t.Fatal("indicator nnz != |T'|")
	}
}

func TestMNCartesianProduct(t *testing.T) {
	// nU = 1 degenerates to the full cartesian product.
	m, err := MN(MNSpec{NS: 7, NR: 5, DS: 2, DR: 2, NU: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 35 {
		t.Fatalf("cartesian product has %d rows, want 35", m.Rows())
	}
}

func TestMNUniquenessDegree(t *testing.T) {
	spec := MNSpec{NS: 100, NR: 100, DS: 2, DR: 2, NU: 50, Seed: 5}
	if spec.UniquenessDegree() != 0.5 {
		t.Fatal("uniqueness degree")
	}
}

func TestLabels(t *testing.T) {
	m, _ := PKFK(PKFKSpec{NS: 60, DS: 2, NR: 6, DR: 2, Seed: 6})
	y := Labels(m, 0, true, 9)
	if y.Rows() != 60 || y.Cols() != 1 {
		t.Fatal("label dims")
	}
	pos, neg := 0, 0
	for _, v := range y.Data() {
		switch v {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("non-binary label %v", v)
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatal("degenerate labels")
	}
	// Continuous labels are reproducible and real-valued.
	y2 := Labels(m, 0.1, false, 9)
	y3 := Labels(m, 0.1, false, 9)
	if la.MaxAbsDiff(y2, y3) != 0 {
		t.Fatal("labels not deterministic")
	}
	anyNonInteger := false
	for _, v := range y2.Data() {
		if v != math.Trunc(v) {
			anyNonInteger = true
		}
	}
	if !anyNonInteger {
		t.Fatal("continuous labels look binarized")
	}
}
