// Package datagen generates the synthetic normalized datasets used by the
// paper's experiments: single PK-FK joins with controlled tuple/feature
// ratios (Table 4), star-schema multi-table joins, and M:N equi-joins with
// controlled join-attribute domain size (Table 5). All generators are
// deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/la"
)

// PKFKSpec describes a single PK-FK join dataset (paper Table 4 uses
// nS up to 2e7, dS=20, nR=1e6, dR up to 80; benchmarks scale these down
// while preserving the tuple ratio nS/nR and feature ratio dR/dS).
type PKFKSpec struct {
	NS, DS, NR, DR int
	Seed           int64
}

// TupleRatio returns nS/nR.
func (s PKFKSpec) TupleRatio() float64 { return float64(s.NS) / float64(s.NR) }

// FeatureRatio returns dR/dS.
func (s PKFKSpec) FeatureRatio() float64 { return float64(s.DR) / float64(s.DS) }

func (s PKFKSpec) String() string {
	return fmt.Sprintf("pkfk(nS=%d,dS=%d,nR=%d,dR=%d)", s.NS, s.DS, s.NR, s.DR)
}

// PKFK generates S, K, R with i.i.d. standard normal features and a
// uniform foreign key that references every R tuple at least once when
// nS ≥ nR (so no Compact step is needed, matching §3.1's assumption).
func PKFK(spec PKFKSpec) (*core.NormalizedMatrix, error) {
	if spec.NS <= 0 || spec.NR <= 0 || spec.DS < 0 || spec.DR <= 0 {
		return nil, fmt.Errorf("datagen: invalid PK-FK spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var s la.Mat
	if spec.DS > 0 {
		s = randDense(rng, spec.NS, spec.DS)
	}
	r := randDense(rng, spec.NR, spec.DR)
	assign := make([]int, spec.NS)
	for i := range assign {
		if i < spec.NR {
			assign[i] = i // guarantee full coverage first
		} else {
			assign[i] = rng.Intn(spec.NR)
		}
	}
	rng.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
	return core.NewPKFK(s, la.NewIndicator(assign, spec.NR), r)
}

// StarSpec describes a multi-table star-schema dataset (§3.5): one entity
// table and q attribute tables.
type StarSpec struct {
	NS, DS int
	NR, DR []int // per attribute table
	Seed   int64
}

// Star generates a star-schema normalized matrix.
func Star(spec StarSpec) (*core.NormalizedMatrix, error) {
	if len(spec.NR) != len(spec.DR) || len(spec.NR) == 0 {
		return nil, fmt.Errorf("datagen: star spec needs matching NR/DR, got %d/%d", len(spec.NR), len(spec.DR))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var s la.Mat
	if spec.DS > 0 {
		s = randDense(rng, spec.NS, spec.DS)
	}
	ks := make([]*la.Indicator, len(spec.NR))
	rs := make([]la.Mat, len(spec.NR))
	for t, nR := range spec.NR {
		assign := make([]int, spec.NS)
		for i := range assign {
			if i < nR {
				assign[i] = i
			} else {
				assign[i] = rng.Intn(nR)
			}
		}
		rng.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
		ks[t] = la.NewIndicator(assign, nR)
		rs[t] = randDense(rng, nR, spec.DR[t])
	}
	return core.NewStar(s, ks, rs)
}

// MNSpec describes an M:N equi-join dataset (paper Table 5): S and R each
// carry a join attribute drawn uniformly from a domain of size NU. The
// smaller NU is relative to NS, the more output tuples each base tuple
// spawns (NU=1 degenerates to the full cartesian product).
type MNSpec struct {
	NS, NR, DS, DR, NU int
	Seed               int64
}

// UniquenessDegree returns nU/nS, the paper's join-attribute uniqueness
// degree from Figure 4.
func (s MNSpec) UniquenessDegree() float64 { return float64(s.NU) / float64(s.NS) }

func (s MNSpec) String() string {
	return fmt.Sprintf("mn(nS=%d,nR=%d,dS=%d,dR=%d,nU=%d)", s.NS, s.NR, s.DS, s.DR, s.NU)
}

// MN generates the M:N join: it draws join attributes, computes the
// non-deduplicating projection join T' (the §3.6 construction), and builds
// the IS/IR indicator matrices from the matching row pairs.
func MN(spec MNSpec) (*core.NormalizedMatrix, error) {
	if spec.NS <= 0 || spec.NR <= 0 || spec.DS <= 0 || spec.DR <= 0 || spec.NU <= 0 {
		return nil, fmt.Errorf("datagen: invalid M:N spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	jS := make([]int, spec.NS)
	jR := make([]int, spec.NR)
	for i := range jS {
		jS[i] = rng.Intn(spec.NU)
	}
	for i := range jR {
		jR[i] = rng.Intn(spec.NU)
	}
	// Group R rows by join value, then emit matches in S order: this is
	// exactly T' = π(S) ⋈ π(R) with row-number bookkeeping.
	byVal := make([][]int32, spec.NU)
	for i, v := range jR {
		byVal[v] = append(byVal[v], int32(i))
	}
	var isAssign, irAssign []int32
	for i, v := range jS {
		for _, rrow := range byVal[v] {
			isAssign = append(isAssign, int32(i))
			irAssign = append(irAssign, rrow)
		}
	}
	if len(isAssign) == 0 {
		return nil, fmt.Errorf("datagen: M:N join produced no tuples (nU=%d too large for nS=%d)", spec.NU, spec.NS)
	}
	s := randDense(rng, spec.NS, spec.DS)
	r := randDense(rng, spec.NR, spec.DR)
	m, err := core.NewMN(s, la.NewIndicatorInt32(isAssign, spec.NS), la.NewIndicatorInt32(irAssign, spec.NR), r)
	if err != nil {
		return nil, err
	}
	// Drop base tuples that matched nothing, per §3.6's assumption.
	return m.Compact(), nil
}

// Labels generates an n×1 target vector from planted weights over the
// materialized features plus optional Gaussian noise; binarize turns it
// into ±1 labels for classification.
func Labels(m *core.NormalizedMatrix, noise float64, binarize bool, seed int64) *la.Dense {
	rng := rand.New(rand.NewSource(seed))
	w := randDense(rng, m.Cols(), 1)
	y := m.Mul(w)
	for i := 0; i < y.Rows(); i++ {
		v := y.At(i, 0) + noise*rng.NormFloat64()
		if binarize {
			if v >= 0 {
				v = 1
			} else {
				v = -1
			}
		}
		y.Set(i, 0, v)
	}
	return y
}

func randDense(rng *rand.Rand, rows, cols int) *la.Dense {
	m := la.NewDense(rows, cols)
	data := m.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return m
}
