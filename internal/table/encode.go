package table

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/la"
)

// Encoder turns a table's feature columns into a matrix: numeric columns
// become dense features, categorical columns one-hot sparse blocks. The
// feature layout is recorded so model weights can be traced back to
// columns.
type Encoder struct {
	// Features names each output matrix column, e.g. "Age" or
	// "Country=US".
	Features []string
	vocabs   map[string]map[string]int
	columns  []*Column
	sparse   bool
}

// NewEncoder plans the encoding for the given feature columns of t
// (Key columns are rejected — they are structure, not features).
func NewEncoder(t *Table, featureCols []string) (*Encoder, error) {
	e := &Encoder{vocabs: make(map[string]map[string]int)}
	for _, name := range featureCols {
		c, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		switch c.Kind {
		case Numeric:
			e.Features = append(e.Features, c.Name)
		case Categorical:
			vocab := c.Vocabulary()
			m := make(map[string]int, len(vocab))
			for _, v := range vocab {
				m[v] = len(e.Features)
				e.Features = append(e.Features, c.Name+"="+v)
				e.sparse = true
			}
			e.vocabs[c.Name] = m
		default:
			return nil, fmt.Errorf("table: %s.%s is a %s column, not a feature", t.Name, c.Name, c.Kind)
		}
		e.columns = append(e.columns, c)
	}
	if len(e.Features) == 0 {
		return nil, fmt.Errorf("table: no feature columns selected from %s", t.Name)
	}
	return e, nil
}

// Width reports the encoded feature dimensionality.
func (e *Encoder) Width() int { return len(e.Features) }

// Encode produces the feature matrix: CSR when any categorical column is
// present (one-hot dominated), dense otherwise.
func (e *Encoder) Encode(rows int) la.Mat {
	if !e.sparse {
		out := la.NewDense(rows, len(e.Features))
		off := 0
		for _, c := range e.columns {
			for r := 0; r < rows; r++ {
				out.Set(r, off, c.Nums[r])
			}
			off++
		}
		return out
	}
	b := la.NewCSRBuilder(rows, len(e.Features))
	off := 0
	for _, c := range e.columns {
		if c.Kind == Numeric {
			for r := 0; r < rows; r++ {
				b.Add(r, off, c.Nums[r])
			}
			off++
			continue
		}
		vocab := e.vocabs[c.Name]
		for r := 0; r < rows; r++ {
			b.Add(r, vocab[c.Cats[r]], 1)
		}
		off += len(vocab)
	}
	return b.Build()
}

// AttributeRef wires one attribute table into a star schema join.
type AttributeRef struct {
	// Table is the attribute table R_i.
	Table *Table
	// PrimaryKey is R_i's key column; ForeignKey is the referencing
	// column of the entity table.
	PrimaryKey string
	ForeignKey string
	// Features lists R_i's feature columns.
	Features []string
}

// JoinSpec describes a star-schema dataset declaratively.
type JoinSpec struct {
	// Entity is the fact table S.
	Entity *Table
	// EntityFeatures lists S's feature columns (may be empty).
	EntityFeatures []string
	// Target optionally names S's target column for supervised learning.
	Target string
	// Attributes are the dimension tables.
	Attributes []AttributeRef
}

// Build resolves keys, encodes features, and assembles the normalized
// matrix plus the target vector (nil if no target was named) — the end-to-
// end path from CSV base tables to a factorizable operand. No join is ever
// executed.
func Build(spec JoinSpec) (*core.NormalizedMatrix, *la.Dense, []string, error) {
	if spec.Entity == nil {
		return nil, nil, nil, fmt.Errorf("table: JoinSpec needs an entity table")
	}
	nS := spec.Entity.NumRows()
	var features []string
	var s la.Mat
	if len(spec.EntityFeatures) > 0 {
		enc, err := NewEncoder(spec.Entity, spec.EntityFeatures)
		if err != nil {
			return nil, nil, nil, err
		}
		s = enc.Encode(nS)
		features = append(features, enc.Features...)
	}
	ks := make([]*la.Indicator, 0, len(spec.Attributes))
	rs := make([]la.Mat, 0, len(spec.Attributes))
	for _, ref := range spec.Attributes {
		pk, err := BuildKeyIndex(ref.Table, ref.PrimaryKey)
		if err != nil {
			return nil, nil, nil, err
		}
		assign, err := ResolveForeignKey(spec.Entity, ref.ForeignKey, pk)
		if err != nil {
			return nil, nil, nil, err
		}
		enc, err := NewEncoder(ref.Table, ref.Features)
		if err != nil {
			return nil, nil, nil, err
		}
		ks = append(ks, la.NewIndicator(assign, pk.Len()))
		rs = append(rs, enc.Encode(ref.Table.NumRows()))
		for _, f := range enc.Features {
			features = append(features, ref.Table.Name+"."+f)
		}
	}
	nm, err := core.NewStar(s, ks, rs)
	if err != nil {
		return nil, nil, nil, err
	}
	var y *la.Dense
	if spec.Target != "" {
		c, err := spec.Entity.Column(spec.Target)
		if err != nil {
			return nil, nil, nil, err
		}
		if c.Kind != Numeric {
			return nil, nil, nil, fmt.Errorf("table: target %s must be numeric", spec.Target)
		}
		y = la.ColVector(c.Nums)
	}
	return nm, y, features, nil
}
