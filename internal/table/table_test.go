package table

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/la"
	"repro/internal/ml"
)

const customersCSV = `CustomerID,Churn,Age,Income,EmployerID
c1,1,34,52000,e2
c2,-1,29,48000,e1
c3,1,41,71000,e2
c4,-1,55,66000,e3
c5,1,23,31000,e1
c6,-1,37,59000,e2
`

const employersCSV = `EmployerID,Revenue,Country
e1,12.5,US
e2,88.0,DE
e3,7.25,US
`

func customerKinds() map[string]ColumnKind {
	return map[string]ColumnKind{"CustomerID": Key, "EmployerID": Key}
}

func employerKinds() map[string]ColumnKind {
	return map[string]ColumnKind{"EmployerID": Key, "Country": Categorical}
}

func loadTables(t *testing.T) (*Table, *Table) {
	t.Helper()
	s, err := ReadCSV("Customers", strings.NewReader(customersCSV), customerKinds())
	if err != nil {
		t.Fatal(err)
	}
	r, err := ReadCSV("Employers", strings.NewReader(employersCSV), employerKinds())
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestReadCSV(t *testing.T) {
	s, r := loadTables(t)
	if s.NumRows() != 6 || r.NumRows() != 3 {
		t.Fatalf("rows %d/%d", s.NumRows(), r.NumRows())
	}
	age, err := s.Column("Age")
	if err != nil {
		t.Fatal(err)
	}
	if age.Kind != Numeric || age.Nums[2] != 41 {
		t.Fatal("Age column")
	}
	country, err := r.Column("Country")
	if err != nil {
		t.Fatal(err)
	}
	if got := country.Vocabulary(); len(got) != 2 || got[0] != "DE" || got[1] != "US" {
		t.Fatalf("vocabulary %v", got)
	}
	if _, err := s.Column("Nope"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s, _ := loadTables(t)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadCSV("Customers", &buf, customerKinds())
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumRows() != s.NumRows() {
		t.Fatal("round trip row count")
	}
	a1, _ := s.Column("Income")
	a2, _ := s2.Column("Income")
	for i := range a1.Nums {
		if a1.Nums[i] != a2.Nums[i] {
			t.Fatal("round trip values")
		}
	}
}

func TestBadCSV(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1\n"), nil); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("a\nnotanumber\n"), nil); err == nil {
		t.Fatal("unparseable numeric accepted")
	}
}

func TestKeyResolution(t *testing.T) {
	s, r := loadTables(t)
	pk, err := BuildKeyIndex(r, "EmployerID")
	if err != nil {
		t.Fatal(err)
	}
	if pk.Len() != 3 {
		t.Fatal("pk size")
	}
	assign, err := ResolveForeignKey(s, "EmployerID", pk)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 1, 2, 0, 1} // e2,e1,e2,e3,e1,e2 in first-appearance order
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assign %v", assign)
		}
	}
}

func TestKeyErrors(t *testing.T) {
	s, r := loadTables(t)
	// Duplicate primary key.
	dup, _ := ReadCSV("D", strings.NewReader("K,V\na,1\na,2\n"), map[string]ColumnKind{"K": Key})
	if _, err := BuildKeyIndex(dup, "K"); err == nil {
		t.Fatal("duplicate PK accepted")
	}
	// Numeric key column rejected.
	if _, err := BuildKeyIndex(r, "Revenue"); err == nil {
		t.Fatal("numeric PK accepted")
	}
	// Dangling foreign key.
	bad, _ := ReadCSV("B", strings.NewReader("EmployerID\ne9\n"), map[string]ColumnKind{"EmployerID": Key})
	pk, _ := BuildKeyIndex(r, "EmployerID")
	if _, err := ResolveForeignKey(bad, "EmployerID", pk); err == nil {
		t.Fatal("dangling FK accepted")
	}
	_ = s
}

func TestEncoderOneHot(t *testing.T) {
	_, r := loadTables(t)
	enc, err := NewEncoder(r, []string{"Revenue", "Country"})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Width() != 3 {
		t.Fatalf("width %d", enc.Width())
	}
	if enc.Features[0] != "Revenue" || enc.Features[1] != "Country=DE" || enc.Features[2] != "Country=US" {
		t.Fatalf("features %v", enc.Features)
	}
	m := enc.Encode(r.NumRows())
	if _, ok := m.(*la.CSR); !ok {
		t.Fatal("one-hot encoding should be sparse")
	}
	// Row e2 (index 1): Revenue=88, DE=1, US=0.
	if m.At(1, 0) != 88 || m.At(1, 1) != 1 || m.At(1, 2) != 0 {
		t.Fatal("encoded values")
	}
}

func TestEncoderNumericOnlyDense(t *testing.T) {
	s, _ := loadTables(t)
	enc, err := NewEncoder(s, []string{"Age", "Income"})
	if err != nil {
		t.Fatal(err)
	}
	m := enc.Encode(s.NumRows())
	if _, ok := m.(*la.Dense); !ok {
		t.Fatal("numeric-only encoding should be dense")
	}
	if m.At(4, 0) != 23 || m.At(4, 1) != 31000 {
		t.Fatal("encoded values")
	}
}

func TestEncoderRejectsKeys(t *testing.T) {
	s, _ := loadTables(t)
	if _, err := NewEncoder(s, []string{"EmployerID"}); err == nil {
		t.Fatal("key column accepted as feature")
	}
	if _, err := NewEncoder(s, nil); err == nil {
		t.Fatal("empty feature list accepted")
	}
}

// TestBuildEndToEnd goes CSV → normalized matrix → factorized training and
// checks the result against the materialized path — the full adoption
// story in one test.
func TestBuildEndToEnd(t *testing.T) {
	s, r := loadTables(t)
	nm, y, features, err := Build(JoinSpec{
		Entity:         s,
		EntityFeatures: []string{"Age", "Income"},
		Target:         "Churn",
		Attributes: []AttributeRef{{
			Table:      r,
			PrimaryKey: "EmployerID",
			ForeignKey: "EmployerID",
			Features:   []string{"Revenue", "Country"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nm.Rows() != 6 || nm.Cols() != 5 {
		t.Fatalf("normalized matrix %dx%d", nm.Rows(), nm.Cols())
	}
	wantFeatures := []string{"Age", "Income", "Employers.Revenue", "Employers.Country=DE", "Employers.Country=US"}
	for i, f := range wantFeatures {
		if features[i] != f {
			t.Fatalf("features %v", features)
		}
	}
	if y.Rows() != 6 || y.At(0, 0) != 1 || y.At(1, 0) != -1 {
		t.Fatal("target")
	}
	// Spot-check the logical join: customer c1 works for e2 (Revenue 88, DE).
	if nm.At(0, 2) != 88 || nm.At(0, 3) != 1 || nm.At(0, 4) != 0 {
		t.Fatal("join semantics")
	}
	opt := ml.Options{Iters: 10, StepSize: 1e-9}
	wF, err := ml.LogisticRegressionGD(nm, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	wM, err := ml.LogisticRegressionGD(nm.Dense(), y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wF, wM) > 1e-12 {
		t.Fatal("factorized vs materialized training differ")
	}
}

func TestBuildValidation(t *testing.T) {
	s, _ := loadTables(t)
	if _, _, _, err := Build(JoinSpec{}); err == nil {
		t.Fatal("nil entity accepted")
	}
	if _, _, _, err := Build(JoinSpec{Entity: s, EntityFeatures: []string{"Age"}, Target: "CustomerID"}); err == nil {
		t.Fatal("categorical target accepted")
	}
}
