// Package table is the relational ingestion layer in front of the
// normalized matrix: typed columnar tables, CSV input, key resolution, and
// feature encoding. The paper assumes this machinery exists in the host
// environment (§3.2 constructs the indicator matrix from a foreign-key
// column with R's sparseMatrix); here it is part of the system, so a
// downstream user can go from raw CSV base tables to a factorized model
// without writing matrix code.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ColumnKind classifies a column's role and type.
type ColumnKind int

const (
	// Numeric columns become one dense feature each.
	Numeric ColumnKind = iota
	// Categorical columns are one-hot encoded into sparse features.
	Categorical
	// Key columns hold primary/foreign keys and are not features.
	Key
)

// String renders the kind for error messages.
func (k ColumnKind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	case Key:
		return "key"
	default:
		return fmt.Sprintf("ColumnKind(%d)", int(k))
	}
}

// Column is one typed column of a table.
type Column struct {
	Name string
	Kind ColumnKind
	// Nums holds values for Numeric columns.
	Nums []float64
	// Cats holds values for Categorical and Key columns.
	Cats []string
}

// Len reports the column's row count.
func (c *Column) Len() int {
	if c.Kind == Numeric {
		return len(c.Nums)
	}
	return len(c.Cats)
}

// Table is a named columnar table.
type Table struct {
	Name string
	Cols []*Column
	rows int
}

// New creates an empty table with the given schema. Kinds maps column
// names to their kinds; unspecified columns default to Numeric.
func New(name string, colNames []string, kinds map[string]ColumnKind) *Table {
	t := &Table{Name: name}
	for _, cn := range colNames {
		t.Cols = append(t.Cols, &Column{Name: cn, Kind: kinds[cn]})
	}
	return t
}

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return t.rows }

// Column returns the named column or an error.
func (t *Table) Column(name string) (*Column, error) {
	for _, c := range t.Cols {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("table: %s has no column %q", t.Name, name)
}

// AppendRow adds one row given as strings (CSV-shaped); numeric columns
// are parsed, the rest stored verbatim.
func (t *Table) AppendRow(cells []string) error {
	if len(cells) != len(t.Cols) {
		return fmt.Errorf("table: %s row has %d cells, want %d", t.Name, len(cells), len(t.Cols))
	}
	for i, c := range t.Cols {
		if c.Kind == Numeric {
			v, err := strconv.ParseFloat(strings.TrimSpace(cells[i]), 64)
			if err != nil {
				return fmt.Errorf("table: %s.%s row %d: %w", t.Name, c.Name, t.rows, err)
			}
			c.Nums = append(c.Nums, v)
		} else {
			c.Cats = append(c.Cats, strings.TrimSpace(cells[i]))
		}
	}
	t.rows++
	return nil
}

// ReadCSV parses a CSV stream with a header row into a table. kinds maps
// column names to kinds (default Numeric).
func ReadCSV(name string, r io.Reader, kinds map[string]ColumnKind) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading %s header: %w", name, err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
	}
	t := New(name, header, kinds)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading %s: %w", name, err)
		}
		if err := t.AppendRow(rec); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV emits the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(t.Cols))
	for r := 0; r < t.rows; r++ {
		for i, c := range t.Cols {
			if c.Kind == Numeric {
				row[i] = strconv.FormatFloat(c.Nums[r], 'g', -1, 64)
			} else {
				row[i] = c.Cats[r]
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// KeyIndex maps the distinct values of a key column to sequential row
// numbers, in first-appearance order — the RID → matrix-row mapping of
// §3.1.
type KeyIndex struct {
	byValue map[string]int
	values  []string
}

// BuildKeyIndex indexes the named key column, requiring uniqueness (it is
// a primary key).
func BuildKeyIndex(t *Table, column string) (*KeyIndex, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	if c.Kind == Numeric {
		return nil, fmt.Errorf("table: key column %s.%s must not be numeric", t.Name, column)
	}
	idx := &KeyIndex{byValue: make(map[string]int, c.Len())}
	for r, v := range c.Cats {
		if _, dup := idx.byValue[v]; dup {
			return nil, fmt.Errorf("table: duplicate primary key %q at %s.%s row %d", v, t.Name, column, r)
		}
		idx.byValue[v] = len(idx.values)
		idx.values = append(idx.values, v)
	}
	return idx, nil
}

// Len reports the number of distinct keys.
func (ki *KeyIndex) Len() int { return len(ki.values) }

// Lookup resolves a key value to its row number.
func (ki *KeyIndex) Lookup(v string) (int, bool) {
	r, ok := ki.byValue[v]
	return r, ok
}

// ResolveForeignKey maps the named foreign-key column of t through the
// primary-key index, yielding the assignment vector for the indicator
// matrix. Unresolvable keys are an error (referential integrity).
func ResolveForeignKey(t *Table, column string, pk *KeyIndex) ([]int, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	if c.Kind == Numeric {
		return nil, fmt.Errorf("table: foreign key column %s.%s must not be numeric", t.Name, column)
	}
	out := make([]int, c.Len())
	for r, v := range c.Cats {
		row, ok := pk.Lookup(v)
		if !ok {
			return nil, fmt.Errorf("table: dangling foreign key %q at %s.%s row %d", v, t.Name, column, r)
		}
		out[r] = row
	}
	return out, nil
}

// Vocabulary is the sorted distinct values of a categorical column; the
// one-hot feature space.
func (c *Column) Vocabulary() []string {
	seen := make(map[string]bool, len(c.Cats))
	for _, v := range c.Cats {
		seen[v] = true
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
