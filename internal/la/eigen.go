package la

import (
	"fmt"
	"math"
)

// SymEigen computes the eigendecomposition A = V·diag(vals)·Vᵀ of a
// symmetric matrix with the cyclic Jacobi method. It is the LAPACK
// substitute backing the pseudo-inverse; Jacobi is chosen for its
// robustness and simplicity at the d×d sizes the factorized ginv rewrite
// produces (d = dS + ΣdRi, small compared to n).
func SymEigen(a *Dense) (vals []float64, vecs *Dense) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("la: SymEigen on %dx%d", a.rows, a.cols))
	}
	n := a.rows
	w := a.Clone()
	v := Eye(n)
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.data[i*n+j] * w.data[i*n+j]
			}
		}
		if math.Sqrt(off) <= 1e-14*(1+symNorm(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if apq == 0 {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				// Rotation angle that annihilates the (p,q) entry.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				jacobiRotate(w, v, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.data[i*n+i]
	}
	return vals, v
}

func symNorm(a *Dense) float64 {
	m := 0.0
	for _, x := range a.data {
		if ax := math.Abs(x); ax > m {
			m = ax
		}
	}
	return m
}

// jacobiRotate applies the Givens rotation G(p,q,c,s) as W ← GᵀWG and
// accumulates V ← VG.
func jacobiRotate(w, v *Dense, p, q int, c, s float64) {
	n := w.rows
	for i := 0; i < n; i++ {
		wip := w.data[i*n+p]
		wiq := w.data[i*n+q]
		w.data[i*n+p] = c*wip - s*wiq
		w.data[i*n+q] = s*wip + c*wiq
	}
	for j := 0; j < n; j++ {
		wpj := w.data[p*n+j]
		wqj := w.data[q*n+j]
		w.data[p*n+j] = c*wpj - s*wqj
		w.data[q*n+j] = s*wpj + c*wqj
	}
	for i := 0; i < n; i++ {
		vip := v.data[i*n+p]
		viq := v.data[i*n+q]
		v.data[i*n+p] = c*vip - s*viq
		v.data[i*n+q] = s*vip + c*viq
	}
}

// SymGinv computes the Moore-Penrose pseudo-inverse of a symmetric matrix
// by thresholded eigenvalue reciprocation: A⁺ = V·diag(1/λᵢ or 0)·Vᵀ.
func SymGinv(a *Dense) *Dense {
	vals, v := SymEigen(a)
	n := len(vals)
	maxAbs := 0.0
	for _, l := range vals {
		if al := math.Abs(l); al > maxAbs {
			maxAbs = al
		}
	}
	tol := float64(n) * 1e-13 * maxAbs
	// A⁺ = V diag(inv) Vᵀ computed as (V·diag)·Vᵀ.
	vd := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(vals[j]) > tol {
				vd.data[i*n+j] = v.data[i*n+j] / vals[j]
			}
		}
	}
	return MatMulT(vd, v)
}

// Ginv computes the Moore-Penrose pseudo-inverse of a dense matrix using
// the paper's reduction (§3.3.6): ginv(T) = ginv(crossprod(T))·Tᵀ when
// n ≥ d, and Tᵀ·ginv(crossprod(Tᵀ)) otherwise.
func Ginv(m *Dense) *Dense { return GinvOf(m) }

// GinvOf computes the pseudo-inverse of any base-table matrix through the
// same crossprod reduction, keeping the large multiplications in the
// operand's native (possibly sparse) format.
func GinvOf(a Mat) *Dense {
	if a.Rows() >= a.Cols() {
		p := SymGinv(a.CrossProd())
		// ginv = P·Aᵀ = (A·Pᵀ)ᵀ = (A·P)ᵀ since P is symmetric.
		return a.Mul(p).TDense()
	}
	g := SymGinv(a.Gram())
	return a.TMul(g)
}

// Cholesky factors an SPD matrix A = L·Lᵀ, returning the lower-triangular
// factor, or an error if A is not positive definite.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("la: Cholesky on %dx%d", a.rows, a.cols)
	}
	n := a.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("la: matrix not positive definite at pivot %d (%g)", i, s)
				}
				l.data[i*n+i] = math.Sqrt(s)
			} else {
				l.data[i*n+j] = s / l.data[j*n+j]
			}
		}
	}
	return l, nil
}

// SolveSPD solves A·X = B for SPD A via Cholesky. It is the `solve` analog
// the paper mentions alongside ginv; callers fall back to Ginv when A is
// singular.
func SolveSPD(a, b *Dense) (*Dense, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	if b.rows != n {
		return nil, fmt.Errorf("la: SolveSPD rhs rows %d != %d", b.rows, n)
	}
	x := b.Clone()
	// Forward substitution L·Y = B.
	for col := 0; col < x.cols; col++ {
		for i := 0; i < n; i++ {
			s := x.data[i*x.cols+col]
			for k := 0; k < i; k++ {
				s -= l.data[i*n+k] * x.data[k*x.cols+col]
			}
			x.data[i*x.cols+col] = s / l.data[i*n+i]
		}
		// Back substitution Lᵀ·X = Y.
		for i := n - 1; i >= 0; i-- {
			s := x.data[i*x.cols+col]
			for k := i + 1; k < n; k++ {
				s -= l.data[k*n+i] * x.data[k*x.cols+col]
			}
			x.data[i*x.cols+col] = s / l.data[i*n+i]
		}
	}
	return x, nil
}
