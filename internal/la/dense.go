// Package la provides the linear-algebra substrate for Morpheus-Go: a
// row-major dense matrix, a CSR sparse matrix, row-selector indicator
// matrices, parallel multiplication kernels, and a symmetric eigensolver
// backed Moore-Penrose pseudo-inverse.
//
// The package plays the role that R's matrix runtime and BLAS/LAPACK play in
// the paper's prototype. Two interfaces organize the types:
//
//   - Matrix is the operand type ML algorithms are written against. Dense,
//     CSR and core.NormalizedMatrix all implement it, which is what lets a
//     single algorithm implementation run either materialized or factorized.
//   - Mat is the base-table feature-matrix contract (entity table S and
//     attribute tables R_i may each be dense or sparse).
package la

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is the logical operand contract: every operator of the paper's
// Table 1 that ML algorithms consume. Dense, CSR, and the normalized matrix
// implement it, so an LA script written against Matrix is automatically
// factorized when handed a normalized matrix (closure property, §3).
type Matrix interface {
	// Rows and Cols report the logical dimensions (after any transpose).
	Rows() int
	Cols() int
	// T returns the transpose as a logical operand. Implementations may
	// share storage with the receiver.
	T() Matrix

	// Element-wise scalar operators (Table 1, "Element-wise Scalar Op").
	Scale(x float64) Matrix
	AddScalar(x float64) Matrix
	Pow(p float64) Matrix
	Apply(f func(float64) float64) Matrix

	// Aggregation operators. RowSums returns an n×1 column vector,
	// ColSums a 1×d row vector.
	RowSums() *Dense
	ColSums() *Dense
	Sum() float64

	// Mul is left matrix multiplication (LMM): receiver · X.
	Mul(x *Dense) *Dense
	// LeftMul is right matrix multiplication (RMM): X · receiver.
	LeftMul(x *Dense) *Dense
	// CrossProd computes receiverᵀ · receiver.
	CrossProd() *Dense
	// Ginv computes the Moore-Penrose pseudo-inverse.
	Ginv() *Dense

	// Dense materializes the operand as a dense matrix.
	Dense() *Dense
}

// Mat is the base-table feature-matrix contract used by the normalized
// matrix: the entity matrix S and each attribute matrix R_i may be dense or
// sparse, and the rewrite rules only need this operation set.
type Mat interface {
	Rows() int
	Cols() int
	At(i, j int) float64
	NNZ() int

	// Mul computes A·X; TMul computes Aᵀ·X; LeftMul computes X·A.
	Mul(x *Dense) *Dense
	TMul(x *Dense) *Dense
	LeftMul(x *Dense) *Dense
	// CrossProd computes AᵀA; Gram computes AAᵀ.
	CrossProd() *Dense
	Gram() *Dense

	RowSums() *Dense
	ColSums() *Dense
	Sum() float64

	// Element-wise rewrites preserve the storage class where possible;
	// AddScalarM on a sparse matrix necessarily densifies.
	ScaleM(x float64) Mat
	AddScalarM(x float64) Mat
	PowM(p float64) Mat
	ApplyM(f func(float64) float64) Mat
	// ScaleRows multiplies row i by v[i] (used by the efficient
	// cross-product rewrite, Algorithm 2).
	ScaleRows(v []float64) Mat

	// SliceRows and SliceCols return copies of the half-open row/column
	// ranges [i0,i1) and [j0,j1); needed by the DMM rewrites (appendix C).
	SliceRows(i0, i1 int) Mat
	SliceCols(j0, j1 int) Mat

	CloneMat() Mat
	Dense() *Dense
}

// Dense is a row-major dense matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (row-major, length rows*cols) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("la: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// DenseFromRows builds a dense matrix from a slice of equal-length rows.
func DenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	d := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("la: ragged row %d: %d != %d", i, len(r), c))
		}
		copy(d.data[i*c:(i+1)*c], r)
	}
	return d
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Ones returns an all-ones rows×cols matrix (the paper's 1_{a×b}).
func Ones(rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = 1
	}
	return m
}

// ColVector returns an n×1 matrix holding v.
func ColVector(v []float64) *Dense {
	m := NewDense(len(v), 1)
	copy(m.data, v)
	return m
}

// RowVector returns a 1×n matrix holding v.
func RowVector(v []float64) *Dense {
	m := NewDense(1, len(v))
	copy(m.data, v)
	return m
}

// Rows reports the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Dense) Cols() int { return m.cols }

// NNZ counts the stored non-zero entries.
func (m *Dense) NNZ() int {
	n := 0
	for _, v := range m.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("la: index (%d,%d) out of bounds %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns the i-th row as a shared slice (no copy).
func (m *Dense) Row(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the backing row-major slice (no copy).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// TDense returns the transposed copy as a concrete *Dense.
func (m *Dense) TDense() *Dense {
	t := NewDense(m.cols, m.rows)
	// Blocked transpose for cache friendliness.
	const bs = 64
	for i0 := 0; i0 < m.rows; i0 += bs {
		i1 := min(i0+bs, m.rows)
		for j0 := 0; j0 < m.cols; j0 += bs {
			j1 := min(j0+bs, m.cols)
			for i := i0; i < i1; i++ {
				row := m.data[i*m.cols:]
				for j := j0; j < j1; j++ {
					t.data[j*m.rows+i] = row[j]
				}
			}
		}
	}
	return t
}

// SliceRowsDense returns a copy of rows [i0,i1).
func (m *Dense) SliceRowsDense(i0, i1 int) *Dense {
	if i0 < 0 || i1 > m.rows || i0 > i1 {
		panic(fmt.Sprintf("la: row slice [%d,%d) out of bounds %d", i0, i1, m.rows))
	}
	out := NewDense(i1-i0, m.cols)
	copy(out.data, m.data[i0*m.cols:i1*m.cols])
	return out
}

// SliceColsDense returns a copy of columns [j0,j1).
func (m *Dense) SliceColsDense(j0, j1 int) *Dense {
	if j0 < 0 || j1 > m.cols || j0 > j1 {
		panic(fmt.Sprintf("la: col slice [%d,%d) out of bounds %d", j0, j1, m.cols))
	}
	out := NewDense(m.rows, j1-j0)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.data[i*m.cols+j0:i*m.cols+j1])
	}
	return out
}

// HCat concatenates matrices side by side: [a, b, ...].
func HCat(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	rows := ms[0].rows
	cols := 0
	for _, m := range ms {
		if m.rows != rows {
			panic(fmt.Sprintf("la: HCat row mismatch %d != %d", m.rows, rows))
		}
		cols += m.cols
	}
	out := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(dst[off:off+m.cols], m.Row(i))
			off += m.cols
		}
	}
	return out
}

// VCat stacks matrices vertically: [a; b; ...].
func VCat(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			panic(fmt.Sprintf("la: VCat col mismatch %d != %d", m.cols, cols))
		}
		rows += m.rows
	}
	out := NewDense(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:off+len(m.data)], m.data)
		off += len(m.data)
	}
	return out
}

// EqualApprox reports whether a and b have the same shape and all elements
// within tol of each other.
func EqualApprox(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between a
// and b, which must have the same shape.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("la: shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	d := 0.0
	for i, v := range a.data {
		if x := math.Abs(v - b.data[i]); x > d {
			d = x
		}
	}
	return d
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense %dx%d", m.rows, m.cols)
	if m.rows*m.cols > 64 {
		return sb.String()
	}
	for i := 0; i < m.rows; i++ {
		sb.WriteString("\n[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.4g", m.At(i, j))
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
