package la

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randIndicator(rng *rand.Rand, rows, cols int) *Indicator {
	assign := make([]int, rows)
	for i := range assign {
		assign[i] = rng.Intn(cols)
	}
	return NewIndicator(assign, cols)
}

func TestIndicatorDense(t *testing.T) {
	k := NewIndicator([]int{0, 1, 1, 0, 1}, 2)
	d := k.Dense()
	want := DenseFromRows([][]float64{{1, 0}, {0, 1}, {0, 1}, {1, 0}, {0, 1}})
	if !EqualApprox(d, want, 0) {
		t.Fatal("indicator Dense mismatch")
	}
	if k.NNZ() != 5 {
		t.Fatalf("NNZ = %d", k.NNZ())
	}
	if k.At(2, 1) != 1 || k.At(2, 0) != 0 {
		t.Fatal("At mismatch")
	}
}

func TestIndicatorOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIndicator([]int{0, 3}, 2)
}

func TestIndicatorMulIsGather(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	k := randIndicator(rng, 20, 6)
	z := randDense(rng, 6, 4)
	got := k.Mul(z)
	want := MatMul(k.Dense(), z)
	if !EqualApprox(got, want, 1e-12) {
		t.Fatal("indicator Mul mismatch")
	}
}

func TestIndicatorTMulIsScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	k := randIndicator(rng, 20, 6)
	z := randDense(rng, 20, 3)
	got := k.TMul(z)
	want := TMatMul(k.Dense(), z)
	if !EqualApprox(got, want, 1e-12) {
		t.Fatal("indicator TMul mismatch")
	}
}

func TestIndicatorLeftMul(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	k := randIndicator(rng, 15, 5)
	x := randDense(rng, 4, 15)
	got := k.LeftMul(x)
	want := MatMul(x, k.Dense())
	if !EqualApprox(got, want, 1e-12) {
		t.Fatal("indicator LeftMul mismatch")
	}
}

func TestIndicatorVecOps(t *testing.T) {
	k := NewIndicator([]int{2, 0, 2}, 3)
	mv := k.MulVec([]float64{10, 20, 30})
	if mv[0] != 30 || mv[1] != 10 || mv[2] != 30 {
		t.Fatalf("MulVec: %v", mv)
	}
	tv := k.TMulVec([]float64{1, 2, 3})
	if tv[0] != 2 || tv[1] != 0 || tv[2] != 4 {
		t.Fatalf("TMulVec: %v", tv)
	}
}

func TestIndicatorColCounts(t *testing.T) {
	k := NewIndicator([]int{0, 1, 1, 0, 1, 1}, 3)
	c := k.ColCounts()
	if c[0] != 2 || c[1] != 4 || c[2] != 0 {
		t.Fatalf("ColCounts: %v", c)
	}
	// colSums(K) == ColCounts (the KᵀK = diag identity in Algorithm 2).
	cs := TMatMul(k.Dense(), Ones(6, 1))
	for j := 0; j < 3; j++ {
		if cs.At(j, 0) != c[j] {
			t.Fatal("ColCounts != colSums")
		}
	}
}

func TestIdentityIndicator(t *testing.T) {
	id := IdentityIndicator(4)
	if !EqualApprox(id.Dense(), Eye(4), 0) {
		t.Fatal("IdentityIndicator != Eye")
	}
}

func TestIndicatorSliceRows(t *testing.T) {
	k := NewIndicator([]int{0, 1, 2, 1, 0}, 3)
	s := k.SliceRows(1, 4)
	if s.Rows() != 3 || s.ColOf(0) != 1 || s.ColOf(2) != 1 {
		t.Fatal("SliceRows mismatch")
	}
}

// TMulIndicator must match the dense KᵀJ product, and its nnz must respect
// the appendix C bounds: max(colsK, colsJ) ≤ nnz ≤ rows (theorems C.1/C.2
// assume every column is referenced, which randIndicator may violate for
// K columns — so only the upper bound and value equality are universal).
func TestTMulIndicatorMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 5 + r.Intn(40)
		ck, cj := 1+r.Intn(6), 1+r.Intn(6)
		k := randIndicator(r, rows, ck)
		j := randIndicator(r, rows, cj)
		got := k.TMulIndicator(j)
		want := TMatMul(k.Dense(), j.Dense())
		if !EqualApprox(got.Dense(), want, 1e-12) {
			return false
		}
		return got.NNZ() <= rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// When every column of both indicators is referenced, theorem C.1's lower
// bound holds: nnz(KᵀJ) ≥ max(nCols(K), nCols(J)).
func TestTMulIndicatorLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		rows := 30
		ck, cj := 2+rng.Intn(4), 2+rng.Intn(4)
		assignK := make([]int, rows)
		assignJ := make([]int, rows)
		for i := 0; i < rows; i++ {
			// Guarantee coverage of all columns first.
			if i < ck {
				assignK[i] = i
			} else {
				assignK[i] = rng.Intn(ck)
			}
			if i < cj {
				assignJ[i] = i
			} else {
				assignJ[i] = rng.Intn(cj)
			}
		}
		k := NewIndicator(assignK, ck)
		j := NewIndicator(assignJ, cj)
		p := k.TMulIndicator(j)
		lb := ck
		if cj > lb {
			lb = cj
		}
		if p.NNZ() < lb {
			t.Fatalf("nnz(KᵀJ)=%d below lower bound %d", p.NNZ(), lb)
		}
	}
}

func TestIndicatorGatherMat(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	k := randIndicator(rng, 12, 4)
	rd := randDense(rng, 4, 5)
	rc := CSRFromDense(rd)
	gd := k.GatherMat(rd)
	gc := k.GatherMat(rc)
	want := MatMul(k.Dense(), rd)
	if !EqualApprox(gd.Dense(), want, 1e-12) {
		t.Fatal("GatherMat dense mismatch")
	}
	if !EqualApprox(gc.Dense(), want, 1e-12) {
		t.Fatal("GatherMat sparse mismatch")
	}
	if _, ok := gc.(*CSR); !ok {
		t.Fatal("GatherMat should preserve sparsity")
	}
}

func TestIndicatorPermute(t *testing.T) {
	k := NewIndicator([]int{2, 0, 2}, 3)
	// Column 1 unused: compact to 2 columns with perm {0→0, 2→1}.
	perm := []int32{0, -1, 1}
	p := k.Permute(perm, 2)
	if p.Cols() != 2 || p.ColOf(0) != 1 || p.ColOf(1) != 0 {
		t.Fatal("Permute mismatch")
	}
}
