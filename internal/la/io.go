package la

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Binary serialization for matrices: a small self-describing format so
// prepared normalized datasets can be persisted and shared between the
// generator, the benchmark harness, and user programs.
//
//	magic   [4]byte  "MXD1" (dense) | "MXS1" (CSR) | "MXI1" (indicator)
//	dims    2×int64  rows, cols
//	payload          row-major float64s | indptr/indices/vals | assignments

var (
	magicDense     = [4]byte{'M', 'X', 'D', '1'}
	magicCSR       = [4]byte{'M', 'X', 'S', '1'}
	magicIndicator = [4]byte{'M', 'X', 'I', '1'}
)

func writeHeader(w io.Writer, magic [4]byte, rows, cols int) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(rows)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, int64(cols))
}

func readHeader(r io.Reader) (magic [4]byte, rows, cols int, err error) {
	if _, err = io.ReadFull(r, magic[:]); err != nil {
		return magic, 0, 0, fmt.Errorf("la: reading magic: %w", err)
	}
	var r64, c64 int64
	if err = binary.Read(r, binary.LittleEndian, &r64); err != nil {
		return magic, 0, 0, err
	}
	if err = binary.Read(r, binary.LittleEndian, &c64); err != nil {
		return magic, 0, 0, err
	}
	if r64 < 0 || c64 < 0 || r64 > 1<<40 || c64 > 1<<40 {
		return magic, 0, 0, fmt.Errorf("la: implausible dimensions %dx%d", r64, c64)
	}
	return magic, int(r64), int(c64), nil
}

func writeFloats(w io.Writer, vs []float64) error {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func readFloats(r io.Reader, n int) ([]float64, error) {
	buf := make([]byte, n*8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// Encode serializes the dense matrix.
func (m *Dense) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, magicDense, m.rows, m.cols); err != nil {
		return err
	}
	if err := writeFloats(bw, m.data); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDense deserializes a dense matrix.
func ReadDense(r io.Reader) (*Dense, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, rows, cols, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if magic != magicDense {
		return nil, fmt.Errorf("la: bad dense magic %q", magic[:])
	}
	data, err := readFloats(br, rows*cols)
	if err != nil {
		return nil, fmt.Errorf("la: reading dense payload: %w", err)
	}
	return NewDenseData(rows, cols, data), nil
}

// Encode serializes the CSR matrix.
func (c *CSR) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, magicCSR, c.rows, c.cols); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(c.NNZ())); err != nil {
		return err
	}
	for _, p := range c.indptr {
		if err := binary.Write(bw, binary.LittleEndian, int64(p)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, c.indices); err != nil {
		return err
	}
	if err := writeFloats(bw, c.vals); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSR deserializes a CSR matrix.
func ReadCSR(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, rows, cols, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if magic != magicCSR {
		return nil, fmt.Errorf("la: bad CSR magic %q", magic[:])
	}
	var nnz64 int64
	if err := binary.Read(br, binary.LittleEndian, &nnz64); err != nil {
		return nil, err
	}
	if nnz64 < 0 || nnz64 > int64(rows)*int64(cols) {
		return nil, fmt.Errorf("la: implausible nnz %d for %dx%d", nnz64, rows, cols)
	}
	indptr := make([]int, rows+1)
	for i := range indptr {
		var v int64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		indptr[i] = int(v)
	}
	if indptr[0] != 0 || indptr[rows] != int(nnz64) {
		return nil, fmt.Errorf("la: corrupt CSR indptr")
	}
	indices := make([]int32, nnz64)
	if err := binary.Read(br, binary.LittleEndian, indices); err != nil {
		return nil, err
	}
	vals, err := readFloats(br, int(nnz64))
	if err != nil {
		return nil, err
	}
	for i := 1; i <= rows; i++ {
		if indptr[i] < indptr[i-1] {
			return nil, fmt.Errorf("la: corrupt CSR indptr at row %d", i)
		}
	}
	for i := 0; i < rows; i++ {
		prev := int32(-1)
		for _, j := range indices[indptr[i]:indptr[i+1]] {
			if j < 0 || int(j) >= cols {
				return nil, fmt.Errorf("la: corrupt CSR column index %d", j)
			}
			if j <= prev {
				return nil, fmt.Errorf("la: corrupt CSR row %d: column %d not after %d", i, j, prev)
			}
			prev = j
		}
	}
	return NewCSR(rows, cols, indptr, indices, vals), nil
}

// Encode serializes the indicator matrix.
func (k *Indicator) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, magicIndicator, len(k.rows), k.nCols); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, k.rows); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadIndicator deserializes an indicator matrix, validating assignments.
func ReadIndicator(r io.Reader) (*Indicator, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, rows, cols, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if magic != magicIndicator {
		return nil, fmt.Errorf("la: bad indicator magic %q", magic[:])
	}
	assign := make([]int32, rows)
	if err := binary.Read(br, binary.LittleEndian, assign); err != nil {
		return nil, err
	}
	for i, a := range assign {
		if a < 0 || int(a) >= cols {
			return nil, fmt.Errorf("la: corrupt indicator assignment %d at row %d", a, i)
		}
	}
	return NewIndicatorInt32(assign, cols), nil
}

// WriteCSV emits the dense matrix as comma-separated values (no header).
func (m *Dense) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDenseCSV parses headerless numeric CSV into a dense matrix.
func ReadDenseCSV(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var rows [][]float64
	cols := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("la: ragged CSV row %d: %d fields, want %d", len(rows), len(fields), cols)
		}
		row := make([]float64, cols)
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("la: CSV row %d col %d: %w", len(rows), j, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return DenseFromRows(rows), nil
}
