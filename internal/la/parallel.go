package la

import (
	"runtime"
	"sync"
)

// parallelThreshold is the amount of scalar work below which operators run
// serially; goroutine fan-out costs more than it saves on small inputs.
const parallelThreshold = 1 << 15

// parallelFor splits [0,n) into contiguous chunks and runs body(lo, hi) on
// up to GOMAXPROCS goroutines. work is an estimate of total scalar
// operations used to decide whether parallelism pays off.
func parallelFor(n int, work int, body func(lo, hi int)) {
	procs := runtime.GOMAXPROCS(0)
	if n == 0 {
		return
	}
	if procs == 1 || work < parallelThreshold || n < 2 {
		body(0, n)
		return
	}
	chunks := procs
	if chunks > n {
		chunks = n
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	size := (n + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			if lo < hi {
				body(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelRows exposes the package's chunked row-parallel loop to sibling
// packages (core's gather kernels); body(lo, hi) must be safe to run on
// disjoint row ranges concurrently.
func ParallelRows(n int, work int, body func(lo, hi int)) { parallelFor(n, work, body) }
