package la

import (
	"runtime"
	"sync"
)

// parallelThreshold is the amount of scalar work below which operators run
// serially; goroutine fan-out costs more than it saves on small inputs.
const parallelThreshold = 1 << 15

// parallelChunks reports how many contiguous chunks parallelFor would
// split [0,n) into: 1 when parallelism does not pay off, else up to
// GOMAXPROCS. Reduction kernels use it to pre-size per-chunk partial
// accumulators that are merged in chunk order, keeping results
// deterministic for a fixed GOMAXPROCS.
func parallelChunks(n int, work int) int {
	procs := runtime.GOMAXPROCS(0)
	if procs == 1 || work < parallelThreshold || n < 2 {
		return 1
	}
	if procs > n {
		return n
	}
	return procs
}

// parallelFor splits [0,n) into contiguous chunks and runs body(lo, hi) on
// up to GOMAXPROCS goroutines. work is an estimate of total scalar
// operations used to decide whether parallelism pays off.
func parallelFor(n int, work int, body func(lo, hi int)) {
	parallelForChunked(n, parallelChunks(n, work), func(c, lo, hi int) { body(lo, hi) })
}

// parallelForChunked runs body over `chunks` contiguous ranges of [0,n)
// with the chunk index exposed, so reduction kernels can write into
// per-chunk slots. The caller passes the chunk count it sized those slots
// with (from parallelChunks) — recomputing it here could disagree if
// GOMAXPROCS changed in between, indexing the slots out of range.
func parallelForChunked(n int, chunks int, body func(c, lo, hi int)) {
	if n == 0 {
		return
	}
	if chunks <= 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	size := (n + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		go func(c, lo, hi int) {
			defer wg.Done()
			if lo < hi {
				body(c, lo, hi)
			}
		}(c, lo, hi)
	}
	wg.Wait()
}

// ParallelRows exposes the package's chunked row-parallel loop to sibling
// packages (core's gather kernels); body(lo, hi) must be safe to run on
// disjoint row ranges concurrently.
func ParallelRows(n int, work int, body func(lo, hi int)) { parallelFor(n, work, body) }

// ParallelChunks exposes the fan-out decision: how many chunks
// ParallelRows would split [0,n) into for the given work estimate.
// Allocation-sensitive callers use it to run the serial case without
// materializing a closure — a func literal passed to ParallelRows escapes
// to the heap even when the loop runs inline.
func ParallelChunks(n int, work int) int { return parallelChunks(n, work) }
