package la

import (
	"encoding/binary"
	"testing"
)

// mustPanicOrValid invokes build; if it does not panic, the returned value
// is checked by verify. This is the contract the fuzz targets assert:
// constructors either reject bad input loudly or produce an object whose
// invariants hold.
func recoverPanic(f func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	f()
	return false
}

// FuzzNewCSR throws arbitrary indptr/indices arrays at NewCSR and asserts
// that every accepted matrix is safe to traverse: At, Dense, RowSums, and
// Mul must not read out of bounds (the validation added to NewCSR is what
// makes this hold).
func FuzzNewCSR(f *testing.F) {
	f.Add(2, 3, []byte{0, 1, 2}, []byte{0, 2})
	f.Add(1, 1, []byte{0, 1}, []byte{0})
	f.Add(0, 0, []byte{0}, []byte{})
	f.Add(2, 2, []byte{0, 2, 2}, []byte{0, 1})
	f.Add(2, 2, []byte{0, 2, 1}, []byte{1, 0}) // decreasing indptr: must panic
	f.Add(1, 2, []byte{0, 2}, []byte{1, 1})    // duplicate column: must panic
	f.Add(1, 1, []byte{0, 1}, []byte{9})       // column out of range: must panic
	f.Fuzz(func(t *testing.T, rows, cols int, ptrBytes, idxBytes []byte) {
		if rows < 0 || cols < 0 || rows > 64 || cols > 64 {
			t.Skip()
		}
		indptr := make([]int, len(ptrBytes))
		for i, b := range ptrBytes {
			indptr[i] = int(b)
		}
		indices := make([]int32, len(idxBytes))
		vals := make([]float64, len(idxBytes))
		for i, b := range idxBytes {
			indices[i] = int32(b)
			vals[i] = float64(b) + 1
		}
		var c *CSR
		if recoverPanic(func() { c = NewCSR(rows, cols, indptr, indices, vals) }) {
			return // rejected: fine
		}
		// Accepted: traversals must stay in bounds and agree with At.
		d := c.Dense()
		nnz := 0
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if c.At(i, j) != d.At(i, j) {
					t.Fatalf("At(%d,%d) = %g, Dense = %g", i, j, c.At(i, j), d.At(i, j))
				}
				if c.At(i, j) != 0 {
					nnz++
				}
			}
		}
		if nnz != c.NNZ() {
			t.Fatalf("NNZ() = %d, counted %d", c.NNZ(), nnz)
		}
		if cols > 0 {
			x := Ones(cols, 1)
			if got, want := c.Mul(x), d.Mul(x); MaxAbsDiff(got, want) > 1e-12 {
				t.Fatalf("Mul mismatch on accepted CSR: %g", MaxAbsDiff(got, want))
			}
		}
	})
}

// FuzzNewIndicator throws arbitrary assignment vectors at NewIndicator and
// asserts accepted indicators gather within bounds and agree with their
// dense materialization.
func FuzzNewIndicator(f *testing.F) {
	f.Add(3, []byte{0, 1, 2, 0})
	f.Add(1, []byte{0})
	f.Add(2, []byte{5}) // out of range: must panic
	f.Add(4, []byte{})
	f.Fuzz(func(t *testing.T, nCols int, raw []byte) {
		if nCols < 0 || nCols > 64 || len(raw) > 256 {
			t.Skip()
		}
		assign := make([]int, len(raw))
		for i, b := range raw {
			// Mix in negatives so range checking is exercised on both ends.
			assign[i] = int(b) - 2
		}
		var k *Indicator
		if recoverPanic(func() { k = NewIndicator(assign, nCols) }) {
			for _, a := range assign {
				if a >= 0 && a < nCols {
					continue
				}
				return // had an invalid assignment: rejection correct
			}
			t.Fatalf("NewIndicator rejected valid input %v (nCols=%d)", assign, nCols)
		}
		for _, a := range assign {
			if a < 0 || a >= nCols {
				t.Fatalf("NewIndicator accepted out-of-range assignment %d (nCols=%d)", a, nCols)
			}
		}
		if k.Rows() != len(assign) || k.Cols() != nCols {
			t.Fatalf("dims %dx%d, want %dx%d", k.Rows(), k.Cols(), len(assign), nCols)
		}
		z := NewDense(nCols, 2)
		for i := 0; i < nCols; i++ {
			z.Set(i, 0, float64(i))
			z.Set(i, 1, float64(-i))
		}
		got := k.Mul(z)
		want := k.Dense().Mul(z)
		if MaxAbsDiff(got, want) > 0 {
			t.Fatal("indicator gather disagrees with dense materialization")
		}
		sum := 0.0
		for _, c := range k.ColCounts() {
			sum += c
		}
		if int(sum) != k.Rows() {
			t.Fatalf("ColCounts sum %g != rows %d", sum, k.Rows())
		}
	})
}

// FuzzRoundTripSerialization complements the constructor fuzzing: a CSR
// built from arbitrary (valid) triplets must survive a gather round trip.
func FuzzCSRGather(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{0, 1})
	f.Fuzz(func(t *testing.T, tripRaw, assignRaw []byte) {
		const rows, cols = 8, 5
		b := NewCSRBuilder(rows, cols)
		for i := 0; i+3 < len(tripRaw); i += 4 {
			r := int(tripRaw[i]) % rows
			c := int(tripRaw[i+1]) % cols
			v := float64(binary.LittleEndian.Uint16(tripRaw[i+2:i+4])) - 32768
			b.Add(r, c, v)
		}
		csr := b.Build()
		if len(assignRaw) == 0 {
			t.Skip()
		}
		assign := make([]int32, len(assignRaw))
		for i, a := range assignRaw {
			assign[i] = int32(a) % rows
		}
		g := csr.GatherRows(assign)
		gd, cd := g.Dense(), csr.Dense()
		for i, src := range assign {
			for j := 0; j < cols; j++ {
				if gd.At(i, j) != cd.At(int(src), j) {
					t.Fatalf("gather row %d (src %d) col %d: %g != %g", i, src, j, gd.At(i, j), cd.At(int(src), j))
				}
			}
		}
	})
}
