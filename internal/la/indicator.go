package la

import (
	"fmt"
	"sort"
)

// Indicator is a row-selector matrix: a sparse 0/1 matrix with exactly one 1
// per row. It represents the paper's PK-FK indicator K (row i of S points at
// tuple K.rows[i] of R) as well as the M:N indicators I_S and I_R. Storing
// only the column index per row makes K·Z a row gather, Kᵀ·Z a scatter-add,
// and colSums(K) a bincount — exactly the cost profile the paper's
// complexity analysis (Table 3) assumes for the factorized operators.
type Indicator struct {
	rows  []int32 // rows[i] = column index of the single 1 in row i
	nCols int
}

// NewIndicator builds an indicator from the per-row column assignments.
// Every assignment must lie in [0, nCols).
func NewIndicator(assign []int, nCols int) *Indicator {
	r := make([]int32, len(assign))
	for i, a := range assign {
		if a < 0 || a >= nCols {
			panic(fmt.Sprintf("la: indicator assignment %d out of range [0,%d)", a, nCols))
		}
		r[i] = int32(a)
	}
	return &Indicator{rows: r, nCols: nCols}
}

// NewIndicatorInt32 wraps assign without copying.
func NewIndicatorInt32(assign []int32, nCols int) *Indicator {
	for i, a := range assign {
		if a < 0 || int(a) >= nCols {
			panic(fmt.Sprintf("la: indicator assignment %d (row %d) out of range [0,%d)", a, i, nCols))
		}
	}
	return &Indicator{rows: assign, nCols: nCols}
}

// IdentityIndicator returns the n×n identity as an indicator.
func IdentityIndicator(n int) *Indicator {
	r := make([]int32, n)
	for i := range r {
		r[i] = int32(i)
	}
	return &Indicator{rows: r, nCols: n}
}

// Rows reports the number of rows.
func (k *Indicator) Rows() int { return len(k.rows) }

// Cols reports the number of columns.
func (k *Indicator) Cols() int { return k.nCols }

// NNZ reports the number of non-zeros, which is exactly the row count.
func (k *Indicator) NNZ() int { return len(k.rows) }

// ColOf returns the column of the single 1 in row i.
func (k *Indicator) ColOf(i int) int { return int(k.rows[i]) }

// Assignments returns the backing row→column slice (no copy).
func (k *Indicator) Assignments() []int32 { return k.rows }

// At returns the (i,j) element (1 or 0).
func (k *Indicator) At(i, j int) float64 {
	if int(k.rows[i]) == j {
		return 1
	}
	return 0
}

// Mul computes K·Z: a row gather. Z must have k.Cols() rows.
func (k *Indicator) Mul(z *Dense) *Dense {
	if z.rows != k.nCols {
		panic(fmt.Sprintf("la: indicator Mul %dx%d · %dx%d", len(k.rows), k.nCols, z.rows, z.cols))
	}
	out := NewDense(len(k.rows), z.cols)
	parallelFor(len(k.rows), len(k.rows)*z.cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i), z.Row(int(k.rows[i])))
		}
	})
	return out
}

// TMul computes Kᵀ·Z: a scatter-add of Z's rows into the output.
func (k *Indicator) TMul(z *Dense) *Dense {
	if z.rows != len(k.rows) {
		panic(fmt.Sprintf("la: indicator TMul %dx%dᵀ · %dx%d", len(k.rows), k.nCols, z.rows, z.cols))
	}
	out := NewDense(k.nCols, z.cols)
	for i, c := range k.rows {
		axpy(out.Row(int(c)), z.Row(i), 1)
	}
	return out
}

// LeftMul computes X·K: column j of the result accumulates the columns of X
// whose K-row maps to j.
func (k *Indicator) LeftMul(x *Dense) *Dense {
	if x.cols != len(k.rows) {
		panic(fmt.Sprintf("la: indicator LeftMul %dx%d · %dx%d", x.rows, x.cols, len(k.rows), k.nCols))
	}
	out := NewDense(x.rows, k.nCols)
	parallelFor(x.rows, x.rows*x.cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xrow := x.Row(i)
			orow := out.Row(i)
			for r, c := range k.rows {
				orow[c] += xrow[r]
			}
		}
	})
	return out
}

// MulVec computes K·v for a plain vector.
func (k *Indicator) MulVec(v []float64) []float64 {
	if len(v) != k.nCols {
		panic(fmt.Sprintf("la: indicator MulVec len %d != cols %d", len(v), k.nCols))
	}
	out := make([]float64, len(k.rows))
	for i, c := range k.rows {
		out[i] = v[c]
	}
	return out
}

// TMulVec computes Kᵀ·v for a plain vector.
func (k *Indicator) TMulVec(v []float64) []float64 {
	if len(v) != len(k.rows) {
		panic(fmt.Sprintf("la: indicator TMulVec len %d != rows %d", len(v), len(k.rows)))
	}
	out := make([]float64, k.nCols)
	for i, c := range k.rows {
		out[c] += v[i]
	}
	return out
}

// ColCounts returns colSums(K) as per-column reference counts. The paper's
// Algorithm 2 uses KᵀK = diag(ColCounts).
func (k *Indicator) ColCounts() []float64 {
	out := make([]float64, k.nCols)
	for _, c := range k.rows {
		out[c]++
	}
	return out
}

// SliceRows returns the indicator restricted to rows [i0,i1).
func (k *Indicator) SliceRows(i0, i1 int) *Indicator {
	if i0 < 0 || i1 > len(k.rows) || i0 > i1 {
		panic(fmt.Sprintf("la: indicator row slice [%d,%d) out of bounds %d", i0, i1, len(k.rows)))
	}
	r := make([]int32, i1-i0)
	copy(r, k.rows[i0:i1])
	return &Indicator{rows: r, nCols: k.nCols}
}

// TMulIndicator computes KᵀJ for two indicators with the same row count.
// The result is a sparse count matrix: (KᵀJ)[a,b] = |{r : K[r]=a ∧ J[r]=b}|.
// It appears in the off-diagonal tiles of the multi-table cross-product and
// in the fourth tile of AᵀB (appendix C), where the paper proves
// max(nR_A, nR_B) ≤ nnz ≤ nS (theorems C.1, C.2).
func (k *Indicator) TMulIndicator(j *Indicator) *CSR {
	if len(k.rows) != len(j.rows) {
		panic(fmt.Sprintf("la: TMulIndicator row mismatch %d != %d", len(k.rows), len(j.rows)))
	}
	// Pack each (a,b) coordinate pair into one uint64 and sort; run-length
	// encoding the sorted keys yields the CSR arrays directly. This is
	// several times faster than hashing for the |T'|-sized M:N workloads.
	keys := make([]uint64, len(k.rows))
	for r, a := range k.rows {
		keys[r] = uint64(a)<<32 | uint64(uint32(j.rows[r]))
	}
	sort.Slice(keys, func(x, y int) bool { return keys[x] < keys[y] })
	indptr := make([]int, k.nCols+1)
	var indices []int32
	var vals []float64
	for p := 0; p < len(keys); {
		key := keys[p]
		q := p
		for q < len(keys) && keys[q] == key {
			q++
		}
		a := int(key >> 32)
		indices = append(indices, int32(uint32(key)))
		vals = append(vals, float64(q-p))
		indptr[a+1]++
		p = q
	}
	for a := 0; a < k.nCols; a++ {
		indptr[a+1] += indptr[a]
	}
	return NewCSR(k.nCols, j.nCols, indptr, indices, vals)
}

// Dense materializes the indicator.
func (k *Indicator) Dense() *Dense {
	out := NewDense(len(k.rows), k.nCols)
	for i, c := range k.rows {
		out.data[i*k.nCols+int(c)] = 1
	}
	return out
}

// GatherMat computes K·R for a base-table matrix R (dense or sparse),
// preserving sparsity: the result rows are copies of R's rows.
func (k *Indicator) GatherMat(r Mat) Mat {
	switch rm := r.(type) {
	case *Dense:
		return k.Mul(rm)
	case *CSR:
		return rm.GatherRows(k.rows)
	default:
		return k.Mul(r.Dense())
	}
}

// Permute returns K with its column space remapped: column c becomes
// perm[c]. Used when compacting away unreferenced attribute-table tuples.
func (k *Indicator) Permute(perm []int32, newCols int) *Indicator {
	r := make([]int32, len(k.rows))
	for i, c := range k.rows {
		r[i] = perm[c]
	}
	return NewIndicatorInt32(r, newCols)
}
