package la

import (
	"bytes"
	"testing"
)

func TestCorruptCSRRoundtrip(t *testing.T) {
	// Valid matrix, encode, then corrupt the indices to be non-increasing.
	c := NewCSR(1, 3, []int{0, 2}, []int32{0, 2}, []float64{1, 2})
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Layout ends with indices (nnz int32s) then vals (nnz float64s):
	// swap the two int32 column indices (0,2) -> (2,0) so the single row
	// becomes non-increasing while indptr stays valid.
	idx := len(raw) - 2*8 - 2*4
	if raw[idx] != 0 || raw[idx+4] != 2 {
		t.Fatalf("unexpected index bytes % x", raw[idx:idx+8])
	}
	raw[idx], raw[idx+4] = 2, 0
	out, err := ReadCSR(bytes.NewReader(raw))
	if err == nil {
		t.Fatalf("corrupt CSR accepted: %v", out)
	}
	t.Logf("got error (not panic): %v", err)
}
