package la

import (
	"fmt"
	"math"
)

// scaleInto writes src*x into dst (same length).
func scaleInto(dst, src []float64, x float64) {
	for i, v := range src {
		dst[i] = v * x
	}
}

// ScaleDense returns m*x as a new dense matrix.
func (m *Dense) ScaleDense(x float64) *Dense {
	out := NewDense(m.rows, m.cols)
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		scaleInto(out.data[lo*m.cols:hi*m.cols], m.data[lo*m.cols:hi*m.cols], x)
	})
	return out
}

// AddScalarDense returns m+x (element-wise) as a new dense matrix.
func (m *Dense) AddScalarDense(x float64) *Dense {
	out := NewDense(m.rows, m.cols)
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		for i := lo * m.cols; i < hi*m.cols; i++ {
			out.data[i] = m.data[i] + x
		}
	})
	return out
}

// PowDense returns m^p (element-wise) as a new dense matrix. p==2 is
// special-cased because squared matrices dominate the ML workloads.
func (m *Dense) PowDense(p float64) *Dense {
	out := NewDense(m.rows, m.cols)
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		if p == 2 {
			for i := lo * m.cols; i < hi*m.cols; i++ {
				v := m.data[i]
				out.data[i] = v * v
			}
			return
		}
		for i := lo * m.cols; i < hi*m.cols; i++ {
			out.data[i] = math.Pow(m.data[i], p)
		}
	})
	return out
}

// ApplyDense returns f applied element-wise as a new dense matrix.
func (m *Dense) ApplyDense(f func(float64) float64) *Dense {
	out := NewDense(m.rows, m.cols)
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		for i := lo * m.cols; i < hi*m.cols; i++ {
			out.data[i] = f(m.data[i])
		}
	})
	return out
}

// ScaleRowsDense returns a copy with row i multiplied by v[i].
func (m *Dense) ScaleRowsDense(v []float64) *Dense {
	if len(v) != m.rows {
		panic(fmt.Sprintf("la: ScaleRows length %d != rows %d", len(v), m.rows))
	}
	out := NewDense(m.rows, m.cols)
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			scaleInto(out.Row(i), m.Row(i), v[i])
		}
	})
	return out
}

// Add returns m+b element-wise.
func (m *Dense) Add(b *Dense) *Dense {
	return m.zipWith(b, func(x, y float64) float64 { return x + y })
}

// Sub returns m-b element-wise.
func (m *Dense) Sub(b *Dense) *Dense {
	return m.zipWith(b, func(x, y float64) float64 { return x - y })
}

// MulElem returns m*b element-wise (Hadamard product).
func (m *Dense) MulElem(b *Dense) *Dense {
	return m.zipWith(b, func(x, y float64) float64 { return x * y })
}

// DivElem returns m/b element-wise.
func (m *Dense) DivElem(b *Dense) *Dense {
	return m.zipWith(b, func(x, y float64) float64 { return x / y })
}

func (m *Dense) zipWith(b *Dense, f func(x, y float64) float64) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("la: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, m.cols)
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		for i := lo * m.cols; i < hi*m.cols; i++ {
			out.data[i] = f(m.data[i], b.data[i])
		}
	})
	return out
}

// AddInPlace adds b into m.
func (m *Dense) AddInPlace(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("la: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		for i := lo * m.cols; i < hi*m.cols; i++ {
			m.data[i] += b.data[i]
		}
	})
}

// AXPYInPlace computes m += alpha*b.
func (m *Dense) AXPYInPlace(alpha float64, b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("la: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		for i := lo * m.cols; i < hi*m.cols; i++ {
			m.data[i] += alpha * b.data[i]
		}
	})
}

// RowSumsVec returns the per-row sums as a plain slice.
func (m *Dense) RowSumsVec() []float64 {
	out := make([]float64, m.rows)
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for _, v := range m.Row(i) {
				s += v
			}
			out[i] = s
		}
	})
	return out
}

// ColSumsVec returns the per-column sums as a plain slice.
func (m *Dense) ColSumsVec() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// SumAll returns the sum of all elements.
func (m *Dense) SumAll() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v
	}
	return s
}

// RowMins returns the per-row minimum values (the paper's rowMin, used by
// K-Means cluster assignment).
func (m *Dense) RowMins() []float64 {
	out := make([]float64, m.rows)
	parallelFor(m.rows, len(m.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			mn := math.Inf(1)
			for _, v := range row {
				if v < mn {
					mn = v
				}
			}
			out[i] = mn
		}
	})
	return out
}

// --- la.Matrix interface ---

// T returns the transpose as a logical operand.
func (m *Dense) T() Matrix { return m.TDense() }

// Scale implements Matrix.
func (m *Dense) Scale(x float64) Matrix { return m.ScaleDense(x) }

// AddScalar implements Matrix.
func (m *Dense) AddScalar(x float64) Matrix { return m.AddScalarDense(x) }

// Pow implements Matrix.
func (m *Dense) Pow(p float64) Matrix { return m.PowDense(p) }

// Apply implements Matrix.
func (m *Dense) Apply(f func(float64) float64) Matrix { return m.ApplyDense(f) }

// RowSums returns an n×1 column vector of row sums.
func (m *Dense) RowSums() *Dense { return ColVector(m.RowSumsVec()) }

// ColSums returns a 1×d row vector of column sums.
func (m *Dense) ColSums() *Dense { return RowVector(m.ColSumsVec()) }

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 { return m.SumAll() }

// Mul computes m·x.
func (m *Dense) Mul(x *Dense) *Dense { return MatMul(m, x) }

// LeftMul computes x·m.
func (m *Dense) LeftMul(x *Dense) *Dense { return MatMul(x, m) }

// Dense implements Matrix by returning the receiver.
func (m *Dense) Dense() *Dense { return m }

// --- la.Mat interface (base-table role) ---

// TMul computes mᵀ·x.
func (m *Dense) TMul(x *Dense) *Dense { return TMatMul(m, x) }

// ScaleM implements Mat.
func (m *Dense) ScaleM(x float64) Mat { return m.ScaleDense(x) }

// AddScalarM implements Mat.
func (m *Dense) AddScalarM(x float64) Mat { return m.AddScalarDense(x) }

// PowM implements Mat.
func (m *Dense) PowM(p float64) Mat { return m.PowDense(p) }

// ApplyM implements Mat.
func (m *Dense) ApplyM(f func(float64) float64) Mat { return m.ApplyDense(f) }

// ScaleRows implements Mat.
func (m *Dense) ScaleRows(v []float64) Mat { return m.ScaleRowsDense(v) }

// SliceRows implements Mat.
func (m *Dense) SliceRows(i0, i1 int) Mat { return m.SliceRowsDense(i0, i1) }

// SliceCols implements Mat.
func (m *Dense) SliceCols(j0, j1 int) Mat { return m.SliceColsDense(j0, j1) }

// CloneMat implements Mat.
func (m *Dense) CloneMat() Mat { return m.Clone() }
