package la

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row matrix. The real-world datasets in the
// paper (Table 6) are sparse one-hot feature matrices, so the entity and
// attribute tables of a normalized matrix may be CSR.
type CSR struct {
	rows, cols int
	indptr     []int
	indices    []int32
	vals       []float64
}

// NewCSR wraps pre-built CSR arrays without copying. indptr must have
// rows+1 entries starting at 0 and non-decreasing; per-row column indices
// must be strictly increasing and within [0, cols). Violations panic, so a
// constructed CSR always satisfies the invariants every kernel indexes by.
func NewCSR(rows, cols int, indptr []int, indices []int32, vals []float64) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: negative CSR dimensions %dx%d", rows, cols))
	}
	if len(indptr) != rows+1 {
		panic(fmt.Sprintf("la: indptr length %d != rows+1 %d", len(indptr), rows+1))
	}
	if indptr[0] != 0 {
		panic(fmt.Sprintf("la: indptr[0] = %d, want 0", indptr[0]))
	}
	for i := 0; i < rows; i++ {
		if indptr[i+1] < indptr[i] {
			panic(fmt.Sprintf("la: indptr decreases at row %d: %d -> %d", i, indptr[i], indptr[i+1]))
		}
	}
	if len(indices) != len(vals) || len(indices) != indptr[rows] {
		panic("la: CSR arrays inconsistent")
	}
	for i := 0; i < rows; i++ {
		prev := int32(-1)
		for _, j := range indices[indptr[i]:indptr[i+1]] {
			if j < 0 || int(j) >= cols {
				panic(fmt.Sprintf("la: CSR column %d out of range [0,%d) in row %d", j, cols, i))
			}
			if j <= prev {
				panic(fmt.Sprintf("la: CSR columns not strictly increasing in row %d (%d after %d)", i, j, prev))
			}
			prev = j
		}
	}
	return &CSR{rows: rows, cols: cols, indptr: indptr, indices: indices, vals: vals}
}

// CSRBuilder accumulates (i,j,v) triplets and assembles a CSR matrix.
// Duplicate coordinates are summed.
type CSRBuilder struct {
	rows, cols int
	is         []int32
	js         []int32
	vs         []float64
}

// NewCSRBuilder returns a builder for a rows×cols sparse matrix.
func NewCSRBuilder(rows, cols int) *CSRBuilder {
	return &CSRBuilder{rows: rows, cols: cols}
}

// Add records a triplet; zero values are dropped.
func (b *CSRBuilder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("la: triplet (%d,%d) out of bounds %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.is = append(b.is, int32(i))
	b.js = append(b.js, int32(j))
	b.vs = append(b.vs, v)
}

// Build assembles the CSR matrix, sorting and summing duplicates.
func (b *CSRBuilder) Build() *CSR {
	type trip struct {
		i, j int32
		v    float64
	}
	ts := make([]trip, len(b.is))
	for k := range b.is {
		ts[k] = trip{b.is[k], b.js[k], b.vs[k]}
	}
	sort.Slice(ts, func(a, c int) bool {
		if ts[a].i != ts[c].i {
			return ts[a].i < ts[c].i
		}
		return ts[a].j < ts[c].j
	})
	indptr := make([]int, b.rows+1)
	indices := make([]int32, 0, len(ts))
	vals := make([]float64, 0, len(ts))
	for k := 0; k < len(ts); {
		i, j := ts[k].i, ts[k].j
		v := 0.0
		for ; k < len(ts) && ts[k].i == i && ts[k].j == j; k++ {
			v += ts[k].v
		}
		if v != 0 {
			indices = append(indices, j)
			vals = append(vals, v)
			indptr[i+1]++
		}
	}
	for i := 0; i < b.rows; i++ {
		indptr[i+1] += indptr[i]
	}
	return &CSR{rows: b.rows, cols: b.cols, indptr: indptr, indices: indices, vals: vals}
}

// CSRFromDense converts a dense matrix, dropping exact zeros.
func CSRFromDense(d *Dense) *CSR {
	b := NewCSRBuilder(d.rows, d.cols)
	for i := 0; i < d.rows; i++ {
		for j, v := range d.Row(i) {
			if v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

// Rows reports the number of rows.
func (c *CSR) Rows() int { return c.rows }

// Cols reports the number of columns.
func (c *CSR) Cols() int { return c.cols }

// NNZ reports the number of stored non-zeros.
func (c *CSR) NNZ() int { return len(c.vals) }

// At returns the (i,j) element by binary search within row i.
func (c *CSR) At(i, j int) float64 {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("la: index (%d,%d) out of bounds %dx%d", i, j, c.rows, c.cols))
	}
	lo, hi := c.indptr[i], c.indptr[i+1]
	idx := sort.Search(hi-lo, func(k int) bool { return c.indices[lo+k] >= int32(j) })
	if lo+idx < hi && c.indices[lo+idx] == int32(j) {
		return c.vals[lo+idx]
	}
	return 0
}

// RowNNZ returns the column indices and values of row i (shared slices).
func (c *CSR) RowNNZ(i int) ([]int32, []float64) {
	lo, hi := c.indptr[i], c.indptr[i+1]
	return c.indices[lo:hi], c.vals[lo:hi]
}

// Dense materializes the matrix.
func (c *CSR) Dense() *Dense {
	out := NewDense(c.rows, c.cols)
	for i := 0; i < c.rows; i++ {
		row := out.Row(i)
		idx, vals := c.RowNNZ(i)
		for k, j := range idx {
			row[j] = vals[k]
		}
	}
	return out
}

// Clone returns a deep copy.
func (c *CSR) Clone() *CSR {
	ip := make([]int, len(c.indptr))
	copy(ip, c.indptr)
	ix := make([]int32, len(c.indices))
	copy(ix, c.indices)
	vs := make([]float64, len(c.vals))
	copy(vs, c.vals)
	return &CSR{rows: c.rows, cols: c.cols, indptr: ip, indices: ix, vals: vs}
}

// TCSR returns the transposed matrix in CSR form (an O(nnz) counting sort).
func (c *CSR) TCSR() *CSR {
	indptr := make([]int, c.cols+1)
	for _, j := range c.indices {
		indptr[j+1]++
	}
	for j := 0; j < c.cols; j++ {
		indptr[j+1] += indptr[j]
	}
	indices := make([]int32, len(c.indices))
	vals := make([]float64, len(c.vals))
	next := make([]int, c.cols)
	copy(next, indptr[:c.cols])
	for i := 0; i < c.rows; i++ {
		idx, vs := c.RowNNZ(i)
		for k, j := range idx {
			p := next[j]
			indices[p] = int32(i)
			vals[p] = vs[k]
			next[j]++
		}
	}
	return &CSR{rows: c.cols, cols: c.rows, indptr: indptr, indices: indices, vals: vals}
}

// GatherRows returns the CSR matrix whose i-th row is row assign[i] of c
// (i.e. K·c for an indicator K with assignments assign).
func (c *CSR) GatherRows(assign []int32) *CSR {
	indptr := make([]int, len(assign)+1)
	for i, r := range assign {
		indptr[i+1] = indptr[i] + (c.indptr[r+1] - c.indptr[r])
	}
	indices := make([]int32, indptr[len(assign)])
	vals := make([]float64, indptr[len(assign)])
	parallelFor(len(assign), indptr[len(assign)], func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := assign[i]
			copy(indices[indptr[i]:indptr[i+1]], c.indices[c.indptr[r]:c.indptr[r+1]])
			copy(vals[indptr[i]:indptr[i+1]], c.vals[c.indptr[r]:c.indptr[r+1]])
		}
	})
	return &CSR{rows: len(assign), cols: c.cols, indptr: indptr, indices: indices, vals: vals}
}

// HCatCSR concatenates sparse matrices side by side.
func HCatCSR(ms ...*CSR) *CSR {
	if len(ms) == 0 {
		return NewCSR(0, 0, []int{0}, nil, nil)
	}
	rows := ms[0].rows
	cols, nnz := 0, 0
	for _, m := range ms {
		if m.rows != rows {
			panic(fmt.Sprintf("la: HCatCSR row mismatch %d != %d", m.rows, rows))
		}
		cols += m.cols
		nnz += m.NNZ()
	}
	indptr := make([]int, rows+1)
	indices := make([]int32, 0, nnz)
	vals := make([]float64, 0, nnz)
	for i := 0; i < rows; i++ {
		off := 0
		for _, m := range ms {
			idx, vs := m.RowNNZ(i)
			for k, j := range idx {
				indices = append(indices, j+int32(off))
				vals = append(vals, vs[k])
			}
			off += m.cols
		}
		indptr[i+1] = len(indices)
	}
	return &CSR{rows: rows, cols: cols, indptr: indptr, indices: indices, vals: vals}
}

// VCatCSR stacks sparse matrices vertically: [a; b; ...].
func VCatCSR(ms ...*CSR) *CSR {
	if len(ms) == 0 {
		return NewCSR(0, 0, []int{0}, nil, nil)
	}
	cols := ms[0].cols
	rows, nnz := 0, 0
	for _, m := range ms {
		if m.cols != cols {
			panic(fmt.Sprintf("la: VCatCSR col mismatch %d != %d", m.cols, cols))
		}
		rows += m.rows
		nnz += m.NNZ()
	}
	indptr := make([]int, rows+1)
	indices := make([]int32, 0, nnz)
	vals := make([]float64, 0, nnz)
	r := 0
	for _, m := range ms {
		base := len(indices)
		for i := 0; i < m.rows; i++ {
			indptr[r+i+1] = base + m.indptr[i+1]
		}
		r += m.rows
		indices = append(indices, m.indices...)
		vals = append(vals, m.vals...)
	}
	return &CSR{rows: rows, cols: cols, indptr: indptr, indices: indices, vals: vals}
}

// --- Mat interface ---

// Mul computes c·X (sparse × dense → dense).
func (c *CSR) Mul(x *Dense) *Dense {
	if x.rows != c.cols {
		panic(fmt.Sprintf("la: CSR Mul %dx%d · %dx%d", c.rows, c.cols, x.rows, x.cols))
	}
	out := NewDense(c.rows, x.cols)
	parallelFor(c.rows, c.NNZ()*x.cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			idx, vs := c.RowNNZ(i)
			orow := out.Row(i)
			for k, j := range idx {
				axpy(orow, x.Row(int(j)), vs[k])
			}
		}
	})
	return out
}

// TMul computes cᵀ·X without materializing the transpose.
func (c *CSR) TMul(x *Dense) *Dense {
	if x.rows != c.rows {
		panic(fmt.Sprintf("la: CSR TMul %dx%dᵀ · %dx%d", c.rows, c.cols, x.rows, x.cols))
	}
	out := NewDense(c.cols, x.cols)
	for i := 0; i < c.rows; i++ {
		idx, vs := c.RowNNZ(i)
		xrow := x.Row(i)
		for k, j := range idx {
			axpy(out.Row(int(j)), xrow, vs[k])
		}
	}
	return out
}

// LeftMul computes X·c (dense × sparse → dense).
func (c *CSR) LeftMul(x *Dense) *Dense {
	if x.cols != c.rows {
		panic(fmt.Sprintf("la: CSR LeftMul %dx%d · %dx%d", x.rows, x.cols, c.rows, c.cols))
	}
	out := NewDense(x.rows, c.cols)
	parallelFor(x.rows, c.NNZ()*x.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xrow := x.Row(i)
			orow := out.Row(i)
			for r := 0; r < c.rows; r++ {
				xv := xrow[r]
				if xv == 0 {
					continue
				}
				idx, vs := c.RowNNZ(r)
				for k, j := range idx {
					orow[j] += xv * vs[k]
				}
			}
		}
	})
	return out
}

// CrossProd computes cᵀc. Rows are rank-1 updates on the upper triangle.
func (c *CSR) CrossProd() *Dense {
	d := c.cols
	out := NewDense(d, d)
	for i := 0; i < c.rows; i++ {
		idx, vs := c.RowNNZ(i)
		for a, ja := range idx {
			va := vs[a]
			orow := out.Row(int(ja))
			for b := a; b < len(idx); b++ {
				orow[idx[b]] += va * vs[b]
			}
		}
	}
	mirrorLower(out)
	return out
}

// Gram computes c·cᵀ via the transpose: (cᵀ)ᵀ(cᵀ).
func (c *CSR) Gram() *Dense { return c.TCSR().CrossProd() }

// MulCSR computes c·o for two sparse matrices, returning a dense result
// (used by the indicator-product tiles where the output is small).
func (c *CSR) MulCSR(o *CSR) *Dense {
	if o.rows != c.cols {
		panic(fmt.Sprintf("la: MulCSR %dx%d · %dx%d", c.rows, c.cols, o.rows, o.cols))
	}
	out := NewDense(c.rows, o.cols)
	for i := 0; i < c.rows; i++ {
		idx, vs := c.RowNNZ(i)
		orow := out.Row(i)
		for k, j := range idx {
			jidx, jvs := o.RowNNZ(int(j))
			v := vs[k]
			for t, jj := range jidx {
				orow[jj] += v * jvs[t]
			}
		}
	}
	return out
}

// MulMat computes c·r where r may be dense or sparse, returning dense.
func (c *CSR) MulMat(r Mat) *Dense {
	switch rm := r.(type) {
	case *Dense:
		return c.Mul(rm)
	case *CSR:
		return c.MulCSR(rm)
	default:
		return c.Mul(r.Dense())
	}
}

// RowSums returns an n×1 column vector of row sums.
func (c *CSR) RowSums() *Dense {
	out := make([]float64, c.rows)
	for i := 0; i < c.rows; i++ {
		_, vs := c.RowNNZ(i)
		s := 0.0
		for _, v := range vs {
			s += v
		}
		out[i] = s
	}
	return ColVector(out)
}

// ColSums returns a 1×d row vector of column sums.
func (c *CSR) ColSums() *Dense {
	out := make([]float64, c.cols)
	for k, j := range c.indices {
		out[j] += c.vals[k]
	}
	return RowVector(out)
}

// Sum returns the sum of all elements.
func (c *CSR) Sum() float64 {
	s := 0.0
	for _, v := range c.vals {
		s += v
	}
	return s
}

func (c *CSR) mapVals(f func(float64) float64) *CSR {
	out := c.Clone()
	for k, v := range out.vals {
		out.vals[k] = f(v)
	}
	return out
}

// ScaleM implements Mat; scaling preserves sparsity.
func (c *CSR) ScaleM(x float64) Mat { return c.mapVals(func(v float64) float64 { return v * x }) }

// AddScalarM implements Mat. Adding a non-zero scalar densifies.
func (c *CSR) AddScalarM(x float64) Mat {
	if x == 0 {
		return c.Clone()
	}
	return c.Dense().AddScalarDense(x)
}

// PowM implements Mat; 0^p stays 0 for p>0, so sparsity is preserved.
func (c *CSR) PowM(p float64) Mat {
	if p <= 0 {
		return c.Dense().PowDense(p)
	}
	if p == 2 {
		return c.mapVals(func(v float64) float64 { return v * v })
	}
	return c.mapVals(func(v float64) float64 { return math.Pow(v, p) })
}

// ApplyM implements Mat. If f(0)==0 the result stays sparse; otherwise it
// densifies (e.g. exp).
func (c *CSR) ApplyM(f func(float64) float64) Mat {
	if f(0) == 0 {
		return c.mapVals(f)
	}
	return c.Dense().ApplyDense(f)
}

// ScaleRows implements Mat.
func (c *CSR) ScaleRows(v []float64) Mat {
	if len(v) != c.rows {
		panic(fmt.Sprintf("la: ScaleRows length %d != rows %d", len(v), c.rows))
	}
	out := c.Clone()
	for i := 0; i < c.rows; i++ {
		for k := out.indptr[i]; k < out.indptr[i+1]; k++ {
			out.vals[k] *= v[i]
		}
	}
	return out
}

// SliceRows implements Mat.
func (c *CSR) SliceRows(i0, i1 int) Mat {
	if i0 < 0 || i1 > c.rows || i0 > i1 {
		panic(fmt.Sprintf("la: row slice [%d,%d) out of bounds %d", i0, i1, c.rows))
	}
	base := c.indptr[i0]
	indptr := make([]int, i1-i0+1)
	for i := i0; i <= i1; i++ {
		indptr[i-i0] = c.indptr[i] - base
	}
	indices := make([]int32, c.indptr[i1]-base)
	copy(indices, c.indices[base:c.indptr[i1]])
	vals := make([]float64, c.indptr[i1]-base)
	copy(vals, c.vals[base:c.indptr[i1]])
	return &CSR{rows: i1 - i0, cols: c.cols, indptr: indptr, indices: indices, vals: vals}
}

// SliceCols implements Mat.
func (c *CSR) SliceCols(j0, j1 int) Mat {
	if j0 < 0 || j1 > c.cols || j0 > j1 {
		panic(fmt.Sprintf("la: col slice [%d,%d) out of bounds %d", j0, j1, c.cols))
	}
	b := NewCSRBuilder(c.rows, j1-j0)
	for i := 0; i < c.rows; i++ {
		idx, vs := c.RowNNZ(i)
		for k, j := range idx {
			if int(j) >= j0 && int(j) < j1 {
				b.Add(i, int(j)-j0, vs[k])
			}
		}
	}
	return b.Build()
}

// CloneMat implements Mat.
func (c *CSR) CloneMat() Mat { return c.Clone() }

// --- Matrix interface (CSR as a standalone operand, e.g. materialized T
// over the sparse real datasets) ---

// T implements Matrix.
func (c *CSR) T() Matrix { return c.TCSR() }

// Scale implements Matrix.
func (c *CSR) Scale(x float64) Matrix { return c.ScaleM(x).(Matrix) }

// AddScalar implements Matrix.
func (c *CSR) AddScalar(x float64) Matrix { return c.AddScalarM(x).(Matrix) }

// Pow implements Matrix.
func (c *CSR) Pow(p float64) Matrix { return c.PowM(p).(Matrix) }

// Apply implements Matrix.
func (c *CSR) Apply(f func(float64) float64) Matrix { return c.ApplyM(f).(Matrix) }

// LeftMulMatrix note: LeftMul already matches the Matrix signature.

// Ginv computes the pseudo-inverse of the materialized operand.
func (c *CSR) Ginv() *Dense { return GinvOf(c) }
