package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// naiveMul is the reference O(n³) triple loop used to validate the blocked
// kernels.
func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			s := 0.0
			for k := 0; k < a.cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dims")
		}
	}()
	NewDense(-1, 3)
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewDense(3, 4)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestDenseFromRows(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
}

func TestDenseFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	DenseFromRows([][]float64{{1, 2}, {3}})
}

func TestEye(t *testing.T) {
	e := Eye(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(4)[%d,%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 37, 23)
	tt := m.TDense().TDense()
	if !EqualApprox(m, tt, 0) {
		t.Fatal("double transpose != identity")
	}
	mt := m.TDense()
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if mt.At(j, i) != m.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 31}, {64, 64, 64}, {100, 3, 50}} {
		a := randDense(rng, dims[0], dims[1])
		b := randDense(rng, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMul(a, b)
		if !EqualApprox(got, want, 1e-10) {
			t.Fatalf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewDense(2, 3), NewDense(2, 3))
}

func TestTMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{5, 3, 4}, {40, 7, 11}, {300, 5, 8}} {
		a := randDense(rng, dims[0], dims[1])
		b := randDense(rng, dims[0], dims[2])
		got := TMatMul(a, b)
		want := naiveMul(a.TDense(), b)
		if !EqualApprox(got, want, 1e-10) {
			t.Fatalf("TMatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulTAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 13, 7)
	b := randDense(rng, 19, 7)
	got := MatMulT(a, b)
	want := naiveMul(a, b.TDense())
	if !EqualApprox(got, want, 1e-10) {
		t.Fatal("MatMulT mismatch")
	}
}

func TestCrossProd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][2]int{{10, 4}, {200, 17}, {3, 9}} {
		m := randDense(rng, dims[0], dims[1])
		got := m.CrossProd()
		want := naiveMul(m.TDense(), m)
		if !EqualApprox(got, want, 1e-9) {
			t.Fatalf("CrossProd mismatch for dims %v", dims)
		}
	}
}

func TestGram(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randDense(rng, 8, 5)
	got := m.Gram()
	want := naiveMul(m, m.TDense())
	if !EqualApprox(got, want, 1e-10) {
		t.Fatal("Gram mismatch")
	}
}

func TestElementwiseOps(t *testing.T) {
	m := DenseFromRows([][]float64{{1, -2}, {3, 4}})
	if got := m.ScaleDense(2).At(1, 0); got != 6 {
		t.Fatalf("Scale: %v", got)
	}
	if got := m.AddScalarDense(10).At(0, 1); got != 8 {
		t.Fatalf("AddScalar: %v", got)
	}
	if got := m.PowDense(2).At(0, 1); got != 4 {
		t.Fatalf("Pow2: %v", got)
	}
	if got := m.PowDense(3).At(1, 0); math.Abs(got-27) > 1e-12 {
		t.Fatalf("Pow3: %v", got)
	}
	if got := m.ApplyDense(math.Abs).At(0, 1); got != 2 {
		t.Fatalf("Apply: %v", got)
	}
}

func TestZipOps(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := DenseFromRows([][]float64{{5, 6}, {7, 8}})
	if got := a.Add(b).At(0, 0); got != 6 {
		t.Fatalf("Add: %v", got)
	}
	if got := a.Sub(b).At(1, 1); got != -4 {
		t.Fatalf("Sub: %v", got)
	}
	if got := a.MulElem(b).At(1, 0); got != 21 {
		t.Fatalf("MulElem: %v", got)
	}
	if got := b.DivElem(a).At(0, 1); got != 3 {
		t.Fatalf("DivElem: %v", got)
	}
}

func TestAggregations(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	rs := m.RowSums()
	if rs.Rows() != 2 || rs.Cols() != 1 || rs.At(0, 0) != 6 || rs.At(1, 0) != 15 {
		t.Fatalf("RowSums: %v", rs)
	}
	cs := m.ColSums()
	if cs.Rows() != 1 || cs.Cols() != 3 || cs.At(0, 0) != 5 || cs.At(0, 2) != 9 {
		t.Fatalf("ColSums: %v", cs)
	}
	if m.Sum() != 21 {
		t.Fatalf("Sum: %v", m.Sum())
	}
}

func TestRowMins(t *testing.T) {
	m := DenseFromRows([][]float64{{3, 1, 2}, {-5, 0, 9}})
	mins := m.RowMins()
	if mins[0] != 1 || mins[1] != -5 {
		t.Fatalf("RowMins: %v", mins)
	}
}

func TestSlices(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r := m.SliceRowsDense(1, 3)
	if r.Rows() != 2 || r.At(0, 0) != 4 || r.At(1, 2) != 9 {
		t.Fatalf("SliceRows: %v", r)
	}
	c := m.SliceColsDense(1, 2)
	if c.Cols() != 1 || c.At(2, 0) != 8 {
		t.Fatalf("SliceCols: %v", c)
	}
}

func TestHCatVCat(t *testing.T) {
	a := DenseFromRows([][]float64{{1}, {2}})
	b := DenseFromRows([][]float64{{3, 4}, {5, 6}})
	h := HCat(a, b)
	if h.Rows() != 2 || h.Cols() != 3 || h.At(1, 2) != 6 || h.At(0, 0) != 1 {
		t.Fatalf("HCat: %v", h)
	}
	v := VCat(b, b)
	if v.Rows() != 4 || v.At(3, 1) != 6 {
		t.Fatalf("VCat: %v", v)
	}
}

func TestScaleRowsDense(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	s := m.ScaleRowsDense([]float64{2, 10})
	if s.At(0, 1) != 4 || s.At(1, 0) != 30 {
		t.Fatalf("ScaleRows: %v", s)
	}
}

func TestAXPYInPlace(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}})
	b := DenseFromRows([][]float64{{10, 20}})
	a.AXPYInPlace(0.5, b)
	if a.At(0, 0) != 6 || a.At(0, 1) != 12 {
		t.Fatalf("AXPY: %v", a)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random shapes.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := randDense(rng, m, k)
		b := randDense(rng, k, n)
		lhs := MatMul(a, b).TDense()
		rhs := MatMul(b.TDense(), a.TDense())
		return EqualApprox(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum(A·x) for x=1-vector equals Sum of row sums weighting.
func TestRowSumsViaOnesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(30), 1+r.Intn(30)
		a := randDense(r, m, n)
		ones := Ones(n, 1)
		viaMul := MatMul(a, ones)
		return EqualApprox(viaMul, a.RowSums(), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixInterfaceDense(t *testing.T) {
	var m Matrix = DenseFromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatal("dims")
	}
	if got := m.T().Dense().At(0, 1); got != 3 {
		t.Fatalf("T: %v", got)
	}
	if got := m.Scale(3).Sum(); got != 30 {
		t.Fatalf("Scale Sum: %v", got)
	}
	x := DenseFromRows([][]float64{{1}, {1}})
	if got := m.Mul(x).At(1, 0); got != 7 {
		t.Fatalf("Mul: %v", got)
	}
	if got := m.LeftMul(Ones(1, 2)).At(0, 0); got != 4 {
		t.Fatalf("LeftMul: %v", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}})
	b := DenseFromRows([][]float64{{1.5, 2}})
	if got := MaxAbsDiff(a, b); got != 0.5 {
		t.Fatalf("MaxAbsDiff: %v", got)
	}
}
