package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randCSR builds a random sparse matrix with the given fill fraction and a
// matching dense copy.
func randCSR(rng *rand.Rand, rows, cols int, fill float64) (*CSR, *Dense) {
	d := NewDense(rows, cols)
	b := NewCSRBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < fill {
				v := rng.NormFloat64()
				d.Set(i, j, v)
				b.Add(i, j, v)
			}
		}
	}
	return b.Build(), d
}

func TestCSRBuilderDuplicatesSummed(t *testing.T) {
	b := NewCSRBuilder(2, 2)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(1, 0, -1)
	c := b.Build()
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", c.NNZ())
	}
	if c.At(0, 1) != 5 || c.At(1, 0) != -1 {
		t.Fatalf("values: %v %v", c.At(0, 1), c.At(1, 0))
	}
}

func TestCSRBuilderDropsZeros(t *testing.T) {
	b := NewCSRBuilder(1, 2)
	b.Add(0, 0, 0)
	b.Add(0, 1, 1)
	b.Add(0, 1, -1)
	c := b.Build()
	if c.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0 (cancellation)", c.NNZ())
	}
}

func TestCSRDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c, d := randCSR(rng, 13, 9, 0.3)
	if !EqualApprox(c.Dense(), d, 0) {
		t.Fatal("Dense() round trip mismatch")
	}
	c2 := CSRFromDense(d)
	if !EqualApprox(c2.Dense(), d, 0) {
		t.Fatal("CSRFromDense round trip mismatch")
	}
	if c2.NNZ() != c.NNZ() {
		t.Fatalf("NNZ mismatch %d != %d", c2.NNZ(), c.NNZ())
	}
}

func TestCSRAt(t *testing.T) {
	b := NewCSRBuilder(2, 5)
	b.Add(0, 3, 7)
	b.Add(1, 0, 2)
	b.Add(1, 4, 9)
	c := b.Build()
	if c.At(0, 3) != 7 || c.At(0, 0) != 0 || c.At(1, 4) != 9 {
		t.Fatal("At mismatch")
	}
}

func TestCSRTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c, d := randCSR(rng, 17, 8, 0.25)
	if !EqualApprox(c.TCSR().Dense(), d.TDense(), 0) {
		t.Fatal("TCSR mismatch")
	}
}

func TestCSRMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c, d := randCSR(rng, 20, 15, 0.2)
	x := randDense(rng, 15, 6)
	if !EqualApprox(c.Mul(x), MatMul(d, x), 1e-10) {
		t.Fatal("CSR Mul mismatch")
	}
}

func TestCSRTMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c, d := randCSR(rng, 20, 15, 0.2)
	x := randDense(rng, 20, 4)
	if !EqualApprox(c.TMul(x), TMatMul(d, x), 1e-10) {
		t.Fatal("CSR TMul mismatch")
	}
}

func TestCSRLeftMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c, d := randCSR(rng, 12, 18, 0.2)
	x := randDense(rng, 5, 12)
	if !EqualApprox(c.LeftMul(x), MatMul(x, d), 1e-10) {
		t.Fatal("CSR LeftMul mismatch")
	}
}

func TestCSRCrossProdMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c, d := randCSR(rng, 40, 9, 0.3)
	if !EqualApprox(c.CrossProd(), d.CrossProd(), 1e-10) {
		t.Fatal("CSR CrossProd mismatch")
	}
}

func TestCSRGramMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	c, d := randCSR(rng, 9, 14, 0.3)
	if !EqualApprox(c.Gram(), d.Gram(), 1e-10) {
		t.Fatal("CSR Gram mismatch")
	}
}

func TestCSRMulCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a, da := randCSR(rng, 7, 11, 0.3)
	b, db := randCSR(rng, 11, 5, 0.3)
	if !EqualApprox(a.MulCSR(b), MatMul(da, db), 1e-10) {
		t.Fatal("MulCSR mismatch")
	}
}

func TestCSRAggregations(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	c, d := randCSR(rng, 15, 7, 0.4)
	if !EqualApprox(c.RowSums(), d.RowSums(), 1e-12) {
		t.Fatal("RowSums mismatch")
	}
	if !EqualApprox(c.ColSums(), d.ColSums(), 1e-12) {
		t.Fatal("ColSums mismatch")
	}
	if math.Abs(c.Sum()-d.Sum()) > 1e-12 {
		t.Fatal("Sum mismatch")
	}
}

func TestCSRElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c, d := randCSR(rng, 10, 10, 0.3)
	if !EqualApprox(c.ScaleM(2.5).Dense(), d.ScaleDense(2.5), 1e-12) {
		t.Fatal("ScaleM mismatch")
	}
	if !EqualApprox(c.PowM(2).Dense(), d.PowDense(2), 1e-12) {
		t.Fatal("PowM mismatch")
	}
	// AddScalar densifies.
	add := c.AddScalarM(3)
	if _, ok := add.(*Dense); !ok {
		t.Fatal("AddScalarM(3) should densify")
	}
	if !EqualApprox(add.Dense(), d.AddScalarDense(3), 1e-12) {
		t.Fatal("AddScalarM mismatch")
	}
	// Apply with f(0)==0 stays sparse; with f(0)!=0 densifies.
	sq := c.ApplyM(func(v float64) float64 { return v * v })
	if _, ok := sq.(*CSR); !ok {
		t.Fatal("zero-preserving ApplyM should stay sparse")
	}
	ex := c.ApplyM(math.Exp)
	if _, ok := ex.(*Dense); !ok {
		t.Fatal("exp ApplyM should densify")
	}
	if !EqualApprox(ex.Dense(), d.ApplyDense(math.Exp), 1e-12) {
		t.Fatal("exp ApplyM values mismatch")
	}
}

func TestCSRScaleRows(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c, d := randCSR(rng, 6, 4, 0.5)
	v := []float64{1, 2, 0, -1, 0.5, 3}
	if !EqualApprox(c.ScaleRows(v).Dense(), d.ScaleRowsDense(v), 1e-12) {
		t.Fatal("ScaleRows mismatch")
	}
}

func TestCSRSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c, d := randCSR(rng, 9, 7, 0.4)
	if !EqualApprox(c.SliceRows(2, 6).Dense(), d.SliceRowsDense(2, 6), 0) {
		t.Fatal("SliceRows mismatch")
	}
	if !EqualApprox(c.SliceCols(1, 5).Dense(), d.SliceColsDense(1, 5), 0) {
		t.Fatal("SliceCols mismatch")
	}
}

func TestCSRGatherRows(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c, d := randCSR(rng, 5, 6, 0.5)
	assign := []int32{4, 0, 0, 2, 1, 4, 3}
	got := c.GatherRows(assign)
	want := NewDense(len(assign), 6)
	for i, r := range assign {
		copy(want.Row(i), d.Row(int(r)))
	}
	if !EqualApprox(got.Dense(), want, 0) {
		t.Fatal("GatherRows mismatch")
	}
}

func TestHCatCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a, da := randCSR(rng, 8, 3, 0.5)
	b, db := randCSR(rng, 8, 5, 0.5)
	got := HCatCSR(a, b)
	if !EqualApprox(got.Dense(), HCat(da, db), 0) {
		t.Fatal("HCatCSR mismatch")
	}
	if got.NNZ() != a.NNZ()+b.NNZ() {
		t.Fatal("HCatCSR NNZ mismatch")
	}
}

// Property: CSR ops agree with dense ops on random matrices.
func TestCSRPropertyAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(15), 1+r.Intn(15)
		c, d := randCSR(r, rows, cols, 0.3)
		x := randDense(r, cols, 1+r.Intn(4))
		if !EqualApprox(c.Mul(x), MatMul(d, x), 1e-10) {
			return false
		}
		if !EqualApprox(c.CrossProd(), d.CrossProd(), 1e-10) {
			return false
		}
		return math.Abs(c.Sum()-d.Sum()) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRMatrixInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	c, d := randCSR(rng, 10, 6, 0.4)
	var m Matrix = c
	if !EqualApprox(m.T().Dense(), d.TDense(), 0) {
		t.Fatal("Matrix.T mismatch")
	}
	if !EqualApprox(m.Scale(2).Dense(), d.ScaleDense(2), 1e-12) {
		t.Fatal("Matrix.Scale mismatch")
	}
	if math.Abs(m.Sum()-d.Sum()) > 1e-12 {
		t.Fatal("Matrix.Sum mismatch")
	}
}
