package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	return a.Add(a.TDense()).ScaleDense(0.5)
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := randSym(rng, n)
		vals, v := SymEigen(a)
		// Reconstruct V·diag(vals)·Vᵀ.
		vd := v.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Set(i, j, v.At(i, j)*vals[j])
			}
		}
		rec := MatMulT(vd, v)
		if !EqualApprox(rec, a, 1e-9) {
			t.Fatalf("n=%d: eigen reconstruction error %g", n, MaxAbsDiff(rec, a))
		}
		// V orthogonal: VᵀV = I.
		if !EqualApprox(TMatMul(v, v), Eye(n), 1e-9) {
			t.Fatalf("n=%d: eigenvectors not orthonormal", n)
		}
	}
}

func TestSymGinvIsInverseForPD(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// A = MᵀM + I is PD, so SymGinv must be the exact inverse.
	m := randDense(rng, 20, 8)
	a := m.CrossProd().Add(Eye(8))
	inv := SymGinv(a)
	if !EqualApprox(MatMul(a, inv), Eye(8), 1e-8) {
		t.Fatal("SymGinv not an inverse for PD matrix")
	}
}

func TestSymGinvSingular(t *testing.T) {
	// Rank-1 matrix vvᵀ with |v|²=s: pseudo-inverse is vvᵀ/s².
	v := []float64{1, 2, 2}
	a := NewDense(3, 3)
	for i := range v {
		for j := range v {
			a.Set(i, j, v[i]*v[j])
		}
	}
	ginv := SymGinv(a)
	s := 9.0 // |v|²
	for i := range v {
		for j := range v {
			want := v[i] * v[j] / (s * s)
			if math.Abs(ginv.At(i, j)-want) > 1e-10 {
				t.Fatalf("rank-1 ginv mismatch at (%d,%d): %g vs %g", i, j, ginv.At(i, j), want)
			}
		}
	}
}

// moorePenroseOK checks the four Moore-Penrose conditions.
func moorePenroseOK(a, g *Dense, tol float64) bool {
	aga := MatMul(MatMul(a, g), a)
	gag := MatMul(MatMul(g, a), g)
	ag := MatMul(a, g)
	ga := MatMul(g, a)
	return EqualApprox(aga, a, tol) &&
		EqualApprox(gag, g, tol) &&
		EqualApprox(ag, ag.TDense(), tol) &&
		EqualApprox(ga, ga.TDense(), tol)
}

func TestGinvMoorePenroseTall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randDense(rng, 30, 7)
	g := Ginv(a)
	if g.Rows() != 7 || g.Cols() != 30 {
		t.Fatalf("ginv dims %dx%d", g.Rows(), g.Cols())
	}
	if !moorePenroseOK(a, g, 1e-7) {
		t.Fatal("Moore-Penrose conditions violated (tall)")
	}
}

func TestGinvMoorePenroseWide(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randDense(rng, 6, 25)
	g := Ginv(a)
	if g.Rows() != 25 || g.Cols() != 6 {
		t.Fatalf("ginv dims %dx%d", g.Rows(), g.Cols())
	}
	if !moorePenroseOK(a, g, 1e-7) {
		t.Fatal("Moore-Penrose conditions violated (wide)")
	}
}

func TestGinvRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	// Duplicate a column to force rank deficiency.
	a := randDense(rng, 20, 5)
	for i := 0; i < 20; i++ {
		a.Set(i, 4, a.At(i, 3))
	}
	g := Ginv(a)
	if !moorePenroseOK(a, g, 1e-6) {
		t.Fatal("Moore-Penrose conditions violated (rank deficient)")
	}
}

func TestGinvOfCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	c, d := randCSR(rng, 25, 6, 0.4)
	if MaxAbsDiff(GinvOf(c), Ginv(d)) > 1e-8 {
		t.Fatal("GinvOf(CSR) != Ginv(dense)")
	}
}

func TestGinvProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 2+r.Intn(15), 2+r.Intn(15)
		a := randDense(r, rows, cols)
		return moorePenroseOK(a, Ginv(a), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	m := randDense(rng, 30, 10)
	a := m.CrossProd().Add(Eye(10).ScaleDense(0.1))
	b := randDense(rng, 10, 3)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(MatMul(a, x), b, 1e-8) {
		t.Fatal("SolveSPD residual too large")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}
