package la

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestDenseBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	m := randDense(rng, 17, 9)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(got, m, 0) {
		t.Fatal("dense round trip mismatch")
	}
}

func TestCSRBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	c, d := randCSR(rng, 23, 11, 0.25)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(got.Dense(), d, 0) {
		t.Fatal("CSR round trip mismatch")
	}
	if got.NNZ() != c.NNZ() {
		t.Fatal("CSR round trip nnz mismatch")
	}
}

func TestIndicatorBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	k := randIndicator(rng, 40, 7)
	var buf bytes.Buffer
	if err := k.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndicator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 40 || got.Cols() != 7 {
		t.Fatal("indicator round trip dims")
	}
	for i := 0; i < 40; i++ {
		if got.ColOf(i) != k.ColOf(i) {
			t.Fatal("indicator round trip assignments")
		}
	}
}

func TestReadRejectsWrongMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	m := randDense(rng, 3, 3)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSR(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("CSR reader accepted dense payload")
	}
	if _, err := ReadIndicator(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("indicator reader accepted dense payload")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	m := randDense(rng, 10, 10)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadDense(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("accepted truncated payload")
	}
	if _, err := ReadDense(bytes.NewReader(raw[:10])); err == nil {
		t.Fatal("accepted truncated header")
	}
}

func TestReadRejectsCorruptCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	c, _ := randCSR(rng, 8, 8, 0.4)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt a column index to an out-of-range value.
	idxOffset := 4 + 16 + 8 + (8+1)*8 // magic + dims + nnz + indptr
	raw[idxOffset] = 0xFF
	raw[idxOffset+1] = 0xFF
	raw[idxOffset+2] = 0xFF
	raw[idxOffset+3] = 0x7F
	if _, err := ReadCSR(bytes.NewReader(raw)); err == nil {
		t.Fatal("accepted corrupt column index")
	}
}

func TestDenseCSVRoundTrip(t *testing.T) {
	m := DenseFromRows([][]float64{{1.5, -2}, {0, 3e10}})
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDenseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(got, m, 0) {
		t.Fatal("CSV round trip mismatch")
	}
}

func TestReadDenseCSVErrors(t *testing.T) {
	if _, err := ReadDenseCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("accepted ragged CSV")
	}
	if _, err := ReadDenseCSV(strings.NewReader("1,x\n")); err == nil {
		t.Fatal("accepted non-numeric CSV")
	}
	m, err := ReadDenseCSV(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 {
		t.Fatal("blank CSV should be empty")
	}
}
