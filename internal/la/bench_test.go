package la

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel-level microbenchmarks for the substrate: these are the building
// blocks whose relative costs drive every M-vs-F comparison upstairs.

func benchDense(n, d int) *Dense {
	rng := rand.New(rand.NewSource(1))
	return randDense(rng, n, d)
}

func BenchmarkGEMM(b *testing.B) {
	for _, n := range []int{64, 256} {
		a := benchDense(n, n)
		c := benchDense(n, n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportMetric(float64(2*n*n*n), "flops/op")
			for i := 0; i < b.N; i++ {
				MatMul(a, c)
			}
		})
	}
}

func BenchmarkTMatMul(b *testing.B) {
	a := benchDense(4096, 64)
	x := benchDense(4096, 8)
	for i := 0; i < b.N; i++ {
		TMatMul(a, x)
	}
}

func BenchmarkCrossProdDense(b *testing.B) {
	a := benchDense(8192, 64)
	for i := 0; i < b.N; i++ {
		a.CrossProd()
	}
}

func BenchmarkCSRMul(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c, _ := randCSR(rng, 8192, 512, 0.02)
	x := benchDense(512, 8)
	for i := 0; i < b.N; i++ {
		c.Mul(x)
	}
}

func BenchmarkCSRCrossProd(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c, _ := randCSR(rng, 8192, 256, 0.02)
	for i := 0; i < b.N; i++ {
		c.CrossProd()
	}
}

func BenchmarkIndicatorGather(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	k := randIndicator(rng, 100_000, 1000)
	z := benchDense(1000, 32)
	for i := 0; i < b.N; i++ {
		k.Mul(z)
	}
}

func BenchmarkIndicatorScatter(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	k := randIndicator(rng, 100_000, 1000)
	z := benchDense(100_000, 8)
	for i := 0; i < b.N; i++ {
		k.TMul(z)
	}
}

func BenchmarkTMulIndicator(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	k := randIndicator(rng, 200_000, 2000)
	j := randIndicator(rng, 200_000, 2000)
	for i := 0; i < b.N; i++ {
		k.TMulIndicator(j)
	}
}

func BenchmarkSymGinv(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randDense(rng, 200, 80)
	a := m.CrossProd()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymGinv(a)
	}
}

func BenchmarkCholeskySolve(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := randDense(rng, 200, 80)
	a := m.CrossProd().Add(Eye(80))
	rhs := randDense(rng, 80, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSPD(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
