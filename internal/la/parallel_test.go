package la

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		var total int64
		seen := make([]int32, n)
		parallelFor(n, 1<<20, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
				atomic.AddInt64(&total, 1)
			}
		})
		if total != int64(n) {
			t.Fatalf("n=%d: visited %d", n, total)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelForSerialBelowThreshold(t *testing.T) {
	calls := 0
	parallelFor(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected single serial chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

// TestLargeKernelsHitParallelPaths validates the blocked/parallel code
// paths against the naive reference at sizes above the parallel threshold.
func TestLargeKernelsHitParallelPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	a := randDense(rng, 300, 200)
	b := randDense(rng, 200, 150)
	if !EqualApprox(MatMul(a, b), naiveMul(a, b), 1e-9) {
		t.Fatal("parallel MatMul mismatch")
	}
	c := randDense(rng, 300, 150)
	if !EqualApprox(TMatMul(a, c), naiveMul(a.TDense(), c), 1e-9) {
		t.Fatal("parallel TMatMul mismatch")
	}
	if !EqualApprox(a.CrossProd(), naiveMul(a.TDense(), a), 1e-8) {
		t.Fatal("parallel CrossProd mismatch")
	}
	if !EqualApprox(a.ScaleDense(2), a.Add(a), 1e-12) {
		t.Fatal("parallel Scale mismatch")
	}
}

// TestReductionKernelsDeterministic: TMatMul and CrossProd must return
// bit-identical results on repeated calls even above the parallel
// threshold. The per-chunk partials used to be merged in goroutine
// completion order, which made every call a slightly different float sum
// on multi-core machines — breaking the out-of-core engine's
// serial-vs-parallel equivalence checks.
func TestReductionKernelsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := randDense(rng, 500, 120) // comfortably above parallelThreshold
	b := randDense(rng, 500, 80)
	tm0 := TMatMul(a, b)
	cp0 := a.CrossProd()
	for i := 0; i < 5; i++ {
		if MaxAbsDiff(TMatMul(a, b), tm0) != 0 {
			t.Fatal("TMatMul not deterministic across calls")
		}
		if MaxAbsDiff(a.CrossProd(), cp0) != 0 {
			t.Fatal("CrossProd not deterministic across calls")
		}
	}
}

func TestParallelRowsExported(t *testing.T) {
	var total int64
	ParallelRows(500, 1<<20, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 500 {
		t.Fatalf("ParallelRows covered %d rows", total)
	}
}
