package la

import "fmt"

// MatMul computes a·b for dense matrices with a cache-blocked, row-parallel
// kernel (the i-k-j loop order keeps the inner loop streaming over
// contiguous rows of b and the output).
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("la: MatMul %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	work := a.rows * a.cols * b.cols
	parallelFor(a.rows, work, func(lo, hi int) {
		matMulRange(out, a, b, lo, hi)
	})
	return out
}

func matMulRange(out, a, b *Dense, lo, hi int) {
	n := b.cols
	const kb = 256
	for k0 := 0; k0 < a.cols; k0 += kb {
		k1 := min(k0+kb, a.cols)
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k := k0; k < k1; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.data[k*n : (k+1)*n]
				axpy(orow, brow, aik)
			}
		}
	}
}

// axpy computes dst += alpha*src with 4-way unrolling.
func axpy(dst, src []float64, alpha float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// TMatMul computes aᵀ·b without materializing aᵀ. Parallelism is over rows
// of a with per-chunk partial accumulators merged in chunk order, so the
// result is deterministic for a fixed GOMAXPROCS (merging in goroutine
// completion order would make every call a slightly different float sum).
func TMatMul(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("la: TMatMul %dx%d ᵀ· %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	work := a.rows * a.cols * b.cols
	chunks := parallelChunks(a.rows, work)
	if chunks == 1 {
		out := NewDense(a.cols, b.cols)
		tMatMulRange(out, a, b, 0, a.rows)
		return out
	}
	parts := make([]*Dense, chunks)
	parallelForChunked(a.rows, chunks, func(c, lo, hi int) {
		p := NewDense(a.cols, b.cols)
		tMatMulRange(p, a, b, lo, hi)
		parts[c] = p
	})
	acc := parts[0]
	for _, p := range parts[1:] {
		if p != nil {
			acc.AddInPlace(p)
		}
	}
	return acc
}

func tMatMulRange(out, a, b *Dense, lo, hi int) {
	n := b.cols
	for r := lo; r < hi; r++ {
		arow := a.Row(r)
		brow := b.data[r*n : (r+1)*n]
		for j, av := range arow {
			if av == 0 {
				continue
			}
			axpy(out.data[j*n:(j+1)*n], brow, av)
		}
	}
}

// MatMulT computes a·bᵀ using dot products over rows of both operands.
func MatMulT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("la: MatMulT %dx%d · %dx%dᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.rows)
	work := a.rows * a.cols * b.rows
	parallelFor(a.rows, work, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.rows; j++ {
				orow[j] = dot(arow, b.Row(j))
			}
		}
	})
	return out
}

func dot(x, y []float64) float64 {
	s := 0.0
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += x[i]*y[i] + x[i+1]*y[i+1] + x[i+2]*y[i+2] + x[i+3]*y[i+3]
	}
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// CrossProd computes mᵀm exploiting symmetry: only the upper triangle is
// accumulated, then mirrored. This is the dense building block used by the
// efficient factorized cross-product (Algorithm 2).
func (m *Dense) CrossProd() *Dense {
	d := m.cols
	work := m.rows * d * d / 2
	chunks := parallelChunks(m.rows, work)
	if chunks == 1 {
		out := NewDense(d, d)
		crossRange(out, m, 0, m.rows)
		mirrorLower(out)
		return out
	}
	// Per-chunk partials merged in chunk order: deterministic for a fixed
	// GOMAXPROCS, unlike completion-order merging.
	parts := make([]*Dense, chunks)
	parallelForChunked(m.rows, chunks, func(c, lo, hi int) {
		p := NewDense(d, d)
		crossRange(p, m, lo, hi)
		parts[c] = p
	})
	out := parts[0]
	for _, p := range parts[1:] {
		if p != nil {
			out.AddInPlace(p)
		}
	}
	mirrorLower(out)
	return out
}

func crossRange(out, m *Dense, lo, hi int) {
	d := m.cols
	for r := lo; r < hi; r++ {
		row := m.Row(r)
		for i, v := range row {
			if v == 0 {
				continue
			}
			axpy(out.data[i*d+i:(i+1)*d], row[i:], v)
		}
	}
}

func mirrorLower(s *Dense) {
	d := s.cols
	for i := 1; i < d; i++ {
		for j := 0; j < i; j++ {
			s.data[i*d+j] = s.data[j*d+i]
		}
	}
}

// Gram computes m·mᵀ.
func (m *Dense) Gram() *Dense { return MatMulT(m, m) }

// Ginv computes the Moore-Penrose pseudo-inverse; see ginv.go.
func (m *Dense) Ginv() *Dense { return Ginv(m) }
