package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chunk"
	"repro/internal/datagen"
	"repro/internal/la"
)

// chunkshard measures the sharded chunk store against the single-directory
// baseline on the write-heavy out-of-core passes: spilling a table, a
// chunked T·x (spilled product), a full GLM train, and the streamed GNMF —
// each run once over one directory and once over a sharded store with
// size-aware placement and per-shard write-behind queues. Results are
// pinned identical between the two stores (sharding changes placement,
// never bytes). On a box where the shard directories sit on different
// devices the sharded column should win; on one device it shows the
// per-shard pipelining costs nothing. Part of `morpheus-bench -chunked`;
// point `-shards dir1,dir2,...` at real disks to see placement matter.
func chunkshard(cfg Config) (Result, error) {
	ex := chunkExec(cfg)

	single, cleanSingle, err := singleDirStore(cfg)
	if err != nil {
		return Result{}, err
	}
	defer cleanSingle()
	sharded, shardCount, cleanSharded, err := shardedStore(cfg)
	if err != nil {
		return Result{}, err
	}
	defer cleanSharded()

	res := Result{
		ID:     "chunkshard",
		Title:  "Sharded chunk store vs single directory (spill placement + per-shard write-behind)",
		Header: []string{"workload", "1-dir(s)", fmt.Sprintf("%d-shard(s)", shardCount), "ratio"},
		Notes: fmt.Sprintf("workers=%d prefetch=%d shards=%d placement=least-bytes; results pinned identical across stores",
			ex.Workers, ex.Prefetch, shardCount),
	}

	nR := cfg.scaled(800)
	nS := 20 * nR
	dS := 50
	dR := 2 * dS
	const iters = 2
	chunkRows := autoChunkRows(cfg, dS+dR)
	// Keep at least 8 chunks in play: with one chunk per matrix there is
	// nothing for the placement policy to spread.
	if cap := nS / 8; cap >= 1 && chunkRows > cap {
		chunkRows = cap
	}
	nm, err := datagen.PKFK(datagen.PKFKSpec{NS: nS, DS: dS, NR: nR, DR: dR, Seed: cfg.Seed})
	if err != nil {
		return Result{}, err
	}
	td := nm.Dense()
	y := datagen.Labels(nm, 0, true, cfg.Seed)

	tSingle, err := chunk.FromDense(single, td, chunkRows)
	if err != nil {
		return Result{}, err
	}
	tSharded, err := chunk.FromDense(sharded, td, chunkRows)
	if err != nil {
		return Result{}, err
	}
	defer tSingle.Free()
	defer tSharded.Free()

	// Spill: an identity StreamToMatrix — the pure read+write pass whose
	// output goes through the per-shard write-behind queues (Build writes
	// synchronously, so it would not exercise the concurrency under test).
	spill := func(t *chunk.Matrix) func() {
		return func() {
			cp, err := t.MapChunksToMatrix(ex, t.Cols(), func(ci, lo int, c *la.Dense) (*la.Dense, error) {
				return c, nil
			})
			if err != nil {
				panic(err)
			}
			if err := cp.Free(); err != nil {
				panic(err)
			}
		}
	}
	oneSpill := timeIt(spill(tSingle))
	shSpill := timeIt(spill(tSharded))
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("spill copy of T (%d×%d)", nS, dS+dR),
		secs(oneSpill), secs(shSpill), ratio(oneSpill, shSpill)})

	// row times one workload on both stores and pins the results equal.
	row := func(name string, run func(t chunk.Mat) (*la.Dense, error)) error {
		var outSingle, outSharded *la.Dense
		oneT := timeIt(func() {
			var err error
			outSingle, err = run(tSingle)
			if err != nil {
				panic(err)
			}
		})
		shT := timeIt(func() {
			var err error
			outSharded, err = run(tSharded)
			if err != nil {
				panic(err)
			}
		})
		if la.MaxAbsDiff(outSingle, outSharded) != 0 {
			return fmt.Errorf("chunkshard: %s results diverged between stores", name)
		}
		res.Rows = append(res.Rows, []string{name, secs(oneT), secs(shT), ratio(oneT, shT)})
		return nil
	}

	xc := la.Ones(dS+dR, 8)
	if err := row("T·x (spilled product)", func(t chunk.Mat) (*la.Dense, error) {
		p, err := t.MulExec(ex, xc)
		if err != nil {
			return nil, err
		}
		defer p.Free()
		return p.ColSumsExec(ex)
	}); err != nil {
		return Result{}, err
	}
	if err := row(fmt.Sprintf("glm-materialized (%d iters)", iters), func(t chunk.Mat) (*la.Dense, error) {
		r, err := chunk.LogRegMaterializedExec(ex, t, y, iters, 1e-6)
		if err != nil {
			return nil, err
		}
		return r.W, nil
	}); err != nil {
		return Result{}, err
	}
	// GNMF wants a non-negative table; absChunk streams |T| per chunk.
	absChunk := func(ci, lo int, c la.Mat) (*la.Dense, error) {
		return c.ApplyM(func(v float64) float64 {
			if v < 0 {
				return -v
			}
			return v
		}).(*la.Dense), nil
	}
	if err := row(fmt.Sprintf("gnmf rank=5 (%d iters)", iters), func(t chunk.Mat) (*la.Dense, error) {
		pos, err := t.StreamToMatrix(ex, t.Cols(), absChunk)
		if err != nil {
			return nil, err
		}
		defer pos.Free()
		r, err := chunk.GNMFExec(ex, pos, 5, iters, cfg.Seed)
		if err != nil {
			return nil, err
		}
		defer r.W.Free()
		return r.H, nil
	}); err != nil {
		return Result{}, err
	}
	if cfg.Plan {
		pos, err := tSharded.StreamToMatrix(ex, tSharded.Cols(), absChunk)
		if err != nil {
			return Result{}, err
		}
		twin, err := chunk.GNMFExec(ex, pos, 5, iters, cfg.Seed)
		if err != nil {
			pos.Free()
			return Result{}, err
		}
		err = plannedGNMF(&res, "chunkshard/gnmf", planEnv(cfg, sharded), pos, 5, iters, cfg.Seed, twin.H)
		twin.W.Free()
		pos.Free()
		if err != nil {
			return Result{}, err
		}
	}

	stats := sharded.ShardStats()
	var minB, maxB int64 = -1, 0
	for _, st := range stats {
		if minB < 0 || st.Bytes < minB {
			minB = st.Bytes
		}
		if st.Bytes > maxB {
			maxB = st.Bytes
		}
	}
	res.Notes += fmt.Sprintf("; live shard bytes span [%d, %d]", minB, maxB)
	return res, nil
}

// singleDirStore opens the one-directory baseline store. With -shards it
// lives in a subdirectory of the first shard directory, so both columns
// are measured on the same device; otherwise it honors TmpDir.
func singleDirStore(cfg Config) (*chunk.Store, func(), error) {
	if len(cfg.ShardDirs) > 0 {
		dir := filepath.Join(cfg.ShardDirs[0], "single")
		st, err := chunk.NewStore(dir)
		if err != nil {
			return nil, nil, err
		}
		return st, func() { st.Close(); os.Remove(dir) }, nil
	}
	return chunkStore(Config{TmpDir: cfg.TmpDir}, "chunkshard-1dir")
}

// shardedStore opens the sharded store for the comparison: the
// user-supplied -shards directories and/or -remote-shards chunk servers
// when they make up more than one shard, a single -shards directory split
// into two shard subdirectories (so the comparison still runs on the
// user's device, not the OS temp filesystem), otherwise two shard
// subdirectories under one fresh temp root.
func shardedStore(cfg Config) (*chunk.Store, int, func(), error) {
	if n := len(cfg.ShardDirs) + len(cfg.RemoteShards); n > 1 || len(cfg.RemoteShards) == 1 {
		st, cleanup, err := chunkStore(cfg, "chunkshard")
		return st, n, cleanup, err
	}
	root := ""
	removeRoot := func() {}
	if len(cfg.ShardDirs) == 1 {
		root = cfg.ShardDirs[0] // user's device; shard subdirs are ours to remove
	} else {
		d, err := os.MkdirTemp("", "morpheus-chunkshard-*")
		if err != nil {
			return nil, 0, nil, err
		}
		root = d
		removeRoot = func() { os.RemoveAll(d) }
	}
	dirs := []string{filepath.Join(root, "shard0"), filepath.Join(root, "shard1")}
	st, err := chunk.NewShardedStore(dirs, chunk.LeastBytes)
	if err != nil {
		removeRoot()
		return nil, 0, nil, err
	}
	return st, len(dirs), func() {
		st.Close()
		for _, d := range dirs {
			os.Remove(d) // empty after Close; leave the user's root in place
		}
		removeRoot()
	}, nil
}

func init() {
	register("chunkshard", chunkshard)
}
