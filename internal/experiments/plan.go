package experiments

import (
	"fmt"

	"repro/internal/chunk"
	"repro/internal/la"
	"repro/internal/plan"
)

// The Config.Plan twin-check helpers: each runs a workload through the
// planner seam, asserts the planner-chosen path reproduces the explicit
// run it selected bit for bit (MaxAbsDiff == 0, not a tolerance — the
// planner only dispatches, it must never change results), and appends the
// labeled Decision to the Result. A divergence is an error, so
// `morpheus-bench -plan` exits nonzero and the CI plan-smoke step fails.

// planEnv gathers the planner environment from the run's store and
// config: shard count, per-shard bytes, exec capability, worker bound,
// and the memory budget.
func planEnv(cfg Config, st *chunk.Store) plan.Env {
	return plan.EnvFor(st, cfg.Workers, int64(memBudgetMB(cfg))<<20)
}

// plannedGLM checks the planner-driven star/PK-FK GLM against the twin
// weights of the explicit materialized and factorized runs.
func plannedGLM(res *Result, label string, env plan.Env, tM chunk.Mat, nt *chunk.NormalizedTable, y *la.Dense, iters int, alpha float64, twinM, twinF *la.Dense) error {
	pr, d, err := plan.LogReg(env, tM, nt, y, iters, alpha)
	if err != nil {
		return fmt.Errorf("experiments: %s: planned GLM: %w", label, err)
	}
	twin := twinM
	if d.Strategy.Factorized {
		twin = twinF
	}
	if la.MaxAbsDiff(pr.W, twin) != 0 {
		return fmt.Errorf("experiments: %s: planner-chosen GLM path diverged from its explicit twin (%s)", label, d.Rule)
	}
	d.Label = label
	res.Decisions = append(res.Decisions, d)
	return nil
}

// plannedGLMMN is plannedGLM for M:N joins.
func plannedGLMMN(res *Result, label string, env plan.Env, tM chunk.Mat, mn *chunk.MNTable, y *la.Dense, iters int, alpha float64, twinM, twinF *la.Dense) error {
	pr, d, err := plan.LogRegMN(env, tM, mn, y, iters, alpha)
	if err != nil {
		return fmt.Errorf("experiments: %s: planned MN GLM: %w", label, err)
	}
	twin := twinM
	if d.Strategy.Factorized {
		twin = twinF
	}
	if la.MaxAbsDiff(pr.W, twin) != 0 {
		return fmt.Errorf("experiments: %s: planner-chosen MN GLM path diverged from its explicit twin (%s)", label, d.Rule)
	}
	d.Label = label
	res.Decisions = append(res.Decisions, d)
	return nil
}

// plannedKMeans checks the planner-driven k-means against an explicit
// twin run, then releases the planner run's assignment column.
func plannedKMeans(res *Result, label string, env plan.Env, t chunk.Mat, k, iters int, seed int64, twin *chunk.KMeansResult) error {
	pr, d, err := plan.KMeans(env, t, k, iters, seed)
	if err != nil {
		return fmt.Errorf("experiments: %s: planned k-means: %w", label, err)
	}
	diverged := la.MaxAbsDiff(pr.Centroids, twin.Centroids) != 0 || pr.Objective != twin.Objective
	if err := pr.Assign.Free(); err != nil {
		return err
	}
	if diverged {
		return fmt.Errorf("experiments: %s: planner-chosen k-means diverged from its explicit twin (%s)", label, d.Rule)
	}
	d.Label = label
	res.Decisions = append(res.Decisions, d)
	return nil
}

// plannedGNMF checks the planner-driven GNMF against the explicit twin's
// H factor, then releases the planner run's chunked W.
func plannedGNMF(res *Result, label string, env plan.Env, t chunk.Mat, rank, iters int, seed int64, twinH *la.Dense) error {
	pr, d, err := plan.GNMF(env, t, rank, iters, seed)
	if err != nil {
		return fmt.Errorf("experiments: %s: planned GNMF: %w", label, err)
	}
	diverged := la.MaxAbsDiff(pr.H, twinH) != 0
	if err := pr.W.Free(); err != nil {
		return err
	}
	if diverged {
		return fmt.Errorf("experiments: %s: planner-chosen GNMF diverged from its explicit twin (%s)", label, d.Rule)
	}
	d.Label = label
	res.Decisions = append(res.Decisions, d)
	return nil
}
