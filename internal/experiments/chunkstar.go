package experiments

import (
	"fmt"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
)

// chunkstar exercises the unified chunked-operand interface end to end:
// a two-attribute-table star schema and a one-hot sparse table both train
// logistic regression fully out-of-core through chunk.Mat (materialized vs
// factorized, weights pinned equal), the star streams its factorized
// cross-product (results pinned against the materialized chunked pass),
// and the streamed k-means driver runs its per-iteration distance/argmin
// passes over the chunked table. This is part of the `morpheus-bench
// -chunked` suite.
func chunkstar(cfg Config) (Result, error) {
	ex := chunkExec(cfg)
	res := Result{
		ID:     "chunkstar",
		Title:  "Out-of-core star-schema + sparse training and streamed k-means (chunk.Mat interface)",
		Header: []string{"workload", "M(s)", "F(s)", "speedup"},
		Notes: fmt.Sprintf("workers=%d prefetch=%d; chunk heights via AutoRows(%d MB); kmeans row compares serial (M) vs parallel (F) execution",
			ex.Workers, ex.Prefetch, memBudgetMB(cfg)),
	}
	st, cleanup, err := chunkStore(cfg, "chunkstar")
	if err != nil {
		return Result{}, err
	}
	defer cleanup()

	nR := cfg.scaled(800)
	nS := 20 * nR
	dS := 40
	const iters = 2
	const alpha = 1e-6

	// Star schema: S joined PK-FK with two attribute tables.
	{
		dR := dS
		nm, err := datagen.Star(datagen.StarSpec{NS: nS, DS: dS, NR: []int{nR, nR / 2}, DR: []int{dR, 2 * dR}, Seed: cfg.Seed})
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, true, cfg.Seed)
		chunkRows := autoChunkRows(cfg, nm.Cols())
		tM, err := chunk.FromDense(st, nm.Dense(), chunkRows)
		if err != nil {
			return Result{}, err
		}
		nt, err := chunkStar(st, nm, chunkRows)
		if err != nil {
			return Result{}, err
		}
		mT, fT, resM, resF, err := runGLMPair(ex, tM, nt, y, iters, alpha)
		if err != nil {
			return Result{}, fmt.Errorf("chunkstar: star: %w", err)
		}
		res.Rows = append(res.Rows, []string{fmt.Sprintf("glm star q=2 (%d iters)", iters), secs(mT), secs(fT), ratio(mT, fT)})
		if cfg.Plan {
			if err := plannedGLM(&res, "chunkstar/star", planEnv(cfg, st), tM, nt, y, iters, alpha, resM.W, resF.W); err != nil {
				return Result{}, err
			}
		}

		var cpMat, cpStr *la.Dense
		cpM := timeIt(func() {
			var err error
			cpMat, err = tM.CrossProdExec(ex)
			if err != nil {
				panic(err)
			}
		})
		cpF := timeIt(func() {
			var err error
			cpStr, err = core.StreamedCrossProd(ex, nt)
			if err != nil {
				panic(err)
			}
		})
		// Entries are O(nS)-magnitude sums, so pin the two rewrites to a
		// summation-order tolerance scaled for that.
		if la.MaxAbsDiff(cpMat, cpStr) > 1e-6 {
			return Result{}, fmt.Errorf("chunkstar: materialized and streamed crossprod diverged by %g", la.MaxAbsDiff(cpMat, cpStr))
		}
		res.Rows = append(res.Rows, []string{"crossprod star q=2", secs(cpM), secs(cpF), ratio(cpM, cpF)})

		// Streamed k-means over the chunked materialized star output:
		// serial vs parallel, results asserted bit-identical. Spill-file
		// releases stay outside the timed sections (earlier repetitions'
		// assignment columns are reclaimed by the store cleanup).
		var kmSer, kmPar *chunk.KMeansResult
		kT := timeIt(func() {
			var err error
			kmSer, err = chunk.KMeansExec(chunk.Serial, tM, 8, iters, cfg.Seed)
			if err != nil {
				panic(err)
			}
		})
		kP := timeIt(func() {
			var err error
			kmPar, err = chunk.KMeansExec(ex, tM, 8, iters, cfg.Seed)
			if err != nil {
				panic(err)
			}
		})
		if la.MaxAbsDiff(kmSer.Centroids, kmPar.Centroids) != 0 {
			return Result{}, fmt.Errorf("chunkstar: kmeans serial and parallel centroids diverged")
		}
		res.Rows = append(res.Rows, []string{fmt.Sprintf("kmeans k=8 (%d iters)", iters), secs(kT), secs(kP), ratio(kT, kP)})
		if cfg.Plan {
			if err := plannedKMeans(&res, "chunkstar/kmeans", planEnv(cfg, st), tM, 8, iters, cfg.Seed, kmPar); err != nil {
				return Result{}, err
			}
		}

		if err := kmSer.Assign.Free(); err != nil {
			return Result{}, err
		}
		if err := kmPar.Assign.Free(); err != nil {
			return Result{}, err
		}
		if err := tM.Free(); err != nil {
			return Result{}, err
		}
		if err := nt.Free(); err != nil {
			return Result{}, err
		}
	}

	// One-hot sparse table: materialized CSR chunks vs the factorized star
	// with a CSR attribute table, both through chunk.Mat.
	{
		dR := 6 * dS
		nm, err := oneHotPKFK(nS, dS, nR, dR, cfg.Seed)
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, true, cfg.Seed)
		chunkRows := autoChunkRows(cfg, nm.Cols())
		tM, err := chunk.FromCSR(st, nm.Sparse(), chunkRows)
		if err != nil {
			return Result{}, err
		}
		nt, err := chunkStar(st, nm, chunkRows)
		if err != nil {
			return Result{}, err
		}
		mT, fT, resM, resF, err := runGLMPair(ex, tM, nt, y, iters, alpha)
		if err != nil {
			return Result{}, fmt.Errorf("chunkstar: sparse: %w", err)
		}
		res.Rows = append(res.Rows, []string{fmt.Sprintf("glm one-hot CSR (%d iters)", iters), secs(mT), secs(fT), ratio(mT, fT)})
		if cfg.Plan {
			if err := plannedGLM(&res, "chunkstar/sparse", planEnv(cfg, st), tM, nt, y, iters, alpha, resM.W, resF.W); err != nil {
				return Result{}, err
			}
		}
		if err := tM.Free(); err != nil {
			return Result{}, err
		}
		if err := nt.Free(); err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

func init() {
	register("chunkstar", chunkstar)
}
