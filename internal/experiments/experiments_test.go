package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table/figure of the paper's evaluation must be registered.
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "table7", "table8", "table9", "table10",
		"table12", "cpablate", "rule", "mnml",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("experiment %q not registered", w)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", DefaultConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// tinyCfg shrinks workloads so experiment plumbing is testable in CI time.
func tinyCfg() Config { return Config{Scale: 0.02, Seed: 1} }

func TestTable8Runs(t *testing.T) {
	res, err := Run("table8", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("table8 rows = %d, want 4 (FR 1..4)", len(res.Rows))
	}
	if len(res.Header) != len(res.Rows[0]) {
		t.Fatal("header/row width mismatch")
	}
	out := res.Format()
	if !strings.Contains(out, "Orion") || !strings.Contains(out, "table8") {
		t.Fatal("Format output missing expected content")
	}
}

func TestTable9Runs(t *testing.T) {
	res, err := Run("table9", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("table9 rows = %d, want 4 FR points + one-hot CSR + star", len(res.Rows))
	}
}

// TestTable9PlanTrace runs table9 with the planner seam enabled: every
// sweep point must record an explained Decision, row counts are
// unchanged (decisions travel in their own field), and the bit-identity
// guard inside plannedGLM must hold for the run to return at all.
func TestTable9PlanTrace(t *testing.T) {
	cfg := tinyCfg()
	cfg.Plan = true
	res, err := Run("table9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("table9 rows = %d with Plan set, want 6", len(res.Rows))
	}
	if len(res.Decisions) != 6 {
		t.Fatalf("table9 decisions = %d, want one per sweep point", len(res.Decisions))
	}
	for _, d := range res.Decisions {
		if d.Label == "" || d.Rule == "" || len(d.Rules) == 0 {
			t.Fatalf("unexplained decision: %+v", d)
		}
	}
	if !strings.Contains(res.Format(), "plan[table9/FR=") {
		t.Fatal("Format output missing the plan trace")
	}
}

func TestChunkstarRuns(t *testing.T) {
	res, err := Run("chunkstar", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("chunkstar rows = %d, want star GLM + crossprod + kmeans + sparse GLM", len(res.Rows))
	}
}

func TestChunkshardRuns(t *testing.T) {
	res, err := Run("chunkshard", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("chunkshard rows = %d, want spill + T·x + glm + gnmf", len(res.Rows))
	}
	if !strings.Contains(res.Notes, "shards=2") {
		t.Fatalf("chunkshard notes missing shard count: %q", res.Notes)
	}
}

func TestChunkshardHonorsShardDirs(t *testing.T) {
	cfg := tinyCfg()
	root := t.TempDir()
	cfg.ShardDirs = []string{root + "/a", root + "/b", root + "/c"}
	res, err := Run("chunkshard", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "shards=3") {
		t.Fatalf("chunkshard ignored ShardDirs: %q", res.Notes)
	}
}

func TestTable10Runs(t *testing.T) {
	res, err := Run("table10", Config{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("table10 rows = %d", len(res.Rows))
	}
}

func TestRuleRuns(t *testing.T) {
	res, err := Run("rule", Config{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(pkfkTRValues)*len(pkfkFRValues) {
		t.Fatalf("rule rows = %d", len(res.Rows))
	}
}

func TestCPAblateRuns(t *testing.T) {
	res, err := Run("cpablate", Config{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("cpablate rows = %d", len(res.Rows))
	}
}

func TestFormatAlignment(t *testing.T) {
	r := Result{ID: "x", Title: "t", Header: []string{"a", "bbbb"}, Rows: [][]string{{"lllllll", "1"}}}
	out := r.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "lllllll") {
		t.Fatal("row not rendered")
	}
}

// TestAllFigureSweepsRun executes every figure sweep at miniature scale so
// the sweep plumbing (axes, dataset specs, operator dispatch) is covered
// by `go test`; the real measurements come from cmd/morpheus-bench.
func TestAllFigureSweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow in -short mode")
	}
	cfg := Config{Scale: 0.01, Seed: 1}
	for _, id := range []string{"fig3", "fig4", "fig6", "fig8", "fig9", "fig10", "fig11", "mnml", "table7", "table12", "fig5"} {
		res, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Header) {
				t.Fatalf("%s: row width %d != header %d", id, len(row), len(res.Header))
			}
		}
	}
}
