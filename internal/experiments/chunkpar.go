package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/chunk"
	"repro/internal/datagen"
	"repro/internal/la"
)

// chunkpar measures the parallel out-of-core engine against the strictly
// serial chunked execution on the §5.2.4 workload: the same GLM iterations
// Tables 9/10 time, run once with Serial (read one chunk, compute, read
// the next) and once with the prefetching worker pipeline. This is the
// experiment `morpheus-bench -chunked` runs; on a multi-core box the
// parallel column should be ≥2× faster, and the weights are asserted
// bit-identical between the two (ordered commit).
func chunkpar(cfg Config) (Result, error) {
	par := chunkExec(cfg)
	res := Result{
		ID:     "chunkpar",
		Title:  "Out-of-core engine: serial vs parallel chunked execution (GLM iterations + operators)",
		Header: []string{"workload", "serial(s)", "parallel(s)", "speedup"},
		Notes: fmt.Sprintf("workers=%d prefetch=%d pushdown=%v codec=%q zonemap=%v GOMAXPROCS=%d; identical results asserted (ordered commit); store emptied on completion",
			par.Workers, par.Prefetch, par.Pushdown, cfg.Codec, cfg.ZoneMap, runtime.GOMAXPROCS(0)),
	}
	st, cleanup, err := chunkStore(cfg, "chunkpar")
	if err != nil {
		return Result{}, err
	}
	defer cleanup()

	nR := cfg.scaled(1000)
	nS := 20 * nR
	dS := 60
	const iters = 2
	dR := 2 * dS
	chunkRows := autoChunkRows(cfg, dS+dR)
	nm, err := datagen.PKFK(datagen.PKFKSpec{NS: nS, DS: dS, NR: nR, DR: dR, Seed: cfg.Seed})
	if err != nil {
		return Result{}, err
	}
	y := datagen.Labels(nm, 0, true, cfg.Seed)
	tM, err := chunk.FromDense(st, nm.Dense(), chunkRows)
	if err != nil {
		return Result{}, err
	}
	sM, err := chunk.FromDense(st, nm.S().Dense(), chunkRows)
	if err != nil {
		return Result{}, err
	}
	fkv, err := chunk.BuildIntVector(st, nm.Ks()[0].Assignments(), chunkRows)
	if err != nil {
		return Result{}, err
	}
	nt, err := chunk.NewNormalizedTable(sM, fkv, nm.Rs()[0].Dense())
	if err != nil {
		return Result{}, err
	}
	defer tM.Free()
	defer nt.Free()

	row := func(name string, run func(chunk.Exec) (*la.Dense, error)) error {
		var wSer, wPar *la.Dense
		sT := timeIt(func() {
			var err error
			wSer, err = run(chunk.Serial)
			if err != nil {
				panic(err)
			}
		})
		pT := timeIt(func() {
			var err error
			wPar, err = run(par)
			if err != nil {
				panic(err)
			}
		})
		if wSer != nil && wPar != nil && la.MaxAbsDiff(wSer, wPar) != 0 {
			return fmt.Errorf("chunkpar: %s serial and parallel results diverged", name)
		}
		res.Rows = append(res.Rows, []string{name, secs(sT), secs(pT), ratio(sT, pT)})
		return nil
	}

	var wM, wF *la.Dense
	if err := row(fmt.Sprintf("glm-materialized (%d iters)", iters), func(ex chunk.Exec) (*la.Dense, error) {
		r, err := chunk.LogRegMaterializedExec(ex, tM, y, iters, 1e-6)
		if err != nil {
			return nil, err
		}
		wM = r.W
		return r.W, nil
	}); err != nil {
		return Result{}, err
	}
	if err := row(fmt.Sprintf("glm-factorized (%d iters)", iters), func(ex chunk.Exec) (*la.Dense, error) {
		r, err := chunk.LogRegFactorizedExec(ex, nt, y, iters, 1e-6)
		if err != nil {
			return nil, err
		}
		wF = r.W
		return r.W, nil
	}); err != nil {
		return Result{}, err
	}
	if cfg.Plan {
		if err := plannedGLM(&res, "chunkpar/glm", planEnv(cfg, st), tM, nt, y, iters, 1e-6, wM, wF); err != nil {
			return Result{}, err
		}
	}
	if err := row("crossprod(T)", tM.CrossProdExec); err != nil {
		return Result{}, err
	}
	if err := row("colsums(T)", tM.ColSumsExec); err != nil {
		return Result{}, err
	}
	xc := la.Ones(tM.Cols(), 4)
	if err := row("T·x (chunked out)", func(ex chunk.Exec) (*la.Dense, error) {
		p, err := tM.MulExec(ex, xc)
		if err != nil {
			return nil, err
		}
		defer p.Free()
		return p.ColSumsExec(ex)
	}); err != nil {
		return Result{}, err
	}

	// Sparse zero-band pass: a CSR whose odd chunk-row bands hold no stored
	// entries, the Table-6-style sparsity pattern that rewards chunk
	// skipping. With a zone-map store (-zonemap) the reductions skip the
	// empty bands' chunks outright — ChunksSkipped below counts them.
	zRows := 8 * chunkRows
	zCols := 32
	indptr := make([]int, zRows+1)
	var zIdx []int32
	var zVals []float64
	for i := 0; i < zRows; i++ {
		if (i/chunkRows)%2 == 0 {
			zIdx = append(zIdx, int32(i%zCols))
			zVals = append(zVals, float64(1+i%7))
		}
		indptr[i+1] = len(zIdx)
	}
	zM, err := chunk.FromCSR(st, la.NewCSR(zRows, zCols, indptr, zIdx, zVals), chunkRows)
	if err != nil {
		return Result{}, err
	}
	defer zM.Free()
	if err := row("crossprod(sparse zero-band)", zM.CrossProdExec); err != nil {
		return Result{}, err
	}
	if err := row("colsums(sparse zero-band)", zM.ColSumsExec); err != nil {
		return Result{}, err
	}

	io := st.IOStats()
	res.BytesRead = io.BytesRead
	res.BytesOnWire = io.BytesOnWire
	res.ChunksSkipped = io.ChunksSkipped
	res.BytesSkipped = io.BytesSkipped
	res.Codec = cfg.Codec
	return res, nil
}

func init() {
	register("chunkpar", chunkpar)
}
