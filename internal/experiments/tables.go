package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/ml"
	"repro/internal/orion"
	"repro/internal/realdata"
)

// realDataScale shrinks the Table 6 datasets; 100 keeps every dataset's
// materialized form in memory while preserving its TR/FR profile.
const realDataScale = 100

// table7 regenerates Table 7: materialized runtimes and Morpheus speed-ups
// for the four ML algorithms on the seven real-data clones. The
// materialized baseline runs over the sparse CSR join output, matching the
// paper's sparse real-data representation.
func table7(cfg Config) (Result, error) {
	res := Result{
		ID:     "table7",
		Title:  "Real-data clones: materialized runtime and Morpheus speed-up (Table 7)",
		Header: []string{"dataset", "algo", "M(s)", "F(s)", "speedup"},
		Notes:  fmt.Sprintf("Table 6 statistics scaled down %dx; 20 iters, 10 centroids, 5 topics as in the paper", int(float64(realDataScale)/cfg.Scale)),
	}
	scale := int(float64(realDataScale) / cfg.Scale)
	if scale < 1 {
		scale = 1
	}
	for _, spec := range realdata.Specs() {
		ds, err := realdata.Generate(spec.Scaled(scale), cfg.Seed)
		if err != nil {
			return Result{}, err
		}
		nm := ds.Norm
		sp := nm.Sparse() // materialized sparse T
		yb := ds.BinaryY()
		yn := ds.Y
		k := 10 // paper's centroid count; clamped for miniature test scales
		if nm.Rows() < k {
			k = nm.Rows()
		}
		cases := []struct {
			name string
			run  func(t la.Matrix)
		}{
			// Linear regression uses GD, the paper's own fallback when d
			// is large (§4): the one-hot real datasets have d in the tens
			// of thousands, where a d×d inversion is off the table.
			{"linreg", func(t la.Matrix) {
				if _, err := ml.LinearRegressionGD(t, yn, nil, ml.Options{Iters: mlIters, StepSize: 1e-7}); err != nil {
					panic(err)
				}
			}},
			{"logreg", func(t la.Matrix) {
				if _, err := ml.LogisticRegressionGD(t, yb, nil, ml.Options{Iters: mlIters, StepSize: 1e-6}); err != nil {
					panic(err)
				}
			}},
			{"kmeans", func(t la.Matrix) {
				if _, err := ml.KMeans(t, k, ml.Options{Iters: mlIters, Seed: 7}); err != nil {
					panic(err)
				}
			}},
			{"gnmf", func(t la.Matrix) {
				if _, err := ml.GNMF(t, 5, ml.Options{Iters: mlIters, Seed: 7}); err != nil {
					panic(err)
				}
			}},
		}
		for _, c := range cases {
			mT := timeIt(func() { c.run(sp) })
			fT := timeIt(func() { c.run(nm) })
			res.Rows = append(res.Rows, []string{spec.Name, c.name, secs(mT), secs(fT), ratio(mT, fT)})
		}
	}
	return res, nil
}

// table8 regenerates Table 8: Morpheus vs the Orion baseline on factorized
// logistic regression across feature ratios. Both report speed-up over the
// same materialized run.
func table8(cfg Config) (Result, error) {
	res := Result{
		ID:     "table8",
		Title:  "Factorized logistic regression speed-up over materialized: Orion vs Morpheus (Table 8)",
		Header: []string{"FR", "M(s)", "Orion(s)", "Morpheus(s)", "Orion speedup", "Morpheus speedup"},
		Notes:  "paper setting (nS,nR,dS,iters)=(2e6,1e5,20,10), scaled down; Morpheus >= Orion because Orion pays hash-lookup overheads",
	}
	// nS must be large enough that kernel time dominates dispatch
	// overheads, or the Orion-vs-Morpheus ordering inverts; 80k rows at
	// Scale=1 is the smallest size that reproduces the paper's shape.
	nR := cfg.scaled(4000)
	nS := 20 * nR
	dS := 20
	const iters = 10
	const alpha = 1e-6
	for _, frInt := range []int{1, 2, 3, 4} {
		dR := frInt * dS
		nm, err := datagen.PKFK(datagen.PKFKSpec{NS: nS, DS: dS, NR: nR, DR: dR, Seed: cfg.Seed})
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, true, cfg.Seed)
		td := nm.Dense()
		sD := nm.S().Dense()
		rD := nm.Rs()[0].Dense()
		fk := nm.Ks()[0].Assignments()
		glm, err := orion.NewGLM(sD, rD, fk)
		if err != nil {
			return Result{}, err
		}
		opt := ml.Options{Iters: iters, StepSize: alpha}
		mT := timeIt(func() { ml.LogisticRegressionGD(td, y, nil, opt) })
		oT := timeIt(func() { glm.LogisticGD(y, iters, alpha) })
		fT := timeIt(func() { ml.LogisticRegressionGD(nm, y, nil, opt) })
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(frInt), secs(mT), secs(oT), secs(fT), ratio(mT, oT), ratio(mT, fT)})
	}
	return res, nil
}

func chunkStore(cfg Config, name string) (*chunk.Store, func(), error) {
	var backends []chunk.Backend
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	fail := func(err error) (*chunk.Store, func(), error) {
		cleanup()
		return nil, nil, err
	}
	policy := chunk.RoundRobin
	if len(cfg.ShardDirs) > 0 || len(cfg.RemoteShards) > 0 {
		// User-supplied shards — local directories (different disks)
		// and/or remote chunkd servers — are not removed, but Close still
		// deletes every spill file the run created, on every shard.
		policy = chunk.LeastBytes
		for _, d := range cfg.ShardDirs {
			b, err := chunk.NewDirBackend(d)
			if err != nil {
				return fail(err)
			}
			backends = append(backends, b)
		}
		for _, u := range cfg.RemoteShards {
			b, err := chunk.NewRemoteBackend(u)
			if err != nil {
				return fail(err)
			}
			backends = append(backends, b)
		}
	} else {
		dir := cfg.TmpDir
		if dir == "" {
			// A user-supplied directory is not removed, but Close still
			// deletes every spill file the run created; this temp one is.
			d, err := os.MkdirTemp("", "morpheus-"+name+"-*")
			if err != nil {
				return nil, nil, err
			}
			cleanups = append(cleanups, func() { os.RemoveAll(d) })
			dir = d
		}
		b, err := chunk.NewDirBackend(dir)
		if err != nil {
			return fail(err)
		}
		backends = append(backends, b)
	}
	// Wrapper composition is fixed: compression innermost (bytes at rest
	// and on the wire are framed), zone maps outermost (annotations
	// describe the decoded chunk values).
	if cfg.Codec != "" {
		for i, b := range backends {
			wb, err := chunk.NewCompressingBackend(b, cfg.Codec)
			if err != nil {
				return fail(err)
			}
			backends[i] = wb
		}
	}
	if cfg.ZoneMap {
		zdir, err := os.MkdirTemp("", "morpheus-"+name+"-zm-*")
		if err != nil {
			return fail(err)
		}
		cleanups = append(cleanups, func() { os.RemoveAll(zdir) })
		for i, b := range backends {
			wb, err := chunk.NewZoneMapBackend(b, filepath.Join(zdir, fmt.Sprintf("shard%d", i)))
			if err != nil {
				return fail(err)
			}
			backends[i] = wb
		}
	}
	st, err := chunk.NewShardedStoreBackends(backends, policy)
	if err != nil {
		return fail(err)
	}
	return st, func() { st.Close(); cleanup() }, nil
}

// chunkExec is the parallel out-of-core execution used by the §5.2.4
// runners, honoring the configured worker bound.
func chunkExec(cfg Config) chunk.Exec {
	ex := chunk.Parallel()
	if cfg.Workers > 0 {
		ex = chunk.Exec{Workers: cfg.Workers, Prefetch: 2 * cfg.Workers}
	}
	ex.Pushdown = cfg.Pushdown
	return ex
}

// memBudgetMB resolves the configured out-of-core memory budget.
func memBudgetMB(cfg Config) int {
	if cfg.MemBudgetMB > 0 {
		return cfg.MemBudgetMB
	}
	return 256
}

// autoChunkRows derives the chunk height for a cols-wide table from the
// configured memory budget, replacing the hard-coded chunk heights the
// sweeps used to carry.
func autoChunkRows(cfg Config, cols int) int {
	ex := chunkExec(cfg)
	return chunk.AutoRows(int64(memBudgetMB(cfg))<<20, cols, ex.Workers, ex.Prefetch)
}

// runGLMPair times a chunked materialized GLM run against the factorized
// run over the same logical table and verifies the fitted weights agree —
// a divergence is an error, never a silently wrong table row.
func runGLMPair(ex chunk.Exec, tM chunk.Mat, nt *chunk.NormalizedTable, y *la.Dense, iters int, alpha float64) (mT, fT time.Duration, resM, resF *chunk.LogRegResult, err error) {
	mT = timeIt(func() {
		var err error
		resM, err = chunk.LogRegMaterializedExec(ex, tM, y, iters, alpha)
		if err != nil {
			panic(err)
		}
	})
	fT = timeIt(func() {
		var err error
		resF, err = chunk.LogRegFactorizedExec(ex, nt, y, iters, alpha)
		if err != nil {
			panic(err)
		}
	})
	if la.MaxAbsDiff(resM.W, resF.W) > 1e-8 {
		return 0, 0, nil, nil, fmt.Errorf("experiments: M and F weights diverged")
	}
	return mT, fT, resM, resF, nil
}

// table9 regenerates Table 9: per-iteration logistic regression time on the
// out-of-core (ORE-substitute) backend for a PK-FK join, sweeping the
// feature ratio.
func table9(cfg Config) (Result, error) {
	res := Result{
		ID:     "table9",
		Title:  "Out-of-core logistic regression per-iteration time, PK-FK join (Table 9; ORE substitute)",
		Header: []string{"FR", "M(s/iter)", "F(s/iter)", "speedup", "M bytes", "F bytes"},
		Notes:  "paper: (nS,nR,dS)=(1e8,5e6,60) on Oracle R Enterprise; here the chunked on-disk backend at reduced scale",
	}
	st, cleanup, err := chunkStore(cfg, "table9")
	if err != nil {
		return Result{}, err
	}
	defer cleanup()
	nR := cfg.scaled(1000)
	nS := 20 * nR
	dS := 60
	const iters = 2
	ex := chunkExec(cfg)

	// sweep times one sweep point and appends its per-iteration row.
	sweep := func(label string, tM chunk.Mat, nt *chunk.NormalizedTable, y *la.Dense) error {
		mT, fT, resM, resF, err := runGLMPair(ex, tM, nt, y, iters, 1e-6)
		if err != nil {
			return fmt.Errorf("table9: %s: %w", label, err)
		}
		res.Rows = append(res.Rows, []string{
			label,
			secs(time.Duration(int64(mT) / iters)), secs(time.Duration(int64(fT) / iters)),
			ratio(mT, fT),
			fmt.Sprint(resM.BytesRead), fmt.Sprint(resF.BytesRead)})
		if cfg.Plan {
			if err := plannedGLM(&res, "table9/FR="+label, planEnv(cfg, st), tM, nt, y, iters, 1e-6, resM.W, resF.W); err != nil {
				return err
			}
		}
		// Release this sweep point's spill files before the next one.
		if err := tM.Free(); err != nil {
			return err
		}
		return nt.Free()
	}

	for _, fr := range []float64{0.5, 1, 2, 4} {
		dR := int(fr * float64(dS))
		nm, err := datagen.PKFK(datagen.PKFKSpec{NS: nS, DS: dS, NR: nR, DR: dR, Seed: cfg.Seed})
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, true, cfg.Seed)
		chunkRows := autoChunkRows(cfg, dS+dR)
		tM, err := chunk.FromDense(st, nm.Dense(), chunkRows)
		if err != nil {
			return Result{}, err
		}
		nt, err := chunkStar(st, nm, chunkRows)
		if err != nil {
			return Result{}, err
		}
		if err := sweep(fmt.Sprint(fr), tM, nt, y); err != nil {
			return Result{}, err
		}
	}

	// Sparse point: a one-hot CSR attribute table (the Table 6 shape). The
	// materialized baseline keeps the fair sparse format — CSR chunks —
	// and both paths train through chunk.Mat.
	{
		dR := 4 * dS
		nm, err := oneHotPKFK(nS, dS, nR, dR, cfg.Seed)
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, true, cfg.Seed)
		chunkRows := autoChunkRows(cfg, dS+dR)
		tM, err := chunk.FromCSR(st, nm.Sparse(), chunkRows)
		if err != nil {
			return Result{}, err
		}
		nt, err := chunkStar(st, nm, chunkRows)
		if err != nil {
			return Result{}, err
		}
		if err := sweep("4(one-hot CSR)", tM, nt, y); err != nil {
			return Result{}, err
		}
	}

	// Star point: two attribute tables behind the same entity table.
	{
		dR := dS
		nm, err := datagen.Star(datagen.StarSpec{NS: nS, DS: dS, NR: []int{nR, nR}, DR: []int{dR, dR}, Seed: cfg.Seed})
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, true, cfg.Seed)
		chunkRows := autoChunkRows(cfg, dS+2*dR)
		tM, err := chunk.FromDense(st, nm.Dense(), chunkRows)
		if err != nil {
			return Result{}, err
		}
		nt, err := chunkStar(st, nm, chunkRows)
		if err != nil {
			return Result{}, err
		}
		if err := sweep("2(star q=2)", tM, nt, y); err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

// chunkStar spills the base tables of an in-memory star-schema normalized
// matrix into out-of-core form: chunked S plus one chunk-aligned key
// column per attribute table, attribute tables staying in memory (dense or
// CSR, whatever the normalized matrix holds).
func chunkStar(st *chunk.Store, nm *core.NormalizedMatrix, chunkRows int) (*chunk.NormalizedTable, error) {
	sM, err := chunk.FromDense(st, nm.S().Dense(), chunkRows)
	if err != nil {
		return nil, err
	}
	attrs := make([]chunk.AttrTable, nm.NumTables())
	for t, k := range nm.Ks() {
		fkv, err := chunk.BuildIntVector(st, k.Assignments(), chunkRows)
		if err != nil {
			return nil, err
		}
		attrs[t] = chunk.AttrTable{FK: fkv, R: nm.Rs()[t]}
	}
	return chunk.NewStarTable(sM, attrs)
}

// oneHotPKFK builds a PK-FK normalized matrix whose attribute table is a
// one-hot CSR — the real-data Table 6 shape at synthetic scale.
func oneHotPKFK(nS, dS, nR, dR int, seed int64) (*core.NormalizedMatrix, error) {
	rng := rand.New(rand.NewSource(seed))
	s := la.NewDense(nS, dS)
	for i := range s.Data() {
		s.Data()[i] = rng.NormFloat64()
	}
	b := la.NewCSRBuilder(nR, dR)
	for i := 0; i < nR; i++ {
		b.Add(i, rng.Intn(dR), 1)
	}
	fk := make([]int, nS)
	for i := range fk {
		fk[i] = rng.Intn(nR)
	}
	return core.NewPKFK(s, la.NewIndicator(fk, nR), b.Build())
}

// table10 regenerates Table 10: out-of-core logistic regression on an M:N
// join, sweeping the join-attribute domain size nU downward (more
// redundancy) — the speed-up explodes as |T'| grows.
func table10(cfg Config) (Result, error) {
	res := Result{
		ID:     "table10",
		Title:  "Out-of-core logistic regression per-iteration time, M:N join (Table 10; ORE substitute)",
		Header: []string{"nU", "|T'|", "M(s/iter)", "F(s/iter)", "speedup"},
		Notes:  "paper: (nS,nR,dS,dR)=(1e6,1e6,200,200); speed-up grows as ~nS/nU, reaching ~300x at the paper's smallest domain",
	}
	st, cleanup, err := chunkStore(cfg, "table10")
	if err != nil {
		return Result{}, err
	}
	defer cleanup()
	nS := cfg.scaled(2000)
	d := 40
	const iters = 2
	chunkRows := autoChunkRows(cfg, 2*d)
	for _, frac := range []float64{0.5, 0.1, 0.05, 0.02} {
		nU := int(frac * float64(nS))
		if nU < 1 {
			nU = 1
		}
		nm, err := datagen.MN(datagen.MNSpec{NS: nS, NR: nS, DS: d, DR: d, NU: nU, Seed: cfg.Seed})
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, true, cfg.Seed)
		sM, err := chunk.FromDense(st, nm.S().Dense(), chunkRows)
		if err != nil {
			return Result{}, err
		}
		rM, err := chunk.FromDense(st, nm.Rs()[0].Dense(), chunkRows)
		if err != nil {
			return Result{}, err
		}
		isV, err := chunk.BuildIntVector(st, nm.IS().Assignments(), chunkRows)
		if err != nil {
			return Result{}, err
		}
		irV, err := chunk.BuildIntVector(st, nm.Ks()[0].Assignments(), chunkRows)
		if err != nil {
			return Result{}, err
		}
		mn, err := chunk.NewMNTable(sM, rM, isV, irV)
		if err != nil {
			return Result{}, err
		}
		tM, err := chunk.MaterializeMN(st, mn)
		if err != nil {
			return Result{}, err
		}
		ex := chunkExec(cfg)
		var resM, resF *chunk.LogRegResult
		mT := timeIt(func() {
			var err error
			resM, err = chunk.LogRegMaterializedExec(ex, tM, y, iters, 1e-7)
			if err != nil {
				panic(err)
			}
		})
		fT := timeIt(func() {
			var err error
			resF, err = chunk.LogRegFactorizedMNExec(ex, mn, y, iters, 1e-7)
			if err != nil {
				panic(err)
			}
		})
		if la.MaxAbsDiff(resM.W, resF.W) > 1e-8 {
			return Result{}, fmt.Errorf("table10: M and F weights diverged")
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(nU), fmt.Sprint(nm.Rows()),
			secs(time.Duration(int64(mT) / iters)), secs(time.Duration(int64(fT) / iters)),
			ratio(mT, fT)})
		if cfg.Plan {
			if err := plannedGLMMN(&res, fmt.Sprintf("table10/nU=%d", nU), planEnv(cfg, st), tM, mn, y, iters, 1e-7, resM.W, resF.W); err != nil {
				return Result{}, err
			}
		}
		// Release this sweep point's spill files before the next one.
		tM.Free()
		mn.Free()
	}
	return res, nil
}

// table12 regenerates the appendix Table 12: data-preparation time (join
// materialization for M, indicator construction for F) as a fraction of a
// 20-iteration logistic regression run.
func table12(cfg Config) (Result, error) {
	res := Result{
		ID:     "table12",
		Title:  "Data preparation time vs logistic regression runtime (appendix Table 12)",
		Header: []string{"dataset", "prep M(s)", "prep F(s)", "logreg M(s)", "logreg F(s)", "ratio M", "ratio F"},
		Notes:  "prep M = materializing the sparse join output; prep F = rebuilding the indicator matrices; both are minor vs 20 training iterations",
	}
	scale := int(float64(realDataScale) / cfg.Scale)
	if scale < 1 {
		scale = 1
	}
	for _, spec := range realdata.Specs() {
		ds, err := realdata.Generate(spec.Scaled(scale), cfg.Seed)
		if err != nil {
			return Result{}, err
		}
		nm := ds.Norm
		yb := ds.BinaryY()
		var sp *la.CSR
		prepM := timeIt(func() { sp = nm.Sparse() })
		prepF := timeIt(func() {
			// Rebuild each indicator from its raw key column — the F-side
			// preparation the paper measures (sparseMatrix(...) in §3.2).
			for _, k := range nm.Ks() {
				assign := k.Assignments()
				raw := make([]int, len(assign))
				for i, a := range assign {
					raw[i] = int(a)
				}
				la.NewIndicator(raw, k.Cols())
			}
		})
		opt := ml.Options{Iters: mlIters, StepSize: 1e-6}
		mT := timeIt(func() { ml.LogisticRegressionGD(sp, yb, nil, opt) })
		fT := timeIt(func() { ml.LogisticRegressionGD(nm, yb, nil, opt) })
		res.Rows = append(res.Rows, []string{
			spec.Name, secs(prepM), secs(prepF), secs(mT), secs(fT),
			fmt.Sprintf("%.3f", prepM.Seconds()/math.Max(mT.Seconds(), 1e-9)),
			fmt.Sprintf("%.3f", prepF.Seconds()/math.Max(fT.Seconds(), 1e-9))})
	}
	return res, nil
}

// mnml regenerates the appendix claim that the ML-algorithm results carry
// over to M:N joins: the four algorithms on one M:N dataset.
func mnml(cfg Config) (Result, error) {
	res := Result{
		ID:     "mnml",
		Title:  "ML algorithms over an M:N join (appendix §5.2 remark)",
		Header: []string{"algo", "nU/nS", "M(s)", "F(s)", "speedup"},
	}
	nS := cfg.scaled(1500)
	for _, deg := range []float64{0.05, 0.2} {
		nU := int(deg * float64(nS))
		if nU < 1 {
			nU = 1
		}
		nm, err := datagen.MN(datagen.MNSpec{NS: nS, NR: nS, DS: 30, DR: 30, NU: nU, Seed: cfg.Seed})
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, true, cfg.Seed)
		for _, a := range mlAlgos(10, 5) {
			mT, fT := runAlgo(a, nm, y)
			res.Rows = append(res.Rows, []string{a.name, fmt.Sprint(deg), secs(mT), secs(fT), ratio(mT, fT)})
		}
	}
	return res, nil
}

func init() {
	register("table7", table7)
	register("table8", table8)
	register("table9", table9)
	register("table10", table10)
	register("table12", table12)
	register("mnml", mnml)
}
