package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
)

// opCase is one LA operator benchmarked materialized-vs-factorized.
type opCase struct {
	name string
	// run executes the operator on any la.Matrix (Dense for M,
	// NormalizedMatrix for F).
	run func(m la.Matrix)
}

// operatorCases covers every operator family of Table 1 (cross-product via
// the efficient Algorithm 2; the naive variant has its own ablation).
func operatorCases(d int) []opCase {
	return []opCase{
		{"scalar-mul", func(m la.Matrix) { m.Scale(3.0) }},
		{"scalar-add", func(m la.Matrix) { m.AddScalar(1.0) }},
		{"scalar-exp", func(m la.Matrix) { m.Apply(math.Exp) }},
		{"rowSums", func(m la.Matrix) { m.RowSums() }},
		{"colSums", func(m la.Matrix) { m.ColSums() }},
		{"sum", func(m la.Matrix) { m.Sum() }},
		{"LMM", func(m la.Matrix) { m.Mul(la.Ones(d, 2)) }},
		{"RMM", func(m la.Matrix) { m.LeftMul(la.Ones(2, m.Rows())) }},
		{"crossprod", func(m la.Matrix) { m.CrossProd() }},
		{"ginv", func(m la.Matrix) { m.Ginv() }},
	}
}

// pkfkTRValues and pkfkFRValues are the paper's Figure 3 sweep axes.
var (
	pkfkTRValues = []int{1, 2, 5, 10, 15, 20}
	pkfkFRValues = []float64{0.25, 0.5, 1, 2, 3, 4}
)

const (
	basePKFKNR = 5000 // paper: 1e6; scaled per DESIGN.md
	basePKFKDS = 20   // paper: 20
)

func pkfkSpec(cfg Config, tr int, fr float64) datagen.PKFKSpec {
	nR := cfg.scaled(basePKFKNR)
	dR := int(fr * basePKFKDS)
	if dR < 1 {
		dR = 1
	}
	return datagen.PKFKSpec{NS: tr * nR, DS: basePKFKDS, NR: nR, DR: dR, Seed: cfg.Seed}
}

// runOp times one operator on the factorized and materialized forms.
func runOp(nm *core.NormalizedMatrix, td *la.Dense, op opCase) (m, f time.Duration) {
	m = timeIt(func() { op.run(td) })
	f = timeIt(func() { op.run(nm) })
	return m, f
}

// fig3 regenerates the Figure 3 speed-up grids for the four headline
// operators (scalar multiplication, LMM, cross-product, pseudo-inverse)
// over the tuple-ratio × feature-ratio plane.
func fig3(cfg Config) (Result, error) {
	ops := []string{"scalar-mul", "LMM", "crossprod", "ginv"}
	res := Result{
		ID:     "fig3",
		Title:  "PK-FK operator speed-ups (F over M) across tuple ratio x feature ratio",
		Header: []string{"op", "TR", "FR", "M(s)", "F(s)", "speedup"},
		Notes:  fmt.Sprintf("nR=%d dS=%d (paper: nR=1e6); speedups grow with both ratios, 'L'-shaped slowdown region at low TR/FR", cfg.scaled(basePKFKNR), basePKFKDS),
	}
	for _, opName := range ops {
		for _, tr := range pkfkTRValues {
			for _, fr := range pkfkFRValues {
				spec := pkfkSpec(cfg, tr, fr)
				nm, err := datagen.PKFK(spec)
				if err != nil {
					return Result{}, err
				}
				td := nm.Dense()
				var op opCase
				for _, c := range operatorCases(td.Cols()) {
					if c.name == opName {
						op = c
					}
				}
				mT, fT := runOp(nm, td, op)
				res.Rows = append(res.Rows, []string{
					opName, fmt.Sprint(tr), fmt.Sprint(fr), secs(mT), secs(fT), ratio(mT, fT)})
			}
		}
	}
	return res, nil
}

// fig6and7 regenerates the appendix operator runtime sweeps (Figures 6 and
// 7): every Table 1 operator along the TR axis (FR fixed) and the FR axis
// (TR fixed).
func fig6and7(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig6",
		Title:  "PK-FK operator runtimes vs tuple ratio (FR=2,4) and feature ratio (TR=10,20) — appendix Figures 6/7",
		Header: []string{"op", "axis", "TR", "FR", "M(s)", "F(s)", "speedup"},
	}
	for _, opName := range []string{"scalar-add", "scalar-mul", "RMM", "LMM", "rowSums", "colSums", "sum", "crossprod", "ginv"} {
		for _, fr := range []float64{2, 4} {
			for _, tr := range pkfkTRValues {
				spec := pkfkSpec(cfg, tr, fr)
				nm, err := datagen.PKFK(spec)
				if err != nil {
					return Result{}, err
				}
				td := nm.Dense()
				for _, c := range operatorCases(td.Cols()) {
					if c.name != opName {
						continue
					}
					mT, fT := runOp(nm, td, c)
					res.Rows = append(res.Rows, []string{
						opName, "TR", fmt.Sprint(tr), fmt.Sprint(fr), secs(mT), secs(fT), ratio(mT, fT)})
				}
			}
		}
		for _, tr := range []int{10, 20} {
			for _, fr := range pkfkFRValues {
				spec := pkfkSpec(cfg, tr, fr)
				nm, err := datagen.PKFK(spec)
				if err != nil {
					return Result{}, err
				}
				td := nm.Dense()
				for _, c := range operatorCases(td.Cols()) {
					if c.name != opName {
						continue
					}
					mT, fT := runOp(nm, td, c)
					res.Rows = append(res.Rows, []string{
						opName, "FR", fmt.Sprint(tr), fmt.Sprint(fr), secs(mT), secs(fT), ratio(mT, fT)})
				}
			}
		}
	}
	return res, nil
}

// mnBase gives the scaled Table 5 defaults (paper: nS=nR up to 2e5,
// dS=dR=200, nU=1000).
func mnBase(cfg Config) (nBig, nSmall, d int) {
	return cfg.scaled(2000), cfg.scaled(1000), 100
}

// fig4 regenerates Figure 4: M:N LMM and cross-product runtimes as the
// join-attribute uniqueness degree nU/nS shrinks toward the cartesian
// product.
func fig4(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig4",
		Title:  "M:N join operators vs join-attribute uniqueness degree (Figure 4)",
		Header: []string{"op", "nS", "nU/nS", "|T'|", "M(s)", "F(s)", "speedup"},
		Notes:  "as nU/nS -> 0.01 each base tuple is repeated ~nS/nU times; factorized speedups approach that repetition factor",
	}
	nBig, nSmall, d := mnBase(cfg)
	for _, op := range []string{"LMM", "crossprod"} {
		for _, nS := range []int{nBig, nSmall} {
			for _, deg := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5} {
				nU := int(deg * float64(nS))
				if nU < 1 {
					nU = 1
				}
				nm, err := datagen.MN(datagen.MNSpec{NS: nS, NR: nS, DS: d, DR: d, NU: nU, Seed: cfg.Seed})
				if err != nil {
					return Result{}, err
				}
				td := nm.Dense()
				for _, c := range operatorCases(td.Cols()) {
					if c.name != op {
						continue
					}
					mT, fT := runOp(nm, td, c)
					res.Rows = append(res.Rows, []string{
						op, fmt.Sprint(nS), fmt.Sprint(deg), fmt.Sprint(nm.Rows()), secs(mT), secs(fT), ratio(mT, fT)})
				}
			}
		}
	}
	return res, nil
}

// fig11and12 regenerates the appendix M:N sweeps: every operator against
// the number of tuples, the number of features, and the uniqueness degree.
func fig11and12(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig11",
		Title:  "M:N operator sweeps over #tuples, #features, uniqueness degree (appendix Figures 11/12)",
		Header: []string{"op", "axis", "nS", "d", "nU/nS", "M(s)", "F(s)", "speedup"},
	}
	nBig, nSmall, dBase := mnBase(cfg)
	opNames := []string{"scalar-add", "scalar-mul", "rowSums", "colSums", "sum", "LMM", "RMM", "crossprod"}
	type cell struct {
		axis   string
		nS, d  int
		degree float64
	}
	var cells []cell
	for _, n := range []int{nSmall / 2, nSmall, nBig} {
		cells = append(cells, cell{"tuples", n, dBase, 0.1})
	}
	for _, d := range []int{dBase / 4, dBase / 2, dBase} {
		cells = append(cells, cell{"features", nBig, d, 0.1})
	}
	for _, deg := range []float64{0.02, 0.1, 0.5} {
		cells = append(cells, cell{"uniqueness", nBig, dBase, deg})
	}
	for _, op := range opNames {
		for _, cl := range cells {
			nU := int(cl.degree * float64(cl.nS))
			if nU < 1 {
				nU = 1
			}
			nm, err := datagen.MN(datagen.MNSpec{NS: cl.nS, NR: cl.nS, DS: cl.d, DR: cl.d, NU: nU, Seed: cfg.Seed})
			if err != nil {
				return Result{}, err
			}
			td := nm.Dense()
			for _, c := range operatorCases(td.Cols()) {
				if c.name != op {
					continue
				}
				mT, fT := runOp(nm, td, c)
				res.Rows = append(res.Rows, []string{
					op, cl.axis, fmt.Sprint(cl.nS), fmt.Sprint(cl.d), fmt.Sprint(cl.degree), secs(mT), secs(fT), ratio(mT, fT)})
			}
		}
	}
	return res, nil
}

// cpAblate compares the naive (Algorithm 1) and efficient (Algorithm 2)
// cross-product rewrites, the design-choice ablation DESIGN.md calls out.
func cpAblate(cfg Config) (Result, error) {
	res := Result{
		ID:     "cpablate",
		Title:  "Cross-product rewrite ablation: naive Algorithm 1 vs efficient Algorithm 2",
		Header: []string{"TR", "FR", "materialized(s)", "naive(s)", "efficient(s)", "eff/naive speedup"},
		Notes:  "Algorithm 2 exploits crossprod(S) symmetry and K'K=diag(colSums(K))",
	}
	for _, tr := range []int{5, 10, 20} {
		for _, fr := range []float64{1, 2, 4} {
			nm, err := datagen.PKFK(pkfkSpec(cfg, tr, fr))
			if err != nil {
				return Result{}, err
			}
			td := nm.Dense()
			mT := timeIt(func() { td.CrossProd() })
			naiveT := timeIt(func() { nm.CrossProdNaive() })
			effT := timeIt(func() { nm.CrossProd() })
			res.Rows = append(res.Rows, []string{
				fmt.Sprint(tr), fmt.Sprint(fr), secs(mT), secs(naiveT), secs(effT), ratio(naiveT, effT)})
		}
	}
	return res, nil
}

// rule evaluates the §3.7 heuristic decision rule against measured LMM
// speed-ups over the Figure 3 grid: the rule should never predict
// "factorize" where a slow-down occurs (conservativeness).
func rule(cfg Config) (Result, error) {
	adv := core.DefaultAdvisor()
	res := Result{
		ID:     "rule",
		Title:  "Heuristic decision rule (tau=5, rho=1) vs measured LMM speed-ups",
		Header: []string{"TR", "FR", "speedup", "rule says", "verdict"},
	}
	falsePositives, cells := 0, 0
	for _, tr := range pkfkTRValues {
		for _, fr := range pkfkFRValues {
			nm, err := datagen.PKFK(pkfkSpec(cfg, tr, fr))
			if err != nil {
				return Result{}, err
			}
			td := nm.Dense()
			x := la.Ones(td.Cols(), 2)
			mT := timeIt(func() { td.Mul(x) })
			fT := timeIt(func() { nm.Mul(x) })
			sp := float64(mT) / float64(fT)
			decide := adv.Decide(nm)
			verdict := "ok"
			if decide && sp < 1 {
				verdict = "FALSE POSITIVE"
				falsePositives++
			} else if !decide && sp > 1.5 {
				verdict = "missed win (conservative)"
			}
			cells++
			res.Rows = append(res.Rows, []string{
				fmt.Sprint(tr), fmt.Sprint(fr), fmt.Sprintf("%.2f", sp), fmt.Sprint(decide), verdict})
		}
	}
	res.Notes = fmt.Sprintf("%d/%d cells where the rule predicted factorization that slowed down", falsePositives, cells)
	return res, nil
}

func init() {
	register("fig3", fig3)
	register("fig6", fig6and7)
	register("fig7", fig6and7) // Figure 7 shares the sweep with Figure 6
	register("fig4", fig4)
	register("fig11", fig11and12)
	register("fig12", fig11and12)
	register("cpablate", cpAblate)
	register("rule", rule)
}
