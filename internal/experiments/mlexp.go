package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/ml"
)

const mlIters = 20 // the paper fixes 20 iterations for all ML experiments

// mlAlgo wraps one of the four §4 algorithms for the M-vs-F sweeps.
type mlAlgo struct {
	name string
	run  func(t la.Matrix, y *la.Dense)
}

func mlAlgos(k, topics int) []mlAlgo {
	opt := ml.Options{Iters: mlIters, StepSize: 1e-6}
	return []mlAlgo{
		{"logreg", func(t la.Matrix, y *la.Dense) {
			if _, err := ml.LogisticRegressionGD(t, y, nil, opt); err != nil {
				panic(err)
			}
		}},
		{"linreg-ne", func(t la.Matrix, y *la.Dense) {
			if _, err := ml.LinearRegressionNE(t, y); err != nil {
				panic(err)
			}
		}},
		{"kmeans", func(t la.Matrix, y *la.Dense) {
			if _, err := ml.KMeans(t, k, ml.Options{Iters: mlIters, Seed: 7}); err != nil {
				panic(err)
			}
		}},
		{"gnmf", func(t la.Matrix, y *la.Dense) {
			if _, err := ml.GNMF(t, topics, ml.Options{Iters: mlIters, Seed: 7}); err != nil {
				panic(err)
			}
		}},
	}
}

// posNorm returns a non-negative copy of the normalized matrix (GNMF input).
func posNorm(nm *core.NormalizedMatrix) *core.NormalizedMatrix {
	return nm.Apply(math.Abs).(*core.NormalizedMatrix)
}

// runAlgo times one ML algorithm materialized and factorized; GNMF runs on
// the absolute-value matrices so multiplicative updates stay valid.
func runAlgo(a mlAlgo, nm *core.NormalizedMatrix, y *la.Dense) (m, f time.Duration) {
	var tdM la.Matrix
	var tnF la.Matrix
	if a.name == "gnmf" {
		p := posNorm(nm)
		tnF = p
		tdM = p.Dense()
	} else {
		tnF = nm
		tdM = nm.Dense()
	}
	m = timeIt(func() { a.run(tdM, y) })
	f = timeIt(func() { a.run(tnF, y) })
	return m, f
}

// fig5 regenerates Figure 5: the four ML algorithms across tuple-ratio and
// feature-ratio sweeps (a1/a2 logistic, b1/b2 linear-NE, c1/c2 K-Means,
// d1/d2 GNMF; the iteration/centroid/topic sweeps are fig9/fig10).
func fig5(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig5",
		Title:  "ML algorithms on synthetic PK-FK data vs TR and FR (Figure 5)",
		Header: []string{"algo", "axis", "TR", "FR", "M(s)", "F(s)", "speedup"},
		Notes:  fmt.Sprintf("%d iterations, k=10 centroids, 5 topics (paper settings)", mlIters),
	}
	algos := mlAlgos(10, 5)
	for _, a := range algos {
		for _, fr := range []float64{2, 4} {
			for _, tr := range []int{5, 10, 15, 20} {
				nm, err := datagen.PKFK(pkfkSpec(cfg, tr, fr))
				if err != nil {
					return Result{}, err
				}
				y := datagen.Labels(nm, 0, true, cfg.Seed)
				mT, fT := runAlgo(a, nm, y)
				res.Rows = append(res.Rows, []string{
					a.name, "TR", fmt.Sprint(tr), fmt.Sprint(fr), secs(mT), secs(fT), ratio(mT, fT)})
			}
		}
		for _, tr := range []int{10, 20} {
			for _, fr := range []float64{1, 2, 3, 4} {
				nm, err := datagen.PKFK(pkfkSpec(cfg, tr, fr))
				if err != nil {
					return Result{}, err
				}
				y := datagen.Labels(nm, 0, true, cfg.Seed)
				mT, fT := runAlgo(a, nm, y)
				res.Rows = append(res.Rows, []string{
					a.name, "FR", fmt.Sprint(tr), fmt.Sprint(fr), secs(mT), secs(fT), ratio(mT, fT)})
			}
		}
	}
	return res, nil
}

// fig8 regenerates the appendix Figure 8: linear regression with gradient
// descent vs TR, FR, and the number of iterations.
func fig8(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig8",
		Title:  "Linear regression with gradient descent (appendix Figure 8)",
		Header: []string{"axis", "TR", "FR", "iters", "M(s)", "F(s)", "speedup"},
	}
	run := func(nm *core.NormalizedMatrix, y *la.Dense, iters int) (time.Duration, time.Duration) {
		opt := ml.Options{Iters: iters, StepSize: 1e-7}
		td := nm.Dense()
		mT := timeIt(func() { ml.LinearRegressionGD(td, y, nil, opt) })
		fT := timeIt(func() { ml.LinearRegressionGD(nm, y, nil, opt) })
		return mT, fT
	}
	for _, tr := range []int{5, 10, 15, 20} {
		nm, err := datagen.PKFK(pkfkSpec(cfg, tr, 2))
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, false, cfg.Seed)
		mT, fT := run(nm, y, mlIters)
		res.Rows = append(res.Rows, []string{"TR", fmt.Sprint(tr), "2", fmt.Sprint(mlIters), secs(mT), secs(fT), ratio(mT, fT)})
	}
	for _, fr := range []float64{1, 2, 3, 4} {
		nm, err := datagen.PKFK(pkfkSpec(cfg, 20, fr))
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, false, cfg.Seed)
		mT, fT := run(nm, y, mlIters)
		res.Rows = append(res.Rows, []string{"FR", "20", fmt.Sprint(fr), fmt.Sprint(mlIters), secs(mT), secs(fT), ratio(mT, fT)})
	}
	for _, iters := range []int{5, 10, 15, 20} {
		nm, err := datagen.PKFK(pkfkSpec(cfg, 20, 2))
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, false, cfg.Seed)
		mT, fT := run(nm, y, iters)
		res.Rows = append(res.Rows, []string{"iters", "20", "2", fmt.Sprint(iters), secs(mT), secs(fT), ratio(mT, fT)})
	}
	return res, nil
}

// fig9 regenerates the appendix Figure 9: logistic regression runtime vs
// the number of iterations (runtime is linear in iterations; the speed-up
// is iteration-count independent).
func fig9(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig9",
		Title:  "Logistic regression vs number of iterations (appendix Figure 9)",
		Header: []string{"iters", "FR", "M(s)", "F(s)", "speedup"},
	}
	for _, fr := range []float64{2, 4} {
		nm, err := datagen.PKFK(pkfkSpec(cfg, 20, fr))
		if err != nil {
			return Result{}, err
		}
		y := datagen.Labels(nm, 0, true, cfg.Seed)
		td := nm.Dense()
		for _, iters := range []int{5, 10, 15, 20} {
			opt := ml.Options{Iters: iters, StepSize: 1e-6}
			mT := timeIt(func() { ml.LogisticRegressionGD(td, y, nil, opt) })
			fT := timeIt(func() { ml.LogisticRegressionGD(nm, y, nil, opt) })
			res.Rows = append(res.Rows, []string{fmt.Sprint(iters), fmt.Sprint(fr), secs(mT), secs(fT), ratio(mT, fT)})
		}
	}
	return res, nil
}

// fig10 regenerates Figure 5(c2)/(d2) and appendix Figure 10: K-Means vs
// the number of centroids and GNMF vs the number of topics.
func fig10(cfg Config) (Result, error) {
	res := Result{
		ID:     "fig10",
		Title:  "K-Means vs #centroids and GNMF vs #topics (Figure 5c2/d2, appendix Figure 10)",
		Header: []string{"algo", "param", "FR", "M(s)", "F(s)", "speedup"},
		Notes:  "speed-ups shrink as k/topics grow: the non-factorizable portion of the computation grows with k",
	}
	for _, fr := range []float64{2, 4} {
		nm, err := datagen.PKFK(pkfkSpec(cfg, 10, fr))
		if err != nil {
			return Result{}, err
		}
		td := nm.Dense()
		for _, k := range []int{5, 10, 15, 20} {
			opt := ml.Options{Iters: mlIters, Seed: 7}
			mT := timeIt(func() { ml.KMeans(td, k, opt) })
			fT := timeIt(func() { ml.KMeans(nm, k, opt) })
			res.Rows = append(res.Rows, []string{"kmeans", fmt.Sprint(k), fmt.Sprint(fr), secs(mT), secs(fT), ratio(mT, fT)})
		}
		pos := posNorm(nm)
		posD := pos.Dense()
		for _, topics := range []int{2, 4, 6, 8, 10} {
			opt := ml.Options{Iters: mlIters, Seed: 7}
			mT := timeIt(func() { ml.GNMF(posD, topics, opt) })
			fT := timeIt(func() { ml.GNMF(pos, topics, opt) })
			res.Rows = append(res.Rows, []string{"gnmf", fmt.Sprint(topics), fmt.Sprint(fr), secs(mT), secs(fT), ratio(mT, fT)})
		}
	}
	return res, nil
}

func init() {
	register("fig5", fig5)
	register("fig8", fig8)
	register("fig9", fig9)
	register("fig10", fig10)
}
