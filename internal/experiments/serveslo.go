package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagen"
	"repro/internal/epoch"
	"repro/internal/la"
	"repro/internal/serve"
)

// latencyRecorder accumulates per-request latencies across generator
// goroutines; each worker appends to its own slice, merged at the end.
type latencyRecorder struct {
	perWorker [][]time.Duration
}

func newLatencyRecorder(workers int) *latencyRecorder {
	return &latencyRecorder{perWorker: make([][]time.Duration, workers)}
}

func (l *latencyRecorder) add(worker int, d time.Duration) {
	l.perWorker[worker] = append(l.perWorker[worker], d)
}

// percentiles merges, sorts, and reads p50/p99/p999 in microseconds.
func (l *latencyRecorder) percentiles() (p50, p99, p999 float64, n int) {
	var all []time.Duration
	for _, w := range l.perWorker {
		all = append(all, w...)
	}
	if len(all) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(all)-1))
		return float64(all[idx].Nanoseconds()) / 1e3
	}
	return at(0.50), at(0.99), at(0.999), len(all)
}

// slowBackend throttles every batch, making backend saturation
// deterministic for the overload segment. It deliberately implements only
// the plain BatchScorer surface so the Batcher cannot route around the
// delay via the allocation-free path.
type slowBackend struct {
	rt    *serve.Router
	delay time.Duration
}

func (s *slowBackend) Rows() int { return s.rt.Rows() }

func (s *slowBackend) ScoreBatch(ids []int) ([]float64, error) {
	time.Sleep(s.delay)
	return s.rt.ScoreBatch(ids)
}

// serveSLO is the serving-fleet latency harness: it builds single,
// replicated, and hash-sharded fleets behind the Batcher's admission
// queue, gates each against the single-scorer ground truth (including
// across a fleet-wide weight update), then drives closed-loop and
// open-loop load while recording latency percentiles, throughput, and
// rejections; an overload segment with a deliberately slow backend
// verifies excess load fails fast with ErrOverloaded, and an epoch-fleet
// commit storm re-checks the differential at the final epoch.
func serveSLO(cfg Config) (Result, error) {
	nR := cfg.scaled(500)
	nS := 20 * nR
	dS, dR := 10, 40
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 4
	}
	conc := cfg.SLOConc
	if conc <= 0 {
		conc = 8
	}
	window := cfg.SLODur
	if window <= 0 {
		window = 250 * time.Millisecond
	}
	const gateSamples = 512

	nm, err := datagen.PKFK(datagen.PKFKSpec{NS: nS, DS: dS, NR: nR, DR: dR, Seed: cfg.Seed})
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w1 := la.NewDense(nm.Cols(), 1)
	w2 := la.NewDense(nm.Cols(), 1)
	for i := 0; i < nm.Cols(); i++ {
		w1.Set(i, 0, rng.NormFloat64())
		w2.Set(i, 0, rng.NormFloat64())
	}
	truth1, err := serve.NewScorer(nm, w1, serve.Logistic)
	if err != nil {
		return Result{}, err
	}
	truth2, err := serve.NewScorer(nm, w2, serve.Logistic)
	if err != nil {
		return Result{}, err
	}
	want1, want2 := truth1.ScoreAll(), truth2.ScoreAll()

	// gate scores sampled ids through the batcher and compares against the
	// expected vector — the routed ≡ single differential the tests pin,
	// re-asserted here so a smoke run fails on divergence.
	gate := func(label string, b *serve.Batcher, want []float64, r *rand.Rand) error {
		for i := 0; i < gateSamples; i++ {
			id := r.Intn(nS)
			v, err := b.Score(id)
			if err == serve.ErrOverloaded {
				continue
			}
			if err != nil {
				return fmt.Errorf("serve-slo %s gate: %v", label, err)
			}
			if math.Abs(v-want[id]) > 1e-12 {
				return fmt.Errorf("serve-slo %s gate: row %d routed %g single %g", label, id, v, want[id])
			}
		}
		return nil
	}

	// closedLoop drives conc workers, each issuing the next request as
	// soon as the previous answer lands, for one window.
	closedLoop := func(b *serve.Batcher, seed int64) (*latencyRecorder, time.Duration, error) {
		rec := newLatencyRecorder(conc)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var firstErr atomic.Value
		start := time.Now()
		for g := 0; g < conc; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed + int64(g)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					_, err := b.Score(r.Intn(nS))
					if err != nil && err != serve.ErrOverloaded {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					if err == nil {
						rec.add(g, time.Since(t0))
					}
				}
			}(g)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		if e := firstErr.Load(); e != nil {
			return nil, 0, e.(error)
		}
		return rec, time.Since(start), nil
	}

	res := Result{
		ID:     "serve-slo",
		Title:  "Serving fleet under load: latency SLO, admission control, placement",
		Header: []string{"segment", "replicas", "reqs/sec", "p50_µs", "p99_µs", "p999_µs", "rejected"},
	}

	configs := []struct {
		label     string
		n         int
		placement serve.Placement
	}{
		{"closed/single", 1, serve.Replicated},
		{"closed/replicated", replicas, serve.Replicated},
		{"closed/sharded", replicas, serve.HashSharded},
	}
	var primaryRate float64
	var primaryBatcher *serve.Batcher
	closeAll := []*serve.Batcher{}
	defer func() {
		for _, b := range closeAll {
			b.Close()
		}
	}()
	for ci, fc := range configs {
		rt, err := serve.NewScorerFleet(nm, w1, serve.Logistic, fc.n, fc.placement)
		if err != nil {
			return Result{}, err
		}
		b := serve.NewBatcher(rt, serve.BatchOptions{})
		closeAll = append(closeAll, b)
		grng := rand.New(rand.NewSource(cfg.Seed + int64(ci)))
		// Differential gate through the batcher, across a fleet-wide
		// weight update and back.
		if err := gate(fc.label, b, want1, grng); err != nil {
			return Result{}, err
		}
		if err := rt.UpdateWeights(w2); err != nil {
			return Result{}, err
		}
		if err := gate(fc.label+"/updated", b, want2, grng); err != nil {
			return Result{}, err
		}
		if err := rt.UpdateWeights(w1); err != nil {
			return Result{}, err
		}

		rec, elapsed, err := closedLoop(b, cfg.Seed+int64(100*ci))
		if err != nil {
			return Result{}, err
		}
		p50, p99, p999, n := rec.percentiles()
		rate := float64(n) / elapsed.Seconds()
		st := b.Stats()
		res.Rows = append(res.Rows, []string{
			fc.label, fmt.Sprintf("%d", fc.n), fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.1f", p50), fmt.Sprintf("%.1f", p99), fmt.Sprintf("%.1f", p999),
			fmt.Sprintf("%d", st.Rejected),
		})
		if fc.label == "closed/sharded" {
			res.P50us, res.P99us, res.P999us = p50, p99, p999
			primaryRate = rate
			primaryBatcher = b
		}
	}

	// Open loop: fire fixed-rate arrival bursts at the sharded fleet
	// regardless of completions — the generator does not slow down when
	// the fleet does, so queue pressure and rejections are visible.
	targetRate := cfg.SLORate
	if targetRate <= 0 {
		targetRate = primaryRate / 2
		if targetRate > 20000 {
			targetRate = 20000 // keep the generator itself off the profile
		}
		if targetRate < 1000 {
			targetRate = 1000
		}
	}
	openRec := newLatencyRecorder(1)
	var openMu sync.Mutex
	var openRejected, openSent atomic.Int64
	var openWG sync.WaitGroup
	orng := rand.New(rand.NewSource(cfg.Seed + 7))
	perTick := int(targetRate / 1000)
	if perTick < 1 {
		perTick = 1
	}
	openIDs := make([]int, 0, perTick*int(window/time.Millisecond)+perTick)
	for i := 0; i < cap(openIDs); i++ {
		openIDs = append(openIDs, orng.Intn(nS))
	}
	tick := time.NewTicker(time.Millisecond)
	openStart := time.Now()
	next := 0
	for time.Since(openStart) < window {
		<-tick.C
		for k := 0; k < perTick && next < len(openIDs); k++ {
			id := openIDs[next]
			next++
			openSent.Add(1)
			openWG.Add(1)
			go func(id int) {
				defer openWG.Done()
				t0 := time.Now()
				_, err := primaryBatcher.Score(id)
				if err == serve.ErrOverloaded {
					openRejected.Add(1)
					return
				}
				if err == nil {
					d := time.Since(t0)
					openMu.Lock()
					openRec.add(0, d)
					openMu.Unlock()
				}
			}(id)
		}
	}
	tick.Stop()
	openWG.Wait()
	oElapsed := time.Since(openStart)
	op50, op99, op999, on := openRec.percentiles()
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("open@%.0f/s", targetRate), fmt.Sprintf("%d", replicas),
		fmt.Sprintf("%.0f", float64(on)/oElapsed.Seconds()),
		fmt.Sprintf("%.1f", op50), fmt.Sprintf("%.1f", op99), fmt.Sprintf("%.1f", op999),
		fmt.Sprintf("%d", openRejected.Load()),
	})

	// Overload: a deliberately slow backend behind a small queue. Excess
	// requests must fail fast with ErrOverloaded — bounded rejection
	// latency while the backend is orders of magnitude slower.
	overRT, err := serve.NewScorerFleet(nm, w1, serve.Logistic, replicas, serve.HashSharded)
	if err != nil {
		return Result{}, err
	}
	slow := &slowBackend{rt: overRT, delay: 5 * time.Millisecond}
	ob := serve.NewBatcher(slow, serve.BatchOptions{MaxBatch: 16, MaxDelay: 10 * time.Microsecond, Workers: 1, QueueDepth: 16})
	var maxReject atomic.Int64
	var overWG sync.WaitGroup
	overStop := make(chan struct{})
	for g := 0; g < 32; g++ {
		overWG.Add(1)
		go func(seed int64) {
			defer overWG.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-overStop:
					return
				default:
				}
				t0 := time.Now()
				_, err := ob.Score(r.Intn(nS))
				if err == serve.ErrOverloaded {
					d := time.Since(t0).Nanoseconds()
					for {
						cur := maxReject.Load()
						if d <= cur || maxReject.CompareAndSwap(cur, d) {
							break
						}
					}
				}
			}
		}(cfg.Seed + int64(g))
	}
	time.Sleep(window)
	close(overStop)
	overWG.Wait()
	overStats := ob.Stats()
	ob.Close()
	if overStats.Rejected == 0 {
		return Result{}, fmt.Errorf("serve-slo: saturated fleet rejected nothing — admission control inert")
	}
	if rej := time.Duration(maxReject.Load()); rej > 250*time.Millisecond {
		return Result{}, fmt.Errorf("serve-slo: slowest rejection took %v — overload is blocking, not failing fast", rej)
	}
	res.Rows = append(res.Rows, []string{
		"overload/slow-backend", fmt.Sprintf("%d", replicas),
		fmt.Sprintf("%.0f", float64(overStats.Accepted)/window.Seconds()),
		"-", "-",
		fmt.Sprintf("%.1f", float64(maxReject.Load())/1e3),
		fmt.Sprintf("%d", overStats.Rejected),
	})
	res.Rejected = overStats.Rejected + uint64(openRejected.Load())

	// Epoch fleet: a replicated EpochScorer fleet under a commit storm,
	// scored through the batcher, with the final-epoch differential.
	st, err := epoch.NewStore(nm)
	if err != nil {
		return Result{}, err
	}
	ert, err := serve.NewEpochFleet(st, w1, serve.Logistic, replicas)
	if err != nil {
		return Result{}, err
	}
	eb := serve.NewBatcher(ert, serve.BatchOptions{})
	var stormScored atomic.Int64
	stormStop := make(chan struct{})
	var stormWG sync.WaitGroup
	for g := 0; g < conc/2+1; g++ {
		stormWG.Add(1)
		go func(seed int64) {
			defer stormWG.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stormStop:
					return
				default:
				}
				if _, err := eb.Score(r.Intn(nS)); err == nil {
					stormScored.Add(1)
				}
			}
		}(cfg.Seed + int64(g) + 50)
	}
	wrng := rand.New(rand.NewSource(cfg.Seed + 99))
	row := make([]float64, dR)
	commits := 0
	stormStart := time.Now()
	for commits < 20 || time.Since(stormStart) < window {
		for j := range row {
			row[j] = wrng.NormFloat64()
		}
		if err := st.UpsertAttr(0, wrng.Intn(nR), row); err != nil {
			return Result{}, err
		}
		if _, err := st.Commit(); err != nil {
			return Result{}, err
		}
		commits++
	}
	stormDur := time.Since(stormStart)
	close(stormStop)
	stormWG.Wait()
	eb.Close()
	snap := st.Pin()
	curNM, err := snap.NormalizedMatrix()
	if err != nil {
		return Result{}, err
	}
	fresh, err := serve.NewScorer(curNM, w1, serve.Logistic)
	if err != nil {
		return Result{}, err
	}
	got, want := ert.ScoreAll(), fresh.ScoreAll()
	snap.Release()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			return Result{}, fmt.Errorf("serve-slo: epoch fleet diverged from rebuild at row %d: %g vs %g", i, got[i], want[i])
		}
	}
	res.Rows = append(res.Rows, []string{
		"epoch-storm", fmt.Sprintf("%d", replicas),
		fmt.Sprintf("%.0f", float64(stormScored.Load())/stormDur.Seconds()),
		"-", "-", "-",
		fmt.Sprintf("%d", commits),
	})

	res.Notes = fmt.Sprintf(
		"nS=%d nR=%d dS=%d dR=%d replicas=%d conc=%d window=%v; routed ≡ single ≤1e-12 gated through the Batcher across UpdateWeights and %d epoch commits; overload rejects fast (max %.1fµs); epoch-storm column: commits",
		nS, nR, dS, dR, replicas, conc, window, commits, float64(maxReject.Load())/1e3)
	return res, nil
}

func init() {
	register("serve-slo", serveSLO)
}
