// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and the appendix) at configurable scale. Each experiment
// returns a Result whose rows mirror the series the paper plots: the
// materialized runtime (M), the factorized runtime (F), and their ratio.
//
// Absolute numbers differ from the paper (different hardware, R/BLAS
// replaced by the Go substrate); the shapes — who wins, how speed-ups grow
// with tuple ratio and feature ratio, where the low-ratio crossover region
// lies — are the reproduction target. EXPERIMENTS.md records both.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/plan"
)

// Result is one regenerated table or figure. The JSON field names are the
// machine-readable benchmark format `morpheus-bench -json` emits (and CI
// archives as bench.json), so keep them stable.
type Result struct {
	ID     string     `json:"id"` // e.g. "fig3", "table7"
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  string     `json:"notes,omitempty"`
	// Decisions is the planner trace recorded when Config.Plan is set: one
	// explained plan.Decision per planner-driven workload, each verified
	// bit-identical to the explicit run it selected before being recorded.
	Decisions []plan.Decision `json:"decisions,omitempty"`
	// I/O accounting, filled by the out-of-core experiments from the chunk
	// store's IOStats at the end of the run: bytes actually read from spill
	// backends, bytes that traveled a remote shard's wire, chunks (and their
	// stored bytes) the zone-map shortcut skipped without reading, and the
	// spill codec in effect (empty = raw chunks).
	BytesRead     int64  `json:"bytes_read,omitempty"`
	BytesOnWire   int64  `json:"bytes_on_wire,omitempty"`
	ChunksSkipped int    `json:"chunks_skipped,omitempty"`
	BytesSkipped  int64  `json:"bytes_skipped,omitempty"`
	Codec         string `json:"codec,omitempty"`
	// Serving-latency summary, filled by the serve-slo experiment from its
	// primary closed-loop run: request latency percentiles in microseconds
	// and the number of requests the admission queue rejected across the
	// overload segments. Zero/absent for experiments without a latency SLO.
	P50us    float64 `json:"p50_us,omitempty"`
	P99us    float64 `json:"p99_us,omitempty"`
	P999us   float64 `json:"p999_us,omitempty"`
	Rejected uint64  `json:"rejected,omitempty"`
}

// Format renders the result as an aligned text table.
func (r Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for j, h := range r.Header {
		widths[j] = len(h)
	}
	for _, row := range r.Rows {
		for j, c := range row {
			if j < len(widths) && len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[j], c)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	if r.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Notes)
	}
	for _, d := range r.Decisions {
		fmt.Fprintf(&sb, "plan[%s] %s\n", d.Label, d.String())
	}
	return sb.String()
}

// Config scales the experiment workloads. Scale=1 is the laptop-friendly
// default documented in DESIGN.md; larger values move dimensions toward the
// paper's (at proportionally larger runtimes).
type Config struct {
	Scale float64
	Seed  int64
	// TmpDir hosts the out-of-core chunk stores (Tables 9, 10).
	TmpDir string
	// ShardDirs, when set, spreads every out-of-core chunk store across
	// these directories (point them at different disks) with size-aware
	// placement; it takes precedence over TmpDir.
	ShardDirs []string
	// RemoteShards lists morpheus-chunkd base URLs to shard the chunk
	// stores across, alongside any ShardDirs: one store can mix local
	// disks and remote chunk servers.
	RemoteShards []string
	// Workers bounds the out-of-core engine's chunk parallelism
	// (0 = GOMAXPROCS).
	Workers int
	// Pushdown ships op-based per-chunk maps to exec-capable remote
	// shards (RemoteShards pointing at morpheus-chunkd workers) instead
	// of streaming their chunks back; results are asserted identical
	// either way.
	Pushdown bool
	// MemBudgetMB bounds the out-of-core engine's decoded-chunk memory;
	// chunk heights are derived from it via chunk.AutoRows instead of
	// being hard-coded (0 = 256 MB).
	MemBudgetMB int
	// Plan additionally runs each training workload through the
	// plan.Plan(op, operands, env) seam, verifies the planner-chosen path
	// is bit-identical to the explicit run it selected (a divergence is an
	// error), and records the explained Decisions on the Result.
	Plan bool
	// Codec names a registered chunk codec (chunk.CodecByName); every spill
	// backend is wrapped so chunks are compressed at rest and on the wire.
	// Empty means raw chunks.
	Codec string
	// ZoneMap wraps every spill backend with the zone-map annotator, so
	// streaming reductions skip chunks proven all-zero at spill time.
	// Composition order is fixed: compression inside, zone maps outside.
	ZoneMap bool
	// MutateRows sets how many rows each commit of the serve-mutate
	// experiment upserts between scoring windows (0 = a scale-derived
	// default).
	MutateRows int
	// Replicas sets the serving-fleet width for the serve-slo experiment
	// (0 = 4).
	Replicas int
	// SLORate targets an open-loop arrival rate in requests/sec for the
	// serve-slo experiment (0 = derived from the measured closed-loop
	// throughput, capped to keep the generator itself cheap).
	SLORate float64
	// SLOConc is the closed-loop concurrency of the serve-slo load
	// generator (0 = 8).
	SLOConc int
	// SLODur is the measurement window per serve-slo segment (0 = 250ms).
	SLODur time.Duration
}

// DefaultConfig returns Scale=1, Seed=1.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 1} }

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		return 1
	}
	return v
}

// Runner is an experiment entry point.
type Runner func(Config) (Result, error)

var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs lists the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg)
}

// timeIt measures fn, repeating short runs and keeping the minimum so that
// sub-20ms operator timings are not dominated by scheduler/GC noise.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	best := time.Since(start)
	if best >= 20*time.Millisecond {
		return best
	}
	reps := int(20*time.Millisecond/(best+time.Microsecond)) + 1
	if reps > 15 {
		reps = 15
	}
	for i := 0; i < reps; i++ {
		s := time.Now()
		fn()
		if d := time.Since(s); d < best {
			best = d
		}
	}
	return best
}

func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

func ratio(m, f time.Duration) string {
	if f <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(m)/float64(f))
}
