package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagen"
	"repro/internal/epoch"
	"repro/internal/la"
	"repro/internal/serve"
)

// serveMutate measures the HTAP serving path: an EpochScorer over a
// versioned store, scored at steady state, then under a commit storm —
// per-commit publish latency (which includes the incremental
// partial-product patch), epochs/sec, and the scoring throughput
// retained while mutating. The run ends with the differential check the
// epoch tests pin: the patched scorer must match a from-scratch rebuild
// at the final epoch within 1e-12, or the experiment errors (so a CI
// smoke run fails on divergence, like the plan smoke does).
func serveMutate(cfg Config) (Result, error) {
	nR := cfg.scaled(500)
	nS := 20 * nR
	dS, dR := 10, 40
	mutateRows := cfg.MutateRows
	if mutateRows <= 0 {
		mutateRows = nR / 10
		if mutateRows < 1 {
			mutateRows = 1
		}
	}
	// The storm runs at least minCommits commits AND minStorm wall clock,
	// so the concurrent scorer gets a real measurement window even when
	// commits are microseconds.
	const minCommits = 40
	const minStorm = 300 * time.Millisecond
	const batch = 256

	nm, err := datagen.PKFK(datagen.PKFKSpec{NS: nS, DS: dS, NR: nR, DR: dR, Seed: cfg.Seed})
	if err != nil {
		return Result{}, err
	}
	st, err := epoch.NewStore(nm)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := la.NewDense(nm.Cols(), 1)
	for i := 0; i < nm.Cols(); i++ {
		w.Set(i, 0, rng.NormFloat64())
	}
	es, err := serve.NewEpochScorer(st, w, serve.Logistic)
	if err != nil {
		return Result{}, err
	}

	ids := make([]int, batch)
	scoreRound := func(r *rand.Rand) error {
		for i := range ids {
			ids[i] = r.Intn(nS)
		}
		_, err := es.ScoreBatch(ids)
		return err
	}

	// Steady state: scoring throughput with no writer.
	steadyRounds := 200
	srng := rand.New(rand.NewSource(cfg.Seed + 1))
	start := time.Now()
	for i := 0; i < steadyRounds; i++ {
		if err := scoreRound(srng); err != nil {
			return Result{}, err
		}
	}
	steady := time.Since(start)
	steadyRate := float64(steadyRounds*batch) / steady.Seconds()

	// Commit storm: mutateRows attribute-row upserts per commit, with a
	// concurrent scorer hammering batches the whole time.
	stop := make(chan struct{})
	var scored atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		crng := rand.New(rand.NewSource(cfg.Seed + 2))
		lids := make([]int, batch)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range lids {
				lids[i] = crng.Intn(nS)
			}
			if _, err := es.ScoreBatch(lids); err != nil {
				return
			}
			scored.Add(int64(batch))
		}
	}()

	wrng := rand.New(rand.NewSource(cfg.Seed + 3))
	row := make([]float64, dR)
	var maxCommit time.Duration
	commits := 0
	mutStart := time.Now()
	for commits < minCommits || time.Since(mutStart) < minStorm {
		for k := 0; k < mutateRows; k++ {
			for j := range row {
				row[j] = wrng.NormFloat64()
			}
			if err := st.UpsertAttr(0, wrng.Intn(nR), row); err != nil {
				return Result{}, err
			}
		}
		t0 := time.Now()
		if _, err := st.Commit(); err != nil {
			return Result{}, err
		}
		if d := time.Since(t0); d > maxCommit {
			maxCommit = d
		}
		commits++
	}
	mutTotal := time.Since(mutStart)
	close(stop)
	wg.Wait()
	stormRate := float64(scored.Load()) / mutTotal.Seconds()

	// Differential gate: patched partials vs a scorer rebuilt from
	// scratch at the final epoch.
	snap := st.Pin()
	curNM, err := snap.NormalizedMatrix()
	if err != nil {
		return Result{}, err
	}
	fresh, err := serve.NewScorer(curNM, w, serve.Logistic)
	if err != nil {
		return Result{}, err
	}
	got, want := es.ScoreAll(), fresh.ScoreAll()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			return Result{}, fmt.Errorf("serve-mutate: patched scorer diverged from rebuild at row %d: %g vs %g", i, got[i], want[i])
		}
	}
	snap.Release()
	if live := st.LiveEpochs(); live != 1 {
		return Result{}, fmt.Errorf("serve-mutate: %d live epochs after release, want 1", live)
	}

	ps := es.PatchStats()
	epochsPerSec := float64(commits) / mutTotal.Seconds()
	meanPatch := time.Duration(0)
	if ps.Commits > 0 {
		meanPatch = ps.TotalPatch / time.Duration(ps.Commits)
	}
	res := Result{
		ID:     "serve-mutate",
		Title:  "HTAP serving: epoch commits + incremental partial patching under load",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"epoch version", fmt.Sprintf("%d", es.Version())},
			{"commits", fmt.Sprintf("%d", commits)},
			{"rows patched/commit", fmt.Sprintf("%d", mutateRows)},
			{"epochs/sec", fmt.Sprintf("%.1f", epochsPerSec)},
			{"mean patch (µs)", fmt.Sprintf("%.1f", float64(meanPatch.Nanoseconds())/1e3)},
			{"max commit (µs)", fmt.Sprintf("%.1f", float64(maxCommit.Nanoseconds())/1e3)},
			{"steady score rows/sec", fmt.Sprintf("%.0f", steadyRate)},
			{"storm score rows/sec", fmt.Sprintf("%.0f", stormRate)},
			{"retained throughput", fmt.Sprintf("%.2f", stormRate/steadyRate)},
		},
		Notes: fmt.Sprintf("nS=%d nR=%d dS=%d dR=%d commits=%d batch=%d; patched ≡ rebuilt ≤1e-12 asserted; live epochs back to baseline",
			nS, nR, dS, dR, commits, batch),
	}
	return res, nil
}

func init() {
	register("serve-mutate", serveMutate)
}
