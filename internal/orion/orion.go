// Package orion reimplements the ML-algorithm-specific factorized learning
// baseline of Kumar et al. (SIGMOD'15) — the "Orion" tool the paper
// compares against in Table 8. Orion factorizes generalized linear models
// over a single PK-FK join by caching the attribute-table partial inner
// products in an associative array keyed by the foreign key, instead of
// expressing the computation as LA operators. The hash lookups are exactly
// the overhead the paper attributes Morpheus's edge to (§5.2.3).
//
// Orion supports only dense features and a single PK-FK join, mirroring
// the original tool's restrictions.
package orion

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// GLM is a factorized generalized linear model trainer over the base
// tables S (entity) and R (attribute) linked by foreign key fk.
type GLM struct {
	s  *la.Dense
	r  *la.Dense
	fk []int32
	// partials is the associative array of cached R-side inner products,
	// keyed by RID. A Go map is used deliberately: the original system
	// stores partials in a hash table, and the per-lookup cost is part of
	// the baseline's measured behaviour.
	partials map[int32]float64
}

// NewGLM validates the base tables and returns a trainer.
func NewGLM(s, r *la.Dense, fk []int32) (*GLM, error) {
	if s == nil || r == nil {
		return nil, fmt.Errorf("orion: dense S and R are required")
	}
	if len(fk) != s.Rows() {
		return nil, fmt.Errorf("orion: %d foreign keys for %d entity rows", len(fk), s.Rows())
	}
	for i, k := range fk {
		if k < 0 || int(k) >= r.Rows() {
			return nil, fmt.Errorf("orion: fk[%d]=%d out of range [0,%d)", i, k, r.Rows())
		}
	}
	return &GLM{s: s, r: r, fk: fk, partials: make(map[int32]float64, r.Rows())}, nil
}

// LogisticGD trains logistic regression with gradient descent using
// factorized learning: per iteration, (1) compute wRᵀxR once per R tuple
// into the associative array, (2) stream S computing full inner products
// via hash lookup, (3) accumulate the S-side gradient directly and the
// R-side gradient grouped by RID, again through the associative array.
func (g *GLM) LogisticGD(y *la.Dense, iters int, alpha float64) (*la.Dense, error) {
	if y.Rows() != g.s.Rows() || y.Cols() != 1 {
		return nil, fmt.Errorf("orion: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), g.s.Rows())
	}
	if iters <= 0 {
		return nil, fmt.Errorf("orion: iters must be positive")
	}
	dS, dR := g.s.Cols(), g.r.Cols()
	w := la.NewDense(dS+dR, 1)
	wS := w.Data()[:dS]
	wR := w.Data()[dS:]
	gradS := make([]float64, dS)
	gradRByRID := make(map[int32]float64, g.r.Rows())
	for it := 0; it < iters; it++ {
		// Phase 1: partial inner products over R.
		for rid := 0; rid < g.r.Rows(); rid++ {
			g.partials[int32(rid)] = dot(g.r.Row(rid), wR)
		}
		// Phase 2+3: stream S, reusing partials via hash lookups.
		for j := range gradS {
			gradS[j] = 0
		}
		clearMap(gradRByRID)
		for i := 0; i < g.s.Rows(); i++ {
			srow := g.s.Row(i)
			inner := dot(srow, wS) + g.partials[g.fk[i]]
			c := y.At(i, 0) / (1 + math.Exp(inner))
			for j, v := range srow {
				gradS[j] += c * v
			}
			gradRByRID[g.fk[i]] += c
		}
		// Apply updates; the R-side gradient expands grouped coefficients.
		for j := range wS {
			wS[j] += alpha * gradS[j]
		}
		for rid, c := range gradRByRID {
			rrow := g.r.Row(int(rid))
			for j, v := range rrow {
				wR[j] += alpha * c * v
			}
		}
	}
	return w, nil
}

// LinearGD trains least squares by factorized gradient descent with the
// same associative-array structure.
func (g *GLM) LinearGD(y *la.Dense, iters int, alpha float64) (*la.Dense, error) {
	if y.Rows() != g.s.Rows() || y.Cols() != 1 {
		return nil, fmt.Errorf("orion: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), g.s.Rows())
	}
	if iters <= 0 {
		return nil, fmt.Errorf("orion: iters must be positive")
	}
	dS, dR := g.s.Cols(), g.r.Cols()
	w := la.NewDense(dS+dR, 1)
	wS := w.Data()[:dS]
	wR := w.Data()[dS:]
	gradS := make([]float64, dS)
	gradRByRID := make(map[int32]float64, g.r.Rows())
	for it := 0; it < iters; it++ {
		for rid := 0; rid < g.r.Rows(); rid++ {
			g.partials[int32(rid)] = dot(g.r.Row(rid), wR)
		}
		for j := range gradS {
			gradS[j] = 0
		}
		clearMap(gradRByRID)
		for i := 0; i < g.s.Rows(); i++ {
			srow := g.s.Row(i)
			resid := dot(srow, wS) + g.partials[g.fk[i]] - y.At(i, 0)
			for j, v := range srow {
				gradS[j] += resid * v
			}
			gradRByRID[g.fk[i]] += resid
		}
		for j := range wS {
			wS[j] -= alpha * gradS[j]
		}
		for rid, c := range gradRByRID {
			rrow := g.r.Row(int(rid))
			for j, v := range rrow {
				wR[j] -= alpha * c * v
			}
		}
	}
	return w, nil
}

func dot(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func clearMap(m map[int32]float64) {
	for k := range m {
		delete(m, k)
	}
}
