package orion

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/ml"
)

func makeData(rng *rand.Rand, nS, dS, nR, dR int) (*la.Dense, *la.Dense, []int32, *core.NormalizedMatrix) {
	s := la.NewDense(nS, dS)
	for i := range s.Data() {
		s.Data()[i] = rng.NormFloat64()
	}
	r := la.NewDense(nR, dR)
	for i := range r.Data() {
		r.Data()[i] = rng.NormFloat64()
	}
	fk := make([]int32, nS)
	assign := make([]int, nS)
	for i := range fk {
		v := rng.Intn(nR)
		fk[i] = int32(v)
		assign[i] = v
	}
	nm, err := core.NewPKFK(s, la.NewIndicator(assign, nR), r)
	if err != nil {
		panic(err)
	}
	return s, r, fk, nm
}

func labels(rng *rand.Rand, nm *core.NormalizedMatrix) *la.Dense {
	w := la.NewDense(nm.Cols(), 1)
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64()
	}
	y := nm.Mul(w)
	for i, v := range y.Data() {
		if v >= 0 {
			y.Data()[i] = 1
		} else {
			y.Data()[i] = -1
		}
	}
	return y
}

// TestOrionLogisticMatchesMorpheus: Orion's hash-based factorized learning
// and Morpheus's LA rewrites compute the same gradient-descent iterates.
func TestOrionLogisticMatchesMorpheus(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, r, fk, nm := makeData(rng, 120, 3, 8, 4)
	y := labels(rng, nm)
	g, err := NewGLM(s, r, fk)
	if err != nil {
		t.Fatal(err)
	}
	wOrion, err := g.LogisticGD(y, 12, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	wMorpheus, err := ml.LogisticRegressionGD(nm, y, nil, ml.Options{Iters: 12, StepSize: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wOrion, wMorpheus) > 1e-9 {
		t.Fatalf("Orion vs Morpheus logistic weights differ by %g", la.MaxAbsDiff(wOrion, wMorpheus))
	}
}

func TestOrionLinearMatchesMorpheus(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, r, fk, nm := makeData(rng, 100, 2, 6, 3)
	y := nm.Mul(la.Ones(nm.Cols(), 1))
	g, err := NewGLM(s, r, fk)
	if err != nil {
		t.Fatal(err)
	}
	wOrion, err := g.LinearGD(y, 10, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	wMorpheus, err := ml.LinearRegressionGD(nm, y, nil, ml.Options{Iters: 10, StepSize: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wOrion, wMorpheus) > 1e-9 {
		t.Fatalf("Orion vs Morpheus linear weights differ by %g", la.MaxAbsDiff(wOrion, wMorpheus))
	}
}

func TestOrionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, r, fk, _ := makeData(rng, 10, 2, 3, 2)
	if _, err := NewGLM(nil, r, fk); err == nil {
		t.Fatal("accepted nil S")
	}
	if _, err := NewGLM(s, r, fk[:5]); err == nil {
		t.Fatal("accepted short fk")
	}
	bad := append([]int32{}, fk...)
	bad[0] = 99
	if _, err := NewGLM(s, r, bad); err == nil {
		t.Fatal("accepted out-of-range fk")
	}
	g, _ := NewGLM(s, r, fk)
	if _, err := g.LogisticGD(la.NewDense(9, 1), 5, 0.1); err == nil {
		t.Fatal("accepted mismatched labels")
	}
	if _, err := g.LogisticGD(la.NewDense(10, 1), 0, 0.1); err == nil {
		t.Fatal("accepted zero iterations")
	}
}
