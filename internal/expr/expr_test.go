package expr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/la"
)

func randDense(rng *rand.Rand, rows, cols int) *la.Dense {
	d := la.NewDense(rows, cols)
	for i := range d.Data() {
		d.Data()[i] = rng.NormFloat64()
	}
	return d
}

func TestLeafAndDims(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewLeaf("A", randDense(rng, 3, 4))
	if a.Rows() != 3 || a.Cols() != 4 {
		t.Fatal("leaf dims")
	}
	tr := Transpose(a)
	if tr.Rows() != 4 || tr.Cols() != 3 {
		t.Fatal("transpose dims")
	}
	if tr.String() != "t(A)" {
		t.Fatalf("string %q", tr.String())
	}
}

func TestMulDimPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	Mul(NewLeaf("A", randDense(rng, 3, 4)), NewLeaf("B", randDense(rng, 5, 2)))
}

func TestEvalMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 6, 4)
	b := randDense(rng, 4, 3)
	e := Mul(NewLeaf("A", a), NewLeaf("B", b))
	got := e.Eval().Dense()
	want := la.MatMul(a, b)
	if la.MaxAbsDiff(got, want) > 1e-12 {
		t.Fatal("Mul eval mismatch")
	}
	s := Scale(NewLeaf("A", a), 2.5)
	if la.MaxAbsDiff(s.Eval().Dense(), a.ScaleDense(2.5)) > 1e-12 {
		t.Fatal("Scale eval mismatch")
	}
	ap := Apply(NewLeaf("A", a), "exp", math.Exp)
	if la.MaxAbsDiff(ap.Eval().Dense(), a.ApplyDense(math.Exp)) > 1e-12 {
		t.Fatal("Apply eval mismatch")
	}
	if la.MaxAbsDiff(RowSums(NewLeaf("A", a)).Eval().Dense(), a.RowSums()) > 1e-12 {
		t.Fatal("RowSums eval mismatch")
	}
	if la.MaxAbsDiff(ColSums(NewLeaf("A", a)).Eval().Dense(), a.ColSums()) > 1e-12 {
		t.Fatal("ColSums eval mismatch")
	}
}

func TestOptimizeDoubleTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewLeaf("A", randDense(rng, 3, 4))
	e := Optimize(Transpose(Transpose(a)))
	if e.String() != "A" {
		t.Fatalf("got %s", e.String())
	}
}

func TestOptimizeScalarFolding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewLeaf("A", randDense(rng, 3, 4))
	e := Optimize(Scale(Scale(a, 2), 3))
	se, ok := e.(*ScaleExpr)
	if !ok || se.X != 6 {
		t.Fatalf("got %s", e.String())
	}
}

func TestOptimizeCrossProdRecognition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewLeaf("A", randDense(rng, 10, 3))
	e := Optimize(Mul(Transpose(a), a))
	if _, ok := e.(*CrossProdExpr); !ok {
		t.Fatalf("AᵀA not recognized: %s", e.String())
	}
	if la.MaxAbsDiff(e.Eval().Dense(), a.M.CrossProd()) > 1e-12 {
		t.Fatal("crossprod value mismatch")
	}
	// Different operands must NOT be rewritten.
	b := NewLeaf("B", randDense(rng, 10, 3))
	e2 := Optimize(Mul(Transpose(a), b))
	if _, ok := e2.(*CrossProdExpr); ok {
		t.Fatal("AᵀB wrongly recognized as crossprod")
	}
}

func TestOptimizeTransposeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewLeaf("A", randDense(rng, 4, 6))
	b := NewLeaf("B", randDense(rng, 3, 4))
	// Aᵀ(6x4)·Bᵀ(4x3) → (B·A)ᵀ
	e := Optimize(Mul(Transpose(a), Transpose(b)))
	if e.String() != "t((B %*% A))" {
		t.Fatalf("got %s", e.String())
	}
	want := la.MatMul(a.M.Dense().TDense(), b.M.Dense().TDense())
	if la.MaxAbsDiff(e.Eval().Dense(), want) > 1e-12 {
		t.Fatal("value changed by rewrite")
	}
}

func TestOptimizeMatrixChain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// (A·B)·v with A 50x40, B 40x30, v 30x1: right-association is far
	// cheaper; the optimizer must produce A·(B·v).
	a := NewLeaf("A", randDense(rng, 50, 40))
	b := NewLeaf("B", randDense(rng, 40, 30))
	v := NewLeaf("v", randDense(rng, 30, 1))
	e := Optimize(Mul(Mul(a, b), v))
	if e.String() != "(A %*% (B %*% v))" {
		t.Fatalf("got %s", e.String())
	}
	want := la.MatMul(la.MatMul(a.M.Dense(), b.M.Dense()), v.M.Dense())
	if la.MaxAbsDiff(e.Eval().Dense(), want) > 1e-9 {
		t.Fatal("chain reorder changed the value")
	}
}

// TestExprOverNormalizedMatrix: the script layer is operand-agnostic — a
// normalized leaf factorizes the whole expression.
func TestExprOverNormalizedMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nS, nR := 40, 5
	s := randDense(rng, nS, 3)
	r := randDense(rng, nR, 4)
	assign := make([]int, nS)
	for i := range assign {
		assign[i] = rng.Intn(nR)
	}
	nm, err := core.NewPKFK(s, la.NewIndicator(assign, nR), r)
	if err != nil {
		t.Fatal(err)
	}
	td := nm.Dense()
	w := randDense(rng, 7, 1)

	scriptOn := func(m la.Matrix) *la.Dense {
		tl := NewLeaf("T", m)
		// t(T) %*% (T %*% w), with crossprod recognition upstream.
		e := Optimize(Mul(Transpose(tl), Mul(tl, NewLeaf("w", w))))
		return e.Eval().Dense()
	}
	if la.MaxAbsDiff(scriptOn(nm), scriptOn(td)) > 1e-9 {
		t.Fatal("normalized script result differs from materialized")
	}

	// crossprod recognition over a normalized leaf triggers Algorithm 2.
	tl := NewLeaf("T", nm)
	e := Optimize(Mul(Transpose(tl), tl))
	if _, ok := e.(*CrossProdExpr); !ok {
		t.Fatalf("normalized AᵀA not recognized: %s", e.String())
	}
	if la.MaxAbsDiff(e.Eval().Dense(), td.CrossProd()) > 1e-8 {
		t.Fatal("factorized crossprod via script differs")
	}
}
