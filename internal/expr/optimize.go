package expr

// Optimize rewrites the expression tree bottom-up until no rule fires.
func Optimize(e Expr) Expr {
	for {
		opt, changed := rewrite(e)
		e = opt
		if !changed {
			return e
		}
	}
}

// rewrite applies one bottom-up pass of the rule set.
func rewrite(e Expr) (Expr, bool) {
	switch n := e.(type) {
	case *Leaf:
		return n, false
	case *TransposeExpr:
		a, ch := rewrite(n.A)
		// (Aᵀ)ᵀ → A
		if inner, ok := a.(*TransposeExpr); ok {
			return inner.A, true
		}
		if ch {
			return &TransposeExpr{A: a}, true
		}
		return n, false
	case *ScaleExpr:
		a, ch := rewrite(n.A)
		// a·(b·A) → (ab)·A
		if inner, ok := a.(*ScaleExpr); ok {
			return &ScaleExpr{A: inner.A, X: n.X * inner.X}, true
		}
		if ch {
			return &ScaleExpr{A: a, X: n.X}, true
		}
		return n, false
	case *ApplyExpr:
		a, ch := rewrite(n.A)
		if ch {
			return &ApplyExpr{A: a, Name: n.Name, F: n.F}, true
		}
		return n, false
	case *MulExpr:
		a, chA := rewrite(n.A)
		b, chB := rewrite(n.B)
		// Aᵀ·A → crossprod(A): compare leaves by identity.
		if ta, ok := a.(*TransposeExpr); ok {
			if la1, ok1 := ta.A.(*Leaf); ok1 {
				if lb, ok2 := b.(*Leaf); ok2 && la1.M == lb.M {
					return &CrossProdExpr{A: lb}, true
				}
			}
			// Aᵀ·Bᵀ → (B·A)ᵀ
			if tb, ok2 := b.(*TransposeExpr); ok2 {
				return &TransposeExpr{A: Mul(tb.A, ta.A)}, true
			}
		}
		// Matrix chain reordering on flattened multiplication chains.
		if chain := flattenChain(&MulExpr{A: a, B: b}); len(chain) >= 3 {
			reordered := chainOrder(chain)
			if reordered.String() != (&MulExpr{A: a, B: b}).String() {
				return reordered, true
			}
		}
		if chA || chB {
			return &MulExpr{A: a, B: b}, true
		}
		return n, false
	case *CrossProdExpr:
		a, ch := rewrite(n.A)
		if ch {
			return &CrossProdExpr{A: a}, true
		}
		return n, false
	case *RowSumsExpr:
		a, ch := rewrite(n.A)
		if ch {
			return &RowSumsExpr{A: a}, true
		}
		return n, false
	case *ColSumsExpr:
		a, ch := rewrite(n.A)
		if ch {
			return &ColSumsExpr{A: a}, true
		}
		return n, false
	default:
		return e, false
	}
}

// flattenChain collects the operands of a left- or right-nested
// multiplication chain.
func flattenChain(e Expr) []Expr {
	m, ok := e.(*MulExpr)
	if !ok {
		return []Expr{e}
	}
	return append(flattenChain(m.A), flattenChain(m.B)...)
}

// chainOrder picks the cheapest parenthesization of a multiplication chain
// by the classical O(k³) dynamic program over operand dimensions (Hu &
// Shing's problem; mmtimes in Matlab, also in SystemML — paper §6).
func chainOrder(chain []Expr) Expr {
	k := len(chain)
	dims := make([]int, k+1)
	for i, e := range chain {
		dims[i] = e.Rows()
	}
	dims[k] = chain[k-1].Cols()
	cost := make([][]float64, k)
	split := make([][]int, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		split[i] = make([]int, k)
	}
	for span := 1; span < k; span++ {
		for i := 0; i+span < k; i++ {
			j := i + span
			best := -1.0
			for s := i; s < j; s++ {
				c := cost[i][s] + cost[s+1][j] +
					float64(dims[i])*float64(dims[s+1])*float64(dims[j+1])
				if best < 0 || c < best {
					best = c
					split[i][j] = s
				}
			}
			cost[i][j] = best
		}
	}
	var build func(i, j int) Expr
	build = func(i, j int) Expr {
		if i == j {
			return chain[i]
		}
		s := split[i][j]
		return &MulExpr{A: build(i, s), B: build(s+1, j)}
	}
	return build(0, k-1)
}
