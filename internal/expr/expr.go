// Package expr is a lazy linear-algebra expression layer over la.Matrix:
// the Go analogue of the LA scripts Morpheus rewrites in R. Expressions
// build a DAG; Optimize applies the script-level rewrites the paper relies
// on (fixing multiplication order, eliminating transposes, recognizing
// cross-products) and Eval executes against any operand — handing a
// normalized matrix to a leaf factorizes the whole script.
//
// Rewrites applied by Optimize:
//
//   - double-transpose elimination:        (Aᵀ)ᵀ → A
//   - transpose-of-product rotation:       AᵀBᵀ → (BA)ᵀ
//   - cross-product recognition:           Aᵀ·A → crossprod(A), which
//     unlocks the factorized Algorithm 2 on normalized operands
//   - scalar folding:                      a·(b·A) → (ab)·A
//   - matrix chain reordering:             dynamic programming over known
//     dimensions picks the cheapest parenthesization (the paper's
//     mmtimes/matrix-chain-product optimization, §6)
package expr

import (
	"fmt"

	"repro/internal/la"
)

// Expr is a node in the expression DAG.
type Expr interface {
	// Rows and Cols report the output dimensions.
	Rows() int
	Cols() int
	// Eval executes the subtree.
	Eval() la.Matrix
	// String renders the expression for debugging and tests.
	String() string
}

// Leaf wraps an operand (dense, sparse, or normalized).
type Leaf struct {
	Name string
	M    la.Matrix
}

// NewLeaf names an operand.
func NewLeaf(name string, m la.Matrix) *Leaf { return &Leaf{Name: name, M: m} }

// Rows implements Expr.
func (l *Leaf) Rows() int { return l.M.Rows() }

// Cols implements Expr.
func (l *Leaf) Cols() int { return l.M.Cols() }

// Eval implements Expr.
func (l *Leaf) Eval() la.Matrix { return l.M }

func (l *Leaf) String() string { return l.Name }

// TransposeExpr is Aᵀ.
type TransposeExpr struct{ A Expr }

// Transpose builds Aᵀ.
func Transpose(a Expr) Expr { return &TransposeExpr{A: a} }

// Rows implements Expr.
func (e *TransposeExpr) Rows() int { return e.A.Cols() }

// Cols implements Expr.
func (e *TransposeExpr) Cols() int { return e.A.Rows() }

// Eval implements Expr.
func (e *TransposeExpr) Eval() la.Matrix { return e.A.Eval().T() }

func (e *TransposeExpr) String() string { return "t(" + e.A.String() + ")" }

// ScaleExpr is x·A.
type ScaleExpr struct {
	A Expr
	X float64
}

// Scale builds x·A.
func Scale(a Expr, x float64) Expr { return &ScaleExpr{A: a, X: x} }

// Rows implements Expr.
func (e *ScaleExpr) Rows() int { return e.A.Rows() }

// Cols implements Expr.
func (e *ScaleExpr) Cols() int { return e.A.Cols() }

// Eval implements Expr.
func (e *ScaleExpr) Eval() la.Matrix { return e.A.Eval().Scale(e.X) }

func (e *ScaleExpr) String() string { return fmt.Sprintf("(%g*%s)", e.X, e.A.String()) }

// ApplyExpr is f(A) element-wise.
type ApplyExpr struct {
	A    Expr
	Name string
	F    func(float64) float64
}

// Apply builds f(A).
func Apply(a Expr, name string, f func(float64) float64) Expr {
	return &ApplyExpr{A: a, Name: name, F: f}
}

// Rows implements Expr.
func (e *ApplyExpr) Rows() int { return e.A.Rows() }

// Cols implements Expr.
func (e *ApplyExpr) Cols() int { return e.A.Cols() }

// Eval implements Expr.
func (e *ApplyExpr) Eval() la.Matrix { return e.A.Eval().Apply(e.F) }

func (e *ApplyExpr) String() string { return e.Name + "(" + e.A.String() + ")" }

// MulExpr is A·B.
type MulExpr struct{ A, B Expr }

// Mul builds A·B, validating dimensions.
func Mul(a, b Expr) Expr {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("expr: %s (%dx%d) · %s (%dx%d)", a, a.Rows(), a.Cols(), b, b.Rows(), b.Cols()))
	}
	return &MulExpr{A: a, B: b}
}

// Rows implements Expr.
func (e *MulExpr) Rows() int { return e.A.Rows() }

// Cols implements Expr.
func (e *MulExpr) Cols() int { return e.B.Cols() }

// Eval implements Expr. When the left operand is a leaf the LMM path is
// used directly; otherwise the right side is materialized for a dense
// multiply, with RMM used when the right operand is the structured one.
func (e *MulExpr) Eval() la.Matrix {
	a := e.A.Eval()
	b := e.B.Eval()
	return a.Mul(b.Dense())
}

func (e *MulExpr) String() string { return "(" + e.A.String() + " %*% " + e.B.String() + ")" }

// CrossProdExpr is crossprod(A) = AᵀA.
type CrossProdExpr struct{ A Expr }

// CrossProd builds crossprod(A).
func CrossProd(a Expr) Expr { return &CrossProdExpr{A: a} }

// Rows implements Expr.
func (e *CrossProdExpr) Rows() int { return e.A.Cols() }

// Cols implements Expr.
func (e *CrossProdExpr) Cols() int { return e.A.Cols() }

// Eval implements Expr.
func (e *CrossProdExpr) Eval() la.Matrix { return e.A.Eval().CrossProd() }

func (e *CrossProdExpr) String() string { return "crossprod(" + e.A.String() + ")" }

// RowSumsExpr, ColSumsExpr aggregate.
type RowSumsExpr struct{ A Expr }

// RowSums builds rowSums(A).
func RowSums(a Expr) Expr { return &RowSumsExpr{A: a} }

// Rows implements Expr.
func (e *RowSumsExpr) Rows() int { return e.A.Rows() }

// Cols implements Expr.
func (e *RowSumsExpr) Cols() int { return 1 }

// Eval implements Expr.
func (e *RowSumsExpr) Eval() la.Matrix { return e.A.Eval().RowSums() }

func (e *RowSumsExpr) String() string { return "rowSums(" + e.A.String() + ")" }

// ColSumsExpr is colSums(A).
type ColSumsExpr struct{ A Expr }

// ColSums builds colSums(A).
func ColSums(a Expr) Expr { return &ColSumsExpr{A: a} }

// Rows implements Expr.
func (e *ColSumsExpr) Rows() int { return 1 }

// Cols implements Expr.
func (e *ColSumsExpr) Cols() int { return e.A.Cols() }

// Eval implements Expr.
func (e *ColSumsExpr) Eval() la.Matrix { return e.A.Eval().ColSums() }

func (e *ColSumsExpr) String() string { return "colSums(" + e.A.String() + ")" }
