// Package ml implements the four ML algorithms the paper factorizes (§4):
// logistic regression, least-squares linear regression (normal equations,
// gradient descent, and the Schleich et al. co-factor variant), K-Means
// clustering, and Gaussian non-negative matrix factorization.
//
// Every algorithm is written once against la.Matrix. Passing a regular
// dense/sparse matrix runs the paper's "materialized" version; passing a
// core.NormalizedMatrix runs the automatically factorized version — no
// per-algorithm rewriting, which is the point of Morpheus.
package ml

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// Options controls the iterative algorithms.
type Options struct {
	// Iters is the number of iterations (paper experiments use 20).
	Iters int
	// StepSize is the gradient-descent learning rate α.
	StepSize float64
	// Seed drives deterministic initialization of centroids/factors.
	Seed int64
}

func (o Options) validate() error {
	if o.Iters <= 0 {
		return fmt.Errorf("ml: Iters must be positive, got %d", o.Iters)
	}
	return nil
}

// LogisticRegressionGD fits a binary classifier with gradient descent
// (Algorithm 3; factorized automatically as Algorithm 4):
//
//	w = w + α·Tᵀ(Y / (1 + exp(T·w)))
//
// y must be an n×1 ±1 label vector. Returns the d×1 weight vector.
func LogisticRegressionGD(t la.Matrix, y *la.Dense, w0 *la.Dense, opt Options) (*la.Dense, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n, d := t.Rows(), t.Cols()
	if y.Rows() != n || y.Cols() != 1 {
		return nil, fmt.Errorf("ml: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), n)
	}
	w := initWeights(w0, d)
	tt := t.T() // transpose once; normalized matrices just flip a flag
	for it := 0; it < opt.Iters; it++ {
		tw := t.Mul(w) // LMM
		p := la.NewDense(n, 1)
		for i := 0; i < n; i++ {
			p.Set(i, 0, y.At(i, 0)/(1+math.Exp(tw.At(i, 0))))
		}
		grad := tt.Mul(p) // transposed LMM
		w.AXPYInPlace(opt.StepSize, grad)
	}
	return w, nil
}

// LogisticLoss reports the logistic loss Σ log(1+exp(-y·Tw)), useful for
// verifying that materialized and factorized runs converge identically.
func LogisticLoss(t la.Matrix, y, w *la.Dense) float64 {
	tw := t.Mul(w)
	loss := 0.0
	for i := 0; i < tw.Rows(); i++ {
		loss += math.Log1p(math.Exp(-y.At(i, 0) * tw.At(i, 0)))
	}
	return loss
}

// LinearRegressionNE solves least squares via the normal equations
// (Algorithm 5; factorized as Algorithm 6):
//
//	w = ginv(crossprod(T)) · (Tᵀ·Y)
//
// As the paper notes for `solve` (§3.3.6), a Cholesky solve is attempted
// first; the pseudo-inverse is the fallback when crossprod(T) is singular.
func LinearRegressionNE(t la.Matrix, y *la.Dense) (*la.Dense, error) {
	if y.Rows() != t.Rows() || y.Cols() != 1 {
		return nil, fmt.Errorf("ml: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), t.Rows())
	}
	cp := t.CrossProd()
	tty := t.T().Mul(y)
	if w, err := la.SolveSPD(cp, tty); err == nil {
		return w, nil
	}
	return la.MatMul(la.SymGinv(cp), tty), nil
}

// LinearRegressionGD solves least squares by gradient descent
// (Algorithm 11; factorized as Algorithm 12):
//
//	w = w − α·Tᵀ(T·w − Y)
func LinearRegressionGD(t la.Matrix, y, w0 *la.Dense, opt Options) (*la.Dense, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if y.Rows() != t.Rows() || y.Cols() != 1 {
		return nil, fmt.Errorf("ml: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), t.Rows())
	}
	w := initWeights(w0, t.Cols())
	tt := t.T()
	for it := 0; it < opt.Iters; it++ {
		resid := t.Mul(w).Sub(y)
		grad := tt.Mul(resid)
		w.AXPYInPlace(-opt.StepSize, grad)
	}
	return w, nil
}

// LinearRegressionCofactor implements the hybrid algorithm of Schleich et
// al. [35] (Algorithms 13/14): build the co-factor matrix C = [YᵀT ;
// crossprod(T)] once, then iterate AdaGrad steps w ← w − α·Cᵀ[−1; w]
// against it. The expensive data-dependent work (RMM + cross-product) is
// factorized; the iterations touch only (d+1)×d state.
func LinearRegressionCofactor(t la.Matrix, y, w0 *la.Dense, opt Options) (*la.Dense, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if y.Rows() != t.Rows() || y.Cols() != 1 {
		return nil, fmt.Errorf("ml: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), t.Rows())
	}
	d := t.Cols()
	ytT := t.LeftMul(y.TDense()) // RMM: 1×d
	cp := t.CrossProd()
	c := la.VCat(ytT, cp) // (d+1)×d co-factor
	w := initWeights(w0, d)
	accum := make([]float64, d) // AdaGrad accumulator
	const eps = 1e-8
	for it := 0; it < opt.Iters; it++ {
		// grad = Cᵀ·[−1; w] = crossprod(T)·w − (YᵀT)ᵀ.
		v := la.NewDense(d+1, 1)
		v.Set(0, 0, -1)
		for j := 0; j < d; j++ {
			v.Set(j+1, 0, w.At(j, 0))
		}
		grad := la.TMatMul(c, v)
		for j := 0; j < d; j++ {
			g := grad.At(j, 0)
			accum[j] += g * g
			w.Set(j, 0, w.At(j, 0)-opt.StepSize*g/(math.Sqrt(accum[j])+eps))
		}
	}
	return w, nil
}

func initWeights(w0 *la.Dense, d int) *la.Dense {
	if w0 == nil {
		return la.NewDense(d, 1)
	}
	if w0.Rows() != d || w0.Cols() != 1 {
		panic(fmt.Sprintf("ml: w0 is %dx%d, want %dx1", w0.Rows(), w0.Cols(), d))
	}
	return w0.Clone()
}
