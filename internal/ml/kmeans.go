package ml

import (
	"fmt"
	"math/rand"

	"repro/internal/la"
)

// KMeansResult holds the fitted centroids and final assignments.
type KMeansResult struct {
	// Centroids is d×k: one column per cluster, matching the paper's C.
	Centroids *la.Dense
	// Assign[i] is the cluster of point i.
	Assign []int
	// Objective is the final sum of squared distances to assigned centroids.
	Objective float64
}

// KMeans clusters the rows of T (Algorithm 15; factorized as Algorithm 7).
// All data-intensive steps are the vectorized bulk operators of Table 1:
//
//	DT = rowSums(T²)·1(1×k)                      — scalar op + aggregation
//	D  = DT + 1(n×1)·colSums(C²) − 2·T·C         — LMM
//	A  = (D == rowMin(D)·1(1×k))                 — dense boolean assignment
//	C  = (Tᵀ·A) / (1(d×1)·colSums(A))            — transposed LMM
func KMeans(t la.Matrix, k int, opt Options) (*KMeansResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("ml: k must be positive, got %d", k)
	}
	n, d := t.Rows(), t.Cols()
	if k > n {
		return nil, fmt.Errorf("ml: k=%d exceeds %d points", k, n)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	c := la.NewDense(d, k)
	for i := range c.Data() {
		c.Data()[i] = rng.NormFloat64()
	}

	// Pre-compute the point norms once (they never change).
	dt := t.Pow(2).RowSums() // n×1
	t2 := t.Scale(2)         // stays normalized for a normalized input
	t2T := t2.T()
	var a *la.Dense
	for it := 0; it < opt.Iters; it++ {
		// Pairwise squared distances (points × clusters).
		cNorm := c.PowDense(2).ColSumsVec() // length k
		tc := t2.Mul(c)                     // n×k (LMM)
		dist := la.NewDense(n, k)
		for i := 0; i < n; i++ {
			di := dt.At(i, 0)
			row := tc.Row(i)
			drow := dist.Row(i)
			for j := 0; j < k; j++ {
				drow[j] = di + cNorm[j] - row[j]
			}
		}
		// Boolean assignment matrix from row minima.
		a = assignmentMatrix(dist)
		// New centroids; empty clusters keep their previous centroid.
		counts := a.ColSumsVec()
		ta := t2T.Mul(a) // d×k = 2·Tᵀ·A (transposed LMM on the scaled matrix)
		for j := 0; j < k; j++ {
			if counts[j] == 0 {
				continue
			}
			for i := 0; i < d; i++ {
				c.Set(i, j, ta.At(i, j)/(2*counts[j]))
			}
		}
	}

	res := &KMeansResult{Centroids: c, Assign: make([]int, n)}
	cNorm := c.PowDense(2).ColSumsVec()
	tc := t2.Mul(c)
	for i := 0; i < n; i++ {
		best, bestD := 0, dt.At(i, 0)+cNorm[0]-tc.At(i, 0)
		for j := 1; j < k; j++ {
			if dd := dt.At(i, 0) + cNorm[j] - tc.At(i, j); dd < bestD {
				best, bestD = j, dd
			}
		}
		res.Assign[i] = best
		res.Objective += bestD
	}
	return res, nil
}

// assignmentMatrix builds the 0/1 matrix A = (D == rowMin(D)·1), breaking
// ties toward the lowest cluster index so each row has exactly one 1.
func assignmentMatrix(dist *la.Dense) *la.Dense {
	n, k := dist.Rows(), dist.Cols()
	a := la.NewDense(n, k)
	for i := 0; i < n; i++ {
		row := dist.Row(i)
		best := 0
		for j := 1; j < k; j++ {
			if row[j] < row[best] {
				best = j
			}
		}
		a.Set(i, best, 1)
	}
	return a
}
