package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

func TestRidgeFactorizedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	nm, td, y := makeJoin(rng, 200, 3, 10, 4)
	wM, err := RidgeRegression(td, y, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wF, err := RidgeRegression(nm, y, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wM, wF) > 1e-8 {
		t.Fatalf("ridge weights differ by %g", la.MaxAbsDiff(wM, wF))
	}
}

func TestRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	_, td, y := makeJoin(rng, 100, 2, 6, 3)
	w0, err := RidgeRegression(td, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	wBig, err := RidgeRegression(td, y, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	n0 := w0.PowDense(2).Sum()
	nBig := wBig.PowDense(2).Sum()
	if nBig >= n0 {
		t.Fatalf("ridge did not shrink: %g -> %g", n0, nBig)
	}
	if _, err := RidgeRegression(td, y, -1); err == nil {
		t.Fatal("accepted negative lambda")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	// Points stretched along (1,1)/√2 with tiny orthogonal noise.
	n := 400
	td := la.NewDense(n, 2)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64() * 0.1
		td.Set(i, 0, a+b)
		td.Set(i, 1, a-b)
	}
	res, err := PCA(td, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First component ≈ ±(1,1)/√2.
	c0, c1 := res.Components.At(0, 0), res.Components.At(1, 0)
	if math.Abs(math.Abs(c0)-math.Sqrt2/2) > 0.01 || math.Abs(c0-c1) > 0.02 {
		t.Fatalf("first component (%g, %g)", c0, c1)
	}
	if res.Variances[0] < 100*res.Variances[1] {
		t.Fatalf("variance ordering: %v", res.Variances)
	}
}

func TestPCAFactorizedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	nm, td, _ := makeJoin(rng, 300, 3, 12, 5)
	pM, err := PCA(td, 3)
	if err != nil {
		t.Fatal(err)
	}
	pF, err := PCA(nm, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if math.Abs(pM.Variances[c]-pF.Variances[c]) > 1e-7*(1+pM.Variances[c]) {
			t.Fatalf("variance %d differs", c)
		}
		// Eigenvectors are sign-ambiguous; compare up to sign.
		dot := 0.0
		for i := 0; i < td.Cols(); i++ {
			dot += pM.Components.At(i, c) * pF.Components.At(i, c)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-6 {
			t.Fatalf("component %d differs (|dot|=%g)", c, math.Abs(dot))
		}
	}
	// Projection over the normalized matrix factorizes the LMM.
	projM := pM.Project(td)
	projF := pM.Project(nm)
	if la.MaxAbsDiff(projM, projF) > 1e-9 {
		t.Fatal("factorized projection differs")
	}
}

func TestPCAValidation(t *testing.T) {
	td := la.NewDense(1, 3)
	if _, err := PCA(td, 1); err == nil {
		t.Fatal("accepted n=1")
	}
	td = la.NewDense(5, 3)
	if _, err := PCA(td, 0); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := PCA(td, 4); err == nil {
		t.Fatal("accepted k>d")
	}
}
