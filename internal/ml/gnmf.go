package ml

import (
	"fmt"
	"math/rand"

	"repro/internal/la"
)

// GNMFResult holds the two non-negative factors T ≈ W·Hᵀ.
type GNMFResult struct {
	W *la.Dense // n×r
	H *la.Dense // d×r
}

// GNMF runs Gaussian non-negative matrix factorization with multiplicative
// updates (Algorithm 16; factorized as Algorithm 8):
//
//	H = H ∗ (Tᵀ·W) / (H·crossprod(W))
//	W = W ∗ (T·H)  / (W·crossprod(H))
//
// The data-intensive products Tᵀ·W (transposed LMM / RMM) and T·H (LMM)
// are the factorized operators; everything else is r-dimensional.
func GNMF(t la.Matrix, rank int, opt Options) (*GNMFResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if rank <= 0 {
		return nil, fmt.Errorf("ml: rank must be positive, got %d", rank)
	}
	n, d := t.Rows(), t.Cols()
	rng := rand.New(rand.NewSource(opt.Seed))
	w := positiveRandom(rng, n, rank)
	h := positiveRandom(rng, d, rank)
	tt := t.T()
	const eps = 1e-12
	for it := 0; it < opt.Iters; it++ {
		// H update.
		tw := tt.Mul(w)                     // d×r
		hww := la.MatMul(h, w.CrossProd())  // d×r
		h = multiplicative(h, tw, hww, eps) // H ∗ TᵀW / (H WᵀW)
		th := t.Mul(h)                      // n×r
		whh := la.MatMul(w, h.CrossProd())  // n×r
		w = multiplicative(w, th, whh, eps) // W ∗ TH / (W HᵀH)
	}
	return &GNMFResult{W: w, H: h}, nil
}

// ReconstructionError returns ‖T − W·Hᵀ‖²_F computed against the
// materialized matrix; intended for tests and small inputs.
func (r *GNMFResult) ReconstructionError(t la.Matrix) float64 {
	td := t.Dense()
	rec := la.MatMulT(r.W, r.H)
	diff := td.Sub(rec)
	return diff.PowDense(2).Sum()
}

func positiveRandom(rng *rand.Rand, rows, cols int) *la.Dense {
	m := la.NewDense(rows, cols)
	for i := range m.Data() {
		m.Data()[i] = rng.Float64() + 0.1
	}
	return m
}

// multiplicative computes base ∗ num / den element-wise with a stabilizer.
func multiplicative(base, num, den *la.Dense, eps float64) *la.Dense {
	out := la.NewDense(base.Rows(), base.Cols())
	bd, nd, dd, od := base.Data(), num.Data(), den.Data(), out.Data()
	for i := range bd {
		od[i] = bd[i] * nd[i] / (dd[i] + eps)
	}
	return out
}
