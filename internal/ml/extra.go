package ml

import (
	"fmt"
	"sort"

	"repro/internal/la"
)

// The paper's framework factorizes any algorithm whose data-intensive work
// is Table 1 operators. Ridge regression and PCA are two such algorithms
// beyond the paper's four, included to demonstrate the generality claim:
// neither required any new rewrite rules.

// RidgeRegression solves (crossprod(T) + λI)·w = Tᵀ·Y. The data-intensive
// operators — crossprod and the transposed LMM — are exactly the ones the
// normalized matrix factorizes; the λI shift is d×d.
func RidgeRegression(t la.Matrix, y *la.Dense, lambda float64) (*la.Dense, error) {
	if y.Rows() != t.Rows() || y.Cols() != 1 {
		return nil, fmt.Errorf("ml: labels are %dx%d, want %dx1", y.Rows(), y.Cols(), t.Rows())
	}
	if lambda < 0 {
		return nil, fmt.Errorf("ml: lambda must be non-negative, got %g", lambda)
	}
	d := t.Cols()
	a := t.CrossProd()
	for i := 0; i < d; i++ {
		a.Set(i, i, a.At(i, i)+lambda)
	}
	tty := t.T().Mul(y)
	if w, err := la.SolveSPD(a, tty); err == nil {
		return w, nil
	}
	return la.MatMul(la.SymGinv(a), tty), nil
}

// PCAResult holds the top principal components and their variances.
type PCAResult struct {
	// Components is d×k: one principal direction per column, sorted by
	// decreasing explained variance.
	Components *la.Dense
	// Variances holds the corresponding eigenvalues of the covariance.
	Variances []float64
}

// PCA computes the top-k principal components of the rows of T via the
// covariance matrix
//
//	C = (crossprod(T) − n·mean·meanᵀ) / (n−1)
//
// crossprod and colSums are factorized operators, so PCA over a normalized
// matrix never materializes the join.
func PCA(t la.Matrix, k int) (*PCAResult, error) {
	n, d := t.Rows(), t.Cols()
	if k <= 0 || k > d {
		return nil, fmt.Errorf("ml: k=%d out of range (1..%d)", k, d)
	}
	if n < 2 {
		return nil, fmt.Errorf("ml: PCA needs at least 2 rows, got %d", n)
	}
	cp := t.CrossProd()
	mean := t.ColSums().ScaleDense(1 / float64(n)) // 1×d
	cov := la.NewDense(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			cov.Set(i, j, (cp.At(i, j)-float64(n)*mean.At(0, i)*mean.At(0, j))/float64(n-1))
		}
	}
	vals, vecs := la.SymEigen(cov)
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
	comp := la.NewDense(d, k)
	variances := make([]float64, k)
	for c := 0; c < k; c++ {
		src := order[c]
		variances[c] = vals[src]
		for i := 0; i < d; i++ {
			comp.Set(i, c, vecs.At(i, src))
		}
	}
	return &PCAResult{Components: comp, Variances: variances}, nil
}

// Project maps the rows of T onto the fitted components: T·Components.
// The LMM factorizes over normalized input.
func (p *PCAResult) Project(t la.Matrix) *la.Dense { return t.Mul(p.Components) }
