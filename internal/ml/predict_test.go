package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

func TestPredictLogisticProbabilities(t *testing.T) {
	td := la.DenseFromRows([][]float64{{10}, {-10}, {0}})
	w := la.ColVector([]float64{1})
	p := PredictLogistic(td, w)
	if p.At(0, 0) < 0.99 || p.At(1, 0) > 0.01 || math.Abs(p.At(2, 0)-0.5) > 1e-12 {
		t.Fatalf("probabilities: %v %v %v", p.At(0, 0), p.At(1, 0), p.At(2, 0))
	}
	c := ClassifyLogistic(td, w)
	if c.At(0, 0) != 1 || c.At(1, 0) != -1 {
		t.Fatal("classification mismatch")
	}
}

func TestPredictFactorizedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	nm, td, y := makeJoin(rng, 100, 2, 6, 3)
	yb := signLabels(y)
	w, err := LogisticRegressionGD(nm, yb, nil, Options{Iters: 30, StepSize: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	pM := PredictLogistic(td, w)
	pF := PredictLogistic(nm, w)
	if la.MaxAbsDiff(pM, pF) > 1e-12 {
		t.Fatal("factorized scoring differs from materialized")
	}
}

func TestAccuracyAndRMSE(t *testing.T) {
	pred := la.ColVector([]float64{1, -1, 1, 1})
	y := la.ColVector([]float64{1, -1, -1, 1})
	acc, err := Accuracy(pred, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Fatalf("accuracy %v", acc)
	}
	r, err := RMSE(la.ColVector([]float64{1, 2}), la.ColVector([]float64{1, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("rmse %v", r)
	}
	if _, err := Accuracy(pred, la.ColVector([]float64{1})); err == nil {
		t.Fatal("accepted mismatched shapes")
	}
	if _, err := RMSE(la.NewDense(0, 1), la.NewDense(0, 1)); err == nil {
		t.Fatal("accepted empty labels")
	}
}

// TestLinRegNESingularFallback: a rank-deficient design must fall back to
// the pseudo-inverse path and still minimize the residual.
func TestLinRegNESingularFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	td := la.NewDense(50, 4)
	for i := 0; i < 50; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		td.Set(i, 0, a)
		td.Set(i, 1, b)
		td.Set(i, 2, a+b) // exactly dependent column
		td.Set(i, 3, rng.NormFloat64())
	}
	y := la.MatMul(td, la.ColVector([]float64{1, 2, 0, 3}))
	w, err := LinearRegressionNE(td, y)
	if err != nil {
		t.Fatal(err)
	}
	resid := la.MatMul(td, w).Sub(y)
	if r := math.Sqrt(resid.PowDense(2).Sum()); r > 1e-6 {
		t.Fatalf("singular fallback residual %g", r)
	}
}
