package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/la"
)

// makeJoin builds a PK-FK normalized matrix with planted structure plus its
// materialized twin and a label vector generated from planted weights.
func makeJoin(rng *rand.Rand, nS, dS, nR, dR int) (*core.NormalizedMatrix, *la.Dense, *la.Dense) {
	s := la.NewDense(nS, dS)
	for i := range s.Data() {
		s.Data()[i] = rng.NormFloat64()
	}
	r := la.NewDense(nR, dR)
	for i := range r.Data() {
		r.Data()[i] = rng.NormFloat64()
	}
	assign := make([]int, nS)
	for i := range assign {
		assign[i] = rng.Intn(nR)
	}
	nm, err := core.NewPKFK(s, la.NewIndicator(assign, nR), r)
	if err != nil {
		panic(err)
	}
	t := nm.Dense()
	// Planted weights and labels.
	wTrue := la.NewDense(dS+dR, 1)
	for i := range wTrue.Data() {
		wTrue.Data()[i] = rng.NormFloat64()
	}
	y := la.MatMul(t, wTrue)
	return nm, t, y
}

func signLabels(y *la.Dense) *la.Dense {
	out := y.Clone()
	for i, v := range out.Data() {
		if v >= 0 {
			out.Data()[i] = 1
		} else {
			out.Data()[i] = -1
		}
	}
	return out
}

// TestLogisticFactorizedMatchesMaterialized is the paper's core claim for
// §4: running the same LA script on the normalized matrix produces the same
// model as running it on the materialized join output.
func TestLogisticFactorizedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nm, td, yv := makeJoin(rng, 200, 3, 10, 5)
	y := signLabels(yv)
	opt := Options{Iters: 15, StepSize: 1e-3}
	wM, err := LogisticRegressionGD(td, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	wF, err := LogisticRegressionGD(nm, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wM, wF) > 1e-9 {
		t.Fatalf("materialized vs factorized logistic weights differ by %g", la.MaxAbsDiff(wM, wF))
	}
}

func TestLogisticLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nm, td, yv := makeJoin(rng, 500, 4, 20, 4)
	y := signLabels(yv)
	w0 := la.NewDense(8, 1)
	before := LogisticLoss(td, y, w0)
	w, err := LogisticRegressionGD(nm, y, nil, Options{Iters: 500, StepSize: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	after := LogisticLoss(td, y, w)
	if after >= before {
		t.Fatalf("loss did not decrease: %g -> %g", before, after)
	}
	// Training accuracy should be well above chance on separable data.
	tw := la.MatMul(td, w)
	correct := 0
	for i := 0; i < tw.Rows(); i++ {
		if (tw.At(i, 0) >= 0) == (y.At(i, 0) > 0) {
			correct++
		}
	}
	// The join-repeated R features make T ill-conditioned, so plain GD
	// converges slowly; well above chance is what we assert.
	if acc := float64(correct) / float64(tw.Rows()); acc < 0.85 {
		t.Fatalf("training accuracy %.3f < 0.85", acc)
	}
}

func TestLogisticRejectsBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, td, y := makeJoin(rng, 50, 2, 5, 3)
	if _, err := LogisticRegressionGD(td, y, nil, Options{Iters: 0, StepSize: 1}); err == nil {
		t.Fatal("accepted zero iterations")
	}
	if _, err := LogisticRegressionGD(td, la.NewDense(49, 1), nil, Options{Iters: 1, StepSize: 1}); err == nil {
		t.Fatal("accepted mismatched labels")
	}
}

// TestLinRegNERecoversPlantedWeights: with noiseless labels, the normal
// equations must recover the planted weights exactly (up to conditioning),
// for both execution strategies.
func TestLinRegNERecoversPlantedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nm, td, y := makeJoin(rng, 300, 3, 15, 4)
	wM, err := LinearRegressionNE(td, y)
	if err != nil {
		t.Fatal(err)
	}
	wF, err := LinearRegressionNE(nm, y)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wM, wF) > 1e-7 {
		t.Fatalf("NE materialized vs factorized differ by %g", la.MaxAbsDiff(wM, wF))
	}
	// Residual ‖Tw−y‖ must be ~0 for noiseless planted labels.
	resid := la.MatMul(td, wF).Sub(y)
	if r := math.Sqrt(resid.PowDense(2).Sum()); r > 1e-6 {
		t.Fatalf("NE residual %g", r)
	}
}

func TestLinRegGDMatchesAcrossStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nm, td, y := makeJoin(rng, 150, 2, 8, 3)
	opt := Options{Iters: 20, StepSize: 1e-4}
	wM, err := LinearRegressionGD(td, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	wF, err := LinearRegressionGD(nm, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wM, wF) > 1e-9 {
		t.Fatal("GD materialized vs factorized weights differ")
	}
}

func TestLinRegCofactorMatchesAcrossStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nm, td, y := makeJoin(rng, 150, 2, 8, 3)
	opt := Options{Iters: 30, StepSize: 0.1}
	wM, err := LinearRegressionCofactor(td, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	wF, err := LinearRegressionCofactor(nm, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wM, wF) > 1e-8 {
		t.Fatal("cofactor materialized vs factorized weights differ")
	}
	// AdaGrad on the co-factor must reduce the squared error.
	resid0 := y.PowDense(2).Sum()
	resid := la.MatMul(td, wF).Sub(y).PowDense(2).Sum()
	if resid >= resid0 {
		t.Fatalf("cofactor did not reduce error: %g -> %g", resid0, resid)
	}
}

func TestKMeansFactorizedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nm, td, _ := makeJoin(rng, 200, 3, 12, 4)
	opt := Options{Iters: 10, Seed: 42}
	rM, err := KMeans(td, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	rF, err := KMeans(nm, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(rM.Centroids, rF.Centroids) > 1e-7 {
		t.Fatalf("K-Means centroids differ by %g", la.MaxAbsDiff(rM.Centroids, rF.Centroids))
	}
	for i := range rM.Assign {
		if rM.Assign[i] != rF.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
	if math.Abs(rM.Objective-rF.Objective) > 1e-6*(1+rM.Objective) {
		t.Fatal("objectives differ")
	}
}

func TestKMeansFindsPlantedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Two well-separated blobs.
	n := 100
	d := la.NewDense(2*n, 2)
	for i := 0; i < n; i++ {
		d.Set(i, 0, 10+rng.NormFloat64()*0.1)
		d.Set(i, 1, 10+rng.NormFloat64()*0.1)
		d.Set(n+i, 0, -10+rng.NormFloat64()*0.1)
		d.Set(n+i, 1, -10+rng.NormFloat64()*0.1)
	}
	res, err := KMeans(d, 2, Options{Iters: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All points in blob 1 share a cluster; blob 2 gets the other.
	c0 := res.Assign[0]
	for i := 1; i < n; i++ {
		if res.Assign[i] != c0 {
			t.Fatal("blob 1 split across clusters")
		}
	}
	if res.Assign[n] == c0 {
		t.Fatal("blobs merged")
	}
	if res.Objective > float64(2*n)*0.1 {
		t.Fatalf("objective too high: %g", res.Objective)
	}
}

func TestKMeansValidation(t *testing.T) {
	d := la.NewDense(3, 2)
	if _, err := KMeans(d, 0, Options{Iters: 1}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := KMeans(d, 5, Options{Iters: 1}); err == nil {
		t.Fatal("accepted k > n")
	}
}

func TestGNMFFactorizedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// GNMF expects non-negative data; shift the parts positive.
	nm, _, _ := makeJoin(rng, 150, 3, 10, 4)
	nmPos := nm.Apply(func(v float64) float64 { return math.Abs(v) }).(*core.NormalizedMatrix)
	td := nmPos.Dense()
	opt := Options{Iters: 10, Seed: 11}
	rM, err := GNMF(td, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	rF, err := GNMF(nmPos, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(rM.W, rF.W) > 1e-6 || la.MaxAbsDiff(rM.H, rF.H) > 1e-6 {
		t.Fatal("GNMF factors differ across strategies")
	}
}

func TestGNMFReducesReconstructionError(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	nm, _, _ := makeJoin(rng, 100, 2, 8, 3)
	nmPos := nm.Apply(math.Abs).(*core.NormalizedMatrix)
	r1, err := GNMF(nmPos, 3, Options{Iters: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r50, err := GNMF(nmPos, 3, Options{Iters: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e1 := r1.ReconstructionError(nmPos)
	e50 := r50.ReconstructionError(nmPos)
	if e50 >= e1 {
		t.Fatalf("GNMF error did not decrease: %g -> %g", e1, e50)
	}
	// Factors stay non-negative under multiplicative updates.
	for _, v := range r50.W.Data() {
		if v < 0 {
			t.Fatal("negative W entry")
		}
	}
	for _, v := range r50.H.Data() {
		if v < 0 {
			t.Fatal("negative H entry")
		}
	}
}

// TestStarSchemaAlgorithms runs all four algorithms on a 2-attribute-table
// star schema (the §3.5 extension) and checks factorized == materialized.
func TestStarSchemaAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nS := 150
	s := la.NewDense(nS, 2)
	for i := range s.Data() {
		s.Data()[i] = rng.NormFloat64()
	}
	ks := make([]*la.Indicator, 2)
	rs := make([]la.Mat, 2)
	for t := 0; t < 2; t++ {
		nR := 8 + t*4
		assign := make([]int, nS)
		for i := range assign {
			assign[i] = rng.Intn(nR)
		}
		ks[t] = la.NewIndicator(assign, nR)
		r := la.NewDense(nR, 3)
		for i := range r.Data() {
			r.Data()[i] = rng.NormFloat64()
		}
		rs[t] = r
	}
	nm, err := core.NewStar(s, ks, rs)
	if err != nil {
		t.Fatal(err)
	}
	td := nm.Dense()
	y := signLabels(la.MatMul(td, la.Ones(td.Cols(), 1)))

	wM, _ := LogisticRegressionGD(td, y, nil, Options{Iters: 10, StepSize: 1e-3})
	wF, _ := LogisticRegressionGD(nm, y, nil, Options{Iters: 10, StepSize: 1e-3})
	if la.MaxAbsDiff(wM, wF) > 1e-9 {
		t.Fatal("star logistic differs")
	}
	lM, _ := LinearRegressionNE(td, y)
	lF, _ := LinearRegressionNE(nm, y)
	if la.MaxAbsDiff(lM, lF) > 1e-7 {
		t.Fatal("star linreg differs")
	}
	kM, _ := KMeans(td, 4, Options{Iters: 5, Seed: 3})
	kF, _ := KMeans(nm, 4, Options{Iters: 5, Seed: 3})
	if la.MaxAbsDiff(kM.Centroids, kF.Centroids) > 1e-7 {
		t.Fatal("star kmeans differs")
	}
	nmPos := nm.Apply(math.Abs).(*core.NormalizedMatrix)
	gM, _ := GNMF(nmPos.Dense(), 2, Options{Iters: 5, Seed: 3})
	gF, _ := GNMF(nmPos, 2, Options{Iters: 5, Seed: 3})
	if la.MaxAbsDiff(gM.W, gF.W) > 1e-6 {
		t.Fatal("star gnmf differs")
	}
}
