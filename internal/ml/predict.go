package ml

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// PredictLinear computes ŷ = T·w; T may be normalized, so scoring is
// factorized exactly like training.
func PredictLinear(t la.Matrix, w *la.Dense) *la.Dense { return t.Mul(w) }

// PredictLogistic computes class probabilities σ(T·w).
func PredictLogistic(t la.Matrix, w *la.Dense) *la.Dense {
	tw := t.Mul(w)
	out := la.NewDense(tw.Rows(), 1)
	for i := 0; i < tw.Rows(); i++ {
		out.Set(i, 0, 1/(1+math.Exp(-tw.At(i, 0))))
	}
	return out
}

// ClassifyLogistic thresholds probabilities at 0.5 into ±1 labels.
func ClassifyLogistic(t la.Matrix, w *la.Dense) *la.Dense {
	tw := t.Mul(w)
	out := la.NewDense(tw.Rows(), 1)
	for i := 0; i < tw.Rows(); i++ {
		if tw.At(i, 0) >= 0 {
			out.Set(i, 0, 1)
		} else {
			out.Set(i, 0, -1)
		}
	}
	return out
}

// Accuracy reports the fraction of matching ±1 labels.
func Accuracy(pred, y *la.Dense) (float64, error) {
	if pred.Rows() != y.Rows() || pred.Cols() != 1 || y.Cols() != 1 {
		return 0, fmt.Errorf("ml: accuracy needs matching nx1 labels, got %dx%d vs %dx%d",
			pred.Rows(), pred.Cols(), y.Rows(), y.Cols())
	}
	if pred.Rows() == 0 {
		return 0, fmt.Errorf("ml: no labels")
	}
	correct := 0
	for i := 0; i < pred.Rows(); i++ {
		if (pred.At(i, 0) >= 0) == (y.At(i, 0) >= 0) {
			correct++
		}
	}
	return float64(correct) / float64(pred.Rows()), nil
}

// RMSE reports the root-mean-square error of predictions.
func RMSE(pred, y *la.Dense) (float64, error) {
	if pred.Rows() != y.Rows() || pred.Cols() != 1 || y.Cols() != 1 {
		return 0, fmt.Errorf("ml: RMSE needs matching nx1 vectors, got %dx%d vs %dx%d",
			pred.Rows(), pred.Cols(), y.Rows(), y.Cols())
	}
	if pred.Rows() == 0 {
		return 0, fmt.Errorf("ml: no labels")
	}
	s := 0.0
	for i := 0; i < pred.Rows(); i++ {
		d := pred.At(i, 0) - y.At(i, 0)
		s += d * d
	}
	return math.Sqrt(s / float64(pred.Rows())), nil
}
