package epoch

import (
	"sync"

	"repro/internal/la"
)

// viewMat is one table of a pinned epoch: the frozen base matrix with
// the epoch's overlay patched on top. Element access (At, ReadRow) is
// served directly from base+overlay, so streaming a snapshot out of
// core never materializes the table; the heavy la.Mat operations
// delegate to a lazily materialized patched matrix, built at most once.
// A viewMat is immutable and safe for concurrent use.
type viewMat struct {
	base    la.Mat
	overlay map[int32][]float64

	once sync.Once
	mat  la.Mat // materialized base+overlay; == base when overlay is empty
}

var _ la.Mat = (*viewMat)(nil)

// Rows reports the table's tuple count.
func (v *viewMat) Rows() int { return v.base.Rows() }

// Cols reports the table's feature width.
func (v *viewMat) Cols() int { return v.base.Cols() }

// At returns the element at (i, j), reading the overlay first.
func (v *viewMat) At(i, j int) float64 {
	if row, ok := v.overlay[int32(i)]; ok {
		return row[j]
	}
	return v.base.At(i, j)
}

// ReadRow copies row i into dst (len(dst) == Cols()), overlay first.
// It implements chunk.RowSource so snapshots stream straight into a
// chunk store.
func (v *viewMat) ReadRow(i int, dst []float64) {
	if row, ok := v.overlay[int32(i)]; ok {
		copy(dst, row)
		return
	}
	readBaseRow(v.base, i, dst)
}

// materialize builds (once) the patched concrete matrix all heavy
// operations run on. An empty overlay yields the base itself — the
// common case for unchanged tables, where the view is free.
func (v *viewMat) materialize() la.Mat {
	v.once.Do(func() {
		if len(v.overlay) == 0 {
			v.mat = v.base
			return
		}
		if c, ok := v.base.(*la.CSR); ok {
			v.mat = patchCSR(c, v.overlay)
			return
		}
		d := v.base.Dense().Clone()
		for r, vals := range v.overlay {
			copy(d.Row(int(r)), vals)
		}
		v.mat = d
	})
	return v.mat
}

// patchCSR rebuilds a CSR matrix with the overlay rows replaced,
// preserving sparsity: patched rows store only their nonzeros.
func patchCSR(c *la.CSR, overlay map[int32][]float64) *la.CSR {
	rows, cols := c.Rows(), c.Cols()
	indptr := make([]int, rows+1)
	var indices []int32
	var vals []float64
	for i := 0; i < rows; i++ {
		if row, ok := overlay[int32(i)]; ok {
			for j, x := range row {
				if x != 0 {
					indices = append(indices, int32(j))
					vals = append(vals, x)
				}
			}
		} else {
			idx, vs := c.RowNNZ(i)
			indices = append(indices, idx...)
			vals = append(vals, vs...)
		}
		indptr[i+1] = len(indices)
	}
	return la.NewCSR(rows, cols, indptr, indices, vals)
}

// NNZ counts nonzero elements of the patched table.
func (v *viewMat) NNZ() int { return v.materialize().NNZ() }

// Mul computes A·X.
func (v *viewMat) Mul(x *la.Dense) *la.Dense { return v.materialize().Mul(x) }

// TMul computes Aᵀ·X.
func (v *viewMat) TMul(x *la.Dense) *la.Dense { return v.materialize().TMul(x) }

// LeftMul computes X·A.
func (v *viewMat) LeftMul(x *la.Dense) *la.Dense { return v.materialize().LeftMul(x) }

// CrossProd computes AᵀA.
func (v *viewMat) CrossProd() *la.Dense { return v.materialize().CrossProd() }

// Gram computes AAᵀ.
func (v *viewMat) Gram() *la.Dense { return v.materialize().Gram() }

// RowSums sums each row.
func (v *viewMat) RowSums() *la.Dense { return v.materialize().RowSums() }

// ColSums sums each column.
func (v *viewMat) ColSums() *la.Dense { return v.materialize().ColSums() }

// Sum totals all elements.
func (v *viewMat) Sum() float64 { return v.materialize().Sum() }

// ScaleM returns v scaled by x.
func (v *viewMat) ScaleM(x float64) la.Mat { return v.materialize().ScaleM(x) }

// AddScalarM returns v with x added to every element.
func (v *viewMat) AddScalarM(x float64) la.Mat { return v.materialize().AddScalarM(x) }

// PowM returns v with every element raised to p.
func (v *viewMat) PowM(p float64) la.Mat { return v.materialize().PowM(p) }

// ApplyM returns v with f applied elementwise.
func (v *viewMat) ApplyM(f func(float64) float64) la.Mat { return v.materialize().ApplyM(f) }

// ScaleRows returns v with row i scaled by s[i].
func (v *viewMat) ScaleRows(s []float64) la.Mat { return v.materialize().ScaleRows(s) }

// SliceRows returns rows [i0, i1).
func (v *viewMat) SliceRows(i0, i1 int) la.Mat { return v.materialize().SliceRows(i0, i1) }

// SliceCols returns columns [j0, j1).
func (v *viewMat) SliceCols(j0, j1 int) la.Mat { return v.materialize().SliceCols(j0, j1) }

// CloneMat returns an independent copy of the patched table.
func (v *viewMat) CloneMat() la.Mat { return v.materialize().CloneMat() }

// Dense materializes the patched table densely.
func (v *viewMat) Dense() *la.Dense { return v.materialize().Dense() }
