package epoch

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/ml"
)

func testChunkStore(t *testing.T) *chunk.Store {
	t.Helper()
	cs, err := chunk.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close() })
	return cs
}

func labels(rng *rand.Rand, n int) *la.Dense {
	y := la.NewDense(n, 1)
	for i := range y.Data() {
		if rng.Intn(2) == 0 {
			y.Data()[i] = 1
		} else {
			y.Data()[i] = -1
		}
	}
	return y
}

// frozenCopy deep-copies a snapshot's tables, preserving storage class,
// as the immutable reference the pinned views must match bitwise.
func frozenCopy(snap *Snapshot) (la.Mat, []la.Mat) {
	var s la.Mat
	if snap.S() != nil {
		s = snap.S().CloneMat()
	}
	rs := make([]la.Mat, snap.NumTables())
	for t := range rs {
		rs[t] = snap.R(t).CloneMat()
	}
	return s, rs
}

// TestBuildChunkedDifferential streams a patched snapshot into chunked
// storage, trains out-of-core, and pins the result bitwise against the
// same training over a frozen copy of the epoch — then checks the chunk
// store's accounting returns to baseline.
func TestBuildChunkedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sparse := range []bool{false, true} {
		st := pkfkStore(t, rng, sparse)
		for k := 0; k < 3; k++ {
			for i := k; i < st.EntityRows(); i += 3 {
				if err := st.UpsertEntity(i, randRow(rng, st.EntityCols())); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.UpsertAttr(0, k, randRow(rng, st.AttrCols(0))); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		snap := st.Pin()
		frozenS, frozenRs := frozenCopy(snap)
		y := labels(rng, st.Rows())

		cs := testChunkStore(t)
		nt, err := snap.BuildChunked(cs, 16)
		if err != nil {
			t.Fatal(err)
		}
		got, err := chunk.LogRegFactorizedExec(chunk.Parallel(), nt, y, 5, 1e-3)
		if err != nil {
			t.Fatal(err)
		}

		// Frozen reference: same chunking over deep copies of the epoch.
		sm, err := chunk.FromDense(cs, frozenS.Dense(), 16)
		if err != nil {
			t.Fatal(err)
		}
		fk, err := chunk.BuildIntVector(cs, st.Ks()[0].Assignments(), 16)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := chunk.NewStarTable(sm, []chunk.AttrTable{{FK: fk, R: frozenRs[0]}})
		if err != nil {
			t.Fatal(err)
		}
		want, err := chunk.LogRegFactorizedExec(chunk.Parallel(), ref, y, 5, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got.W, want.W) != 0 {
			t.Fatalf("sparse=%v: chunked training over snapshot differs from frozen copy", sparse)
		}

		snap.Release()
		if st.LiveEpochs() != 1 {
			t.Fatalf("live epochs %d, want 1", st.LiveEpochs())
		}
		if err := nt.Free(); err != nil {
			t.Fatal(err)
		}
		if err := ref.Free(); err != nil {
			t.Fatal(err)
		}
		if cs.LiveChunks() != 0 || cs.BytesOnDisk() != 0 {
			t.Fatalf("chunk accounting not at baseline: %d chunks, %d bytes", cs.LiveChunks(), cs.BytesOnDisk())
		}
	}
}

// TestBuildChunkedRejects pins the documented unsupported shapes.
func TestBuildChunkedRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cs := testChunkStore(t)

	// No entity feature table.
	nm, err := core.NewPKFK(nil, randIndicatorE(rng, 10, 3), randDense(rng, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(nm)
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Pin()
	if _, err := snap.BuildChunked(cs, 8); err == nil {
		t.Fatal("no-entity snapshot chunked without error")
	}
	snap.Release()

	// M:N schemas need row expansion the chunked star table doesn't model.
	mn, err := core.NewMN(randDense(rng, 6, 2), la.NewIndicator([]int{0, 1, 2, 3, 4, 5}, 6),
		la.NewIndicator([]int{0, 0, 1, 1, 2, 2}, 4), randDense(rng, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	stMN, err := NewStore(mn)
	if err != nil {
		t.Fatal(err)
	}
	snapMN := stMN.Pin()
	if _, err := snapMN.BuildChunked(cs, 8); err == nil {
		t.Fatal("M:N snapshot chunked without error")
	}
	snapMN.Release()

	if cs.LiveChunks() != 0 {
		t.Fatalf("rejected builds leaked %d chunks", cs.LiveChunks())
	}
}

// TestPinnedTrainingUnderConcurrentCommits is the HTAP core guarantee:
// training over a pinned snapshot — in memory and streamed out of core —
// is bitwise identical to training over a frozen copy of that epoch,
// while a writer storms upserts and commits the whole time.
func TestPinnedTrainingUnderConcurrentCommits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	st := pkfkStore(t, rng, false)
	if err := st.UpsertAttr(0, 0, randRow(rng, st.AttrCols(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := st.Pin()
	frozenS, frozenRs := frozenCopy(snap)
	y := labels(rng, st.Rows())

	// Writer storm: continuous upserts + commits until told to stop.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(10))
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.UpsertEntity(wrng.Intn(st.EntityRows()), randRow(wrng, st.EntityCols()))
			st.UpsertAttr(0, wrng.Intn(st.AttrRows(0)), randRow(wrng, st.AttrCols(0)))
			st.Commit()
		}
	}()

	// In-memory training over the pinned snapshot vs the frozen copy.
	nm, err := snap.NormalizedMatrix()
	if err != nil {
		t.Fatal(err)
	}
	frozenNM, err := core.New(frozenS, st.IS(), st.Ks(), frozenRs)
	if err != nil {
		t.Fatal(err)
	}
	opt := ml.Options{Iters: 6, StepSize: 1e-3}
	wSnap, err := ml.LogisticRegressionGD(nm, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	wFrozen, err := ml.LogisticRegressionGD(frozenNM, y, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(wSnap, wFrozen) != 0 {
		t.Fatal("in-memory training over pinned snapshot drifted from frozen copy under concurrent commits")
	}

	// Out-of-core: stream the pinned snapshot while commits continue.
	cs := testChunkStore(t)
	nt, err := snap.BuildChunked(cs, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chunk.LogRegFactorizedExec(chunk.Parallel(), nt, y, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := chunk.FromDense(cs, frozenS.Dense(), 16)
	if err != nil {
		t.Fatal(err)
	}
	fk, err := chunk.BuildIntVector(cs, st.Ks()[0].Assignments(), 16)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chunk.NewStarTable(sm, []chunk.AttrTable{{FK: fk, R: frozenRs[0]}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := chunk.LogRegFactorizedExec(chunk.Parallel(), ref, y, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(got.W, want.W) != 0 {
		t.Fatal("chunked training over pinned snapshot drifted from frozen copy under concurrent commits")
	}

	close(stop)
	wg.Wait()
	snap.Release()
	if st.LiveEpochs() != 1 {
		t.Fatalf("live epochs %d after release, want 1", st.LiveEpochs())
	}
	if err := nt.Free(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Free(); err != nil {
		t.Fatal(err)
	}
	if cs.LiveChunks() != 0 || cs.BytesOnDisk() != 0 {
		t.Fatalf("chunk accounting not at baseline: %d chunks, %d bytes", cs.LiveChunks(), cs.BytesOnDisk())
	}
}
